# Developer entry points. `make check` is the tier-1.5 gate CI runs: build,
# vet, full test suite, and the concurrency-sensitive packages again under
# the race detector.

GO ?= go

.PHONY: build vet test race check simtest cluster crash load stream bench bench-smoke bench-sharded bench-json report staticcheck

# Optional deeper linting: runs only when staticcheck is installed, so the
# gate works on minimal toolchains (CI installs it; see scripts/check.sh).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sharded server, the concurrent engine drain, the remote transport and
# the metrics registry are the packages with real concurrency; run them
# under -race.
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/remote/... ./internal/obs/... ./internal/cluster/... ./internal/history/...

# Differential simulation sweep under the race detector — including one
# fault-injection seed with causal tracing enabled (TestTracedFaultInjection),
# so trace propagation stays race-clean on the faulty transport — plus a
# short fuzz smoke of the wire codec and the remote frame reader (the two
# trust boundaries for peer-supplied bytes). CI runs this next to the race
# gate.
simtest:
	$(GO) test -race -count=1 ./internal/simtest/
	$(GO) test -run '^$$' -fuzz '^FuzzWire$$' -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime 10s ./internal/remote/

# Cluster gate: the three-way differential oracle (serial vs sharded vs
# clustered, byte-identical snapshots and cost ledgers) over the seeded
# sweeps — including node kill, cell-range rebalancing and cross-node
# handoff under injected frame faults — plus the wire-tier cluster package
# itself, all under the race detector.
cluster:
	$(GO) test -race -count=1 -run 'ThreeWay|Cluster' ./internal/simtest/
	$(GO) test -race -count=1 ./internal/cluster/

# Crash-recovery gate: the seeded crash-schedule sweep (ungraceful kills,
# mid-handoff kills, double kills, kills at rebalance edges) plus the
# checkpoint/replay unit and teeth tests, under the race detector. On
# failure the sweep shrinks the first violation to a minimal repro and, when
# CRASH_REPRO_OUT names a file, writes it there (CI uploads it).
crash:
	$(GO) test -race -count=1 -run 'Crash|Checkpoint|Recovery' ./internal/simtest/ ./internal/core/ ./internal/cluster/ ./internal/obs/telemetry/

# Load-observatory gate: the open-loop generator's smoke suite under -race —
# a short coordinated-omission-safe run against every backend (serial,
# sharded, clustered, TCP), the traced stage-decomposition identity, and the
# queue-depth-gauges-zero-at-quiescence check (see internal/obs/load).
load:
	$(GO) test -race -count=1 ./internal/obs/load/

# Stream & history gate: snapshot-then-delta gap-freeness across all three
# backends, slow-consumer eviction under a deliberately stalled reader, the
# history log codec and bounded store, the remote SSE/admin wiring, and the
# simtest replay oracle (log vs live-subscription ground truth), under the
# race detector (see internal/obs/stream, internal/history, DESIGN.md §17).
stream:
	$(GO) test -race -count=1 ./internal/obs/stream/ ./internal/history/
	$(GO) test -race -count=1 -run 'Stream|History|AdminSubHist|Gateway' ./internal/remote/ ./internal/simtest/

check: build vet staticcheck test race simtest cluster crash load stream

bench:
	$(GO) test -bench . -benchtime 1s ./internal/core/

# One iteration of every benchmark in the repo: catches benchmarks that
# no longer compile or panic, without the cost of real measurement (CI runs
# this).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Serial vs sharded vs clustered uplink throughput (see EXPERIMENTS.md).
bench-sharded:
	$(GO) test -run xxx -bench 'BenchmarkUplink' -benchtime 2s ./internal/core/
	$(GO) test -run xxx -bench 'BenchmarkEngineStep' -benchtime 20x .

# Machine-readable results of the cost-accounting, instrumentation-overhead,
# flight-recorder, telemetry-plane and uplink throughput benchmarks —
# including the router-forwarding-overhead comparison (clustered vs sharded
# uplinks at 10k/100k objects), the per-heartbeat telemetry cost, the
# open-loop sustained-throughput series at 10k/100k objects, and the stream
# fan-out / history append costs (see scripts/bench_json.sh).
bench-json:
	sh scripts/bench_json.sh BENCH_PR10.json

# The structured §5 cost & accuracy report (ledger sweeps, EQP-vs-LQP
# quality, baselines, qualitative checks) → results/runreport.{json,txt}.
# Exits non-zero if a qualitative check fails.
report:
	$(GO) run ./cmd/experiments -exp report -steps 10 -warmup 3 -report-dir results
