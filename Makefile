# Developer entry points. `make check` is the tier-1.5 gate CI runs: build,
# vet, full test suite, and the concurrency-sensitive packages again under
# the race detector.

GO ?= go

.PHONY: build vet test race check bench bench-sharded

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sharded server, the concurrent engine drain and the remote transport
# are the packages with real concurrency; run them under -race.
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/remote/...

check: build vet test race

bench:
	$(GO) test -bench . -benchtime 1s ./internal/core/

# Serial vs sharded uplink throughput (see EXPERIMENTS.md).
bench-sharded:
	$(GO) test -run xxx -bench 'BenchmarkUplink' -benchtime 2s ./internal/core/
	$(GO) test -run xxx -bench 'BenchmarkEngineStep' -benchtime 20x .
