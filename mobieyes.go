// Package mobieyes is a from-scratch Go implementation of MobiEyes —
// distributed processing of continuously moving queries on moving objects —
// as described by Buğra Gedik and Ling Liu (EDBT 2004), together with the
// centralized baselines the paper evaluates against and a simulation and
// benchmarking harness that regenerates every figure of the paper's
// evaluation.
//
// A moving query (MQ) is a spatial region (a circle) bound to a moving
// focal object plus a boolean filter; its result — the set of moving
// objects inside the region that satisfy the filter — is maintained
// continuously as everything moves. MobiEyes pushes most of that
// maintenance to the moving objects themselves: the server only mediates
// significant velocity-vector changes and grid-cell crossings, broadcasting
// them to the objects inside each query's monitoring region; each object
// locally predicts the focal object's position and reports only changes in
// its own containment status.
//
// # Layering
//
//   - Simulation and experiments: DefaultConfig, Run, Config, Metrics —
//     the deterministic engine behind the paper's figures.
//   - Live runtime: NewLiveSystem — a goroutine-per-object runtime where
//     mobile objects and the server run concurrently and exchange real
//     messages over channels.
//   - Protocol internals: internal/core (server and client state
//     machines), internal/grid, internal/network, internal/rtree, etc.
//
// # Quick start
//
//	cfg := mobieyes.DefaultConfig()
//	cfg.NumObjects = 1000
//	cfg.NumQueries = 100
//	m := mobieyes.Run(cfg)
//	fmt.Printf("%.1f messages/s, server %v per step\n",
//	    m.MessagesPerSecond(), m.ServerLoadPerStep())
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-versus-measured record.
package mobieyes

import (
	"mobieyes/internal/core"
	"mobieyes/internal/live"
	"mobieyes/internal/model"
	"mobieyes/internal/sim"
)

// Config configures one simulation run (Table 1 parameters plus protocol
// options). See sim.Config for field documentation.
type Config = sim.Config

// Metrics is the measurement record of one run.
type Metrics = sim.Metrics

// Approach selects the system under test.
type Approach = sim.Approach

// Approaches.
const (
	MobiEyes       = sim.MobiEyes
	Naive          = sim.Naive
	CentralOptimal = sim.CentralOptimal
	ObjectIndex    = sim.ObjectIndex
	QueryIndex     = sim.QueryIndex
)

// Options configures the MobiEyes protocol variant.
type Options = core.Options

// PropagationMode selects eager or lazy query propagation.
type PropagationMode = core.PropagationMode

// Propagation modes.
const (
	EagerPropagation = core.EagerPropagation
	LazyPropagation  = core.LazyPropagation
)

// Region is the shape of a moving query's spatial region; CircleRegion and
// RectRegion are the provided shapes (§2.3 allows any closed shape with a
// cheap containment check).
type Region = model.Region

// CircleRegion is a circular query region of radius R.
type CircleRegion = model.CircleRegion

// RectRegion is an axis-aligned rectangular query region bound at its
// center.
type RectRegion = model.RectRegion

// PolygonRegion is a simple polygon query region with vertices relative to
// the focal object.
type PolygonRegion = model.PolygonRegion

// Filter is a boolean predicate over object properties with configurable
// selectivity.
type Filter = model.Filter

// ResultEvent is a differential change to a query's result set, delivered
// by LiveSystem.WatchQuery.
type ResultEvent = core.ResultEvent

// DefaultConfig returns the paper's Table 1 defaults.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Run executes one simulation and returns its metrics.
func Run(cfg Config) Metrics { return sim.Run(cfg) }

// LiveSystem is the concurrent goroutine-per-object runtime.
type LiveSystem = live.System

// LiveConfig configures a live system.
type LiveConfig = live.Config

// NewLiveSystem starts a live MobiEyes system: one goroutine per moving
// object plus a server goroutine, exchanging protocol messages over
// channels. Stop it with Close.
func NewLiveSystem(cfg LiveConfig) *LiveSystem { return live.NewSystem(cfg) }
