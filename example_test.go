package mobieyes_test

import (
	"fmt"
	"time"

	"mobieyes"
	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

// ExampleRun simulates a small MobiEyes deployment and prints whether the
// distributed protocol produced exact results.
func ExampleRun() {
	cfg := mobieyes.DefaultConfig()
	cfg.NumObjects = 400
	cfg.NumQueries = 40
	cfg.VelocityChangesPerStep = 40
	cfg.AreaSqMiles = 4000
	cfg.Steps = 5
	cfg.Warmup = 2
	cfg.MeasureError = true

	m := mobieyes.Run(cfg)
	fmt.Printf("approach: %v\n", m.Approach)
	fmt.Printf("exact results: %v\n", m.AvgError == 0)
	// Output:
	// approach: MobiEyes
	// exact results: true
}

// ExampleNewLiveSystem runs a two-object live system and waits for the
// query result to converge.
func ExampleNewLiveSystem() {
	sys := mobieyes.NewLiveSystem(mobieyes.LiveConfig{
		UoD:          geo.NewRect(0, 0, 50, 50),
		Alpha:        5,
		TickInterval: time.Millisecond,
		TimeScale:    600,
	})
	defer sys.Close()

	anyone := mobieyes.Filter{Seed: 1, Permille: 1000}
	sys.AddObject(1, geo.Pt(25, 25), geo.Vec(0, 0), 100, model.Props{Key: 1})
	sys.AddObject(2, geo.Pt(26, 25), geo.Vec(0, 0), 100, model.Props{Key: 2})
	qid := sys.InstallQuery(1, mobieyes.CircleRegion{R: 3}, anyone, 100)

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if r := sys.Result(qid); len(r) == 2 {
			fmt.Printf("targets: %v\n", r)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Println("did not converge")
	// Output:
	// targets: [1 2]
}
