// Benchmarks regenerating the measured quantity of every table and figure
// in the MobiEyes paper's evaluation (§5). Each BenchmarkFigN* measures the
// steady-state per-step cost of the system configuration behind that
// figure; derived quantities the paper plots (messages per second, LQT
// sizes, error rates) are attached with b.ReportMetric so `go test -bench`
// output carries the figure's y-value alongside ns/op.
//
// The full experiment sweeps (every x value, every series) live in
// cmd/experiments; these benchmarks pin the defaults and the interesting
// extremes so the paper's comparisons are visible directly in bench output.
package mobieyes

import (
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/sim"
	"mobieyes/internal/workload"
)

// benchConfig is the Table 1 default configuration, sized down 4× so the
// complete bench suite runs in minutes while preserving density and shape.
func benchConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumObjects = 2500
	cfg.NumQueries = 250
	cfg.VelocityChangesPerStep = 250
	cfg.AreaSqMiles = 25000
	cfg.Steps = 1
	cfg.Warmup = 0
	return cfg
}

// stepBench runs cfg's engine for b.N steps after warmup and reports the
// figure metric extracted from a final short measured run.
func stepBenchMobiEyes(b *testing.B, cfg sim.Config, report func(b *testing.B, m sim.Metrics)) {
	b.Helper()
	e := sim.NewEngine(cfg)
	for i := 0; i < 3; i++ { // warmup
		e.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	if report != nil {
		cfg.Steps = 5
		cfg.Warmup = 2
		report(b, sim.Run(cfg))
	}
}

func stepBenchBaseline(b *testing.B, cfg sim.Config) {
	b.Helper()
	e := sim.NewBaselineEngine(cfg)
	for i := 0; i < 3; i++ {
		e.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func reportMessages(b *testing.B, m sim.Metrics) {
	b.ReportMetric(m.MessagesPerSecond(), "msgs/simsec")
	b.ReportMetric(m.UplinkMessagesPerSecond(), "upmsgs/simsec")
}

// --- Table 1: workload generation -----------------------------------------

func BenchmarkTable1WorkloadGeneration(b *testing.B) {
	cfg := workload.Default(benchConfig().UoD())
	cfg.NumObjects = 2500
	cfg.NumQueries = 250
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		_ = workload.New(cfg)
	}
}

// --- Fig. 1: server load vs queries ----------------------------------------

func BenchmarkFig1ServerLoadMobiEyesEQP(b *testing.B) {
	stepBenchMobiEyes(b, benchConfig(), nil)
}

func BenchmarkFig1ServerLoadMobiEyesLQP(b *testing.B) {
	cfg := benchConfig()
	cfg.Core.Mode = core.LazyPropagation
	stepBenchMobiEyes(b, cfg, nil)
}

func BenchmarkFig1ServerLoadObjectIndex(b *testing.B) {
	cfg := benchConfig()
	cfg.Approach = sim.ObjectIndex
	stepBenchBaseline(b, cfg)
}

func BenchmarkFig1ServerLoadQueryIndex(b *testing.B) {
	cfg := benchConfig()
	cfg.Approach = sim.QueryIndex
	stepBenchBaseline(b, cfg)
}

// --- Fig. 2: LQP error measurement -----------------------------------------

func BenchmarkFig2LQPWithErrorTracking(b *testing.B) {
	cfg := benchConfig()
	cfg.Core.Mode = core.LazyPropagation
	cfg.MeasureError = true
	cfg.Steps = 5
	cfg.Warmup = 2
	b.ResetTimer()
	var last sim.Metrics
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		last = sim.Run(cfg)
	}
	b.ReportMetric(last.AvgError, "error")
}

// --- Fig. 3: server load vs alpha -------------------------------------------

func BenchmarkFig3AlphaSmall(b *testing.B) {
	cfg := benchConfig()
	cfg.Alpha = 1
	stepBenchMobiEyes(b, cfg, nil)
}

func BenchmarkFig3AlphaDefault(b *testing.B) {
	stepBenchMobiEyes(b, benchConfig(), nil)
}

func BenchmarkFig3AlphaLarge(b *testing.B) {
	cfg := benchConfig()
	cfg.Alpha = 16
	stepBenchMobiEyes(b, cfg, nil)
}

// --- Fig. 4: messaging vs alpha ---------------------------------------------

func BenchmarkFig4MessagingAlpha2(b *testing.B) {
	cfg := benchConfig()
	cfg.Alpha = 2
	stepBenchMobiEyes(b, cfg, reportMessages)
}

func BenchmarkFig4MessagingAlpha5(b *testing.B) {
	stepBenchMobiEyes(b, benchConfig(), reportMessages)
}

func BenchmarkFig4MessagingAlpha16(b *testing.B) {
	cfg := benchConfig()
	cfg.Alpha = 16
	stepBenchMobiEyes(b, cfg, reportMessages)
}

// --- Figs. 5 and 6: messaging vs number of objects --------------------------

func BenchmarkFig5MessagingSmallPopulation(b *testing.B) {
	cfg := benchConfig()
	cfg.NumObjects = 625
	cfg.VelocityChangesPerStep = 62
	stepBenchMobiEyes(b, cfg, reportMessages)
}

func BenchmarkFig5MessagingFullPopulation(b *testing.B) {
	stepBenchMobiEyes(b, benchConfig(), reportMessages)
}

func BenchmarkFig6UplinkNaive(b *testing.B) {
	cfg := benchConfig()
	cfg.Approach = sim.Naive
	stepBenchBaseline(b, cfg)
}

func BenchmarkFig6UplinkCentralOptimal(b *testing.B) {
	cfg := benchConfig()
	cfg.Approach = sim.CentralOptimal
	stepBenchBaseline(b, cfg)
}

func BenchmarkFig6UplinkMobiEyesLQP(b *testing.B) {
	cfg := benchConfig()
	cfg.Core.Mode = core.LazyPropagation
	stepBenchMobiEyes(b, cfg, reportMessages)
}

// --- Fig. 7: messaging vs velocity changes ----------------------------------

func BenchmarkFig7FewVelocityChanges(b *testing.B) {
	cfg := benchConfig()
	cfg.VelocityChangesPerStep = 25
	stepBenchMobiEyes(b, cfg, reportMessages)
}

func BenchmarkFig7ManyVelocityChanges(b *testing.B) {
	cfg := benchConfig()
	cfg.VelocityChangesPerStep = 1000
	stepBenchMobiEyes(b, cfg, reportMessages)
}

// --- Fig. 8: messaging vs base station size ---------------------------------

func BenchmarkFig8SmallStations(b *testing.B) {
	cfg := benchConfig()
	cfg.Alen = 5
	stepBenchMobiEyes(b, cfg, reportMessages)
}

func BenchmarkFig8LargeStations(b *testing.B) {
	cfg := benchConfig()
	cfg.Alen = 80
	stepBenchMobiEyes(b, cfg, reportMessages)
}

// --- Fig. 9: per-object power ------------------------------------------------

func BenchmarkFig9PowerAccounting(b *testing.B) {
	cfg := benchConfig()
	cfg.Steps = 5
	cfg.Warmup = 2
	b.ResetTimer()
	var last sim.Metrics
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		last = sim.Run(cfg)
	}
	b.ReportMetric(last.AvgPowerWatts*1000, "mW/object")
}

// --- Figs. 10–12: LQT sizes ----------------------------------------------------

func BenchmarkFig10LQTAlphaDefault(b *testing.B) {
	stepBenchMobiEyes(b, benchConfig(), func(b *testing.B, m sim.Metrics) {
		b.ReportMetric(m.AvgLQTSize, "LQT")
	})
}

func BenchmarkFig11LQTManyQueries(b *testing.B) {
	cfg := benchConfig()
	cfg.NumQueries = 1000
	stepBenchMobiEyes(b, cfg, func(b *testing.B, m sim.Metrics) {
		b.ReportMetric(m.AvgLQTSize, "LQT")
	})
}

func BenchmarkFig12LQTLargeRadii(b *testing.B) {
	cfg := benchConfig()
	cfg.RadiusFactor = 3
	stepBenchMobiEyes(b, cfg, func(b *testing.B, m sim.Metrics) {
		b.ReportMetric(m.AvgLQTSize, "LQT")
	})
}

// --- Fig. 13: safe period ablation ---------------------------------------------

func BenchmarkFig13SafePeriodOff(b *testing.B) {
	cfg := benchConfig()
	cfg.Alpha = 16 // large cells = large monitoring regions = where it matters
	stepBenchMobiEyes(b, cfg, nil)
}

func BenchmarkFig13SafePeriodOn(b *testing.B) {
	cfg := benchConfig()
	cfg.Alpha = 16
	cfg.Core.SafePeriod = true
	stepBenchMobiEyes(b, cfg, func(b *testing.B, m sim.Metrics) {
		if m.Evals+m.Skipped > 0 {
			b.ReportMetric(float64(m.Skipped)/float64(m.Evals+m.Skipped), "skipfrac")
		}
	})
}

// --- Sharded server: serial vs grid-partitioned engine ---------------------------

// The engine-level counterpart of the internal/core uplink benchmarks:
// a full simulation step, with the step's uplink batch drained through the
// serial server or the sharded server with a concurrent worker pool.
func BenchmarkEngineStepSerialServer(b *testing.B) {
	stepBenchMobiEyes(b, benchConfig(), nil)
}

func BenchmarkEngineStepShardedServer(b *testing.B) {
	cfg := benchConfig()
	cfg.ServerShards = 4
	stepBenchMobiEyes(b, cfg, nil)
}

// --- Ablations beyond the paper's figures ---------------------------------------

// Query grouping (§4.1) on a workload with heavy focal sharing.
func BenchmarkAblationGroupingOff(b *testing.B) {
	cfg := benchConfig()
	cfg.NumObjects = 500
	cfg.NumQueries = 500 // many queries per focal object
	cfg.VelocityChangesPerStep = 100
	stepBenchMobiEyes(b, cfg, reportMessages)
}

func BenchmarkAblationGroupingOn(b *testing.B) {
	cfg := benchConfig()
	cfg.NumObjects = 500
	cfg.NumQueries = 500
	cfg.VelocityChangesPerStep = 100
	cfg.Core.Grouping = true
	stepBenchMobiEyes(b, cfg, reportMessages)
}

// Eager versus lazy propagation at identical workloads.
func BenchmarkAblationEQP(b *testing.B) {
	stepBenchMobiEyes(b, benchConfig(), reportMessages)
}

func BenchmarkAblationLQP(b *testing.B) {
	cfg := benchConfig()
	cfg.Core.Mode = core.LazyPropagation
	stepBenchMobiEyes(b, cfg, reportMessages)
}

func BenchmarkFig13Predictive(b *testing.B) {
	cfg := benchConfig()
	cfg.Alpha = 16
	cfg.Core.Predictive = true
	stepBenchMobiEyes(b, cfg, func(b *testing.B, m sim.Metrics) {
		if m.Evals+m.Skipped > 0 {
			b.ReportMetric(float64(m.Skipped)/float64(m.Evals+m.Skipped), "skipfrac")
		}
	})
}
