// Geofence: a rectangular moving query region combined with the live
// runtime's event subscription. A delivery van carries a 2×1 mile
// rectangular "loading zone" query (§2.3 allows any closed shape with a
// cheap containment check); couriers around the city enter and leave the
// zone as everyone moves, and the application consumes the enter/leave
// event stream from WatchQuery instead of polling.
//
//	go run ./examples/geofence
package main

import (
	"fmt"
	"math/rand"
	"time"

	"mobieyes"
	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

func main() {
	sys := mobieyes.NewLiveSystem(mobieyes.LiveConfig{
		UoD:          geo.NewRect(0, 0, 30, 30),
		Alpha:        3,
		TickInterval: 5 * time.Millisecond,
		TimeScale:    300, // one wall second = 5 simulated minutes
	})
	defer sys.Close()

	rng := rand.New(rand.NewSource(5))
	courierFilter := model.Filter{Seed: 0xBEEF, Permille: 500}

	const van = model.ObjectID(1)
	sys.AddObject(van, geo.Pt(4, 15), geo.Vec(18, 0), 40,
		model.Props{Key: model.MineKey(courierFilter, false, rng)})

	// One courier waits at the curb of every cross street on the van's
	// route (y = 15, slow drift), plus background traffic the query filter
	// rejects.
	id := model.ObjectID(2)
	couriers := 0
	for lane := 6.0; lane <= 18; lane += 3 {
		drift := rng.Float64()*1 - 0.5
		sys.AddObject(id, geo.Pt(lane, 15), geo.Vec(0, drift), 40,
			model.Props{Key: model.MineKey(courierFilter, true, rng)})
		couriers++
		id++
		// Non-courier traffic crossing the same streets at speed.
		vy := 15 + rng.Float64()*10
		sys.AddObject(id, geo.Pt(lane, 3+rng.Float64()*24), geo.Vec(0, vy), 40,
			model.Props{Key: model.MineKey(courierFilter, false, rng)})
		id++
	}
	fmt.Printf("geofence: 1 van, %d vehicles (%d couriers) on the grid\n\n", int(id)-2, couriers)

	zone := mobieyes.RectRegion{W: 4, H: 2} // 4×2 mile zone centered on the van
	qid := sys.InstallQuery(van, zone, courierFilter, 40)
	events := sys.WatchQuery(qid)

	timeout := time.After(8 * time.Second)
	enters, leaves := 0, 0
	for {
		select {
		case ev := <-events:
			pos, _ := sys.Position(van)
			verb := "ENTERED"
			if !ev.Entered {
				verb = "left"
			}
			if ev.Entered {
				enters++
			} else {
				leaves++
			}
			fmt.Printf("van at (%4.1f, %4.1f): courier %-3d %s the loading zone\n",
				pos.X, pos.Y, ev.OID, verb)
		case <-timeout:
			fmt.Printf("\n%d zone entries, %d exits observed via the event stream\n", enters, leaves)
			if enters == 0 {
				fmt.Println("(no couriers crossed the zone this run)")
			}
			return
		}
	}
}
