// Replay: record a mobility scenario, serialize it, read it back and
// replay it bit-for-bit — the workflow for turning a live incident into a
// reproducible regression input (see also cmd/mobitrace).
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"fmt"

	"mobieyes/internal/geo"
	"mobieyes/internal/trace"
	"mobieyes/internal/workload"
)

func main() {
	// A workload of 400 objects driving the random-waypoint process.
	cfg := workload.Default(geo.NewRect(0, 0, 100, 100))
	cfg.NumObjects = 400
	cfg.NumQueries = 1
	cfg.Mobility = workload.RandomWaypoint
	cfg.Seed = 42
	w := workload.New(cfg)

	fmt.Println("recording 120 steps (one simulated hour) of waypoint mobility…")
	tr := trace.Record(w, 120)

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		panic(err)
	}
	fmt.Printf("serialized trace: %d bytes for %d objects × %d steps\n",
		buf.Len(), len(tr.Objects), len(tr.Steps))

	back, err := trace.Read(&buf)
	if err != nil {
		panic(err)
	}
	player := trace.NewPlayer(back)
	for !player.Done() {
		player.Step()
	}

	exact := 0
	for i, o := range w.Objects {
		if player.Objects[i].Pos == o.Pos {
			exact++
		}
	}
	fmt.Printf("replayed positions exactly matching the original run: %d/%d\n",
		exact, len(w.Objects))
	if exact != len(w.Objects) {
		fmt.Println("!! divergence — replay is broken")
		return
	}
	fmt.Println("the serialized scenario reproduces the run bit-for-bit")
}
