// Compare: run MobiEyes (eager and lazy) and all centralized baselines of
// the paper on one identical workload and print the §5 comparison table —
// messaging cost, uplink share, server load and per-object radio power.
//
//	go run ./examples/compare
package main

import (
	"fmt"

	"mobieyes"
)

func main() {
	base := mobieyes.DefaultConfig()
	base.NumObjects = 2000
	base.NumQueries = 200
	base.VelocityChangesPerStep = 200
	base.AreaSqMiles = 20000
	base.Steps = 15
	base.Warmup = 5
	base.MeasureError = true

	type variant struct {
		name string
		mut  func(*mobieyes.Config)
	}
	variants := []variant{
		{"naive", func(c *mobieyes.Config) { c.Approach = mobieyes.Naive }},
		{"central optimal", func(c *mobieyes.Config) { c.Approach = mobieyes.CentralOptimal }},
		{"object index", func(c *mobieyes.Config) { c.Approach = mobieyes.ObjectIndex }},
		{"query index", func(c *mobieyes.Config) { c.Approach = mobieyes.QueryIndex }},
		{"MobiEyes EQP", func(c *mobieyes.Config) {}},
		{"MobiEyes LQP", func(c *mobieyes.Config) { c.Core.Mode = mobieyes.LazyPropagation }},
		{"MobiEyes EQP+opt", func(c *mobieyes.Config) {
			c.Core.SafePeriod = true
			c.Core.Grouping = true
		}},
	}

	fmt.Printf("workload: %d objects, %d queries, %.0f mi², %d steps of %.0f s\n\n",
		base.NumObjects, base.NumQueries, base.AreaSqMiles, base.Steps, base.StepSeconds)
	fmt.Printf("%-18s %10s %10s %14s %10s %8s\n",
		"system", "msg/s", "uplink/s", "server/step", "mW/object", "error")
	fmt.Println("------------------------------------------------------------------------------")
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		m := mobieyes.Run(cfg)
		fmt.Printf("%-18s %10.1f %10.1f %14v %10.3f %8.4f\n",
			v.name, m.MessagesPerSecond(), m.UplinkMessagesPerSecond(),
			m.ServerLoadPerStep(), m.AvgPowerWatts*1000, m.AvgError)
	}
}
