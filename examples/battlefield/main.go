// Battlefield: the paper's motivating query MQ₁ — "give me the number of
// friendly units within 5 miles radius around me during the next 2 hours" —
// posed by a moving commander. Two concentric queries (5 and 10 miles) are
// bound to the same focal object with query grouping enabled, exercising
// the §4.1 optimization: one broadcast and one distance computation serve
// both queries, and results come back as query bitmaps.
//
//	go run ./examples/battlefield
package main

import (
	"fmt"
	"math/rand"
	"time"

	"mobieyes"
	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

func main() {
	sys := mobieyes.NewLiveSystem(mobieyes.LiveConfig{
		UoD:          geo.NewRect(0, 0, 60, 60),
		Alpha:        5,
		TickInterval: 5 * time.Millisecond,
		TimeScale:    240, // one wall second = 4 simulated minutes
		Options:      mobieyes.Options{Grouping: true},
	})
	defer sys.Close()

	rng := rand.New(rand.NewSource(11))
	friendly := model.Filter{Seed: 0xF00D, Permille: 500}

	const commander = model.ObjectID(1)
	// The commander's column advances east at 12 mph.
	sys.AddObject(commander, geo.Pt(10, 30), geo.Vec(12, 0), 40,
		model.Props{Key: model.MineKey(friendly, true, rng)})

	// Friendly units advance in loose formation around the commander;
	// hostile units (filter rejects them) patrol the same area.
	id := model.ObjectID(2)
	nFriendly, nHostile := 0, 0
	for i := 0; i < 30; i++ {
		isFriend := i%3 != 0 // two thirds friendly
		key := model.MineKey(friendly, isFriend, rng)
		pos := geo.Pt(5+rng.Float64()*30, 15+rng.Float64()*30)
		vel := geo.Vec(10+rng.Float64()*4, rng.Float64()*4-2)
		if !isFriend {
			vel = geo.Vec(-8+rng.Float64()*4, rng.Float64()*6-3)
			nHostile++
		} else {
			nFriendly++
		}
		sys.AddObject(id, pos, vel, 40, model.Props{Key: key})
		id++
	}
	fmt.Printf("battlefield: commander + %d friendly and %d hostile units\n\n",
		nFriendly, nHostile)

	// "…during next 2 hours" (MQ₁): both queries carry the stated lifetime.
	near := sys.InstallQueryFor(commander, model.CircleRegion{R: 5}, friendly, 40, 2*3600)
	far := sys.InstallQueryFor(commander, model.CircleRegion{R: 10}, friendly, 40, 2*3600)

	for minute := 4; minute <= 40; minute += 4 {
		time.Sleep(time.Second)
		pos, _ := sys.Position(commander)
		nNear := len(sys.Result(near))
		nFar := len(sys.Result(far))
		fmt.Printf("t=%2d min  commander at (%4.1f, %4.1f)  friendlies ≤5 mi: %2d  ≤10 mi: %2d\n",
			minute, pos.X, pos.Y, nNear, nFar)
		if nNear > nFar {
			fmt.Println("!! inner result exceeds outer result — impossible")
			return
		}
	}
	fmt.Println("\ninner count never exceeded outer count (grouped evaluation consistent)")
}
