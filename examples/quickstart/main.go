// Quickstart: run a small MobiEyes simulation through the public API and
// print the headline metrics, then compare against the naïve centralized
// scheme on the same workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mobieyes"
)

func main() {
	cfg := mobieyes.DefaultConfig()
	// A laptop-friendly slice of the paper's Table 1 setup: 2,000 objects
	// and 200 moving queries over a 141×141 mile area.
	cfg.NumObjects = 2000
	cfg.NumQueries = 200
	cfg.VelocityChangesPerStep = 200
	cfg.AreaSqMiles = 20000
	cfg.Steps = 20
	cfg.Warmup = 5

	fmt.Println("MobiEyes quickstart")
	fmt.Printf("  %d moving objects, %d moving queries, %.0f mi² universe\n\n",
		cfg.NumObjects, cfg.NumQueries, cfg.AreaSqMiles)

	mob := mobieyes.Run(cfg)
	fmt.Println("distributed (MobiEyes, eager propagation):")
	printMetrics(mob)

	cfg.Approach = mobieyes.Naive
	naive := mobieyes.Run(cfg)
	fmt.Println("centralized (naive position reporting):")
	printMetrics(naive)

	fmt.Printf("MobiEyes uses %.1f%% of the naive scheme's uplink messages\n",
		100*float64(mob.UplinkMsgs)/float64(naive.UplinkMsgs))
}

func printMetrics(m mobieyes.Metrics) {
	fmt.Printf("  messages:    %8.1f /s total (%.1f /s uplink)\n",
		m.MessagesPerSecond(), m.UplinkMessagesPerSecond())
	fmt.Printf("  server load: %8v per step\n", m.ServerLoadPerStep())
	fmt.Printf("  radio power: %8.3f mW per object\n\n", m.AvgPowerWatts*1000)
}
