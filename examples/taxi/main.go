// Taxi: the paper's motivating query MQ₂ — "give me the positions of those
// customers who are looking for a taxi and are within 5 miles of my
// location during the next 20 minutes" — running on the live
// goroutine-per-object runtime. A taxi cruises a 40×40 mile city; customers
// appear parked around town, some hailing a ride and some not. The moving
// query travels with the taxi and its result updates as the taxi drives.
//
//	go run ./examples/taxi
package main

import (
	"fmt"
	"math/rand"
	"time"

	"mobieyes"
	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

func main() {
	sys := mobieyes.NewLiveSystem(mobieyes.LiveConfig{
		UoD:          geo.NewRect(0, 0, 40, 40),
		Alpha:        4,
		TickInterval: 5 * time.Millisecond,
		// One wall second = 2 simulated minutes: the 20-minute ride fits
		// into a ten-second demo.
		TimeScale: 120,
	})
	defer sys.Close()

	// The filter encoding "is looking for a taxi": customers hailing a ride
	// carry property keys the filter accepts; everyone else gets keys it
	// rejects.
	rng := rand.New(rand.NewSource(7))
	hailing := model.Filter{Seed: 0xCAB, Permille: 500}

	const taxiID = model.ObjectID(1)
	// The taxi starts downtown, driving northeast at 30 mph.
	sys.AddObject(taxiID, geo.Pt(8, 8), geo.Vec(21, 21), 60, model.Props{
		Key: model.MineKey(hailing, false, rng),
	})

	// Customers: a grid of parked people around town, 40% hailing.
	var wantRide []model.ObjectID
	id := model.ObjectID(2)
	for x := 4.0; x <= 36; x += 4 {
		for y := 4.0; y <= 36; y += 4 {
			hails := rng.Float64() < 0.4
			key := model.MineKey(hailing, hails, rng)
			sys.AddObject(id, geo.Pt(x, y), geo.Vec(0, 0), 3, model.Props{Key: key})
			if hails {
				wantRide = append(wantRide, id)
			}
			id++
		}
	}
	fmt.Printf("city: 1 taxi, %d people parked, %d of them hailing a ride\n\n",
		int(id)-2, len(wantRide))

	// "…during the next 20 minutes": the query carries its lifetime, as in
	// the paper's MQ₂, and uninstalls itself when the shift segment ends.
	qid := sys.InstallQueryFor(taxiID, model.CircleRegion{R: 5}, hailing, 60, 20*60)

	// Watch the result evolve for ~20 simulated minutes.
	for i := 0; i < 10; i++ {
		time.Sleep(time.Second)
		pos, _ := sys.Position(taxiID)
		res := sys.Result(qid)
		fmt.Printf("t=%2d min  taxi at (%4.1f, %4.1f)  customers in range: %v\n",
			(i+1)*2, pos.X, pos.Y, res)
		if i == 4 {
			// The driver turns south-east.
			sys.SetVelocity(taxiID, geo.Vec(25, -12))
			fmt.Println("          (taxi turns south-east)")
		}
	}

	// At t = 20 min the duration-bound query has expired on its own.
	time.Sleep(300 * time.Millisecond)
	if rest := sys.Result(qid); len(rest) == 0 {
		fmt.Println("\nquery expired after its 20 minutes — result cleared")
	}

}
