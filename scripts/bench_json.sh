#!/bin/sh
# Emits the PR benchmark set as JSON (BENCH_PR10.json by default): the
# cost-accounting overhead benchmarks of internal/obs/cost (disabled-path
# nil-accountant calls, enabled-path charges, scrape-under-load), the
# instrumentation overhead benchmarks of internal/obs, the causal-tracing
# flight-recorder benchmarks of internal/obs/trace, the telemetry-plane
# benchmarks of internal/obs/telemetry (batch encode/decode, idle collector
# probe, per-heartbeat collect+encode, router-side merge, watchdog round),
# the serial/sharded/clustered uplink throughput benchmarks of
# internal/core — the sharded-vs-clustered delta at 10k/100k objects is the
# router-forwarding overhead — and the open-loop sustained-throughput series
# of internal/obs/load (saturation rate at 10k/100k objects, serial and
# sharded; each iteration is a full load run, so these always run 1x) —
# plus the result-stream fan-out benchmarks of internal/obs/stream
# (per-publish cost at 0/1/16/64 subscribers) and the history-log append
# benchmarks of internal/history (steady-state and evicting).
# Usage:
#
#   scripts/bench_json.sh [output.json]
#
# Tune BENCHTIME for fidelity vs speed (default 1s; CI smoke uses 1x).
set -eu

OUT="${1:-BENCH_PR10.json}"
BENCHTIME="${BENCHTIME:-1s}"

{
	go test -run '^$' -bench . -benchtime "$BENCHTIME" ./internal/obs/cost/
	go test -run '^$' -bench . -benchtime "$BENCHTIME" ./internal/obs/
	go test -run '^$' -bench . -benchtime "$BENCHTIME" ./internal/obs/trace/
	go test -run '^$' -bench . -benchtime "$BENCHTIME" ./internal/obs/telemetry/
	go test -run '^$' -bench 'BenchmarkUplink(Serial|Sharded|Clustered)(10k|100k)' -benchtime "$BENCHTIME" ./internal/core/
	go test -run '^$' -bench 'BenchmarkSustained' -benchtime 1x ./internal/obs/load/
	go test -run '^$' -bench 'BenchmarkStreamFanOut' -benchtime "$BENCHTIME" ./internal/obs/stream/
	go test -run '^$' -bench 'BenchmarkHistoryAppend' -benchtime "$BENCHTIME" ./internal/history/
} | awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns[name] = $3
		order[n++] = name
	}
	END {
		printf "{\n"
		for (i = 0; i < n; i++) {
			name = order[i]
			printf "  \"%s\": %s%s\n", name, ns[name], (i < n-1 ? "," : "")
		}
		printf "}\n"
	}
' > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
