module mobieyes

go 1.22
