// Command experiments regenerates the tables and figures of the MobiEyes
// paper's evaluation (Gedik & Liu, EDBT 2004, §5).
//
// Usage:
//
//	experiments [-exp all|table1|fig1..fig13|report] [-steps N] [-warmup N]
//	            [-scalediv D] [-seed S] [-csv DIR] [-shards N]
//	            [-metrics-addr :7072] [-report-dir DIR]
//
// With -exp all (the default) every experiment runs in paper order. The
// -scalediv flag divides the population sizes and area by D for quick
// shape checks (1 = full paper scale). With -csv, each figure is also
// written as DIR/<fig>.csv.
//
// -exp report builds the structured cost & accuracy report instead (§5
// messaging-cost sweeps from protocol ledgers, EQP-vs-LQP answer quality,
// centralized baselines, qualitative checks) and writes it to
// DIR/runreport.{json,txt} given by -report-dir, plus the text form to
// stdout. The command exits non-zero if any qualitative check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mobieyes/internal/experiments"
	"mobieyes/internal/obs"
	evtrace "mobieyes/internal/obs/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, table1, fig1..fig13, breakdown, alphamodel, report")
		steps    = flag.Int("steps", 10, "measured simulation steps per run")
		warmup   = flag.Int("warmup", 3, "warmup steps per run (excluded from metrics)")
		scalediv = flag.Int("scalediv", 1, "divide population sizes and area by this factor")
		seed     = flag.Int64("seed", 1, "workload random seed")
		csvDir   = flag.String("csv", "", "also write each figure as CSV into this directory")
		shards   = flag.Int("shards", 0, "server shards for MobiEyes runs (0/1 = serial server, >1 = concurrent sharded server)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /healthz and pprof on this address while experiments run (empty = off)")
		traceSz  = flag.Int("trace-events", 0, "causal-tracing flight recorder size in events (0 = off); requires -metrics-addr, exposed on /debug/events")
		repDir   = flag.String("report-dir", "results", "directory for -exp report artifacts (empty = stdout only)")
		mutexPF  = flag.Int("mutex-profile-fraction", 0, "sample 1/N mutex contention events on /debug/pprof/mutex (0 = leave off, -1 = disable)")
		blockPR  = flag.Int("block-profile-rate", 0, "sample blocking events lasting ≥ N ns on /debug/pprof/block (0 = leave off, -1 = disable)")
	)
	flag.Parse()
	obs.SetContentionProfiling(*mutexPF, *blockPR)

	opts := experiments.RunOpts{
		Steps:    *steps,
		Warmup:   *warmup,
		ScaleDiv: *scalediv,
		Seed:     *seed,
		Shards:   *shards,
	}
	if *traceSz > 0 {
		opts.Trace = evtrace.NewRecorder(*traceSz)
	}
	if *metrics != "" {
		reg := obs.NewRegistry()
		ms, err := obs.ListenAndServeTraced(*metrics, reg, opts.Trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer ms.Close()
		opts.Metrics = reg
		fmt.Printf("metrics on http://%v/metrics\n", ms.Addr())
	}

	runners := map[string]func(experiments.RunOpts) experiments.Figure{
		"fig1": experiments.Fig1, "fig2": experiments.Fig2,
		"fig3": experiments.Fig3, "fig4": experiments.Fig4,
		"fig5": experiments.Fig5, "fig6": experiments.Fig6,
		"fig7": experiments.Fig7, "fig8": experiments.Fig8,
		"fig9": experiments.Fig9, "fig10": experiments.Fig10,
		"fig11": experiments.Fig11, "fig12": experiments.Fig12,
		"fig13": experiments.Fig13, "alphamodel": experiments.AlphaModel,
	}

	emit := func(f experiments.Figure) {
		f.WriteTable(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}

	start := time.Now()
	switch *exp {
	case "all":
		experiments.Table1(os.Stdout)
		for _, id := range []string{
			"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
			"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		} {
			emit(runners[id](opts))
		}
	case "table1":
		experiments.Table1(os.Stdout)
	case "breakdown":
		experiments.WriteBreakdown(os.Stdout, experiments.Breakdown(opts))
	case "report":
		r := experiments.BuildRunReport(opts)
		r.WriteText(os.Stdout)
		if *repDir != "" {
			if err := r.WriteFiles(*repDir); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Printf("report written to %s/runreport.{json,txt}\n", *repDir)
		}
		if !r.AllChecksPass() {
			fmt.Fprintln(os.Stderr, "experiments: qualitative checks failed")
			os.Exit(1)
		}
	default:
		run, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
			flag.Usage()
			os.Exit(2)
		}
		emit(run(opts))
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}

func writeCSV(dir string, f experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	file, err := os.Create(filepath.Join(dir, f.ID+".csv"))
	if err != nil {
		return err
	}
	defer file.Close()
	f.WriteCSV(file)
	return file.Close()
}
