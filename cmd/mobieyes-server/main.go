// Command mobieyes-server runs the MobiEyes server as a network service:
// moving objects (cmd/mobieyes-object, or anything speaking internal/wire)
// connect over TCP, and a line-based admin interface manages queries.
//
// Usage:
//
//	mobieyes-server [-addr :7070] [-admin :7071] [-metrics-addr :7072]
//	                [-area SQMILES] [-alpha MILES] [-lazy] [-grouping]
//	                [-trace-events N]
//
// Admin protocol (one command per line, e.g. via netcat):
//
//	install <focalOID> <radius> <permille>   → "qid <id>"
//	remove <qid>                             → "ok"
//	result <qid>                             → "result <id> <oid…>"
//	conns                                    → "conns <n>"
//	TRACE [n | oid N | qid N | trace N]      → event journal (needs -trace-events)
//	quit                                     → closes the admin session
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/remote"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "object listen address")
		admin    = flag.String("admin", ":7071", "admin listen address")
		area     = flag.Float64("area", 10000, "area in square miles")
		alpha    = flag.Float64("alpha", 5, "grid cell side length")
		lazy     = flag.Bool("lazy", false, "lazy query propagation")
		grouping = flag.Bool("grouping", false, "query grouping")
		restore  = flag.String("restore", "", "restore query state from a snapshot file")
		shards   = flag.Int("shards", 0, "server grid partitions (0 = GOMAXPROCS)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /healthz and pprof on this address (empty = off)")
		traceSz  = flag.Int("trace-events", 0, "causal-tracing flight recorder size in events (0 = off); exposed on /debug/events and the admin TRACE command")
	)
	flag.Parse()

	var rec *trace.Recorder
	if *traceSz > 0 {
		rec = trace.NewRecorder(*traceSz)
	}
	reg := obs.NewRegistry()
	if *metrics != "" {
		ms, err := obs.ListenAndServeTraced(*metrics, reg, rec)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		fmt.Printf("mobieyes-server: metrics on http://%v/metrics\n", ms.Addr())
	}

	opts := core.Options{DeadReckoningThreshold: 0.01, Grouping: *grouping}
	if *lazy {
		opts.Mode = core.LazyPropagation
	}
	side := math.Sqrt(*area)
	cfg := remote.ServerConfig{
		Addr:    *addr,
		UoD:     geo.NewRect(0, 0, side, side),
		Alpha:   *alpha,
		Options: opts,
		Shards:  *shards,
		Metrics: reg,
		Trace:   rec,
	}
	var srv *remote.Server
	var err error
	if *restore != "" {
		f, ferr := os.Open(*restore)
		if ferr != nil {
			fatal(ferr)
		}
		srv, err = remote.ListenAndRestore(cfg, f)
		f.Close()
	} else {
		srv, err = remote.ListenAndServe(cfg)
	}
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	adminSrv, err := remote.ServeAdmin(*admin, srv)
	if err != nil {
		fatal(err)
	}
	defer adminSrv.Close()
	fmt.Printf("mobieyes-server: objects on %v, admin on %v, UoD %.0f×%.0f mi, alpha %.1f, %v\n",
		srv.Addr(), adminSrv.Addr(), side, side, *alpha, opts.Mode)

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobieyes-server:", err)
	os.Exit(1)
}
