// Command mobieyes-server runs the MobiEyes server as a network service:
// moving objects (cmd/mobieyes-object, or anything speaking internal/wire)
// connect over TCP, and a line-based admin interface manages queries.
//
// Usage:
//
//	mobieyes-server [-addr :7070] [-admin :7071] [-metrics-addr :7072]
//	                [-area SQMILES] [-alpha MILES] [-lazy] [-grouping]
//	                [-trace-events N] [-costs] [-stream] [-history-bytes N]
//	                [-mutex-profile-fraction N] [-block-profile-rate NS]
//	                [-cluster router -workers host:port,… | -cluster worker]
//	                [-cluster-nodes N] [-auto-recover=false]
//
// Cluster deployment: `-cluster router` makes this process the cluster's
// router tier, owning query lifecycle and routing uplinks to the worker
// processes named by -workers (each a mobieyes-worker, or a
// `mobieyes-server -cluster worker`, with matching grid flags).
// `-cluster worker` runs a bare worker node on -addr instead of an object
// server. `-cluster-nodes N` runs router plus N worker nodes inside this
// process — the clustered topology without the TCP hops. The router
// checkpoints worker focal state every telemetry round and, with
// -auto-recover (the default), fences and replays a worker that misses
// its heartbeat deadline (DESIGN.md §15).
//
// Admin protocol (one command per line, e.g. via netcat):
//
//	install <focalOID> <radius> <permille>   → "qid <id>"
//	remove <qid>                             → "ok"
//	result <qid>                             → "result <id> <oid…>"
//	conns                                    → "conns <n>"
//	TRACE [n | oid N | qid N | trace N]      → event journal (needs -trace-events)
//	LAT                                      → per-stage pipeline latency table
//	                                           (needs -trace-events; same data
//	                                           as /debug/latency)
//	COSTS [qid N | oid N]                    → cost ledgers (needs -costs)
//	SUB <qid> [n]                            → snapshot + n live deltas (needs -stream)
//	HIST [qid N | oid N]                     → history log (needs -history-bytes)
//	quit                                     → closes the admin session
//
// With -costs, a cost accountant attributes every protocol action (see
// internal/obs/cost): the admin COSTS command prints the ledgers, and the
// metrics endpoint additionally serves /debug/costs with ?cell=, ?station=,
// ?qid= and ?oid= scope filters.
//
// With -stream, every differential result transition is published to a live
// tap: /debug/stream on the metrics address serves SSE subscriptions with
// snapshot-then-delta semantics (?qid=N for one query, default firehose),
// and the admin SUB command is its line-based twin. Slow subscribers are
// evicted, never blocking uplink processing. With -history-bytes N, the
// same transitions plus object position samples are teed into an
// append-only in-memory log bounded to N bytes, served on /debug/history
// (?qid=, ?oid=, ?format=json|raw) and the admin HIST command; the raw form
// replays through cmd/mobiviz -replay. See DESIGN.md §17.
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mobieyes/internal/cluster"
	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/history"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/stream"
	"mobieyes/internal/obs/telemetry"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/remote"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "object listen address")
		admin    = flag.String("admin", ":7071", "admin listen address")
		area     = flag.Float64("area", 10000, "area in square miles")
		alpha    = flag.Float64("alpha", 5, "grid cell side length")
		lazy     = flag.Bool("lazy", false, "lazy query propagation")
		grouping = flag.Bool("grouping", false, "query grouping")
		restore  = flag.String("restore", "", "restore query state from a snapshot file")
		shards   = flag.Int("shards", 0, "server grid partitions (0 = GOMAXPROCS)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /healthz and pprof on this address (empty = off)")
		traceSz  = flag.Int("trace-events", 0, "causal-tracing flight recorder size in events (0 = off); exposed on /debug/events and the admin TRACE command")
		costs    = flag.Bool("costs", false, "attribute protocol costs per message kind, shard, cell, query and object; exposed on /debug/costs and the admin COSTS command")
		streamOn = flag.Bool("stream", false, "publish live result streams: SSE with snapshot-then-delta on /debug/stream (needs -metrics-addr) and the admin SUB command")
		histSz   = flag.Int("history-bytes", 0, "record result transitions and position samples into an append-only in-memory log bounded to N bytes (0 = off); /debug/history and the admin HIST command")
		role     = flag.String("cluster", "", `cluster role: "router" (route over -workers) or "worker" (serve one node on -addr)`)
		workers  = flag.String("workers", "", "comma-separated worker addresses for -cluster router")
		nodes    = flag.Int("cluster-nodes", 0, "run the clustered backend with N in-process worker nodes (ignored with -cluster)")
		autoRec  = flag.Bool("auto-recover", true, "with -cluster router: fence and replay a worker that misses its heartbeat deadline (checkpointed crash recovery, DESIGN.md §15)")
		mutexPF  = flag.Int("mutex-profile-fraction", 0, "sample 1/N mutex contention events on /debug/pprof/mutex (0 = leave off, -1 = disable)")
		blockPR  = flag.Int("block-profile-rate", 0, "sample blocking events lasting ≥ N ns on /debug/pprof/block (0 = leave off, -1 = disable)")
	)
	flag.Parse()
	obs.SetContentionProfiling(*mutexPF, *blockPR)

	var rec *trace.Recorder
	var lat *obs.LatencyView
	if *traceSz > 0 {
		rec = trace.NewRecorder(*traceSz)
		// The per-stage pipeline latency view over the recorder: shared
		// between /debug/latency on the metrics mux and the admin LAT command.
		lat = obs.NewLatencyView(rec)
	}
	var acct *cost.Accountant
	if *costs {
		acct = cost.New()
	}
	// Live result streaming and the history log (DESIGN.md §17). The tap and
	// store go into the server config (which instruments them); only the SSE
	// gateway — unknown to the server tier — is built and metered here.
	var tap *stream.Tap
	var gw *stream.Gateway
	if *streamOn {
		tap = stream.NewTap()
		gw = stream.NewGateway(tap)
		gw.SetCostHook(acct.GatewayEgress)
	}
	var hist *history.Store
	if *histSz > 0 {
		hist = history.NewStore(*histSz)
	}
	reg := obs.NewRegistry()
	gw.Instrument(reg)
	// The router role runs the cluster telemetry plane: workers push metric,
	// cost and trace deltas over the wire tier; the plane re-exports them
	// under node="N" labels, stitches the trace timeline, and watches the
	// cluster invariants (DESIGN.md §14). /debug/cluster and /readyz on the
	// metrics mux, HEALTH on the admin port.
	var plane *telemetry.Plane
	if *role == "router" {
		plane = telemetry.New(telemetry.Config{Metrics: reg, Trace: rec, Costs: acct})
	}
	if *metrics != "" {
		ms, err := obs.ListenAndServeWith(*metrics, reg, rec, func(mux *http.ServeMux) {
			cost.Attach(mux, acct)
			telemetry.Attach(mux, plane)
			obs.AttachLatency(mux, lat)
			stream.Attach(mux, gw)
			history.Attach(mux, hist)
		})
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		if plane != nil {
			ms.SetReady(plane.Ready)
		}
		fmt.Printf("mobieyes-server: metrics on http://%v/metrics\n", ms.Addr())
	}

	opts := core.Options{DeadReckoningThreshold: 0.01, Grouping: *grouping}
	if *lazy {
		opts.Mode = core.LazyPropagation
	}
	side := math.Sqrt(*area)
	uod := geo.NewRect(0, 0, side, side)

	if *role == "worker" {
		w := cluster.NewWorker(cluster.WorkerConfig{
			UoD: uod, Alpha: *alpha, Opts: opts,
			Metrics: reg, Costs: acct, Trace: rec,
		})
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mobieyes-server: cluster worker on %v, UoD %.0f×%.0f mi, alpha %.1f, %v\n",
			ln.Addr(), side, side, *alpha, opts.Mode)
		if err := w.Serve(ln); err != nil {
			fatal(err)
		}
		return
	}

	cfg := remote.ServerConfig{
		Addr:         *addr,
		UoD:          uod,
		Alpha:        *alpha,
		Options:      opts,
		Shards:       *shards,
		ClusterNodes: *nodes,
		Metrics:      reg,
		Trace:        rec,
		Latency:      lat,
		Costs:        acct,
		Stream:       tap,
		History:      hist,
	}
	switch *role {
	case "", "worker":
	case "router":
		addrs := strings.Split(*workers, ",")
		if *workers == "" || len(addrs) == 0 {
			fatal(fmt.Errorf("-cluster router needs -workers host:port,…"))
		}
		if *restore != "" {
			fatal(fmt.Errorf("-restore is not supported with -cluster router: workers own the table state"))
		}
		cfg.Backend = func(g *grid.Grid, opts core.Options, down core.Downlink) (core.ServerAPI, error) {
			cs, rns, err := cluster.NewRouter(g, opts, down, addrs)
			if err != nil {
				return nil, err
			}
			cluster.WireTelemetry(cs, rns, plane)
			cs.SetAutoRecover(*autoRec)
			fmt.Printf("mobieyes-server: routing over %d workers: %s\n", len(rns), *workers)
			return cs, nil
		}
	default:
		fatal(fmt.Errorf("unknown -cluster role %q (want router or worker)", *role))
	}
	var srv *remote.Server
	var err error
	if *restore != "" {
		f, ferr := os.Open(*restore)
		if ferr != nil {
			fatal(ferr)
		}
		srv, err = remote.ListenAndRestore(cfg, f)
		f.Close()
	} else {
		srv, err = remote.ListenAndServe(cfg)
	}
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	if plane != nil {
		srv.SetTelemetry(plane)
	}

	adminSrv, err := remote.ServeAdmin(*admin, srv)
	if err != nil {
		fatal(err)
	}
	defer adminSrv.Close()
	fmt.Printf("mobieyes-server: objects on %v, admin on %v, UoD %.0f×%.0f mi, alpha %.1f, %v\n",
		srv.Addr(), adminSrv.Addr(), side, side, *alpha, opts.Mode)

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobieyes-server:", err)
	os.Exit(1)
}
