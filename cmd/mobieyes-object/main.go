// Command mobieyes-object runs one moving object as a separate process: it
// connects to a mobieyes-server, integrates its own position in real time,
// runs the MobiEyes client protocol (LQT maintenance, dead reckoning,
// safe periods), and optionally wanders — changing direction at random
// intervals like the paper's workload.
//
// Usage:
//
//	mobieyes-object -addr HOST:7070 -oid N [-x MILES] [-y MILES]
//	                [-vx MPH] [-vy MPH] [-maxvel MPH] [-key K]
//	                [-area SQMILES] [-alpha MILES] [-lazy] [-grouping]
//	                [-wander SECONDS]
//
// The -area/-alpha/-lazy/-grouping flags must match the server's.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/remote"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		oid      = flag.Int("oid", 1, "object identifier")
		x        = flag.Float64("x", 50, "initial x (miles)")
		y        = flag.Float64("y", 50, "initial y (miles)")
		vx       = flag.Float64("vx", 0, "initial x velocity (mph)")
		vy       = flag.Float64("vy", 0, "initial y velocity (mph)")
		maxvel   = flag.Float64("maxvel", 100, "maximum speed (mph)")
		key      = flag.Uint64("key", 0, "property key (0 = derived from oid)")
		area     = flag.Float64("area", 10000, "area in square miles (must match server)")
		alpha    = flag.Float64("alpha", 5, "grid cell side (must match server)")
		lazy     = flag.Bool("lazy", false, "lazy query propagation (must match server)")
		grouping = flag.Bool("grouping", false, "query grouping (must match server)")
		wander   = flag.Float64("wander", 0, "re-aim randomly every ~N seconds (0 = keep course)")
	)
	flag.Parse()

	opts := core.Options{DeadReckoningThreshold: 0.01, Grouping: *grouping}
	if *lazy {
		opts.Mode = core.LazyPropagation
	}
	k := *key
	if k == 0 {
		k = uint64(*oid)*0x9e3779b9 + 1
	}
	side := math.Sqrt(*area)
	obj, err := remote.Dial(remote.ObjectConfig{
		Addr:    *addr,
		UoD:     geo.NewRect(0, 0, side, side),
		Alpha:   *alpha,
		Options: opts,
		OID:     model.ObjectID(*oid),
		Pos:     geo.Pt(*x, *y),
		Vel:     geo.Vec(*vx, *vy),
		MaxVel:  *maxvel,
		Props:   model.Props{Key: k},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobieyes-object:", err)
		os.Exit(1)
	}
	fmt.Printf("object %d connected to %s at (%.1f, %.1f)\n", *oid, *addr, *x, *y)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var wanderC <-chan time.Time
	if *wander > 0 {
		t := time.NewTicker(time.Duration(*wander * float64(time.Second)))
		defer t.Stop()
		wanderC = t.C
	}
	rng := rand.New(rand.NewSource(int64(*oid)))
	status := time.NewTicker(5 * time.Second)
	defer status.Stop()

	for {
		select {
		case <-sig:
			fmt.Println("departing")
			obj.Close()
			return
		case <-wanderC:
			ang := rng.Float64() * 2 * math.Pi
			speed := rng.Float64() * *maxvel
			obj.SetVelocity(geo.Vec(speed*math.Cos(ang), speed*math.Sin(ang)))
		case <-status.C:
			p := obj.Position()
			fmt.Printf("object %d at (%.2f, %.2f)\n", *oid, p.X, p.Y)
		}
	}
}
