// Command mobieyes runs a single configured simulation of the MobiEyes
// system (or one of the paper's centralized baselines) and prints the
// collected metrics.
//
// Usage:
//
//	mobieyes [-approach mobieyes|naive|centralopt|objectindex|queryindex]
//	         [-objects N] [-queries N] [-nmo N] [-alpha MILES] [-alen MILES]
//	         [-area SQMILES] [-steps N] [-warmup N] [-seed S]
//	         [-lazy] [-safeperiod] [-grouping] [-delta MILES] [-error]
//
// Example — the paper's default setup with lazy query propagation:
//
//	mobieyes -lazy -error
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/sim"
	"mobieyes/internal/workload"
)

func main() {
	var (
		approach   = flag.String("approach", "mobieyes", "mobieyes, naive, centralopt, objectindex or queryindex")
		objects    = flag.Int("objects", 10000, "number of moving objects (no)")
		queries    = flag.Int("queries", 1000, "number of moving queries (nmq)")
		nmo        = flag.Int("nmo", 1000, "objects changing velocity per step")
		alpha      = flag.Float64("alpha", 5, "grid cell side length in miles")
		alen       = flag.Float64("alen", 10, "base station side length in miles")
		area       = flag.Float64("area", 100000, "universe of discourse area in square miles")
		steps      = flag.Int("steps", 20, "measured steps")
		warmup     = flag.Int("warmup", 5, "warmup steps")
		seed       = flag.Int64("seed", 1, "workload seed")
		lazy       = flag.Bool("lazy", false, "use lazy query propagation (MobiEyes only)")
		safe       = flag.Bool("safeperiod", false, "enable the safe period optimization")
		predictive = flag.Bool("predictive", false, "enable the predictive entry-time scheduler (extension)")
		grouping   = flag.Bool("grouping", false, "enable query grouping")
		delta      = flag.Float64("delta", 0.01, "dead reckoning threshold in miles")
		withError  = flag.Bool("error", false, "measure result error against ground truth")
		timeseries = flag.Bool("timeseries", false, "print per-step metrics (MobiEyes only)")
		parallel   = flag.Int("parallel", 0, "worker goroutines for the per-object phases")
		mobility   = flag.String("mobility", "walk", "mobility model: walk, waypoint or gaussmarkov")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.NumObjects = *objects
	cfg.NumQueries = *queries
	cfg.VelocityChangesPerStep = *nmo
	cfg.Alpha = *alpha
	cfg.Alen = *alen
	cfg.AreaSqMiles = *area
	cfg.Steps = *steps
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.MeasureError = *withError
	cfg.Core = core.Options{
		DeadReckoningThreshold: *delta,
		SafePeriod:             *safe,
		Predictive:             *predictive,
		Grouping:               *grouping,
	}
	if *lazy {
		cfg.Core.Mode = core.LazyPropagation
	}

	switch *approach {
	case "mobieyes":
		cfg.Approach = sim.MobiEyes
	case "naive":
		cfg.Approach = sim.Naive
	case "centralopt":
		cfg.Approach = sim.CentralOptimal
	case "objectindex":
		cfg.Approach = sim.ObjectIndex
	case "queryindex":
		cfg.Approach = sim.QueryIndex
	default:
		fmt.Fprintf(os.Stderr, "mobieyes: unknown approach %q\n", *approach)
		flag.Usage()
		os.Exit(2)
	}

	cfg.Parallelism = *parallel
	switch *mobility {
	case "walk":
	case "waypoint":
		cfg.Mobility = workload.RandomWaypoint
	case "gaussmarkov":
		cfg.Mobility = workload.GaussMarkov
	default:
		fmt.Fprintf(os.Stderr, "mobieyes: unknown mobility %q\n", *mobility)
		os.Exit(2)
	}

	start := time.Now()
	var m sim.Metrics
	var history []sim.StepRecord
	if cfg.Approach == sim.MobiEyes && *timeseries {
		e := sim.NewEngine(cfg)
		e.CollectHistory()
		m = e.Run()
		history = e.History()
	} else {
		m = sim.Run(cfg)
	}
	elapsed := time.Since(start)

	if history != nil {
		fmt.Printf("%6s %10s %10s %12s %10s %10s\n",
			"step", "uplink", "downlink", "server", "avgLQT", "error")
		for _, rec := range history {
			fmt.Printf("%6d %10d %10d %12s %10.3f %10.4f\n",
				rec.Step, rec.UplinkMsgs, rec.DownlinkMsgs,
				time.Duration(rec.ServerNanos).Round(time.Microsecond),
				rec.AvgLQTSize, rec.Error)
		}
		fmt.Println()
	}

	fmt.Printf("approach:          %s", m.Approach)
	if cfg.Approach == sim.MobiEyes {
		fmt.Printf(" (%s", cfg.Core.Mode)
		if cfg.Core.SafePeriod {
			fmt.Print(", safe period")
		}
		if cfg.Core.Grouping {
			fmt.Print(", grouping")
		}
		fmt.Print(")")
	}
	fmt.Println()
	fmt.Printf("steps:             %d measured (+%d warmup), %.0f s simulated\n", m.Steps, cfg.Warmup, m.Seconds)
	fmt.Printf("messages:          %.1f /s total, %.1f /s uplink, %.1f /s downlink\n",
		m.MessagesPerSecond(), m.UplinkMessagesPerSecond(),
		m.MessagesPerSecond()-m.UplinkMessagesPerSecond())
	fmt.Printf("bytes:             %d uplink, %d downlink\n", m.UplinkBytes, m.DownlinkBytes)
	fmt.Printf("server load:       %v per step\n", m.ServerLoadPerStep())
	if cfg.Approach == sim.MobiEyes {
		fmt.Printf("client load:       %v per object per step\n", m.ClientLoadPerObjectStep(cfg.NumObjects))
		fmt.Printf("avg LQT size:      %.3f\n", m.AvgLQTSize)
		fmt.Printf("evaluations:       %d (%d skipped by safe periods)\n", m.Evals, m.Skipped)
		fmt.Printf("server ops:        %d\n", m.ServerOps)
	}
	fmt.Printf("power:             %.3f mW per object\n", m.AvgPowerWatts*1000)
	if cfg.MeasureError {
		fmt.Printf("result error:      %.5f\n", m.AvgError)
	}
	fmt.Printf("wall time:         %v\n", elapsed.Round(time.Millisecond))
}
