// Command mobitrace records, inspects and replays mobility traces
// (internal/trace): portable, deterministic captures of a workload run that
// make protocol scenarios reproducible across machines and versions.
//
// Usage:
//
//	mobitrace record -out scenario.trace [-objects N] [-steps N] [-seed S]
//	                 [-area SQMILES] [-nmo N] [-mobility walk|waypoint|gaussmarkov]
//	mobitrace info   -in scenario.trace
//	mobitrace replay -in scenario.trace
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mobieyes/internal/geo"
	"mobieyes/internal/trace"
	"mobieyes/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mobitrace record|info|replay [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "", "output trace file (required)")
	objects := fs.Int("objects", 1000, "number of moving objects")
	steps := fs.Int("steps", 100, "steps to record")
	seed := fs.Int64("seed", 1, "workload seed")
	area := fs.Float64("area", 10000, "area in square miles")
	nmo := fs.Int("nmo", 100, "velocity changes per step (random walk)")
	mobility := fs.String("mobility", "walk", "mobility model: walk, waypoint or gaussmarkov")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "mobitrace record: -out is required")
		os.Exit(2)
	}

	side := math.Sqrt(*area)
	cfg := workload.Default(geo.NewRect(0, 0, side, side))
	cfg.NumObjects = *objects
	cfg.NumQueries = 1 // queries are not part of a mobility trace
	cfg.VelocityChangesPerStep = *nmo
	cfg.Seed = *seed
	switch *mobility {
	case "walk":
	case "waypoint":
		cfg.Mobility = workload.RandomWaypoint
	case "gaussmarkov":
		cfg.Mobility = workload.GaussMarkov
	default:
		fmt.Fprintf(os.Stderr, "mobitrace: unknown mobility %q\n", *mobility)
		os.Exit(2)
	}
	w := workload.New(cfg)
	tr := trace.Record(w, *steps)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := tr.Write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("recorded %d objects × %d steps (%s mobility) to %s (%d bytes)\n",
		*objects, *steps, cfg.Mobility, *out, st.Size())
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	fs.Parse(args)
	tr := mustRead(*in)

	changes := 0
	for _, st := range tr.Steps {
		changes += len(st.Changes)
	}
	fmt.Printf("trace:            %s\n", *in)
	fmt.Printf("objects:          %d\n", len(tr.Objects))
	fmt.Printf("steps:            %d × %.0f s (%.1f simulated minutes)\n",
		len(tr.Steps), tr.StepSeconds, float64(len(tr.Steps))*tr.StepSeconds/60)
	fmt.Printf("velocity changes: %d total, %.2f per step\n",
		changes, float64(changes)/float64(max(len(tr.Steps), 1)))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	fs.Parse(args)
	tr := mustRead(*in)

	// Replay twice and verify the trajectories are identical — the
	// determinism check that makes traces trustworthy regression inputs.
	a, b := trace.NewPlayer(tr), trace.NewPlayer(tr)
	steps := 0
	for !a.Done() {
		a.Step()
		b.Step()
		steps++
	}
	for i := range a.Objects {
		if a.Objects[i].Pos != b.Objects[i].Pos {
			fmt.Fprintf(os.Stderr, "mobitrace: replay diverged at object %d\n", i)
			os.Exit(1)
		}
	}
	// Bounding box of final positions as a quick sanity signal.
	lo, hi := a.Objects[0].Pos, a.Objects[0].Pos
	for _, o := range a.Objects {
		if o.Pos.X < lo.X {
			lo.X = o.Pos.X
		}
		if o.Pos.Y < lo.Y {
			lo.Y = o.Pos.Y
		}
		if o.Pos.X > hi.X {
			hi.X = o.Pos.X
		}
		if o.Pos.Y > hi.Y {
			hi.Y = o.Pos.Y
		}
	}
	fmt.Printf("replayed %d steps over %d objects deterministically\n", steps, len(a.Objects))
	fmt.Printf("final positions span [%.1f, %.1f] × [%.1f, %.1f]\n", lo.X, hi.X, lo.Y, hi.Y)
}

func mustRead(path string) *trace.Trace {
	if path == "" {
		fmt.Fprintln(os.Stderr, "mobitrace: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobitrace:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
