// Command mobiviz renders a MobiEyes simulation as a sequence of PNG
// frames: grid lines, moving objects (gray), focal objects (blue), query
// regions (green circles), monitoring regions (dark green rectangles) and
// current targets (red). Frames make the protocol visible — monitoring
// regions jump cell-by-cell with their focal objects while the query
// circles glide continuously.
//
// Usage:
//
//	mobiviz [-out DIR] [-frames N] [-objects N] [-queries N] [-area SQMILES]
//	        [-alpha MILES] [-width PX] [-seed S] [-record FILE]
//	mobiviz -replay FILE [-out DIR] [-area SQMILES] [-alpha MILES] [-width PX]
//
// Frames are written as DIR/frame_0000.png … Combine them with any
// animation tool (e.g. ffmpeg).
//
// With -record FILE the simulated run is also written as a history log
// (internal/history): query lifecycle marks, per-step position samples and
// every sequenced result transition. With -replay FILE no simulation runs
// at all — the frames are reconstructed purely from such a log (recorded
// here, or fetched from a live server's /debug/history?format=raw), one
// frame per logged timestamp. Replayed frames show what the log carries:
// positions, query circles and result memberships; monitoring regions are
// server state and are not recorded.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"mobieyes/internal/geo"
	"mobieyes/internal/history"
	"mobieyes/internal/model"
	"mobieyes/internal/sim"
	"mobieyes/internal/viz"
)

func main() {
	var (
		out     = flag.String("out", "frames", "output directory for PNG frames")
		frames  = flag.Int("frames", 30, "number of steps/frames to render")
		objects = flag.Int("objects", 600, "number of moving objects")
		queries = flag.Int("queries", 12, "number of moving queries")
		area    = flag.Float64("area", 2500, "area in square miles")
		alpha   = flag.Float64("alpha", 5, "grid cell side length")
		width   = flag.Int("width", 800, "frame width in pixels")
		seed    = flag.Int64("seed", 1, "workload seed")
		record  = flag.String("record", "", "also write the run as a history log to FILE")
		replay  = flag.String("replay", "", "render from a recorded history log instead of simulating")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *replay != "" {
		if err := replayLog(*replay, *out, *area, *alpha, *width); err != nil {
			fatal(err)
		}
		return
	}

	cfg := sim.DefaultConfig()
	cfg.NumObjects = *objects
	cfg.NumQueries = *queries
	cfg.VelocityChangesPerStep = *objects / 10
	cfg.AreaSqMiles = *area
	cfg.Alpha = *alpha
	cfg.Seed = *seed
	var store *history.Store
	if *record != "" {
		store = history.NewStore(256 << 20)
		cfg.ResultLog = store
	}
	e := sim.NewEngine(cfg)

	for frame := 0; frame < *frames; frame++ {
		e.Step()
		if err := renderFrame(e, cfg, *width, filepath.Join(*out, fmt.Sprintf("frame_%04d.png", frame))); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("rendered %d frames to %s/\n", *frames, *out)
	if store != nil {
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		if _, err := store.WriteTo(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d history records (%d B) to %s\n", store.Records(), store.Bytes(), *record)
	}
}

// replayLog renders one PNG per logged timestamp, reconstructing the world
// from the history log alone.
func replayLog(path, out string, areaSqMiles, alpha float64, width int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	recs, err := history.ReadLog(f)
	f.Close()
	if err != nil {
		return err
	}
	frames := history.Frames(recs)
	uod := sideRect(areaSqMiles)
	for i, fr := range frames {
		name := filepath.Join(out, fmt.Sprintf("frame_%04d.png", i))
		if err := renderReplayFrame(fr, uod, alpha, width, name); err != nil {
			return err
		}
	}
	fmt.Printf("replayed %d frames (%d records) from %s to %s/\n", len(frames), len(recs), path, out)
	return nil
}

func renderReplayFrame(fr history.Frame, uod geo.Rect, alpha float64, width int, path string) error {
	c := viz.NewCanvas(uod, width)
	c.Clear(viz.Background)
	c.DrawGrid(alpha, viz.GridLine)

	focal := map[int64]bool{}
	target := map[int64]bool{}
	for _, q := range fr.Queries {
		focal[q.Focal] = true
	}
	for _, members := range fr.Results {
		for oid := range members {
			target[oid] = true
		}
	}
	for oid, p := range fr.Pos {
		if !focal[oid] && !target[oid] {
			c.DrawPoint(geo.Point{X: p[0], Y: p[1]}, 1, viz.Object)
		}
	}
	for oid, p := range fr.Pos {
		if target[oid] {
			c.DrawPoint(geo.Point{X: p[0], Y: p[1]}, 2, viz.Target)
		}
	}
	for _, q := range fr.Queries {
		if p, ok := fr.Pos[q.Focal]; ok {
			c.DrawCircle(geo.NewCircle(geo.Point{X: p[0], Y: p[1]}, q.Radius), viz.Region)
		}
	}
	for oid, p := range fr.Pos {
		if focal[oid] {
			c.DrawPoint(geo.Point{X: p[0], Y: p[1]}, 3, viz.Focal)
		}
	}

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.EncodePNG(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// sideRect mirrors sim.Config.UoD for replay runs, which have no Config.
func sideRect(areaSqMiles float64) geo.Rect {
	side := math.Sqrt(areaSqMiles)
	return geo.NewRect(0, 0, side, side)
}

func renderFrame(e *sim.Engine, cfg sim.Config, width int, path string) error {
	c := viz.NewCanvas(cfg.UoD(), width)
	c.Clear(viz.Background)
	c.DrawGrid(cfg.Alpha, viz.GridLine)

	srv := e.Server()
	objs := e.Workload().Objects

	// Collect focal objects and current targets.
	focal := map[model.ObjectID]bool{}
	target := map[model.ObjectID]bool{}
	for _, qid := range srv.QueryIDs() {
		q, ok := srv.Query(qid)
		if !ok {
			continue
		}
		focal[q.Focal] = true
		for _, oid := range srv.Result(qid) {
			target[oid] = true
		}
	}

	// Plain objects first, then targets, then focals on top.
	for _, o := range objs {
		if !focal[o.ID] && !target[o.ID] {
			c.DrawPoint(o.Pos, 1, viz.Object)
		}
	}
	for _, o := range objs {
		if target[o.ID] {
			c.DrawPoint(o.Pos, 2, viz.Target)
		}
	}
	// Regions: monitoring rectangles and query circles.
	for _, qid := range srv.QueryIDs() {
		q, ok := srv.Query(qid)
		if !ok {
			continue
		}
		if mr, ok := srv.MonRegion(qid); ok {
			c.DrawRect(e.Grid().RegionRect(mr), viz.MonRegion)
		}
		fo := objs[int(q.Focal)-1]
		c.DrawCircle(regionCircle(q, fo), viz.Region)
	}
	for _, o := range objs {
		if focal[o.ID] {
			c.DrawPoint(o.Pos, 3, viz.Focal)
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.EncodePNG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// regionCircle approximates any query region as its enclosing circle for
// display (exact for circles, the default workload shape).
func regionCircle(q model.Query, fo *model.MovingObject) geo.Circle {
	return geo.NewCircle(fo.Pos, q.Region.EnclosingRadius())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobiviz:", err)
	os.Exit(1)
}
