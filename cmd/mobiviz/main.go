// Command mobiviz renders a MobiEyes simulation as a sequence of PNG
// frames: grid lines, moving objects (gray), focal objects (blue), query
// regions (green circles), monitoring regions (dark green rectangles) and
// current targets (red). Frames make the protocol visible — monitoring
// regions jump cell-by-cell with their focal objects while the query
// circles glide continuously.
//
// Usage:
//
//	mobiviz [-out DIR] [-frames N] [-objects N] [-queries N] [-area SQMILES]
//	        [-alpha MILES] [-width PX] [-seed S]
//
// Frames are written as DIR/frame_0000.png … Combine them with any
// animation tool (e.g. ffmpeg).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/sim"
	"mobieyes/internal/viz"
)

func main() {
	var (
		out     = flag.String("out", "frames", "output directory for PNG frames")
		frames  = flag.Int("frames", 30, "number of steps/frames to render")
		objects = flag.Int("objects", 600, "number of moving objects")
		queries = flag.Int("queries", 12, "number of moving queries")
		area    = flag.Float64("area", 2500, "area in square miles")
		alpha   = flag.Float64("alpha", 5, "grid cell side length")
		width   = flag.Int("width", 800, "frame width in pixels")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.NumObjects = *objects
	cfg.NumQueries = *queries
	cfg.VelocityChangesPerStep = *objects / 10
	cfg.AreaSqMiles = *area
	cfg.Alpha = *alpha
	cfg.Seed = *seed
	e := sim.NewEngine(cfg)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for frame := 0; frame < *frames; frame++ {
		e.Step()
		if err := renderFrame(e, cfg, *width, filepath.Join(*out, fmt.Sprintf("frame_%04d.png", frame))); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("rendered %d frames to %s/\n", *frames, *out)
}

func renderFrame(e *sim.Engine, cfg sim.Config, width int, path string) error {
	c := viz.NewCanvas(cfg.UoD(), width)
	c.Clear(viz.Background)
	c.DrawGrid(cfg.Alpha, viz.GridLine)

	srv := e.Server()
	objs := e.Workload().Objects

	// Collect focal objects and current targets.
	focal := map[model.ObjectID]bool{}
	target := map[model.ObjectID]bool{}
	for _, qid := range srv.QueryIDs() {
		q, ok := srv.Query(qid)
		if !ok {
			continue
		}
		focal[q.Focal] = true
		for _, oid := range srv.Result(qid) {
			target[oid] = true
		}
	}

	// Plain objects first, then targets, then focals on top.
	for _, o := range objs {
		if !focal[o.ID] && !target[o.ID] {
			c.DrawPoint(o.Pos, 1, viz.Object)
		}
	}
	for _, o := range objs {
		if target[o.ID] {
			c.DrawPoint(o.Pos, 2, viz.Target)
		}
	}
	// Regions: monitoring rectangles and query circles.
	for _, qid := range srv.QueryIDs() {
		q, ok := srv.Query(qid)
		if !ok {
			continue
		}
		if mr, ok := srv.MonRegion(qid); ok {
			c.DrawRect(e.Grid().RegionRect(mr), viz.MonRegion)
		}
		fo := objs[int(q.Focal)-1]
		c.DrawCircle(regionCircle(q, fo), viz.Region)
	}
	for _, o := range objs {
		if focal[o.ID] {
			c.DrawPoint(o.Pos, 3, viz.Focal)
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.EncodePNG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// regionCircle approximates any query region as its enclosing circle for
// display (exact for circles, the default workload shape).
func regionCircle(q model.Query, fo *model.MovingObject) geo.Circle {
	return geo.NewCircle(fo.Pos, q.Region.EnclosingRadius())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobiviz:", err)
	os.Exit(1)
}
