// Command mobieyes-loadgen drives a MobiEyes backend with an open-loop,
// coordinated-omission-safe load (internal/obs/load) and writes the
// time-series report to results/loadreport.json.
//
// Ops arrive on a fixed schedule (op i at start + i/rate) and latency is
// measured from the *scheduled* arrival, so a backend stall is charged to
// every op that should have run during it — the quantiles answer "what
// would a client issuing at this rate have seen", not "how fast did the
// backend go when it felt like it" (see EXPERIMENTS.md on coordinated
// omission).
//
// Usage:
//
//	mobieyes-loadgen [-backend serial|sharded|cluster|tcp|all]
//	                 [-rate N] [-duration D] [-warmup D] [-interval D]
//	                 [-objects N] [-queries N] [-workers N]
//	                 [-shards N] [-nodes N] [-seed S]
//	                 [-trace] [-trace-events N] [-out results/loadreport.json]
//	                 [-metrics-addr :7072]
//	                 [-mutex-profile-fraction N] [-block-profile-rate NS]
//
// -backend all runs every backend in sequence with the same workload and
// writes them as one report file. With -trace, each run additionally
// records causal traces and reports the per-stage pipeline decomposition
// (dispatch → table → fanout → deliver). With -metrics-addr, the backend's
// live metrics (queue depths, stage histograms) and /debug/latency are
// served while the run is in progress.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mobieyes/internal/obs"
	"mobieyes/internal/obs/load"
)

func main() {
	var (
		backend  = flag.String("backend", "all", "backend under load: serial, sharded, cluster, tcp, or all")
		rate     = flag.Float64("rate", 20000, "open-loop arrival rate, ops/sec")
		duration = flag.Duration("duration", 2*time.Second, "measured window")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "warmup discarded before measuring")
		interval = flag.Duration("interval", 250*time.Millisecond, "time-series sampling period")
		objects  = flag.Int("objects", 10000, "moving-object population")
		queries  = flag.Int("queries", 0, "installed queries (0 = objects/20)")
		workers  = flag.Int("workers", 0, "issuing worker pool size (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "sharded/tcp backend partitions (0 = GOMAXPROCS)")
		nodes    = flag.Int("nodes", 4, "cluster backend worker nodes")
		seed     = flag.Uint64("seed", 1, "workload seed")
		traced   = flag.Bool("trace", false, "record causal traces and report the per-stage pipeline decomposition")
		traceSz  = flag.Int("trace-events", 1<<18, "flight recorder ring size with -trace")
		out      = flag.String("out", "results/loadreport.json", "report file (empty = stdout only)")
		metrics  = flag.String("metrics-addr", "", "serve live /metrics and /debug/latency during the run (empty = off)")
		mutexPF  = flag.Int("mutex-profile-fraction", 0, "sample 1/N mutex contention events on /debug/pprof/mutex (0 = leave off, -1 = disable)")
		blockPR  = flag.Int("block-profile-rate", 0, "sample blocking events lasting ≥ N ns on /debug/pprof/block (0 = leave off, -1 = disable)")
	)
	flag.Parse()
	obs.SetContentionProfiling(*mutexPF, *blockPR)

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		ms, err := obs.ListenAndServeTraced(*metrics, reg, nil)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		fmt.Printf("mobieyes-loadgen: metrics on http://%v/metrics\n", ms.Addr())
	}

	backends := []string{*backend}
	if *backend == "all" {
		backends = []string{"serial", "sharded", "cluster", "tcp"}
	}
	file := &load.File{}
	for _, b := range backends {
		rep, err := load.Run(load.Config{
			Backend:   b,
			Rate:      *rate,
			Duration:  *duration,
			Warmup:    *warmup,
			Interval:  *interval,
			Objects:   *objects,
			Queries:   *queries,
			Workers:   *workers,
			Shards:    *shards,
			Nodes:     *nodes,
			Seed:      *seed,
			Trace:     *traced,
			TraceSize: *traceSz,
			Registry:  reg,
		})
		if err != nil {
			fatal(err)
		}
		rep.WriteText(os.Stdout)
		file.Runs = append(file.Runs, rep)
	}

	if *out != "" {
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := file.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("mobieyes-loadgen: wrote %s (%d runs)\n", *out, len(file.Runs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobieyes-loadgen:", err)
	os.Exit(1)
}
