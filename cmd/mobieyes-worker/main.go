// Command mobieyes-worker runs one cluster worker node: it hosts a node
// engine (the FOT/SQT/RQI rows of the focals in its assigned cell range)
// and serves a router connection over the cluster wire protocol
// (internal/cluster). Start one worker per node, then point a router at
// them:
//
//	mobieyes-worker -listen :7081 &
//	mobieyes-worker -listen :7082 &
//	mobieyes-server -cluster router -workers localhost:7081,localhost:7082
//
// The grid flags (-area, -alpha) and protocol flags (-lazy, -grouping) must
// match the router's exactly: cell indices on the wire are meaningful only
// over the same tessellation.
//
// Observability matches mobieyes-server: -metrics-addr serves the worker's
// own /metrics, /debug/vars, /healthz, /readyz and pprof; -trace-events
// sizes a local flight recorder; -costs attaches a cost accountant (with
// /debug/costs on the metrics mux). Whenever any of the three is enabled,
// the worker also ships telemetry batches to its router over the cluster
// wire tier, so the router's single /metrics scrape, stitched TRACE and
// HEALTH watchdog cover this node (DESIGN.md §14).
//
// Usage:
//
//	mobieyes-worker [-listen :7081] [-area SQMILES] [-alpha MILES]
//	                [-lazy] [-grouping]
//	                [-metrics-addr :7082] [-trace-events N] [-costs]
//	                [-mutex-profile-fraction N] [-block-profile-rate NS]
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"

	"mobieyes/internal/cluster"
	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

func main() {
	var (
		listen   = flag.String("listen", ":7081", "router listen address")
		area     = flag.Float64("area", 10000, "area in square miles")
		alpha    = flag.Float64("alpha", 5, "grid cell side length")
		lazy     = flag.Bool("lazy", false, "lazy query propagation")
		grouping = flag.Bool("grouping", false, "query grouping")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /healthz, /readyz and pprof on this address (empty = off)")
		traceSz  = flag.Int("trace-events", 0, "causal-tracing flight recorder size in events (0 = off); events also ship to the router's stitched timeline")
		costs    = flag.Bool("costs", false, "attribute protocol costs per message kind; exposed on /debug/costs and shipped to the router's ledgers")
		mutexPF  = flag.Int("mutex-profile-fraction", 0, "sample 1/N mutex contention events on /debug/pprof/mutex (0 = leave off, -1 = disable)")
		blockPR  = flag.Int("block-profile-rate", 0, "sample blocking events lasting ≥ N ns on /debug/pprof/block (0 = leave off, -1 = disable)")
	)
	flag.Parse()
	obs.SetContentionProfiling(*mutexPF, *blockPR)

	var rec *trace.Recorder
	if *traceSz > 0 {
		rec = trace.NewRecorder(*traceSz)
	}
	var acct *cost.Accountant
	if *costs {
		acct = cost.New()
	}
	var reg *obs.Registry
	if *metrics != "" || rec != nil || acct != nil {
		// The registry exists whenever any observability is on: even
		// without a local HTTP endpoint, the collector ships its series to
		// the router.
		reg = obs.NewRegistry()
	}
	if *metrics != "" {
		ms, err := obs.ListenAndServeWith(*metrics, reg, rec, func(mux *http.ServeMux) {
			cost.Attach(mux, acct)
		})
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		fmt.Printf("mobieyes-worker: metrics on http://%v/metrics\n", ms.Addr())
	}

	opts := core.Options{DeadReckoningThreshold: 0.01, Grouping: *grouping}
	if *lazy {
		opts.Mode = core.LazyPropagation
	}
	side := math.Sqrt(*area)
	w := cluster.NewWorker(cluster.WorkerConfig{
		UoD:     geo.NewRect(0, 0, side, side),
		Alpha:   *alpha,
		Opts:    opts,
		Metrics: reg,
		Costs:   acct,
		Trace:   rec,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mobieyes-worker: serving on %v, UoD %.0f×%.0f mi, alpha %.1f, %v\n",
		ln.Addr(), side, side, *alpha, opts.Mode)
	if err := w.Serve(ln); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobieyes-worker:", err)
	os.Exit(1)
}
