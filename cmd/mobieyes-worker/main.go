// Command mobieyes-worker runs one cluster worker node: it hosts a node
// engine (the FOT/SQT/RQI rows of the focals in its assigned cell range)
// and serves a router connection over the cluster wire protocol
// (internal/cluster). Start one worker per node, then point a router at
// them:
//
//	mobieyes-worker -listen :7081 &
//	mobieyes-worker -listen :7082 &
//	mobieyes-server -cluster router -workers localhost:7081,localhost:7082
//
// The grid flags (-area, -alpha) and protocol flags (-lazy, -grouping) must
// match the router's exactly: cell indices on the wire are meaningful only
// over the same tessellation.
//
// Usage:
//
//	mobieyes-worker [-listen :7081] [-area SQMILES] [-alpha MILES]
//	                [-lazy] [-grouping]
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"os"

	"mobieyes/internal/cluster"
	"mobieyes/internal/core"
	"mobieyes/internal/geo"
)

func main() {
	var (
		listen   = flag.String("listen", ":7081", "router listen address")
		area     = flag.Float64("area", 10000, "area in square miles")
		alpha    = flag.Float64("alpha", 5, "grid cell side length")
		lazy     = flag.Bool("lazy", false, "lazy query propagation")
		grouping = flag.Bool("grouping", false, "query grouping")
	)
	flag.Parse()

	opts := core.Options{DeadReckoningThreshold: 0.01, Grouping: *grouping}
	if *lazy {
		opts.Mode = core.LazyPropagation
	}
	side := math.Sqrt(*area)
	w := cluster.NewWorker(cluster.WorkerConfig{
		UoD:   geo.NewRect(0, 0, side, side),
		Alpha: *alpha,
		Opts:  opts,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mobieyes-worker: serving on %v, UoD %.0f×%.0f mi, alpha %.1f, %v\n",
		ln.Addr(), side, side, *alpha, opts.Mode)
	if err := w.Serve(ln); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobieyes-worker:", err)
	os.Exit(1)
}
