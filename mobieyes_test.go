package mobieyes

import (
	"testing"
	"time"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

// TestFacadeRun exercises the public simulation API end to end.
func TestFacadeRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumObjects = 500
	cfg.NumQueries = 50
	cfg.VelocityChangesPerStep = 50
	cfg.AreaSqMiles = 5000
	cfg.Steps = 5
	cfg.Warmup = 2
	cfg.MeasureError = true

	m := Run(cfg)
	if m.Approach != MobiEyes {
		t.Errorf("Approach = %v", m.Approach)
	}
	if m.MessagesPerSecond() <= 0 {
		t.Error("no traffic")
	}
	if m.AvgError != 0 {
		t.Errorf("EQP error = %v", m.AvgError)
	}

	cfg.Core.Mode = LazyPropagation
	lqp := Run(cfg)
	if lqp.UplinkMsgs >= m.UplinkMsgs {
		t.Errorf("LQP uplinks %d not below EQP %d", lqp.UplinkMsgs, m.UplinkMsgs)
	}
}

// TestFacadeApproaches runs every baseline through the facade constants.
func TestFacadeApproaches(t *testing.T) {
	for _, a := range []Approach{Naive, CentralOptimal, ObjectIndex, QueryIndex} {
		cfg := DefaultConfig()
		cfg.Approach = a
		cfg.NumObjects = 300
		cfg.NumQueries = 30
		cfg.VelocityChangesPerStep = 30
		cfg.AreaSqMiles = 2500
		cfg.Steps = 3
		cfg.Warmup = 1
		if m := Run(cfg); m.UplinkMsgs == 0 {
			t.Errorf("%v produced no traffic", a)
		}
	}
}

// TestFacadeLiveSystem exercises the live runtime through the facade.
func TestFacadeLiveSystem(t *testing.T) {
	sys := NewLiveSystem(LiveConfig{
		UoD:          geo.NewRect(0, 0, 50, 50),
		Alpha:        5,
		TickInterval: time.Millisecond,
		TimeScale:    600,
		Options:      Options{Grouping: true},
	})
	defer sys.Close()

	all := model.Filter{Seed: 1, Permille: 1000}
	sys.AddObject(1, geo.Pt(25, 25), geo.Vec(0, 0), 100, model.Props{Key: 1})
	sys.AddObject(2, geo.Pt(26, 25), geo.Vec(0, 0), 100, model.Props{Key: 2})
	qid := sys.InstallQuery(1, model.CircleRegion{R: 3}, all, 100)

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(sys.Result(qid)) == 2 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("live result never converged: %v", sys.Result(qid))
}
