package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/grid"
	"mobieyes/internal/history"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/network"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/stream"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/power"
	"mobieyes/internal/workload"
)

// Engine runs the MobiEyes protocol over a simulated mobile system: one
// core.Server, one core.Client per moving object, a base-station deployment
// with metered broadcast delivery, and the Table 1 workload process.
//
// Broadcast delivery is modeled at grid-cell granularity: a broadcast sent
// through a set of base stations reaches every object whose current cell
// intersects a chosen station's coverage (see DESIGN.md §3 — this is the
// cell-resolution version of circle containment, identical for all
// approaches and deterministic).
type Engine struct {
	cfg   Config
	g     *grid.Grid
	dep   *network.Deployment
	w     *workload.Workload
	srv   core.ServerAPI
	cls   []*core.Client
	bkt   *buckets
	meter network.Meter
	now   model.Time
	obsm  *engineObs       // nil unless Config.Metrics set
	acct  *cost.Accountant // nil unless Config.Costs set; nil-safe methods
	tap   *stream.Tap      // nil unless Config.Stream or Config.ResultLog set
	hist  *history.Store   // nil unless Config.ResultLog set

	qids []model.QueryID // installed queries, parallel to w.Queries

	// transport queues (drained between phases). downMu guards downQueue
	// and the meter's downlink counters: with a sharded server the drain
	// processes uplink batches across goroutines, so the downlink sink must
	// accept concurrent senders. (Serial runs pay one uncontended lock.)
	downMu    sync.Mutex
	upQueue   []upEntry
	downQueue []engineDown
	// clientUp buffers each client's uplinks during a parallel phase; the
	// buffers merge into upQueue in object order afterwards, keeping
	// parallel runs bit-for-bit identical to serial ones.
	clientUp [][]msg.Message
	parallel bool

	// deliverTID is the trace ID of the downlink being delivered (see
	// Config.Trace); uplinks a client sends in response inherit it, chaining
	// causality across the simulated round trip. Written only by deliver(),
	// which runs serially in drain — parallel tick phases never deliver, so
	// they observe the zero it was reset to.
	deliverTID trace.ID

	// per-object radio accounts.
	accounts []*power.Account

	// accumulated measurements (only while measuring).
	measuring   bool
	serverNanos int64
	clientNanos int64
	lqtSamples  int64
	lqtTotal    int64
	errSamples  int64
	errTotal    float64
	stepsSeen   int

	gtScratch map[model.ObjectID]struct{}

	// Answer-quality tracking (Config.MeasureQuality): divergence records,
	// per wrong (qid, oid) pair, the measured step the pair first went
	// wrong, so its staleness in steps can be observed once it heals.
	qScratch   map[model.ObjectID]struct{}
	divergence map[qualityKey]int

	// history accumulates per-step records while measuring (enabled by
	// CollectHistory).
	collectHistory bool
	history        []StepRecord
	lastUp         int64
	lastDown       int64
	lastUpBytes    int64
	lastDownBytes  int64
	lastServerNs   int64
}

// engineDown is a queued downlink delivery.
type engineDown struct {
	target model.ObjectID // -1 = broadcast
	cells  []int32        // target cell indices for broadcasts
	m      msg.Message
	tid    trace.ID // causing trace (zero when tracing is off)
}

// upEntry is a queued uplink plus the trace it continues.
type upEntry struct {
	m   msg.Message
	tid trace.ID
}

// qualityKey identifies one (query, object) membership decision.
type qualityKey struct {
	qid model.QueryID
	oid model.ObjectID
}

// NewEngine builds a MobiEyes simulation from cfg and installs all queries.
// It panics on configurations the constructors reject (zero objects, bad α).
func NewEngine(cfg Config) *Engine {
	g := grid.New(cfg.UoD(), cfg.Alpha)
	e := &Engine{
		cfg:       cfg,
		g:         g,
		dep:       network.NewDeployment(g, cfg.Alen),
		w:         workload.New(cfg.WorkloadConfig()),
		bkt:       newBuckets(g),
		gtScratch: make(map[model.ObjectID]struct{}),
	}
	if cfg.ServerShards > 1 {
		e.srv = core.NewShardedServer(g, cfg.Core, engineDownlink{e}, cfg.ServerShards)
	} else {
		e.srv = core.NewServer(g, cfg.Core, engineDownlink{e})
	}
	if cfg.Metrics != nil {
		e.obsm = newEngineObs(cfg.Metrics)
		e.srv.Instrument(cfg.Metrics)
	}
	if cfg.Trace != nil {
		e.srv.SetTracer(cfg.Trace)
	}
	if cfg.Costs != nil {
		e.acct = cfg.Costs
		shards := 0
		if cfg.ServerShards > 1 {
			shards = cfg.ServerShards
		}
		e.acct.Configure(g.NumCells(), e.dep.NumStations(), shards)
		e.srv.SetAccountant(e.acct)
		e.dep.SetAccountant(e.acct)
		if cfg.Metrics != nil {
			e.acct.Instrument(cfg.Metrics)
		}
		if cfg.MeasureQuality {
			e.divergence = make(map[qualityKey]int)
		}
	}
	if cfg.Stream != nil || cfg.ResultLog != nil {
		e.tap = cfg.Stream
		if e.tap == nil {
			// History without streaming still needs the tap's monotone
			// per-query sequencing; a private one does the numbering.
			e.tap = stream.NewTap()
		}
		if cfg.ResultLog != nil {
			e.hist = cfg.ResultLog
			// Charge every appended log byte at the encode boundary; the
			// accountant methods are nil-safe, so this holds with Costs off.
			e.hist.SetCostHook(e.acct.HistoryAppend)
			e.tap.SetSink(func(qid int64, seq uint64, oid int64, enter bool) {
				e.hist.AppendResult(float64(e.now), qid, seq, oid, enter)
			})
		}
		if cfg.Metrics != nil {
			e.tap.Instrument(cfg.Metrics)
			e.hist.Instrument(cfg.Metrics)
		}
		e.srv.SetResultListener(func(ev core.ResultEvent) {
			e.tap.Publish(int64(ev.QID), int64(ev.OID), ev.Entered)
		})
	}
	for i, o := range e.w.Objects {
		up := engineUplink{e, i}
		c := core.NewClient(g, cfg.Core, up, o.ID, o.Props, o.MaxVel, o.Pos)
		c.SetAccountant(e.acct)
		e.cls = append(e.cls, c)
		e.accounts = append(e.accounts, power.NewAccount(cfg.Radio))
	}
	e.bkt.rebuild(e.w.Objects)
	e.clientUp = make([][]msg.Message, len(e.cls))
	e.samplePositions() // the t = 0 frame of the history log

	// Install all queries; message exchange during installation is not
	// metered as steady-state traffic (the paper measures the running
	// system), so reset the meter afterwards.
	for _, spec := range e.w.Queries {
		focal := e.w.Objects[int(spec.Focal)-1]
		qid := e.timedInstall(spec, focal.MaxVel)
		e.qids = append(e.qids, qid)
	}
	e.drain()
	e.meter.Reset()
	e.acct.Reset()
	for _, a := range e.accounts {
		a.Reset()
	}
	return e
}

func (e *Engine) timedInstall(spec workload.QuerySpec, focalMaxVel float64) model.QueryID {
	qid := e.srv.InstallQuery(spec.Focal, model.CircleRegion{R: spec.Radius}, spec.Filter, focalMaxVel)
	if e.hist != nil {
		e.hist.AppendQuery(float64(e.now), int64(qid), int64(spec.Focal), spec.Radius)
	}
	e.drain()
	return qid
}

// samplePositions tees every object's current position into the history
// log, stamped with simulation time. One sample per object per step keeps
// replays (mobiviz -replay) positionally exact; the store's size bound
// caps the cost.
func (e *Engine) samplePositions() {
	if e.hist == nil {
		return
	}
	for _, o := range e.w.Objects {
		e.hist.AppendPos(float64(e.now), int64(o.ID), o.Pos.X, o.Pos.Y)
	}
}

// Grid returns the engine's grid (for inspection and tests).
func (e *Engine) Grid() *grid.Grid { return e.g }

// Server returns the MobiEyes server under simulation — the serial
// core.Server by default, a core.ShardedServer when Config.ServerShards
// selects one. Both satisfy core.ServerAPI.
func (e *Engine) Server() core.ServerAPI { return e.srv }

// Clients returns the per-object protocol clients.
func (e *Engine) Clients() []*core.Client { return e.cls }

// Workload returns the generated workload.
func (e *Engine) Workload() *workload.Workload { return e.w }

// Now returns the current simulation time.
func (e *Engine) Now() model.Time { return e.now }

// engineDownlink implements core.Downlink (and core.TracedDownlink, so a
// traced server can hand over the causing trace ID) with metered,
// cell-granular delivery.
type engineDownlink struct{ e *Engine }

var _ core.TracedDownlink = engineDownlink{}

func (d engineDownlink) Broadcast(region grid.CellRange, m msg.Message) {
	d.BroadcastTraced(region, m, 0)
}

func (d engineDownlink) BroadcastTraced(region grid.CellRange, m msg.Message, tid trace.ID) {
	e := d.e
	stations := e.dep.Cover(region)
	// Union of target cells across chosen stations, deduplicated.
	var cells []int32
	seen := map[int32]struct{}{}
	for _, sid := range stations {
		for _, ci := range e.dep.CellsForStation(sid) {
			if _, ok := seen[ci]; !ok {
				seen[ci] = struct{}{}
				cells = append(cells, ci)
			}
		}
	}
	if e.acct != nil {
		// Transport-level attribution: one transmission per relaying base
		// station in the global ledger, one delivery per station and per
		// reached cell in the scoped tallies. Atomic counters, so this is
		// safe outside downMu.
		size := m.Size()
		e.acct.Downlink(m.Kind(), size, len(stations))
		for _, sid := range stations {
			e.acct.StationDown(int32(sid), size)
		}
		for _, ci := range cells {
			e.acct.CellDown(ci, size)
		}
	}
	e.downMu.Lock()
	e.meter.RecordDownlink(m, len(stations))
	e.downQueue = append(e.downQueue, engineDown{target: -1, cells: cells, m: m, tid: tid})
	e.downMu.Unlock()
}

func (d engineDownlink) Unicast(oid model.ObjectID, m msg.Message) {
	d.UnicastTraced(oid, m, 0)
}

func (d engineDownlink) UnicastTraced(oid model.ObjectID, m msg.Message, tid trace.ID) {
	e := d.e
	if e.acct != nil {
		// One-to-one delivery through the station covering the recipient's
		// position (positions are stable while messages flow: motion is a
		// separate serial phase).
		size := m.Size()
		e.acct.Downlink(m.Kind(), size, 1)
		if i := int(oid) - 1; i >= 0 && i < len(e.w.Objects) {
			pos := e.w.Objects[i].Pos
			e.acct.StationDown(int32(e.dep.StationOf(pos)), size)
			e.acct.CellDown(int32(e.g.CellIndex(e.g.CellOf(pos))), size)
		}
	}
	e.downMu.Lock()
	e.meter.RecordDownlink(m, 1)
	e.downQueue = append(e.downQueue, engineDown{target: oid, m: m, tid: tid})
	e.downMu.Unlock()
}

// engineUplink implements core.Uplink for one object.
type engineUplink struct {
	e *Engine
	i int // object index
}

func (u engineUplink) Send(m msg.Message) {
	e := u.e
	if e.parallel {
		// Phase running across workers: buffer privately; metering happens
		// at the ordered merge.
		e.clientUp[u.i] = append(e.clientUp[u.i], m)
		return
	}
	e.meter.RecordUplink(m)
	e.acctUplink(u.i, m)
	e.accounts[u.i].Sent(m.Size())
	e.upQueue = append(e.upQueue, upEntry{m: m, tid: e.deliverTID})
}

// acctUplink charges one uplink from object index i at the transport: the
// global ledger plus the sender's cell and uplink base station.
func (e *Engine) acctUplink(i int, m msg.Message) {
	if e.acct == nil {
		return
	}
	size := m.Size()
	e.acct.Uplink(m.Kind(), size)
	pos := e.w.Objects[i].Pos
	e.acct.StationUp(int32(e.dep.StationOf(pos)), size)
	e.acct.CellUp(int32(e.g.CellIndex(e.g.CellOf(pos))), size)
}

// drain processes queued uplinks (timed as server work) and delivers queued
// downlinks (which may enqueue more uplinks) until both queues are empty.
// With a sharded server the queued uplinks are handled as concurrent
// batches (see handleUplinkBatch); delivery to clients stays serial either
// way, so client state is only ever touched from one goroutine here.
func (e *Engine) drain() {
	concurrent := e.cfg.ServerShards > 1
	uplinks := 0
	for len(e.upQueue) > 0 || len(e.downQueue) > 0 {
		e.obsm.syncQueueDepths(len(e.upQueue), len(e.downQueue))
		if len(e.upQueue) > 0 {
			start := time.Now()
			if concurrent {
				batch := e.upQueue
				e.upQueue = nil
				uplinks += len(batch)
				e.handleUplinkBatch(batch)
			} else {
				ent := e.upQueue[0]
				e.upQueue = e.upQueue[1:]
				uplinks++
				e.srv.HandleUplinkTraced(ent.m, ent.tid)
			}
			if e.measuring {
				e.serverNanos += time.Since(start).Nanoseconds()
			}
			continue
		}
		q := e.downQueue[0]
		e.downQueue = e.downQueue[1:]
		e.deliver(q)
	}
	e.obsm.syncQueueDepths(0, 0)
	if o := e.obsm; o != nil {
		o.drainBatch.Observe(float64(uplinks))
	}
}

// handleUplinkBatch feeds a batch of uplink messages to the (sharded,
// concurrency-safe) server across ServerShards worker goroutines. Tiny
// batches are handled inline — goroutine startup would dominate.
func (e *Engine) handleUplinkBatch(batch []upEntry) {
	workers := e.cfg.ServerShards
	if len(batch) < 2*workers {
		for _, ent := range batch {
			e.srv.HandleUplinkTraced(ent.m, ent.tid)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				e.srv.HandleUplinkTraced(batch[i].m, batch[i].tid)
			}
		}()
	}
	wg.Wait()
}

func (e *Engine) deliver(q engineDown) {
	e.deliverTID = q.tid
	defer func() { e.deliverTID = 0 }()
	if q.target >= 0 {
		i := int(q.target) - 1
		e.accounts[i].Received(q.m.Size())
		o := e.w.Objects[i]
		e.cls[i].OnDownlink(q.m, o.Pos, o.Vel, e.now)
		return
	}
	size := q.m.Size()
	for _, ci := range q.cells {
		for _, oi := range e.bkt.cells[ci] {
			e.accounts[oi].Received(size)
			o := e.w.Objects[oi]
			e.cls[oi].OnDownlink(q.m, o.Pos, o.Vel, e.now)
		}
	}
}

// Step advances the simulation by one time step, executing the full §3
// pipeline: perturb velocities, move, handle cell changes, dead reckoning,
// local query evaluation, and differential result updates.
func (e *Engine) Step() {
	var stepStart time.Time
	if e.obsm != nil {
		stepStart = time.Now()
	}
	dt := model.FromSeconds(e.cfg.StepSeconds)
	e.now += dt

	// 1. Workload: border bounces and random velocity changes.
	e.w.BounceAtBorders()
	e.w.PerturbStep()

	// 2. Motion.
	for _, o := range e.w.Objects {
		o.Move(dt)
	}
	e.bkt.rebuild(e.w.Objects)
	e.samplePositions()

	// Duration-bound queries expire as the clock advances. Expiry emits the
	// implicit leaves through the result listener first, so the history
	// log's remove mark lands after its query's final transitions.
	start0 := time.Now()
	expired := e.srv.ExpireQueries(e.now)
	if e.measuring {
		e.serverNanos += time.Since(start0).Nanoseconds()
	}
	if e.hist != nil {
		for _, qid := range expired {
			e.hist.AppendQueryRemove(float64(e.now), int64(qid))
		}
	}
	e.drain()

	// 3. Cell-change phase.
	e.forEachClient(func(i int, c *core.Client) {
		o := e.w.Objects[i]
		c.TickCellChange(o.Pos, o.Vel, e.now)
	})
	e.drain()

	// 4. Dead-reckoning phase.
	e.forEachClient(func(i int, c *core.Client) {
		o := e.w.Objects[i]
		c.TickDeadReckoning(o.Pos, o.Vel, e.now)
	})
	e.drain()

	// 5. Evaluation phase (timed as client processing).
	start := time.Now()
	e.forEachClient(func(i int, c *core.Client) {
		c.TickEvaluate(e.w.Objects[i].Pos, e.w.Objects[i].Vel, e.now)
	})
	if e.measuring {
		e.clientNanos += time.Since(start).Nanoseconds()
	}
	e.drain()

	// 6. Measurements.
	if e.measuring {
		e.stepsSeen++
		var stepLQT int64
		for _, c := range e.cls {
			stepLQT += int64(c.LQTSize())
		}
		e.lqtTotal += stepLQT
		e.lqtSamples += int64(len(e.cls))
		stepErrBefore, stepErrSamplesBefore := e.errTotal, e.errSamples
		if e.cfg.MeasureError {
			e.measureError()
		}
		if e.cfg.MeasureQuality && e.acct != nil {
			e.measureQuality()
		}
		if e.collectHistory {
			rec := StepRecord{
				Step:          e.stepsSeen,
				UplinkMsgs:    e.meter.UplinkMessages() - e.lastUp,
				DownlinkMsgs:  e.meter.DownlinkMessages() - e.lastDown,
				UplinkBytes:   e.meter.UplinkBytes() - e.lastUpBytes,
				DownlinkBytes: e.meter.DownlinkBytes() - e.lastDownBytes,
				AvgLQTSize:    float64(stepLQT) / float64(len(e.cls)),
				ServerNanos:   e.serverNanos - e.lastServerNs,
			}
			if n := e.errSamples - stepErrSamplesBefore; n > 0 {
				rec.Error = (e.errTotal - stepErrBefore) / float64(n)
			}
			e.history = append(e.history, rec)
			e.lastUp = e.meter.UplinkMessages()
			e.lastDown = e.meter.DownlinkMessages()
			e.lastUpBytes = e.meter.UplinkBytes()
			e.lastDownBytes = e.meter.DownlinkBytes()
			e.lastServerNs = e.serverNanos
		}
	}

	if o := e.obsm; o != nil {
		o.steps.Add(1)
		o.stepLat.Observe(time.Since(stepStart).Seconds())
	}
}

// ResultTap returns the live result tap, or nil when neither Config.Stream
// nor Config.ResultLog enabled one. Subscribe here for snapshot-then-delta
// result streams; the tap owns the server's result-listener slot.
func (e *Engine) ResultTap() *stream.Tap { return e.tap }

// ResultLog returns the history store recording this run, or nil when
// Config.ResultLog is unset.
func (e *Engine) ResultLog() *history.Store { return e.hist }

// CollectHistory enables per-step time-series collection for subsequent
// measured steps; History returns the records.
func (e *Engine) CollectHistory() { e.collectHistory = true }

// History returns the per-step records collected so far.
func (e *Engine) History() []StepRecord { return e.history }

// forEachClient runs fn for every client, serially or across
// cfg.Parallelism workers. In parallel mode uplinks buffer per client and
// merge in object order, so the observable behavior is identical.
func (e *Engine) forEachClient(fn func(i int, c *core.Client)) {
	workers := e.cfg.Parallelism
	if workers <= 1 || len(e.cls) < 2*workers {
		for i, c := range e.cls {
			fn(i, c)
		}
		return
	}
	e.parallel = true
	var wg sync.WaitGroup
	chunk := (len(e.cls) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(e.cls) {
			hi = len(e.cls)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i, e.cls[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	e.parallel = false
	// Ordered merge: meter and queue exactly as the serial engine would.
	// Tick-driven uplinks start fresh traces, so their tid is zero.
	for i := range e.clientUp {
		for _, m := range e.clientUp[i] {
			e.meter.RecordUplink(m)
			e.acctUplink(i, m)
			e.accounts[i].Sent(m.Size())
			e.upQueue = append(e.upQueue, upEntry{m: m})
		}
		e.clientUp[i] = e.clientUp[i][:0]
	}
}

func (e *Engine) measureError() {
	for i, spec := range e.w.Queries {
		qid := e.qids[i]
		correct := groundTruth(e.bkt, e.w.Objects, spec, e.gtScratch)
		e.gtScratch = correct
		err, ok := resultError(correct, func(oid model.ObjectID) bool {
			return e.srv.ResultContains(qid, oid)
		})
		if ok {
			e.errTotal += err
			e.errSamples++
		}
	}
}

// measureQuality compares every query's result set against brute-force
// ground truth and feeds the cost accountant: per-step true/false
// positives and false negatives (the live precision/recall gauges), plus a
// staleness observation for each wrong (qid, oid) pair at the step it heals,
// measuring how long stale answers persist.
func (e *Engine) measureQuality() {
	var tp, fp, fn int64
	cur := make(map[qualityKey]struct{})
	for i, spec := range e.w.Queries {
		qid := e.qids[i]
		correct := groundTruth(e.bkt, e.w.Objects, spec, e.qScratch)
		e.qScratch = correct
		for _, oid := range e.srv.Result(qid) {
			if _, ok := correct[oid]; ok {
				tp++
			} else {
				fp++
				cur[qualityKey{qid, oid}] = struct{}{}
			}
		}
		for oid := range correct {
			if !e.srv.ResultContains(qid, oid) {
				fn++
				cur[qualityKey{qid, oid}] = struct{}{}
			}
		}
	}
	e.acct.QualityStep(tp, fp, fn)
	for k, start := range e.divergence {
		if _, still := cur[k]; !still {
			e.acct.ObserveStaleness(int64(e.stepsSeen - start))
			delete(e.divergence, k)
		}
	}
	for k := range cur {
		if _, known := e.divergence[k]; !known {
			e.divergence[k] = e.stepsSeen
		}
	}
}

// VerifyExact compares every query result against ground truth and returns
// an error describing the first mismatch (nil when exact). Used by
// integration tests of the EQP/Δ=0 exactness invariant.
func (e *Engine) VerifyExact() error {
	for i, spec := range e.w.Queries {
		qid := e.qids[i]
		correct := groundTruth(e.bkt, e.w.Objects, spec, nil)
		if got := e.srv.ResultSize(qid); got != len(correct) {
			return fmt.Errorf("query %d: result size %d, ground truth %d", qid, got, len(correct))
		}
		for oid := range correct {
			if !e.srv.ResultContains(qid, oid) {
				return fmt.Errorf("query %d: missing object %d", qid, oid)
			}
		}
	}
	return nil
}

// Run executes the configured warmup and measured steps and returns the
// collected metrics.
func (e *Engine) Run() Metrics {
	for i := 0; i < e.cfg.Warmup; i++ {
		e.Step()
	}
	e.meter.Reset()
	e.acct.Reset()
	for _, a := range e.accounts {
		a.Reset()
	}
	e.measuring = true
	for i := 0; i < e.cfg.Steps; i++ {
		e.Step()
	}
	e.measuring = false
	return e.metrics()
}

func (e *Engine) metrics() Metrics {
	m := Metrics{
		Approach:      MobiEyes,
		Steps:         e.stepsSeen,
		Seconds:       float64(e.stepsSeen) * e.cfg.StepSeconds,
		UplinkMsgs:    e.meter.UplinkMessages(),
		DownlinkMsgs:  e.meter.DownlinkMessages(),
		UplinkBytes:   e.meter.UplinkBytes(),
		DownlinkBytes: e.meter.DownlinkBytes(),
		ServerNanos:   e.serverNanos,
		ClientNanos:   e.clientNanos,
		ServerOps:     e.srv.Ops(),
		ByKind:        e.meter.Snapshot(),
	}
	if e.lqtSamples > 0 {
		m.AvgLQTSize = float64(e.lqtTotal) / float64(e.lqtSamples)
	}
	if e.errSamples > 0 {
		m.AvgError = e.errTotal / float64(e.errSamples)
	}
	if len(e.accounts) > 0 && m.Seconds > 0 {
		var joules float64
		for _, a := range e.accounts {
			joules += a.Joules()
		}
		m.AvgPowerWatts = joules / float64(len(e.accounts)) / m.Seconds
	}
	for _, c := range e.cls {
		m.Evals += c.Evals()
		m.Skipped += c.SkippedEvals()
	}
	return m
}
