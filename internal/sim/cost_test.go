package sim

import (
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/obs/cost"
)

// TestEngineCostTransportIdentity pins the transport-level attribution to
// the message meter, the engine's externally-verified source of truth: the
// accountant's global ledger must agree with the meter message-for-message
// and byte-for-byte, the per-station tallies must partition the global
// traffic exactly, and per-cell downlink deliveries must be at least one
// per transmission (broadcasts reach every cell their stations cover).
func TestEngineCostTransportIdentity(t *testing.T) {
	cfg := smallConfig()
	cfg.Costs = cost.New()
	m := NewEngine(cfg).Run()

	g := cfg.Costs.Global()
	if g.UplinkMsgs() != m.UplinkMsgs || g.UplinkBytes() != m.UplinkBytes {
		t.Errorf("global uplink ledger %d msgs/%d B, meter %d/%d",
			g.UplinkMsgs(), g.UplinkBytes(), m.UplinkMsgs, m.UplinkBytes)
	}
	if g.DownlinkMsgs() != m.DownlinkMsgs || g.DownlinkBytes() != m.DownlinkBytes {
		t.Errorf("global downlink ledger %d msgs/%d B, meter %d/%d",
			g.DownlinkMsgs(), g.DownlinkBytes(), m.DownlinkMsgs, m.DownlinkBytes)
	}

	snap := cfg.Costs.Snapshot()
	var stUp, stDown, cellUp, cellDown int64
	for _, st := range snap.Stations {
		stUp += st.UpMsgs
		stDown += st.DownMsgs
	}
	for _, c := range snap.Cells {
		cellUp += c.UpMsgs
		cellDown += c.DownMsgs
	}
	if stUp != m.UplinkMsgs || stDown != m.DownlinkMsgs {
		t.Errorf("station tallies %d up/%d down, meter %d/%d", stUp, stDown, m.UplinkMsgs, m.DownlinkMsgs)
	}
	if cellUp != m.UplinkMsgs {
		t.Errorf("cell uplink tallies %d, meter %d", cellUp, m.UplinkMsgs)
	}
	if cellDown < m.DownlinkMsgs {
		t.Errorf("cell downlink deliveries %d < %d transmissions", cellDown, m.DownlinkMsgs)
	}
	if len(snap.Queries) == 0 || len(snap.Objects) == 0 {
		t.Errorf("no per-entity attribution (queries %d, objects %d)", len(snap.Queries), len(snap.Objects))
	}
	for _, u := range []cost.Unit{
		cost.UnitDeadReckoning, cost.UnitContainment, cost.UnitLQTScan,
		cost.UnitTableOp, cost.UnitSetCover,
	} {
		if g.ComputeUnits(u) == 0 {
			t.Errorf("no %v units charged", u)
		}
	}
	if snap.Mode != "EQP" {
		t.Errorf("mode = %q, want EQP", snap.Mode)
	}
}

// TestEngineCostParallelAndShardedIdentity runs the parallel-client and
// sharded-server engines with accounting and checks the same meter
// identity, plus the shard-sum invariant at the engine level: all uplinks
// flow through the router, so the shard ledgers plus the router ledger must
// account for exactly the global uplink count.
func TestEngineCostParallelAndShardedIdentity(t *testing.T) {
	cfg := smallConfig()
	cfg.Parallelism = 4
	cfg.ServerShards = 4
	cfg.Costs = cost.New()
	m := NewEngine(cfg).Run()

	g := cfg.Costs.Global()
	if g.UplinkMsgs() != m.UplinkMsgs || g.DownlinkMsgs() != m.DownlinkMsgs {
		t.Errorf("global ledger %d up/%d down, meter %d/%d",
			g.UplinkMsgs(), g.DownlinkMsgs(), m.UplinkMsgs, m.DownlinkMsgs)
	}
	dispatched := cfg.Costs.Router().UplinkMsgs()
	for _, s := range cfg.Costs.Shards() {
		dispatched += s.UplinkMsgs()
	}
	if dispatched != g.UplinkMsgs() {
		t.Errorf("shard+router uplinks %d, transport charged %d", dispatched, g.UplinkMsgs())
	}
}

// TestEngineCostResetSemantics verifies the accountant measures steady
// state only: installation traffic is wiped by NewEngine and warmup traffic
// by Run, exactly like the message meter.
func TestEngineCostResetSemantics(t *testing.T) {
	cfg := smallConfig()
	cfg.Costs = cost.New()
	e := NewEngine(cfg)
	if g := cfg.Costs.Global(); g != (cost.LedgerSnap{}) {
		t.Fatalf("accountant not reset after installation: %+v", g)
	}
	e.Step()
	if g := cfg.Costs.Global(); g.UplinkMsgs() == 0 {
		t.Error("no uplinks charged after a measured step")
	}
}

// TestEngineCostQualityExact checks the answer-quality gauges against the
// EQP/Δ=0 exactness invariant: with provably exact results every step, the
// gauges must report perfect precision and recall and no staleness
// episodes.
func TestEngineCostQualityExact(t *testing.T) {
	cfg := smallConfig()
	cfg.Core = core.Options{} // Δ = 0: exact results
	cfg.Costs = cost.New()
	cfg.MeasureQuality = true
	NewEngine(cfg).Run()

	snap := cfg.Costs.Snapshot()
	if snap.Quality == nil {
		t.Fatal("no quality section recorded")
	}
	q := snap.Quality
	if q.TP == 0 {
		t.Error("no true positives in a populated run")
	}
	if q.FP != 0 || q.FN != 0 {
		t.Errorf("EQP Δ=0 recorded fp=%d fn=%d, want 0/0", q.FP, q.FN)
	}
	if q.CumPrecision != 1 || q.CumRecall != 1 {
		t.Errorf("precision/recall %v/%v, want 1/1", q.CumPrecision, q.CumRecall)
	}
	if q.StaleCount != 0 {
		t.Errorf("%d staleness episodes under exactness", q.StaleCount)
	}
}

// TestEngineCostQualityLQP checks the gauges see LQP's accuracy trade-off:
// lazy propagation with a coarse dead-reckoning threshold must produce some
// wrong pairs, and every healed wrong pair must land in the staleness
// histogram.
func TestEngineCostQualityLQP(t *testing.T) {
	cfg := smallConfig()
	cfg.Core.Mode = core.LazyPropagation
	cfg.Core.DeadReckoningThreshold = 0.5
	cfg.Steps = 15
	cfg.Costs = cost.New()
	cfg.MeasureQuality = true
	NewEngine(cfg).Run()

	snap := cfg.Costs.Snapshot()
	if snap.Quality == nil {
		t.Fatal("no quality section recorded")
	}
	q := snap.Quality
	if q.FP+q.FN == 0 {
		t.Error("LQP with Δ=0.5 produced no wrong pairs — quality gauges untested")
	}
	if q.CumPrecision <= 0 || q.CumPrecision > 1 || q.CumRecall <= 0 || q.CumRecall > 1 {
		t.Errorf("precision/recall out of range: %v/%v", q.CumPrecision, q.CumRecall)
	}
	if q.StaleCount > 0 {
		var bucketed int64
		for _, b := range q.Staleness {
			bucketed += b.Count
		}
		if bucketed != q.StaleCount {
			t.Errorf("staleness buckets sum to %d, %d episodes observed", bucketed, q.StaleCount)
		}
	}
	if snap.Mode != "LQP" {
		t.Errorf("mode = %q, want LQP", snap.Mode)
	}
}

// TestConfigQualityRequiresCosts pins the Validate coupling.
func TestConfigQualityRequiresCosts(t *testing.T) {
	cfg := smallConfig()
	cfg.MeasureQuality = true
	if err := cfg.Validate(); err == nil {
		t.Error("MeasureQuality without Costs validated")
	}
	cfg.Costs = cost.New()
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
