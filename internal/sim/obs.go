package sim

import (
	"mobieyes/internal/obs"
)

// Metric names of the simulation layer (scheme mobieyes_<layer>_<name>; see
// DESIGN.md §9).
const (
	metricSteps      = "mobieyes_sim_steps_total"
	metricStepSecs   = "mobieyes_sim_step_seconds"
	metricDrainBatch = "mobieyes_sim_drain_batch"
	metricUpDepth    = "mobieyes_sim_up_queue_depth"
	metricDownDepth  = "mobieyes_sim_down_queue_depth"

	helpSteps      = "Simulation steps executed."
	helpStepSecs   = "Wall-clock duration of one full simulation step."
	helpDrainBatch = "Uplink messages processed per transport drain."
	helpUpDepth    = "Uplink messages queued in the transport (0 at quiescence)."
	helpDownDepth  = "Downlink messages queued in the transport (0 at quiescence)."
)

// engineObs is the optional instrumentation of one Engine; nil (the default)
// means the engine runs uninstrumented.
type engineObs struct {
	steps      *obs.Counter
	stepLat    *obs.Histogram
	drainBatch *obs.Histogram
	// upDepth/downDepth are published by the owning goroutine from inside
	// drain (the queues themselves are not safe to measure at scrape time),
	// so a live scrape sees the instantaneous transport backlog.
	upDepth   *obs.Gauge
	downDepth *obs.Gauge
}

func newEngineObs(reg *obs.Registry) *engineObs {
	return &engineObs{
		steps:      reg.Counter(metricSteps, helpSteps),
		stepLat:    reg.Histogram(metricStepSecs, helpStepSecs, obs.LatencyBuckets),
		drainBatch: reg.Histogram(metricDrainBatch, helpDrainBatch, obs.SizeBuckets),
		upDepth:    reg.Gauge(metricUpDepth, helpUpDepth),
		downDepth:  reg.Gauge(metricDownDepth, helpDownDepth),
	}
}

// syncQueueDepths publishes the current transport queue depths.
func (o *engineObs) syncQueueDepths(up, down int) {
	if o == nil {
		return
	}
	o.upDepth.Set(float64(up))
	o.downDepth.Set(float64(down))
}
