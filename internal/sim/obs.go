package sim

import (
	"mobieyes/internal/obs"
)

// Metric names of the simulation layer (scheme mobieyes_<layer>_<name>; see
// DESIGN.md §9).
const (
	metricSteps      = "mobieyes_sim_steps_total"
	metricStepSecs   = "mobieyes_sim_step_seconds"
	metricDrainBatch = "mobieyes_sim_drain_batch"

	helpSteps      = "Simulation steps executed."
	helpStepSecs   = "Wall-clock duration of one full simulation step."
	helpDrainBatch = "Uplink messages processed per transport drain."
)

// engineObs is the optional instrumentation of one Engine; nil (the default)
// means the engine runs uninstrumented.
type engineObs struct {
	steps      *obs.Counter
	stepLat    *obs.Histogram
	drainBatch *obs.Histogram
}

func newEngineObs(reg *obs.Registry) *engineObs {
	return &engineObs{
		steps:      reg.Counter(metricSteps, helpSteps),
		stepLat:    reg.Histogram(metricStepSecs, helpStepSecs, obs.LatencyBuckets),
		drainBatch: reg.Histogram(metricDrainBatch, helpDrainBatch, obs.SizeBuckets),
	}
}
