package sim

import (
	"sort"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/workload"
)

// buckets maps grid cells to the indices of the objects inside them,
// rebuilt once per step. It accelerates both broadcast delivery and
// ground-truth evaluation.
type buckets struct {
	g     *grid.Grid
	cells [][]int32
}

func newBuckets(g *grid.Grid) *buckets {
	return &buckets{g: g, cells: make([][]int32, g.NumCells())}
}

// rebuild re-buckets all objects.
func (b *buckets) rebuild(objs []*model.MovingObject) {
	for i := range b.cells {
		b.cells[i] = b.cells[i][:0]
	}
	for i, o := range objs {
		idx := b.g.CellIndex(b.g.CellOf(o.Pos))
		b.cells[idx] = append(b.cells[idx], int32(i))
	}
}

// forEachInRegion visits every object index bucketed in cells of the range.
func (b *buckets) forEachInRegion(cr grid.CellRange, fn func(i int32)) {
	for row := cr.Min.Row; row <= cr.Max.Row; row++ {
		for col := cr.Min.Col; col <= cr.Max.Col; col++ {
			c := grid.CellID{Col: col, Row: row}
			if !b.g.Valid(c) {
				continue
			}
			for _, i := range b.cells[b.g.CellIndex(c)] {
				fn(i)
			}
		}
	}
}

// groundTruth evaluates the exact result of a query spec against the
// current object population using the cell buckets for pruning.
func groundTruth(b *buckets, objs []*model.MovingObject, q workload.QuerySpec, dst map[model.ObjectID]struct{}) map[model.ObjectID]struct{} {
	if dst == nil {
		dst = make(map[model.ObjectID]struct{})
	} else {
		for k := range dst {
			delete(dst, k)
		}
	}
	focal := objs[int(q.Focal)-1]
	region := geo.NewCircle(focal.Pos, q.Radius)
	cr := b.g.CellsIntersecting(region.BoundingRect())
	r2 := q.Radius * q.Radius
	b.forEachInRegion(cr, func(i int32) {
		o := objs[i]
		if o.Pos.Dist2(focal.Pos) <= r2 && q.Filter.Matches(o.Props) {
			dst[o.ID] = struct{}{}
		}
	})
	return dst
}

// GroundTruth evaluates the exact result of one query spec against the
// current population: every object within spec.Radius of the focal object's
// position whose properties pass the filter, ascending by object ID. It is
// the reference oracle of the simulation-test harness (DESIGN.md §10).
func GroundTruth(g *grid.Grid, objs []*model.MovingObject, spec workload.QuerySpec) []model.ObjectID {
	b := newBuckets(g)
	b.rebuild(objs)
	set := groundTruth(b, objs, spec, nil)
	out := make([]model.ObjectID, 0, len(set))
	for oid := range set {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// resultError computes the paper's Fig. 2 error measure for one query: the
// number of object identifiers missing from the reported result divided by
// the size of the correct result. Queries with empty correct results are
// reported as (0, false) and excluded from averages.
func resultError(correct map[model.ObjectID]struct{}, reported func(model.ObjectID) bool) (float64, bool) {
	if len(correct) == 0 {
		return 0, false
	}
	missing := 0
	for oid := range correct {
		if !reported(oid) {
			missing++
		}
	}
	return float64(missing) / float64(len(correct)), true
}
