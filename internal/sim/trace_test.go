package sim

import (
	"testing"

	"mobieyes/internal/obs/trace"
)

// TestTracedEngineDeterminism: attaching a flight recorder must not change
// the engine's behavior — tracing is measurement only, like Metrics.
func TestTracedEngineDeterminism(t *testing.T) {
	for _, shards := range []int{0, 4} {
		plainCfg := smallConfig()
		plainCfg.ServerShards = shards
		tracedCfg := smallConfig()
		tracedCfg.ServerShards = shards
		tracedCfg.Trace = trace.NewRecorder(1024)

		plain := NewEngine(plainCfg)
		traced := NewEngine(tracedCfg)
		for step := 0; step < 8; step++ {
			plain.Step()
			traced.Step()
			for _, qid := range plain.Server().QueryIDs() {
				ra, rb := plain.Server().Result(qid), traced.Server().Result(qid)
				if len(ra) != len(rb) {
					t.Fatalf("shards=%d step %d query %d: results diverged", shards, step, qid)
				}
				for i := range ra {
					if ra[i] != rb[i] {
						t.Fatalf("shards=%d step %d query %d: results diverged", shards, step, qid)
					}
				}
			}
		}
		if tracedCfg.Trace.Recorded() == 0 {
			t.Fatalf("shards=%d: traced engine recorded no events", shards)
		}
	}
}

// TestTracedEngineCausalChains: the engine's simulated transport carries
// trace IDs across the downlink→client→uplink round trip, so install
// completions form one causal chain (ingress + SQT insert + broadcast under
// a single trace ID).
func TestTracedEngineCausalChains(t *testing.T) {
	cfg := smallConfig()
	cfg.Trace = trace.NewRecorder(1 << 15)
	e := NewEngine(cfg)
	e.Step()

	type chain struct{ ingress, table, bcast bool }
	chains := make(map[trace.ID]*chain)
	for _, ev := range cfg.Trace.Events(trace.Filter{}) {
		if ev.Trace == 0 {
			t.Fatalf("untraced event: %v", ev)
		}
		c := chains[ev.Trace]
		if c == nil {
			c = &chain{}
			chains[ev.Trace] = c
		}
		switch ev.Kind {
		case trace.KindIngress:
			c.ingress = true
		case trace.KindTable:
			if ev.Note == "SQT insert" {
				c.table = true
			}
		case trace.KindBroadcast:
			c.bcast = true
		}
	}
	var linked bool
	for _, c := range chains {
		if c.ingress && c.table && c.bcast {
			linked = true
		}
	}
	if !linked {
		t.Fatal("no causal chain links an uplink ingress to an SQT insert and its broadcast")
	}
}
