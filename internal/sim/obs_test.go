package sim

import (
	"strings"
	"sync"
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/obs"
)

// TestInstrumentedSerialDeterminism: attaching a registry must not change
// the serial engine's behavior in any observable way — same results and the
// same deterministic operation count at every step.
func TestInstrumentedSerialDeterminism(t *testing.T) {
	plainCfg := smallConfig()
	instrCfg := smallConfig()
	instrCfg.Metrics = obs.NewRegistry()

	plain := NewEngine(plainCfg)
	instr := NewEngine(instrCfg)
	for step := 0; step < 10; step++ {
		plain.Step()
		instr.Step()
		if a, b := plain.Server().Ops(), instr.Server().Ops(); a != b {
			t.Fatalf("step %d: ops diverged, %d vs %d", step, a, b)
		}
		for _, qid := range plain.Server().QueryIDs() {
			ra, rb := plain.Server().Result(qid), instr.Server().Result(qid)
			if len(ra) != len(rb) {
				t.Fatalf("step %d query %d: results diverged", step, qid)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("step %d query %d: results diverged", step, qid)
				}
			}
		}
	}

	snap := instrCfg.Metrics.Snapshot()
	if got := snap[metricSteps]; got != int64(10) {
		t.Errorf("steps counter = %v, want 10", got)
	}
	if h, ok := snap[metricStepSecs].(map[string]any); !ok || h["count"] != int64(10) {
		t.Errorf("step latency histogram = %v, want count 10", snap[metricStepSecs])
	}
	if h, ok := snap[metricDrainBatch].(map[string]any); !ok || h["count"].(int64) == 0 {
		t.Errorf("drain batch histogram = %v, want observations", snap[metricDrainBatch])
	}
	if got := snap["mobieyes_server_ops_total"]; got != plain.Server().Ops() {
		t.Errorf("registry ops = %v, server ops = %d", got, plain.Server().Ops())
	}
}

// TestScrapeWhileSerialEngineRuns keeps a live /metrics-style scrape loop
// running while the serial (unsharded) engine steps — the cmd/experiments
// -metrics-addr wiring with -shards 0. Under -race this pins that serial
// instrumentation is scrape-safe: the table gauges are atomics the engine
// goroutine refreshes, never scrape-time reads of the server's own tables.
func TestScrapeWhileSerialEngineRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Metrics = obs.NewRegistry()
	e := NewEngine(cfg)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var b strings.Builder
		for {
			select {
			case <-done:
				return
			default:
			}
			b.Reset()
			if err := cfg.Metrics.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			cfg.Metrics.Snapshot()
		}
	}()
	for step := 0; step < 10; step++ {
		e.Step()
	}
	close(done)
	wg.Wait()

	// With the engine idle, the gauges reflect the server's real table sizes.
	snap := cfg.Metrics.Snapshot()
	if got := snap["mobieyes_server_sqt_size"]; got != float64(e.Server().NumQueries()) {
		t.Errorf("sqt_size gauge = %v, server has %d queries", got, e.Server().NumQueries())
	}
	for _, key := range []string{
		"mobieyes_server_fot_size", "mobieyes_server_rqi_entries", "mobieyes_server_pending_installs",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot missing serial table gauge %s", key)
		}
	}
}

// TestInstrumentedShardedEquivalence re-runs the serial-vs-sharded
// equivalence acceptance check with both engines instrumented, and checks
// the sharded registry carries per-shard series.
func TestInstrumentedShardedEquivalence(t *testing.T) {
	serialCfg := smallConfig()
	serialCfg.Core = core.Options{}
	serialCfg.Metrics = obs.NewRegistry()
	shardedCfg := smallConfig()
	shardedCfg.Core = core.Options{}
	shardedCfg.ServerShards = 4
	shardedCfg.Metrics = obs.NewRegistry()

	serial := NewEngine(serialCfg)
	sharded := NewEngine(shardedCfg)
	for step := 0; step < 10; step++ {
		serial.Step()
		sharded.Step()
		if err := sharded.VerifyExact(); err != nil {
			t.Fatalf("sharded step %d: %v", step, err)
		}
		for _, qid := range serial.Server().QueryIDs() {
			ra, rb := serial.Server().Result(qid), sharded.Server().Result(qid)
			if len(ra) != len(rb) {
				t.Fatalf("step %d query %d: %v vs %v", step, qid, ra, rb)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("step %d query %d: %v vs %v", step, qid, ra, rb)
				}
			}
		}
	}

	var text strings.Builder
	shardedCfg.Metrics.WritePrometheus(&text)
	expo := text.String()
	for _, want := range []string{
		`mobieyes_server_ops_total{shard="0"}`,
		`mobieyes_server_ops_total{shard="router"}`,
		`mobieyes_server_fot_size{shard="3"}`,
		"mobieyes_server_migrations_total",
		"mobieyes_sim_steps_total 10",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("sharded exposition missing %s", want)
		}
	}

	// The per-shard breakdown accessors agree with the registry's totals.
	ss := sharded.Server().(*core.ShardedServer)
	var uplinks int64
	for _, v := range ss.UplinksByShard() {
		uplinks += v
	}
	if uplinks == 0 {
		t.Error("no per-shard uplinks recorded")
	}
}
