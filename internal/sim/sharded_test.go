package sim

import (
	"testing"

	"mobieyes/internal/core"
)

// TestShardedEngineEquivalentResults is the acceptance check for the
// sharded server: a fixed-seed workload driven through a serial engine and
// a 4-shard engine (concurrent uplink drain) produces the same installed
// queries with identical Result and ResultSize at every step, and both stay
// exact against brute-force ground truth (EQP, Δ = 0).
func TestShardedEngineEquivalentResults(t *testing.T) {
	serialCfg := smallConfig()
	serialCfg.Core = core.Options{}
	shardedCfg := smallConfig()
	shardedCfg.Core = core.Options{}
	shardedCfg.ServerShards = 4

	serial := NewEngine(serialCfg)
	sharded := NewEngine(shardedCfg)
	for step := 0; step < 12; step++ {
		serial.Step()
		sharded.Step()
		if err := serial.VerifyExact(); err != nil {
			t.Fatalf("serial step %d: %v", step, err)
		}
		if err := sharded.VerifyExact(); err != nil {
			t.Fatalf("sharded step %d: %v", step, err)
		}

		a, b := serial.Server().QueryIDs(), sharded.Server().QueryIDs()
		if len(a) != len(b) {
			t.Fatalf("step %d: %d vs %d queries", step, len(a), len(b))
		}
		for i, qid := range a {
			if b[i] != qid {
				t.Fatalf("step %d: query ID mismatch %d vs %d", step, qid, b[i])
			}
			ra, rb := serial.Server().Result(qid), sharded.Server().Result(qid)
			if len(ra) != len(rb) {
				t.Fatalf("step %d query %d: ResultSize %d vs %d", step, qid, len(ra), len(rb))
			}
			for j := range ra {
				if ra[j] != rb[j] {
					t.Fatalf("step %d query %d: result %v vs %v", step, qid, ra, rb)
				}
			}
			if serial.Server().ResultSize(qid) != sharded.Server().ResultSize(qid) {
				t.Fatalf("step %d query %d: ResultSize disagrees with Result", step, qid)
			}
		}
	}
	if ss, ok := sharded.Server().(*core.ShardedServer); ok {
		if err := ss.CheckInvariants(); err != nil {
			t.Fatalf("sharded invariants: %v", err)
		}
	} else {
		t.Fatal("ServerShards=4 engine did not build a ShardedServer")
	}
}

// TestShardedEngineExactnessAllOptions: the concurrent drain stays exact
// under the optimized protocol variants too.
func TestShardedEngineExactnessAllOptions(t *testing.T) {
	for _, opts := range []core.Options{
		{SafePeriod: true},
		{Grouping: true},
		{SafePeriod: true, Grouping: true, Predictive: true},
	} {
		cfg := smallConfig()
		cfg.Core = opts
		cfg.ServerShards = 4
		cfg.Parallelism = 4 // concurrent client phases + concurrent drain
		e := NewEngine(cfg)
		for step := 0; step < 8; step++ {
			e.Step()
			if err := e.VerifyExact(); err != nil {
				t.Fatalf("opts %+v, step %d: %v", opts, step, err)
			}
		}
	}
}

// TestShardedEngineRunMetrics: the metrics pipeline (meter, ops counter,
// energy model) works over the sharded backend.
func TestShardedEngineRunMetrics(t *testing.T) {
	cfg := smallConfig()
	cfg.ServerShards = 2
	m := NewEngine(cfg).Run()
	if m.UplinkMsgs == 0 || m.DownlinkMsgs == 0 {
		t.Errorf("no traffic in a dynamic sharded run: %+v", m)
	}
	if m.ServerOps == 0 {
		t.Error("sharded server ops not counted")
	}
}
