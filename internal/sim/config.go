// Package sim is the simulation engine behind every experiment in the
// paper's evaluation (§5): a deterministic, time-stepped driver that runs
// either the distributed MobiEyes protocol (internal/core) or one of the
// centralized baselines (internal/centralized) over the Table 1 workload,
// while metering messages and bytes on the wireless medium, wall-clock
// server load, per-object communication energy, LQT sizes, query-evaluation
// counts, and result error against a brute-force ground truth.
package sim

import (
	"fmt"
	"math"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/history"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/stream"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/power"
	"mobieyes/internal/workload"
)

// Approach selects the system under test.
type Approach int

const (
	// MobiEyes is the paper's distributed protocol; core.Options selects
	// EQP/LQP and the optimizations.
	MobiEyes Approach = iota
	// Naive is the §5.3 baseline where every object reports its position
	// each step.
	Naive
	// CentralOptimal is the §5.3 baseline where every object reports
	// significant velocity-vector changes.
	CentralOptimal
	// ObjectIndex is the §5.2 centralized processor indexing objects.
	ObjectIndex
	// QueryIndex is the §5.2 centralized processor indexing queries.
	QueryIndex
)

var approachNames = [...]string{"MobiEyes", "Naive", "CentralOptimal", "ObjectIndex", "QueryIndex"}

// String implements fmt.Stringer.
func (a Approach) String() string {
	if a < 0 || int(a) >= len(approachNames) {
		return "UnknownApproach"
	}
	return approachNames[a]
}

// Config configures one simulation run. DefaultConfig returns Table 1.
type Config struct {
	Approach Approach

	// AreaSqMiles is the area of the (square) universe of discourse.
	AreaSqMiles float64
	// Alpha is the grid cell side length α in miles.
	Alpha float64
	// Alen is the base station lattice spacing in miles.
	Alen float64
	// StepSeconds is the time step ts.
	StepSeconds float64

	// Steps is the number of measured steps; Warmup steps run first and
	// are excluded from all metrics.
	Steps  int
	Warmup int

	// Workload overrides; UoD is derived from AreaSqMiles.
	NumObjects             int
	NumQueries             int
	VelocityChangesPerStep int
	RadiusFactor           float64
	Seed                   int64
	// Mobility selects the movement process (default: the paper's random
	// walk with nmo per-step velocity changes).
	Mobility workload.MobilityModel

	// Core configures the MobiEyes protocol variant (ignored by baselines).
	Core core.Options

	// Radio is the communication energy model.
	Radio power.Model

	// MeasureError compares the system's query results against brute-force
	// ground truth every step (needed for Fig. 2; costs extra time).
	MeasureError bool

	// Parallelism runs the per-object protocol phases (cell-change
	// detection, dead reckoning, query evaluation) across this many worker
	// goroutines. Results are bit-for-bit identical to the serial engine:
	// uplink messages are buffered per object and merged in object order
	// before the (serial) server processes them. 0 or 1 = serial.
	// Wall-clock server-load and client-load measurements remain
	// meaningful only in serial mode.
	Parallelism int

	// ServerShards selects the server implementation. 0 or 1 runs the
	// serial core.Server with the deterministic one-message-at-a-time
	// drain. >1 runs a core.ShardedServer with that many grid partitions
	// and handles each step's uplink batch across that many worker
	// goroutines; query results are equivalent to the serial engine's,
	// but message ordering (and therefore exact message/byte counts under
	// races) is unspecified. Ignored by the centralized baselines.
	ServerShards int

	// Metrics, when non-nil, instruments the engine and its server against
	// this registry: per-step engine latency, drain batch sizes, and all
	// server-layer metrics (see internal/obs and DESIGN.md §9). Metrics are
	// measurement only — the simulation's behavior and determinism are
	// unchanged. Nil (the default) disables instrumentation entirely.
	Metrics *obs.Registry

	// Trace, when non-nil, attaches a causal flight recorder to the server
	// and threads trace IDs through the simulated transport: a client's
	// response to a downlink continues the trace of the uplink that caused
	// it (see internal/obs/trace and DESIGN.md §11). Like Metrics, tracing
	// is measurement only — behavior and determinism are unchanged.
	Trace *trace.Recorder

	// Costs, when non-nil, attaches a cost accountant to the whole system:
	// the engine charges every message at the simulated transport (global
	// ledger plus per-cell and per-base-station tallies), the server
	// attributes uplinks per shard and traffic per query/object, and
	// clients charge their computation units (see internal/obs/cost and
	// DESIGN.md §12). The engine calls Configure on it and resets it at the
	// same quiescent points as the message meter (after installation and
	// after warmup), so ledgers describe measured steady-state traffic.
	// Like Metrics, accounting is measurement only. MobiEyes only; the
	// centralized baselines ignore it.
	Costs *cost.Accountant

	// MeasureQuality compares query results against brute-force ground
	// truth every measured step and feeds Costs with answer-quality
	// samples: per-step precision/recall and a staleness histogram counting
	// how many steps each wrong (qid, oid) pair stayed wrong. Requires
	// Costs; costs extra time like MeasureError.
	MeasureQuality bool

	// Stream, when non-nil, attaches a live result tap to the engine: every
	// differential enter/leave the server emits is published with a
	// monotone per-query sequence number, and subscribers get a
	// snapshot-then-delta view (see internal/obs/stream and DESIGN.md §17).
	// The tap owns the server's single result-listener slot; subscribe to
	// the tap instead of calling SetResultListener on the engine's server.
	// Measurement only — behavior and determinism are unchanged.
	Stream *stream.Tap

	// ResultLog, when non-nil, records the run into an append-only history
	// log (internal/history): query lifecycle marks, per-step object
	// position samples, and every sequenced result transition, all stamped
	// with simulation time so a replay is deterministic. If Stream is nil a
	// private tap supplies the sequence numbers. Charged to Costs' egress
	// meter at the encode boundary when Costs is set. (Not to be confused
	// with Engine.History, the per-step metrics time series.)
	ResultLog *history.Store
}

// DefaultConfig returns the Table 1 defaults: 100,000 mi² area, α = 5 mi,
// alen = 10 mi, ts = 30 s, 10,000 objects, 1,000 queries, 1,000 velocity
// changes per step.
func DefaultConfig() Config {
	return Config{
		Approach:               MobiEyes,
		AreaSqMiles:            100000,
		Alpha:                  5,
		Alen:                   10,
		StepSeconds:            30,
		Steps:                  20,
		Warmup:                 5,
		NumObjects:             10000,
		NumQueries:             1000,
		VelocityChangesPerStep: 1000,
		RadiusFactor:           1,
		Seed:                   1,
		Radio:                  power.DefaultGPRS(),
		// A small positive dead-reckoning threshold (≈16 m) filters the
		// floating-point drift between stepwise motion and closed-form
		// extrapolation; with Δ = 0 every object would "deviate" by a few
		// ulps each step and relay spuriously. Exactness tests use Δ = 0.
		Core: core.Options{DeadReckoningThreshold: 0.01},
	}
}

// Validate reports the first configuration error, or nil. The constructors
// panic on the same conditions (they are programmer errors); Validate lets
// callers that assemble configurations from external input fail gracefully.
func (c Config) Validate() error {
	switch {
	case c.AreaSqMiles <= 0:
		return fmt.Errorf("sim: AreaSqMiles must be positive, got %v", c.AreaSqMiles)
	case c.Alpha <= 0:
		return fmt.Errorf("sim: Alpha must be positive, got %v", c.Alpha)
	case c.Alen <= 0:
		return fmt.Errorf("sim: Alen must be positive, got %v", c.Alen)
	case c.StepSeconds <= 0:
		return fmt.Errorf("sim: StepSeconds must be positive, got %v", c.StepSeconds)
	case c.NumObjects <= 0:
		return fmt.Errorf("sim: NumObjects must be positive, got %d", c.NumObjects)
	case c.NumQueries < 0:
		return fmt.Errorf("sim: NumQueries must be non-negative, got %d", c.NumQueries)
	case c.VelocityChangesPerStep < 0:
		return fmt.Errorf("sim: VelocityChangesPerStep must be non-negative, got %d", c.VelocityChangesPerStep)
	case c.Steps < 0 || c.Warmup < 0:
		return fmt.Errorf("sim: Steps and Warmup must be non-negative, got %d/%d", c.Steps, c.Warmup)
	case c.Core.DeadReckoningThreshold < 0:
		return fmt.Errorf("sim: DeadReckoningThreshold must be non-negative, got %v", c.Core.DeadReckoningThreshold)
	case c.ServerShards < 0:
		return fmt.Errorf("sim: ServerShards must be non-negative, got %d", c.ServerShards)
	case c.MeasureQuality && c.Costs == nil:
		return fmt.Errorf("sim: MeasureQuality requires a Costs accountant")
	}
	return nil
}

// UoD returns the square universe of discourse for the configured area.
func (c Config) UoD() geo.Rect {
	side := math.Sqrt(c.AreaSqMiles)
	return geo.NewRect(0, 0, side, side)
}

// WorkloadConfig materializes the workload generator configuration.
func (c Config) WorkloadConfig() workload.Config {
	w := workload.Default(c.UoD())
	w.NumObjects = c.NumObjects
	w.NumQueries = c.NumQueries
	w.VelocityChangesPerStep = c.VelocityChangesPerStep
	w.RadiusFactor = c.RadiusFactor
	w.Seed = c.Seed
	w.Mobility = c.Mobility
	w.StepSeconds = c.StepSeconds
	return w
}
