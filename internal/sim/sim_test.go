package sim

import (
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/workload"
)

// smallConfig is a laptop-fast configuration that still exercises every
// subsystem: ~2000 mi² UoD, 300 objects, 30 queries.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.AreaSqMiles = 2500
	cfg.Alpha = 5
	cfg.Alen = 10
	cfg.NumObjects = 300
	cfg.NumQueries = 30
	cfg.VelocityChangesPerStep = 30
	cfg.Steps = 10
	cfg.Warmup = 2
	return cfg
}

func TestApproachString(t *testing.T) {
	for _, a := range []Approach{MobiEyes, Naive, CentralOptimal, ObjectIndex, QueryIndex} {
		if a.String() == "UnknownApproach" || a.String() == "" {
			t.Errorf("approach %d has no name", a)
		}
	}
	if Approach(99).String() != "UnknownApproach" {
		t.Error("out-of-range approach")
	}
}

func TestConfigUoD(t *testing.T) {
	cfg := DefaultConfig()
	u := cfg.UoD()
	if got := u.Area(); got < 99999 || got > 100001 {
		t.Errorf("UoD area = %v", got)
	}
}

// TestEngineExactnessEQP is the end-to-end version of the core invariant:
// run the full engine (base stations, cell-granular broadcasts, metering)
// with EQP and Δ = 0 and verify every query result is exact at every step.
func TestEngineExactnessEQP(t *testing.T) {
	for _, opts := range []core.Options{
		{},
		{SafePeriod: true},
		{Grouping: true},
		{SafePeriod: true, Grouping: true},
		{Predictive: true},
		{Predictive: true, Grouping: true},
	} {
		cfg := smallConfig()
		cfg.Core = opts
		e := NewEngine(cfg)
		for step := 0; step < 12; step++ {
			e.Step()
			if err := e.VerifyExact(); err != nil {
				t.Fatalf("opts %+v, step %d: %v", opts, step, err)
			}
		}
	}
}

func TestEngineRunMetrics(t *testing.T) {
	cfg := smallConfig()
	cfg.MeasureError = true
	m := NewEngine(cfg).Run()
	if m.Steps != cfg.Steps {
		t.Errorf("Steps = %d, want %d", m.Steps, cfg.Steps)
	}
	if m.Seconds != float64(cfg.Steps)*cfg.StepSeconds {
		t.Errorf("Seconds = %v", m.Seconds)
	}
	if m.UplinkMsgs == 0 {
		t.Error("no uplink messages in a dynamic run")
	}
	if m.DownlinkMsgs == 0 {
		t.Error("no downlink messages in a dynamic run")
	}
	if m.AvgLQTSize <= 0 {
		t.Error("AvgLQTSize should be positive with 30 queries on a 50×50 UoD")
	}
	if m.AvgError != 0 {
		t.Errorf("EQP Δ=0 error = %v, want 0", m.AvgError)
	}
	if m.AvgPowerWatts <= 0 {
		t.Error("power not accounted")
	}
	if m.Evals == 0 {
		t.Error("no evaluations counted")
	}
	if m.MessagesPerSecond() <= 0 || m.ServerLoadPerStep() < 0 {
		t.Error("derived metrics broken")
	}
}

func TestEngineLQPHasBoundedError(t *testing.T) {
	cfg := smallConfig()
	cfg.Core.Mode = core.LazyPropagation
	cfg.MeasureError = true
	cfg.Steps = 15
	m := NewEngine(cfg).Run()
	// LQP trades accuracy for messages: some error is expected in a dynamic
	// population but it must stay small (the paper reports ≤ ~12% at the
	// extremes, typically a few percent).
	if m.AvgError < 0 || m.AvgError > 0.5 {
		t.Errorf("LQP error = %v, outside plausible range", m.AvgError)
	}
}

func TestLQPSendsFewerMessagesThanEQP(t *testing.T) {
	cfgE := smallConfig()
	mE := NewEngine(cfgE).Run()

	cfgL := smallConfig()
	cfgL.Core.Mode = core.LazyPropagation
	mL := NewEngine(cfgL).Run()

	if mL.UplinkMsgs >= mE.UplinkMsgs {
		t.Errorf("LQP uplinks (%d) not fewer than EQP (%d)", mL.UplinkMsgs, mE.UplinkMsgs)
	}
}

func TestBaselineSmoke(t *testing.T) {
	for _, a := range []Approach{Naive, CentralOptimal, ObjectIndex, QueryIndex} {
		cfg := smallConfig()
		cfg.Approach = a
		cfg.MeasureError = true
		m := Run(cfg)
		if m.Approach != a {
			t.Errorf("%v: wrong approach tag %v", a, m.Approach)
		}
		if m.UplinkMsgs == 0 {
			t.Errorf("%v: no uplink traffic", a)
		}
		if m.DownlinkMsgs != 0 {
			t.Errorf("%v: baselines have no downlink, got %d", a, m.DownlinkMsgs)
		}
		// Centralized processors track results exactly (naïve and the two
		// indexes see every position; central optimal extrapolates exactly
		// with Δ=0 dead reckoning).
		if m.AvgError > 1e-9 {
			t.Errorf("%v: error = %v, want 0", a, m.AvgError)
		}
	}
}

func TestNaiveSendsMorePositionReportsThanCentralOptimal(t *testing.T) {
	cfgN := smallConfig()
	cfgN.Approach = Naive
	mN := Run(cfgN)

	cfgC := smallConfig()
	cfgC.Approach = CentralOptimal
	mC := Run(cfgC)

	if mC.UplinkMsgs >= mN.UplinkMsgs {
		t.Errorf("central optimal uplinks (%d) not fewer than naive (%d)", mC.UplinkMsgs, mN.UplinkMsgs)
	}
	// Naive sends one report per moving object per step.
	expected := int64(cfgN.NumObjects * cfgN.Steps)
	if mN.UplinkMsgs < expected*9/10 || mN.UplinkMsgs > expected {
		t.Errorf("naive uplinks = %d, want ≈%d", mN.UplinkMsgs, expected)
	}
}

func TestMobiEyesUplinkFarBelowNaive(t *testing.T) {
	cfgM := smallConfig()
	mM := Run(cfgM)

	cfgN := smallConfig()
	cfgN.Approach = Naive
	mN := Run(cfgN)

	if mM.UplinkMsgs*2 >= mN.UplinkMsgs {
		t.Errorf("MobiEyes uplinks (%d) should be far below naive (%d)", mM.UplinkMsgs, mN.UplinkMsgs)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := smallConfig()
	a := Run(cfg)
	b := Run(cfg)
	if a.UplinkMsgs != b.UplinkMsgs || a.DownlinkMsgs != b.DownlinkMsgs ||
		a.UplinkBytes != b.UplinkBytes || a.AvgLQTSize != b.AvgLQTSize {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := smallConfig()
	a := Run(cfg)
	cfg.Seed = 42
	b := Run(cfg)
	if a.UplinkMsgs == b.UplinkMsgs && a.DownlinkMsgs == b.DownlinkMsgs &&
		a.AvgLQTSize == b.AvgLQTSize {
		t.Error("different seeds produced identical metrics — suspicious")
	}
}

func TestSafePeriodReducesClientEvals(t *testing.T) {
	cfgOff := smallConfig()
	mOff := Run(cfgOff)

	cfgOn := smallConfig()
	cfgOn.Core.SafePeriod = true
	mOn := Run(cfgOn)

	if mOn.Skipped == 0 {
		t.Error("safe period never skipped an evaluation")
	}
	if mOn.Evals >= mOff.Evals {
		t.Errorf("evals with safe period (%d) ≥ without (%d)", mOn.Evals, mOff.Evals)
	}
	if mOff.Skipped != 0 {
		t.Errorf("skips without safe period: %d", mOff.Skipped)
	}
}

func TestGroupingReducesMessages(t *testing.T) {
	// Force heavy query sharing: few objects, many queries → many queries
	// per focal object.
	mk := func(grouping bool) Metrics {
		cfg := smallConfig()
		cfg.NumObjects = 50
		cfg.NumQueries = 60
		cfg.VelocityChangesPerStep = 25
		cfg.Core.Grouping = grouping
		return Run(cfg)
	}
	plain := mk(false)
	grouped := mk(true)
	if grouped.DownlinkMsgs >= plain.DownlinkMsgs {
		t.Errorf("grouping downlinks (%d) not fewer than plain (%d)",
			grouped.DownlinkMsgs, plain.DownlinkMsgs)
	}
	if grouped.Evals >= plain.Evals {
		t.Errorf("grouping evals (%d) not fewer than plain (%d)", grouped.Evals, plain.Evals)
	}
}

func TestLQTSizeGrowsWithAlpha(t *testing.T) {
	mk := func(alpha float64) float64 {
		cfg := smallConfig()
		cfg.Alpha = alpha
		return Run(cfg).AvgLQTSize
	}
	small := mk(2.5)
	large := mk(10)
	if large <= small {
		t.Errorf("AvgLQT(α=10) = %v not larger than AvgLQT(α=2.5) = %v", large, small)
	}
}

func TestLQTSizeGrowsWithQueries(t *testing.T) {
	mk := func(nmq int) float64 {
		cfg := smallConfig()
		cfg.NumQueries = nmq
		return Run(cfg).AvgLQTSize
	}
	few := mk(10)
	many := mk(60)
	if many <= few {
		t.Errorf("AvgLQT(60 queries) = %v not larger than AvgLQT(10) = %v", many, few)
	}
}

func TestMetricsStringNonEmpty(t *testing.T) {
	m := Run(smallConfig())
	if m.String() == "" {
		t.Error("empty Metrics.String")
	}
	if m.ClientLoadPerObjectStep(300) < 0 {
		t.Error("negative client load")
	}
	var zero Metrics
	if zero.MessagesPerSecond() != 0 || zero.UplinkMessagesPerSecond() != 0 ||
		zero.ServerLoadPerStep() != 0 || zero.ClientLoadPerObjectStep(0) != 0 {
		t.Error("zero metrics should yield zero rates")
	}
}

func TestGroundTruthMatchesBruteForce(t *testing.T) {
	cfg := smallConfig()
	e := NewEngine(cfg)
	e.Step()
	for i, spec := range e.w.Queries {
		fast := groundTruth(e.bkt, e.w.Objects, spec, nil)
		// Plain O(n) scan.
		focal := e.w.Objects[int(spec.Focal)-1]
		slow := map[model.ObjectID]struct{}{}
		for _, o := range e.w.Objects {
			if o.Pos.Dist2(focal.Pos) <= spec.Radius*spec.Radius && spec.Filter.Matches(o.Props) {
				slow[o.ID] = struct{}{}
			}
		}
		if len(fast) != len(slow) {
			t.Fatalf("query %d: bucketed %d vs brute %d", i, len(fast), len(slow))
		}
		for oid := range slow {
			if _, ok := fast[oid]; !ok {
				t.Fatalf("query %d: bucketed ground truth missing %d", i, oid)
			}
		}
	}
}

func TestBaselinePanicsOnWrongApproach(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := smallConfig()
	cfg.Approach = MobiEyes
	NewBaselineEngine(cfg)
}

// TestEngineExactnessWaypointMobility: the EQP/Δ=0 exactness invariant also
// holds under the random-waypoint mobility model, whose velocity changes
// come from arrivals and departures rather than the nmo process.
func TestEngineExactnessWaypointMobility(t *testing.T) {
	cfg := smallConfig()
	cfg.Mobility = workload.RandomWaypoint
	e := NewEngine(cfg)
	for step := 0; step < 15; step++ {
		e.Step()
		if err := e.VerifyExact(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestWaypointRunMetricsDiffer(t *testing.T) {
	walk := Run(smallConfig())
	cfg := smallConfig()
	cfg.Mobility = workload.RandomWaypoint
	wp := Run(cfg)
	if wp.UplinkMsgs == walk.UplinkMsgs {
		t.Error("waypoint workload produced identical traffic to random walk — suspicious")
	}
	if wp.UplinkMsgs == 0 {
		t.Error("no traffic under waypoint mobility")
	}
}

func TestMetricsByKindBreakdown(t *testing.T) {
	cfg := smallConfig()
	m := Run(cfg)
	if len(m.ByKind) == 0 {
		t.Fatal("no per-kind stats")
	}
	var total int64
	for _, ks := range m.ByKind {
		total += ks.UplinkMsgs + ks.DownlinkMsgs
	}
	if total != m.UplinkMsgs+m.DownlinkMsgs {
		t.Errorf("per-kind sum %d != aggregate %d", total, m.UplinkMsgs+m.DownlinkMsgs)
	}
	if m.KindCount(msg.KindCellChangeReport) == 0 {
		t.Error("no cell change reports in a dynamic EQP run")
	}
	if m.KindCount(msg.KindPositionReport) != 0 {
		t.Error("MobiEyes sent naive position reports")
	}

	// LQP suppresses most cell-change uplinks (only focal objects report).
	cfgL := smallConfig()
	cfgL.Core.Mode = core.LazyPropagation
	mL := Run(cfgL)
	if mL.KindCount(msg.KindCellChangeReport) >= m.KindCount(msg.KindCellChangeReport) {
		t.Errorf("LQP cell-change count %d not below EQP %d",
			mL.KindCount(msg.KindCellChangeReport), m.KindCount(msg.KindCellChangeReport))
	}

	// Grouping produces bitmap reports on a query-heavy workload.
	cfgG := smallConfig()
	cfgG.NumObjects = 50
	cfgG.NumQueries = 60
	cfgG.Core.Grouping = true
	mG := Run(cfgG)
	if mG.KindCount(msg.KindGroupContainmentReport) == 0 {
		t.Error("grouping produced no bitmap reports")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := map[string]func(*Config){
		"area":    func(c *Config) { c.AreaSqMiles = 0 },
		"alpha":   func(c *Config) { c.Alpha = -1 },
		"alen":    func(c *Config) { c.Alen = 0 },
		"step":    func(c *Config) { c.StepSeconds = 0 },
		"objects": func(c *Config) { c.NumObjects = 0 },
		"queries": func(c *Config) { c.NumQueries = -1 },
		"nmo":     func(c *Config) { c.VelocityChangesPerStep = -1 },
		"steps":   func(c *Config) { c.Steps = -1 },
		"delta":   func(c *Config) { c.Core.DeadReckoningThreshold = -0.5 },
		"shards":  func(c *Config) { c.ServerShards = -1 },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

// TestSoakExactnessFullScale runs the full Table 1 configuration (10,000
// objects, 1,000 queries) and verifies exactness at every step. Skipped
// under -short (~10 s).
func TestSoakExactnessFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale soak skipped with -short")
	}
	cfg := DefaultConfig()
	cfg.Core = core.Options{} // Δ = 0 for exactness
	e := NewEngine(cfg)
	for step := 0; step < 10; step++ {
		e.Step()
		if err := e.VerifyExact(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestParallelEngineIdenticalToSerial: the worker-pool engine produces
// exactly the serial engine's metrics and results.
func TestParallelEngineIdenticalToSerial(t *testing.T) {
	serialCfg := smallConfig()
	parallelCfg := smallConfig()
	parallelCfg.Parallelism = 4

	serial := Run(serialCfg)
	parallel := Run(parallelCfg)

	if serial.UplinkMsgs != parallel.UplinkMsgs ||
		serial.DownlinkMsgs != parallel.DownlinkMsgs ||
		serial.UplinkBytes != parallel.UplinkBytes ||
		serial.DownlinkBytes != parallel.DownlinkBytes ||
		serial.AvgLQTSize != parallel.AvgLQTSize ||
		serial.Evals != parallel.Evals {
		t.Errorf("parallel run diverged:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
}

func TestParallelEngineExactness(t *testing.T) {
	cfg := smallConfig()
	cfg.Parallelism = 8
	cfg.Core = core.Options{SafePeriod: true, Grouping: true}
	e := NewEngine(cfg)
	for step := 0; step < 10; step++ {
		e.Step()
		if err := e.VerifyExact(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestEngineHistory(t *testing.T) {
	cfg := smallConfig()
	cfg.MeasureError = true
	e := NewEngine(cfg)
	e.CollectHistory()
	m := e.Run()
	h := e.History()
	if len(h) != cfg.Steps {
		t.Fatalf("history length = %d, want %d", len(h), cfg.Steps)
	}
	var up, down int64
	for i, rec := range h {
		if rec.Step != i+1 {
			t.Errorf("record %d has step %d", i, rec.Step)
		}
		if rec.AvgLQTSize < 0 || rec.UplinkMsgs < 0 || rec.DownlinkMsgs < 0 {
			t.Errorf("negative record: %+v", rec)
		}
		up += rec.UplinkMsgs
		down += rec.DownlinkMsgs
	}
	if up != m.UplinkMsgs || down != m.DownlinkMsgs {
		t.Errorf("history sums %d/%d, metrics %d/%d", up, down, m.UplinkMsgs, m.DownlinkMsgs)
	}
}

// TestEngineExactnessGaussMarkov: exactness also holds under the smooth
// Gauss-Markov mobility — the dead-reckoning stress case where every object
// changes velocity every step.
func TestEngineExactnessGaussMarkov(t *testing.T) {
	cfg := smallConfig()
	cfg.Mobility = workload.GaussMarkov
	e := NewEngine(cfg)
	for step := 0; step < 10; step++ {
		e.Step()
		if err := e.VerifyExact(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestGaussMarkovStressesDeadReckoning: with every object changing velocity
// every step, uplink traffic rises well above the random-walk workload.
func TestGaussMarkovStressesDeadReckoning(t *testing.T) {
	walk := Run(smallConfig())
	cfg := smallConfig()
	cfg.Mobility = workload.GaussMarkov
	gm := Run(cfg)
	if gm.UplinkMsgs <= walk.UplinkMsgs {
		t.Errorf("Gauss-Markov uplinks (%d) not above random walk (%d)", gm.UplinkMsgs, walk.UplinkMsgs)
	}
}
