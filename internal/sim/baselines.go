package sim

import (
	"time"

	"mobieyes/internal/centralized"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/network"
	"mobieyes/internal/power"
	"mobieyes/internal/workload"
)

// BaselineEngine drives one of the centralized comparison systems over the
// same workload process as the MobiEyes engine, with identical metering.
// In all four baselines the objects push updates up and the server does the
// processing; there is no downlink traffic to meter (query answers are
// delivered to the querying application at the server, not broadcast).
type BaselineEngine struct {
	cfg Config
	g   *grid.Grid
	w   *workload.Workload
	bkt *buckets

	objectIndex *centralized.ObjectIndex
	queryIndex  *centralized.QueryIndex
	naive       *centralized.NaiveServer
	centralOpt  *centralized.CentralOptimal

	// lastRelayed is the per-object dead-reckoning state for the central
	// optimal baseline.
	lastRelayed []model.MotionState
	// lastPos tracks movement for the naïve baseline ("if its position has
	// changed").
	lastPos []geo.Point
	// isFocal marks the focal objects; the query index processes their
	// reports first so its differential evaluation sees fresh query
	// rectangles within each step.
	isFocal []bool

	meter    network.Meter
	accounts []*power.Account
	now      model.Time

	measuring   bool
	serverNanos int64
	stepsSeen   int
	errTotal    float64
	errSamples  int64
}

// NewBaselineEngine builds a baseline simulation for cfg.Approach (one of
// Naive, CentralOptimal, ObjectIndex, QueryIndex).
func NewBaselineEngine(cfg Config) *BaselineEngine {
	g := grid.New(cfg.UoD(), cfg.Alpha)
	e := &BaselineEngine{
		cfg: cfg,
		g:   g,
		w:   workload.New(cfg.WorkloadConfig()),
		bkt: newBuckets(g),
	}
	switch cfg.Approach {
	case ObjectIndex:
		e.objectIndex = centralized.NewObjectIndex()
	case QueryIndex:
		e.queryIndex = centralized.NewQueryIndex()
	case Naive:
		e.naive = centralized.NewNaiveServer()
	case CentralOptimal:
		e.centralOpt = centralized.NewCentralOptimal()
	default:
		panic("sim: NewBaselineEngine called with a non-baseline approach")
	}
	for range e.w.Objects {
		e.accounts = append(e.accounts, power.NewAccount(cfg.Radio))
	}
	e.lastRelayed = make([]model.MotionState, len(e.w.Objects))
	e.lastPos = make([]geo.Point, len(e.w.Objects))
	e.isFocal = make([]bool, len(e.w.Objects))
	for _, spec := range e.w.Queries {
		e.isFocal[int(spec.Focal)-1] = true
	}
	e.bkt.rebuild(e.w.Objects)

	// Install queries and seed the server with initial object state.
	for i, spec := range e.w.Queries {
		q := model.Query{
			ID:     model.QueryID(i + 1),
			Focal:  spec.Focal,
			Region: model.CircleRegion{R: spec.Radius},
			Filter: spec.Filter,
		}
		switch cfg.Approach {
		case ObjectIndex:
			e.objectIndex.InstallQuery(q)
		case QueryIndex:
			e.queryIndex.InstallQuery(q)
		case Naive:
			e.naive.InstallQuery(q)
		case CentralOptimal:
			e.centralOpt.InstallQuery(q)
		}
	}
	for i, o := range e.w.Objects {
		e.ingest(i, o, true)
	}
	e.meter.Reset()
	for _, a := range e.accounts {
		a.Reset()
	}
	return e
}

// ingest delivers one object's report to the configured server, metering it
// unless initial is true (initial state seeding is not steady-state
// traffic). For CentralOptimal, the report is sent only when the object's
// position deviates from the relayed prediction (dead reckoning, Δ from
// cfg.Core); for the others a position report is sent when the position
// changed.
func (e *BaselineEngine) ingest(i int, o *model.MovingObject, initial bool) {
	switch e.cfg.Approach {
	case CentralOptimal:
		if !initial && !e.lastRelayed[i].NeedsRelay(o.Pos, e.now, e.cfg.Core.DeadReckoningThreshold) {
			return
		}
		m := msg.VelocityReport{OID: o.ID, Pos: o.Pos, Vel: o.Vel, Tm: e.now}
		if !initial {
			e.meter.RecordUplink(m)
			e.accounts[i].Sent(m.Size())
		}
		e.lastRelayed[i] = model.MotionState{Pos: o.Pos, Vel: o.Vel, Tm: e.now}
		start := time.Now()
		e.centralOpt.ReportVelocity(o.ID, o.Pos, o.Vel, e.now, o.Props)
		e.timeServer(start)
	default:
		if !initial && o.Pos == e.lastPos[i] {
			return
		}
		m := msg.PositionReport{OID: o.ID, Pos: o.Pos, Tm: e.now}
		if !initial {
			e.meter.RecordUplink(m)
			e.accounts[i].Sent(m.Size())
		}
		e.lastPos[i] = o.Pos
		start := time.Now()
		switch e.cfg.Approach {
		case ObjectIndex:
			e.objectIndex.ReportPosition(o.ID, o.Pos, o.Props)
		case QueryIndex:
			e.queryIndex.ReportPosition(o.ID, o.Pos, o.Props)
		case Naive:
			e.naive.ReportPosition(o.ID, o.Pos, o.Props)
		}
		e.timeServer(start)
	}
}

func (e *BaselineEngine) timeServer(start time.Time) {
	if e.measuring {
		e.serverNanos += time.Since(start).Nanoseconds()
	}
}

// Step advances the baseline simulation one time step.
func (e *BaselineEngine) Step() {
	dt := model.FromSeconds(e.cfg.StepSeconds)
	e.now += dt
	e.w.BounceAtBorders()
	e.w.PerturbStep()
	for _, o := range e.w.Objects {
		o.Move(dt)
	}
	e.bkt.rebuild(e.w.Objects)

	// Focal objects report first: the query index moves their query
	// rectangles before probing the remaining objects, keeping its
	// differential results exact within the step.
	for i, o := range e.w.Objects {
		if e.isFocal[i] {
			e.ingest(i, o, false)
		}
	}
	if e.cfg.Approach == QueryIndex {
		// A focal that reported early probed some still-stale query
		// rectangles of focals reporting after it. Re-probe focals now that
		// every rectangle is fresh — pure server-side work, no messages.
		start := time.Now()
		for i, o := range e.w.Objects {
			if e.isFocal[i] {
				e.queryIndex.ReportPosition(o.ID, o.Pos, o.Props)
			}
		}
		e.timeServer(start)
	}
	for i, o := range e.w.Objects {
		if !e.isFocal[i] {
			e.ingest(i, o, false)
		}
	}

	// Periodic evaluation for the object index ("periodically all queries
	// are evaluated against the object index"). The query index evaluates
	// differentially inside ReportPosition; naïve and central optimal are
	// messaging baselines whose evaluation cost is not under study.
	if e.cfg.Approach == ObjectIndex {
		start := time.Now()
		e.objectIndex.EvaluateAll()
		e.timeServer(start)
	}

	if e.measuring {
		e.stepsSeen++
		if e.cfg.MeasureError {
			e.measureError()
		}
	}
}

func (e *BaselineEngine) measureError() {
	for i, spec := range e.w.Queries {
		qid := model.QueryID(i + 1)
		correct := groundTruth(e.bkt, e.w.Objects, spec, nil)
		var reported func(model.ObjectID) bool
		switch e.cfg.Approach {
		case ObjectIndex:
			set := toSet(e.objectIndex.Result(qid))
			reported = func(oid model.ObjectID) bool { return set[oid] }
		case QueryIndex:
			set := toSet(e.queryIndex.Result(qid))
			reported = func(oid model.ObjectID) bool { return set[oid] }
		case Naive:
			set := toSet(e.naive.Result(qid))
			reported = func(oid model.ObjectID) bool { return set[oid] }
		case CentralOptimal:
			set := toSet(e.centralOpt.Result(qid, e.now))
			reported = func(oid model.ObjectID) bool { return set[oid] }
		}
		if err, ok := resultError(correct, reported); ok {
			e.errTotal += err
			e.errSamples++
		}
	}
}

func toSet(ids []model.ObjectID) map[model.ObjectID]bool {
	s := make(map[model.ObjectID]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Run executes warmup and measured steps and returns metrics.
func (e *BaselineEngine) Run() Metrics {
	for i := 0; i < e.cfg.Warmup; i++ {
		e.Step()
	}
	e.meter.Reset()
	for _, a := range e.accounts {
		a.Reset()
	}
	e.measuring = true
	for i := 0; i < e.cfg.Steps; i++ {
		e.Step()
	}
	e.measuring = false

	m := Metrics{
		Approach:      e.cfg.Approach,
		Steps:         e.stepsSeen,
		Seconds:       float64(e.stepsSeen) * e.cfg.StepSeconds,
		UplinkMsgs:    e.meter.UplinkMessages(),
		DownlinkMsgs:  e.meter.DownlinkMessages(),
		UplinkBytes:   e.meter.UplinkBytes(),
		DownlinkBytes: e.meter.DownlinkBytes(),
		ServerNanos:   e.serverNanos,
		ByKind:        e.meter.Snapshot(),
	}
	if e.errSamples > 0 {
		m.AvgError = e.errTotal / float64(e.errSamples)
	}
	if len(e.accounts) > 0 && m.Seconds > 0 {
		var joules float64
		for _, a := range e.accounts {
			joules += a.Joules()
		}
		m.AvgPowerWatts = joules / float64(len(e.accounts)) / m.Seconds
	}
	return m
}

// Run builds and runs the simulation selected by cfg.Approach, returning
// its metrics. It is the single entry point used by the experiment harness
// and the benchmarks.
func Run(cfg Config) Metrics {
	if cfg.Approach == MobiEyes {
		return NewEngine(cfg).Run()
	}
	return NewBaselineEngine(cfg).Run()
}
