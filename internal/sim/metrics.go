package sim

import (
	"fmt"
	"time"

	"mobieyes/internal/msg"
	"mobieyes/internal/network"
)

// Metrics aggregates everything the paper's figures report, over the
// measured (post-warmup) portion of a run.
type Metrics struct {
	Approach Approach
	Steps    int
	Seconds  float64 // simulated wall time covered by the measured steps

	UplinkMsgs    int64
	DownlinkMsgs  int64
	UplinkBytes   int64
	DownlinkBytes int64

	// ServerNanos is the wall-clock time spent executing server-side logic
	// (the paper's server load measure); ClientNanos is the wall-clock time
	// spent in moving-object query evaluation (Fig. 13's measure),
	// totalled over all objects.
	ServerNanos int64
	ClientNanos int64

	// AvgLQTSize is the mean LQT size over objects and steps (Figs 10–12).
	AvgLQTSize float64
	// AvgError is the mean query-result error (missing/|correct|, Fig. 2);
	// valid when Config.MeasureError was set.
	AvgError float64
	// AvgPowerWatts is the mean per-object communication power (Fig. 9).
	AvgPowerWatts float64

	ServerOps int64 // deterministic server operation count (MobiEyes)
	Evals     int64 // client query evaluations (MobiEyes)
	Skipped   int64 // evaluations suppressed by safe periods (MobiEyes)

	// ByKind breaks the traffic down per message kind (kinds with any
	// traffic only, ordered by kind).
	ByKind []network.KindStats
}

// KindCount returns the total message count (both directions) for one kind.
func (m Metrics) KindCount(k msg.Kind) int64 {
	for _, ks := range m.ByKind {
		if ks.Kind == k {
			return ks.UplinkMsgs + ks.DownlinkMsgs
		}
	}
	return 0
}

// StepRecord is one step of a run's time series (see Engine.History):
// per-step deltas of the headline metrics.
type StepRecord struct {
	Step          int
	UplinkMsgs    int64
	DownlinkMsgs  int64
	UplinkBytes   int64
	DownlinkBytes int64
	AvgLQTSize    float64
	ServerNanos   int64
	// Error is the per-step result error (only when MeasureError is set).
	Error float64
}

// MessagesPerSecond returns the total wireless messages per simulated
// second — the y-axis of Figs. 4, 5, 7 and 8.
func (m Metrics) MessagesPerSecond() float64 {
	if m.Seconds == 0 {
		return 0
	}
	return float64(m.UplinkMsgs+m.DownlinkMsgs) / m.Seconds
}

// UplinkMessagesPerSecond returns uplink messages per simulated second —
// the y-axis of Fig. 6.
func (m Metrics) UplinkMessagesPerSecond() float64 {
	if m.Seconds == 0 {
		return 0
	}
	return float64(m.UplinkMsgs) / m.Seconds
}

// ServerLoadPerStep returns the mean wall-clock server time per step —
// the y-axis of Figs. 1 and 3.
func (m Metrics) ServerLoadPerStep() time.Duration {
	if m.Steps == 0 {
		return 0
	}
	return time.Duration(m.ServerNanos / int64(m.Steps))
}

// ClientLoadPerObjectStep returns the mean wall-clock query-processing time
// per moving object per step — the y-axis of Fig. 13.
func (m Metrics) ClientLoadPerObjectStep(numObjects int) time.Duration {
	if m.Steps == 0 || numObjects == 0 {
		return 0
	}
	return time.Duration(m.ClientNanos / int64(m.Steps) / int64(numObjects))
}

// String implements fmt.Stringer with a compact one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: %.1f msg/s (%.1f up), server %v/step, LQT %.2f, err %.4f, %.2f mW/obj",
		m.Approach, m.MessagesPerSecond(), m.UplinkMessagesPerSecond(),
		m.ServerLoadPerStep(), m.AvgLQTSize, m.AvgError, m.AvgPowerWatts*1000)
}
