// Package network models the wireless infrastructure of the MobiEyes system
// (§2.2): a set of base stations whose circular coverage areas jointly cover
// the universe of discourse, the grid-cell-to-base-station mapping Bmap, the
// minimal-broadcast set cover the server uses to reach a monitoring region,
// and the message/byte meters behind every messaging-cost experiment
// (Figs. 4–8).
//
// The deployment follows the paper's alen parameter ("base station side
// length"): stations sit on a square lattice with spacing alen, each
// covering the circumscribed circle of its alen×alen square, so the UoD is
// fully covered with modest overlap between neighbors.
package network

import (
	"fmt"
	"math"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/cost"
)

// StationID identifies a base station within a deployment.
type StationID int

// Deployment is a fixed layout of base stations over a grid's universe of
// discourse, with the Bmap (cell → covering stations) precomputed.
type Deployment struct {
	g        *grid.Grid
	alen     float64
	cols     int
	rows     int
	stations []geo.Circle
	byCell   [][]StationID // Bmap, indexed by grid.CellIndex
	cellsOf  [][]int32     // inverse Bmap: station → intersecting cell indices

	// acct, when attached by SetAccountant, charges every greedy set-cover
	// computation as a server-side computation unit (nil = off).
	acct *cost.Accountant
}

// NewDeployment lays out base stations with lattice spacing alen over g's
// universe of discourse. It panics if alen is not positive.
func NewDeployment(g *grid.Grid, alen float64) *Deployment {
	if alen <= 0 {
		panic(fmt.Sprintf("network: non-positive base station side %v", alen))
	}
	u := g.UoD()
	cols := int(math.Ceil(u.W() / alen))
	rows := int(math.Ceil(u.H() / alen))
	d := &Deployment{g: g, alen: alen, cols: cols, rows: rows}
	radius := alen * math.Sqrt2 / 2 // circumscribes the alen×alen square
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			center := geo.Pt(u.LX+(float64(c)+0.5)*alen, u.LY+(float64(r)+0.5)*alen)
			d.stations = append(d.stations, geo.NewCircle(center, radius))
		}
	}
	// Precompute Bmap: for each grid cell, the stations whose coverage
	// intersects the cell (§2.2: Bmap(i,j) = {b : b ∩ A_{i,j} ≠ ∅}).
	d.byCell = make([][]StationID, g.NumCells())
	d.cellsOf = make([][]int32, len(d.stations))
	for idx := 0; idx < g.NumCells(); idx++ {
		cellRect := g.CellRect(g.CellAt(idx))
		for sid, s := range d.stations {
			if s.IntersectsRect(cellRect) {
				d.byCell[idx] = append(d.byCell[idx], StationID(sid))
				d.cellsOf[sid] = append(d.cellsOf[sid], int32(idx))
			}
		}
	}
	return d
}

// SetAccountant attaches a cost accountant (nil = off; the default): each
// Cover call charges one set-cover computation unit. Attach before use; the
// charge goes through an atomic counter, so concurrent Cover calls are fine.
func (d *Deployment) SetAccountant(a *cost.Accountant) { d.acct = a }

// CellsForStation returns the dense indices of the grid cells a station's
// coverage intersects — the inverse of the Bmap, used to deliver broadcasts
// at cell granularity.
func (d *Deployment) CellsForStation(id StationID) []int32 { return d.cellsOf[id] }

// NumStations returns the number of base stations.
func (d *Deployment) NumStations() int { return len(d.stations) }

// Station returns the coverage circle of a station.
func (d *Deployment) Station(id StationID) geo.Circle { return d.stations[id] }

// Alen returns the lattice spacing.
func (d *Deployment) Alen() float64 { return d.alen }

// StationsForCell is the paper's Bmap: the non-empty set of stations whose
// coverage intersects the given grid cell.
func (d *Deployment) StationsForCell(c grid.CellID) []StationID {
	return d.byCell[d.g.CellIndex(c)]
}

// StationOf returns the station whose center is nearest to p among those
// covering p — the station a moving object at p uplinks through.
func (d *Deployment) StationOf(p geo.Point) StationID {
	// The lattice makes the nearest-center station an O(1) lookup; it
	// always covers p because its circle circumscribes its square.
	u := d.g.UoD()
	c := int((p.X - u.LX) / d.alen)
	r := int((p.Y - u.LY) / d.alen)
	if c < 0 {
		c = 0
	} else if c >= d.cols {
		c = d.cols - 1
	}
	if r < 0 {
		r = 0
	} else if r >= d.rows {
		r = d.rows - 1
	}
	return StationID(r*d.cols + c)
}

// Cover returns a small set of stations whose coverage jointly intersects
// every cell of region, computed with the classic greedy set-cover
// heuristic over the Bmap (§3.3: "the server uses the mapping Bmap to
// determine the minimal set of base stations that covers the monitoring
// region").
func (d *Deployment) Cover(region grid.CellRange) []StationID {
	d.acct.Compute(cost.UnitSetCover, 1)
	// Collect the cells to cover and the candidate stations.
	type cellKey = grid.CellID
	uncovered := make(map[cellKey]struct{}, region.NumCells())
	candSet := make(map[StationID]struct{})
	region.ForEach(func(c grid.CellID) {
		if !d.g.Valid(c) {
			return
		}
		uncovered[c] = struct{}{}
		for _, sid := range d.StationsForCell(c) {
			candSet[sid] = struct{}{}
		}
	})
	if len(uncovered) == 0 {
		return nil
	}
	cands := make([]StationID, 0, len(candSet))
	for sid := range candSet {
		cands = append(cands, sid)
	}

	var cover []StationID
	for len(uncovered) > 0 {
		best, bestCount := StationID(-1), 0
		for _, sid := range cands {
			count := 0
			circ := d.stations[sid]
			for c := range uncovered {
				if circ.IntersectsRect(d.g.CellRect(c)) {
					count++
				}
			}
			if count > bestCount || (count == bestCount && count > 0 && (best == -1 || sid < best)) {
				best, bestCount = sid, count
			}
		}
		if best == -1 {
			// Cannot happen while the deployment covers the UoD; guard
			// against infinite loops regardless.
			break
		}
		cover = append(cover, best)
		circ := d.stations[best]
		for c := range uncovered {
			if circ.IntersectsRect(d.g.CellRect(c)) {
				delete(uncovered, c)
			}
		}
	}
	return d.pruneCover(cover, region)
}

// pruneCover drops stations the rest of the cover makes redundant: greedy
// picks can be subsumed by the union of later picks (the classic greedy
// set-cover artifact), and "minimal set of base stations" should at least
// mean no member is removable. Each station is tested against the cover
// with it removed; survivors form an irredundant cover of region.
func (d *Deployment) pruneCover(cover []StationID, region grid.CellRange) []StationID {
	if len(cover) <= 1 {
		return cover
	}
	var cells []grid.CellID
	region.ForEach(func(c grid.CellID) {
		if d.g.Valid(c) {
			cells = append(cells, c)
		}
	})
	removed := make([]bool, len(cover))
	for i := range cover {
		redundant := true
		for _, c := range cells {
			rect := d.g.CellRect(c)
			coveredByOther := false
			for j, sid := range cover {
				if j == i || removed[j] {
					continue
				}
				if d.stations[sid].IntersectsRect(rect) {
					coveredByOther = true
					break
				}
			}
			if !coveredByOther && d.stations[cover[i]].IntersectsRect(rect) {
				redundant = false
				break
			}
		}
		if redundant {
			removed[i] = true
		}
	}
	out := cover[:0]
	for i, sid := range cover {
		if !removed[i] {
			out = append(out, sid)
		}
	}
	return out
}

// Covers reports whether station id's coverage contains point p.
func (d *Deployment) Covers(id StationID, p geo.Point) bool {
	return d.stations[id].Contains(p)
}

// Meter counts messages and bytes on the wireless medium, split by
// direction and message kind. A broadcast relayed through k base stations
// counts as k downlink messages, matching the paper's accounting ("the
// total number of messages sent on the wireless medium per second").
type Meter struct {
	upCount   [msg.NumKinds]int64
	downCount [msg.NumKinds]int64
	upBytes   [msg.NumKinds]int64
	downBytes [msg.NumKinds]int64
}

// RecordUplink counts one uplink message.
func (m *Meter) RecordUplink(mm msg.Message) {
	k := mm.Kind()
	m.upCount[k]++
	m.upBytes[k] += int64(mm.Size())
}

// RecordDownlink counts a downlink message sent as copies transmissions
// (one per base station involved; 1 for a one-to-one message).
func (m *Meter) RecordDownlink(mm msg.Message, copies int) {
	k := mm.Kind()
	m.downCount[k] += int64(copies)
	m.downBytes[k] += int64(copies * mm.Size())
}

// RecordUplinkWire counts one uplink message of kind k with its observed
// on-the-wire size — header and framing included — for transports that know
// the exact encoded length, where the protocol-level Size model would
// undercount.
func (m *Meter) RecordUplinkWire(k msg.Kind, wireBytes int) {
	m.upCount[k]++
	m.upBytes[k] += int64(wireBytes)
}

// RecordDownlinkWire counts a downlink message of kind k sent as copies
// transmissions of wireBytes each, as observed at the wire.
func (m *Meter) RecordDownlinkWire(k msg.Kind, wireBytes, copies int) {
	m.downCount[k] += int64(copies)
	m.downBytes[k] += int64(copies * wireBytes)
}

// UplinkMessages returns the total uplink message count.
func (m *Meter) UplinkMessages() int64 { return sum(m.upCount[:]) }

// DownlinkMessages returns the total downlink message count.
func (m *Meter) DownlinkMessages() int64 { return sum(m.downCount[:]) }

// TotalMessages returns all messages sent on the wireless medium.
func (m *Meter) TotalMessages() int64 { return m.UplinkMessages() + m.DownlinkMessages() }

// UplinkBytes returns the total uplink bytes.
func (m *Meter) UplinkBytes() int64 { return sum(m.upBytes[:]) }

// DownlinkBytes returns the total downlink bytes.
func (m *Meter) DownlinkBytes() int64 { return sum(m.downBytes[:]) }

// CountByKind returns the message count for one kind (both directions).
func (m *Meter) CountByKind(k msg.Kind) int64 { return m.upCount[k] + m.downCount[k] }

// KindStats is the per-message-kind traffic record of a Meter.
type KindStats struct {
	Kind          msg.Kind
	UplinkMsgs    int64
	DownlinkMsgs  int64
	UplinkBytes   int64
	DownlinkBytes int64
}

// Snapshot returns per-kind statistics for every kind with any traffic,
// ordered by kind.
func (m *Meter) Snapshot() []KindStats {
	var out []KindStats
	for k := 0; k < msg.NumKinds; k++ {
		if m.upCount[k] == 0 && m.downCount[k] == 0 {
			continue
		}
		out = append(out, KindStats{
			Kind:          msg.Kind(k),
			UplinkMsgs:    m.upCount[k],
			DownlinkMsgs:  m.downCount[k],
			UplinkBytes:   m.upBytes[k],
			DownlinkBytes: m.downBytes[k],
		})
	}
	return out
}

// Reset zeroes all counters.
func (m *Meter) Reset() { *m = Meter{} }

// AddTo accumulates m into dst.
func (m *Meter) AddTo(dst *Meter) {
	for k := 0; k < msg.NumKinds; k++ {
		dst.upCount[k] += m.upCount[k]
		dst.downCount[k] += m.downCount[k]
		dst.upBytes[k] += m.upBytes[k]
		dst.downBytes[k] += m.downBytes[k]
	}
}

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}
