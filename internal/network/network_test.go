package network

import (
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/msg"
)

func testGrid() *grid.Grid {
	return grid.New(geo.NewRect(0, 0, 100, 100), 5)
}

func TestDeploymentLayout(t *testing.T) {
	g := testGrid()
	d := NewDeployment(g, 10)
	if d.NumStations() != 100 { // 10×10 lattice over 100×100
		t.Fatalf("NumStations = %d, want 100", d.NumStations())
	}
	if d.Alen() != 10 {
		t.Fatalf("Alen = %v", d.Alen())
	}
	s := d.Station(0)
	if s.Center != geo.Pt(5, 5) {
		t.Errorf("station 0 center = %v, want (5,5)", s.Center)
	}
}

func TestDeploymentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alen = 0")
		}
	}()
	NewDeployment(testGrid(), 0)
}

// Property (§2.2): the set of base stations covers the universe of
// discourse — every point in the UoD lies in at least one coverage circle.
func TestDeploymentCoversUoD(t *testing.T) {
	g := testGrid()
	for _, alen := range []float64{5, 10, 20, 40, 80, 120} {
		d := NewDeployment(g, alen)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
			covered := false
			for sid := 0; sid < d.NumStations(); sid++ {
				if d.Covers(StationID(sid), p) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("alen=%v: point %v uncovered", alen, p)
			}
		}
	}
}

// Property: Bmap is non-empty for every cell and lists exactly the stations
// whose coverage intersects the cell.
func TestBmapCorrectness(t *testing.T) {
	g := testGrid()
	d := NewDeployment(g, 10)
	for idx := 0; idx < g.NumCells(); idx++ {
		c := g.CellAt(idx)
		got := map[StationID]bool{}
		for _, sid := range d.StationsForCell(c) {
			got[sid] = true
		}
		if len(got) == 0 {
			t.Fatalf("Bmap empty for %v", c)
		}
		cellRect := g.CellRect(c)
		for sid := 0; sid < d.NumStations(); sid++ {
			want := d.Station(StationID(sid)).IntersectsRect(cellRect)
			if got[StationID(sid)] != want {
				t.Fatalf("Bmap(%v) station %d: got %v, want %v", c, sid, got[StationID(sid)], want)
			}
		}
	}
}

func TestStationOfCoversPoint(t *testing.T) {
	g := testGrid()
	for _, alen := range []float64{5, 10, 25} {
		d := NewDeployment(g, alen)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 1000; i++ {
			p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
			sid := d.StationOf(p)
			if !d.Covers(sid, p) {
				t.Fatalf("alen=%v: StationOf(%v) = %d does not cover the point", alen, p, sid)
			}
		}
	}
	// Boundary and out-of-range points clamp to a valid station.
	d := NewDeployment(g, 10)
	for _, p := range []geo.Point{geo.Pt(0, 0), geo.Pt(100, 100), geo.Pt(-5, 50), geo.Pt(105, 50)} {
		sid := d.StationOf(p)
		if int(sid) < 0 || int(sid) >= d.NumStations() {
			t.Fatalf("StationOf(%v) = %d out of range", p, sid)
		}
	}
}

// Property: the greedy cover covers every cell of the region.
func TestCoverCoversRegion(t *testing.T) {
	g := testGrid()
	rng := rand.New(rand.NewSource(3))
	for _, alen := range []float64{5, 10, 20, 50} {
		d := NewDeployment(g, alen)
		for i := 0; i < 100; i++ {
			minC := grid.CellID{Col: rng.Intn(18), Row: rng.Intn(18)}
			maxC := grid.CellID{Col: minC.Col + rng.Intn(20-minC.Col), Row: minC.Row + rng.Intn(20-minC.Row)}
			region := grid.CellRange{Min: minC, Max: maxC}
			cover := d.Cover(region)
			if len(cover) == 0 {
				t.Fatalf("empty cover for %v", region)
			}
			region.ForEach(func(c grid.CellID) {
				cellRect := g.CellRect(c)
				for _, sid := range cover {
					if d.Station(sid).IntersectsRect(cellRect) {
						return
					}
				}
				t.Fatalf("alen=%v region=%v: cell %v not covered by %v", alen, region, c, cover)
			})
		}
	}
}

func TestCoverSingleStationWhenLarge(t *testing.T) {
	// With huge base stations, any monitoring region fits under one station
	// (the saturation effect of Fig. 8).
	g := testGrid()
	d := NewDeployment(g, 200)
	if d.NumStations() != 1 {
		t.Fatalf("NumStations = %d, want 1", d.NumStations())
	}
	region := grid.CellRange{Min: grid.CellID{Col: 0, Row: 0}, Max: grid.CellID{Col: 19, Row: 19}}
	cover := d.Cover(region)
	if len(cover) != 1 {
		t.Fatalf("cover size = %d, want 1", len(cover))
	}
}

func TestCoverShrinksWithStationSize(t *testing.T) {
	g := testGrid()
	region := grid.CellRange{Min: grid.CellID{Col: 4, Row: 4}, Max: grid.CellID{Col: 9, Row: 9}}
	small := NewDeployment(g, 5)
	large := NewDeployment(g, 40)
	if len(small.Cover(region)) <= len(large.Cover(region)) {
		t.Errorf("cover sizes: small alen %d, large alen %d — larger stations should need fewer broadcasts",
			len(small.Cover(region)), len(large.Cover(region)))
	}
}

func TestCoverIsReasonablySmall(t *testing.T) {
	// Greedy set cover should not use wildly more stations than the number
	// of stations strictly inside the region footprint.
	g := testGrid()
	d := NewDeployment(g, 10)
	region := grid.CellRange{Min: grid.CellID{Col: 0, Row: 0}, Max: grid.CellID{Col: 19, Row: 19}}
	cover := d.Cover(region)
	if len(cover) > d.NumStations() {
		t.Fatalf("cover %d larger than station count %d", len(cover), d.NumStations())
	}
	// A 100×100 UoD with alen=10 has 100 stations; covering everything
	// should need well under all of them because circles overlap.
	if len(cover) > 60 {
		t.Errorf("cover of whole UoD uses %d stations, expected ≤ 60", len(cover))
	}
}

func TestCoverEmptyRegionOutsideGrid(t *testing.T) {
	g := testGrid()
	d := NewDeployment(g, 10)
	region := grid.CellRange{Min: grid.CellID{Col: 50, Row: 50}, Max: grid.CellID{Col: 60, Row: 60}}
	if cover := d.Cover(region); cover != nil {
		t.Errorf("cover of out-of-grid region = %v, want nil", cover)
	}
}

func TestMeterCounts(t *testing.T) {
	var m Meter
	up := msg.VelocityReport{}
	down := msg.VelocityChange{}
	m.RecordUplink(up)
	m.RecordUplink(up)
	m.RecordDownlink(down, 3) // broadcast through 3 stations

	if m.UplinkMessages() != 2 {
		t.Errorf("UplinkMessages = %d", m.UplinkMessages())
	}
	if m.DownlinkMessages() != 3 {
		t.Errorf("DownlinkMessages = %d", m.DownlinkMessages())
	}
	if m.TotalMessages() != 5 {
		t.Errorf("TotalMessages = %d", m.TotalMessages())
	}
	if m.UplinkBytes() != int64(2*up.Size()) {
		t.Errorf("UplinkBytes = %d", m.UplinkBytes())
	}
	if m.DownlinkBytes() != int64(3*down.Size()) {
		t.Errorf("DownlinkBytes = %d", m.DownlinkBytes())
	}
	if m.CountByKind(msg.KindVelocityReport) != 2 {
		t.Errorf("CountByKind = %d", m.CountByKind(msg.KindVelocityReport))
	}
}

func TestMeterResetAdd(t *testing.T) {
	var a, b Meter
	a.RecordUplink(msg.PositionReport{})
	a.RecordDownlink(msg.QueryRemove{}, 2)
	a.AddTo(&b)
	a.AddTo(&b)
	if b.TotalMessages() != 2*a.TotalMessages() {
		t.Errorf("AddTo: %d, want %d", b.TotalMessages(), 2*a.TotalMessages())
	}
	a.Reset()
	if a.TotalMessages() != 0 || a.UplinkBytes() != 0 || a.DownlinkBytes() != 0 {
		t.Error("Reset left residue")
	}
}

func BenchmarkCover(b *testing.B) {
	g := testGrid()
	d := NewDeployment(g, 10)
	region := grid.CellRange{Min: grid.CellID{Col: 3, Row: 3}, Max: grid.CellID{Col: 8, Row: 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Cover(region)
	}
}

func BenchmarkStationOf(b *testing.B) {
	g := testGrid()
	d := NewDeployment(g, 10)
	p := geo.Pt(42, 57)
	for i := 0; i < b.N; i++ {
		_ = d.StationOf(p)
	}
}
