package network

import (
	"fmt"
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
)

// TestCoverProperties checks the two defining properties of the
// minimal-broadcast set cover on randomized deployments and regions:
//
//  1. Soundness — every valid cell of the requested region intersects the
//     coverage of at least one returned station.
//  2. Irredundance — no returned station can be removed without breaking
//     soundness; "minimal set of base stations" (§3.3) at least means no
//     member is redundant.
//
// Deployments vary in universe size, grid resolution alpha and station
// spacing alen; regions range from a single cell to the whole grid and may
// hang off the grid's edge (out-of-range rows/columns must be ignored, not
// covered).
func TestCoverProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		w := 20 + rng.Float64()*80
		h := 20 + rng.Float64()*80
		alpha := 3 + rng.Float64()*7
		alen := 3 + rng.Float64()*11
		g := grid.New(geo.NewRect(0, 0, w, h), alpha)
		d := NewDeployment(g, alen)

		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			for i := 0; i < 8; i++ {
				region := randomRegion(rng, g)
				checkCover(t, d, g, region)
			}
			// The whole grid, and a region entirely off the edge.
			checkCover(t, d, g, grid.CellRange{
				Min: grid.CellID{Col: 0, Row: 0},
				Max: grid.CellID{Col: g.Cols() - 1, Row: g.Rows() - 1},
			})
			off := grid.CellRange{
				Min: grid.CellID{Col: g.Cols(), Row: g.Rows()},
				Max: grid.CellID{Col: g.Cols() + 2, Row: g.Rows() + 2},
			}
			if c := d.Cover(off); len(c) != 0 {
				t.Errorf("region outside the grid got a non-empty cover %v", c)
			}
		})
	}
}

// randomRegion draws a cell range that may extend up to two cells past the
// grid edge on either side.
func randomRegion(rng *rand.Rand, g *grid.Grid) grid.CellRange {
	c0 := rng.Intn(g.Cols()+4) - 2
	r0 := rng.Intn(g.Rows()+4) - 2
	return grid.CellRange{
		Min: grid.CellID{Col: c0, Row: r0},
		Max: grid.CellID{Col: c0 + rng.Intn(8), Row: r0 + rng.Intn(8)},
	}
}

func checkCover(t *testing.T, d *Deployment, g *grid.Grid, region grid.CellRange) {
	t.Helper()
	cover := d.Cover(region)

	var cells []grid.CellID
	region.ForEach(func(c grid.CellID) {
		if g.Valid(c) {
			cells = append(cells, c)
		}
	})
	if len(cells) == 0 {
		if len(cover) != 0 {
			t.Errorf("region %v has no valid cells but cover is %v", region, cover)
		}
		return
	}

	// Soundness.
	for _, c := range cells {
		rect := g.CellRect(c)
		covered := false
		for _, sid := range cover {
			if d.Station(sid).IntersectsRect(rect) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("region %v: cell %v not covered by %v", region, c, cover)
		}
	}

	// Irredundance: removing any one station must leave some cell uncovered.
	for i := range cover {
		allCovered := true
		for _, c := range cells {
			rect := g.CellRect(c)
			covered := false
			for j, sid := range cover {
				if j == i {
					continue
				}
				if d.Station(sid).IntersectsRect(rect) {
					covered = true
					break
				}
			}
			if !covered {
				allCovered = false
				break
			}
		}
		if allCovered {
			t.Fatalf("region %v: station %v is redundant in cover %v", region, cover[i], cover)
		}
	}

	// The cover never uses more stations than cells.
	if len(cover) > len(cells) {
		t.Errorf("region %v: cover %v larger than cell count %d", region, cover, len(cells))
	}
}
