package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mobieyes/internal/core"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/sim"
)

// RunReport is the structured cost-and-accuracy report behind the paper's
// §5 messaging-cost evaluation: one document (JSON for machines, text for
// humans) holding the EQP-vs-LQP ledger comparison with answer-quality
// gauges, the messaging-cost sweeps over Δ, α and the query count, and the
// distributed-vs-centralized baseline comparison. Every MobiEyes number
// comes from a cost.Accountant attached to the run, so the report is the
// ledger view of the same traffic the figures plot.
type RunReport struct {
	Title    string `json:"title"`
	Steps    int    `json:"steps"`
	Warmup   int    `json:"warmup"`
	ScaleDiv int    `json:"scale_div"`
	Seed     int64  `json:"seed"`
	Shards   int    `json:"shards"`

	// Modes compares eager and lazy query propagation at identical
	// workloads: full global ledgers plus precision/recall/staleness.
	Modes []ModeReport `json:"modes"`

	// DeltaSweep holds one cost curve per propagation mode over the
	// dead-reckoning threshold Δ (paper §5.3: larger Δ ⇒ fewer uplink
	// velocity reports at the price of result accuracy).
	DeltaSweep []CostCurve `json:"delta_sweep"`

	// AlphaSweep is the messaging cost over the grid cell size α (the
	// ledger view of Fig. 4's middle series).
	AlphaSweep CostCurve `json:"alpha_sweep"`

	// QueriesSweep is the messaging cost over the number of concurrent
	// queries (the ledger view of Fig. 8's regime).
	QueriesSweep CostCurve `json:"queries_sweep"`

	// Baselines compares MobiEyes against the §5.3 centralized reporting
	// schemes on the same workload (meter numbers; the baselines bypass
	// the accountant).
	Baselines []BaselinePoint `json:"baselines"`

	// Checks are the paper's qualitative claims evaluated on this run.
	Checks []Check `json:"checks"`
}

// ModeReport is one propagation mode's ledger and answer quality.
type ModeReport struct {
	Mode       string              `json:"mode"`
	Ledger     cost.LedgerReport   `json:"ledger"`
	Quality    *cost.QualityReport `json:"quality,omitempty"`
	MsgsPerSec float64             `json:"msgs_per_sec"`
}

// CostPoint is one x-value of a cost curve with the ledger's traffic
// totals at that point.
type CostPoint struct {
	X             float64 `json:"x"`
	UplinkMsgs    int64   `json:"uplink_msgs"`
	DownlinkMsgs  int64   `json:"downlink_msgs"`
	UplinkBytes   int64   `json:"uplink_bytes"`
	DownlinkBytes int64   `json:"downlink_bytes"`
	MsgsPerSec    float64 `json:"msgs_per_sec"`
}

// CostCurve is a named sweep of ledger totals over one parameter.
type CostCurve struct {
	Name   string      `json:"name"`
	XLabel string      `json:"x_label"`
	Points []CostPoint `json:"points"`
}

// BaselinePoint is one approach's traffic on the shared workload.
type BaselinePoint struct {
	Approach     string  `json:"approach"`
	UplinkMsgs   int64   `json:"uplink_msgs"`
	DownlinkMsgs int64   `json:"downlink_msgs"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`
}

// Check is one of the paper's qualitative claims evaluated on the report's
// own numbers, so a regression in the protocol shows up as pass=false in
// the artifact rather than as a silently wrong curve.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// costRun executes one MobiEyes run with a fresh accountant attached and
// returns the engine metrics plus the accountant's snapshot.
func costRun(o RunOpts, mutate func(*sim.Config)) (sim.Metrics, cost.Snapshot) {
	cfg := o.base()
	cfg.Core = mobiOpts(core.EagerPropagation)
	cfg.Costs = cost.New()
	if mutate != nil {
		mutate(&cfg)
	}
	m := sim.Run(cfg)
	return m, cfg.Costs.Snapshot()
}

func costPoint(x float64, m sim.Metrics, snap cost.Snapshot) CostPoint {
	return CostPoint{
		X:             x,
		UplinkMsgs:    snap.Global.UpMsgs,
		DownlinkMsgs:  snap.Global.DownMsgs,
		UplinkBytes:   snap.Global.UpBytes,
		DownlinkBytes: snap.Global.DownBytes,
		MsgsPerSec:    m.MessagesPerSecond(),
	}
}

// BuildRunReport runs the report's sweeps and comparisons at o's scale.
// Every sweep reuses o.Seed, so two reports at the same options are
// bit-identical.
func BuildRunReport(o RunOpts) RunReport {
	o = o.normalize()
	r := RunReport{
		Title:    "MobiEyes protocol cost & accuracy report",
		Steps:    o.Steps,
		Warmup:   o.Warmup,
		ScaleDiv: o.ScaleDiv,
		Seed:     o.Seed,
		Shards:   o.Shards,
	}

	// EQP vs LQP with answer-quality gauges on.
	for _, mode := range []core.PropagationMode{core.EagerPropagation, core.LazyPropagation} {
		mode := mode
		m, snap := costRun(o, func(cfg *sim.Config) {
			cfg.Core = mobiOpts(mode)
			cfg.MeasureQuality = true
		})
		r.Modes = append(r.Modes, ModeReport{
			Mode:       snap.Mode,
			Ledger:     snap.Global,
			Quality:    snap.Quality,
			MsgsPerSec: m.MessagesPerSecond(),
		})
	}

	// Messaging cost vs the dead-reckoning threshold Δ, per mode.
	deltas := []float64{0.01, 0.1, 0.25, 0.5, 1}
	for _, mode := range []core.PropagationMode{core.EagerPropagation, core.LazyPropagation} {
		mode := mode
		curve := CostCurve{Name: mode.String(), XLabel: "delta (miles)"}
		for _, d := range deltas {
			d := d
			m, snap := costRun(o, func(cfg *sim.Config) {
				cfg.Core = mobiOpts(mode)
				cfg.Core.DeadReckoningThreshold = d
			})
			curve.Points = append(curve.Points, costPoint(d, m, snap))
		}
		r.DeltaSweep = append(r.DeltaSweep, curve)
	}

	// Messaging cost vs grid cell size α (EQP).
	r.AlphaSweep = CostCurve{Name: "MobiEyes EQP", XLabel: "alpha (miles)"}
	for _, a := range []float64{1, 2, 4, 8, 16} {
		a := a
		m, snap := costRun(o, func(cfg *sim.Config) { cfg.Alpha = a })
		r.AlphaSweep.Points = append(r.AlphaSweep.Points, costPoint(a, m, snap))
	}

	// Messaging cost vs the number of concurrent queries (EQP).
	r.QueriesSweep = CostCurve{Name: "MobiEyes EQP", XLabel: "queries"}
	for _, x := range o.queriesSweep() {
		x := x
		m, snap := costRun(o, func(cfg *sim.Config) { cfg.NumQueries = int(x) })
		r.QueriesSweep.Points = append(r.QueriesSweep.Points, costPoint(x, m, snap))
	}

	// Distributed vs centralized reporting baselines on the same workload.
	for _, a := range []sim.Approach{sim.MobiEyes, sim.Naive, sim.CentralOptimal} {
		a := a
		cfg := o.base()
		cfg.Approach = a
		if a == sim.MobiEyes {
			cfg.Core = mobiOpts(core.EagerPropagation)
		}
		m := sim.Run(cfg)
		r.Baselines = append(r.Baselines, BaselinePoint{
			Approach:     a.String(),
			UplinkMsgs:   m.UplinkMsgs,
			DownlinkMsgs: m.DownlinkMsgs,
			MsgsPerSec:   m.MessagesPerSecond(),
		})
	}

	r.Checks = r.evaluateChecks()
	return r
}

// evaluateChecks evaluates the paper's qualitative claims on the report.
func (r RunReport) evaluateChecks() []Check {
	var checks []Check
	add := func(name string, pass bool, format string, args ...any) {
		checks = append(checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	}

	eqp, lqp := r.Modes[0], r.Modes[1]
	add("lqp fewer downlink msgs than eqp",
		lqp.Ledger.DownMsgs < eqp.Ledger.DownMsgs,
		"LQP %d vs EQP %d downlink messages", lqp.Ledger.DownMsgs, eqp.Ledger.DownMsgs)
	add("eqp answers exact",
		eqp.Quality != nil && eqp.Quality.CumPrecision == 1 && eqp.Quality.CumRecall == 1,
		"EQP precision %.4f recall %.4f", eqp.Quality.CumPrecision, eqp.Quality.CumRecall)
	add("lqp trades accuracy for messages",
		lqp.Quality != nil && lqp.Quality.CumRecall <= eqp.Quality.CumRecall,
		"LQP recall %.4f vs EQP %.4f", lqp.Quality.CumRecall, eqp.Quality.CumRecall)

	for _, c := range r.DeltaSweep {
		first, last := c.Points[0], c.Points[len(c.Points)-1]
		add("uplink cost shrinks with larger delta ("+c.Name+")",
			last.UplinkMsgs < first.UplinkMsgs,
			"%d uplinks at delta=%v vs %d at delta=%v",
			last.UplinkMsgs, last.X, first.UplinkMsgs, first.X)
	}

	var mobi, naive *BaselinePoint
	for i := range r.Baselines {
		switch r.Baselines[i].Approach {
		case sim.MobiEyes.String():
			mobi = &r.Baselines[i]
		case sim.Naive.String():
			naive = &r.Baselines[i]
		}
	}
	add("dead reckoning beats naive per-step reporting",
		mobi != nil && naive != nil && mobi.UplinkMsgs < naive.UplinkMsgs,
		"MobiEyes %d vs Naive %d uplink messages", mobi.UplinkMsgs, naive.UplinkMsgs)
	return checks
}

// AllChecksPass reports whether every qualitative claim held.
func (r RunReport) AllChecksPass() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// WriteJSON writes the report as indented JSON.
func (r RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report for humans.
func (r RunReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Title)
	fmt.Fprintf(w, "steps=%d warmup=%d scalediv=%d seed=%d shards=%d\n\n",
		r.Steps, r.Warmup, r.ScaleDiv, r.Seed, r.Shards)

	fmt.Fprintf(w, "## EQP vs LQP\n")
	fmt.Fprintf(w, "%-5s %10s %10s %12s %12s %10s %9s %9s %11s\n",
		"mode", "up msgs", "down msgs", "up bytes", "down bytes", "msg/s", "precision", "recall", "stale mean")
	for _, m := range r.Modes {
		prec, rec, stale := 1.0, 1.0, 0.0
		if m.Quality != nil {
			prec, rec, stale = m.Quality.CumPrecision, m.Quality.CumRecall, m.Quality.StaleMean
		}
		fmt.Fprintf(w, "%-5s %10d %10d %12d %12d %10.1f %9.4f %9.4f %11.2f\n",
			m.Mode, m.Ledger.UpMsgs, m.Ledger.DownMsgs, m.Ledger.UpBytes, m.Ledger.DownBytes,
			m.MsgsPerSec, prec, rec, stale)
	}

	writeCurve := func(title string, c CostCurve) {
		fmt.Fprintf(w, "\n## %s — %s\n", title, c.Name)
		fmt.Fprintf(w, "%12s %10s %10s %12s %12s %10s\n",
			c.XLabel, "up msgs", "down msgs", "up bytes", "down bytes", "msg/s")
		for _, p := range c.Points {
			fmt.Fprintf(w, "%12g %10d %10d %12d %12d %10.1f\n",
				p.X, p.UplinkMsgs, p.DownlinkMsgs, p.UplinkBytes, p.DownlinkBytes, p.MsgsPerSec)
		}
	}
	for _, c := range r.DeltaSweep {
		writeCurve("cost vs delta", c)
	}
	writeCurve("cost vs alpha", r.AlphaSweep)
	writeCurve("cost vs queries", r.QueriesSweep)

	fmt.Fprintf(w, "\n## Distributed vs centralized\n")
	fmt.Fprintf(w, "%-15s %10s %10s %10s\n", "approach", "up msgs", "down msgs", "msg/s")
	for _, b := range r.Baselines {
		fmt.Fprintf(w, "%-15s %10d %10d %10.1f\n", b.Approach, b.UplinkMsgs, b.DownlinkMsgs, b.MsgsPerSec)
	}

	fmt.Fprintf(w, "\n## Checks\n")
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%s  %-45s %s\n", status, c.Name, c.Detail)
	}
}

// WriteFiles writes the report as dir/runreport.json and dir/runreport.txt,
// creating dir if needed.
func (r RunReport) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, "runreport.json"))
	if err != nil {
		return err
	}
	if err := r.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(dir, "runreport.txt"))
	if err != nil {
		return err
	}
	r.WriteText(tf)
	return tf.Close()
}
