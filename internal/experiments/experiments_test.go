package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quick is a heavily scaled-down option set: figures keep their structure
// but each run takes milliseconds.
var quick = RunOpts{Steps: 3, Warmup: 1, ScaleDiv: 20, Seed: 1}

func checkFigure(t *testing.T, f Figure) {
	t.Helper()
	if f.ID == "" || f.Title == "" || f.XLabel == "" || f.YLabel == "" {
		t.Errorf("%s: incomplete labeling: %+v", f.ID, f)
	}
	if len(f.X) == 0 {
		t.Fatalf("%s: empty x axis", f.ID)
	}
	if len(f.Series) == 0 {
		t.Fatalf("%s: no series", f.ID)
	}
	for _, s := range f.Series {
		if len(s.Y) != len(f.X) {
			t.Fatalf("%s series %q: %d points for %d x values", f.ID, s.Name, len(s.Y), len(f.X))
		}
		for i, y := range s.Y {
			if y < 0 {
				t.Errorf("%s series %q: negative value %v at x=%v", f.ID, s.Name, y, f.X[i])
			}
		}
	}
}

func TestFig1Shape(t *testing.T) {
	f := Fig1(quick)
	checkFigure(t, f)
	// The object index must be the most expensive system at the largest
	// query count; MobiEyes must beat it by a wide margin.
	idx := len(f.X) - 1
	byName := seriesMap(f)
	if byName["object index"][idx] < 5*byName["MobiEyes EQP"][idx] {
		t.Errorf("object index %v not ≫ MobiEyes %v",
			byName["object index"][idx], byName["MobiEyes EQP"][idx])
	}
}

func TestFig2Shape(t *testing.T) {
	f := Fig2(quick)
	checkFigure(t, f)
	byName := seriesMap(f)
	// Larger α ⇒ fewer silent cell crossings ⇒ less error (on average over
	// the sweep).
	if avg(byName["alpha=10"]) > avg(byName["alpha=2.5"]) {
		t.Errorf("error at alpha=10 (%v) exceeds alpha=2.5 (%v)",
			avg(byName["alpha=10"]), avg(byName["alpha=2.5"]))
	}
	// LQP error is bounded.
	for _, s := range f.Series {
		for _, y := range s.Y {
			if y > 1 {
				t.Errorf("error %v > 1", y)
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	f := Fig4(quick)
	checkFigure(t, f)
	// More queries ⇒ more messages, at every α.
	byName := seriesMap(f)
	lo, hi := byName["nmq=5"], byName["nmq=50"]
	if lo == nil || hi == nil {
		t.Fatalf("unexpected series names: %v", seriesNames(f))
	}
	if avg(hi) <= avg(lo) {
		t.Errorf("messaging with 10x queries (%v) not above fewer (%v)", avg(hi), avg(lo))
	}
}

func TestFig9Shape(t *testing.T) {
	f := Fig9(quick)
	checkFigure(t, f)
	byName := seriesMap(f)
	// Naive is the power hog everywhere.
	for i := range f.X {
		if byName["naive"][i] <= byName["central optimal"][i] {
			t.Errorf("x=%v: naive power %v not above central optimal %v",
				f.X[i], byName["naive"][i], byName["central optimal"][i])
		}
	}
}

func TestFig10Fig11Fig12Shapes(t *testing.T) {
	f10 := Fig10(quick)
	checkFigure(t, f10)
	for _, s := range f10.Series {
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("fig10 %s: LQT at α=16 (%v) not above α=1 (%v)", s.Name, s.Y[len(s.Y)-1], s.Y[0])
		}
	}
	f11 := Fig11(quick)
	checkFigure(t, f11)
	for _, s := range f11.Series {
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("fig11 %s: LQT not increasing in queries", s.Name)
		}
	}
	f12 := Fig12(quick)
	checkFigure(t, f12)
	s := f12.Series[0]
	if s.Y[len(s.Y)-1] <= s.Y[0] {
		t.Errorf("fig12: LQT at factor 3 (%v) not above factor 0.5 (%v)", s.Y[len(s.Y)-1], s.Y[0])
	}
}

func TestFig13Shape(t *testing.T) {
	f := Fig13(quick)
	checkFigure(t, f)
	if len(f.Series) != 3 {
		t.Fatalf("series = %d", len(f.Series))
	}
}

func TestRemainingFiguresSmoke(t *testing.T) {
	// Figs. 3, 5, 6, 7, 8 are heavier; smoke-test structure only.
	for _, fn := range []func(RunOpts) Figure{Fig3, Fig5, Fig6, Fig7, Fig8} {
		checkFigure(t, fn(quick))
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "T", XLabel: "x", YLabel: "y", LogY: true,
		X: []float64{1, 2},
		Series: []Series{
			{Name: "a,b", Y: []float64{3, 4}},
			{Name: "c", Y: []float64{5, 6}},
		},
	}
	var tbl bytes.Buffer
	f.WriteTable(&tbl)
	out := tbl.String()
	for _, want := range []string{"figX", "log scale", "a,b", "c"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	f.WriteCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != `x,"a,b",c` {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[1] != "1,3,5" || lines[2] != "2,4,6" {
		t.Errorf("csv rows = %q %q", lines[1], lines[2])
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"30 seconds", "10000", "100000", "0.75", "zipf"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestRunOptsNormalize(t *testing.T) {
	o := RunOpts{}.normalize()
	if o.Steps == 0 || o.Warmup == 0 || o.ScaleDiv == 0 || o.Seed == 0 {
		t.Errorf("normalize left zeroes: %+v", o)
	}
	cfg := RunOpts{ScaleDiv: 10}.normalize().base()
	if cfg.NumObjects != 1000 || cfg.NumQueries != 100 {
		t.Errorf("base scaling wrong: %+v", cfg)
	}
}

func seriesMap(f Figure) map[string][]float64 {
	m := map[string][]float64{}
	for _, s := range f.Series {
		m[s.Name] = s.Y
	}
	return m
}

func seriesNames(f Figure) []string {
	var out []string
	for _, s := range f.Series {
		out = append(out, s.Name)
	}
	return out
}

func avg(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

func TestBreakdown(t *testing.T) {
	rows := Breakdown(quick)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]bool{}
	for _, r := range rows {
		byName[r.Name] = true
		if r.Metrics.UplinkMsgs == 0 {
			t.Errorf("%s: no traffic", r.Name)
		}
		if len(r.Metrics.ByKind) == 0 {
			t.Errorf("%s: no per-kind stats", r.Name)
		}
	}
	if !byName["naive"] || !byName["MobiEyes LQP"] {
		t.Errorf("missing variants: %v", byName)
	}
	var buf bytes.Buffer
	WriteBreakdown(&buf, rows)
	if !strings.Contains(buf.String(), "CellChangeReport") {
		t.Error("breakdown table missing kind rows")
	}
}

func TestFig5Fig6Fig7Shapes(t *testing.T) {
	f5 := Fig5(quick)
	checkFigure(t, f5)
	byName := seriesMap(f5)
	// Naive grows linearly with the population; last point ≈ objects/30s.
	naive := byName["naive"]
	if naive[len(naive)-1] <= naive[0] {
		t.Error("fig5: naive not increasing with objects")
	}
	f6 := Fig6(quick)
	checkFigure(t, f6)
	byName6 := seriesMap(f6)
	// LQP uplink is far below naive uplink at the largest population.
	idx := len(f6.X) - 1
	lqpLo := byName6["LQP nmq=5"]
	if lqpLo == nil {
		t.Fatalf("series names: %v", seriesNames(f6))
	}
	if lqpLo[idx] >= byName6["naive"][idx]/2 {
		t.Errorf("fig6: LQP uplink %v not well below naive %v", lqpLo[idx], byName6["naive"][idx])
	}
	f7 := Fig7(quick)
	checkFigure(t, f7)
	byName7 := seriesMap(f7)
	// Central optimal grows with nmo; naive stays flat.
	co := byName7["central optimal"]
	if co[len(co)-1] <= co[0] {
		t.Error("fig7: central optimal not increasing with nmo")
	}
}

func TestAlphaModel(t *testing.T) {
	f := AlphaModel(quick)
	checkFigure(t, f)
	byName := seriesMap(f)
	simulated, modeled := byName["simulated"], byName["analytical model"]
	if simulated == nil || modeled == nil {
		t.Fatalf("series: %v", seriesNames(f))
	}
	// Both curves fall steeply from α=0.5 to the mid-range: the small-α
	// blowup is the property the model exists to predict.
	if simulated[0] <= simulated[3] {
		t.Error("simulated curve missing the small-alpha blowup")
	}
	if modeled[0] <= modeled[3] {
		t.Error("model curve missing the small-alpha blowup")
	}
}
