package experiments

import (
	"fmt"
	"io"
	"strconv"

	"mobieyes/internal/analysis"
	"mobieyes/internal/core"
	"mobieyes/internal/sim"
)

// Fig1 reproduces "Impact of distributed query processing on server load":
// server load (wall time per step) as a function of the number of queries,
// for the object index, the query index, MobiEyes EQP and MobiEyes LQP.
func Fig1(o RunOpts) Figure {
	o = o.normalize()
	xs := o.queriesSweep()
	run := func(a sim.Approach, opts core.Options) func(float64) float64 {
		return func(x float64) float64 {
			cfg := o.base()
			cfg.Approach = a
			cfg.Core = opts
			cfg.NumQueries = int(x)
			return float64(sim.Run(cfg).ServerLoadPerStep().Microseconds()) / 1000
		}
	}
	return Figure{
		ID:     "fig1",
		Title:  "Impact of distributed query processing on server load",
		XLabel: "queries",
		YLabel: "server load (ms/step)",
		LogY:   true,
		X:      xs,
		Series: []Series{
			series("object index", xs, run(sim.ObjectIndex, core.Options{})),
			series("query index", xs, run(sim.QueryIndex, core.Options{})),
			series("MobiEyes EQP", xs, run(sim.MobiEyes, mobiOpts(core.EagerPropagation))),
			series("MobiEyes LQP", xs, run(sim.MobiEyes, mobiOpts(core.LazyPropagation))),
		},
	}
}

// Fig2 reproduces "Error associated with lazy query propagation": average
// result error of MobiEyes LQP as a function of the number of objects
// changing velocity per step, for three grid cell sizes.
func Fig2(o RunOpts) Figure {
	o = o.normalize()
	xs := o.nmoSweep()
	run := func(alpha float64) func(float64) float64 {
		return func(x float64) float64 {
			cfg := o.base()
			cfg.Core = mobiOpts(core.LazyPropagation)
			cfg.Alpha = alpha
			cfg.VelocityChangesPerStep = int(x)
			cfg.MeasureError = true
			return sim.Run(cfg).AvgError
		}
	}
	return Figure{
		ID:     "fig2",
		Title:  "Error associated with lazy query propagation",
		XLabel: "velocity changes/step",
		YLabel: "avg result error",
		X:      xs,
		Series: []Series{
			series("alpha=2.5", xs, run(2.5)),
			series("alpha=5", xs, run(5)),
			series("alpha=10", xs, run(10)),
		},
	}
}

// Fig3 reproduces "Effect of α on server load": server load as a function
// of the grid cell size for MobiEyes and both centralized indexes (whose
// load does not depend on α; they are the flat reference lines).
func Fig3(o RunOpts) Figure {
	o = o.normalize()
	xs := []float64{0.5, 1, 2, 4, 8, 16}
	mobi := series("MobiEyes EQP", xs, func(x float64) float64 {
		cfg := o.base()
		cfg.Core = mobiOpts(core.EagerPropagation)
		cfg.Alpha = x
		return float64(sim.Run(cfg).ServerLoadPerStep().Microseconds()) / 1000
	})
	// The baselines do not use the grid; run each once and replicate.
	flat := func(a sim.Approach) Series {
		cfg := o.base()
		cfg.Approach = a
		v := float64(sim.Run(cfg).ServerLoadPerStep().Microseconds()) / 1000
		y := make([]float64, len(xs))
		for i := range y {
			y[i] = v
		}
		return Series{Name: a.String() + " (flat)", Y: y}
	}
	return Figure{
		ID:     "fig3",
		Title:  "Effect of alpha on server load",
		XLabel: "alpha (miles)",
		YLabel: "server load (ms/step)",
		LogY:   true,
		X:      xs,
		Series: []Series{flat(sim.ObjectIndex), flat(sim.QueryIndex), mobi},
	}
}

// Fig4 reproduces "Effect of α on messaging cost": wireless messages per
// second as a function of the grid cell size, for three query counts.
func Fig4(o RunOpts) Figure {
	o = o.normalize()
	xs := []float64{0.5, 1, 2, 4, 6, 8, 16}
	nmqs := scaleInts([]int{100, 500, 1000}, o.ScaleDiv)
	var ss []Series
	for _, nmq := range nmqs {
		nmq := nmq
		ss = append(ss, series(seriesName("nmq", nmq), xs, func(x float64) float64 {
			cfg := o.base()
			cfg.Core = mobiOpts(core.EagerPropagation)
			cfg.Alpha = x
			cfg.NumQueries = int(nmq)
			return sim.Run(cfg).MessagesPerSecond()
		}))
	}
	return Figure{
		ID:     "fig4",
		Title:  "Effect of alpha on messaging cost",
		XLabel: "alpha (miles)",
		YLabel: "messages/second",
		X:      xs,
		Series: ss,
	}
}

// Fig5 reproduces "Effect of number of objects on messaging cost". While
// the object count varies, the ratio nmo/no stays at its default (10%).
func Fig5(o RunOpts) Figure {
	return objectsSweepFigure(o, "fig5",
		"Effect of number of objects on messaging cost",
		"messages/second", false,
		func(m sim.Metrics) float64 { return m.MessagesPerSecond() })
}

// Fig6 reproduces "Effect of number of objects on uplink messaging cost"
// (log scale in the paper): the uplink component of Fig. 5.
func Fig6(o RunOpts) Figure {
	return objectsSweepFigure(o, "fig6",
		"Effect of number of objects on uplink messaging cost",
		"uplink messages/second", true,
		func(m sim.Metrics) float64 { return m.UplinkMessagesPerSecond() })
}

func objectsSweepFigure(o RunOpts, id, title, ylabel string, logY bool, metric func(sim.Metrics) float64) Figure {
	o = o.normalize()
	xs := o.objectsSweep()
	runAt := func(a sim.Approach, opts core.Options, nmq int) func(float64) float64 {
		return func(x float64) float64 {
			cfg := o.base()
			cfg.Approach = a
			cfg.Core = opts
			cfg.NumObjects = int(x)
			cfg.NumQueries = nmq
			cfg.VelocityChangesPerStep = int(x) / 10 // keep nmo/no constant
			if cfg.VelocityChangesPerStep < 1 {
				cfg.VelocityChangesPerStep = 1
			}
			return metric(sim.Run(cfg))
		}
	}
	nmqLo := intMax(100/o.ScaleDiv, 1)
	nmqHi := intMax(1000/o.ScaleDiv, 1)
	return Figure{
		ID:     id,
		Title:  title,
		XLabel: "objects",
		YLabel: ylabel,
		LogY:   logY,
		X:      xs,
		Series: []Series{
			series("naive", xs, runAt(sim.Naive, core.Options{}, nmqHi)),
			series("central optimal", xs, runAt(sim.CentralOptimal, sim.DefaultConfig().Core, nmqHi)),
			series(seriesName("EQP nmq", float64(nmqLo)), xs, runAt(sim.MobiEyes, mobiOpts(core.EagerPropagation), nmqLo)),
			series(seriesName("EQP nmq", float64(nmqHi)), xs, runAt(sim.MobiEyes, mobiOpts(core.EagerPropagation), nmqHi)),
			series(seriesName("LQP nmq", float64(nmqLo)), xs, runAt(sim.MobiEyes, mobiOpts(core.LazyPropagation), nmqLo)),
			series(seriesName("LQP nmq", float64(nmqHi)), xs, runAt(sim.MobiEyes, mobiOpts(core.LazyPropagation), nmqHi)),
		},
	}
}

// Fig7 reproduces "Effect of number of objects changing velocity vector per
// time step on messaging cost".
func Fig7(o RunOpts) Figure {
	o = o.normalize()
	xs := o.nmoSweep()
	runAt := func(a sim.Approach, opts core.Options, nmq int) func(float64) float64 {
		return func(x float64) float64 {
			cfg := o.base()
			cfg.Approach = a
			cfg.Core = opts
			cfg.NumQueries = nmq
			cfg.VelocityChangesPerStep = int(x)
			return sim.Run(cfg).MessagesPerSecond()
		}
	}
	nmqLo := intMax(100/o.ScaleDiv, 1)
	nmqHi := intMax(1000/o.ScaleDiv, 1)
	return Figure{
		ID:     "fig7",
		Title:  "Effect of velocity changes per step on messaging cost",
		XLabel: "velocity changes/step",
		YLabel: "messages/second",
		X:      xs,
		Series: []Series{
			series("naive", xs, runAt(sim.Naive, core.Options{}, nmqHi)),
			series("central optimal", xs, runAt(sim.CentralOptimal, sim.DefaultConfig().Core, nmqHi)),
			series(seriesName("EQP nmq", float64(nmqLo)), xs, runAt(sim.MobiEyes, mobiOpts(core.EagerPropagation), nmqLo)),
			series(seriesName("EQP nmq", float64(nmqHi)), xs, runAt(sim.MobiEyes, mobiOpts(core.EagerPropagation), nmqHi)),
			series(seriesName("LQP nmq", float64(nmqLo)), xs, runAt(sim.MobiEyes, mobiOpts(core.LazyPropagation), nmqLo)),
			series(seriesName("LQP nmq", float64(nmqHi)), xs, runAt(sim.MobiEyes, mobiOpts(core.LazyPropagation), nmqHi)),
		},
	}
}

// Fig8 reproduces "Effect of base station coverage area on messaging cost".
func Fig8(o RunOpts) Figure {
	o = o.normalize()
	xs := []float64{5, 10, 20, 40, 80}
	nmqs := scaleInts([]int{100, 500, 1000}, o.ScaleDiv)
	var ss []Series
	for _, nmq := range nmqs {
		nmq := nmq
		ss = append(ss, series(seriesName("nmq", nmq), xs, func(x float64) float64 {
			cfg := o.base()
			cfg.Core = mobiOpts(core.EagerPropagation)
			cfg.Alen = x
			cfg.NumQueries = int(nmq)
			return sim.Run(cfg).MessagesPerSecond()
		}))
	}
	return Figure{
		ID:     "fig8",
		Title:  "Effect of base station coverage area on messaging cost",
		XLabel: "alen (miles)",
		YLabel: "messages/second",
		X:      xs,
		Series: ss,
	}
}

// Fig9 reproduces "Effect of number of queries on per object power
// consumption due to communication".
func Fig9(o RunOpts) Figure {
	o = o.normalize()
	xs := o.queriesSweep()
	run := func(a sim.Approach, opts core.Options) func(float64) float64 {
		return func(x float64) float64 {
			cfg := o.base()
			cfg.Approach = a
			cfg.Core = opts
			cfg.NumQueries = int(x)
			return sim.Run(cfg).AvgPowerWatts * 1000 // mW
		}
	}
	return Figure{
		ID:     "fig9",
		Title:  "Per-object power consumption due to communication",
		XLabel: "queries",
		YLabel: "avg power (mW/object)",
		X:      xs,
		Series: []Series{
			series("naive", xs, run(sim.Naive, core.Options{})),
			series("central optimal", xs, run(sim.CentralOptimal, sim.DefaultConfig().Core)),
			series("MobiEyes", xs, run(sim.MobiEyes, mobiOpts(core.EagerPropagation))),
		},
	}
}

// Fig10 reproduces "Effect of α on the average number of queries evaluated
// per step on a moving object" (the average LQT size).
func Fig10(o RunOpts) Figure {
	o = o.normalize()
	xs := []float64{1, 2, 4, 8, 16}
	nmqs := scaleInts([]int{100, 500, 1000}, o.ScaleDiv)
	var ss []Series
	for _, nmq := range nmqs {
		nmq := nmq
		ss = append(ss, series(seriesName("nmq", nmq), xs, func(x float64) float64 {
			cfg := o.base()
			cfg.Core = mobiOpts(core.EagerPropagation)
			cfg.Alpha = x
			cfg.NumQueries = int(nmq)
			return sim.Run(cfg).AvgLQTSize
		}))
	}
	return Figure{
		ID:     "fig10",
		Title:  "Effect of alpha on average LQT size",
		XLabel: "alpha (miles)",
		YLabel: "avg LQT size",
		X:      xs,
		Series: ss,
	}
}

// Fig11 reproduces "Effect of the total number of queries on the average
// LQT size".
func Fig11(o RunOpts) Figure {
	o = o.normalize()
	xs := o.queriesSweep()
	run := func(alpha float64) func(float64) float64 {
		return func(x float64) float64 {
			cfg := o.base()
			cfg.Core = mobiOpts(core.EagerPropagation)
			cfg.Alpha = alpha
			cfg.NumQueries = int(x)
			return sim.Run(cfg).AvgLQTSize
		}
	}
	return Figure{
		ID:     "fig11",
		Title:  "Effect of number of queries on average LQT size",
		XLabel: "queries",
		YLabel: "avg LQT size",
		X:      xs,
		Series: []Series{
			series("alpha=2.5", xs, run(2.5)),
			series("alpha=5", xs, run(5)),
			series("alpha=10", xs, run(10)),
		},
	}
}

// Fig12 reproduces "Effect of the query radius on the average LQT size":
// all radii scaled by a factor.
func Fig12(o RunOpts) Figure {
	o = o.normalize()
	xs := []float64{0.5, 1, 1.5, 2, 2.5, 3}
	s := series("default config", xs, func(x float64) float64 {
		cfg := o.base()
		cfg.Core = mobiOpts(core.EagerPropagation)
		cfg.RadiusFactor = x
		return sim.Run(cfg).AvgLQTSize
	})
	return Figure{
		ID:     "fig12",
		Title:  "Effect of query radius factor on average LQT size",
		XLabel: "radius factor",
		YLabel: "avg LQT size",
		X:      xs,
		Series: []Series{s},
	}
}

// Fig13 reproduces "Effect of the safe period optimization on the average
// query processing load of a moving object": client processing time per
// object per step, with and without the optimization. A third series adds
// this implementation's predictive scheduler (exact entry times instead of
// worst-case bounds) — an extension beyond the paper for comparison.
func Fig13(o RunOpts) Figure {
	o = o.normalize()
	xs := []float64{1, 2, 4, 8, 16}
	run := func(mut func(*core.Options)) func(float64) float64 {
		return func(x float64) float64 {
			cfg := o.base()
			cfg.Core = mobiOpts(core.EagerPropagation)
			mut(&cfg.Core)
			cfg.Alpha = x
			m := sim.Run(cfg)
			return float64(m.ClientLoadPerObjectStep(cfg.NumObjects).Nanoseconds()) / 1000 // µs
		}
	}
	return Figure{
		ID:     "fig13",
		Title:  "Effect of the safe period optimization on client load",
		XLabel: "alpha (miles)",
		YLabel: "client processing (microseconds/object/step)",
		X:      xs,
		Series: []Series{
			series("base", xs, run(func(*core.Options) {})),
			series("safe period", xs, run(func(o *core.Options) { o.SafePeriod = true })),
			series("predictive (ext)", xs, run(func(o *core.Options) { o.Predictive = true })),
		},
	}
}

func seriesName(prefix string, v float64) string {
	return prefix + "=" + strconv.Itoa(int(v))
}

func intMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Breakdown runs the default workload under each approach and reports the
// per-message-kind traffic — the explanation behind Figs. 5–7: which flows
// each scheme pays for. Not a paper figure; an observability extra.
func Breakdown(o RunOpts) []BreakdownRow {
	o = o.normalize()
	variants := []struct {
		name string
		cfg  func() sim.Config
	}{
		{"naive", func() sim.Config { c := o.base(); c.Approach = sim.Naive; return c }},
		{"central optimal", func() sim.Config { c := o.base(); c.Approach = sim.CentralOptimal; return c }},
		{"MobiEyes EQP", func() sim.Config { c := o.base(); c.Core = mobiOpts(core.EagerPropagation); return c }},
		{"MobiEyes LQP", func() sim.Config { c := o.base(); c.Core = mobiOpts(core.LazyPropagation); return c }},
		{"EQP grouping", func() sim.Config {
			c := o.base()
			c.Core = mobiOpts(core.EagerPropagation)
			c.Core.Grouping = true
			return c
		}},
	}
	var rows []BreakdownRow
	for _, v := range variants {
		m := sim.Run(v.cfg())
		rows = append(rows, BreakdownRow{Name: v.name, Metrics: m})
	}
	return rows
}

// BreakdownRow pairs an approach label with its full metrics.
type BreakdownRow struct {
	Name    string
	Metrics sim.Metrics
}

// WriteBreakdown renders breakdown rows as an aligned table.
func WriteBreakdown(w io.Writer, rows []BreakdownRow) {
	fmt.Fprintln(w, "breakdown: wireless traffic by message kind (messages over the measured run)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %8.1f msg/s (%.1f up / %.1f down)\n",
			r.Name, r.Metrics.MessagesPerSecond(), r.Metrics.UplinkMessagesPerSecond(),
			r.Metrics.MessagesPerSecond()-r.Metrics.UplinkMessagesPerSecond())
		for _, ks := range r.Metrics.ByKind {
			fmt.Fprintf(w, "      %-24s %8d up  %8d down  (%d / %d bytes)\n",
				ks.Kind, ks.UplinkMsgs, ks.DownlinkMsgs, ks.UplinkBytes, ks.DownlinkBytes)
		}
	}
	fmt.Fprintln(w)
}

// AlphaModel compares the analytical messaging-cost model of
// internal/analysis against the simulator over the Fig. 4 α sweep — the
// validation the paper's omitted model would have needed.
func AlphaModel(o RunOpts) Figure {
	o = o.normalize()
	xs := []float64{0.5, 1, 2, 4, 6, 8, 16}

	simSeries := series("simulated", xs, func(x float64) float64 {
		cfg := o.base()
		cfg.Core = mobiOpts(core.EagerPropagation)
		cfg.Alpha = x
		return sim.Run(cfg).MessagesPerSecond()
	})

	p := analysis.DefaultParams()
	cfg := o.base()
	p.NumObjects = cfg.NumObjects
	p.NumQueries = cfg.NumQueries
	p.VelocityChanges = cfg.VelocityChangesPerStep
	p.AreaSqMiles = cfg.AreaSqMiles
	p.Alen = cfg.Alen
	modelSeries := series("analytical model", xs, p.TotalRate)

	return Figure{
		ID:     "alphamodel",
		Title:  "Analytical model vs simulation (messaging cost over alpha)",
		XLabel: "alpha (miles)",
		YLabel: "messages/second",
		X:      xs,
		Series: []Series{simSeries, modelSeries},
	}
}
