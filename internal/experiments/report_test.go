package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reportOpts is the report tests' scale: like quick, but with enough
// measured steps for the Δ sweep's dead-reckoning savings to dominate the
// per-run noise floor. The build is deterministic, so every test sees the
// same document.
var reportOpts = RunOpts{Steps: 6, Warmup: 2, ScaleDiv: 20, Seed: 1}

func reportQuick(t *testing.T) RunReport {
	t.Helper()
	return BuildRunReport(reportOpts)
}

// TestRunReportShapes pins the report's structure and the paper's
// qualitative claims at quick scale: LQP must save downlink messages over
// EQP, uplink cost must shrink as the dead-reckoning threshold grows, and
// MobiEyes must undercut naive per-step reporting.
func TestRunReportShapes(t *testing.T) {
	r := reportQuick(t)
	if len(r.Modes) != 2 || r.Modes[0].Mode != "EQP" || r.Modes[1].Mode != "LQP" {
		t.Fatalf("modes = %+v, want [EQP LQP]", r.Modes)
	}
	for _, m := range r.Modes {
		if m.Ledger.UpMsgs == 0 || m.Ledger.DownMsgs == 0 {
			t.Errorf("%s: empty ledger %+v", m.Mode, m.Ledger)
		}
		if m.Quality == nil {
			t.Errorf("%s: no quality gauges", m.Mode)
		}
	}
	if len(r.DeltaSweep) != 2 {
		t.Fatalf("delta sweep has %d curves, want 2", len(r.DeltaSweep))
	}
	for _, c := range append(r.DeltaSweep, r.AlphaSweep, r.QueriesSweep) {
		if len(c.Points) < 2 {
			t.Errorf("curve %q: only %d points", c.Name, len(c.Points))
		}
		for _, p := range c.Points {
			if p.UplinkMsgs <= 0 {
				t.Errorf("curve %q x=%v: no uplink traffic", c.Name, p.X)
			}
		}
	}
	if len(r.Baselines) != 3 {
		t.Fatalf("baselines = %+v, want 3", r.Baselines)
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check %q failed: %s", c.Name, c.Detail)
		}
	}
	if !r.AllChecksPass() {
		t.Error("AllChecksPass = false")
	}
}

// TestRunReportLQPSavesDownlink pins the §5 headline directly rather than
// through the check list: lazy propagation must broadcast less.
func TestRunReportLQPSavesDownlink(t *testing.T) {
	r := reportQuick(t)
	eqp, lqp := r.Modes[0].Ledger, r.Modes[1].Ledger
	if lqp.DownMsgs >= eqp.DownMsgs {
		t.Errorf("LQP downlink %d not below EQP %d", lqp.DownMsgs, eqp.DownMsgs)
	}
	if lqp.DownBytes >= eqp.DownBytes {
		t.Errorf("LQP downlink bytes %d not below EQP %d", lqp.DownBytes, eqp.DownBytes)
	}
}

// TestRunReportRenderers checks that both renderers produce the full
// document and that the JSON round-trips.
func TestRunReportRenderers(t *testing.T) {
	r := reportQuick(t)
	var txt bytes.Buffer
	r.WriteText(&txt)
	for _, want := range []string{"EQP vs LQP", "cost vs delta", "cost vs alpha",
		"cost vs queries", "Distributed vs centralized", "Checks", "PASS"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if len(back.Modes) != len(r.Modes) || len(back.Checks) != len(r.Checks) {
		t.Errorf("round-trip lost sections: %+v", back)
	}

	dir := t.TempDir()
	if err := r.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"runreport.json", "runreport.txt"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

// TestRunReportDeterministic proves that two builds at the same options are
// byte-identical — the property the ledger oracle depends on and the reason
// results/ artifacts are reviewable diffs.
func TestRunReportDeterministic(t *testing.T) {
	a, b := BuildRunReport(reportOpts), BuildRunReport(reportOpts)
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Error("two report builds at identical options differ")
	}
}
