// Package experiments regenerates every table and figure of the MobiEyes
// paper's evaluation (§5). Each FigN function runs the simulations behind
// one figure and returns the series the paper plots; cmd/experiments prints
// them and bench_test.go measures them.
//
// Figures are identified by the paper's numbering:
//
//	Fig. 1  server load vs number of queries (log scale)
//	Fig. 2  LQP result error vs velocity changes per step
//	Fig. 3  server load vs α (log scale)
//	Fig. 4  messaging cost vs α
//	Fig. 5  messaging cost vs number of objects
//	Fig. 6  uplink messaging cost vs number of objects (log scale)
//	Fig. 7  messaging cost vs velocity changes per step
//	Fig. 8  messaging cost vs base-station side length
//	Fig. 9  per-object power consumption vs number of queries
//	Fig. 10 average LQT size vs α
//	Fig. 11 average LQT size vs number of queries
//	Fig. 12 average LQT size vs query-radius factor
//	Fig. 13 client query-processing load vs α, safe period on/off
package experiments

import (
	"fmt"
	"io"
	"strings"

	"mobieyes/internal/core"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/sim"
)

// RunOpts trades fidelity for speed. Zero value = paper scale.
type RunOpts struct {
	// Steps and Warmup override the per-run step counts (0 = defaults:
	// 10 measured steps after 3 warmup steps).
	Steps, Warmup int
	// ScaleDiv divides the object, query and velocity-change counts (and
	// the area, to preserve density). 1 or 0 = paper scale; 10 is a good
	// smoke-test setting.
	ScaleDiv int
	Seed     int64
	// Shards selects the server implementation for the MobiEyes runs:
	// 0 or 1 = the serial deterministic server, >1 = the grid-partitioned
	// ShardedServer with a concurrent uplink drain (see sim.Config
	// .ServerShards). Results are equivalent; wall-clock server load
	// benefits from extra cores.
	Shards int
	// Metrics, when non-nil, instruments every engine the experiments
	// build against this registry (see sim.Config.Metrics) — useful with
	// obs.ListenAndServe to watch a long sweep live over /metrics.
	Metrics *obs.Registry
	// Trace, when non-nil, attaches this causal flight recorder to every
	// engine (see sim.Config.Trace) — useful with obs.ListenAndServeTraced
	// to inspect /debug/events while a sweep runs.
	Trace *trace.Recorder
}

func (o RunOpts) normalize() RunOpts {
	if o.Steps == 0 {
		o.Steps = 10
	}
	if o.Warmup == 0 {
		o.Warmup = 3
	}
	if o.ScaleDiv <= 0 {
		o.ScaleDiv = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// base builds a sim.Config at the paper's defaults adjusted by o.
func (o RunOpts) base() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Steps = o.Steps
	cfg.Warmup = o.Warmup
	cfg.Seed = o.Seed
	d := o.ScaleDiv
	cfg.NumObjects /= d
	cfg.NumQueries /= d
	cfg.VelocityChangesPerStep /= d
	cfg.AreaSqMiles /= float64(d)
	cfg.ServerShards = o.Shards
	cfg.Metrics = o.Metrics
	cfg.Trace = o.Trace
	return cfg
}

// Figure is the data behind one plot: a shared x-axis and named series.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// LogY records that the paper plots this figure with a log y-axis.
	LogY bool
}

// Series is one line of a figure.
type Series struct {
	Name string
	Y    []float64
}

// WriteTable renders the figure as an aligned text table.
func (f Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	scale := ""
	if f.LogY {
		scale = " [paper plots log scale]"
	}
	fmt.Fprintf(w, "  x = %s, y = %s%s\n", f.XLabel, f.YLabel, scale)
	fmt.Fprintf(w, "  %-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "  %18s", s.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", 12+20*len(f.Series)))
	for i, x := range f.X {
		fmt.Fprintf(w, "  %-12.4g", x)
		for _, s := range f.Series {
			fmt.Fprintf(w, "  %18.6g", s.Y[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the figure as CSV (x column plus one column per series).
func (f Figure) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "%s", csvEscape(f.XLabel))
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", csvEscape(s.Name))
	}
	fmt.Fprintln(w)
	for i, x := range f.X {
		fmt.Fprintf(w, "%g", x)
		for _, s := range f.Series {
			fmt.Fprintf(w, ",%g", s.Y[i])
		}
		fmt.Fprintln(w)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// series runs one configuration per x value and extracts a metric.
func series(name string, xs []float64, run func(x float64) float64) Series {
	s := Series{Name: name, Y: make([]float64, len(xs))}
	for i, x := range xs {
		s.Y[i] = run(x)
	}
	return s
}

// queriesSweep is the nmq x-axis used by Figs. 1, 9 and 11.
func (o RunOpts) queriesSweep() []float64 {
	return scaleInts([]int{100, 250, 500, 750, 1000}, o.ScaleDiv)
}

// nmoSweep is the velocity-changes x-axis of Figs. 2 and 7.
func (o RunOpts) nmoSweep() []float64 {
	return scaleInts([]int{100, 250, 500, 750, 1000}, o.ScaleDiv)
}

// objectsSweep is the object-count x-axis of Figs. 5 and 6.
func (o RunOpts) objectsSweep() []float64 {
	return scaleInts([]int{1000, 2500, 5000, 7500, 10000}, o.ScaleDiv)
}

func scaleInts(xs []int, div int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		v := x / div
		if v < 1 {
			v = 1
		}
		out[i] = float64(v)
	}
	return out
}

// mobiOpts builds the protocol options for a MobiEyes variant keeping the
// default dead-reckoning threshold.
func mobiOpts(mode core.PropagationMode) core.Options {
	o := sim.DefaultConfig().Core
	o.Mode = mode
	return o
}

// All runs every experiment and returns the figures in paper order.
func All(o RunOpts) []Figure {
	return []Figure{
		Fig1(o), Fig2(o), Fig3(o), Fig4(o), Fig5(o), Fig6(o), Fig7(o),
		Fig8(o), Fig9(o), Fig10(o), Fig11(o), Fig12(o), Fig13(o),
	}
}

// Table1 renders the simulation-parameter table of the paper.
func Table1(w io.Writer) {
	cfg := sim.DefaultConfig()
	rows := [][2]string{
		{"ts (time step)", fmt.Sprintf("%.0f seconds", cfg.StepSeconds)},
		{"alpha (grid cell side)", fmt.Sprintf("%.0f miles (range 0.5–16)", cfg.Alpha)},
		{"no (number of objects)", fmt.Sprintf("%d (range 1,000–10,000)", cfg.NumObjects)},
		{"nmq (number of moving queries)", fmt.Sprintf("%d (range 100–1,000)", cfg.NumQueries)},
		{"nmo (velocity changes per step)", fmt.Sprintf("%d (range 100–1,000)", cfg.VelocityChangesPerStep)},
		{"area", fmt.Sprintf("%.0f square miles", cfg.AreaSqMiles)},
		{"alen (base station side)", fmt.Sprintf("%.0f miles (range 5–80)", cfg.Alen)},
		{"qradius (query radius means)", "{3, 2, 1, 4, 5} miles, zipf(0.8), sigma = mean/5"},
		{"qselect (query selectivity)", "0.75"},
		{"mospeed (max object speeds)", "{100, 50, 150, 200, 250} mph, zipf(0.8)"},
	}
	fmt.Fprintln(w, "Table 1: Simulation Parameters")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-34s %s\n", r[0], r[1])
	}
	fmt.Fprintln(w)
}
