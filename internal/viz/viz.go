// Package viz renders simulation state to raster images: objects, query
// regions, grid lines and monitoring regions over the universe of
// discourse. It backs cmd/mobiviz, which turns a simulation run into PNG
// frames — often the fastest way to see that monitoring regions follow
// their focal objects and results flip exactly at region boundaries.
//
// The canvas maps the UoD onto a square image with the y-axis pointing up
// (world convention), i.e. image rows are flipped.
package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"mobieyes/internal/geo"
)

// Canvas rasterizes world-coordinate drawing operations.
type Canvas struct {
	img   *image.RGBA
	uod   geo.Rect
	scale float64 // pixels per mile
}

// NewCanvas returns a canvas for the given universe of discourse, widthPx
// pixels wide (height follows the UoD aspect ratio). It panics for
// non-positive dimensions — a configuration error.
func NewCanvas(uod geo.Rect, widthPx int) *Canvas {
	if widthPx <= 0 || uod.W() <= 0 || uod.H() <= 0 {
		panic(fmt.Sprintf("viz: invalid canvas (%d px over %v)", widthPx, uod))
	}
	scale := float64(widthPx) / uod.W()
	heightPx := int(uod.H()*scale + 0.5)
	if heightPx < 1 {
		heightPx = 1
	}
	return &Canvas{
		img:   image.NewRGBA(image.Rect(0, 0, widthPx, heightPx)),
		uod:   uod,
		scale: scale,
	}
}

// Image exposes the underlying image.
func (c *Canvas) Image() *image.RGBA { return c.img }

// Size returns the pixel dimensions.
func (c *Canvas) Size() (w, h int) {
	b := c.img.Bounds()
	return b.Dx(), b.Dy()
}

// Clear fills the canvas with a color.
func (c *Canvas) Clear(col color.RGBA) {
	b := c.img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c.img.SetRGBA(x, y, col)
		}
	}
}

// ToPixel maps a world point to pixel coordinates (y flipped).
func (c *Canvas) ToPixel(p geo.Point) (x, y int) {
	_, h := c.Size()
	x = int((p.X - c.uod.LX) * c.scale)
	y = h - 1 - int((p.Y-c.uod.LY)*c.scale)
	return x, y
}

func (c *Canvas) set(x, y int, col color.RGBA) {
	if image.Pt(x, y).In(c.img.Bounds()) {
		c.img.SetRGBA(x, y, col)
	}
}

// DrawPoint draws a filled disc of the given pixel radius at world point p.
func (c *Canvas) DrawPoint(p geo.Point, radiusPx int, col color.RGBA) {
	cx, cy := c.ToPixel(p)
	r2 := radiusPx * radiusPx
	for dy := -radiusPx; dy <= radiusPx; dy++ {
		for dx := -radiusPx; dx <= radiusPx; dx++ {
			if dx*dx+dy*dy <= r2 {
				c.set(cx+dx, cy+dy, col)
			}
		}
	}
}

// DrawCircle draws the outline of a world-coordinate circle using the
// midpoint circle algorithm.
func (c *Canvas) DrawCircle(circle geo.Circle, col color.RGBA) {
	cx, cy := c.ToPixel(circle.Center)
	r := int(circle.R*c.scale + 0.5)
	if r <= 0 {
		c.set(cx, cy, col)
		return
	}
	x, y, err := r, 0, 1-r
	for x >= y {
		for _, pt := range [8][2]int{
			{x, y}, {y, x}, {-y, x}, {-x, y},
			{-x, -y}, {-y, -x}, {y, -x}, {x, -y},
		} {
			c.set(cx+pt[0], cy+pt[1], col)
		}
		y++
		if err < 0 {
			err += 2*y + 1
		} else {
			x--
			err += 2*(y-x) + 1
		}
	}
}

// DrawRect draws the outline of a world-coordinate rectangle.
func (c *Canvas) DrawRect(r geo.Rect, col color.RGBA) {
	x0, y0 := c.ToPixel(geo.Pt(r.LX, r.LY))
	x1, y1 := c.ToPixel(geo.Pt(r.HX, r.HY))
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for x := x0; x <= x1; x++ {
		c.set(x, y0, col)
		c.set(x, y1, col)
	}
	for y := y0; y <= y1; y++ {
		c.set(x0, y, col)
		c.set(x1, y, col)
	}
}

// DrawGrid draws the α-grid lines over the UoD.
func (c *Canvas) DrawGrid(alpha float64, col color.RGBA) {
	if alpha <= 0 {
		return
	}
	w, h := c.Size()
	for gx := c.uod.LX; gx <= c.uod.HX+1e-9; gx += alpha {
		x, _ := c.ToPixel(geo.Pt(gx, c.uod.LY))
		for y := 0; y < h; y++ {
			c.set(x, y, col)
		}
	}
	for gy := c.uod.LY; gy <= c.uod.HY+1e-9; gy += alpha {
		_, y := c.ToPixel(geo.Pt(c.uod.LX, gy))
		for x := 0; x < w; x++ {
			c.set(x, y, col)
		}
	}
}

// EncodePNG writes the canvas as PNG.
func (c *Canvas) EncodePNG(w io.Writer) error {
	return png.Encode(w, c.img)
}

// Standard palette for simulation frames.
var (
	Background = color.RGBA{18, 18, 24, 255}
	GridLine   = color.RGBA{40, 40, 52, 255}
	Object     = color.RGBA{150, 150, 160, 255}
	Focal      = color.RGBA{80, 160, 255, 255}
	Target     = color.RGBA{255, 90, 90, 255}
	Region     = color.RGBA{90, 220, 140, 255}
	MonRegion  = color.RGBA{70, 110, 80, 255}
)
