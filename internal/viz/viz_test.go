package viz

import (
	"bytes"
	"image/color"
	"image/png"
	"math"
	"testing"

	"mobieyes/internal/geo"
)

func testCanvas() *Canvas {
	return NewCanvas(geo.NewRect(0, 0, 100, 100), 200)
}

func TestNewCanvasDimensions(t *testing.T) {
	c := testCanvas()
	w, h := c.Size()
	if w != 200 || h != 200 {
		t.Fatalf("size = %dx%d, want 200x200", w, h)
	}
	// Non-square UoD keeps the aspect ratio.
	c2 := NewCanvas(geo.NewRect(0, 0, 100, 50), 200)
	w2, h2 := c2.Size()
	if w2 != 200 || h2 != 100 {
		t.Fatalf("size = %dx%d, want 200x100", w2, h2)
	}
}

func TestNewCanvasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCanvas(geo.NewRect(0, 0, 100, 100), 0)
}

func TestToPixelOrientation(t *testing.T) {
	c := testCanvas()
	// World origin (bottom-left) maps to the bottom-left pixel.
	x, y := c.ToPixel(geo.Pt(0, 0))
	if x != 0 || y != 199 {
		t.Errorf("origin → (%d,%d), want (0,199)", x, y)
	}
	// Top-right corner.
	x, y = c.ToPixel(geo.Pt(99.9, 99.9))
	if x != 199 || y != 0 {
		t.Errorf("top-right → (%d,%d), want (199,0)", x, y)
	}
	// Moving north decreases the pixel row.
	_, y1 := c.ToPixel(geo.Pt(50, 10))
	_, y2 := c.ToPixel(geo.Pt(50, 90))
	if y2 >= y1 {
		t.Error("y axis not flipped")
	}
}

func TestClearAndDrawPoint(t *testing.T) {
	c := testCanvas()
	c.Clear(Background)
	if got := c.Image().RGBAAt(100, 100); got != Background {
		t.Fatalf("Clear failed: %v", got)
	}
	red := color.RGBA{255, 0, 0, 255}
	c.DrawPoint(geo.Pt(50, 50), 2, red)
	px, py := c.ToPixel(geo.Pt(50, 50))
	if got := c.Image().RGBAAt(px, py); got != red {
		t.Fatalf("point center not drawn: %v", got)
	}
	if got := c.Image().RGBAAt(px+2, py); got != red {
		t.Fatal("point radius not filled")
	}
	if got := c.Image().RGBAAt(px+4, py); got == red {
		t.Fatal("point overflowed its radius")
	}
	// Off-canvas points must not panic.
	c.DrawPoint(geo.Pt(-50, -50), 3, red)
	c.DrawPoint(geo.Pt(500, 500), 3, red)
}

func TestDrawCirclePixelsOnRing(t *testing.T) {
	c := testCanvas()
	c.Clear(Background)
	col := color.RGBA{0, 255, 0, 255}
	circle := geo.NewCircle(geo.Pt(50, 50), 20)
	c.DrawCircle(circle, col)

	cx, cy := c.ToPixel(circle.Center)
	rPx := circle.R * 2 // scale = 2 px/mile
	found := 0
	w, h := c.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if c.Image().RGBAAt(x, y) != col {
				continue
			}
			found++
			d := math.Hypot(float64(x-cx), float64(y-cy))
			if math.Abs(d-rPx) > 1.5 {
				t.Fatalf("circle pixel (%d,%d) at distance %.1f, want ≈%.1f", x, y, d, rPx)
			}
		}
	}
	if found < 100 {
		t.Fatalf("only %d circle pixels drawn", found)
	}
}

func TestDrawRectOutline(t *testing.T) {
	c := testCanvas()
	c.Clear(Background)
	col := color.RGBA{0, 0, 255, 255}
	c.DrawRect(geo.NewRect(10, 10, 30, 20), col)
	// Corners are on the outline.
	for _, p := range []geo.Point{geo.Pt(10, 10), geo.Pt(40, 10), geo.Pt(10, 30), geo.Pt(40, 30)} {
		x, y := c.ToPixel(p)
		if got := c.Image().RGBAAt(x, y); got != col {
			t.Errorf("corner %v not drawn: %v", p, got)
		}
	}
	// Interior stays clear.
	x, y := c.ToPixel(geo.Pt(25, 20))
	if got := c.Image().RGBAAt(x, y); got == col {
		t.Error("rect interior filled")
	}
}

func TestDrawGrid(t *testing.T) {
	c := testCanvas()
	c.Clear(Background)
	c.DrawGrid(25, GridLine)
	// A grid line at x=25 runs the full height.
	x, _ := c.ToPixel(geo.Pt(25, 0))
	for _, y := range []int{0, 50, 199} {
		if got := c.Image().RGBAAt(x, y); got != GridLine {
			t.Fatalf("grid column missing at y=%d", y)
		}
	}
	// Zero alpha is a no-op, not a hang.
	c.DrawGrid(0, GridLine)
}

func TestEncodePNGRoundTrip(t *testing.T) {
	c := testCanvas()
	c.Clear(Background)
	c.DrawPoint(geo.Pt(10, 10), 3, Target)
	var buf bytes.Buffer
	if err := c.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds() != c.Image().Bounds() {
		t.Fatalf("decoded bounds %v, want %v", img.Bounds(), c.Image().Bounds())
	}
	px, py := c.ToPixel(geo.Pt(10, 10))
	r, g, b, _ := img.At(px, py).RGBA()
	wr, wg, wb, _ := Target.RGBA()
	if r != wr || g != wg || b != wb {
		t.Fatal("drawn pixel lost in PNG round trip")
	}
}
