package remote

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/obs"
)

// TestRemoteMetrics drives real traffic through a server and checks that the
// transport and backend metrics land in the registry supplied via the config.
func TestRemoteMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := ListenAndServe(ServerConfig{
		Addr:    "127.0.0.1:0",
		UoD:     geo.NewRect(0, 0, 100, 100),
		Alpha:   5,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if s.Metrics() != reg {
		t.Fatal("Metrics() did not return the configured registry")
	}

	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 2 }) {
		t.Fatal("objects never connected")
	}
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatalf("result never converged: %v", s.Result(qid))
	}

	snap := reg.Snapshot()
	if got := snap["mobieyes_remote_connections"]; got != 2.0 {
		t.Errorf("connections gauge = %v, want 2", got)
	}
	for _, name := range []string{
		"mobieyes_remote_connects_total",
		"mobieyes_remote_frames_in_total",
		"mobieyes_remote_frames_out_total",
		"mobieyes_remote_bytes_in_total",
		"mobieyes_remote_bytes_out_total",
	} {
		v, ok := snap[name].(int64)
		if !ok || v <= 0 {
			t.Errorf("%s = %v, want > 0", name, snap[name])
		}
	}
	if v, _ := snap["mobieyes_remote_decode_errors_total"].(int64); v != 0 {
		t.Errorf("decode errors = %v, want 0", v)
	}

	// Backend instrumentation rides the same registry: per-shard uplink
	// counters and the transport dispatch histogram must have fired.
	var text strings.Builder
	reg.WritePrometheus(&text)
	expo := text.String()
	for _, want := range []string{
		`mobieyes_server_uplinks_total{shard="router"}`,
		`mobieyes_remote_uplink_seconds_count{kind="VelocityReport"}`,
		"mobieyes_remote_broadcast_fanout_count",
		"mobieyes_server_fot_size",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestRemoteMetricsDefaultRegistry: with no registry configured the server
// still keeps one of its own.
func TestRemoteMetricsDefaultRegistry(t *testing.T) {
	s := testServer(t)
	if s.Metrics() == nil {
		t.Fatal("Metrics() = nil without a configured registry")
	}
	dialObject(t, s, 1, geo.Pt(10, 10), geo.Vec(0, 0))
	if !waitFor(t, 2*time.Second, func() bool {
		v, _ := s.Metrics().Snapshot()["mobieyes_remote_connects_total"].(int64)
		return v >= 1
	}) {
		t.Fatal("connects counter never incremented")
	}
}

// TestAdminSTATS: the STATS command streams the full Prometheus exposition,
// terminated by a "." line.
func TestAdminSTATS(t *testing.T) {
	s := testServer(t)
	admin, err := ServeAdmin("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 1 }) {
		t.Fatal("object never connected")
	}

	a := dialAdmin(t, admin)
	if _, err := fmt.Fprintln(a.conn, "STATS"); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for a.sc.Scan() {
		if a.sc.Text() == "." {
			break
		}
		lines = append(lines, a.sc.Text())
	}
	dump := strings.Join(lines, "\n")
	for _, want := range []string{
		"# TYPE mobieyes_remote_connections gauge",
		"mobieyes_remote_connections 1",
		"# TYPE mobieyes_remote_frames_in_total counter",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("STATS dump missing %q", want)
		}
	}
	// The session stays usable after a STATS dump.
	if got := a.cmd(t, "conns"); got != "conns 1" {
		t.Errorf("conns after STATS = %q", got)
	}
}
