package remote

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/history"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/network"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/stream"
	"mobieyes/internal/obs/telemetry"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/wire"
)

// ServerConfig configures a network MobiEyes server.
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. ":7070" or "127.0.0.1:0".
	Addr string
	// UoD and Alpha define the grid, exactly as in the simulation.
	UoD   geo.Rect
	Alpha float64
	// Options selects the protocol variant.
	Options core.Options
	// Shards is the number of grid partitions in the sharded backend;
	// 0 defaults to GOMAXPROCS. Each connection goroutine dispatches its
	// uplinks straight into the partitioned engine, so independent
	// objects are processed concurrently instead of through one funnel.
	// Ignored when ClusterNodes selects the clustered backend.
	Shards int
	// ClusterNodes > 0 selects the router-plus-workers clustered backend
	// (core.ClusterServer) with that many in-process worker nodes instead
	// of the sharded backend: the server process acts as the router tier,
	// owning query lifecycle and forwarding uplinks to the worker owning
	// the reported cell.
	ClusterNodes int
	// Backend, when non-nil, constructs the query engine over the server's
	// grid and downlink instead of the built-in sharded or clustered
	// engines — the hook the cluster-router entrypoint uses to route over
	// TCP worker processes (internal/cluster). Shards and ClusterNodes are
	// ignored when set; ListenAndRestore does not support it.
	Backend func(g *grid.Grid, opts core.Options, down core.Downlink) (core.ServerAPI, error)
	// Metrics is the registry transport and backend metrics attach to,
	// typically shared with an obs.HTTPServer. Nil means the server keeps
	// a private registry, still reachable via Metrics() and the admin
	// STATS command.
	Metrics *obs.Registry
	// Trace is the flight recorder the backend records causal events into
	// (see internal/obs/trace and DESIGN.md §11). Uplink frames carrying a
	// trace ID continue that trace; downlink frames carry the causing trace
	// ID back to the object. Nil disables tracing (the default) — the
	// disabled path costs a single nil check per event site.
	Trace *trace.Recorder
	// Latency, when non-nil, is the pipeline-latency view folding Trace's
	// causal chains into per-stage histograms (obs.LatencyView), shared with
	// a metrics endpoint's /debug/latency. When nil and Trace is set, the
	// server creates its own view — either way Latency() returns it and the
	// admin LAT command reports it. Ignored without Trace.
	Latency *obs.LatencyView
	// Costs is the cost accountant the server attributes protocol traffic
	// and backend work to (see internal/obs/cost and DESIGN.md §12): the
	// transport charges every protocol frame at the codec boundary with its
	// true on-the-wire size (length prefix included), and the backend
	// charges per-shard dispatch, per-entity traffic, and compute units.
	// The server Configures it at startup (no base stations — the TCP
	// fabric has no lattice) and exposes it via Costs() and the admin COSTS
	// command. Nil disables accounting (the default).
	Costs *cost.Accountant
	// Stream, when non-nil, is the live result gateway's fan-out tap
	// (internal/obs/stream, DESIGN.md §17): the server installs a result
	// listener that publishes every differential result event into it,
	// composing with any listener installed later via SetResultListener.
	// The tap sits on the server tier, so with the clustered backend it is
	// router-side and one gateway covers the whole cluster's in-process
	// nodes. Exposed via Stream() and the admin SUB command.
	Stream *stream.Tap
	// History, when non-nil, is the append-only replay store
	// (internal/history): the server tees result transitions (sequenced
	// through Stream, or through a private tap when Stream is nil) plus
	// object position samples from uplinks into it, stamped with
	// wall-clock hours. Appends are charged to Costs' history egress
	// meter. Exposed via History() and the admin HIST command.
	History *history.Store
	// DisconnectGrace defers the synthesized DepartureReport after an
	// abrupt disconnect (one without a DepartureReport frame) by this long,
	// canceled if the object reconnects in time. Zero keeps the original
	// behavior: an abrupt disconnect departs immediately. Set it when
	// clients reconnect and resync, so a transient connection loss does not
	// tear down the object's focal queries.
	DisconnectGrace time.Duration
}

// Server is a MobiEyes server listening for moving-object connections.
// Its query-management methods (InstallQuery, RemoveQuery, Result) are safe
// for concurrent use.
type Server struct {
	cfg ServerConfig
	g   *grid.Grid
	ln  net.Listener

	backend core.ServerAPI // *core.ShardedServer, or *core.ClusterServer with cfg.ClusterNodes
	rec     *trace.Recorder
	lat     *obs.LatencyView // per-stage latency over rec; nil without tracing
	acct    *cost.Accountant // nil-safe; charged at the frame codec boundary
	tel     *telemetry.Plane // cluster telemetry plane, nil unless attached
	tap     *stream.Tap      // result fan-out tap; nil unless streaming or history is on
	hist    *history.Store   // append-only replay store; nil unless history is on
	// userFn is the application listener installed via SetResultListener
	// when a tap owns the backend listener slot; the tap's composite
	// callback invokes it after publishing.
	userFn  atomic.Pointer[func(core.ResultEvent)]
	done    chan struct{}
	closing sync.Once
	wg      sync.WaitGroup

	reg *obs.Registry
	om  *remoteObs

	meterMu sync.Mutex
	meter   network.Meter

	mu    sync.RWMutex
	conns map[model.ObjectID]*serverConn
	// pendingUni holds unicast frames for objects that are not connected
	// yet (or are between reconnects); flushed at handshake. Bounded per
	// object so a never-connecting ID cannot grow memory.
	pendingUni map[model.ObjectID][][]byte
	// graceTimers holds the pending deferred-departure timer of each
	// abruptly disconnected object (only with DisconnectGrace > 0).
	graceTimers map[model.ObjectID]*time.Timer
}

// maxPendingUnicasts bounds the per-object queue of undeliverable frames.
const maxPendingUnicasts = 64

// serverConn is one connected moving object.
type serverConn struct {
	oid  model.ObjectID
	conn net.Conn
	out  *outbox
}

// ListenAndServe starts a server on cfg.Addr.
func ListenAndServe(cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s, err := Serve(cfg, ln)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Serve starts a server on an existing listener. Any net.Listener works,
// including in-memory ones — the deterministic simulation harness serves
// over net.Pipe connections this way. cfg.Addr is ignored. The error is
// non-nil only when a cfg.Backend factory fails (e.g. a cluster router that
// cannot reach its workers); the built-in backends cannot fail.
func Serve(cfg ServerConfig, ln net.Listener) (*Server, error) {
	s := newServer(cfg, ln)
	switch {
	case cfg.Backend != nil:
		backend, err := cfg.Backend(s.g, cfg.Options, serverDownlink{s})
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.backend = backend
	case cfg.ClusterNodes > 0:
		s.backend = core.NewClusterServer(s.g, cfg.Options, serverDownlink{s}, cfg.ClusterNodes)
	default:
		s.backend = core.NewShardedServer(s.g, cfg.Options, serverDownlink{s}, cfg.Shards)
	}
	if s.rec != nil {
		s.backend.SetTracer(s.rec)
	}
	s.wireCosts()
	s.wireStream()
	s.start()
	return s, nil
}

// wireCosts connects the configured accountant: sized to the grid and the
// backend's partition or node count (no base stations over TCP),
// instrumented into the server's registry, and attached to the backend for
// per-shard/per-node and per-entity attribution.
func (s *Server) wireCosts() {
	if s.cfg.Costs == nil {
		return
	}
	s.acct = s.cfg.Costs
	shards := 0
	if b, ok := s.backend.(*core.ShardedServer); ok {
		shards = b.NumShards()
	}
	s.acct.Configure(s.g.NumCells(), 0, shards)
	if b, ok := s.backend.(*core.ClusterServer); ok {
		s.acct.ConfigureNodes(b.NumNodes())
	}
	s.acct.Instrument(s.reg)
	s.backend.SetAccountant(s.acct)
}

// wireStream connects the result-stream tap and the history store: the
// backend's listener slot goes to a composite that publishes into the tap
// (and forwards to any application listener), the tap's sink tees sequenced
// result transitions into the history store stamped with wall hours, and
// history appends are charged to the accountant's egress meter. When only
// History is configured, a private tap provides the sequencing.
func (s *Server) wireStream() {
	s.tap = s.cfg.Stream
	s.hist = s.cfg.History
	if s.hist != nil {
		if s.tap == nil {
			s.tap = stream.NewTap()
		}
		if s.acct != nil {
			s.hist.SetCostHook(s.acct.HistoryAppend)
		}
		s.hist.Instrument(s.reg)
		hist := s.hist
		s.tap.SetSink(func(qid int64, seq uint64, oid int64, enter bool) {
			hist.AppendResult(float64(nowHours()), qid, seq, oid, enter)
		})
	}
	if s.tap == nil {
		return
	}
	s.tap.Instrument(s.reg)
	tap := s.tap
	s.backend.SetResultListener(func(ev core.ResultEvent) {
		tap.Publish(int64(ev.QID), int64(ev.OID), ev.Entered)
		if fn := s.userFn.Load(); fn != nil {
			(*fn)(ev)
		}
	})
}

// historyQuery records a query installation in the history store. Circle
// regions record their radius; other shapes record radius 0 (the replay
// still carries the lifecycle and result timeline).
func (s *Server) historyQuery(qid model.QueryID, focal model.ObjectID, region model.Region) {
	if s.hist == nil {
		return
	}
	radius := 0.0
	if c, ok := region.(model.CircleRegion); ok {
		radius = c.R
	}
	s.hist.AppendQuery(float64(nowHours()), int64(qid), int64(focal), radius)
}

func newServer(cfg ServerConfig, ln net.Listener) *Server {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lat := cfg.Latency
	if lat == nil && cfg.Trace != nil {
		lat = obs.NewLatencyView(cfg.Trace)
	}
	if lat != nil {
		lat.Instrument(reg)
	}
	return &Server{
		cfg:         cfg,
		g:           grid.New(cfg.UoD, cfg.Alpha),
		ln:          ln,
		rec:         cfg.Trace,
		lat:         lat,
		done:        make(chan struct{}),
		reg:         reg,
		conns:       make(map[model.ObjectID]*serverConn),
		pendingUni:  make(map[model.ObjectID][][]byte),
		graceTimers: make(map[model.ObjectID]*time.Timer),
	}
}

func (s *Server) start() {
	s.instrument()
	s.wg.Add(2)
	go s.expiryLoop()
	go s.acceptLoop()
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server and disconnects every object.
func (s *Server) Close() {
	s.closing.Do(func() {
		close(s.done)
		s.ln.Close()
		s.mu.Lock()
		for _, c := range s.conns {
			c.conn.Close()
		}
		for oid, t := range s.graceTimers {
			t.Stop()
			delete(s.graceTimers, oid)
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// expiryLoop sweeps duration-bound queries once a second, and — for a
// clustered backend with a telemetry plane attached — runs the periodic
// telemetry round on the same tick: probe every live node (which pumps the
// workers' pending telemetry into the plane) and evaluate the invariant
// watchdog. The sharded backend is safe for concurrent use, so the sweep
// runs alongside the connection goroutines' uplink dispatch.
func (s *Server) expiryLoop() {
	defer s.wg.Done()
	expiry := time.NewTicker(time.Second)
	defer expiry.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-expiry.C:
			s.ExpireQueries(nowHours())
			if s.Telemetry() != nil {
				if cs, ok := s.backend.(*core.ClusterServer); ok {
					cs.TelemetryRound()
				}
			}
		}
	}
}

// SetTelemetry attaches a cluster telemetry plane: the housekeeping loop
// starts driving periodic telemetry rounds through the clustered backend,
// and the admin HEALTH command reports the plane's watchdog state. Call it
// once, after Serve, before traffic matters (typically right after
// constructing the plane and wiring the router's remote nodes to it).
func (s *Server) SetTelemetry(p *telemetry.Plane) {
	s.mu.Lock()
	s.tel = p
	s.mu.Unlock()
	if cs, ok := s.backend.(*core.ClusterServer); ok {
		cs.SetTelemetry(p)
	}
}

// Telemetry returns the attached telemetry plane, or nil.
func (s *Server) Telemetry() *telemetry.Plane {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tel
}

// InstallQuery installs a moving query.
func (s *Server) InstallQuery(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64) model.QueryID {
	qid := s.backend.InstallQuery(focal, region, filter, focalMaxVel)
	s.historyQuery(qid, focal, region)
	return qid
}

// InstallQueryUntil installs a moving query with an expiry time.
func (s *Server) InstallQueryUntil(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64, expiry model.Time) model.QueryID {
	qid := s.backend.InstallQueryUntil(focal, region, filter, focalMaxVel, expiry)
	s.historyQuery(qid, focal, region)
	return qid
}

// RemoveQuery uninstalls a query.
func (s *Server) RemoveQuery(qid model.QueryID) {
	s.backend.RemoveQuery(qid)
	if s.hist != nil {
		s.hist.AppendQueryRemove(float64(nowHours()), int64(qid))
	}
}

// NumQueries returns the number of installed queries.
func (s *Server) NumQueries() int { return s.backend.NumQueries() }

// QueryIDs returns the sorted identifiers of installed queries.
func (s *Server) QueryIDs() []model.QueryID { return s.backend.QueryIDs() }

// CheckInvariants validates the backend's internal consistency (see
// core.Server.CheckInvariants).
func (s *Server) CheckInvariants() error { return s.backend.CheckInvariants() }

// Tracer returns the attached flight recorder, or nil when tracing is off.
func (s *Server) Tracer() *trace.Recorder { return s.rec }

// Latency returns the per-stage latency view over the flight recorder, or
// nil when tracing is off. It backs the admin LAT command and can be mounted
// on a metrics mux with obs.AttachLatency.
func (s *Server) Latency() *obs.LatencyView { return s.lat }

// Result returns a query's current result set.
func (s *Server) Result(qid model.QueryID) []model.ObjectID {
	return s.backend.Result(qid)
}

// SetResultListener streams differential result events. The callback may
// fire concurrently from multiple connection goroutines; keep it fast and
// make it safe for concurrent use. When a stream tap or history store is
// configured, the tap owns the backend's single listener slot and the
// application listener is invoked from its composite, after the event is
// published.
func (s *Server) SetResultListener(fn func(core.ResultEvent)) {
	if s.tap != nil {
		if fn == nil {
			s.userFn.Store(nil)
		} else {
			s.userFn.Store(&fn)
		}
		return
	}
	s.backend.SetResultListener(fn)
}

// Stream returns the result fan-out tap, or nil when streaming is off. It
// backs the admin SUB command and can be served as SSE by mounting a
// stream.Gateway on a metrics mux.
func (s *Server) Stream() *stream.Tap { return s.tap }

// History returns the append-only replay store, or nil when history is
// off. It backs the admin HIST command and history.Attach.
func (s *Server) History() *history.Store { return s.hist }

// Snapshot serializes the server's durable query state (see
// core.Server.Snapshot) for restart without reinstalling queries.
func (s *Server) Snapshot(w io.Writer) error {
	return s.backend.Snapshot(w)
}

// ListenAndRestore starts a server whose query state is restored from a
// snapshot. Connected objects resume being tracked as they reconnect and
// report.
func ListenAndRestore(cfg ServerConfig, snapshot io.Reader) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := newServer(cfg, ln)
	var backend core.ServerAPI
	if cfg.ClusterNodes > 0 {
		backend, err = core.RestoreClusterServer(s.g, cfg.Options, serverDownlink{s}, cfg.ClusterNodes, snapshot)
	} else {
		backend, err = core.RestoreShardedServer(s.g, cfg.Options, serverDownlink{s}, cfg.Shards, snapshot)
	}
	if err != nil {
		ln.Close()
		return nil, err
	}
	s.backend = backend
	if s.rec != nil {
		s.backend.SetTracer(s.rec)
	}
	s.wireCosts()
	s.wireStream()
	s.start()
	return s, nil
}

// Costs returns the attached cost accountant, or nil when accounting is off.
func (s *Server) Costs() *cost.Accountant { return s.acct }

// ExpireQueries removes duration-bound queries past the given time.
func (s *Server) ExpireQueries(now model.Time) []model.QueryID {
	expired := s.backend.ExpireQueries(now)
	if s.hist != nil {
		for _, qid := range expired {
			s.hist.AppendQueryRemove(float64(nowHours()), int64(qid))
		}
	}
	return expired
}

// Stats returns a snapshot of the traffic counters: message and byte totals
// per direction plus the per-kind breakdown. Bytes are on-the-wire sizes
// (encoded frame plus length prefix), matching the frames_in/out byte
// metrics. A broadcast counts once (the TCP fabric has one logical downlink
// per object; per-connection fan-out is visible in the frame metrics).
func (s *Server) Stats() (uplinkMsgs, downlinkMsgs, uplinkBytes, downlinkBytes int64, byKind []network.KindStats) {
	s.meterMu.Lock()
	defer s.meterMu.Unlock()
	return s.meter.UplinkMessages(), s.meter.DownlinkMessages(),
		s.meter.UplinkBytes(), s.meter.DownlinkBytes(), s.meter.Snapshot()
}

// recordUplinkWire counts one decoded uplink frame with its observed wire
// size — the codec boundary is the single place uplink traffic is metered,
// so message counts and byte counts can never disagree with the wire.
func (s *Server) recordUplinkWire(k msg.Kind, wireBytes int) {
	s.meterMu.Lock()
	s.meter.RecordUplinkWire(k, wireBytes)
	s.meterMu.Unlock()
	s.acct.Uplink(k, wireBytes)
}

func (s *Server) recordDownlinkWire(k msg.Kind, wireBytes, copies int) {
	s.meterMu.Lock()
	s.meter.RecordDownlinkWire(k, wireBytes, copies)
	s.meterMu.Unlock()
	s.acct.Downlink(k, wireBytes, copies)
}

// NumConnected returns the number of connected objects.
func (s *Server) NumConnected() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.conns)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept errors: keep serving.
				continue
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one object connection: handshake, register, then
// dispatch uplink frames straight into the sharded backend — each
// connection goroutine drives the partitioned engine directly, so
// objects on different shards are processed in parallel. A vanished
// connection is treated as a departure so the population stays
// consistent.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	br := bufio.NewReader(conn)

	hello, err := ReadFrame(br)
	if err != nil {
		conn.Close()
		return
	}
	s.om.framesIn.Add(1)
	s.om.bytesIn.Add(int64(4 + len(hello)))
	oid, err := decodeHello(hello)
	if err != nil {
		var ve *HelloVersionError
		if errors.As(err, &ve) {
			s.om.versionRejects.Add(1)
		} else {
			s.om.decodeErrors.Add(1)
		}
		conn.Close()
		return
	}
	s.om.connects.Add(1)

	sc := &serverConn{oid: oid, conn: conn, out: newOutbox(conn, s.om)}
	s.mu.Lock()
	if old, ok := s.conns[oid]; ok {
		old.conn.Close() // a reconnect replaces the stale session
	}
	if t, ok := s.graceTimers[oid]; ok {
		t.Stop() // the object came back: cancel its deferred departure
		delete(s.graceTimers, oid)
	}
	s.conns[oid] = sc
	queued := s.pendingUni[oid]
	delete(s.pendingUni, oid)
	s.mu.Unlock()
	s.wg.Add(1)
	go sc.out.run(&s.wg)
	// Deliver unicasts that arrived before the object connected (typically
	// the FocalInfoRequest of an install racing the handshake).
	for _, frame := range queued {
		sc.out.send(frame)
	}

	sawBye := false
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			break
		}
		s.om.framesIn.Add(1)
		s.om.bytesIn.Add(int64(4 + len(payload)))
		m, tid, err := wire.DecodeTraced(payload)
		if err != nil {
			s.om.decodeErrors.Add(1)
			break // protocol violation: drop the connection
		}
		if p, isPing := m.(msg.Ping); isPing {
			// Transport-level probe: echo the token after every frame
			// received before it, and after every downlink already queued.
			// Never dispatched into the query engine.
			sc.out.send(messageFrame(msg.Pong{Token: p.Token}))
			continue
		}
		s.recordUplinkWire(m.Kind(), 4+len(payload))
		if s.hist != nil {
			// Tee position-bearing uplinks into the replay store so a
			// recorded log can reconstruct visible state, not just result
			// membership.
			switch v := m.(type) {
			case msg.PositionReport:
				s.hist.AppendPos(float64(nowHours()), int64(v.OID), v.Pos.X, v.Pos.Y)
			case msg.VelocityReport:
				s.hist.AppendPos(float64(nowHours()), int64(v.OID), v.Pos.X, v.Pos.Y)
			case msg.CellChangeReport:
				s.hist.AppendPos(float64(nowHours()), int64(v.OID), v.Pos.X, v.Pos.Y)
			case msg.FocalInfoResponse:
				s.hist.AppendPos(float64(nowHours()), int64(v.OID), v.Pos.X, v.Pos.Y)
			}
		}
		start := time.Now()
		s.backend.HandleUplinkTraced(m, trace.ID(tid))
		s.om.observeUplink(m.Kind(), start)
		if _, bye := m.(msg.DepartureReport); bye {
			sawBye = true
			break
		}
	}

	s.mu.Lock()
	if sawBye {
		// A departed object's queued unicasts are void; a later rejoin is a
		// fresh arrival and must not receive them.
		delete(s.pendingUni, oid)
	}
	replaced := false
	if s.conns[oid] == sc {
		delete(s.conns, oid)
	} else {
		// A newer session for the same object took over; this one must not
		// tear its state down on the way out.
		_, replaced = s.conns[oid]
	}
	s.mu.Unlock()
	sc.out.close()
	conn.Close()
	if sawBye || replaced {
		return
	}
	// The object vanished without a departure. Synthesize one — immediately
	// by default, or after DisconnectGrace so a reconnecting object keeps
	// its focal queries and result entries across a transient drop.
	select {
	case <-s.done:
		return
	default:
	}
	if grace := s.cfg.DisconnectGrace; grace > 0 {
		s.mu.Lock()
		if _, back := s.conns[oid]; !back {
			if t, ok := s.graceTimers[oid]; ok {
				t.Stop()
			}
			s.graceTimers[oid] = time.AfterFunc(grace, func() { s.graceDeparture(oid) })
		}
		s.mu.Unlock()
		return
	}
	s.backend.HandleUplink(msg.DepartureReport{OID: oid})
}

// graceDeparture fires when an abruptly disconnected object's grace period
// lapses without a reconnect: the object is finally declared departed.
func (s *Server) graceDeparture(oid model.ObjectID) {
	select {
	case <-s.done:
		return
	default:
	}
	s.mu.Lock()
	delete(s.graceTimers, oid)
	_, back := s.conns[oid]
	if !back {
		delete(s.pendingUni, oid)
	}
	s.mu.Unlock()
	if !back {
		s.backend.HandleUplink(msg.DepartureReport{OID: oid})
	}
}

// serverDownlink fans server messages out to connections. Broadcasts go to
// every connected object (clients self-filter by monitoring region, exactly
// as under ubiquitous base-station coverage); unicasts to one. It implements
// core.TracedDownlink so the backend can hand it the causing trace ID, which
// rides in the frame (wire.TracedVersion) down to the object.
type serverDownlink struct{ s *Server }

var _ core.TracedDownlink = serverDownlink{}

func (d serverDownlink) Broadcast(region grid.CellRange, m msg.Message) {
	d.BroadcastTraced(region, m, 0)
}

func (d serverDownlink) BroadcastTraced(region grid.CellRange, m msg.Message, tid trace.ID) {
	frame := wire.EncodeTraced(m, uint64(tid))
	d.s.recordDownlinkWire(m.Kind(), 4+len(frame), 1)
	d.s.mu.RLock()
	defer d.s.mu.RUnlock()
	d.s.om.broadcastFanout.Observe(float64(len(d.s.conns)))
	for _, c := range d.s.conns {
		c.out.send(frame)
	}
}

func (d serverDownlink) Unicast(oid model.ObjectID, m msg.Message) {
	d.UnicastTraced(oid, m, 0)
}

func (d serverDownlink) UnicastTraced(oid model.ObjectID, m msg.Message, tid trace.ID) {
	frame := wire.EncodeTraced(m, uint64(tid))
	d.s.recordDownlinkWire(m.Kind(), 4+len(frame), 1)
	d.s.mu.Lock()
	c := d.s.conns[oid]
	if c == nil {
		q := d.s.pendingUni[oid]
		if len(q) < maxPendingUnicasts {
			d.s.pendingUni[oid] = append(q, frame)
		}
		d.s.mu.Unlock()
		return
	}
	d.s.mu.Unlock()
	c.out.send(frame)
}

// outbox serializes writes to one connection without ever blocking the
// core loop: frames queue in memory and a dedicated writer goroutine drains
// them.
type outbox struct {
	conn   net.Conn
	om     *remoteObs
	mu     sync.Mutex
	queue  [][]byte
	signal chan struct{}
	closed bool
}

func newOutbox(conn net.Conn, om *remoteObs) *outbox {
	return &outbox{conn: conn, om: om, signal: make(chan struct{}, 1)}
}

func (o *outbox) send(frame []byte) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.queue = append(o.queue, frame)
	o.mu.Unlock()
	select {
	case o.signal <- struct{}{}:
	default:
	}
}

func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	select {
	case o.signal <- struct{}{}:
	default:
	}
}

func (o *outbox) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for range o.signal {
		for {
			o.mu.Lock()
			if o.closed {
				o.mu.Unlock()
				return
			}
			if len(o.queue) == 0 {
				o.mu.Unlock()
				break
			}
			frame := o.queue[0]
			o.queue = o.queue[1:]
			o.mu.Unlock()
			if err := WriteFrame(o.conn, frame); err != nil {
				o.conn.Close()
				o.mu.Lock()
				o.closed = true
				o.mu.Unlock()
				return
			}
			o.om.framesOut.Add(1)
			o.om.bytesOut.Add(int64(4 + len(frame)))
		}
	}
}
