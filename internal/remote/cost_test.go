package remote

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/wire"
)

func testServerWithCosts(t *testing.T) (*Server, *cost.Accountant) {
	t.Helper()
	a := cost.New()
	s, err := ListenAndServe(ServerConfig{
		Addr:  "127.0.0.1:0",
		UoD:   geo.NewRect(0, 0, 100, 100),
		Alpha: 5,
		Costs: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, a
}

// TestRemoteCostWireBoundary pins the codec-boundary accounting from one
// controlled connection: a single VelocityReport must be charged with its
// exact on-the-wire size — encoded frame plus the 4-byte length prefix —
// in both the traffic meter and the accountant's global ledger. This is
// the byte source the frames_in metric uses, so the two can never diverge
// again.
func TestRemoteCostWireBoundary(t *testing.T) {
	s, a := testServerWithCosts(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, EncodeHello(7)); err != nil {
		t.Fatal(err)
	}
	report := msg.VelocityReport{OID: 7, Pos: geo.Pt(10, 10)}
	payload := wire.Encode(report)
	if err := WriteFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	// A ping round-trip proves the report was received and dispatched.
	if err := WriteFrame(conn, messageFrame(msg.Ping{Token: 1})); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		reply, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("no pong before deadline: %v", err)
		}
		if m, err := wire.Decode(reply); err == nil {
			if _, ok := m.(msg.Pong); ok {
				break
			}
		}
	}

	wantBytes := int64(4 + len(payload))
	up, _, upB, _, _ := s.Stats()
	if up != 1 || upB != wantBytes {
		t.Errorf("meter uplink = %d msgs / %d B, want 1 / %d", up, upB, wantBytes)
	}
	g := a.Global()
	if g.UplinkMsgs() != 1 || g.UplinkBytes() != wantBytes {
		t.Errorf("ledger uplink = %d msgs / %d B, want 1 / %d",
			g.UplinkMsgs(), g.UplinkBytes(), wantBytes)
	}
	if g.UpBytes[report.Kind()] != wantBytes {
		t.Errorf("kind ledger = %d B, want %d", g.UpBytes[report.Kind()], wantBytes)
	}
	// Hello and ping are transport frames, not protocol messages: they must
	// appear in the frame metrics but never in the protocol meter.
	if fin := s.om.framesIn.Value(); fin != 3 {
		t.Errorf("frames_in = %d, want 3 (hello, report, ping)", fin)
	}
}

// TestRemoteCostEndToEnd drives real objects over TCP with accounting on
// and checks the system-level invariants: meter and global ledger agree in
// both directions, dispatched uplinks are fully attributed across shard
// ledgers plus the router, per-entity tallies exist, and the backend
// charged server-side work.
func TestRemoteCostEndToEnd(t *testing.T) {
	s, a := testServerWithCosts(t)
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatal("result never converged")
	}

	up, down, upB, downB, _ := s.Stats()
	g := a.Global()
	if g.UplinkMsgs() != up || g.UplinkBytes() != upB {
		t.Errorf("ledger uplink %d/%dB, meter %d/%dB", g.UplinkMsgs(), g.UplinkBytes(), up, upB)
	}
	if g.DownlinkMsgs() != down || g.DownlinkBytes() != downB {
		t.Errorf("ledger downlink %d/%dB, meter %d/%dB", g.DownlinkMsgs(), g.DownlinkBytes(), down, downB)
	}
	dispatched := a.Router().UplinkMsgs()
	for _, sh := range a.Shards() {
		dispatched += sh.UplinkMsgs()
	}
	if dispatched != g.UplinkMsgs() {
		t.Errorf("shard+router uplinks %d, transport charged %d", dispatched, g.UplinkMsgs())
	}
	snap := a.Snapshot()
	if len(snap.Objects) == 0 {
		t.Error("no per-object attribution")
	}
	if g.ComputeUnits(cost.UnitTableOp) == 0 {
		t.Error("no server table operations charged")
	}
	if s.Costs() != a {
		t.Error("Costs() accessor broken")
	}
}

// TestAdminCosts exercises the COSTS admin command: the full report, an
// entity scope, and the error paths (bad scope; accounting disabled).
func TestAdminCosts(t *testing.T) {
	s, _ := testServerWithCosts(t)
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	if !waitFor(t, 2*time.Second, func() bool {
		_, ok := s.Costs().ObjectSnap(1)
		return ok
	}) {
		t.Fatal("object 1 never charged")
	}
	adm, err := ServeAdmin("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adm.Close)
	as := dialAdmin(t, adm)

	if out := as.cmdMulti(t, "COSTS"); !strings.Contains(out, "global") {
		t.Errorf("COSTS output missing global ledger:\n%s", out)
	}
	if out := as.cmdMulti(t, "COSTS oid 1"); !strings.Contains(out, "oid 1 up") {
		t.Errorf("COSTS oid output: %q", out)
	}
	if out := as.cmd(t, "COSTS qid 12345"); !strings.HasPrefix(out, "err") {
		t.Errorf("unknown qid: %q", out)
	}
	if out := as.cmd(t, "COSTS bogus 1"); !strings.HasPrefix(out, "err") {
		t.Errorf("bad scope: %q", out)
	}

	// Accounting off: the command must degrade to an error, not panic.
	plain := testServer(t)
	adm2, err := ServeAdmin("127.0.0.1:0", plain)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adm2.Close)
	if out := dialAdmin(t, adm2).cmd(t, "COSTS"); !strings.HasPrefix(out, "err") {
		t.Errorf("disabled accounting: %q", out)
	}
}

// cmdMulti sends one command and reads lines until the "." terminator.
func (s *adminSession) cmdMulti(t *testing.T, line string) string {
	t.Helper()
	if _, err := s.conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for s.sc.Scan() {
		if s.sc.Text() == "." {
			return b.String()
		}
		b.WriteString(s.sc.Text())
		b.WriteByte('\n')
	}
	t.Fatalf("connection closed before terminator: %v", s.sc.Err())
	return ""
}
