package remote

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

// fuzzStream builds a well-formed frame stream for the seed corpus.
func fuzzStream(frames ...[]byte) []byte {
	var buf bytes.Buffer
	for _, p := range frames {
		_ = WriteFrame(&buf, p)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame treats arbitrary bytes as an incoming connection: frames
// are read until the stream errors, and each payload goes through the full
// server-side classification (control-frame check, hello decode for the
// first frame, wire decode). Nothing here may panic or allocate beyond the
// frame-size cap, no matter the input — this is the path a hostile or
// corrupted peer reaches before any protocol state exists.
func FuzzDecodeFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	hello := EncodeHello(42)
	report := wire.Encode(msg.VelocityReport{OID: 9, Pos: geo.Pt(1, 2), Vel: geo.Vec(3, 4), Tm: 5})
	ping := wire.Encode(msg.Ping{Token: rng.Uint64()})
	f.Add(fuzzStream(hello, report, ping))
	f.Add(fuzzStream(hello))
	f.Add(fuzzStream(nil))
	// Version-mismatched handshakes: the legacy 5-byte (version 1) form and
	// a version byte from the future. Both must be refused as
	// HelloVersionError, never misparsed as an object ID.
	legacy := []byte{0x48, 42, 0, 0, 0}
	future := []byte{0x48, 0x7F, 42, 0, 0, 0}
	f.Add(fuzzStream(legacy, report))
	f.Add(fuzzStream(future, report))
	// Cluster-tier frames arriving on an object connection: decodable, but
	// the server must classify them without panicking.
	f.Add(fuzzStream(hello, wire.Encode(msg.NodeHello{Node: 1, Proto: 2})))
	f.Add(fuzzStream(hello, wire.Encode(msg.Handoff{Seq: 1, OID: 9, Slice: []byte{1, 2}})))
	// Telemetry-plane frames: a pushed batch, its zero-length-payload
	// non-canonical twin, and a heartbeat status answer.
	f.Add(fuzzStream(hello, wire.Encode(msg.NodeTelemetry{Node: 1, Seq: 3, Payload: []byte{0x01, 0x00}})))
	f.Add(fuzzStream(hello, wire.Encode(msg.NodeTelemetry{Node: 1, Seq: 3})))
	f.Add(fuzzStream(hello, wire.Encode(msg.NodeStatus{Node: 1, Seq: 4, Epoch: 2, Lo: 0, Hi: 9, Digest: 0xABCD, Ops: 7})))
	// Crash-recovery frames: a checkpoint pull, a populated delta, and its
	// non-canonical twin with an unsorted removal list (must be refused by
	// the wire decode without poisoning the frame loop).
	f.Add(fuzzStream(hello, wire.Encode(msg.CheckpointRequest{Node: 1, Since: 5})))
	f.Add(fuzzStream(hello, wire.Encode(msg.NodeCheckpoint{
		Node: 1, Seq: 6, Removed: []uint32{2, 8}, Slices: [][]byte{{0x01, 0x00, 0x09}},
	})))
	f.Add(fuzzStream(hello, wire.Encode(msg.NodeCheckpoint{Node: 1, Seq: 6, Removed: []uint32{8, 2}})))
	// Length prefix pointing past the data, oversized prefix, raw garbage.
	f.Add([]byte{0x10, 0x00, 0x00, 0x00, 0x48})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x48, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		first := true
		for {
			payload, err := ReadFrame(br)
			if err != nil {
				return
			}
			ControlFrame(payload)
			if first {
				_, _ = decodeHello(payload)
				first = false
			}
			if m, err := wire.Decode(payload); err == nil && m == nil {
				t.Fatal("wire.Decode returned nil message without error")
			}
		}
	})
}
