package remote

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"

	"mobieyes/internal/core"
	"mobieyes/internal/history"
	"mobieyes/internal/model"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// AdminServer exposes a line-based text interface for managing a running
// Server — the operational surface of a deployment, usable with netcat:
//
//	install <focalOID> <radius> <permille>   → "qid <id>"
//	remove <qid>                             → "ok"
//	result <qid>                             → "result <id> <oid…>"
//	conns                                    → "conns <n>"
//	nodes                                    → per-worker-node cell spans and
//	                                           table sizes of a clustered
//	                                           backend, "." terminated
//	                                           ("err not clustered" otherwise)
//	stats                                    → "stats <up> <down> <upB> <downB>"
//	STATS                                    → full metric registry in Prometheus
//	                                           text format, terminated by a "." line
//	TRACE [n | oid <id> | qid <id> | trace <id>]
//	                                         → flight-recorder event dump (most
//	                                           recent n, default 40; or the causal
//	                                           timeline of an object / query; or
//	                                           one trace chain), "." terminated
//	LAT                                      → per-stage pipeline latency table
//	                                           (dispatch/table/fanout/deliver +
//	                                           end-to-end quantiles derived from
//	                                           the flight recorder), "." terminated
//	                                           ("err tracing disabled" without
//	                                           -trace-events)
//	COSTS [qid <id> | oid <id>]              → cost-ledger report (global traffic
//	                                           by kind, compute units, shard
//	                                           attribution, quality) or one
//	                                           entity's tally, "." terminated
//	HEALTH                                   → cluster telemetry watchdog report:
//	                                           health line, per-node state, and
//	                                           active alerts, "." terminated
//	                                           ("err telemetry disabled" without
//	                                           a telemetry plane)
//	SUB <qid> [n]                            → live result subscription with
//	                                           snapshot-then-delta semantics:
//	                                           one "snapshot" line per query
//	                                           (qid 0 = every query), then up
//	                                           to n (default 10) "event" delta
//	                                           lines as they happen, "."
//	                                           terminated ("err streaming
//	                                           disabled" without a stream tap;
//	                                           "err evicted" if this session
//	                                           falls behind the event rate)
//	HIST [qid <id> | oid <id>]               → history-store summary, or a
//	                                           query's replay timeline /
//	                                           an object's position samples,
//	                                           "." terminated ("err history
//	                                           disabled" without a store)
//	snapshot <path>                          → "ok" (writes a state snapshot)
//	quit                                     → closes the session
type AdminServer struct {
	ln   net.Listener
	srv  *Server
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	mu       sync.Mutex
	sessions map[net.Conn]struct{}
}

// ServeAdmin starts the admin listener on addr for srv.
func ServeAdmin(addr string, srv *Server) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &AdminServer{ln: ln, srv: srv, done: make(chan struct{}),
		sessions: make(map[net.Conn]struct{})}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the bound admin address.
func (a *AdminServer) Addr() net.Addr { return a.ln.Addr() }

// Close stops the admin listener and terminates active sessions.
func (a *AdminServer) Close() {
	a.once.Do(func() {
		close(a.done)
		a.ln.Close()
		a.mu.Lock()
		for conn := range a.sessions {
			conn.Close()
		}
		a.mu.Unlock()
	})
	a.wg.Wait()
}

func (a *AdminServer) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			select {
			case <-a.done:
				return
			default:
				continue
			}
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.serveSession(conn)
		}()
	}
}

func (a *AdminServer) serveSession(conn net.Conn) {
	a.mu.Lock()
	a.sessions[conn] = struct{}{}
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.sessions, conn)
		a.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		select {
		case <-a.done:
			return
		default:
		}
		if !a.handleCommand(conn, strings.Fields(sc.Text())) {
			return
		}
	}
}

// handleCommand executes one admin command; false ends the session.
func (a *AdminServer) handleCommand(conn net.Conn, fields []string) bool {
	if len(fields) == 0 {
		return true
	}
	switch fields[0] {
	case "install":
		if len(fields) != 4 {
			fmt.Fprintln(conn, "err usage: install <focalOID> <radius> <permille>")
			return true
		}
		focal, err1 := strconv.Atoi(fields[1])
		radius, err2 := strconv.ParseFloat(fields[2], 64)
		permille, err3 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil || err3 != nil || radius <= 0 || permille < 0 || permille > 1000 {
			fmt.Fprintln(conn, "err bad arguments")
			return true
		}
		qid := a.srv.InstallQuery(model.ObjectID(focal),
			model.CircleRegion{R: radius},
			model.Filter{Seed: uint64(focal)*7919 + 13, Permille: uint32(permille)},
			1000)
		fmt.Fprintf(conn, "qid %d\n", qid)
	case "remove":
		qid, ok := parseQID(conn, fields)
		if !ok {
			return true
		}
		a.srv.RemoveQuery(qid)
		fmt.Fprintln(conn, "ok")
	case "result":
		qid, ok := parseQID(conn, fields)
		if !ok {
			return true
		}
		res := a.srv.Result(qid)
		fmt.Fprintf(conn, "result %d", qid)
		for _, oid := range res {
			fmt.Fprintf(conn, " %d", oid)
		}
		fmt.Fprintln(conn)
	case "conns":
		fmt.Fprintf(conn, "conns %d\n", a.srv.NumConnected())
	case "nodes":
		cs, ok := a.srv.backend.(*core.ClusterServer)
		if !ok {
			fmt.Fprintln(conn, "err not clustered")
			return true
		}
		fmt.Fprintf(conn, "epoch %d\n", cs.Epoch())
		for _, sp := range cs.Spans() {
			state := "live"
			if !sp.Live {
				state = "dead"
			}
			fmt.Fprintf(conn, "node %d %s cells [%d,%d) focals %d queries %d",
				sp.Node, state, sp.Lo, sp.Hi, sp.Focals, sp.Queries)
			if sp.Fault != "" {
				// Unreachable node: its counts above are zeros because the
				// transport is dead, not because its tables are empty.
				fmt.Fprintf(conn, " fault %q", sp.Fault)
			}
			fmt.Fprintln(conn)
		}
		fmt.Fprintln(conn, ".")
	case "stats":
		up, down, upB, downB, _ := a.srv.Stats()
		fmt.Fprintf(conn, "stats %d %d %d %d\n", up, down, upB, downB)
	case "STATS":
		a.srv.Metrics().WritePrometheus(conn)
		fmt.Fprintln(conn, ".")
	case "TRACE":
		a.handleTrace(conn, fields[1:])
	case "LAT":
		lv := a.srv.Latency()
		if lv == nil {
			fmt.Fprintln(conn, "err tracing disabled")
			return true
		}
		lv.WriteText(conn)
		fmt.Fprintln(conn, ".")
	case "COSTS":
		a.handleCosts(conn, fields[1:])
	case "SUB":
		a.handleSub(conn, fields[1:])
	case "HIST":
		a.handleHist(conn, fields[1:])
	case "HEALTH":
		p := a.srv.Telemetry()
		if p == nil {
			fmt.Fprintln(conn, "err telemetry disabled")
			return true
		}
		p.WriteHealth(conn)
		fmt.Fprintln(conn, ".")
	case "snapshot":
		if len(fields) != 2 {
			fmt.Fprintln(conn, "err usage: snapshot <path>")
			return true
		}
		if err := a.writeSnapshot(fields[1]); err != nil {
			fmt.Fprintf(conn, "err %v\n", err)
			return true
		}
		fmt.Fprintln(conn, "ok")
	case "quit":
		return false
	default:
		fmt.Fprintln(conn, "err unknown command")
	}
	return true
}

func parseQID(conn net.Conn, fields []string) (model.QueryID, bool) {
	if len(fields) != 2 {
		fmt.Fprintf(conn, "err usage: %s <qid>\n", fields[0])
		return 0, false
	}
	qid, err := strconv.Atoi(fields[1])
	if err != nil {
		fmt.Fprintln(conn, "err bad qid")
		return 0, false
	}
	return model.QueryID(qid), true
}

// handleTrace serves the TRACE command: a human-readable dump of the flight
// recorder, terminated by a "." line so scripted clients know where it ends.
func (a *AdminServer) handleTrace(conn net.Conn, args []string) {
	rec := a.srv.Tracer()
	if rec == nil {
		fmt.Fprintln(conn, "err tracing disabled")
		return
	}
	var evs []trace.Event
	switch {
	case len(args) == 0:
		evs = rec.Events(trace.Filter{Limit: 40})
	case len(args) == 1:
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			fmt.Fprintln(conn, "err usage: TRACE [n | oid <id> | qid <id> | trace <id>]")
			return
		}
		evs = rec.Events(trace.Filter{Limit: n})
	case len(args) == 2:
		n, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Fprintln(conn, "err bad id")
			return
		}
		switch args[0] {
		case "oid":
			evs = rec.Causal(int64(n), 0)
		case "qid":
			evs = rec.Causal(0, int64(n))
		case "trace":
			evs = rec.Events(trace.Filter{Trace: trace.ID(n)})
		default:
			fmt.Fprintln(conn, "err usage: TRACE [n | oid <id> | qid <id> | trace <id>]")
			return
		}
	default:
		fmt.Fprintln(conn, "err usage: TRACE [n | oid <id> | qid <id> | trace <id>]")
		return
	}
	trace.Format(conn, evs)
	fmt.Fprintln(conn, ".")
}

// handleCosts serves the COSTS command: the full cost-ledger report, or one
// query's/object's tally, "." terminated like STATS and TRACE.
func (a *AdminServer) handleCosts(conn net.Conn, args []string) {
	acct := a.srv.Costs()
	if acct == nil {
		fmt.Fprintln(conn, "err accounting disabled")
		return
	}
	switch {
	case len(args) == 0:
		acct.Snapshot().WriteText(conn)
	case len(args) == 2:
		id, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			fmt.Fprintln(conn, "err bad id")
			return
		}
		var (
			t  cost.TallySnap
			ok bool
		)
		switch args[0] {
		case "qid":
			t, ok = acct.QuerySnap(id)
		case "oid":
			t, ok = acct.ObjectSnap(id)
		default:
			fmt.Fprintln(conn, "err usage: COSTS [qid <id> | oid <id>]")
			return
		}
		if !ok {
			fmt.Fprintln(conn, "err no traffic recorded")
			return
		}
		fmt.Fprintf(conn, "%s %d up %d msgs / %d B down %d msgs / %d B\n",
			args[0], t.ID, t.UpMsgs, t.UpBytes, t.DownMsgs, t.DownBytes)
	default:
		fmt.Fprintln(conn, "err usage: COSTS [qid <id> | oid <id>]")
		return
	}
	fmt.Fprintln(conn, ".")
}

// handleSub serves the SUB command: a snapshot of the subscribed query (or
// all queries for qid 0), then up to n live delta events, "." terminated —
// the admin-plane twin of the SSE gateway, with the same bounded-buffer
// eviction protecting the engine from a stalled session.
func (a *AdminServer) handleSub(conn net.Conn, args []string) {
	tap := a.srv.Stream()
	if tap == nil {
		fmt.Fprintln(conn, "err streaming disabled")
		return
	}
	if len(args) < 1 || len(args) > 2 {
		fmt.Fprintln(conn, "err usage: SUB <qid> [n]")
		return
	}
	qid, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil || qid < 0 {
		fmt.Fprintln(conn, "err bad qid")
		return
	}
	n := 10
	if len(args) == 2 {
		n, err = strconv.Atoi(args[1])
		if err != nil || n < 0 {
			fmt.Fprintln(conn, "err bad count")
			return
		}
	}

	sub, snap := tap.Subscribe(qid, 1024)
	defer sub.Close()
	for _, e := range snap {
		fmt.Fprintf(conn, "snapshot qid %d seq %d members", e.QID, e.Seq)
		for _, oid := range e.Members {
			fmt.Fprintf(conn, " %d", oid)
		}
		fmt.Fprintln(conn)
	}
	for seen := 0; seen < n; {
		select {
		case <-a.done:
			return
		case <-sub.Ready():
		}
		evs, evicted := sub.Drain()
		for _, ev := range evs {
			if seen >= n {
				break
			}
			verb := "leave"
			if ev.Enter {
				verb = "enter"
			}
			if _, err := fmt.Fprintf(conn, "event qid %d seq %d %s %d\n",
				ev.QID, ev.Seq, verb, ev.OID); err != nil {
				return // session gone
			}
			seen++
		}
		if evicted {
			fmt.Fprintln(conn, "err evicted")
			return
		}
	}
	fmt.Fprintln(conn, ".")
}

// handleHist serves the HIST command: the history store's summary, one
// query's replay timeline, or one object's position samples, "."
// terminated like TRACE and COSTS.
func (a *AdminServer) handleHist(conn net.Conn, args []string) {
	st := a.srv.History()
	if st == nil {
		fmt.Fprintln(conn, "err history disabled")
		return
	}
	switch {
	case len(args) == 0:
		sum := st.Summarize()
		fmt.Fprintf(conn, "history %d bytes %d records appended %d evicted %d\n",
			sum.Bytes, sum.Records, sum.Appended, sum.EvictedRecs)
	case len(args) == 2:
		id, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			fmt.Fprintln(conn, "err bad id")
			return
		}
		switch args[0] {
		case "qid":
			history.WriteText(conn, st.Replay(id))
		case "oid":
			var recs []history.Record
			for _, r := range st.All() {
				if r.Kind == history.KindPos && r.OID == id {
					recs = append(recs, r)
				}
			}
			history.WriteText(conn, recs)
		default:
			fmt.Fprintln(conn, "err usage: HIST [qid <id> | oid <id>]")
			return
		}
	default:
		fmt.Fprintln(conn, "err usage: HIST [qid <id> | oid <id>]")
		return
	}
	fmt.Fprintln(conn, ".")
}

func (a *AdminServer) writeSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.srv.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
