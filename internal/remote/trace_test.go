package remote

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/obs/trace"
)

// dump reads a "."-terminated multi-line reply after sending line.
func (s *adminSession) dump(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(s.conn, line); err != nil {
		t.Fatal(err)
	}
	var out []string
	for s.sc.Scan() {
		txt := s.sc.Text()
		if txt == "." {
			return strings.Join(out, "\n")
		}
		out = append(out, txt)
	}
	t.Fatalf("reply to %q never terminated", line)
	return ""
}

// TestRemoteTracing runs a traced TCP deployment end to end: uplink frames
// mint trace IDs, downlink frames carry them to the device, the device's
// responses continue the chain, and the admin TRACE command dumps it all.
func TestRemoteTracing(t *testing.T) {
	rec := trace.NewRecorder(4096)
	s, err := ListenAndServe(ServerConfig{
		Addr:  "127.0.0.1:0",
		UoD:   geo.NewRect(0, 0, 100, 100),
		Alpha: 5,
		Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	admin, err := ServeAdmin("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 2 }) {
		t.Fatal("objects never connected")
	}
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatalf("result never converged: %v", s.Result(qid))
	}

	// The install completion is one causal chain across the TCP round trip:
	// the FocalInfoResponse uplink's trace covers the SQT insert and the
	// QueryInstall broadcast — provable only if the device carried the
	// downlink's trace ID back up.
	deadline := time.Now().Add(2 * time.Second)
	var causal []trace.Event
	for {
		causal = rec.Causal(0, int64(qid))
		if chainHasInstall(causal) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !chainHasInstall(causal) {
		t.Fatalf("causal timeline of query %d lacks the install chain:\n%v", qid, causal)
	}

	a := dialAdmin(t, admin)
	if got := a.dump(t, "TRACE"); !strings.Contains(got, "ingress") {
		t.Errorf("TRACE dump lacks ingress events:\n%s", got)
	}
	if got := a.dump(t, fmt.Sprintf("TRACE qid %d", qid)); !strings.Contains(got, "broadcast") {
		t.Errorf("TRACE qid dump lacks the install broadcast:\n%s", got)
	}
	if got := a.dump(t, "TRACE oid 2"); !strings.Contains(got, "oid=2") {
		t.Errorf("TRACE oid dump lacks object 2 events:\n%s", got)
	}
	// The session stays usable.
	if got := a.cmd(t, "conns"); got != "conns 2" {
		t.Errorf("conns after TRACE = %q", got)
	}
}

func chainHasInstall(evs []trace.Event) bool {
	byTrace := make(map[trace.ID][3]bool) // ingress, table, broadcast
	for _, e := range evs {
		v := byTrace[e.Trace]
		switch e.Kind {
		case trace.KindIngress:
			v[0] = true
		case trace.KindTable:
			if e.Note == "SQT insert" {
				v[1] = true
			}
		case trace.KindBroadcast:
			v[2] = true
		}
		byTrace[e.Trace] = v
	}
	for _, v := range byTrace {
		if v[0] && v[1] && v[2] {
			return true
		}
	}
	return false
}

// TestAdminTraceDisabled: without a recorder the TRACE command degrades to a
// clear error instead of an empty dump.
func TestAdminTraceDisabled(t *testing.T) {
	s := testServer(t)
	admin, err := ServeAdmin("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	a := dialAdmin(t, admin)
	if got := a.cmd(t, "TRACE"); got != "err tracing disabled" {
		t.Errorf("TRACE without recorder = %q", got)
	}
}

// TestAdminLatency (PR 9): the admin LAT command and the server's
// LatencyView expose the per-stage pipeline decomposition of a live traced
// deployment, and degrade to a clear error when tracing is off.
func TestAdminLatency(t *testing.T) {
	rec := trace.NewRecorder(4096)
	s, err := ListenAndServe(ServerConfig{
		Addr:  "127.0.0.1:0",
		UoD:   geo.NewRect(0, 0, 100, 100),
		Alpha: 5,
		Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if s.Latency() == nil {
		t.Fatal("traced server has no latency view")
	}
	admin, err := ServeAdmin("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 2 }) {
		t.Fatal("objects never connected")
	}
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatalf("result never converged: %v", s.Result(qid))
	}

	a := dialAdmin(t, admin)
	deadline := time.Now().Add(2 * time.Second)
	var got string
	for {
		got = a.dump(t, "LAT")
		if strings.Contains(got, "table") && !strings.Contains(got, "traces 0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("LAT never reported folded traces:\n%s", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{"traces", "dispatch", "table", "fanout", "e2e"} {
		if !strings.Contains(got, want) {
			t.Errorf("LAT output missing %q:\n%s", want, got)
		}
	}
	// The same view backs /debug/latency.
	if snap := s.Latency().Snapshot(); snap.Traces == 0 {
		t.Error("latency view snapshot has no traces")
	}
}

// TestAdminLatencyDisabled: LAT without tracing errs like TRACE.
func TestAdminLatencyDisabled(t *testing.T) {
	s := testServer(t)
	if s.Latency() != nil {
		t.Fatal("untraced server grew a latency view")
	}
	admin, err := ServeAdmin("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	a := dialAdmin(t, admin)
	if got := a.cmd(t, "LAT"); got != "err tracing disabled" {
		t.Errorf("LAT without recorder = %q", got)
	}
}
