package remote

import (
	"bufio"
	"net"
	"sync"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

// ObjectConfig configures one moving-object node.
type ObjectConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// UoD, Alpha and Options must match the server's configuration (in a
	// real deployment they would be provisioned together).
	UoD     geo.Rect
	Alpha   float64
	Options core.Options

	OID    model.ObjectID
	Pos    geo.Point
	Vel    geo.Vector
	MaxVel float64
	Props  model.Props

	// TickInterval is the device's local processing period (cell-change
	// detection, dead reckoning, query evaluation). Default 100 ms.
	TickInterval time.Duration

	// Reconnect makes the object redial after losing its connection and
	// resync its state with the server (core.Client.Resync) instead of
	// going silent. RedialInterval is the wait between failed attempts
	// (default 50 ms). Pair with the server's DisconnectGrace so the
	// transient drop does not tear down the object's focal queries.
	Reconnect      bool
	RedialInterval time.Duration
}

// Object is a moving object participating in a remote MobiEyes deployment:
// it integrates its own position, runs the core.Client protocol logic, and
// exchanges wire frames with the server over TCP.
type Object struct {
	cfg    ObjectConfig
	conn   net.Conn
	client *core.Client

	ctrl chan func(*objState)
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	mail *objMailbox

	// curTID is the trace ID of the downlink being processed, stamped onto
	// any uplinks the client sends in response so the server can chain the
	// causality across the round trip. Owned by the device goroutine.
	curTID uint64
}

// objState is the goroutine-owned mutable state.
type objState struct {
	pos   geo.Point
	vel   geo.Vector
	lastT model.Time
}

// objMailbox queues decoded downlink messages without blocking the reader.
type objMailbox struct {
	mu     sync.Mutex
	queue  []interface{}
	signal chan struct{}
}

func (mb *objMailbox) put(v interface{}) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, v)
	mb.mu.Unlock()
	select {
	case mb.signal <- struct{}{}:
	default:
	}
}

func (mb *objMailbox) drain() []interface{} {
	mb.mu.Lock()
	q := mb.queue
	mb.queue = nil
	mb.mu.Unlock()
	return q
}

// Dial connects a moving object to the server and starts its device loop.
func Dial(cfg ObjectConfig) (*Object, error) {
	if cfg.TickInterval == 0 {
		cfg.TickInterval = 100 * time.Millisecond
	}
	if cfg.RedialInterval == 0 {
		cfg.RedialInterval = 50 * time.Millisecond
	}
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, EncodeHello(cfg.OID)); err != nil {
		conn.Close()
		return nil, err
	}
	o := &Object{
		cfg:  cfg,
		conn: conn,
		ctrl: make(chan func(*objState), 16),
		done: make(chan struct{}),
		mail: &objMailbox{signal: make(chan struct{}, 1)},
	}
	g := grid.New(cfg.UoD, cfg.Alpha)
	o.client = core.NewClient(g, cfg.Options, objUplink{o}, cfg.OID, cfg.Props, cfg.MaxVel, cfg.Pos)

	o.wg.Add(2)
	go o.readLoop(conn)
	go o.deviceLoop()
	return o, nil
}

// objUplink sends client messages as wire frames, carrying the trace ID of
// the downlink that provoked them (zero for tick-driven uplinks, which start
// fresh traces at the server).
type objUplink struct{ o *Object }

func (u objUplink) Send(m msg.Message) {
	// Write errors surface on the read side as a disconnect; the device
	// keeps functioning locally.
	_ = WriteFrame(u.o.conn, wire.EncodeTraced(m, u.o.curTID))
}

// connLost is the mailbox sentinel a dying read loop leaves behind so the
// device loop knows to redial.
type connLost struct{}

// inbound is one decoded downlink message plus its frame's trace ID.
type inbound struct {
	m   msg.Message
	tid uint64
}

// readLoop decodes downlink frames into the mailbox. On a read or decode
// error the loop exits; with Reconnect enabled it first posts a connLost
// sentinel so the device loop redials.
func (o *Object) readLoop(conn net.Conn) {
	defer o.wg.Done()
	br := bufio.NewReader(conn)
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			break // disconnected
		}
		m, tid, err := wire.DecodeTraced(payload)
		if err != nil {
			break
		}
		o.mail.put(inbound{m: m, tid: tid})
	}
	if o.cfg.Reconnect {
		select {
		case <-o.done:
		default:
			o.mail.put(connLost{})
		}
	}
}

// deviceLoop is the object's "firmware": integrate position, process
// downlink messages, and run the protocol ticks.
func (o *Object) deviceLoop() {
	defer o.wg.Done()
	st := &objState{pos: o.cfg.Pos, vel: o.cfg.Vel, lastT: nowHours()}

	advance := func() {
		now := nowHours()
		st.pos = st.pos.Add(st.vel, float64(now-st.lastT))
		st.lastT = now
	}

	// Announce arrival so standing queries reach us.
	o.client.Join(st.pos, st.vel, st.lastT)

	ticker := time.NewTicker(o.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-o.done:
			advance()
			o.client.Depart()
			// Closing the connection unblocks the read loop.
			o.conn.Close()
			return
		case <-o.mail.signal:
			for _, v := range o.mail.drain() {
				if _, lost := v.(connLost); lost {
					o.redial(st)
					continue
				}
				advance()
				in := v.(inbound)
				o.curTID = in.tid
				o.client.OnDownlink(in.m, st.pos, st.vel, st.lastT)
				o.curTID = 0
			}
		case fn := <-o.ctrl:
			fn(st)
		case <-ticker.C:
			advance()
			o.client.TickCellChange(st.pos, st.vel, st.lastT)
			o.client.TickDeadReckoning(st.pos, st.vel, st.lastT)
			o.client.TickEvaluate(st.pos, st.vel, st.lastT)
		}
	}
}

// redial re-establishes the connection after a drop and resyncs the
// client's state with the server. Runs on the device goroutine (the only
// writer of o.conn), so uplinks never race the swap; the device is simply
// offline until the redial succeeds or Close aborts it.
func (o *Object) redial(st *objState) {
	o.conn.Close()
	for {
		select {
		case <-o.done:
			return
		default:
		}
		conn, err := net.Dial("tcp", o.cfg.Addr)
		if err == nil {
			if err = WriteFrame(conn, EncodeHello(o.cfg.OID)); err == nil {
				o.conn = conn
				o.wg.Add(1)
				go o.readLoop(conn)
				now := nowHours()
				st.pos = st.pos.Add(st.vel, float64(now-st.lastT))
				st.lastT = now
				o.client.Resync(st.pos, st.vel, st.lastT)
				return
			}
			conn.Close()
		}
		select {
		case <-o.done:
			return
		case <-time.After(o.cfg.RedialInterval):
		}
	}
}

// withState runs fn on the device goroutine and waits.
func (o *Object) withState(fn func(*objState)) bool {
	doneCh := make(chan struct{})
	select {
	case o.ctrl <- func(st *objState) {
		fn(st)
		close(doneCh)
	}:
	case <-o.done:
		return false
	}
	select {
	case <-doneCh:
		return true
	case <-o.done:
		return false
	}
}

// SetVelocity changes the object's velocity vector.
func (o *Object) SetVelocity(vel geo.Vector) {
	o.withState(func(st *objState) {
		now := nowHours()
		st.pos = st.pos.Add(st.vel, float64(now-st.lastT))
		st.lastT = now
		st.vel = vel
	})
}

// Position returns the object's current position.
func (o *Object) Position() geo.Point {
	var p geo.Point
	o.withState(func(st *objState) {
		p = st.pos.Add(st.vel, float64(nowHours()-st.lastT))
	})
	return p
}

// Close departs cleanly: a departure report is sent, then the connection
// closes.
func (o *Object) Close() {
	o.once.Do(func() {
		close(o.done)
		o.wg.Wait()
	})
}
