// Package remote runs MobiEyes over real TCP connections: the server is a
// network service and every moving object is a client endpoint (typically a
// separate process) speaking the binary protocol of internal/wire. It turns
// the simulated system into a deployable one — the same core.Server and
// core.Client state machines, the same messages, now crossing sockets.
//
// Time is absolute: hours since the Unix epoch, which realizes the paper's
// "moving objects have synchronized clocks" assumption (§2.1) for processes
// on NTP-synchronized hosts.
//
// Stream format: each frame is a 4-byte little-endian length followed by
// either a handshake (frame starting with the hello tag) or one
// wire-encoded protocol message.
package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

// maxFrame guards against hostile or corrupt length prefixes. The largest
// legitimate message is a QueryInstall during a dense cell change; 1 MiB
// allows ~10,000 query states.
const maxFrame = 1 << 20

// helloTag distinguishes the one handshake frame from protocol frames.
// wire messages always start with the wire magic's low byte, which differs.
const helloTag = 0x48 // 'H'

// WriteFrame writes a length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("remote: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EncodeHello builds the handshake frame payload announcing an object ID.
func EncodeHello(oid model.ObjectID) []byte {
	b := make([]byte, 5)
	b[0] = helloTag
	binary.LittleEndian.PutUint32(b[1:], uint32(oid))
	return b
}

// decodeHello parses a handshake payload.
func decodeHello(b []byte) (model.ObjectID, error) {
	if len(b) != 5 || b[0] != helloTag {
		return 0, fmt.Errorf("remote: malformed hello (%d bytes)", len(b))
	}
	return model.ObjectID(binary.LittleEndian.Uint32(b[1:])), nil
}

// messageFrame encodes a protocol message as a frame payload.
func messageFrame(m msg.Message) []byte { return wire.Encode(m) }

// ControlFrame reports whether a frame payload is transport-control traffic
// — the handshake hello or a Ping/Pong probe. Fault injectors must pass
// these through undisturbed: dropping a hello kills the session instead of
// degrading it, and the simulation harness's quiescence barrier relies on
// Ping/Pong surviving.
func ControlFrame(payload []byte) bool {
	if len(payload) == 5 && payload[0] == helloTag {
		return true
	}
	if len(payload) >= 4 && binary.LittleEndian.Uint16(payload) == wire.Magic {
		k := msg.Kind(payload[3])
		return k == msg.KindPing || k == msg.KindPong
	}
	return false
}

// nowHours returns the absolute protocol time: hours since the Unix epoch.
func nowHours() model.Time {
	return model.Time(float64(time.Now().UnixNano()) / float64(time.Hour))
}
