// Package remote runs MobiEyes over real TCP connections: the server is a
// network service and every moving object is a client endpoint (typically a
// separate process) speaking the binary protocol of internal/wire. It turns
// the simulated system into a deployable one — the same core.Server and
// core.Client state machines, the same messages, now crossing sockets.
//
// Time is absolute: hours since the Unix epoch, which realizes the paper's
// "moving objects have synchronized clocks" assumption (§2.1) for processes
// on NTP-synchronized hosts.
//
// Stream format: each frame is a 4-byte little-endian length followed by
// either a handshake (frame starting with the hello tag) or one
// wire-encoded protocol message.
package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

// maxFrame guards against hostile or corrupt length prefixes. The largest
// legitimate message is a QueryInstall during a dense cell change; 1 MiB
// allows ~10,000 query states.
const maxFrame = 1 << 20

// helloTag distinguishes the one handshake frame from protocol frames.
// wire messages always start with the wire magic's low byte, which differs.
const helloTag = 0x48 // 'H'

// HelloVersion is the handshake protocol version spoken by this build.
// Version 1 was the unversioned 5-byte [tag, oid] form; version 2 added the
// version byte so incompatible peers are refused explicitly instead of
// misparsed.
const HelloVersion = 2

// HelloVersionError reports a handshake from a peer speaking a different
// protocol version. It is a typed rejection: the session is refused, but the
// caller can tell "wrong version" apart from "corrupt frame".
type HelloVersionError struct{ Got uint8 }

func (e *HelloVersionError) Error() string {
	return fmt.Sprintf("remote: peer hello is protocol version %d, this build speaks %d", e.Got, HelloVersion)
}

// WriteFrame writes a length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("remote: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EncodeHello builds the handshake frame payload announcing an object ID:
// [tag, version, oid u32].
func EncodeHello(oid model.ObjectID) []byte {
	b := make([]byte, 6)
	b[0] = helloTag
	b[1] = HelloVersion
	binary.LittleEndian.PutUint32(b[2:], uint32(oid))
	return b
}

// decodeHello parses a handshake payload. A recognizable hello of the wrong
// protocol version — including the legacy unversioned 5-byte form, which is
// version 1 — returns a *HelloVersionError; anything else is malformed.
func decodeHello(b []byte) (model.ObjectID, error) {
	switch {
	case len(b) == 5 && b[0] == helloTag:
		return 0, &HelloVersionError{Got: 1}
	case len(b) == 6 && b[0] == helloTag:
		if b[1] != HelloVersion {
			return 0, &HelloVersionError{Got: b[1]}
		}
		return model.ObjectID(binary.LittleEndian.Uint32(b[2:])), nil
	}
	return 0, fmt.Errorf("remote: malformed hello (%d bytes)", len(b))
}

// messageFrame encodes a protocol message as a frame payload.
func messageFrame(m msg.Message) []byte { return wire.Encode(m) }

// ControlFrame reports whether a frame payload is transport-control traffic
// — the handshake hello or a Ping/Pong probe. Fault injectors must pass
// these through undisturbed: dropping a hello kills the session instead of
// degrading it, and the simulation harness's quiescence barrier relies on
// Ping/Pong surviving.
func ControlFrame(payload []byte) bool {
	// Both hello shapes pass: a wrong-version hello must reach the server so
	// it is refused with a typed error, not silently eaten by a relay.
	if (len(payload) == 5 || len(payload) == 6) && payload[0] == helloTag {
		return true
	}
	if len(payload) >= 4 && binary.LittleEndian.Uint16(payload) == wire.Magic {
		k := msg.Kind(payload[3])
		return k == msg.KindPing || k == msg.KindPong
	}
	return false
}

// nowHours returns the absolute protocol time: hours since the Unix epoch.
func nowHours() model.Time {
	return model.Time(float64(time.Now().UnixNano()) / float64(time.Hour))
}
