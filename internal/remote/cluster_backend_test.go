package remote

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// TestAdminAgainstClusteredBackend runs the full admin surface over a
// clustered deployment: ClusterNodes selects the router-plus-workers
// backend, and STATS, COSTS, TRACE and `nodes` must all aggregate per-node
// answers through the router — the observability satellite of the cluster
// tier.
func TestAdminAgainstClusteredBackend(t *testing.T) {
	rec := trace.NewRecorder(4096)
	acct := cost.New()
	s, err := ListenAndServe(ServerConfig{
		Addr:         "127.0.0.1:0",
		UoD:          geo.NewRect(0, 0, 100, 100),
		Alpha:        5,
		ClusterNodes: 2,
		Costs:        acct,
		Trace:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, ok := s.backend.(*core.ClusterServer); !ok {
		t.Fatalf("backend is %T, want *core.ClusterServer", s.backend)
	}
	admin, err := ServeAdmin("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 2 }) {
		t.Fatal("objects never connected")
	}

	a := dialAdmin(t, admin)
	reply := a.cmd(t, "install 1 3 1000")
	var qid int
	if _, err := fmt.Sscanf(reply, "qid %d", &qid); err != nil {
		t.Fatalf("install reply = %q", reply)
	}
	if !waitFor(t, 3*time.Second, func() bool {
		return a.cmd(t, fmt.Sprintf("result %d", qid)) == fmt.Sprintf("result %d 1 2", qid)
	}) {
		t.Fatalf("result never converged: %q", a.cmd(t, fmt.Sprintf("result %d", qid)))
	}

	// nodes: epoch plus one span line per worker node.
	nodes := a.dump(t, "nodes")
	if !strings.HasPrefix(nodes, "epoch ") {
		t.Errorf("nodes dump missing epoch header:\n%s", nodes)
	}
	for _, want := range []string{"node 0 live cells [", "node 1 live cells ["} {
		if !strings.Contains(nodes, want) {
			t.Errorf("nodes dump missing %q:\n%s", want, nodes)
		}
	}

	// COSTS: the ledger report must carry the per-node attribution section
	// alongside the global ledger.
	costs := a.dump(t, "COSTS")
	for _, want := range []string{"global", "node 0", "node 1"} {
		if !strings.Contains(costs, want) {
			t.Errorf("COSTS dump missing %q:\n%s", want, costs)
		}
	}

	// STATS: router-level engine metrics are labelled node="router".
	stats := a.dump(t, "STATS")
	if !strings.Contains(stats, `node="router"`) {
		t.Errorf("STATS dump missing router-labelled metrics:\n%s", truncate(stats, 800))
	}
	if !strings.Contains(stats, "mobieyes_server_migrations_total") {
		t.Errorf("STATS dump missing the migrations counter:\n%s", truncate(stats, 800))
	}

	// TRACE: uplinks dispatched through the router still mint causal chains.
	if !waitFor(t, 2*time.Second, func() bool {
		return strings.Contains(a.dump(t, "TRACE oid 1"), "oid=1")
	}) {
		t.Errorf("TRACE oid 1 never showed events:\n%s", a.dump(t, "TRACE oid 1"))
	}

	// The plain line commands keep working against the clustered backend.
	if got := a.cmd(t, "conns"); got != "conns 2" {
		t.Errorf("conns reply = %q", got)
	}
	if got := a.cmd(t, fmt.Sprintf("remove %d", qid)); got != "ok" {
		t.Errorf("remove reply = %q", got)
	}
}

// TestClusteredBackendServesObjects is the transport-level sanity check
// that a clustered backend behind the remote server tracks a moving focal:
// queries follow the focal object across cells (and so across worker
// nodes) while devices connect only to the router-fronted server.
func TestClusteredBackendServesObjects(t *testing.T) {
	s, err := ListenAndServe(ServerConfig{
		Addr:         "127.0.0.1:0",
		UoD:          geo.NewRect(0, 0, 100, 100),
		Alpha:        5,
		ClusterNodes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// A focal crossing most of the UoD south-to-north visits several node
	// spans; the target rides along so the result stays stable.
	focal := dialObject(t, s, 7, geo.Pt(50, 5), geo.Vec(0, 40))
	target := dialObject(t, s, 8, geo.Pt(51, 5), geo.Vec(0, 40))
	_, _ = focal, target
	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 2 }) {
		t.Fatal("objects never connected")
	}
	qid := s.InstallQuery(7, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatalf("result never converged: %v", s.Result(qid))
	}
	cs := s.backend.(*core.ClusterServer)
	if !waitFor(t, 5*time.Second, func() bool { return cs.Migrations() > 0 }) {
		t.Logf("focal crossed no node boundary (spans %+v); migrations untested here", cs.Spans())
	}
	if !s.backend.ResultContains(qid, 8) {
		t.Errorf("result = %v, want it to contain target 8", s.Result(qid))
	}
	if err := s.backend.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
