package remote

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

var acceptAll = model.Filter{Seed: 1, Permille: 1000}

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := ListenAndServe(ServerConfig{
		Addr:  "127.0.0.1:0",
		UoD:   geo.NewRect(0, 0, 100, 100),
		Alpha: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func dialObject(t *testing.T, s *Server, oid model.ObjectID, pos geo.Point, vel geo.Vector) *Object {
	t.Helper()
	o, err := Dial(ObjectConfig{
		Addr:  s.Addr().String(),
		UoD:   geo.NewRect(0, 0, 100, 100),
		Alpha: 5,
		OID:   oid, Pos: pos, Vel: vel,
		MaxVel:       100000, // objects move in real time; tests drive fast
		Props:        model.Props{Key: uint64(oid)},
		TickInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	return o
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(3 * time.Millisecond)
	}
	return cond()
}

func TestRemoteBasicContainment(t *testing.T) {
	s := testServer(t)
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	dialObject(t, s, 3, geo.Pt(90, 90), geo.Vec(0, 0))

	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 3 }) {
		t.Fatalf("connections = %d, want 3", s.NumConnected())
	}
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	ok := waitFor(t, 3*time.Second, func() bool {
		r := s.Result(qid)
		return len(r) == 2 && r[0] == 1 && r[1] == 2
	})
	if !ok {
		t.Fatalf("result never converged over TCP: %v", s.Result(qid))
	}
}

func TestRemoteDriveThrough(t *testing.T) {
	s := testServer(t)
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	// Object 2 drives west at 36,000 mph = 10 miles per real second.
	o2 := dialObject(t, s, 2, geo.Pt(62, 50), geo.Vec(-36000, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)

	entered := waitFor(t, 4*time.Second, func() bool {
		for _, oid := range s.Result(qid) {
			if oid == 2 {
				return true
			}
		}
		return false
	})
	if !entered {
		t.Fatalf("object 2 never entered (pos now %v)", o2.Position())
	}
	left := waitFor(t, 4*time.Second, func() bool {
		for _, oid := range s.Result(qid) {
			if oid == 2 {
				return false
			}
		}
		return true
	})
	if !left {
		t.Fatal("object 2 never left after passing through")
	}
}

func TestRemoteSetVelocityAndPosition(t *testing.T) {
	s := testServer(t)
	o := dialObject(t, s, 1, geo.Pt(10, 10), geo.Vec(0, 0))
	p0 := o.Position()
	o.SetVelocity(geo.Vec(36000, 0))
	if !waitFor(t, 2*time.Second, func() bool { return o.Position().X > p0.X+1 }) {
		t.Fatal("object did not move after SetVelocity")
	}
}

func TestRemoteCleanDeparture(t *testing.T) {
	s := testServer(t)
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	o2 := dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatal("precondition: result of 2")
	}
	o2.Close()
	if !waitFor(t, 3*time.Second, func() bool {
		r := s.Result(qid)
		return len(r) == 1 && r[0] == 1
	}) {
		t.Fatalf("departed object lingers in result: %v", s.Result(qid))
	}
	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 1 }) {
		t.Fatalf("connections = %d after departure", s.NumConnected())
	}
}

func TestRemoteAbruptDisconnectSynthesizesDeparture(t *testing.T) {
	s := testServer(t)
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	// Wait until installation completed (the focal answered and entered its
	// own result) so the raw report below finds the query registered.
	if !waitFor(t, 2*time.Second, func() bool { return len(s.Result(qid)) == 1 }) {
		t.Fatal("query never finished installing")
	}

	// A raw connection that handshakes, reports containment, then vanishes.
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, EncodeHello(42)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, messageFrame(msg.ContainmentReport{OID: 42, QID: qid, IsTarget: true})); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		for _, oid := range s.Result(qid) {
			if oid == 42 {
				return true
			}
		}
		return false
	}) {
		t.Fatal("raw report never landed")
	}
	conn.Close() // abrupt disconnect, no departure report
	if !waitFor(t, 2*time.Second, func() bool {
		for _, oid := range s.Result(qid) {
			if oid == 42 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("server did not synthesize a departure for the vanished object")
	}
}

func TestRemoteRejectsGarbage(t *testing.T) {
	s := testServer(t)
	// Garbage before the handshake.
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{1, 2, 3})
	conn.Close()

	// Valid handshake, garbage frame afterwards.
	conn2, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	WriteFrame(conn2, EncodeHello(7))
	WriteFrame(conn2, []byte{0xde, 0xad, 0xbe, 0xef})
	defer conn2.Close()

	// The server survives and still serves real clients.
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 1 }) {
		t.Fatal("server unhealthy after garbage connections")
	}
}

func TestRemoteResultEvents(t *testing.T) {
	s := testServer(t)
	events := make(chan core.ResultEvent, 256)
	s.SetResultListener(func(ev core.ResultEvent) {
		select {
		case events <- ev:
		default:
		}
	})
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)

	seen := map[model.ObjectID]bool{}
	deadline := time.After(3 * time.Second)
	for len(seen) < 2 {
		select {
		case ev := <-events:
			if ev.QID == qid && ev.Entered {
				seen[ev.OID] = true
			}
		case <-deadline:
			t.Fatalf("enter events seen: %v", seen)
		}
	}
}

func TestRemoteLQPMode(t *testing.T) {
	// The protocol variant flows through the remote deployment unchanged.
	s, err := ListenAndServe(ServerConfig{
		Addr:    "127.0.0.1:0",
		UoD:     geo.NewRect(0, 0, 100, 100),
		Alpha:   5,
		Options: core.Options{Mode: core.LazyPropagation},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 3; i++ {
		o, err := Dial(ObjectConfig{
			Addr: s.Addr().String(), UoD: geo.NewRect(0, 0, 100, 100), Alpha: 5,
			Options: core.Options{Mode: core.LazyPropagation},
			OID:     model.ObjectID(i), Pos: geo.Pt(48+float64(i)*2, 50),
			MaxVel: 100000, Props: model.Props{Key: uint64(i)},
			TickInterval: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
	}
	qid := s.InstallQuery(1, model.CircleRegion{R: 5}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 3 }) {
		t.Fatalf("LQP result = %v", s.Result(qid))
	}
}

// TestRemoteSnapshotRestore: kill the server mid-run, restore from a
// snapshot on a new listener, reconnect the objects — tracking resumes.
func TestRemoteSnapshotRestore(t *testing.T) {
	s := testServer(t)
	o1 := dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	o2 := dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatal("precondition: result of 2")
	}

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	o1.Close()
	o2.Close()

	s2, err := ListenAndRestore(ServerConfig{
		Addr:  "127.0.0.1:0",
		UoD:   geo.NewRect(0, 0, 100, 100),
		Alpha: 5,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// The query survived the restart with its result intact.
	if got := s2.Result(qid); len(got) != 2 {
		t.Fatalf("restored result = %v", got)
	}
	// Fresh objects reconnect; a new one enters the still-live query.
	dialObject(t, s2, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s2, 3, geo.Pt(49, 50), geo.Vec(0, 0))
	if !waitFor(t, 3*time.Second, func() bool {
		for _, oid := range s2.Result(qid) {
			if oid == 3 {
				return true
			}
		}
		return false
	}) {
		t.Fatalf("new object never tracked after restore: %v", s2.Result(qid))
	}
}

func TestRemoteStats(t *testing.T) {
	s := testServer(t)
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatal("no results")
	}
	up, down, upB, downB, byKind := s.Stats()
	if up == 0 || down == 0 || upB == 0 || downB == 0 {
		t.Errorf("stats: %d/%d msgs, %d/%d bytes", up, down, upB, downB)
	}
	if len(byKind) == 0 {
		t.Error("no per-kind stats")
	}
}

// adminSession dials the admin port and provides a line-oriented exchange.
type adminSession struct {
	conn net.Conn
	sc   *bufio.Scanner
}

func dialAdmin(t *testing.T, a *AdminServer) *adminSession {
	t.Helper()
	conn, err := net.Dial("tcp", a.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &adminSession{conn: conn, sc: bufio.NewScanner(conn)}
}

func (s *adminSession) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(s.conn, line); err != nil {
		t.Fatal(err)
	}
	if !s.sc.Scan() {
		t.Fatalf("no reply to %q", line)
	}
	return s.sc.Text()
}

func TestAdminServer(t *testing.T) {
	s := testServer(t)
	admin, err := ServeAdmin("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 2 }) {
		t.Fatal("objects never connected")
	}

	a := dialAdmin(t, admin)
	if got := a.cmd(t, "conns"); got != "conns 2" {
		t.Errorf("conns reply = %q", got)
	}
	reply := a.cmd(t, "install 1 3 1000")
	var qid int
	if _, err := fmt.Sscanf(reply, "qid %d", &qid); err != nil {
		t.Fatalf("install reply = %q", reply)
	}
	if !waitFor(t, 3*time.Second, func() bool {
		return a.cmd(t, fmt.Sprintf("result %d", qid)) == fmt.Sprintf("result %d 1 2", qid)
	}) {
		t.Fatalf("result never converged: %q", a.cmd(t, fmt.Sprintf("result %d", qid)))
	}
	if got := a.cmd(t, "stats"); len(got) < 6 || got[:5] != "stats" {
		t.Errorf("stats reply = %q", got)
	}

	// Snapshot via admin.
	path := t.TempDir() + "/snap.bin"
	if got := a.cmd(t, "snapshot "+path); got != "ok" {
		t.Errorf("snapshot reply = %q", got)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Errorf("snapshot file missing or empty: %v", err)
	}

	if got := a.cmd(t, fmt.Sprintf("remove %d", qid)); got != "ok" {
		t.Errorf("remove reply = %q", got)
	}
	if got := a.cmd(t, fmt.Sprintf("result %d", qid)); got != fmt.Sprintf("result %d", qid) {
		t.Errorf("result after remove = %q", got)
	}

	// Error paths.
	for _, bad := range []string{"install", "install x y z", "remove", "remove x", "bogus"} {
		if got := a.cmd(t, bad); len(got) < 3 || got[:3] != "err" {
			t.Errorf("%q reply = %q, want err", bad, got)
		}
	}
}

// TestRemotePingPong: the transport answers a Ping with a matching Pong
// without dispatching it into the query engine.
func TestRemotePingPong(t *testing.T) {
	s := testServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, EncodeHello(9)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, messageFrame(msg.Ping{Token: 0xfeed})); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("no pong before deadline: %v", err)
		}
		m, err := wire.Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if pong, ok := m.(msg.Pong); ok {
			if pong.Token != 0xfeed {
				t.Fatalf("pong token = %#x", pong.Token)
			}
			return
		}
	}
}

// TestRemoteObjectReconnectsAndResyncs: with DisconnectGrace on the server
// and Reconnect on the object, killing the server-side connection does not
// tear down the object's focal query; the object redials, resyncs, and the
// result converges back.
func TestRemoteObjectReconnectsAndResyncs(t *testing.T) {
	s, err := ListenAndServe(ServerConfig{
		Addr:            "127.0.0.1:0",
		UoD:             geo.NewRect(0, 0, 100, 100),
		Alpha:           5,
		DisconnectGrace: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	o1, err := Dial(ObjectConfig{
		Addr: s.Addr().String(), UoD: geo.NewRect(0, 0, 100, 100), Alpha: 5,
		OID: 1, Pos: geo.Pt(50, 50),
		MaxVel: 100000, Props: model.Props{Key: 1},
		TickInterval: 2 * time.Millisecond,
		Reconnect:    true, RedialInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o1.Close)
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))

	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatalf("precondition: result = %v", s.Result(qid))
	}

	// Kill the focal object's server-side connection out from under it.
	s.mu.Lock()
	sc := s.conns[1]
	s.mu.Unlock()
	sc.conn.Close()

	// The object redials within the grace period: the query survives and
	// the result converges back to both objects.
	if !waitFor(t, 4*time.Second, func() bool {
		r := s.Result(qid)
		return s.NumQueries() == 1 && len(r) == 2 && r[0] == 1 && r[1] == 2
	}) {
		t.Fatalf("after reconnect: queries = %d, result = %v", s.NumQueries(), s.Result(qid))
	}
}

// TestRemoteReconnectReplacesSession: dialing again with the same object ID
// supersedes the old connection (device rebooted); tracking continues.
func TestRemoteReconnectReplacesSession(t *testing.T) {
	s := testServer(t)
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 1 }) {
		t.Fatal("initial tracking failed")
	}
	// Reconnect with the same OID at a position inside the region.
	o1b := dialObject(t, s, 1, geo.Pt(50.5, 50), geo.Vec(0, 0))
	_ = o1b
	if !waitFor(t, 3*time.Second, func() bool { return s.NumConnected() == 1 }) {
		t.Fatalf("connections = %d after reconnect", s.NumConnected())
	}
	// The focal still tracks itself.
	if !waitFor(t, 3*time.Second, func() bool {
		for _, oid := range s.Result(qid) {
			if oid == 1 {
				return true
			}
		}
		return false
	}) {
		t.Fatalf("tracking lost after reconnect: %v", s.Result(qid))
	}
}
