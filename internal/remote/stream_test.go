package remote

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/history"
	"mobieyes/internal/model"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/stream"
)

func testStreamServer(t *testing.T, clusterNodes int) (*Server, *stream.Tap, *history.Store, *cost.Accountant) {
	t.Helper()
	tap := stream.NewTap()
	st := history.NewStore(1 << 20)
	acct := cost.New()
	s, err := ListenAndServe(ServerConfig{
		Addr:         "127.0.0.1:0",
		UoD:          geo.NewRect(0, 0, 100, 100),
		Alpha:        5,
		ClusterNodes: clusterNodes,
		Stream:       tap,
		History:      st,
		Costs:        acct,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, tap, st, acct
}

// TestRemoteStreamAndHistory drives the full server-tier tee over real TCP:
// the tap streams gap-free sequenced deltas that match the engine's result
// set, the history store records the same transitions plus query lifecycle
// and position samples, and every history byte is charged to the egress
// meter. Runs on the sharded and the (router-side tap) clustered backends.
func TestRemoteStreamAndHistory(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes int
	}{{"sharded", 0}, {"cluster", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			s, tap, st, acct := testStreamServer(t, tc.nodes)

			// An application listener must still work alongside the tap.
			userEvents := make(chan core.ResultEvent, 256)
			s.SetResultListener(func(ev core.ResultEvent) {
				select {
				case userEvents <- ev:
				default:
				}
			})

			sub, snap := tap.Subscribe(stream.Firehose, 1<<16)
			defer sub.Close()
			if len(snap) != 0 {
				t.Fatalf("pre-traffic snapshot = %v", snap)
			}

			dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
			dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
			if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 2 }) {
				t.Fatal("objects never connected")
			}
			qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)

			if !waitFor(t, 3*time.Second, func() bool {
				members, _ := tap.Result(int64(qid))
				return len(members) == 2
			}) {
				t.Fatalf("tap never converged; engine result %v", s.Result(qid))
			}

			// Gap-free integration from the empty snapshot.
			var seq uint64
			got := map[int64]bool{}
			evs, evicted := sub.Drain()
			if evicted {
				t.Fatal("subscriber evicted")
			}
			for _, ev := range evs {
				if ev.QID != int64(qid) {
					continue
				}
				if ev.Seq != seq+1 {
					t.Fatalf("sequence gap: %d -> %d", seq, ev.Seq)
				}
				seq = ev.Seq
				if ev.Enter {
					got[ev.OID] = true
				} else {
					delete(got, ev.OID)
				}
			}
			if !got[1] || !got[2] || len(got) != 2 {
				t.Fatalf("integrated view = %v", got)
			}
			// The application listener saw the same enters.
			seen := map[model.ObjectID]bool{}
			for len(userEvents) > 0 {
				ev := <-userEvents
				if ev.QID == qid && ev.Entered {
					seen[ev.OID] = true
				}
			}
			if !seen[1] || !seen[2] {
				t.Fatalf("user listener missed enters: %v", seen)
			}

			// History: the query's install mark, its enter transitions with
			// the tap's sequence numbers, and position samples from the
			// uplinks.
			replay := st.Replay(int64(qid))
			if len(replay) == 0 || replay[0].Kind != history.KindQuery ||
				replay[0].OID != 1 || replay[0].X != 3 {
				t.Fatalf("replay head = %+v", replay)
			}
			tl := st.Timeline(int64(qid))
			if len(tl) < 2 || tl[0].Seq != 1 || tl[1].Seq != tl[0].Seq+1 {
				t.Fatalf("timeline = %+v", tl)
			}
			hasPos := false
			for _, r := range st.All() {
				if r.Kind == history.KindPos {
					hasPos = true
					break
				}
			}
			if !hasPos {
				t.Fatal("no position samples recorded")
			}

			// Every history byte was charged at the encode boundary. Clients
			// are still ticking (position samples keep landing), so sandwich
			// the meter read between two store reads: the hook fires inside
			// the store's append critical section, so lo <= charged <= hi.
			_, lo, _, _ := st.Stats()
			eg := acct.Snapshot().Egress
			_, hi, _, _ := st.Stats()
			if eg == nil || eg.HistoryBytes < lo || eg.HistoryBytes > hi || eg.HistoryAppends == 0 {
				t.Fatalf("egress = %+v, store wrote [%d,%d] B", eg, lo, hi)
			}

			// Removal records the lifecycle mark and the implicit leaves.
			s.RemoveQuery(qid)
			if !waitFor(t, 2*time.Second, func() bool {
				replay := st.Replay(int64(qid))
				return len(replay) > 0 && replay[len(replay)-1].Kind == history.KindQueryRemove
			}) {
				t.Fatalf("no query-remove mark; replay = %+v", st.Replay(int64(qid)))
			}
			leaves := 0
			for _, r := range st.Timeline(int64(qid)) {
				if r.Kind == history.KindLeave {
					leaves++
				}
			}
			if leaves != 2 {
				t.Fatalf("leaves on removal = %d, want 2", leaves)
			}
		})
	}
}

// TestRemoteHistoryOnly pins the History-without-Stream path: a private tap
// provides the sequencing, and SetResultListener still reaches the
// application.
func TestRemoteHistoryOnly(t *testing.T) {
	st := history.NewStore(1 << 20)
	s, err := ListenAndServe(ServerConfig{
		Addr:    "127.0.0.1:0",
		UoD:     geo.NewRect(0, 0, 100, 100),
		Alpha:   5,
		History: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if s.Stream() == nil {
		t.Fatal("no private tap for history-only config")
	}
	events := make(chan core.ResultEvent, 64)
	s.SetResultListener(func(ev core.ResultEvent) {
		select {
		case events <- ev:
		default:
		}
	})
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	if !waitFor(t, 3*time.Second, func() bool { return len(st.Timeline(int64(qid))) >= 1 }) {
		t.Fatal("history never saw the enter")
	}
	select {
	case ev := <-events:
		if ev.QID != qid || !ev.Entered {
			t.Fatalf("user event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("user listener starved by history tee")
	}
}

// TestAdminSubHist exercises the SUB/HIST admin commands end to end,
// including the disabled-path errors.
func TestAdminSubHist(t *testing.T) {
	s, tap, _, _ := testStreamServer(t, 0)
	dialObject(t, s, 1, geo.Pt(50, 50), geo.Vec(0, 0))
	dialObject(t, s, 2, geo.Pt(51, 50), geo.Vec(0, 0))
	if !waitFor(t, 2*time.Second, func() bool { return s.NumConnected() == 2 }) {
		t.Fatal("objects never connected")
	}
	adm, err := ServeAdmin("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adm.Close)
	as := dialAdmin(t, adm)

	// SUB first, then install: the session sees the (empty) firehose
	// snapshot, then the two live enter deltas.
	if _, err := as.conn.Write([]byte("SUB 0 2\n")); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool { return tap.Subscribers() >= 1 }) {
		t.Fatal("admin SUB never subscribed")
	}
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100000)
	var out strings.Builder
	for as.sc.Scan() {
		if as.sc.Text() == "." {
			break
		}
		out.WriteString(as.sc.Text())
		out.WriteByte('\n')
	}
	if got := out.String(); strings.Count(got, "event qid") != 2 ||
		!strings.Contains(got, "seq 1 enter") || !strings.Contains(got, "seq 2 enter") {
		t.Fatalf("SUB output:\n%s", got)
	}

	// A fresh SUB on the live query snapshots its membership.
	as2 := dialAdmin(t, adm)
	if _, err := as2.conn.Write([]byte("SUB " + itoa(int64(qid)) + " 0\n")); err != nil {
		t.Fatal(err)
	}
	var snapLine string
	for as2.sc.Scan() {
		if as2.sc.Text() == "." {
			break
		}
		snapLine += as2.sc.Text() + "\n"
	}
	if !strings.Contains(snapLine, "seq 2 members 1 2") {
		t.Fatalf("SUB snapshot: %q", snapLine)
	}

	if out := as2.cmdMulti(t, "HIST"); !strings.Contains(out, "history") {
		t.Fatalf("HIST summary: %q", out)
	}
	if out := as2.cmdMulti(t, "HIST qid "+itoa(int64(qid))); !strings.Contains(out, "enter") ||
		!strings.Contains(out, "query focal 1") {
		t.Fatalf("HIST qid output:\n%s", out)
	}
	if out := as2.cmdMulti(t, "HIST oid 1"); !strings.Contains(out, "pos") {
		t.Fatalf("HIST oid output:\n%s", out)
	}
	if out := as2.cmd(t, "HIST bogus 1"); !strings.HasPrefix(out, "err") {
		t.Fatalf("HIST bad scope: %q", out)
	}
	if out := as2.cmd(t, "SUB x"); !strings.HasPrefix(out, "err") {
		t.Fatalf("SUB bad qid: %q", out)
	}

	// Streaming/history disabled: commands degrade to errors.
	plain := testServer(t)
	adm2, err := ServeAdmin("127.0.0.1:0", plain)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adm2.Close)
	as3 := dialAdmin(t, adm2)
	if out := as3.cmd(t, "SUB 0"); out != "err streaming disabled" {
		t.Fatalf("SUB disabled: %q", out)
	}
	if out := as3.cmd(t, "HIST"); out != "err history disabled" {
		t.Fatalf("HIST disabled: %q", out)
	}
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }
