package remote

import (
	"time"

	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
)

// Metric names of the transport layer (scheme mobieyes_<layer>_<name>; see
// DESIGN.md §9). Frame and byte counters include the 4-byte length prefix of
// every frame; latency histograms carry kind="VelocityReport" etc.
const (
	metricConnections     = "mobieyes_remote_connections"
	metricConnects        = "mobieyes_remote_connects_total"
	metricFramesIn        = "mobieyes_remote_frames_in_total"
	metricFramesOut       = "mobieyes_remote_frames_out_total"
	metricBytesIn         = "mobieyes_remote_bytes_in_total"
	metricBytesOut        = "mobieyes_remote_bytes_out_total"
	metricDecodeErrors    = "mobieyes_remote_decode_errors_total"
	metricVersionRejects  = "mobieyes_remote_version_rejects_total"
	metricUplinkSecondsRm = "mobieyes_remote_uplink_seconds"
	metricBroadcastConns  = "mobieyes_remote_broadcast_fanout"
	metricPendingUni      = "mobieyes_remote_pending_unicasts"

	helpConnections     = "Currently connected moving objects."
	helpConnects        = "Completed object handshakes (including reconnects)."
	helpFramesIn        = "Frames received from objects (handshakes included)."
	helpFramesOut       = "Frames written to objects."
	helpBytesIn         = "Bytes received from objects, length prefixes included."
	helpBytesOut        = "Bytes written to objects, length prefixes included."
	helpDecodeErrors    = "Received frames that failed protocol decoding."
	helpVersionRejects  = "Handshakes refused for a mismatched protocol version."
	helpUplinkSecondsRm = "Uplink dispatch latency into the backend, in seconds."
	helpBroadcastConns  = "Connections addressed per downlink broadcast."
	helpPendingUni      = "Unicast frames queued for not-yet-connected objects."
)

// remoteObs holds the transport-layer metrics of one Server. The remote
// server always carries a registry (its own if the config supplies none), so
// unlike core's serverObs this is never nil on a running server.
type remoteObs struct {
	connects     *obs.Counter
	framesIn     *obs.Counter
	framesOut    *obs.Counter
	bytesIn      *obs.Counter
	bytesOut       *obs.Counter
	decodeErrors   *obs.Counter
	versionRejects *obs.Counter
	// uplinkLat is indexed by message kind; only uplink kinds are populated
	// (downlink kinds never arrive on the uplink path).
	uplinkLat       [msg.NumKinds]*obs.Histogram
	broadcastFanout *obs.Histogram
}

func newRemoteObs(reg *obs.Registry) *remoteObs {
	o := &remoteObs{
		connects:        reg.Counter(metricConnects, helpConnects),
		framesIn:        reg.Counter(metricFramesIn, helpFramesIn),
		framesOut:       reg.Counter(metricFramesOut, helpFramesOut),
		bytesIn:         reg.Counter(metricBytesIn, helpBytesIn),
		bytesOut:        reg.Counter(metricBytesOut, helpBytesOut),
		decodeErrors:    reg.Counter(metricDecodeErrors, helpDecodeErrors),
		versionRejects:  reg.Counter(metricVersionRejects, helpVersionRejects),
		broadcastFanout: reg.Histogram(metricBroadcastConns, helpBroadcastConns, obs.SizeBuckets),
	}
	for k := msg.Kind(0); int(k) < msg.NumKinds; k++ {
		if k.Uplink() {
			o.uplinkLat[k] = reg.Histogram(metricUplinkSecondsRm, helpUplinkSecondsRm, obs.LatencyBuckets, "kind", k.String())
		}
	}
	return o
}

// observeUplink records backend dispatch latency for one received message.
func (o *remoteObs) observeUplink(k msg.Kind, start time.Time) {
	o.uplinkLat[k].Observe(time.Since(start).Seconds())
}

// instrument wires the server's transport metrics and gauges into its
// registry and instruments the backend. Called once from start().
func (s *Server) instrument() {
	s.om = newRemoteObs(s.reg)
	s.reg.GaugeFunc(metricConnections, helpConnections, func() float64 {
		return float64(s.NumConnected())
	})
	s.reg.GaugeFunc(metricPendingUni, helpPendingUni, func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		n := 0
		for _, q := range s.pendingUni {
			n += len(q)
		}
		return float64(n)
	})
	s.backend.Instrument(s.reg)
}

// Metrics returns the server's metric registry — the one given in
// ServerConfig.Metrics, or the server's own if none was supplied. Never nil.
func (s *Server) Metrics() *obs.Registry { return s.reg }
