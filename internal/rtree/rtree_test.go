package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"mobieyes/internal/geo"
)

// bruteForce is the reference implementation: a flat slice scanned linearly.
type bruteForce struct {
	items []Item
}

func (b *bruteForce) insert(it Item) { b.items = append(b.items, it) }

func (b *bruteForce) delete(it Item) bool {
	for i, x := range b.items {
		if x.ID == it.ID && x.Box == it.Box {
			b.items = append(b.items[:i], b.items[i+1:]...)
			return true
		}
	}
	return false
}

func (b *bruteForce) search(q geo.Rect) []int64 {
	var out []int64
	for _, it := range b.items {
		if it.Box.Intersects(q) {
			out = append(out, it.ID)
		}
	}
	return out
}

func sortedIDs(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int64) bool {
	a, b = sortedIDs(a), sortedIDs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randRect(rng *rand.Rand, world, maxExtent float64) geo.Rect {
	x := rng.Float64() * world
	y := rng.Float64() * world
	return geo.NewRect(x, y, rng.Float64()*maxExtent, rng.Float64()*maxExtent)
}

func randPointRect(rng *rand.Rand, world float64) geo.Rect {
	x := rng.Float64() * world
	y := rng.Float64() * world
	return geo.NewRect(x, y, 0, 0)
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Search(geo.NewRect(0, 0, 100, 100), nil); len(got) != 0 {
		t.Fatalf("Search on empty tree = %v", got)
	}
	if tr.Delete(Item{ID: 1, Box: geo.NewRect(0, 0, 1, 1)}) {
		t.Fatal("Delete on empty tree returned true")
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d", tr.Height())
	}
}

func TestNewWithCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 3")
		}
	}()
	NewWithCapacity(3)
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New()
	tr.Insert(Item{ID: 1, Box: geo.NewRect(0, 0, 1, 1)})
	tr.Insert(Item{ID: 2, Box: geo.NewRect(5, 5, 1, 1)})
	tr.Insert(Item{ID: 3, Box: geo.NewRect(0.5, 0.5, 1, 1)})

	got := tr.Search(geo.NewRect(0, 0, 2, 2), nil)
	if !equalIDs(got, []int64{1, 3}) {
		t.Fatalf("Search = %v, want [1 3]", got)
	}
	got = tr.Search(geo.NewRect(4, 4, 3, 3), nil)
	if !equalIDs(got, []int64{2}) {
		t.Fatalf("Search = %v, want [2]", got)
	}
	got = tr.Search(geo.NewRect(10, 10, 1, 1), nil)
	if len(got) != 0 {
		t.Fatalf("Search = %v, want empty", got)
	}
}

func TestInsertGrowsAndSplits(t *testing.T) {
	tr := NewWithCapacity(4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tr.Insert(Item{ID: int64(i), Box: randRect(rng, 100, 5)})
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Fatalf("expected a tree of height ≥ 3 for 200 items at capacity 4, got %d", tr.Height())
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	tr := New()
	bf := &bruteForce{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		it := Item{ID: int64(i), Box: randRect(rng, 1000, 20)}
		tr.Insert(it)
		bf.insert(it)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		q := randRect(rng, 1000, 100)
		got := tr.Search(q, nil)
		want := bf.search(q)
		if !equalIDs(got, want) {
			t.Fatalf("query %v: got %d ids, want %d ids", q, len(got), len(want))
		}
	}
}

func TestSearchPointsMatchesBruteForce(t *testing.T) {
	// Zero-extent rectangles (points) are the object-index use case.
	tr := New()
	bf := &bruteForce{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		it := Item{ID: int64(i), Box: randPointRect(rng, 316)}
		tr.Insert(it)
		bf.insert(it)
	}
	for i := 0; i < 200; i++ {
		q := randRect(rng, 316, 15)
		if got, want := tr.Search(q, nil), bf.search(q); !equalIDs(got, want) {
			t.Fatalf("point query %v mismatch: %d vs %d", q, len(got), len(want))
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	items := []Item{
		{ID: 1, Box: geo.NewRect(0, 0, 1, 1)},
		{ID: 2, Box: geo.NewRect(2, 2, 1, 1)},
		{ID: 3, Box: geo.NewRect(4, 4, 1, 1)},
	}
	for _, it := range items {
		tr.Insert(it)
	}
	if !tr.Delete(items[1]) {
		t.Fatal("Delete returned false for present item")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
	got := tr.Search(geo.NewRect(0, 0, 10, 10), nil)
	if !equalIDs(got, []int64{1, 3}) {
		t.Fatalf("Search after delete = %v", got)
	}
	if tr.Delete(items[1]) {
		t.Fatal("Delete returned true for absent item")
	}
	// Wrong box, right ID: must not delete.
	if tr.Delete(Item{ID: 1, Box: geo.NewRect(9, 9, 1, 1)}) {
		t.Fatal("Delete matched by ID only")
	}
}

func TestDeleteAll(t *testing.T) {
	tr := NewWithCapacity(4)
	rng := rand.New(rand.NewSource(4))
	var items []Item
	for i := 0; i < 500; i++ {
		it := Item{ID: int64(i), Box: randRect(rng, 100, 3)}
		items = append(items, it)
		tr.Insert(it)
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for i, it := range items {
		if !tr.Delete(it) {
			t.Fatalf("Delete %v failed at step %d", it, i)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if got := tr.Search(geo.NewRect(0, 0, 100, 100), nil); len(got) != 0 {
		t.Fatalf("Search after deleting all = %v", got)
	}
}

func TestUpdate(t *testing.T) {
	tr := New()
	oldBox := geo.NewRect(0, 0, 0, 0)
	newBox := geo.NewRect(50, 50, 0, 0)
	tr.Insert(Item{ID: 7, Box: oldBox})
	if !tr.Update(7, oldBox, newBox) {
		t.Fatal("Update returned false")
	}
	if got := tr.Search(geo.NewRect(-1, -1, 2, 2), nil); len(got) != 0 {
		t.Fatalf("item still at old position: %v", got)
	}
	if got := tr.Search(geo.NewRect(49, 49, 2, 2), nil); !equalIDs(got, []int64{7}) {
		t.Fatalf("item not at new position: %v", got)
	}
	if tr.Update(99, oldBox, newBox) {
		t.Fatal("Update of absent item returned true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// TestRandomizedMixedOps is the main torture test: random interleaving of
// inserts, deletes, updates and searches, cross-checked against brute force
// with full invariant validation.
func TestRandomizedMixedOps(t *testing.T) {
	tr := NewWithCapacity(8)
	bf := &bruteForce{}
	rng := rand.New(rand.NewSource(5))
	nextID := int64(0)

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(bf.items) == 0: // insert
			it := Item{ID: nextID, Box: randRect(rng, 200, 8)}
			nextID++
			tr.Insert(it)
			bf.insert(it)
		case op < 7: // delete random present item
			it := bf.items[rng.Intn(len(bf.items))]
			if !tr.Delete(it) {
				t.Fatalf("step %d: Delete(%v) failed", step, it)
			}
			bf.delete(it)
		case op < 8: // update random present item
			it := bf.items[rng.Intn(len(bf.items))]
			newBox := randRect(rng, 200, 8)
			if !tr.Update(it.ID, it.Box, newBox) {
				t.Fatalf("step %d: Update(%v) failed", step, it)
			}
			bf.delete(it)
			bf.insert(Item{ID: it.ID, Box: newBox})
		default: // search
			q := randRect(rng, 200, 30)
			if got, want := tr.Search(q, nil), bf.search(q); !equalIDs(got, want) {
				t.Fatalf("step %d: search mismatch for %v: %d vs %d ids",
					step, q, len(got), len(want))
			}
		}
		if step%97 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(bf.items) {
				t.Fatalf("step %d: Len = %d, brute force has %d", step, tr.Len(), len(bf.items))
			}
		}
	}
}

func TestSearchFunc(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(Item{ID: int64(i), Box: geo.NewRect(float64(i), 0, 0.5, 0.5)})
	}
	var seen []int64
	tr.SearchFunc(geo.NewRect(0, 0, 10, 1), func(it Item) bool {
		seen = append(seen, it.ID)
		return true
	})
	if len(seen) != 11 { // items 0..10 intersect [0,10]
		t.Fatalf("visited %d items, want 11", len(seen))
	}

	// Early termination.
	count := 0
	tr.SearchFunc(geo.NewRect(0, 0, 49, 1), func(it Item) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early-terminated search visited %d, want 5", count)
	}
}

func TestDuplicateIDs(t *testing.T) {
	tr := New()
	box := geo.NewRect(1, 1, 1, 1)
	tr.Insert(Item{ID: 42, Box: box})
	tr.Insert(Item{ID: 42, Box: box})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Search(geo.NewRect(0, 0, 3, 3), nil)
	if len(got) != 2 || got[0] != 42 || got[1] != 42 {
		t.Fatalf("Search = %v", got)
	}
	if !tr.Delete(Item{ID: 42, Box: box}) {
		t.Fatal("first delete failed")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after one delete", tr.Len())
	}
}

func TestClusteredInsertions(t *testing.T) {
	// Clustered data exercises forced reinsertion and overlapping splits.
	tr := NewWithCapacity(6)
	bf := &bruteForce{}
	rng := rand.New(rand.NewSource(6))
	id := int64(0)
	for c := 0; c < 20; c++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for i := 0; i < 100; i++ {
			box := geo.NewRect(cx+rng.NormFloat64()*3, cy+rng.NormFloat64()*3, 1, 1)
			it := Item{ID: id, Box: box}
			id++
			tr.Insert(it)
			bf.insert(it)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		q := randRect(rng, 1000, 50)
		if got, want := tr.Search(q, nil), bf.search(q); !equalIDs(got, want) {
			t.Fatalf("clustered search mismatch: %d vs %d", len(got), len(want))
		}
	}
}

func TestSearchReusesDst(t *testing.T) {
	tr := New()
	tr.Insert(Item{ID: 1, Box: geo.NewRect(0, 0, 1, 1)})
	buf := make([]int64, 0, 16)
	got := tr.Search(geo.NewRect(0, 0, 2, 2), buf)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Search = %v", got)
	}
	if cap(got) != cap(buf) {
		t.Fatal("Search reallocated despite sufficient capacity")
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	boxes := make([]geo.Rect, b.N)
	for i := range boxes {
		boxes[i] = randPointRect(rng, 316)
	}
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Item{ID: int64(i), Box: boxes[i]})
	}
}

func BenchmarkSearch10k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(Item{ID: int64(i), Box: randPointRect(rng, 316)})
	}
	queries := make([]geo.Rect, 1024)
	for i := range queries {
		queries[i] = randRect(rng, 316, 10)
	}
	buf := make([]int64, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.Search(queries[i%len(queries)], buf[:0])
	}
}

func BenchmarkUpdate10k(b *testing.B) {
	// The object-index baseline's hot path: move a point to a nearby spot.
	rng := rand.New(rand.NewSource(3))
	tr := New()
	boxes := make([]geo.Rect, 10000)
	for i := range boxes {
		boxes[i] = randPointRect(rng, 316)
		tr.Insert(Item{ID: int64(i), Box: boxes[i]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % len(boxes)
		old := boxes[id]
		nb := geo.NewRect(old.LX+rng.Float64()*2-1, old.LY+rng.Float64()*2-1, 0, 0)
		if !tr.Update(int64(id), old, nb) {
			b.Fatal("update failed")
		}
		boxes[id] = nb
	}
}

func BenchmarkLinearScanBaseline10k(b *testing.B) {
	// Ablation: the same range query answered by a linear scan, to quantify
	// what the R*-tree buys the centralized baselines.
	rng := rand.New(rand.NewSource(4))
	bf := &bruteForce{}
	for i := 0; i < 10000; i++ {
		bf.insert(Item{ID: int64(i), Box: randPointRect(rng, 316)})
	}
	queries := make([]geo.Rect, 1024)
	for i := range queries {
		queries[i] = randRect(rng, 316, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bf.search(queries[i%len(queries)])
	}
}
