package rtree

import (
	"container/heap"

	"mobieyes/internal/geo"
)

// Nearest returns up to k items whose rectangles are nearest to p, ordered
// nearest first (ties in arbitrary order). It implements the classic
// best-first branch-and-bound traversal (Hjaltason & Samet): a priority
// queue over nodes and items keyed by minimum distance to p, so only the
// parts of the tree that can contain a result are visited.
//
// The paper's evaluation needs only range queries, but nearest-neighbor
// search over moving objects is the natural companion operation (its
// related-work section cites several moving-object NN papers); exposing it
// makes the substrate complete for downstream use.
func (t *Tree) Nearest(p geo.Point, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &nnQueue{}
	heap.Init(pq)
	heap.Push(pq, nnEntry{dist: 0, node: t.root})

	out := make([]Item, 0, k)
	for pq.Len() > 0 {
		e := heap.Pop(pq).(nnEntry)
		if e.node == nil {
			out = append(out, e.item)
			if len(out) == k {
				return out
			}
			continue
		}
		for i := range e.node.entries {
			ne := &e.node.entries[i]
			d := ne.box.DistToPoint(p)
			if e.node.leaf {
				heap.Push(pq, nnEntry{dist: d, item: Item{ID: ne.id, Box: ne.box}})
			} else {
				heap.Push(pq, nnEntry{dist: d, node: ne.child})
			}
		}
	}
	return out
}

// NearestFunc visits items in order of increasing distance to p until fn
// returns false. It allows distance-ordered scans with arbitrary stopping
// conditions (e.g. "nearest item satisfying a filter").
func (t *Tree) NearestFunc(p geo.Point, fn func(it Item, dist float64) bool) {
	if t.size == 0 {
		return
	}
	pq := &nnQueue{}
	heap.Init(pq)
	heap.Push(pq, nnEntry{dist: 0, node: t.root})
	for pq.Len() > 0 {
		e := heap.Pop(pq).(nnEntry)
		if e.node == nil {
			if !fn(e.item, e.dist) {
				return
			}
			continue
		}
		for i := range e.node.entries {
			ne := &e.node.entries[i]
			d := ne.box.DistToPoint(p)
			if e.node.leaf {
				heap.Push(pq, nnEntry{dist: d, item: Item{ID: ne.id, Box: ne.box}})
			} else {
				heap.Push(pq, nnEntry{dist: d, node: ne.child})
			}
		}
	}
}

// nnEntry is a queue element: either an internal node (node != nil) or a
// candidate item.
type nnEntry struct {
	dist float64
	node *node
	item Item
}

// nnQueue is a min-heap over nnEntry by distance.
type nnQueue []nnEntry

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
