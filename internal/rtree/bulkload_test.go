package rtree

import (
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Search(geo.NewRect(0, 0, 100, 100), nil); len(got) != 0 {
		t.Fatalf("Search = %v", got)
	}
}

func TestBulkLoadSingleNode(t *testing.T) {
	items := []Item{
		{ID: 1, Box: geo.NewRect(0, 0, 1, 1)},
		{ID: 2, Box: geo.NewRect(5, 5, 1, 1)},
	}
	tr := BulkLoad(items)
	if tr.Len() != 2 || tr.Height() != 1 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	for _, n := range []int{1, 7, 32, 33, 100, 1000, 5000} {
		rng := rand.New(rand.NewSource(int64(n)))
		items := make([]Item, n)
		bf := &bruteForce{}
		for i := range items {
			items[i] = Item{ID: int64(i), Box: randRect(rng, 500, 10)}
			bf.insert(items[i])
		}
		tr := BulkLoad(items)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 50; q++ {
			query := randRect(rng, 500, 60)
			if got, want := tr.Search(query, nil), bf.search(query); !equalIDs(got, want) {
				t.Fatalf("n=%d query %v: %d vs %d ids", n, query, len(got), len(want))
			}
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := make([]Item, 500)
	bf := &bruteForce{}
	for i := range items {
		items[i] = Item{ID: int64(i), Box: randPointRect(rng, 300)}
		bf.insert(items[i])
	}
	tr := BulkLoadWithCapacity(items, 8)
	// Mixed mutations on the bulk-loaded tree must behave identically to an
	// incrementally built one.
	for step := 0; step < 1500; step++ {
		switch rng.Intn(3) {
		case 0:
			it := Item{ID: int64(1000 + step), Box: randPointRect(rng, 300)}
			tr.Insert(it)
			bf.insert(it)
		case 1:
			if len(bf.items) > 0 {
				it := bf.items[rng.Intn(len(bf.items))]
				if !tr.Delete(it) {
					t.Fatalf("step %d: Delete(%v) failed", step, it)
				}
				bf.delete(it)
			}
		default:
			q := randRect(rng, 300, 40)
			if got, want := tr.Search(q, nil), bf.search(q); !equalIDs(got, want) {
				t.Fatalf("step %d: mismatch %d vs %d", step, len(got), len(want))
			}
		}
		if step%211 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
}

func TestBulkLoadIsDenser(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := make([]Item, 4000)
	for i := range items {
		items[i] = Item{ID: int64(i), Box: randPointRect(rng, 316)}
	}
	bulk := BulkLoad(items)
	incr := New()
	for _, it := range items {
		incr.Insert(it)
	}
	if bulk.Height() > incr.Height() {
		t.Errorf("bulk height %d exceeds incremental height %d", bulk.Height(), incr.Height())
	}
}

func TestBulkLoadPanicsOnTinyCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BulkLoadWithCapacity(nil, 2)
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	items := make([]Item, 10000)
	for i := range items {
		items[i] = Item{ID: int64(i), Box: randPointRect(rng, 316)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BulkLoad(items)
	}
}

func BenchmarkIncrementalLoad10k(b *testing.B) {
	// Ablation partner for BenchmarkBulkLoad10k.
	rng := rand.New(rand.NewSource(5))
	items := make([]Item, 10000)
	for i := range items {
		items[i] = Item{ID: int64(i), Box: randPointRect(rng, 316)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New()
		for _, it := range items {
			tr.Insert(it)
		}
	}
}
