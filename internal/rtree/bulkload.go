package rtree

import "sort"

// BulkLoad builds a tree from items with Sort-Tile-Recursive packing
// (Leutenegger et al., STR): items are sorted by x-center, cut into
// vertical slices, each slice sorted by y-center and packed into full
// nodes; node levels are packed recursively the same way. The result
// satisfies the same structural invariants as an incrementally built tree
// (including minimum fill: trailing nodes borrow from their left neighbor)
// and supports subsequent Insert/Delete/Update as usual.
//
// Packing is O(n log n) and produces near-perfectly full nodes, so bulk
// construction is several times faster than repeated insertion — useful
// when a baseline index is (re)built over a known query or object set.
func BulkLoad(items []Item) *Tree {
	return BulkLoadWithCapacity(items, defaultMaxEntries)
}

// BulkLoadWithCapacity is BulkLoad with an explicit node capacity. It
// panics if max < 4, matching NewWithCapacity.
func BulkLoadWithCapacity(items []Item, max int) *Tree {
	t := NewWithCapacity(max)
	if len(items) == 0 {
		return t
	}
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{box: it.Box, id: it.ID}
	}
	level := 0
	nodes := packLevel(entries, max, t.minEntries, true, level)
	for len(nodes) > 1 {
		level++
		parentEntries := make([]entry, len(nodes))
		for i, n := range nodes {
			parentEntries[i] = entry{box: mbr(n.entries), child: n}
		}
		nodes = packLevel(parentEntries, max, t.minEntries, false, level)
	}
	t.root = nodes[0]
	t.size = len(items)
	return t
}

// packLevel groups entries into nodes of the given level using STR tiling.
func packLevel(entries []entry, max, min int, leaf bool, level int) []*node {
	n := len(entries)
	if n <= max {
		nd := &node{leaf: leaf, level: level, entries: entries}
		adoptChildren(nd)
		return []*node{nd}
	}
	// Number of nodes and vertical slices.
	numNodes := (n + max - 1) / max
	numSlices := intSqrtCeil(numNodes)
	sliceSize := ((numNodes + numSlices - 1) / numSlices) * max // entries per slice

	sort.Slice(entries, func(i, j int) bool {
		return entries[i].box.Center().X < entries[j].box.Center().X
	})

	var nodes []*node
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		slice := entries[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].box.Center().Y < slice[j].box.Center().Y
		})
		for s := 0; s < len(slice); s += max {
			e := s + max
			if e > len(slice) {
				e = len(slice)
			}
			nd := &node{leaf: leaf, level: level,
				entries: append([]entry(nil), slice[s:e]...)}
			nodes = append(nodes, nd)
		}
	}
	// Minimum-fill repair: a trailing node with fewer than min entries
	// borrows from its left neighbor so the R-tree invariant holds.
	for i := 1; i < len(nodes); i++ {
		nd := nodes[i]
		if len(nd.entries) >= min {
			continue
		}
		prev := nodes[i-1]
		need := min - len(nd.entries)
		cut := len(prev.entries) - need
		nd.entries = append(append([]entry(nil), prev.entries[cut:]...), nd.entries...)
		prev.entries = prev.entries[:cut]
	}
	for _, nd := range nodes {
		adoptChildren(nd)
	}
	return nodes
}

func adoptChildren(nd *node) {
	for i := range nd.entries {
		if nd.entries[i].child != nil {
			nd.entries[i].child.parent = nd
		}
	}
}

func intSqrtCeil(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}
