// Package rtree implements an in-memory R*-tree (Beckmann, Kriegel,
// Schneider, Seeger: "The R*-tree: An Efficient and Robust Access Method for
// Points and Rectangles", SIGMOD 1990).
//
// The MobiEyes paper uses an R*-tree for both centralized baselines it
// compares against: the object index (a spatial index over moving object
// positions) and the query index (a spatial index over query regions). This
// package provides the shared substrate for both.
//
// The implementation includes the full R* heuristics:
//
//   - ChooseSubtree with minimum overlap enlargement at the leaf level and
//     minimum area enlargement above it;
//   - the R* split algorithm (ChooseSplitAxis by minimum margin sum,
//     ChooseSplitIndex by minimum overlap, ties broken by area);
//   - forced reinsertion of the 30% most distant entries on the first
//     overflow at each level per insertion;
//   - deletion with tree condensation and orphan reinsertion.
//
// Items are identified by an int64 ID chosen by the caller; Delete and
// Update locate items by ID and their last-known rectangle, so the caller
// must remember the rectangle it inserted (both baselines naturally do).
package rtree

import (
	"fmt"
	"sort"

	"mobieyes/internal/geo"
)

const (
	// defaultMaxEntries is M, the node capacity. 32 keeps nodes cache
	// friendly while staying close to the classic configuration.
	defaultMaxEntries = 32
	// reinsertFraction is p from the R* paper: on first overflow, the 30%
	// of entries farthest from the node center are reinserted.
	reinsertFraction = 0.3
)

// Item is a spatial object stored in the tree.
type Item struct {
	ID  int64
	Box geo.Rect
}

type entry struct {
	box   geo.Rect
	child *node // nil for leaf entries
	id    int64 // valid for leaf entries
}

type node struct {
	parent  *node // nil for the root
	leaf    bool
	level   int // 0 for leaves
	entries []entry
}

// Tree is an R*-tree. The zero value is not usable; call New.
type Tree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int
	// reinsertedLevels tracks which levels already did forced reinsertion
	// during the current insertion, per the R* overflow treatment.
	reinsertedLevels map[int]bool
}

// New returns an empty R*-tree with the default node capacity.
func New() *Tree { return NewWithCapacity(defaultMaxEntries) }

// NewWithCapacity returns an empty R*-tree whose nodes hold at most max
// entries. It panics if max < 4, the smallest capacity for which the R*
// split distributions are well defined.
func NewWithCapacity(max int) *Tree {
	if max < 4 {
		panic(fmt.Sprintf("rtree: capacity %d too small (minimum 4)", max))
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: max,
		minEntries: max * 2 / 5, // m = 40% of M, the R* recommendation
	}
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.size }

// Insert adds an item to the tree. Inserting two items with the same ID is
// allowed (the tree is a multiset over IDs); Delete removes one matching
// occurrence.
func (t *Tree) Insert(it Item) {
	t.reinsertedLevels = map[int]bool{}
	t.insert(entry{box: it.Box, id: it.ID}, 0)
	t.size++
}

// insert places e at the given target level (0 = leaf).
func (t *Tree) insert(e entry, level int) {
	n := t.chooseSubtree(e.box, level)
	n.entries = append(n.entries, e)
	if e.child != nil {
		e.child.parent = n
	}
	t.adjustPathUp(n)
	if len(n.entries) > t.maxEntries {
		t.overflowTreatment(n, level)
	}
}

// chooseSubtree descends from the root to the node at the target level
// using the R* ChooseSubtree heuristics.
func (t *Tree) chooseSubtree(box geo.Rect, level int) *node {
	n := t.root
	for n.level > level {
		var best *entry
		if n.level == 1 {
			// Children are leaves: minimize overlap enlargement.
			best = chooseMinOverlap(n.entries, box)
		} else {
			best = chooseMinEnlargement(n.entries, box)
		}
		n = best.child
	}
	return n
}

// chooseMinOverlap picks the entry whose overlap with its siblings grows
// least when enlarged to include box; ties by area enlargement, then area.
func chooseMinOverlap(entries []entry, box geo.Rect) *entry {
	bestIdx := 0
	bestOverlapInc := -1.0
	bestEnlarge := 0.0
	bestArea := 0.0
	for i := range entries {
		enlarged := entries[i].box.Union(box)
		var before, after float64
		for j := range entries {
			if j == i {
				continue
			}
			before += entries[i].box.OverlapArea(entries[j].box)
			after += enlarged.OverlapArea(entries[j].box)
		}
		overlapInc := after - before
		enlarge := enlarged.Area() - entries[i].box.Area()
		area := entries[i].box.Area()
		if bestOverlapInc < 0 ||
			overlapInc < bestOverlapInc ||
			(overlapInc == bestOverlapInc && enlarge < bestEnlarge) ||
			(overlapInc == bestOverlapInc && enlarge == bestEnlarge && area < bestArea) {
			bestIdx, bestOverlapInc, bestEnlarge, bestArea = i, overlapInc, enlarge, area
		}
	}
	return &entries[bestIdx]
}

// chooseMinEnlargement picks the entry needing the least area enlargement
// to include box; ties broken by smaller area.
func chooseMinEnlargement(entries []entry, box geo.Rect) *entry {
	bestIdx := 0
	bestEnlarge := -1.0
	bestArea := 0.0
	for i := range entries {
		area := entries[i].box.Area()
		enlarge := entries[i].box.Union(box).Area() - area
		if bestEnlarge < 0 || enlarge < bestEnlarge ||
			(enlarge == bestEnlarge && area < bestArea) {
			bestIdx, bestEnlarge, bestArea = i, enlarge, area
		}
	}
	return &entries[bestIdx]
}

// adjustPathUp recomputes the exact bounding boxes of the entries pointing
// at n and each of its ancestors. O(height × node capacity).
func (t *Tree) adjustPathUp(n *node) {
	for n.parent != nil {
		p := n.parent
		for i := range p.entries {
			if p.entries[i].child == n {
				p.entries[i].box = mbr(n.entries)
				break
			}
		}
		n = p
	}
}

// overflowTreatment implements the R* policy: on the first overflow at a
// level (other than the root) during one insertion, reinsert the p entries
// farthest from the node's center; otherwise split.
func (t *Tree) overflowTreatment(n *node, level int) {
	if n != t.root && !t.reinsertedLevels[level] {
		t.reinsertedLevels[level] = true
		t.forcedReinsert(n, level)
		return
	}
	t.splitNode(n, level)
}

// forcedReinsert removes the 30% of n's entries whose centers are farthest
// from n's center and reinserts them at the same level.
func (t *Tree) forcedReinsert(n *node, level int) {
	center := mbr(n.entries).Center()
	type distEntry struct {
		d float64
		e entry
	}
	ds := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		ds[i] = distEntry{e.box.Center().Dist2(center), e}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d > ds[j].d })
	p := int(reinsertFraction * float64(len(ds)))
	if p < 1 {
		p = 1
	}
	removed := make([]entry, p)
	for i := 0; i < p; i++ {
		removed[i] = ds[i].e
	}
	kept := n.entries[:0]
	for i := p; i < len(ds); i++ {
		kept = append(kept, ds[i].e)
	}
	n.entries = kept
	t.adjustPathUp(n)
	for _, e := range removed {
		t.insert(e, level)
	}
}

// splitNode splits an overflowing node using the R* topological split and
// propagates the split upward, growing the tree at the root if needed.
func (t *Tree) splitNode(n *node, level int) {
	left, right := rstarSplit(n.entries, t.minEntries)
	sibling := &node{leaf: n.leaf, level: n.level, entries: right}
	for i := range sibling.entries {
		if sibling.entries[i].child != nil {
			sibling.entries[i].child.parent = sibling
		}
	}
	n.entries = left
	for i := range n.entries {
		if n.entries[i].child != nil {
			n.entries[i].child.parent = n
		}
	}

	if n == t.root {
		newRoot := &node{level: n.level + 1}
		n.parent, sibling.parent = newRoot, newRoot
		newRoot.entries = []entry{
			{box: mbr(n.entries), child: n},
			{box: mbr(sibling.entries), child: sibling},
		}
		t.root = newRoot
		return
	}

	parent := n.parent
	sibling.parent = parent
	for i := range parent.entries {
		if parent.entries[i].child == n {
			parent.entries[i].box = mbr(n.entries)
			break
		}
	}
	parent.entries = append(parent.entries, entry{box: mbr(sibling.entries), child: sibling})
	t.adjustPathUp(parent)
	if len(parent.entries) > t.maxEntries {
		t.overflowTreatment(parent, level+1)
	}
}

// rstarSplit distributes entries into two groups using the R* split:
// choose the split axis by minimum total margin over all distributions,
// then the distribution with minimum overlap (ties by minimum total area).
func rstarSplit(entries []entry, minEntries int) (left, right []entry) {
	m := minEntries
	if m < 1 {
		m = 1
	}
	es := make([]entry, len(entries))
	copy(es, entries)

	bestAxisMargin := -1.0
	var bestAxisSorted []entry
	for axis := 0; axis < 2; axis++ {
		sorted := make([]entry, len(es))
		copy(sorted, es)
		sortByAxis(sorted, axis)
		margin := 0.0
		for k := m; k <= len(sorted)-m; k++ {
			margin += mbr(sorted[:k]).Margin() + mbr(sorted[k:]).Margin()
		}
		if bestAxisMargin < 0 || margin < bestAxisMargin {
			bestAxisMargin = margin
			bestAxisSorted = sorted
		}
	}

	bestOverlap, bestArea := -1.0, 0.0
	bestK := m
	for k := m; k <= len(bestAxisSorted)-m; k++ {
		l, r := mbr(bestAxisSorted[:k]), mbr(bestAxisSorted[k:])
		overlap := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if bestOverlap < 0 || overlap < bestOverlap ||
			(overlap == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, bestK = overlap, area, k
		}
	}
	left = append([]entry(nil), bestAxisSorted[:bestK]...)
	right = append([]entry(nil), bestAxisSorted[bestK:]...)
	return left, right
}

func sortByAxis(es []entry, axis int) {
	sort.Slice(es, func(i, j int) bool {
		var li, lj, hi, hj float64
		if axis == 0 {
			li, lj = es[i].box.LX, es[j].box.LX
			hi, hj = es[i].box.HX, es[j].box.HX
		} else {
			li, lj = es[i].box.LY, es[j].box.LY
			hi, hj = es[i].box.HY, es[j].box.HY
		}
		if li != lj {
			return li < lj
		}
		return hi < hj
	})
}

// mbr returns the minimum bounding rectangle of a set of entries.
func mbr(es []entry) geo.Rect {
	if len(es) == 0 {
		return geo.Rect{}
	}
	r := es[0].box
	for _, e := range es[1:] {
		r = r.Union(e.box)
	}
	return r
}

// Search appends to dst the IDs of all items whose rectangles intersect
// query, and returns the extended slice. Pass nil to allocate fresh.
func (t *Tree) Search(query geo.Rect, dst []int64) []int64 {
	return searchNode(t.root, query, dst)
}

func searchNode(n *node, query geo.Rect, dst []int64) []int64 {
	for i := range n.entries {
		if !n.entries[i].box.Intersects(query) {
			continue
		}
		if n.leaf {
			dst = append(dst, n.entries[i].id)
		} else {
			dst = searchNode(n.entries[i].child, query, dst)
		}
	}
	return dst
}

// SearchFunc visits every item whose rectangle intersects query. Returning
// false from fn stops the search early.
func (t *Tree) SearchFunc(query geo.Rect, fn func(Item) bool) {
	searchFuncNode(t.root, query, fn)
}

func searchFuncNode(n *node, query geo.Rect, fn func(Item) bool) bool {
	for i := range n.entries {
		if !n.entries[i].box.Intersects(query) {
			continue
		}
		if n.leaf {
			if !fn(Item{ID: n.entries[i].id, Box: n.entries[i].box}) {
				return false
			}
		} else if !searchFuncNode(n.entries[i].child, query, fn) {
			return false
		}
	}
	return true
}

// Delete removes one occurrence of the item (matched by ID and rectangle).
// It returns true if an item was removed. Underfull nodes are condensed:
// their remaining entries are reinserted, per the classic R-tree deletion
// algorithm.
func (t *Tree) Delete(it Item) bool {
	leaf, idx := findLeaf(t.root, it)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.adjustPathUp(leaf)
	t.condenseTree(leaf)
	// Shrink the root while it is a non-leaf with a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	if len(t.root.entries) == 0 && !t.root.leaf {
		t.root = &node{leaf: true}
	}
	return true
}

// findLeaf locates the leaf containing the item and the entry index.
func findLeaf(n *node, it Item) (*node, int) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].id == it.ID && n.entries[i].box == it.Box {
				return n, i
			}
		}
		return nil, -1
	}
	for i := range n.entries {
		if n.entries[i].box.ContainsRect(it.Box) {
			if leaf, idx := findLeaf(n.entries[i].child, it); leaf != nil {
				return leaf, idx
			}
		}
	}
	return nil, -1
}

// condenseTree removes underfull nodes on the path from leaf to root and
// reinserts their orphaned entries.
func (t *Tree) condenseTree(leaf *node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	n := leaf
	for n != t.root {
		parent := n.parent
		if len(n.entries) < t.minEntries {
			for i := range parent.entries {
				if parent.entries[i].child == n {
					parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e, n.level})
			}
			t.adjustPathUp(parent)
		}
		n = parent
	}
	for _, o := range orphans {
		t.reinsertedLevels = map[int]bool{}
		t.insert(o.e, o.level)
	}
}

// Update moves an item from its old rectangle to a new one. It returns
// false (and does not insert) when the old item is not present.
func (t *Tree) Update(id int64, oldBox, newBox geo.Rect) bool {
	if !t.Delete(Item{ID: id, Box: oldBox}) {
		return false
	}
	t.Insert(Item{ID: id, Box: newBox})
	return true
}

// Height returns the height of the tree (1 for a tree that is a single
// leaf). Exposed for tests and instrumentation.
func (t *Tree) Height() int { return t.root.level + 1 }

// checkInvariants validates structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	n, err := checkNode(t.root, t.root, t.maxEntries, t.minEntries)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("size mismatch: counted %d, tracked %d", n, t.size)
	}
	return nil
}

func checkNode(n, root *node, maxE, minE int) (items int, err error) {
	if len(n.entries) > maxE {
		return 0, fmt.Errorf("node at level %d has %d > %d entries", n.level, len(n.entries), maxE)
	}
	if n != root && len(n.entries) < minE {
		return 0, fmt.Errorf("non-root node at level %d has %d < %d entries", n.level, len(n.entries), minE)
	}
	if n.leaf {
		if n.level != 0 {
			return 0, fmt.Errorf("leaf with level %d", n.level)
		}
		return len(n.entries), nil
	}
	for i := range n.entries {
		c := n.entries[i].child
		if c == nil {
			return 0, fmt.Errorf("internal entry with nil child at level %d", n.level)
		}
		if c.parent != n {
			return 0, fmt.Errorf("broken parent pointer at level %d", n.level)
		}
		if c.level != n.level-1 {
			return 0, fmt.Errorf("child level %d under parent level %d", c.level, n.level)
		}
		want := mbr(c.entries)
		if n.entries[i].box != want {
			return 0, fmt.Errorf("stale bounding box at level %d: have %v want %v", n.level, n.entries[i].box, want)
		}
		cn, err := checkNode(c, root, maxE, minE)
		if err != nil {
			return 0, err
		}
		items += cn
	}
	return items, nil
}
