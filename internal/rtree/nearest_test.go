package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"mobieyes/internal/geo"
)

// bruteNearest is the reference kNN: sort all items by distance.
func bruteNearest(items []Item, p geo.Point, k int) []Item {
	out := append([]Item(nil), items...)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Box.DistToPoint(p) < out[j].Box.DistToPoint(p)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestNearestEmptyAndDegenerate(t *testing.T) {
	tr := New()
	if got := tr.Nearest(geo.Pt(0, 0), 5); got != nil {
		t.Fatalf("Nearest on empty tree = %v", got)
	}
	tr.Insert(Item{ID: 1, Box: geo.NewRect(3, 4, 0, 0)})
	if got := tr.Nearest(geo.Pt(0, 0), 0); got != nil {
		t.Fatalf("Nearest with k=0 = %v", got)
	}
	got := tr.Nearest(geo.Pt(0, 0), 10)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Nearest = %v", got)
	}
}

func TestNearestOrdering(t *testing.T) {
	tr := New()
	for i := 1; i <= 20; i++ {
		tr.Insert(Item{ID: int64(i), Box: geo.NewRect(float64(i), 0, 0, 0)})
	}
	got := tr.Nearest(geo.Pt(0, 0), 5)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	for i, it := range got {
		if it.ID != int64(i+1) {
			t.Fatalf("position %d: ID %d, want %d", i, it.ID, i+1)
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var items []Item
	tr := NewWithCapacity(8)
	for i := 0; i < 3000; i++ {
		it := Item{ID: int64(i), Box: randRect(rng, 400, 5)}
		items = append(items, it)
		tr.Insert(it)
	}
	for trial := 0; trial < 100; trial++ {
		p := geo.Pt(rng.Float64()*400, rng.Float64()*400)
		k := 1 + rng.Intn(20)
		got := tr.Nearest(p, k)
		want := bruteNearest(items, p, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d items, want %d", k, len(got), len(want))
		}
		for i := range got {
			gd := got[i].Box.DistToPoint(p)
			wd := want[i].Box.DistToPoint(p)
			if gd != wd { // distances must match even when IDs tie
				t.Fatalf("k=%d position %d: dist %v, want %v", k, i, gd, wd)
			}
		}
		// Distances are non-decreasing.
		for i := 1; i < len(got); i++ {
			if got[i].Box.DistToPoint(p) < got[i-1].Box.DistToPoint(p) {
				t.Fatalf("result not distance-ordered at %d", i)
			}
		}
	}
}

func TestNearestFunc(t *testing.T) {
	tr := New()
	for i := 1; i <= 50; i++ {
		tr.Insert(Item{ID: int64(i), Box: geo.NewRect(float64(i), 0, 0, 0)})
	}
	// Find the nearest item with an even ID — a filtered NN query.
	var found Item
	tr.NearestFunc(geo.Pt(0.6, 0), func(it Item, dist float64) bool {
		if it.ID%2 == 0 {
			found = it
			return false
		}
		return true
	})
	if found.ID != 2 {
		t.Fatalf("nearest even ID = %d, want 2", found.ID)
	}
	// Distances arrive in non-decreasing order.
	last := -1.0
	tr.NearestFunc(geo.Pt(25, 0), func(it Item, dist float64) bool {
		if dist < last {
			t.Fatalf("distance regressed: %v after %v", dist, last)
		}
		last = dist
		return true
	})
	// Empty tree: no calls.
	empty := New()
	empty.NearestFunc(geo.Pt(0, 0), func(Item, float64) bool {
		t.Fatal("callback on empty tree")
		return false
	})
}

func TestNearestAfterMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := NewWithCapacity(6)
	var items []Item
	for i := 0; i < 500; i++ {
		it := Item{ID: int64(i), Box: randPointRect(rng, 100)}
		items = append(items, it)
		tr.Insert(it)
	}
	// Delete half.
	for i := 0; i < 250; i++ {
		tr.Delete(items[i])
	}
	items = items[250:]
	p := geo.Pt(50, 50)
	got := tr.Nearest(p, 10)
	want := bruteNearest(items, p, 10)
	for i := range got {
		if got[i].Box.DistToPoint(p) != want[i].Box.DistToPoint(p) {
			t.Fatalf("position %d mismatch after deletions", i)
		}
	}
}

func BenchmarkNearest10k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(Item{ID: int64(i), Box: randPointRect(rng, 316)})
	}
	pts := make([]geo.Point, 1024)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*316, rng.Float64()*316)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Nearest(pts[i%len(pts)], 10)
	}
}
