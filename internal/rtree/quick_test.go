package rtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mobieyes/internal/geo"
)

// boxSpec is a quick-generatable rectangle description.
type boxSpec struct {
	X, Y, W, H float64
}

// Generate implements quick.Generator with bounded, valid extents.
func (boxSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(boxSpec{
		X: r.Float64() * 300,
		Y: r.Float64() * 300,
		W: r.Float64() * 10,
		H: r.Float64() * 10,
	})
}

func (b boxSpec) rect() geo.Rect { return geo.NewRect(b.X, b.Y, b.W, b.H) }

// Property: every inserted item is findable by searching with its own box,
// and the tree's invariants hold, for arbitrary insertion batches.
func TestQuickInsertThenFindSelf(t *testing.T) {
	f := func(boxes []boxSpec) bool {
		tr := NewWithCapacity(8)
		for i, b := range boxes {
			tr.Insert(Item{ID: int64(i), Box: b.rect()})
		}
		if err := tr.checkInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		for i, b := range boxes {
			found := false
			for _, id := range tr.Search(b.rect(), nil) {
				if id == int64(i) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: deleting every item leaves an empty, valid tree regardless of
// the insertion set.
func TestQuickInsertDeleteAll(t *testing.T) {
	f := func(boxes []boxSpec) bool {
		tr := NewWithCapacity(6)
		items := make([]Item, len(boxes))
		for i, b := range boxes {
			items[i] = Item{ID: int64(i), Box: b.rect()}
			tr.Insert(items[i])
		}
		for _, it := range items {
			if !tr.Delete(it) {
				return false
			}
		}
		if tr.Len() != 0 {
			return false
		}
		return tr.checkInvariants() == nil
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(2)), MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: search results are exactly the brute-force intersection set.
func TestQuickSearchEquivalence(t *testing.T) {
	f := func(boxes []boxSpec, query boxSpec) bool {
		tr := New()
		q := query.rect()
		want := map[int64]bool{}
		for i, b := range boxes {
			it := Item{ID: int64(i), Box: b.rect()}
			tr.Insert(it)
			if it.Box.Intersects(q) {
				want[it.ID] = true
			}
		}
		got := tr.Search(q, nil)
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(3)), MaxCount: 80}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
