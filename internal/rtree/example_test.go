package rtree_test

import (
	"fmt"

	"mobieyes/internal/geo"
	"mobieyes/internal/rtree"
)

// ExampleTree_Search indexes a few points and runs a range query.
func ExampleTree_Search() {
	tr := rtree.New()
	tr.Insert(rtree.Item{ID: 1, Box: geo.NewRect(1, 1, 0, 0)})
	tr.Insert(rtree.Item{ID: 2, Box: geo.NewRect(5, 5, 0, 0)})
	tr.Insert(rtree.Item{ID: 3, Box: geo.NewRect(2, 2, 0, 0)})

	ids := tr.Search(geo.NewRect(0, 0, 3, 3), nil)
	fmt.Println(len(ids), "items in [0,3]×[0,3]")
	// Output:
	// 2 items in [0,3]×[0,3]
}

// ExampleTree_Nearest finds the two nearest neighbors of a query point.
func ExampleTree_Nearest() {
	tr := rtree.New()
	for i := 1; i <= 10; i++ {
		tr.Insert(rtree.Item{ID: int64(i), Box: geo.NewRect(float64(i), 0, 0, 0)})
	}
	for _, it := range tr.Nearest(geo.Pt(3.4, 0), 2) {
		fmt.Println("id", it.ID)
	}
	// Output:
	// id 3
	// id 4
}

// ExampleBulkLoad packs a sorted dataset directly into a tree.
func ExampleBulkLoad() {
	items := make([]rtree.Item, 1000)
	for i := range items {
		items[i] = rtree.Item{ID: int64(i), Box: geo.NewRect(float64(i%100), float64(i/100), 1, 1)}
	}
	tr := rtree.BulkLoad(items)
	fmt.Println("items:", tr.Len())
	// Output:
	// items: 1000
}
