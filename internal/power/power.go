// Package power implements the communication energy model of §5.3 of the
// MobiEyes paper: a simple GSM/GPRS radio where the transmit path consists
// of transmitter electronics plus a transmit amplifier and the receive path
// of receiver electronics, with asymmetric uplink/downlink bandwidth.
//
// With the paper's parameters (150 mW TX electronics, 300 mW amplifier at
// 30 % efficiency, 120 mW RX electronics, 14 kbps up, 28 kbps down) the
// model yields ≈82 µJ/bit transmitted and ≈4.3 µJ/bit received, matching
// the ~80 and ~5 µJ/bit the paper quotes. Sending is roughly 19× more
// expensive than receiving, which is why MobiEyes' suppression of uplink
// traffic matters for battery life.
package power

// Model is a per-bit communication energy model.
type Model struct {
	TxElectronicsW float64 // transmitter electronics draw, watts
	AmpOutputW     float64 // transmit amplifier output power, watts
	AmpEfficiency  float64 // amplifier efficiency in (0, 1]
	RxElectronicsW float64 // receiver electronics draw, watts
	UplinkBps      float64 // uplink bandwidth, bits/second
	DownlinkBps    float64 // downlink bandwidth, bits/second
}

// DefaultGPRS returns the paper's radio parameters.
func DefaultGPRS() Model {
	return Model{
		TxElectronicsW: 0.150,
		AmpOutputW:     0.300,
		AmpEfficiency:  0.30,
		RxElectronicsW: 0.120,
		UplinkBps:      14000,
		DownlinkBps:    28000,
	}
}

// TxJoulesPerBit returns the energy to transmit one bit.
func (m Model) TxJoulesPerBit() float64 {
	return (m.TxElectronicsW + m.AmpOutputW/m.AmpEfficiency) / m.UplinkBps
}

// RxJoulesPerBit returns the energy to receive one bit.
func (m Model) RxJoulesPerBit() float64 {
	return m.RxElectronicsW / m.DownlinkBps
}

// TxEnergy returns the energy in joules to transmit a message of the given
// size in bytes.
func (m Model) TxEnergy(bytes int) float64 {
	return float64(bytes*8) * m.TxJoulesPerBit()
}

// RxEnergy returns the energy in joules to receive a message of the given
// size in bytes.
func (m Model) RxEnergy(bytes int) float64 {
	return float64(bytes*8) * m.RxJoulesPerBit()
}

// Account accumulates per-object communication energy.
type Account struct {
	model   Model
	txBytes int64
	rxBytes int64
}

// NewAccount returns an empty energy account under the given model.
func NewAccount(m Model) *Account { return &Account{model: m} }

// Sent records bytes transmitted by the object.
func (a *Account) Sent(bytes int) { a.txBytes += int64(bytes) }

// Received records bytes received by the object.
func (a *Account) Received(bytes int) { a.rxBytes += int64(bytes) }

// TxBytes returns total bytes transmitted.
func (a *Account) TxBytes() int64 { return a.txBytes }

// RxBytes returns total bytes received.
func (a *Account) RxBytes() int64 { return a.rxBytes }

// Joules returns the total communication energy spent.
func (a *Account) Joules() float64 {
	return a.model.TxEnergy(int(a.txBytes)) + a.model.RxEnergy(int(a.rxBytes))
}

// Reset zeroes the account.
func (a *Account) Reset() { a.txBytes, a.rxBytes = 0, 0 }
