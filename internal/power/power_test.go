package power

import (
	"math"
	"testing"
)

func TestDefaultGPRSPerBitEnergies(t *testing.T) {
	m := DefaultGPRS()
	// Paper §5.3: transmitting ≈80 µJ/bit, receiving ≈5 µJ/bit.
	tx := m.TxJoulesPerBit()
	if tx < 70e-6 || tx > 90e-6 {
		t.Errorf("TxJoulesPerBit = %v, want ≈80 µJ", tx)
	}
	rx := m.RxJoulesPerBit()
	if rx < 3e-6 || rx > 6e-6 {
		t.Errorf("RxJoulesPerBit = %v, want ≈5 µJ", rx)
	}
	// Sending must be much more expensive than receiving.
	if tx/rx < 10 {
		t.Errorf("tx/rx ratio = %v, want ≥ 10", tx/rx)
	}
}

func TestEnergyScalesWithBytes(t *testing.T) {
	m := DefaultGPRS()
	if got, want := m.TxEnergy(100), 100*m.TxEnergy(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("TxEnergy not linear: %v vs %v", got, want)
	}
	if m.TxEnergy(0) != 0 || m.RxEnergy(0) != 0 {
		t.Error("zero bytes should cost zero energy")
	}
	// 1 byte = 8 bits.
	if got, want := m.RxEnergy(1), 8*m.RxJoulesPerBit(); math.Abs(got-want) > 1e-15 {
		t.Errorf("RxEnergy(1) = %v, want %v", got, want)
	}
}

func TestAccount(t *testing.T) {
	m := DefaultGPRS()
	a := NewAccount(m)
	a.Sent(100)
	a.Sent(50)
	a.Received(1000)
	if a.TxBytes() != 150 || a.RxBytes() != 1000 {
		t.Fatalf("bytes = %d tx / %d rx", a.TxBytes(), a.RxBytes())
	}
	want := m.TxEnergy(150) + m.RxEnergy(1000)
	if got := a.Joules(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Joules = %v, want %v", got, want)
	}
	a.Reset()
	if a.Joules() != 0 || a.TxBytes() != 0 || a.RxBytes() != 0 {
		t.Error("Reset did not clear the account")
	}
}

func TestTxDominatedWorkload(t *testing.T) {
	// An object that sends as much as it receives must spend almost all of
	// its energy transmitting — the asymmetry that motivates MobiEyes' cut
	// of uplink traffic.
	m := DefaultGPRS()
	a := NewAccount(m)
	a.Sent(1000)
	a.Received(1000)
	txShare := m.TxEnergy(1000) / a.Joules()
	if txShare < 0.9 {
		t.Errorf("tx share = %v, want > 0.9", txShare)
	}
}
