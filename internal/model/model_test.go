package model

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mobieyes/internal/geo"
)

func TestTimeConversions(t *testing.T) {
	ts := FromSeconds(30)
	if got := ts.Hours(); math.Abs(got-1.0/120) > 1e-12 {
		t.Errorf("30s = %v hours, want 1/120", got)
	}
	if got := ts.Seconds(); math.Abs(got-30) > 1e-9 {
		t.Errorf("Seconds round trip = %v", got)
	}
}

func TestFilterSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := Filter{Seed: 12345, Permille: 750}
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if f.Matches(Props{Key: rng.Uint64()}) {
			hits++
		}
	}
	sel := float64(hits) / float64(n)
	if sel < 0.74 || sel > 0.76 {
		t.Errorf("selectivity = %v, want ≈0.75", sel)
	}
}

func TestFilterDeterminism(t *testing.T) {
	f := Filter{Seed: 7, Permille: 500}
	p := Props{Key: 42}
	first := f.Matches(p)
	for i := 0; i < 10; i++ {
		if f.Matches(p) != first {
			t.Fatal("Matches is not deterministic")
		}
	}
}

func TestFilterIndependence(t *testing.T) {
	// Two filters with different seeds should decide independently: the
	// joint acceptance rate of two 50% filters should be ≈25%.
	rng := rand.New(rand.NewSource(2))
	f1 := Filter{Seed: 1, Permille: 500}
	f2 := Filter{Seed: 2, Permille: 500}
	n, both := 100000, 0
	for i := 0; i < n; i++ {
		p := Props{Key: rng.Uint64()}
		if f1.Matches(p) && f2.Matches(p) {
			both++
		}
	}
	rate := float64(both) / float64(n)
	if rate < 0.24 || rate > 0.26 {
		t.Errorf("joint rate = %v, want ≈0.25", rate)
	}
}

func TestFilterEdgeRates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	all := Filter{Seed: 9, Permille: 1000}
	none := Filter{Seed: 9, Permille: 0}
	for i := 0; i < 1000; i++ {
		p := Props{Key: rng.Uint64()}
		if !all.Matches(p) {
			t.Fatal("Permille=1000 rejected a key")
		}
		if none.Matches(p) {
			t.Fatal("Permille=0 accepted a key")
		}
	}
}

func TestMovingObjectMove(t *testing.T) {
	o := MovingObject{Pos: geo.Pt(10, 10), Vel: geo.Vec(60, -120)}
	o.Move(FromSeconds(60)) // one minute at 60 mph east, 120 mph south
	want := geo.Pt(11, 8)
	if o.Pos.Dist(want) > 1e-9 {
		t.Errorf("Pos = %v, want %v", o.Pos, want)
	}
}

func TestCircleRegion(t *testing.T) {
	r := CircleRegion{R: 5}
	if !r.Contains(geo.Pt(3, 4), geo.Pt(6, 8)) { // dist 5, boundary
		t.Error("boundary point should be inside")
	}
	if r.Contains(geo.Pt(3, 4), geo.Pt(9, 8)) {
		t.Error("outside point inside")
	}
	if r.EnclosingRadius() != 5 {
		t.Errorf("EnclosingRadius = %v", r.EnclosingRadius())
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestRectRegion(t *testing.T) {
	r := RectRegion{W: 4, H: 2}
	b := geo.Pt(10, 10)
	inside := []geo.Point{b, geo.Pt(12, 11), geo.Pt(8, 9), geo.Pt(12, 9)}
	outside := []geo.Point{geo.Pt(12.1, 10), geo.Pt(10, 11.1), geo.Pt(7.9, 10)}
	for _, p := range inside {
		if !r.Contains(b, p) {
			t.Errorf("%v should be inside", p)
		}
	}
	for _, p := range outside {
		if r.Contains(b, p) {
			t.Errorf("%v should be outside", p)
		}
	}
	want := math.Hypot(2, 1)
	if math.Abs(r.EnclosingRadius()-want) > 1e-12 {
		t.Errorf("EnclosingRadius = %v, want %v", r.EnclosingRadius(), want)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

// Property: every point of a region lies within EnclosingRadius of the
// binding point — the soundness requirement for bounding boxes, monitoring
// regions and safe periods.
func TestEnclosingRadiusSound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	regions := []Region{
		CircleRegion{R: 3},
		RectRegion{W: 5, H: 2},
		RectRegion{W: 0.5, H: 8},
	}
	for _, reg := range regions {
		b := geo.Pt(rng.Float64()*10, rng.Float64()*10)
		er := reg.EnclosingRadius()
		for i := 0; i < 2000; i++ {
			p := geo.Pt(b.X+rng.Float64()*20-10, b.Y+rng.Float64()*20-10)
			if reg.Contains(b, p) && b.Dist(p) > er+1e-9 {
				t.Fatalf("%v: point %v inside but at distance %v > enclosing %v",
					reg, p, b.Dist(p), er)
			}
		}
	}
}

func TestMotionStatePredict(t *testing.T) {
	m := MotionState{Pos: geo.Pt(0, 0), Vel: geo.Vec(100, 0), Tm: 0}
	got := m.PredictAt(Time(0.5))
	want := geo.Pt(50, 0)
	if got.Dist(want) > 1e-9 {
		t.Errorf("PredictAt = %v, want %v", got, want)
	}
	// Prediction at the recording time is the recorded position.
	if m.PredictAt(0) != m.Pos {
		t.Error("PredictAt(Tm) != Pos")
	}
}

func TestMotionStateDeviation(t *testing.T) {
	m := MotionState{Pos: geo.Pt(0, 0), Vel: geo.Vec(100, 0), Tm: 0}
	// Actual object turned north and is at (50, 10) at t=0.5.
	dev := m.Deviation(geo.Pt(50, 10), Time(0.5))
	if math.Abs(dev-10) > 1e-9 {
		t.Errorf("Deviation = %v, want 10", dev)
	}
	if !m.NeedsRelay(geo.Pt(50, 10), Time(0.5), 5) {
		t.Error("deviation 10 > threshold 5 should need relay")
	}
	if m.NeedsRelay(geo.Pt(50, 10), Time(0.5), 15) {
		t.Error("deviation 10 < threshold 15 should not need relay")
	}
}

// Property: an object moving at constant velocity never needs a relay.
func TestConstantVelocityNeverRelays(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		pos := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		vel := geo.Vec(rng.Float64()*200-100, rng.Float64()*200-100)
		m := MotionState{Pos: pos, Vel: vel, Tm: 0}
		o := MovingObject{Pos: pos, Vel: vel}
		for step := 0; step < 20; step++ {
			o.Move(FromSeconds(30))
			now := FromSeconds(float64(step+1) * 30)
			if m.Deviation(o.Pos, now) > 1e-6 {
				t.Fatalf("deviation %v for constant motion", m.Deviation(o.Pos, now))
			}
		}
	}
}

func TestSafePeriod(t *testing.T) {
	cases := []struct {
		dist, radius, ov, fv float64
		want                 float64
	}{
		{10, 2, 100, 60, 0.05}, // (10−2)/160 hours
		{2, 5, 100, 100, 0},    // already inside → no safe period
		{5, 5, 50, 50, 0},      // exactly on boundary
	}
	for _, c := range cases {
		if got := SafePeriod(c.dist, c.radius, c.ov, c.fv); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SafePeriod(%v,%v,%v,%v) = %v, want %v", c.dist, c.radius, c.ov, c.fv, got, c.want)
		}
	}
}

func TestSafePeriodStationary(t *testing.T) {
	if got := SafePeriod(10, 2, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("stationary objects outside region: SafePeriod = %v, want +Inf", got)
	}
	if got := SafePeriod(1, 2, 0, 0); got != 0 {
		t.Errorf("stationary object inside region: SafePeriod = %v, want 0", got)
	}
}

// Property (safety, §4.2): during the safe period the object cannot be
// inside the query region, for any motion respecting the velocity bounds.
func TestSafePeriodIsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		op := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		fp := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		radius := rng.Float64()*5 + 0.5
		ov := rng.Float64() * 250
		fv := rng.Float64() * 250
		dist := op.Dist(fp)
		if dist <= radius {
			continue
		}
		sp := SafePeriod(dist, radius, ov, fv)
		// Worst-case motion: both approach head-on at max speed. At any
		// t ≤ sp, separation ≥ dist − (ov+fv)·t ≥ radius.
		for _, frac := range []float64{0.25, 0.5, 0.99} {
			tm := sp * frac
			sep := dist - (ov+fv)*tm
			if sep < radius-1e-9 {
				t.Fatalf("object inside region during safe period: sep=%v radius=%v", sep, radius)
			}
		}
	}
}

func TestQueryString(t *testing.T) {
	q := Query{ID: 3, Focal: 9, Region: CircleRegion{R: 1.5}}
	if q.String() == "" {
		t.Error("empty String")
	}
}

func TestMineKey(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := Filter{Seed: 123, Permille: 300}
	for i := 0; i < 50; i++ {
		if !f.Matches(Props{Key: MineKey(f, true, rng)}) {
			t.Fatal("mined accepting key rejected")
		}
		if f.Matches(Props{Key: MineKey(f, false, rng)}) {
			t.Fatal("mined rejecting key accepted")
		}
	}
}

func TestMineKeyPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, c := range []struct {
		f      Filter
		accept bool
	}{
		{Filter{Permille: 0}, true},
		{Filter{Permille: 1000}, false},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MineKey(%+v, %v) should panic", c.f, c.accept)
				}
			}()
			MineKey(c.f, c.accept, rng)
		}()
	}
}

func TestPolygonRegionContains(t *testing.T) {
	// A unit square centered on the binding point.
	sq := NewPolygonRegion([]geo.Point{
		geo.Pt(-1, -1), geo.Pt(1, -1), geo.Pt(1, 1), geo.Pt(-1, 1),
	})
	b := geo.Pt(10, 20)
	inside := []geo.Point{geo.Pt(10, 20), geo.Pt(10.9, 20.9), geo.Pt(9.1, 19.1)}
	outside := []geo.Point{geo.Pt(11.1, 20), geo.Pt(10, 21.1), geo.Pt(8.8, 20)}
	for _, p := range inside {
		if !sq.Contains(b, p) {
			t.Errorf("square should contain %v", p)
		}
	}
	for _, p := range outside {
		if sq.Contains(b, p) {
			t.Errorf("square should not contain %v", p)
		}
	}
}

func TestPolygonRegionConcave(t *testing.T) {
	// An L-shape: the notch at the top-right is outside.
	l := NewPolygonRegion([]geo.Point{
		geo.Pt(0, 0), geo.Pt(4, 0), geo.Pt(4, 2), geo.Pt(2, 2),
		geo.Pt(2, 4), geo.Pt(0, 4),
	})
	b := geo.Pt(0, 0)
	if !l.Contains(b, geo.Pt(1, 3)) {
		t.Error("upper arm of the L should be inside")
	}
	if !l.Contains(b, geo.Pt(3, 1)) {
		t.Error("lower arm of the L should be inside")
	}
	if l.Contains(b, geo.Pt(3, 3)) {
		t.Error("the notch should be outside")
	}
}

func TestPolygonRegionEnclosingRadius(t *testing.T) {
	tri := NewPolygonRegion([]geo.Point{geo.Pt(3, 4), geo.Pt(-1, 0), geo.Pt(0, -2)})
	if got := tri.EnclosingRadius(); math.Abs(got-5) > 1e-12 {
		t.Errorf("EnclosingRadius = %v, want 5", got)
	}
	if tri.String() == "" {
		t.Error("empty String")
	}
}

// Property: polygon containment implies distance ≤ enclosing radius (the
// soundness contract every Region must obey).
func TestPolygonEnclosingRadiusSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(6)
		vs := make([]geo.Point, n)
		for i := range vs {
			vs[i] = geo.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		}
		pr := NewPolygonRegion(vs)
		er := pr.EnclosingRadius()
		b := geo.Pt(rng.Float64()*10, rng.Float64()*10)
		for i := 0; i < 500; i++ {
			p := geo.Pt(b.X+rng.Float64()*12-6, b.Y+rng.Float64()*12-6)
			if pr.Contains(b, p) && b.Dist(p) > er+1e-9 {
				t.Fatalf("point %v inside polygon but at distance %v > %v", p, b.Dist(p), er)
			}
		}
	}
}

func TestNewPolygonRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 2 vertices")
		}
	}()
	NewPolygonRegion([]geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)})
}

func TestNewPolygonRegionCopiesVertices(t *testing.T) {
	vs := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(0, 1)}
	pr := NewPolygonRegion(vs)
	vs[0] = geo.Pt(99, 99)
	if pr.Vertices[0] == geo.Pt(99, 99) {
		t.Fatal("polygon aliases caller's slice")
	}
}

// quick: the safe period is monotone — farther objects are safe longer,
// faster bounds shrink it.
func TestQuickSafePeriodMonotonicity(t *testing.T) {
	f := func(d1, d2, r, v1, v2 float64) bool {
		d1, d2 = math.Abs(d1), math.Abs(d2)
		r = math.Abs(r)
		v1, v2 = math.Abs(v1)+1, math.Abs(v2)+1
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		// Monotone in distance…
		if SafePeriod(d1, r, v1, v2) > SafePeriod(d2, r, v1, v2) {
			return false
		}
		// …and antitone in the speed bound.
		return SafePeriod(d2, r, v1, v2) >= SafePeriod(d2, r, v1*2, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(r.Float64() * 100)
			}
		}}); err != nil {
		t.Error(err)
	}
}

// quick: filter decisions are a pure function of (seed, permille, key).
func TestQuickFilterPurity(t *testing.T) {
	f := func(seed, key uint64, permille uint32) bool {
		fl := Filter{Seed: seed, Permille: permille % 1001}
		a := fl.Matches(Props{Key: key})
		b := fl.Matches(Props{Key: key})
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEntryTime(t *testing.T) {
	// Object 10 miles east of the region, closing at 100 mph relative: it
	// reaches the r=2 boundary after 8 miles = 0.08 h.
	et, ok := EntryTime(geo.Vec(10, 0), geo.Vec(-100, 0), 2)
	if !ok || math.Abs(et-0.08) > 1e-9 {
		t.Errorf("EntryTime = %v, %v; want 0.08, true", et, ok)
	}
	// Already inside.
	if et, ok := EntryTime(geo.Vec(1, 0), geo.Vec(50, 0), 2); !ok || et != 0 {
		t.Errorf("inside: %v, %v", et, ok)
	}
	// Moving away: never enters.
	if _, ok := EntryTime(geo.Vec(10, 0), geo.Vec(100, 0), 2); ok {
		t.Error("diverging trajectories should never enter")
	}
	// Passing by at distance > r: never enters.
	if _, ok := EntryTime(geo.Vec(10, 5), geo.Vec(-100, 0), 2); ok {
		t.Error("trajectory missing the circle should never enter")
	}
	// No relative motion, outside.
	if _, ok := EntryTime(geo.Vec(10, 0), geo.Vec(0, 0), 2); ok {
		t.Error("stationary outside should never enter")
	}
	// Grazing trajectory (tangent): y offset exactly r.
	if _, ok := EntryTime(geo.Vec(10, 2), geo.Vec(-100, 0), 2); !ok {
		t.Error("tangent trajectory should touch the circle")
	}
}

// Property: EntryTime is sound and tight — strictly before it the point is
// outside; at it, on or inside the boundary.
func TestQuickEntryTimeSoundAndTight(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 3000; i++ {
		d := geo.Vec(rng.Float64()*40-20, rng.Float64()*40-20)
		w := geo.Vec(rng.Float64()*200-100, rng.Float64()*200-100)
		r := rng.Float64()*5 + 0.1
		at := func(t float64) float64 {
			x := d.X + w.X*t
			y := d.Y + w.Y*t
			return math.Hypot(x, y)
		}
		et, ok := EntryTime(d, w, r)
		if !ok {
			// Never inside: sample the future.
			for _, tm := range []float64{0, 0.01, 0.1, 1, 10} {
				if at(tm) < r-1e-9 {
					t.Fatalf("EntryTime said never, but inside at t=%v (d=%v w=%v r=%v)", tm, d, w, r)
				}
			}
			continue
		}
		if at(et) > r+1e-6 {
			t.Fatalf("at entry time %v the point is at distance %v > r=%v", et, at(et), r)
		}
		if et > 0 {
			for _, frac := range []float64{0.25, 0.75, 0.99} {
				if at(et*frac) < r-1e-6 {
					t.Fatalf("inside before the entry time (t=%v of %v)", et*frac, et)
				}
			}
		}
	}
}
