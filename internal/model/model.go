// Package model defines the object and query model of the MobiEyes paper
// (§2.2–§2.3): moving objects ⟨oid, pos, vel, {props}⟩, moving queries
// ⟨qid, oid, region, filter⟩, the simulation clock, and the dead-reckoning
// motion state shared by the server-side FOT, the object-side LQT and the
// centralized baselines.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"mobieyes/internal/geo"
)

// ObjectID uniquely identifies a moving object (the paper's oid).
type ObjectID int32

// QueryID uniquely identifies a moving query (the paper's qid).
type QueryID int32

// Time is simulation time in hours. Positions are in miles and velocities
// in miles per hour, so position extrapolation is pos + vel·Δt with Δt in
// hours and no unit conversions anywhere.
type Time float64

// Hours returns t as a plain float64 hour count.
func (t Time) Hours() float64 { return float64(t) }

// Seconds returns t in seconds.
func (t Time) Seconds() float64 { return float64(t) * 3600 }

// FromSeconds converts a duration in seconds to Time.
func FromSeconds(s float64) Time { return Time(s / 3600) }

// Props carries the object-specific properties the paper's query filters
// are evaluated against. A single 64-bit key suffices to model filters of
// any selectivity: the paper fixes selectivity at 0.75 but leaves the
// attribute domain unspecified (see DESIGN.md §3).
type Props struct {
	Key uint64
}

// Filter is a boolean predicate over object properties. It is modeled as a
// keyed hash test accepting a configurable fraction of objects: Matches is
// deterministic, independent across filters with different seeds, and has
// selectivity Permille/1000 over uniformly distributed property keys.
type Filter struct {
	Seed     uint64
	Permille uint32 // acceptance rate in 1/1000 units; 750 = paper default
}

// Matches reports whether the filter accepts an object with the given
// properties.
func (f Filter) Matches(p Props) bool {
	return hash64(p.Key^f.Seed)%1000 < uint64(f.Permille)
}

// MineKey searches rng for a property key the filter accepts (accept=true)
// or rejects (accept=false). It lets applications hand out keys encoding a
// semantic class — "customers looking for a taxi", "friendly units" — such
// that a particular query filter selects exactly that class. It panics for
// filters that accept everything or nothing when asked for the impossible
// polarity.
func MineKey(f Filter, accept bool, rng *rand.Rand) uint64 {
	if (accept && f.Permille == 0) || (!accept && f.Permille >= 1000) {
		panic("model: MineKey asked for a key the filter cannot produce")
	}
	for {
		k := rng.Uint64()
		if f.Matches(Props{Key: k}) == accept {
			return k
		}
	}
}

// hash64 is SplitMix64, a strong and fast 64-bit mixer.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MovingObject is the paper's ⟨oid, pos, vel, {props}⟩ quadruple plus the
// per-object maximum velocity the safe-period optimization relies on.
type MovingObject struct {
	ID     ObjectID
	Pos    geo.Point
	Vel    geo.Vector
	MaxVel float64 // miles/hour; upper bound on |Vel|
	Props  Props
}

// Move advances the object's position by dt at its current velocity.
func (o *MovingObject) Move(dt Time) {
	o.Pos = o.Pos.Add(o.Vel, dt.Hours())
}

// Region is the shape of a moving query's spatial region. Per §2.3 of the
// paper, a region "can be described by a closed shape description such as a
// rectangle, or a circle, or any other closed shape description which has a
// computationally cheap point containment check", bound to the focal object
// through a binding point. Implementations are immutable values.
type Region interface {
	// Contains reports whether p lies inside the region when its binding
	// point sits at binding.
	Contains(binding, p geo.Point) bool
	// EnclosingRadius returns the maximum distance from the binding point
	// to any point of the region. Bounding boxes, monitoring regions and
	// safe periods are computed from this radius, which keeps them sound
	// for every shape.
	EnclosingRadius() float64
}

// CircleRegion is the paper's default query region: a circle of radius R
// centered on the focal object.
type CircleRegion struct {
	R float64
}

// Contains implements Region.
func (c CircleRegion) Contains(binding, p geo.Point) bool {
	return binding.Dist2(p) <= c.R*c.R
}

// EnclosingRadius implements Region.
func (c CircleRegion) EnclosingRadius() float64 { return c.R }

// String implements fmt.Stringer.
func (c CircleRegion) String() string { return fmt.Sprintf("circle(r=%.2f)", c.R) }

// RectRegion is an axis-aligned rectangular query region of the given
// extents, bound to the focal object at its center.
type RectRegion struct {
	W, H float64
}

// Contains implements Region.
func (r RectRegion) Contains(binding, p geo.Point) bool {
	return p.X >= binding.X-r.W/2 && p.X <= binding.X+r.W/2 &&
		p.Y >= binding.Y-r.H/2 && p.Y <= binding.Y+r.H/2
}

// EnclosingRadius implements Region.
func (r RectRegion) EnclosingRadius() float64 {
	return math.Hypot(r.W/2, r.H/2)
}

// String implements fmt.Stringer.
func (r RectRegion) String() string { return fmt.Sprintf("rect(%.2fx%.2f)", r.W, r.H) }

// PolygonRegion is a simple polygon query region whose vertices are given
// relative to the binding point (the focal object's position). Vertices may
// describe convex or concave polygons; self-intersecting polygons give
// even-odd semantics.
type PolygonRegion struct {
	Vertices []geo.Point
}

// NewPolygonRegion returns a polygon region. It panics with fewer than
// three vertices — not a meaningful region, hence a programming error.
func NewPolygonRegion(vertices []geo.Point) PolygonRegion {
	if len(vertices) < 3 {
		panic(fmt.Sprintf("model: polygon with %d vertices", len(vertices)))
	}
	return PolygonRegion{Vertices: append([]geo.Point(nil), vertices...)}
}

// Contains implements Region with an even-odd ray cast.
func (pr PolygonRegion) Contains(binding, p geo.Point) bool {
	// Translate the query point into the polygon's local frame.
	x := p.X - binding.X
	y := p.Y - binding.Y
	inside := false
	n := len(pr.Vertices)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := pr.Vertices[i], pr.Vertices[j]
		if (vi.Y > y) != (vj.Y > y) &&
			x < (vj.X-vi.X)*(y-vi.Y)/(vj.Y-vi.Y)+vi.X {
			inside = !inside
		}
	}
	return inside
}

// EnclosingRadius implements Region: the farthest vertex from the binding
// point bounds every point of the polygon.
func (pr PolygonRegion) EnclosingRadius() float64 {
	var max float64
	for _, v := range pr.Vertices {
		if d := math.Hypot(v.X, v.Y); d > max {
			max = d
		}
	}
	return max
}

// String implements fmt.Stringer.
func (pr PolygonRegion) String() string {
	return fmt.Sprintf("polygon(%d vertices)", len(pr.Vertices))
}

// Query is the paper's moving query ⟨qid, oid, region, filter⟩: a spatial
// region bound to the focal object plus a filter over target properties.
type Query struct {
	ID     QueryID
	Focal  ObjectID
	Region Region
	Filter Filter
}

// String implements fmt.Stringer.
func (q Query) String() string {
	return fmt.Sprintf("MQ(q%d focal=o%d %v)", q.ID, q.Focal, q.Region)
}

// MotionState is the dead-reckoning record ⟨pos, vel, tm⟩ that a focal
// object last relayed: the position and velocity vector it sampled at time
// Tm. Everyone holding a MotionState can predict the focal object's
// position at any later time.
type MotionState struct {
	Pos geo.Point
	Vel geo.Vector
	Tm  Time
}

// PredictAt extrapolates the position at time t assuming constant velocity
// since Tm (the paper's motion model footnote: modeling inaccuracy is not
// considered; motion is piecewise linear).
func (m MotionState) PredictAt(t Time) geo.Point {
	return m.Pos.Add(m.Vel, float64(t-m.Tm))
}

// Deviation returns the distance between the actual position at time t and
// the position predicted from this state — the quantity the paper's dead
// reckoning compares against the threshold Δ (§3.4).
func (m MotionState) Deviation(actual geo.Point, t Time) float64 {
	return m.PredictAt(t).Dist(actual)
}

// NeedsRelay reports whether the deviation at time t exceeds the dead
// reckoning threshold, i.e. whether the velocity vector change is
// "significant" and must be relayed.
func (m MotionState) NeedsRelay(actual geo.Point, t Time, threshold float64) bool {
	return m.Deviation(actual, t) > threshold
}

// EntryTime returns the earliest t ≥ 0 (in hours) at which a point starting
// at relative position d with relative velocity w (both relative to a
// circle of radius r centered at the origin) is inside the circle, and
// whether such a time exists. A point already inside returns 0. Both
// trajectories must be linear — exactly the regime between velocity-vector
// changes in the MobiEyes motion model.
//
// It solves |d + w·t|² = r²:  (w·w)t² + 2(d·w)t + (d·d − r²) = 0.
func EntryTime(d, w geo.Vector, r float64) (float64, bool) {
	c := d.X*d.X + d.Y*d.Y - r*r
	if c <= 0 {
		return 0, true // already inside
	}
	a := w.X*w.X + w.Y*w.Y
	b := 2 * (d.X*w.X + d.Y*w.Y)
	if a == 0 {
		return 0, false // no relative motion, outside forever
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, false // the trajectory misses the circle
	}
	sq := math.Sqrt(disc)
	t1 := (-b - sq) / (2 * a)
	if t1 >= 0 {
		return t1, true
	}
	t2 := (-b + sq) / (2 * a)
	if t2 >= 0 {
		// Started inside the swept interval? c > 0 rules that out; t2 ≥ 0 >
		// t1 means the circle was exited in the past — no future entry.
		return 0, false
	}
	return 0, false
}

// SafePeriod computes the paper's safe period sp(o, q) (§4.2): a worst-case
// lower bound, in hours, on the time before object o at distance dist from
// the focal object of a query with radius r can be inside the query region,
// given both objects' maximum velocities. A non-positive result means the
// object may already be inside (no safe period).
func SafePeriod(dist, radius, oMaxVel, focalMaxVel float64) float64 {
	closing := oMaxVel + focalMaxVel
	if closing <= 0 {
		// Neither object can move; the object is safe forever unless it is
		// already inside.
		if dist > radius {
			return math.Inf(1)
		}
		return 0
	}
	sp := (dist - radius) / closing
	if sp < 0 {
		return 0
	}
	return sp
}
