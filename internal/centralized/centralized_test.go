package centralized

import (
	"math"
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

var acceptAll = model.Filter{Seed: 1, Permille: 1000}

// world is a deterministic set of moving objects for baseline testing.
type world struct {
	rng  *rand.Rand
	objs []*model.MovingObject
}

func newWorld(n int, seed int64) *world {
	w := &world{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < n; i++ {
		o := &model.MovingObject{
			ID:     model.ObjectID(i + 1),
			Pos:    geo.Pt(w.rng.Float64()*100, w.rng.Float64()*100),
			MaxVel: 200,
			Props:  model.Props{Key: w.rng.Uint64()},
		}
		w.objs = append(w.objs, o)
	}
	return w
}

func (w *world) perturb(n int) {
	for i := 0; i < n; i++ {
		o := w.objs[w.rng.Intn(len(w.objs))]
		ang := w.rng.Float64() * 2 * math.Pi
		sp := w.rng.Float64() * o.MaxVel
		o.Vel = geo.Vec(sp*math.Cos(ang), sp*math.Sin(ang))
	}
}

func (w *world) move(dt model.Time) {
	for _, o := range w.objs {
		o.Move(dt)
	}
}

// exact computes the reference result by brute force.
func (w *world) exact(q model.Query) map[model.ObjectID]bool {
	var focal *model.MovingObject
	for _, o := range w.objs {
		if o.ID == q.Focal {
			focal = o
			break
		}
	}
	res := map[model.ObjectID]bool{}
	if focal == nil {
		return res
	}
	for _, o := range w.objs {
		if q.Region.Contains(focal.Pos, o.Pos) && q.Filter.Matches(o.Props) {
			res[o.ID] = true
		}
	}
	return res
}

func sameResult(t *testing.T, tag string, got []model.ObjectID, want map[model.ObjectID]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids, want %d", tag, len(got), len(want))
	}
	for _, oid := range got {
		if !want[oid] {
			t.Fatalf("%s: unexpected object %d in result", tag, oid)
		}
	}
}

func TestObjectIndexMatchesExact(t *testing.T) {
	w := newWorld(200, 1)
	s := NewObjectIndex()
	queries := []model.Query{
		{ID: 1, Focal: 1, Region: model.CircleRegion{R: 5}, Filter: acceptAll},
		{ID: 2, Focal: 2, Region: model.CircleRegion{R: 10}, Filter: model.Filter{Seed: 9, Permille: 750}},
		{ID: 3, Focal: 1, Region: model.CircleRegion{R: 2}, Filter: model.Filter{Seed: 4, Permille: 300}},
	}
	for _, q := range queries {
		s.InstallQuery(q)
	}
	if s.NumQueries() != 3 {
		t.Fatalf("NumQueries = %d", s.NumQueries())
	}
	for step := 0; step < 20; step++ {
		w.perturb(40)
		w.move(model.FromSeconds(30))
		for _, o := range w.objs {
			s.ReportPosition(o.ID, o.Pos, o.Props)
		}
		s.EvaluateAll()
		for _, q := range queries {
			sameResult(t, "object index", s.Result(q.ID), w.exact(q))
		}
	}
}

func TestObjectIndexRemoveQuery(t *testing.T) {
	s := NewObjectIndex()
	s.InstallQuery(model.Query{ID: 1, Focal: 1, Region: model.CircleRegion{R: 5}, Filter: acceptAll})
	s.RemoveQuery(1)
	if s.NumQueries() != 0 {
		t.Fatal("query not removed")
	}
	if s.Result(1) != nil {
		t.Fatal("result of removed query not nil")
	}
}

func TestObjectIndexSkipsUnmovedObjects(t *testing.T) {
	s := NewObjectIndex()
	s.ReportPosition(1, geo.Pt(5, 5), model.Props{})
	// Reporting the same position again must be a no-op (no index churn).
	s.ReportPosition(1, geo.Pt(5, 5), model.Props{})
	s.InstallQuery(model.Query{ID: 1, Focal: 1, Region: model.CircleRegion{R: 1}, Filter: acceptAll})
	s.EvaluateAll()
	if got := s.Result(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Result = %v", got)
	}
}

func TestQueryIndexMatchesExactEventually(t *testing.T) {
	// The query index updates differentially per report; after all objects
	// of a step have reported (focal objects included), results are exact
	// for objects that reported after the focal. To compare exactly, report
	// focal objects first — then every probe sees fresh query rectangles.
	w := newWorld(200, 2)
	s := NewQueryIndex()
	queries := []model.Query{
		{ID: 1, Focal: 1, Region: model.CircleRegion{R: 5}, Filter: acceptAll},
		{ID: 2, Focal: 2, Region: model.CircleRegion{R: 8}, Filter: model.Filter{Seed: 3, Permille: 750}},
	}
	for _, q := range queries {
		s.InstallQuery(q)
	}
	focalIDs := map[model.ObjectID]bool{1: true, 2: true}
	for step := 0; step < 20; step++ {
		w.perturb(40)
		w.move(model.FromSeconds(30))
		for _, o := range w.objs { // focals first
			if focalIDs[o.ID] {
				s.ReportPosition(o.ID, o.Pos, o.Props)
			}
		}
		for _, o := range w.objs {
			if !focalIDs[o.ID] {
				s.ReportPosition(o.ID, o.Pos, o.Props)
			}
		}
		for _, q := range queries {
			sameResult(t, "query index", s.Result(q.ID), w.exact(q))
		}
	}
}

func TestQueryIndexInstallBeforeFocalKnown(t *testing.T) {
	s := NewQueryIndex()
	s.InstallQuery(model.Query{ID: 1, Focal: 7, Region: model.CircleRegion{R: 3}, Filter: acceptAll})
	// Probing before the focal reported: no crash, empty result.
	s.ReportPosition(2, geo.Pt(1, 1), model.Props{})
	if got := s.Result(1); len(got) != 0 {
		t.Fatalf("Result = %v, want empty", got)
	}
	// Focal reports; object 2 reports again; both should be in the result.
	s.ReportPosition(7, geo.Pt(1, 1), model.Props{})
	s.ReportPosition(2, geo.Pt(1.5, 1), model.Props{})
	got := s.Result(1)
	if len(got) != 2 {
		t.Fatalf("Result = %v, want [2 7]", got)
	}
}

func TestQueryIndexRemoveQuery(t *testing.T) {
	s := NewQueryIndex()
	s.ReportPosition(1, geo.Pt(5, 5), model.Props{})
	s.InstallQuery(model.Query{ID: 1, Focal: 1, Region: model.CircleRegion{R: 3}, Filter: acceptAll})
	s.ReportPosition(2, geo.Pt(6, 5), model.Props{})
	if len(s.Result(1)) == 0 {
		t.Fatal("precondition: non-empty result")
	}
	s.RemoveQuery(1)
	if s.NumQueries() != 0 {
		t.Fatal("query not removed")
	}
	// A later report must not resurrect the query.
	s.ReportPosition(2, geo.Pt(5.5, 5), model.Props{})
	if got := s.Result(1); got != nil {
		t.Fatalf("Result after removal = %v", got)
	}
}

func TestQueryIndexMembershipLeave(t *testing.T) {
	s := NewQueryIndex()
	s.ReportPosition(1, geo.Pt(0, 0), model.Props{})
	s.InstallQuery(model.Query{ID: 1, Focal: 1, Region: model.CircleRegion{R: 2}, Filter: acceptAll})
	// Differential semantics: objects join results when they report, so the
	// focal reports once more after installation.
	s.ReportPosition(1, geo.Pt(0, 0), model.Props{})
	s.ReportPosition(2, geo.Pt(1, 0), model.Props{})
	if got := s.Result(1); len(got) != 2 {
		t.Fatalf("Result = %v", got)
	}
	// Object 2 leaves.
	s.ReportPosition(2, geo.Pt(50, 50), model.Props{})
	got := s.Result(1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Result after leave = %v", got)
	}
}

func TestNaiveServer(t *testing.T) {
	w := newWorld(100, 3)
	s := NewNaiveServer()
	q := model.Query{ID: 1, Focal: 5, Region: model.CircleRegion{R: 10}, Filter: model.Filter{Seed: 8, Permille: 750}}
	s.InstallQuery(q)
	for step := 0; step < 5; step++ {
		w.perturb(20)
		w.move(model.FromSeconds(30))
		for _, o := range w.objs {
			s.ReportPosition(o.ID, o.Pos, o.Props)
		}
		sameResult(t, "naive", s.Result(1), w.exact(q))
	}
	if s.Result(99) != nil {
		t.Error("unknown query result not nil")
	}
}

func TestCentralOptimalExtrapolation(t *testing.T) {
	s := NewCentralOptimal()
	s.InstallQuery(model.Query{ID: 1, Focal: 1, Region: model.CircleRegion{R: 3}, Filter: acceptAll})
	// Focal at origin, still; object 2 moving east at 60 mph from (-5, 0).
	s.ReportVelocity(1, geo.Pt(0, 0), geo.Vec(0, 0), 0, model.Props{})
	s.ReportVelocity(2, geo.Pt(-5, 0), geo.Vec(60, 0), 0, model.Props{})

	if got := s.Result(1, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("t=0: Result = %v", got)
	}
	// After 4 minutes object 2 is at (-1, 0): inside radius 3.
	if got := s.Result(1, model.Time(4.0/60)); len(got) != 2 {
		t.Fatalf("t=4min: Result = %v", got)
	}
	// After 10 minutes it is at (5, 0): outside again.
	if got := s.Result(1, model.Time(10.0/60)); len(got) != 1 {
		t.Fatalf("t=10min: Result = %v", got)
	}
	// Positions extrapolate.
	p, ok := s.PositionAt(2, model.Time(1))
	if !ok || p.Dist(geo.Pt(55, 0)) > 1e-9 {
		t.Fatalf("PositionAt = %v, %v", p, ok)
	}
	if _, ok := s.PositionAt(99, 0); ok {
		t.Error("unknown object extrapolated")
	}
}

// TestCentralOptimalMatchesExactWithImmediateReports: when every velocity
// change is reported instantly, extrapolated results equal brute force.
func TestCentralOptimalMatchesExact(t *testing.T) {
	w := newWorld(150, 4)
	s := NewCentralOptimal()
	q := model.Query{ID: 1, Focal: 1, Region: model.CircleRegion{R: 8}, Filter: acceptAll}
	s.InstallQuery(q)
	now := model.Time(0)
	for _, o := range w.objs {
		s.ReportVelocity(o.ID, o.Pos, o.Vel, now, o.Props)
	}
	last := make(map[model.ObjectID]geo.Vector)
	for _, o := range w.objs {
		last[o.ID] = o.Vel
	}
	for step := 0; step < 20; step++ {
		w.perturb(30)
		// Report only actual changes (the dead-reckoning ideal with Δ→0).
		for _, o := range w.objs {
			if o.Vel != last[o.ID] {
				s.ReportVelocity(o.ID, o.Pos, o.Vel, now, o.Props)
				last[o.ID] = o.Vel
			}
		}
		w.move(model.FromSeconds(30))
		now += model.FromSeconds(30)
		sameResult(t, "central optimal", s.Result(1, now), w.exact(q))
	}
}

func BenchmarkObjectIndexStep(b *testing.B) {
	// One full step of the object-index server: 10k position updates plus
	// evaluation of 1k queries (the paper's default scales).
	w := newWorld(10000, 5)
	s := NewObjectIndex()
	for i := 0; i < 1000; i++ {
		s.InstallQuery(model.Query{
			ID: model.QueryID(i + 1), Focal: model.ObjectID(i%10000 + 1),
			Region: model.CircleRegion{R: 3}, Filter: acceptAll,
		})
	}
	for _, o := range w.objs {
		s.ReportPosition(o.ID, o.Pos, o.Props)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.perturb(1000)
		w.move(model.FromSeconds(30))
		for _, o := range w.objs {
			s.ReportPosition(o.ID, o.Pos, o.Props)
		}
		s.EvaluateAll()
	}
}

func BenchmarkQueryIndexStep(b *testing.B) {
	w := newWorld(10000, 6)
	s := NewQueryIndex()
	for i := 0; i < 1000; i++ {
		s.InstallQuery(model.Query{
			ID: model.QueryID(i + 1), Focal: model.ObjectID(i%10000 + 1),
			Region: model.CircleRegion{R: 3}, Filter: acceptAll,
		})
	}
	for _, o := range w.objs {
		s.ReportPosition(o.ID, o.Pos, o.Props)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.perturb(1000)
		w.move(model.FromSeconds(30))
		for _, o := range w.objs {
			s.ReportPosition(o.ID, o.Pos, o.Props)
		}
	}
}
