package centralized

import (
	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

// NaiveServer is the §5.3 "naïve" messaging baseline: every object reports
// its position to the server at each time step if it moved. The server
// merely stores the latest positions; Evaluate computes exact results by
// brute force when asked (its cost is not part of the paper's comparison —
// the naïve scheme is a messaging and power baseline).
type NaiveServer struct {
	objs    map[model.ObjectID]objInfo
	queries map[model.QueryID]model.Query
}

// NewNaiveServer returns an empty naïve server.
func NewNaiveServer() *NaiveServer {
	return &NaiveServer{
		objs:    make(map[model.ObjectID]objInfo),
		queries: make(map[model.QueryID]model.Query),
	}
}

// InstallQuery registers a query.
func (s *NaiveServer) InstallQuery(q model.Query) { s.queries[q.ID] = q }

// ReportPosition stores the object's latest position.
func (s *NaiveServer) ReportPosition(oid model.ObjectID, pos geo.Point, props model.Props) {
	s.objs[oid] = objInfo{pos: pos, props: props}
}

// Result computes a query's exact result from stored positions.
func (s *NaiveServer) Result(qid model.QueryID) []model.ObjectID {
	q, ok := s.queries[qid]
	if !ok {
		return nil
	}
	focal, ok := s.objs[q.Focal]
	if !ok {
		return nil
	}
	res := make(map[model.ObjectID]struct{})
	for oid, o := range s.objs {
		if q.Region.Contains(focal.pos, o.pos) && q.Filter.Matches(o.props) {
			res[oid] = struct{}{}
		}
	}
	return sortedResult(res)
}

// CentralOptimal is the §5.3 "central optimal" baseline: each object
// reports its velocity vector (with position and timestamp) only when it
// changed significantly, and the server extrapolates positions — "the
// minimum amount of information required for a centralized approach to
// evaluate queries unless there is an assumption about object trajectories".
type CentralOptimal struct {
	states  map[model.ObjectID]model.MotionState
	props   map[model.ObjectID]model.Props
	queries map[model.QueryID]model.Query
}

// NewCentralOptimal returns an empty central-optimal server.
func NewCentralOptimal() *CentralOptimal {
	return &CentralOptimal{
		states:  make(map[model.ObjectID]model.MotionState),
		props:   make(map[model.ObjectID]model.Props),
		queries: make(map[model.QueryID]model.Query),
	}
}

// InstallQuery registers a query.
func (s *CentralOptimal) InstallQuery(q model.Query) { s.queries[q.ID] = q }

// ReportVelocity ingests a significant velocity-vector change.
func (s *CentralOptimal) ReportVelocity(oid model.ObjectID, pos geo.Point, vel geo.Vector, tm model.Time, props model.Props) {
	s.states[oid] = model.MotionState{Pos: pos, Vel: vel, Tm: tm}
	s.props[oid] = props
}

// PositionAt extrapolates an object's position at time t.
func (s *CentralOptimal) PositionAt(oid model.ObjectID, t model.Time) (geo.Point, bool) {
	st, ok := s.states[oid]
	if !ok {
		return geo.Point{}, false
	}
	return st.PredictAt(t), true
}

// Result computes a query's result at time t from extrapolated positions.
func (s *CentralOptimal) Result(qid model.QueryID, t model.Time) []model.ObjectID {
	q, ok := s.queries[qid]
	if !ok {
		return nil
	}
	focalPos, ok := s.PositionAt(q.Focal, t)
	if !ok {
		return nil
	}
	res := make(map[model.ObjectID]struct{})
	for oid, st := range s.states {
		if q.Region.Contains(focalPos, st.PredictAt(t)) && q.Filter.Matches(s.props[oid]) {
			res[oid] = struct{}{}
		}
	}
	return sortedResult(res)
}
