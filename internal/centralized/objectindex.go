// Package centralized implements the four comparison systems of the
// paper's evaluation (§5): the two centralized query processors built on a
// spatial index — the object index and the query index (§5.2) — and the two
// messaging baselines, naïve position reporting and the "central optimal"
// velocity-vector reporting scheme (§5.3).
//
// All four share the premise the paper ascribes to centralized processing:
// object location updates are shipped to the server and manipulated there.
// The object and query indexes use the R*-tree substrate (internal/rtree),
// matching the paper's choice of index structure.
package centralized

import (
	"sort"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/rtree"
)

// objInfo is the server's record of one reporting object.
type objInfo struct {
	pos   geo.Point
	props model.Props
}

// ObjectIndex is the first centralized approach of §5.2: an R*-tree over
// object positions, updated as position reports arrive; periodically all
// queries are evaluated against the index.
type ObjectIndex struct {
	tree    *rtree.Tree
	objs    map[model.ObjectID]objInfo
	queries map[model.QueryID]model.Query
	results map[model.QueryID]map[model.ObjectID]struct{}
	buf     []int64 // scratch for searches
}

// NewObjectIndex returns an empty object-index server.
func NewObjectIndex() *ObjectIndex {
	return &ObjectIndex{
		tree:    rtree.New(),
		objs:    make(map[model.ObjectID]objInfo),
		queries: make(map[model.QueryID]model.Query),
		results: make(map[model.QueryID]map[model.ObjectID]struct{}),
	}
}

// InstallQuery registers a moving query.
func (s *ObjectIndex) InstallQuery(q model.Query) {
	s.queries[q.ID] = q
	s.results[q.ID] = make(map[model.ObjectID]struct{})
}

// RemoveQuery drops a query.
func (s *ObjectIndex) RemoveQuery(qid model.QueryID) {
	delete(s.queries, qid)
	delete(s.results, qid)
}

// NumQueries returns the number of installed queries.
func (s *ObjectIndex) NumQueries() int { return len(s.queries) }

// ReportPosition ingests one position report: the R*-tree entry for the
// object moves to its new position. This is the dominant server cost of the
// approach ("it is costly due to the frequent updates required on the
// spatial index over object locations").
func (s *ObjectIndex) ReportPosition(oid model.ObjectID, pos geo.Point, props model.Props) {
	pointBox := geo.NewRect(pos.X, pos.Y, 0, 0)
	if old, ok := s.objs[oid]; ok {
		if old.pos == pos {
			return
		}
		s.tree.Update(int64(oid), geo.NewRect(old.pos.X, old.pos.Y, 0, 0), pointBox)
	} else {
		s.tree.Insert(rtree.Item{ID: int64(oid), Box: pointBox})
	}
	s.objs[oid] = objInfo{pos: pos, props: props}
}

// EvaluateAll recomputes every query's result from the object index: range
// search with the query circle's bounding rectangle, then exact circle and
// filter checks.
func (s *ObjectIndex) EvaluateAll() {
	for qid, q := range s.queries {
		res := make(map[model.ObjectID]struct{})
		focal, ok := s.objs[q.Focal]
		if !ok {
			s.results[qid] = res
			continue
		}
		er := q.Region.EnclosingRadius()
		searchBox := geo.NewRect(focal.pos.X-er, focal.pos.Y-er, 2*er, 2*er)
		s.buf = s.tree.Search(searchBox, s.buf[:0])
		for _, id := range s.buf {
			oid := model.ObjectID(id)
			o := s.objs[oid]
			if q.Region.Contains(focal.pos, o.pos) && q.Filter.Matches(o.props) {
				res[oid] = struct{}{}
			}
		}
		s.results[qid] = res
	}
}

// Result returns the last computed result of a query, sorted.
func (s *ObjectIndex) Result(qid model.QueryID) []model.ObjectID {
	return sortedResult(s.results[qid])
}

func sortedResult(set map[model.ObjectID]struct{}) []model.ObjectID {
	if set == nil {
		return nil
	}
	out := make([]model.ObjectID, 0, len(set))
	for oid := range set {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
