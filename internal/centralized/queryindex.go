package centralized

import (
	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/rtree"
)

// QueryIndex is the second centralized approach of §5.2: an R*-tree over
// the spatial regions of the queries. When a focal object's new position
// arrives, the affected query rectangles move in the index; when any
// object's position arrives, it is run through the query index and the
// results of the queries it entered or left are updated differentially.
type QueryIndex struct {
	tree    *rtree.Tree
	queries map[model.QueryID]*qiEntry
	byFocal map[model.ObjectID][]model.QueryID
	objs    map[model.ObjectID]objInfo
	// membership[oid] is the set of queries whose results contain oid.
	membership map[model.ObjectID]map[model.QueryID]struct{}
	results    map[model.QueryID]map[model.ObjectID]struct{}
	buf        []int64
}

type qiEntry struct {
	query model.Query
	box   geo.Rect // current indexed rectangle (circle bounding box)
	valid bool     // false until the focal object's position is known
}

// NewQueryIndex returns an empty query-index server.
func NewQueryIndex() *QueryIndex {
	return &QueryIndex{
		tree:       rtree.New(),
		queries:    make(map[model.QueryID]*qiEntry),
		byFocal:    make(map[model.ObjectID][]model.QueryID),
		objs:       make(map[model.ObjectID]objInfo),
		membership: make(map[model.ObjectID]map[model.QueryID]struct{}),
		results:    make(map[model.QueryID]map[model.ObjectID]struct{}),
	}
}

// InstallQuery registers a moving query. The query enters the spatial index
// as soon as its focal object's first position report arrives.
func (s *QueryIndex) InstallQuery(q model.Query) {
	e := &qiEntry{query: q}
	s.queries[q.ID] = e
	s.byFocal[q.Focal] = append(s.byFocal[q.Focal], q.ID)
	s.results[q.ID] = make(map[model.ObjectID]struct{})
	if focal, ok := s.objs[q.Focal]; ok {
		e.box = regionBox(q, focal.pos)
		e.valid = true
		s.tree.Insert(rtree.Item{ID: int64(q.ID), Box: e.box})
	}
}

// RemoveQuery drops a query from the index and from all memberships.
func (s *QueryIndex) RemoveQuery(qid model.QueryID) {
	e, ok := s.queries[qid]
	if !ok {
		return
	}
	if e.valid {
		s.tree.Delete(rtree.Item{ID: int64(qid), Box: e.box})
	}
	qs := s.byFocal[e.query.Focal]
	for i, id := range qs {
		if id == qid {
			s.byFocal[e.query.Focal] = append(qs[:i], qs[i+1:]...)
			break
		}
	}
	for oid := range s.results[qid] {
		delete(s.membership[oid], qid)
	}
	delete(s.queries, qid)
	delete(s.results, qid)
}

// NumQueries returns the number of installed queries.
func (s *QueryIndex) NumQueries() int { return len(s.queries) }

// ReportPosition ingests one position report. If the object is the focal
// object of queries, their rectangles move in the index first ("the main
// cost of this approach is to update the spatial index when focal objects
// of the queries change their positions"); then the object is probed
// against the index and the results are updated differentially.
func (s *QueryIndex) ReportPosition(oid model.ObjectID, pos geo.Point, props model.Props) {
	s.objs[oid] = objInfo{pos: pos, props: props}
	for _, qid := range s.byFocal[oid] {
		e := s.queries[qid]
		newBox := regionBox(e.query, pos)
		if e.valid {
			if newBox != e.box {
				s.tree.Update(int64(qid), e.box, newBox)
				e.box = newBox
			}
		} else {
			e.box = newBox
			e.valid = true
			s.tree.Insert(rtree.Item{ID: int64(qid), Box: e.box})
		}
	}

	// Differential evaluation: probe the query index with the point.
	s.buf = s.tree.Search(geo.NewRect(pos.X, pos.Y, 0, 0), s.buf[:0])
	newSet := make(map[model.QueryID]struct{}, len(s.buf))
	for _, id := range s.buf {
		qid := model.QueryID(id)
		e := s.queries[qid]
		focal, ok := s.objs[e.query.Focal]
		if !ok {
			continue
		}
		if e.query.Region.Contains(focal.pos, pos) && e.query.Filter.Matches(props) {
			newSet[qid] = struct{}{}
		}
	}
	old := s.membership[oid]
	for qid := range old {
		if _, still := newSet[qid]; !still {
			delete(s.results[qid], oid)
		}
	}
	for qid := range newSet {
		if _, had := old[qid]; !had {
			if res, ok := s.results[qid]; ok {
				res[oid] = struct{}{}
			}
		}
	}
	s.membership[oid] = newSet
}

// Result returns the current result of a query, sorted.
func (s *QueryIndex) Result(qid model.QueryID) []model.ObjectID {
	return sortedResult(s.results[qid])
}

// regionBox returns the bounding rectangle of a query's region when its
// focal object sits at pos.
func regionBox(q model.Query, pos geo.Point) geo.Rect {
	er := q.Region.EnclosingRadius()
	return geo.NewRect(pos.X-er, pos.Y-er, 2*er, 2*er)
}
