// Package trace records and replays object mobility. A Trace captures the
// initial population (positions, velocities, speed bounds, property keys)
// and the exact sequence of per-step velocity changes of a workload run, in
// a compact binary format. Replaying a trace reproduces every trajectory
// bit-for-bit, which makes captured scenarios portable: a failing protocol
// run can be recorded once and replayed deterministically in a regression
// test, independent of the random process that produced it.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/workload"
)

// magic identifies the trace format; version gates incompatible changes.
const (
	magic   = "MOBT"
	version = uint16(1)
)

// ObjectInit is the initial state of one recorded object.
type ObjectInit struct {
	ID       model.ObjectID
	Pos      geo.Point
	Vel      geo.Vector
	MaxVel   float64
	PropsKey uint64
}

// VelocityChange is one scripted velocity assignment: at the step it
// belongs to, object Index (into the Objects slice) switches to Vel before
// moving.
type VelocityChange struct {
	Index uint32
	Vel   geo.Vector
}

// Step is the set of velocity changes applied at the start of one step.
type Step struct {
	Changes []VelocityChange
}

// Trace is a recorded mobility scenario.
type Trace struct {
	StepSeconds float64
	Objects     []ObjectInit
	Steps       []Step
}

// Record runs w's mobility process for the given number of steps and
// captures it: the returned trace replays to exactly the trajectories the
// workload produced. The workload's objects are advanced as a side effect
// (recording *is* a run).
func Record(w *workload.Workload, steps int) *Trace {
	t := &Trace{StepSeconds: w.Config().StepSeconds}
	if t.StepSeconds <= 0 {
		t.StepSeconds = 30
	}
	for _, o := range w.Objects {
		t.Objects = append(t.Objects, ObjectInit{
			ID: o.ID, Pos: o.Pos, Vel: o.Vel, MaxVel: o.MaxVel, PropsKey: o.Props.Key,
		})
	}
	dt := model.FromSeconds(t.StepSeconds)
	for s := 0; s < steps; s++ {
		// Mirror the engine's step order: bounce, perturb, move. Bounces
		// and perturbations both change velocities; capturing the final
		// velocity of every touched object keeps replay exact.
		before := make([]geo.Vector, len(w.Objects))
		for i, o := range w.Objects {
			before[i] = o.Vel
		}
		w.BounceAtBorders()
		w.PerturbStep()
		var st Step
		for i, o := range w.Objects {
			if o.Vel != before[i] {
				st.Changes = append(st.Changes, VelocityChange{Index: uint32(i), Vel: o.Vel})
			}
		}
		t.Steps = append(t.Steps, st)
		for _, o := range w.Objects {
			o.Move(dt)
		}
	}
	return t
}

// Player replays a trace step by step over a fresh copy of the recorded
// population.
type Player struct {
	trace   *Trace
	Objects []*model.MovingObject
	step    int
}

// NewPlayer returns a player positioned before the first step.
func NewPlayer(t *Trace) *Player {
	p := &Player{trace: t}
	for _, oi := range t.Objects {
		p.Objects = append(p.Objects, &model.MovingObject{
			ID: oi.ID, Pos: oi.Pos, Vel: oi.Vel, MaxVel: oi.MaxVel,
			Props: model.Props{Key: oi.PropsKey},
		})
	}
	return p
}

// Done reports whether every recorded step has been replayed.
func (p *Player) Done() bool { return p.step >= len(p.trace.Steps) }

// Step applies the next recorded step: scripted velocity changes, then
// motion. It returns the indices of objects whose velocity changed, or
// false when the trace is exhausted.
func (p *Player) Step() ([]uint32, bool) {
	if p.Done() {
		return nil, false
	}
	st := p.trace.Steps[p.step]
	p.step++
	changed := make([]uint32, 0, len(st.Changes))
	for _, ch := range st.Changes {
		p.Objects[ch.Index].Vel = ch.Vel
		changed = append(changed, ch.Index)
	}
	dt := model.FromSeconds(p.trace.StepSeconds)
	for _, o := range p.Objects {
		o.Move(dt)
	}
	return changed, true
}

// Write serializes the trace. The format is little-endian binary:
// magic, version, step seconds, object table, then per-step change lists.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU16 := func(v uint16) { var b [2]byte; le.PutUint16(b[:], v); bw.Write(b[:]) }
	writeU32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); bw.Write(b[:]) }
	writeU64 := func(v uint64) { var b [8]byte; le.PutUint64(b[:], v); bw.Write(b[:]) }
	writeF := func(v float64) { writeU64(math.Float64bits(v)) }

	writeU16(version)
	writeF(t.StepSeconds)
	writeU32(uint32(len(t.Objects)))
	for _, o := range t.Objects {
		writeU32(uint32(o.ID))
		writeF(o.Pos.X)
		writeF(o.Pos.Y)
		writeF(o.Vel.X)
		writeF(o.Vel.Y)
		writeF(o.MaxVel)
		writeU64(o.PropsKey)
	}
	writeU32(uint32(len(t.Steps)))
	for _, st := range t.Steps {
		writeU32(uint32(len(st.Changes)))
		for _, ch := range st.Changes {
			writeU32(ch.Index)
			writeF(ch.Vel.X)
			writeF(ch.Vel.Y)
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic (not a trace file)")
	}
	le := binary.LittleEndian
	readU16 := func() (uint16, error) {
		var b [2]byte
		_, err := io.ReadFull(br, b[:])
		return le.Uint16(b[:]), err
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		_, err := io.ReadFull(br, b[:])
		return le.Uint32(b[:]), err
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		_, err := io.ReadFull(br, b[:])
		return le.Uint64(b[:]), err
	}
	readF := func() (float64, error) {
		v, err := readU64()
		return math.Float64frombits(v), err
	}

	ver, err := readU16()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	t := &Trace{}
	if t.StepSeconds, err = readF(); err != nil {
		return nil, fmt.Errorf("trace: reading step seconds: %w", err)
	}
	if t.StepSeconds <= 0 || math.IsNaN(t.StepSeconds) {
		return nil, fmt.Errorf("trace: invalid step seconds %v", t.StepSeconds)
	}
	nObj, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("trace: reading object count: %w", err)
	}
	const maxObjects = 10_000_000
	if nObj > maxObjects {
		return nil, fmt.Errorf("trace: implausible object count %d", nObj)
	}
	t.Objects = make([]ObjectInit, nObj)
	for i := range t.Objects {
		o := &t.Objects[i]
		var id uint32
		if id, err = readU32(); err == nil {
			o.ID = model.ObjectID(id)
			if o.Pos.X, err = readF(); err == nil {
				if o.Pos.Y, err = readF(); err == nil {
					if o.Vel.X, err = readF(); err == nil {
						if o.Vel.Y, err = readF(); err == nil {
							if o.MaxVel, err = readF(); err == nil {
								o.PropsKey, err = readU64()
							}
						}
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading object %d: %w", i, err)
		}
	}
	nSteps, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("trace: reading step count: %w", err)
	}
	const maxSteps = 100_000_000
	if nSteps > maxSteps {
		return nil, fmt.Errorf("trace: implausible step count %d", nSteps)
	}
	t.Steps = make([]Step, nSteps)
	for s := range t.Steps {
		nCh, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("trace: reading step %d: %w", s, err)
		}
		if uint64(nCh) > uint64(nObj)*4 {
			return nil, fmt.Errorf("trace: implausible change count %d at step %d", nCh, s)
		}
		if nCh == 0 {
			continue
		}
		t.Steps[s].Changes = make([]VelocityChange, nCh)
		for c := range t.Steps[s].Changes {
			ch := &t.Steps[s].Changes[c]
			if ch.Index, err = readU32(); err == nil {
				if ch.Vel.X, err = readF(); err == nil {
					ch.Vel.Y, err = readF()
				}
			}
			if err != nil {
				return nil, fmt.Errorf("trace: reading change %d of step %d: %w", c, s, err)
			}
			if ch.Index >= nObj {
				return nil, fmt.Errorf("trace: change references object %d of %d", ch.Index, nObj)
			}
		}
	}
	return t, nil
}
