package trace

import (
	"bytes"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/workload"
)

func recordedWorkload(t *testing.T, steps int) (*Trace, *workload.Workload) {
	t.Helper()
	cfg := workload.Default(geo.NewRect(0, 0, 100, 100))
	cfg.NumObjects = 150
	cfg.NumQueries = 10
	cfg.VelocityChangesPerStep = 20
	w := workload.New(cfg)
	return Record(w, steps), w
}

// TestReplayReproducesTrajectories: replaying a trace lands every object on
// exactly the position the original run produced.
func TestReplayReproducesTrajectories(t *testing.T) {
	tr, w := recordedWorkload(t, 50)
	p := NewPlayer(tr)
	for !p.Done() {
		if _, ok := p.Step(); !ok {
			t.Fatal("Step returned false before Done")
		}
	}
	for i, o := range w.Objects {
		if p.Objects[i].Pos != o.Pos {
			t.Fatalf("object %d: replay at %v, original at %v", i, p.Objects[i].Pos, o.Pos)
		}
		if p.Objects[i].Vel != o.Vel {
			t.Fatalf("object %d: replay velocity %v, original %v", i, p.Objects[i].Vel, o.Vel)
		}
	}
	if _, ok := p.Step(); ok {
		t.Fatal("Step after exhaustion returned true")
	}
}

func TestPlayerDoesNotAliasWorkloadObjects(t *testing.T) {
	tr, _ := recordedWorkload(t, 1)
	a := NewPlayer(tr)
	b := NewPlayer(tr)
	a.Objects[0].Pos = geo.Pt(-999, -999)
	if b.Objects[0].Pos == geo.Pt(-999, -999) {
		t.Fatal("players share object state")
	}
	if tr.Objects[0].Pos == geo.Pt(-999, -999) {
		t.Fatal("player mutates the trace")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr, _ := recordedWorkload(t, 25)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.StepSeconds != tr.StepSeconds {
		t.Fatalf("StepSeconds = %v, want %v", back.StepSeconds, tr.StepSeconds)
	}
	if len(back.Objects) != len(tr.Objects) || len(back.Steps) != len(tr.Steps) {
		t.Fatalf("shape mismatch: %d/%d objects, %d/%d steps",
			len(back.Objects), len(tr.Objects), len(back.Steps), len(tr.Steps))
	}
	for i := range tr.Objects {
		if back.Objects[i] != tr.Objects[i] {
			t.Fatalf("object %d differs: %+v vs %+v", i, back.Objects[i], tr.Objects[i])
		}
	}
	for s := range tr.Steps {
		if len(back.Steps[s].Changes) != len(tr.Steps[s].Changes) {
			t.Fatalf("step %d change count differs", s)
		}
		for c := range tr.Steps[s].Changes {
			if back.Steps[s].Changes[c] != tr.Steps[s].Changes[c] {
				t.Fatalf("step %d change %d differs", s, c)
			}
		}
	}

	// Replays of original and round-tripped traces agree.
	pa, pb := NewPlayer(tr), NewPlayer(back)
	for !pa.Done() {
		pa.Step()
		pb.Step()
	}
	for i := range pa.Objects {
		if pa.Objects[i].Pos != pb.Objects[i].Pos {
			t.Fatalf("object %d diverges after round trip", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":      nil,
		"bad magic":  []byte("NOPE0123456789"),
		"truncated":  []byte("MOBT"),
		"short body": append([]byte("MOBT"), 1, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read accepted invalid input", name)
		}
	}
}

func TestReadRejectsCorruptCounts(t *testing.T) {
	tr, _ := recordedWorkload(t, 2)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the object count (bytes 14..17: magic 4 + version 2 + f64 8).
	blown := append([]byte(nil), data...)
	blown[14], blown[15], blown[16], blown[17] = 0xff, 0xff, 0xff, 0xff
	if _, err := Read(bytes.NewReader(blown)); err == nil {
		t.Error("Read accepted an implausible object count")
	}
	// Truncate mid-object-table.
	if _, err := Read(bytes.NewReader(data[:30])); err == nil {
		t.Error("Read accepted a truncated object table")
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	tr, _ := recordedWorkload(t, 1)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version low byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("Read accepted an unsupported version")
	}
}

func TestRecordCapturesBounces(t *testing.T) {
	// An object heading out of the UoD bounces; the reflected velocity must
	// be in the trace so replay follows the same path.
	cfg := workload.Default(geo.NewRect(0, 0, 50, 50))
	cfg.NumObjects = 1
	cfg.NumQueries = 1
	cfg.VelocityChangesPerStep = 0
	w := workload.New(cfg)
	w.Objects[0].Pos = geo.Pt(0.01, 25)
	w.Objects[0].Vel = geo.Vec(-100, 0) // heading out west
	w.Objects[0].Pos = geo.Pt(0, 25)

	tr := Record(w, 5)
	p := NewPlayer(tr)
	for !p.Done() {
		p.Step()
	}
	if p.Objects[0].Pos != w.Objects[0].Pos {
		t.Fatalf("bounce not replayed: %v vs %v", p.Objects[0].Pos, w.Objects[0].Pos)
	}
	if p.Objects[0].Pos.X < 0 {
		t.Fatalf("replayed object escaped west: %v", p.Objects[0].Pos)
	}
}

// TestProtocolOverTraceMatchesLiveRun: driving the MobiEyes protocol from a
// replayed trace yields exactly the results of driving it from the original
// workload — captured scenarios are faithful regression inputs.
func TestProtocolOverTraceMatchesLiveRun(t *testing.T) {
	// Record a scenario.
	cfg := workload.Default(geo.NewRect(0, 0, 100, 100))
	cfg.NumObjects = 80
	cfg.NumQueries = 8
	cfg.VelocityChangesPerStep = 15
	wRecord := workload.New(cfg)
	specs := append([]workload.QuerySpec(nil), wRecord.Queries...)
	tr := Record(wRecord, 30)

	// Replay the whole scenario.
	p := NewPlayer(tr)
	step := 0
	for !p.Done() {
		p.Step()
		step++
	}
	if step != 30 {
		t.Fatalf("replayed %d steps, want 30", step)
	}
	// End-state results agree between original and replayed populations.
	for qi, spec := range specs {
		live := map[model.ObjectID]bool{}
		replay := map[model.ObjectID]bool{}
		fl := wRecord.Objects[int(spec.Focal)-1]
		fr := p.Objects[int(spec.Focal)-1]
		for i := range wRecord.Objects {
			lo, ro := wRecord.Objects[i], p.Objects[i]
			if spec.Filter.Matches(lo.Props) && lo.Pos.Dist2(fl.Pos) <= spec.Radius*spec.Radius {
				live[lo.ID] = true
			}
			if spec.Filter.Matches(ro.Props) && ro.Pos.Dist2(fr.Pos) <= spec.Radius*spec.Radius {
				replay[ro.ID] = true
			}
		}
		if len(live) != len(replay) {
			t.Fatalf("query %d: result sizes differ (%d vs %d)", qi, len(live), len(replay))
		}
		for oid := range live {
			if !replay[oid] {
				t.Fatalf("query %d: replay missing object %d", qi, oid)
			}
		}
	}
}
