// Package msg defines every message exchanged between moving objects and
// the server in MobiEyes and in the centralized baselines, together with
// byte-accurate wire sizes used by the power model (§5.3 of the paper
// simulates "message sizes instead of message counts" for the power study).
//
// Wire-size model: each message carries a fixed header (type, length,
// addressing) plus its payload fields. Field sizes: object/query IDs 4 B,
// coordinates and times 8 B each (so a point is 16 B, a velocity vector
// 16 B), grid cell 8 B, cell range 16 B, filter 12 B.
//
// Uplink messages travel from a moving object to the server through its
// base station; downlink messages are either broadcast by base stations to
// everything in their coverage area or sent one-to-one to a single object.
package msg

import (
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
)

// Field and header sizes in bytes.
const (
	HeaderSize    = 16
	IDSize        = 4
	ScalarSize    = 8
	PointSize     = 16
	VectorSize    = 16
	TimeSize      = 8
	CellSize      = 8
	CellRangeSize = 16
	FilterSize    = 12
	BoolSize      = 1
)

// Kind discriminates message types for metering and dispatch.
type Kind int

// Message kinds. Uplink kinds first, then downlink kinds.
const (
	// Uplink.
	KindPositionReport Kind = iota
	KindVelocityReport
	KindCellChangeReport
	KindContainmentReport
	KindGroupContainmentReport
	KindFocalInfoResponse
	KindDepartureReport
	KindPing
	// Downlink.
	KindQueryInstall
	KindQueryRemove
	KindVelocityChange
	KindFocalNotify
	KindFocalInfoRequest
	KindPong
	// Node tier (router ↔ worker, internal/cluster). These frames never
	// touch a moving object's radio; they ride the backhaul between the
	// router and its worker nodes.
	KindNodeHello
	KindNodeHeartbeat
	KindAssignRange
	KindHandoff
	KindHandoffAck
	KindNodeOp
	KindNodeOpDone
	KindNodeDownlink
	KindNodeTelemetry
	KindNodeStatus
	KindCheckpointRequest
	KindNodeCheckpoint

	numKinds
)

// NumKinds is the number of distinct message kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	"PositionReport", "VelocityReport", "CellChangeReport",
	"ContainmentReport", "GroupContainmentReport", "FocalInfoResponse",
	"DepartureReport", "Ping",
	"QueryInstall", "QueryRemove", "VelocityChange",
	"FocalNotify", "FocalInfoRequest", "Pong",
	"NodeHello", "NodeHeartbeat", "AssignRange",
	"Handoff", "HandoffAck", "NodeOp", "NodeOpDone", "NodeDownlink",
	"NodeTelemetry", "NodeStatus",
	"CheckpointRequest", "NodeCheckpoint",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "UnknownKind"
	}
	return kindNames[k]
}

// Uplink reports whether messages of this kind travel object → server.
func (k Kind) Uplink() bool { return k <= KindPing }

// Node reports whether messages of this kind belong to the router↔worker
// node tier (internal/cluster). Node frames are neither uplink nor downlink
// in the device sense: they never cross the wireless medium.
func (k Kind) Node() bool { return k >= KindNodeHello }

// Message is implemented by every protocol message.
type Message interface {
	Kind() Kind
	Size() int // wire size in bytes, header included
}

// ---------------------------------------------------------------------------
// Uplink messages.

// PositionReport is the naïve baseline's per-step report: the object's new
// position (§5.3, "each object reports its position directly to the server
// at each time step, if its position has changed").
type PositionReport struct {
	OID model.ObjectID
	Pos geo.Point
	Tm  model.Time
}

func (PositionReport) Kind() Kind { return KindPositionReport }
func (PositionReport) Size() int  { return HeaderSize + IDSize + PointSize + TimeSize }

// VelocityReport carries a significant velocity-vector change: the new
// velocity vector, the position, and the timestamp at which both were
// recorded (§3.4). It is used by MobiEyes focal objects and by the central
// optimal baseline for every object.
type VelocityReport struct {
	OID model.ObjectID
	Pos geo.Point
	Vel geo.Vector
	Tm  model.Time
}

func (VelocityReport) Kind() Kind { return KindVelocityReport }
func (VelocityReport) Size() int {
	return HeaderSize + IDSize + PointSize + VectorSize + TimeSize
}

// CellChangeReport notifies the server that an object moved to a new grid
// cell: its identifier, previous cell and new cell (§3.5).
type CellChangeReport struct {
	OID      model.ObjectID
	PrevCell grid.CellID
	NewCell  grid.CellID
	// Pos/Vel/Tm piggyback the object's motion state so the server can
	// refresh FOT entries of focal objects without a second round trip.
	Pos geo.Point
	Vel geo.Vector
	Tm  model.Time
}

func (CellChangeReport) Kind() Kind { return KindCellChangeReport }
func (CellChangeReport) Size() int {
	return HeaderSize + IDSize + 2*CellSize + PointSize + VectorSize + TimeSize
}

// ContainmentReport is the differential result update: the object entered
// (IsTarget=true) or left (IsTarget=false) the spatial region of one query
// (§3.6).
type ContainmentReport struct {
	OID      model.ObjectID
	QID      model.QueryID
	IsTarget bool
}

func (ContainmentReport) Kind() Kind { return KindContainmentReport }
func (ContainmentReport) Size() int  { return HeaderSize + 2*IDSize + BoolSize }

// GroupContainmentReport is the grouped-query result update of §4.1: one
// bitmap covering every query in a server-side query group, one bit per
// query (1 = object is in that query's result).
type GroupContainmentReport struct {
	OID    model.ObjectID
	Focal  model.ObjectID // the group is keyed by focal object
	QIDs   []model.QueryID
	Bitmap Bitmap
}

func (GroupContainmentReport) Kind() Kind { return KindGroupContainmentReport }
func (m GroupContainmentReport) Size() int {
	return HeaderSize + 2*IDSize + 2 + len(m.QIDs)*IDSize + len(m.Bitmap.bits)
}

// DepartureReport announces that an object is leaving the system (powering
// off, leaving coverage for good). The server removes it from every query
// result and tears down any queries it was the focal object of. The paper
// assumes a static population; this message is the minimal extension for
// dynamic ones.
type DepartureReport struct {
	OID model.ObjectID
}

func (DepartureReport) Kind() Kind { return KindDepartureReport }
func (DepartureReport) Size() int  { return HeaderSize + IDSize }

// Ping is a transport-level liveness and ordering probe: the remote server
// echoes the token back as a Pong on the same connection, after every
// frame received before it. It is consumed by the transport layer and never
// dispatched into the query engine (the core servers do not handle it).
type Ping struct {
	Token uint64
}

func (Ping) Kind() Kind { return KindPing }
func (Ping) Size() int  { return HeaderSize + ScalarSize }

// FocalInfoResponse answers a FocalInfoRequest during query installation
// (§3.3 step 3): the focal object's current motion state.
type FocalInfoResponse struct {
	OID model.ObjectID
	Pos geo.Point
	Vel geo.Vector
	Tm  model.Time
}

func (FocalInfoResponse) Kind() Kind { return KindFocalInfoResponse }
func (FocalInfoResponse) Size() int {
	return HeaderSize + IDSize + PointSize + VectorSize + TimeSize
}

// ---------------------------------------------------------------------------
// Downlink messages.

// QueryState is the full description of one moving query as shipped to
// moving objects: identity, focal motion state, spatial region, filter and
// monitoring region. Objects store exactly these fields in their LQT.
type QueryState struct {
	QID       model.QueryID
	Focal     model.ObjectID
	State     model.MotionState
	Region    model.Region
	Filter    model.Filter
	MonRegion grid.CellRange
	// FocalMaxVel lets receivers compute safe periods (§4.2).
	FocalMaxVel float64
}

// RegionSize is the wire size of a fixed-parameter region descriptor
// (circle or rectangle): a one-byte shape tag plus two scalars.
const RegionSize = 1 + 2*ScalarSize

// RegionWireSize returns the encoded size of any region: circles and
// rectangles are fixed-size; polygons carry a vertex count and their
// vertices.
func RegionWireSize(r model.Region) int {
	if p, ok := r.(model.PolygonRegion); ok {
		return 1 + 2 + len(p.Vertices)*PointSize
	}
	return RegionSize
}

// wireSize of one QueryState entry.
func (qs QueryState) wireSize() int {
	return 2*IDSize + PointSize + VectorSize + TimeSize + RegionWireSize(qs.Region) +
		FilterSize + CellRangeSize + ScalarSize
}

// QueryInstall ships one or more queries to the objects inside a region.
// It is used for initial installation (§3.3), for re-installation after a
// focal object changes cells (§3.5), and — as a one-to-one message — to
// hand a non-focal object the nearby queries of its new cell under eager
// query propagation.
type QueryInstall struct {
	Queries []QueryState
}

func (QueryInstall) Kind() Kind { return KindQueryInstall }
func (m QueryInstall) Size() int {
	n := HeaderSize + 2 // count
	for _, qs := range m.Queries {
		n += qs.wireSize()
	}
	return n
}

// QueryRemove tells objects to drop queries from their LQTs (uninstall).
type QueryRemove struct {
	QIDs []model.QueryID
}

func (QueryRemove) Kind() Kind { return KindQueryRemove }
func (m QueryRemove) Size() int {
	return HeaderSize + 2 + len(m.QIDs)*IDSize
}

// VelocityChange relays a focal object's significant velocity change to the
// monitoring regions of its queries (§3.4). Under lazy query propagation
// the notification is "expanded to include the spatial region and the
// filter of the queries" so that objects that changed cells without
// contacting the server can self-install them (§3.5); in that case Queries
// carries the full query states and the message is correspondingly larger.
type VelocityChange struct {
	Focal model.ObjectID
	State model.MotionState
	// Queries is empty under EQP; under LQP it carries the full state of
	// every query bound to the focal object.
	Queries []QueryState
}

func (VelocityChange) Kind() Kind { return KindVelocityChange }
func (m VelocityChange) Size() int {
	n := HeaderSize + IDSize + PointSize + VectorSize + TimeSize + 2
	for _, qs := range m.Queries {
		n += qs.wireSize()
	}
	return n
}

// FocalNotify is the one-to-one installation notification that makes an
// object set its hasMQ flag (§3.3): it now is a focal object and must
// report significant velocity changes and cell crossings.
type FocalNotify struct {
	OID model.ObjectID
	QID model.QueryID
	// Install reports whether the object gained (true) or lost (false) its
	// last query.
	Install bool
}

func (FocalNotify) Kind() Kind { return KindFocalNotify }
func (FocalNotify) Size() int  { return HeaderSize + 2*IDSize + BoolSize }

// FocalInfoRequest asks a prospective focal object for its motion state
// during installation (§3.3 step 3).
type FocalInfoRequest struct {
	OID model.ObjectID
}

func (FocalInfoRequest) Kind() Kind { return KindFocalInfoRequest }
func (FocalInfoRequest) Size() int  { return HeaderSize + IDSize }

// Pong answers a Ping with the same token, after every downlink frame the
// server enqueued for the connection before processing the Ping. Like Ping
// it lives entirely in the transport layer.
type Pong struct {
	Token uint64
}

func (Pong) Kind() Kind { return KindPong }
func (Pong) Size() int  { return HeaderSize + ScalarSize }

// ---------------------------------------------------------------------------
// Node-tier messages (router ↔ worker, internal/cluster). These share the
// wire codec and the cost-ledger kind axis with the protocol messages, but
// they travel on the backhaul between cluster nodes, never on the wireless
// medium (Kind.Node reports the tier).

// NodeHello opens a router↔worker connection: the worker's assigned node
// index and the node-tier protocol version each side speaks. A version
// mismatch is rejected with a typed error by both ends.
type NodeHello struct {
	Node  uint32
	Proto uint16
}

func (NodeHello) Kind() Kind { return KindNodeHello }
func (NodeHello) Size() int  { return HeaderSize + IDSize + 2 }

// NodeHeartbeat is the router's liveness probe; the worker echoes it with
// the same sequence number.
type NodeHeartbeat struct {
	Node uint32
	Seq  uint64
}

func (NodeHeartbeat) Kind() Kind { return KindNodeHeartbeat }
func (NodeHeartbeat) Size() int  { return HeaderSize + IDSize + ScalarSize }

// AssignRange gives a worker its contiguous range of dense grid-cell
// indices [Lo, Hi). Epoch increases with every reassignment so a worker can
// discard stale assignments after a rebalance.
type AssignRange struct {
	Epoch uint64
	Node  uint32
	Lo    uint32
	Hi    uint32
}

func (AssignRange) Kind() Kind { return KindAssignRange }
func (AssignRange) Size() int  { return HeaderSize + ScalarSize + 3*IDSize }

// Handoff transfers one focal object's complete server-side state (an
// encoded focal slice: FOT row plus every bound query's SQT row and result
// set) into the receiving node. Relocate distinguishes a §3.5 cell-crossing
// migration (monitoring regions recomputed and re-broadcast) from a
// state-preserving transfer (focal-info refresh or admin rebalancing).
type Handoff struct {
	Seq      uint64
	OID      model.ObjectID
	Relocate bool
	// State/Cell are the motion state and grid cell the receiving node
	// installs the focal at (for admin transfers they repeat the slice's
	// embedded values).
	State model.MotionState
	Cell  grid.CellID
	Slice []byte
}

func (Handoff) Kind() Kind { return KindHandoff }
func (m Handoff) Size() int {
	return HeaderSize + ScalarSize + IDSize + BoolSize +
		PointSize + VectorSize + TimeSize + CellSize + 4 + len(m.Slice)
}

// HandoffAck confirms a Handoff was applied; the two-phase transfer is
// complete and the sender may forget the focal.
type HandoffAck struct {
	Seq uint64
	OID model.ObjectID
}

func (HandoffAck) Kind() Kind { return KindHandoffAck }
func (HandoffAck) Size() int  { return HeaderSize + ScalarSize + IDSize }

// NodeOp is one remote table operation on a worker node: an opcode from
// internal/cluster's operation set and its encoded arguments. The worker
// answers with any number of NodeDownlink frames followed by one
// NodeOpDone carrying the same sequence number.
type NodeOp struct {
	Seq  uint64
	Code uint8
	Data []byte
}

func (NodeOp) Kind() Kind { return KindNodeOp }
func (m NodeOp) Size() int {
	return HeaderSize + ScalarSize + 1 + 4 + len(m.Data)
}

// NodeOpDone completes a NodeOp, carrying the operation's encoded result.
type NodeOpDone struct {
	Seq  uint64
	Code uint8
	Data []byte
}

func (NodeOpDone) Kind() Kind { return KindNodeOpDone }
func (m NodeOpDone) Size() int {
	return HeaderSize + ScalarSize + 1 + 4 + len(m.Data)
}

// NodeDownlink relays a downlink message a worker produced while applying a
// NodeOp back to the router, which forwards it to the wireless medium.
// Broadcast frames carry the target cell range (Target must be zero);
// unicast frames carry the receiving object (Region must be zero).
type NodeDownlink struct {
	Broadcast bool
	Region    grid.CellRange
	Target    model.ObjectID
	// Inner is the wire-encoded protocol message (trace ID included when the
	// causing operation was traced).
	Inner []byte
}

func (NodeDownlink) Kind() Kind { return KindNodeDownlink }
func (m NodeDownlink) Size() int {
	return HeaderSize + BoolSize + CellRangeSize + IDSize + 4 + len(m.Inner)
}

// NodeTelemetry pushes one compact telemetry batch from a worker to the
// router: changed metric series, cost-ledger deltas and trace-event batches,
// encoded by internal/obs/telemetry (the payload carries its own version
// byte; the wire codec treats it as opaque). Workers stream these frames
// ahead of an op reply or a heartbeat answer, exactly like NodeDownlink; an
// empty payload is non-canonical and rejected by the codec.
type NodeTelemetry struct {
	Node    uint32
	Seq     uint64 // worker-local telemetry batch counter, strictly increasing
	Payload []byte
}

func (NodeTelemetry) Kind() Kind { return KindNodeTelemetry }
func (m NodeTelemetry) Size() int {
	return HeaderSize + IDSize + ScalarSize + 4 + len(m.Payload)
}

// NodeStatus is the worker's heartbeat answer: the echoed probe sequence
// plus the worker's view of its assignment — span epoch, cell range and a
// digest over (epoch, lo, hi) — so the router's watchdog can verify epoch
// monotonicity and span agreement without a table op.
type NodeStatus struct {
	Node   uint32
	Seq    uint64 // echoes the probe's NodeHeartbeat.Seq
	Epoch  uint64
	Lo     uint32
	Hi     uint32
	Digest uint64
	Ops    uint64 // worker-side table ops applied so far
}

func (NodeStatus) Kind() Kind { return KindNodeStatus }
func (NodeStatus) Size() int {
	return HeaderSize + IDSize + 3*ScalarSize + 2*IDSize + ScalarSize
}

// CheckpointRequest asks a worker for a checkpoint delta of its focal rows:
// every focal slice that changed since the worker's checkpoint sequence
// Since, plus the oids removed since then. Since==0 requests a full
// checkpoint. The router journals the answer so the node's state survives
// an ungraceful crash (DESIGN.md §15).
type CheckpointRequest struct {
	Node  uint32
	Since uint64 // last checkpoint sequence the router has journaled
}

func (CheckpointRequest) Kind() Kind { return KindCheckpointRequest }
func (CheckpointRequest) Size() int {
	return HeaderSize + IDSize + ScalarSize
}

// NodeCheckpoint is the worker's checkpoint delta: the new checkpoint
// sequence, the oids whose focal rows vanished since the requested
// watermark (strictly ascending, no duplicates) and the versioned focal
// slices (handoff encoding, each non-empty) that changed. An empty delta
// (no removals, no slices) echoes Seq == Since and means the journal is
// already current.
type NodeCheckpoint struct {
	Node    uint32
	Seq     uint64 // checkpoint sequence after applying this delta
	Removed []uint32
	Slices  [][]byte
}

func (NodeCheckpoint) Kind() Kind { return KindNodeCheckpoint }
func (m NodeCheckpoint) Size() int {
	n := HeaderSize + IDSize + ScalarSize + 4 + 4*len(m.Removed) + 4
	for _, s := range m.Slices {
		n += 4 + len(s)
	}
	return n
}

// ---------------------------------------------------------------------------

// Bitmap is the query bitmap of §4.1: one bit per query in a query group.
type Bitmap struct {
	bits []byte
	n    int
}

// NewBitmap returns a bitmap with room for n bits, all zero.
func NewBitmap(n int) Bitmap {
	return Bitmap{bits: make([]byte, (n+7)/8), n: n}
}

// Len returns the number of bits.
func (b Bitmap) Len() int { return b.n }

// Set sets bit i to v.
func (b Bitmap) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		panic("msg: bitmap index out of range")
	}
	if v {
		b.bits[i/8] |= 1 << (i % 8)
	} else {
		b.bits[i/8] &^= 1 << (i % 8)
	}
}

// Get returns bit i.
func (b Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic("msg: bitmap index out of range")
	}
	return b.bits[i/8]&(1<<(i%8)) != 0
}

// Bytes exposes the packed bit storage (little-endian bit order within each
// byte). It is the wire representation; mutating it mutates the bitmap.
func (b Bitmap) Bytes() []byte { return b.bits }

// Clone returns an independent copy of b.
func (b Bitmap) Clone() Bitmap {
	nb := Bitmap{bits: append([]byte(nil), b.bits...), n: b.n}
	return nb
}

// Equal reports whether two bitmaps have identical length and contents.
func (b Bitmap) Equal(o Bitmap) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.bits {
		if b.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}
