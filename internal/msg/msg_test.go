package msg

import (
	"math/rand"
	"testing"

	"mobieyes/internal/model"
)

func TestKindString(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == "UnknownKind" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(-1).String() != "UnknownKind" || Kind(99).String() != "UnknownKind" {
		t.Error("out-of-range kinds should be UnknownKind")
	}
}

func TestKindDirection(t *testing.T) {
	uplinks := []Kind{
		KindPositionReport, KindVelocityReport, KindCellChangeReport,
		KindContainmentReport, KindGroupContainmentReport, KindFocalInfoResponse,
	}
	downlinks := []Kind{
		KindQueryInstall, KindQueryRemove, KindVelocityChange,
		KindFocalNotify, KindFocalInfoRequest,
	}
	for _, k := range uplinks {
		if !k.Uplink() {
			t.Errorf("%v should be uplink", k)
		}
	}
	for _, k := range downlinks {
		if k.Uplink() {
			t.Errorf("%v should be downlink", k)
		}
	}
}

func TestMessageSizes(t *testing.T) {
	// Every message must be larger than the bare header, and sizes must
	// match the documented field model.
	cases := []struct {
		m    Message
		want int
	}{
		{PositionReport{}, 16 + 4 + 16 + 8},
		{VelocityReport{}, 16 + 4 + 16 + 16 + 8},
		{CellChangeReport{}, 16 + 4 + 16 + 16 + 16 + 8},
		{ContainmentReport{}, 16 + 8 + 1},
		{FocalInfoResponse{}, 16 + 4 + 16 + 16 + 8},
		{FocalNotify{}, 16 + 8 + 1},
		{FocalInfoRequest{}, 16 + 4},
		{QueryRemove{}, 16 + 2},
		{QueryInstall{}, 16 + 2},
	}
	for _, c := range cases {
		if got := c.m.Size(); got != c.want {
			t.Errorf("%v Size = %d, want %d", c.m.Kind(), got, c.want)
		}
		if got := c.m.Size(); got < HeaderSize {
			t.Errorf("%v Size %d < header", c.m.Kind(), got)
		}
	}
}

func TestVariableSizes(t *testing.T) {
	empty := QueryInstall{}
	one := QueryInstall{Queries: make([]QueryState, 1)}
	three := QueryInstall{Queries: make([]QueryState, 3)}
	per := one.Size() - empty.Size()
	if per <= 0 {
		t.Fatalf("per-query size %d not positive", per)
	}
	if three.Size()-empty.Size() != 3*per {
		t.Errorf("QueryInstall size not linear in query count")
	}

	vcEQP := VelocityChange{}
	vcLQP := VelocityChange{Queries: make([]QueryState, 2)}
	if vcLQP.Size() <= vcEQP.Size() {
		t.Error("LQP velocity change must be larger than EQP's")
	}

	qr := QueryRemove{QIDs: []model.QueryID{1, 2, 3}}
	if qr.Size() != (QueryRemove{}).Size()+3*IDSize {
		t.Errorf("QueryRemove size = %d", qr.Size())
	}
}

func TestGroupContainmentSize(t *testing.T) {
	bm := NewBitmap(10)
	m := GroupContainmentReport{QIDs: make([]model.QueryID, 10), Bitmap: bm}
	// 10 bits → 2 bytes of bitmap, plus a 2-byte query count.
	want := HeaderSize + 2*IDSize + 2 + 10*IDSize + 2
	if m.Size() != want {
		t.Errorf("Size = %d, want %d", m.Size(), want)
	}
}

func TestBitmapSetGet(t *testing.T) {
	b := NewBitmap(13)
	if b.Len() != 13 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Set(0, true)
	b.Set(7, true)
	b.Set(8, true)
	b.Set(12, true)
	for i := 0; i < 13; i++ {
		want := i == 0 || i == 7 || i == 8 || i == 12
		if b.Get(i) != want {
			t.Errorf("bit %d = %v, want %v", i, b.Get(i), want)
		}
	}
	b.Set(7, false)
	if b.Get(7) {
		t.Error("clearing bit 7 failed")
	}
}

func TestBitmapPanics(t *testing.T) {
	b := NewBitmap(4)
	for _, i := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) should panic", i)
				}
			}()
			b.Set(i, true)
		}()
	}
}

func TestBitmapCloneEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBitmap(20)
	for i := 0; i < 20; i++ {
		b.Set(i, rng.Intn(2) == 0)
	}
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(3, !c.Get(3))
	if b.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if b.Get(3) == c.Get(3) {
		t.Fatal("clone shares storage with original")
	}
	if b.Equal(NewBitmap(21)) {
		t.Fatal("different lengths compare equal")
	}
}

func TestBitmapRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(64) + 1
		b := NewBitmap(n)
		ref := make([]bool, n)
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			v := rng.Intn(2) == 0
			b.Set(i, v)
			ref[i] = v
		}
		for i, v := range ref {
			if b.Get(i) != v {
				t.Fatalf("trial %d: bit %d = %v, want %v", trial, i, b.Get(i), v)
			}
		}
	}
}

func TestAllMessagesImplementInterface(t *testing.T) {
	// Every concrete message: Kind is stable and Size covers the header.
	msgs := []Message{
		PositionReport{}, VelocityReport{}, CellChangeReport{},
		ContainmentReport{}, GroupContainmentReport{}, FocalInfoResponse{},
		DepartureReport{}, Ping{},
		QueryInstall{}, QueryRemove{}, VelocityChange{},
		FocalNotify{}, FocalInfoRequest{}, Pong{},
		NodeHello{}, NodeHeartbeat{}, AssignRange{}, Handoff{},
		HandoffAck{}, NodeOp{}, NodeOpDone{}, NodeDownlink{},
		NodeTelemetry{}, NodeStatus{},
		CheckpointRequest{}, NodeCheckpoint{},
	}
	seen := map[Kind]bool{}
	for _, m := range msgs {
		if m.Size() < HeaderSize {
			t.Errorf("%v: size %d below header", m.Kind(), m.Size())
		}
		if seen[m.Kind()] {
			t.Errorf("duplicate kind %v", m.Kind())
		}
		seen[m.Kind()] = true
	}
	if len(seen) != NumKinds {
		t.Errorf("covered %d kinds, want %d", len(seen), NumKinds)
	}
}

func TestDepartureReportShape(t *testing.T) {
	m := DepartureReport{OID: 3}
	if !m.Kind().Uplink() {
		t.Error("DepartureReport must be uplink")
	}
	if m.Size() != HeaderSize+IDSize {
		t.Errorf("Size = %d", m.Size())
	}
}
