package simtest

import (
	"bytes"
	"fmt"
	"sort"

	"mobieyes/internal/core"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/workload"
)

// system is one engine under test. All three implementations (serial,
// sharded, remote) are driven through this interface by the runner, with
// the shared workload objects as the single source of positional truth.
// Local implementations cannot fail mid-operation; the remote one can
// (settle timeout = suspected deadlock), hence the error returns.
type system interface {
	name() string
	join(o *model.MovingObject, now model.Time) error
	depart(oid model.ObjectID, now model.Time) error
	install(spec workload.QuerySpec, maxVel float64, now model.Time) (model.QueryID, error)
	installUntil(spec workload.QuerySpec, maxVel float64, expiry, now model.Time) (model.QueryID, error)
	remove(qid model.QueryID, now model.Time) error
	expire(now model.Time) error
	step(now model.Time) error
	queryIDs() []model.QueryID
	result(qid model.QueryID) []model.ObjectID
	invariants() error
	snapshot() ([]byte, error)
	close()
}

// localSystem drives a core.Server, core.ShardedServer or core.ClusterServer
// with in-process clients and queued FIFO message delivery — the
// internal/core test-harness idiom. Broadcasts reach every active object
// (one giant base station); clients self-filter by monitoring region, which
// is the protocol behavior under test.
type localSystem struct {
	label   string
	g       *grid.Grid
	opts    core.Options
	srv     core.ServerAPI
	objs    []*model.MovingObject // shared world; index = oid-1
	clients []*core.Client        // parallel to objs
	active  map[model.ObjectID]bool
	queue   []queuedDown
	now     model.Time

	// dropNthBroadcast is the deliberate-bug hook the acceptance test uses:
	// every Nth broadcast vanishes, so the engine silently skips part of a
	// monitoring-region update. The differential oracle must catch this.
	dropNthBroadcast int
	broadcasts       int

	// rec is the flight recorder of a traced run (Scenario.Trace); nil
	// otherwise. deliverTID is the trace ID of the downlink currently being
	// delivered, so client responses continue the causing trace.
	rec        *trace.Recorder
	deliverTID trace.ID

	// acct is this system's cost accountant (Scenario.Costs); nil otherwise.
	// Uplinks and downlinks are charged at the queued transport, so two
	// systems running the same schedule must produce identical global
	// ledgers — the ledger oracle.
	acct *cost.Accountant
}

type queuedDown struct {
	target model.ObjectID // -1 for broadcast
	m      msg.Message
	tid    trace.ID
}

// newLocalSystem builds a local engine over the shared object population.
// nodes > 0 selects the router-plus-workers ClusterServer with that many
// worker nodes; otherwise shards > 0 selects a ShardedServer with that many
// partitions, and zero for both the serial core.Server. traced attaches a
// per-system flight recorder so oracle failures can print the causal
// timeline of the divergence.
func newLocalSystem(label string, g *grid.Grid, opts core.Options, objs []*model.MovingObject, shards, nodes, dropNth int, traced bool) *localSystem {
	ls := &localSystem{
		label:            label,
		g:                g,
		opts:             opts,
		objs:             objs,
		clients:          make([]*core.Client, len(objs)),
		active:           make(map[model.ObjectID]bool),
		dropNthBroadcast: dropNth,
	}
	switch {
	case nodes > 0:
		ls.srv = core.NewClusterServer(g, opts, localDown{ls}, nodes)
	case shards > 0:
		ls.srv = core.NewShardedServer(g, opts, localDown{ls}, shards)
	default:
		ls.srv = core.NewServer(g, opts, localDown{ls})
	}
	if traced {
		ls.rec = trace.NewRecorder(trace.DefaultSize)
		ls.srv.SetTracer(ls.rec)
	}
	return ls
}

// attachCosts wires a cost accountant into the system: the server (and its
// shards) for per-entity and per-shard attribution, the transport for
// global ledger charges, and every client — present and future (join
// attaches fresh clients) — for compute units. Call before the first join.
func (ls *localSystem) attachCosts(a *cost.Accountant) {
	ls.acct = a
	ls.srv.SetAccountant(a)
}

func (ls *localSystem) tracer() *trace.Recorder { return ls.rec }

func (ls *localSystem) name() string { return ls.label }

type localDown struct{ ls *localSystem }

var _ core.TracedDownlink = localDown{}

func (d localDown) Broadcast(region grid.CellRange, m msg.Message) {
	d.BroadcastTraced(region, m, 0)
}

func (d localDown) BroadcastTraced(region grid.CellRange, m msg.Message, tid trace.ID) {
	d.ls.broadcasts++
	if n := d.ls.dropNthBroadcast; n > 0 && d.ls.broadcasts%n == 0 {
		// Injected bug: this monitoring-region update is never sent. A traced
		// run records the loss, so the dumped timeline of the divergent query
		// shows exactly which message vanished.
		if d.ls.rec != nil {
			oid, qid := core.TraceRef(m)
			d.ls.rec.Event(tid, trace.KindDrop, d.ls.label, oid, qid, m.Kind().String()+" (injected fault)")
		}
		return
	}
	d.ls.acct.Downlink(m.Kind(), m.Size(), 1)
	d.ls.queue = append(d.ls.queue, queuedDown{target: -1, m: m, tid: tid})
}

func (d localDown) Unicast(oid model.ObjectID, m msg.Message) {
	d.UnicastTraced(oid, m, 0)
}

func (d localDown) UnicastTraced(oid model.ObjectID, m msg.Message, tid trace.ID) {
	d.ls.acct.Downlink(m.Kind(), m.Size(), 1)
	d.ls.queue = append(d.ls.queue, queuedDown{target: oid, m: m, tid: tid})
}

// flush delivers queued downlinks in FIFO order until quiescent;
// deliveries may enqueue more (e.g. a FocalInfoResponse completing an
// install, which broadcasts the query). Messages to departed objects are
// dropped: their device is gone.
func (ls *localSystem) flush() {
	for len(ls.queue) > 0 {
		q := ls.queue[0]
		ls.queue = ls.queue[1:]
		ls.deliverTID = q.tid
		if q.target >= 0 {
			if !ls.active[q.target] {
				continue
			}
			i := int(q.target) - 1
			ls.clients[i].OnDownlink(q.m, ls.objs[i].Pos, ls.objs[i].Vel, ls.now)
			continue
		}
		for i, c := range ls.clients {
			if c == nil || !ls.active[model.ObjectID(i+1)] {
				continue
			}
			c.OnDownlink(q.m, ls.objs[i].Pos, ls.objs[i].Vel, ls.now)
		}
	}
	ls.deliverTID = 0
}

func (ls *localSystem) join(o *model.MovingObject, now model.Time) error {
	ls.now = now
	i := int(o.ID) - 1
	// A fresh Client on every (re)join: the device that left is gone and a
	// new one arrives, exactly as in the remote deployment.
	ls.clients[i] = core.NewClient(ls.g, ls.opts, localUp{ls}, o.ID, o.Props, o.MaxVel, o.Pos)
	ls.clients[i].SetAccountant(ls.acct)
	ls.active[o.ID] = true
	ls.clients[i].Join(o.Pos, o.Vel, now)
	ls.flush()
	return nil
}

func (ls *localSystem) depart(oid model.ObjectID, now model.Time) error {
	ls.now = now
	ls.clients[int(oid)-1].Depart()
	ls.active[oid] = false
	ls.flush()
	return nil
}

type localUp struct{ ls *localSystem }

func (u localUp) Send(m msg.Message) {
	u.ls.acct.Uplink(m.Kind(), m.Size())
	u.ls.srv.HandleUplinkTraced(m, u.ls.deliverTID)
}

func (ls *localSystem) install(spec workload.QuerySpec, maxVel float64, now model.Time) (model.QueryID, error) {
	ls.now = now
	qid := ls.srv.InstallQuery(spec.Focal, model.CircleRegion{R: spec.Radius}, spec.Filter, maxVel)
	ls.flush()
	return qid, nil
}

func (ls *localSystem) installUntil(spec workload.QuerySpec, maxVel float64, expiry, now model.Time) (model.QueryID, error) {
	ls.now = now
	qid := ls.srv.InstallQueryUntil(spec.Focal, model.CircleRegion{R: spec.Radius}, spec.Filter, maxVel, expiry)
	ls.flush()
	return qid, nil
}

func (ls *localSystem) remove(qid model.QueryID, now model.Time) error {
	ls.now = now
	ls.srv.RemoveQuery(qid)
	ls.flush()
	return nil
}

func (ls *localSystem) expire(now model.Time) error {
	ls.now = now
	ls.srv.ExpireQueries(now)
	ls.flush()
	return nil
}

// step runs the three client protocol phases with full message delivery
// between them. The world itself (object positions) has already been
// advanced by the runner.
func (ls *localSystem) step(now model.Time) error {
	ls.now = now
	ls.eachActive(func(i int, c *core.Client) { c.TickCellChange(ls.objs[i].Pos, ls.objs[i].Vel, now) })
	ls.flush()
	ls.eachActive(func(i int, c *core.Client) { c.TickDeadReckoning(ls.objs[i].Pos, ls.objs[i].Vel, now) })
	ls.flush()
	ls.eachActive(func(i int, c *core.Client) { c.TickEvaluate(ls.objs[i].Pos, ls.objs[i].Vel, now) })
	ls.flush()
	return nil
}

func (ls *localSystem) eachActive(fn func(i int, c *core.Client)) {
	for i, c := range ls.clients {
		if c == nil || !ls.active[model.ObjectID(i+1)] {
			continue
		}
		fn(i, c)
	}
}

func (ls *localSystem) queryIDs() []model.QueryID {
	ids := ls.srv.QueryIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (ls *localSystem) result(qid model.QueryID) []model.ObjectID { return ls.srv.Result(qid) }

func (ls *localSystem) invariants() error { return ls.srv.CheckInvariants() }

func (ls *localSystem) snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := ls.srv.Snapshot(&buf); err != nil {
		return nil, fmt.Errorf("%s: snapshot: %w", ls.label, err)
	}
	return buf.Bytes(), nil
}

func (ls *localSystem) close() {}
