package simtest

import (
	"bytes"
	"sort"
	"testing"

	"mobieyes/internal/history"
	"mobieyes/internal/model"
	"mobieyes/internal/obs/stream"
	"mobieyes/internal/sim"
)

// TestHistoryReplayOracle is the replay oracle: a simulation recorded into
// a history log must be reproducible from the log alone. A huge-buffer
// firehose subscription captures the ground-truth event stream (the sink
// and every subscriber observe Publish in the same global order, under the
// tap's mutex), and the test proves that
//
//  1. every query's logged timeline equals the subscriber's event stream
//     exactly (same seq, oid, direction — gap-free from 1),
//  2. the log round-trips byte-identically through its wire codec, and a
//     timeline re-derived from the decoded bytes re-encodes to the same
//     bytes as the store's own, and
//  3. integrating each timeline reproduces the engine's final result sets,
//     and the last reconstructed frame carries the objects' exact final
//     positions.
//
// Runs on the serial and the sharded engine: shards race on the tap, but
// per-query sequencing and the sink/subscriber agreement are lock-ordered,
// so the oracle holds either way.
func TestHistoryReplayOracle(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"serial", 0}, {"sharded", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := sim.DefaultConfig()
			cfg.AreaSqMiles = 2500
			cfg.NumObjects = 200
			cfg.NumQueries = 20
			cfg.VelocityChangesPerStep = 40
			cfg.ServerShards = tc.shards

			tap := stream.NewTap()
			store := history.NewStore(64 << 20) // never evicts at this scale
			cfg.Stream = tap
			cfg.ResultLog = store

			// Ground truth: subscribe before the engine exists, so the
			// stream covers installation transitions too.
			sub, snap := tap.Subscribe(stream.Firehose, 1<<20)
			defer sub.Close()
			if len(snap) != 0 {
				t.Fatalf("pre-run snapshot = %v", snap)
			}

			eng := sim.NewEngine(cfg)
			for i := 0; i < 8; i++ {
				eng.Step()
			}

			events, evicted := sub.Drain()
			if evicted {
				t.Fatal("oracle subscriber evicted — raise its buffer")
			}
			if _, _, _, erecs := store.Stats(); erecs != 0 {
				t.Fatal("store evicted records — raise its budget")
			}
			want := map[int64][]stream.Event{}
			for _, ev := range events {
				want[ev.QID] = append(want[ev.QID], ev)
			}

			// Query set straight from the log's lifecycle marks.
			var qids []int64
			for _, r := range store.All() {
				if r.Kind == history.KindQuery {
					qids = append(qids, r.QID)
				}
			}
			if len(qids) != cfg.NumQueries {
				t.Fatalf("logged %d query marks, want %d", len(qids), cfg.NumQueries)
			}

			// (2) Byte-identical codec round trip of the whole log.
			enc := history.EncodeLog(store.All())
			dec, err := history.DecodeLog(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(history.EncodeLog(dec), enc) {
				t.Fatal("log does not round-trip byte-identically")
			}

			for _, qid := range qids {
				// (1) Logged timeline == subscriber ground truth.
				tl := store.Timeline(qid)
				evs := want[qid]
				if len(tl) != len(evs) {
					t.Fatalf("qid %d: %d logged transitions, %d streamed", qid, len(tl), len(evs))
				}
				for i, r := range tl {
					ev := evs[i]
					if r.Seq != uint64(i+1) || r.Seq != ev.Seq || r.OID != ev.OID ||
						(r.Kind == history.KindEnter) != ev.Enter {
						t.Fatalf("qid %d transition %d: logged %+v, streamed %+v", qid, i, r, ev)
					}
				}

				// (2) Timeline re-derived from decoded bytes re-encodes
				// identically.
				var fromDec []history.Record
				for _, r := range dec {
					if r.QID == qid && (r.Kind == history.KindEnter || r.Kind == history.KindLeave) {
						fromDec = append(fromDec, r)
					}
				}
				if !bytes.Equal(history.EncodeLog(fromDec), history.EncodeLog(tl)) {
					t.Fatalf("qid %d: replayed timeline differs from the store's", qid)
				}

				// (3) Integrated timeline == engine's final result set.
				members := map[int64]bool{}
				for _, r := range tl {
					if r.Kind == history.KindEnter {
						members[r.OID] = true
					} else {
						delete(members, r.OID)
					}
				}
				res := eng.Server().Result(model.QueryID(qid))
				if len(res) != len(members) {
					t.Fatalf("qid %d: replay has %d members, engine %d", qid, len(members), len(res))
				}
				for _, oid := range res {
					if !members[int64(oid)] {
						t.Fatalf("qid %d: engine member %d missing from replay", qid, oid)
					}
				}
			}

			// (3) The last reconstructed frame has the exact final positions.
			frames := history.Frames(store.All())
			if len(frames) == 0 {
				t.Fatal("no frames reconstructed")
			}
			last := frames[len(frames)-1]
			if last.T != float64(eng.Now()) {
				t.Fatalf("last frame at t=%v, engine at t=%v", last.T, eng.Now())
			}
			for _, o := range eng.Workload().Objects {
				p, ok := last.Pos[int64(o.ID)]
				if !ok || p[0] != o.Pos.X || p[1] != o.Pos.Y {
					t.Fatalf("object %d: frame pos %v, world pos %v", o.ID, p, o.Pos)
				}
			}

			// Sanity: the stream was live, not trivially empty.
			if published, _, dropped, _ := tap.Stats(); published == 0 || dropped != 0 {
				t.Fatalf("tap stats: published %d dropped %d", published, dropped)
			}
			sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
			if qids[0] != 1 {
				t.Fatalf("first qid = %d", qids[0])
			}
		})
	}
}
