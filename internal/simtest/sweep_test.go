package simtest

import (
	"fmt"
	"math/rand"
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/workload"
)

// variants are the protocol configurations the sweeps rotate through.
// The zero Options value (eager, Δ=0, no skipping) is the exact variant
// the ground-truth oracle applies to.
var variants = []core.Options{
	{},
	{Grouping: true},
	{Mode: core.LazyPropagation},
	{DeadReckoningThreshold: 0.5},
	{Mode: core.LazyPropagation, DeadReckoningThreshold: 0.5, Grouping: true},
	{SafePeriod: true},
	{Predictive: true, Grouping: true},
}

var mobilities = []workload.MobilityModel{
	workload.RandomWalk, workload.RandomWaypoint, workload.GaussMarkov,
}

// localScenario builds a fault-free serial-vs-sharded scenario for a seed.
func localScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Seed:       seed,
		NumObjects: 36 + rng.Intn(20),
		NumSpecs:   12,
		Opts:       variants[int(seed)%len(variants)],
		Mobility:   mobilities[int(seed)%len(mobilities)],
		Shards:     2 + rng.Intn(6),
	}
	sc.Ops = Generate(rng, GenConfig{
		Ops:         16 + rng.Intn(10),
		NumSpecs:    sc.NumSpecs,
		AllowExpiry: true,
		AllowChurn:  true,
	})
	return sc
}

// TestLockstepSweep drives the serial and sharded engines through seeded
// random schedules — installs, removals, expiries, churn and mobility —
// asserting the full oracle hierarchy after every operation.
func TestLockstepSweep(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		sc := localScenario(seed)
		t.Run(fmt.Sprintf("seed=%d/%s", seed, sc.Opts.Mode), func(t *testing.T) {
			t.Parallel()
			if err := RunScenario(sc); err != nil {
				t.Fatalf("oracle violation: %v\nrepro:\n%s", err, ReproCase(sc))
			}
		})
	}
}

// remoteScenario builds a fault-free three-engine scenario: serial,
// sharded, and the remote server over in-memory pipes. No expiry ops (the
// remote expiry sweep runs on the wall clock, not simulation time).
func remoteScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Seed:       seed,
		NumObjects: 24 + rng.Intn(12),
		NumSpecs:   10,
		Opts:       variants[int(seed)%len(variants)],
		Mobility:   mobilities[int(seed)%len(mobilities)],
		Shards:     2 + rng.Intn(4),
		Remote:     true,
	}
	sc.Ops = Generate(rng, GenConfig{
		Ops:        12 + rng.Intn(8),
		NumSpecs:   sc.NumSpecs,
		AllowChurn: true,
	})
	return sc
}

// TestRemoteLockstepSweep adds the network server as the third engine:
// same schedules, same oracles, with quiescence established by the
// Ping/Pong barrier instead of synchronous delivery.
func TestRemoteLockstepSweep(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(101); seed < int64(101+seeds); seed++ {
		sc := remoteScenario(seed)
		t.Run(fmt.Sprintf("seed=%d/%s", sc.Seed, sc.Opts.Mode), func(t *testing.T) {
			t.Parallel()
			if err := RunScenario(sc); err != nil {
				t.Fatalf("oracle violation: %v\nrepro:\n%s", err, ReproCase(sc))
			}
		})
	}
}

// TestScheduleRoundTrip checks the replayable text form.
func TestScheduleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := Generate(rng, GenConfig{Ops: 40, NumSpecs: 9, AllowExpiry: true, AllowChurn: true})
	parsed, err := ParseSchedule(FormatSchedule(ops))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(parsed) != len(ops) {
		t.Fatalf("round trip changed length: %d != %d", len(parsed), len(ops))
	}
	for i := range ops {
		if parsed[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, parsed[i], ops[i])
		}
	}
	if _, err := ParseSchedule("step\nbogus 3\n"); err == nil {
		t.Fatal("expected error for unknown op")
	}
}
