package simtest

import (
	"strings"
	"testing"
)

// TestTracedFailureDumpsCausalTimeline is the tracing acceptance test: a
// planted broadcast-skip bug under a traced run must fail the oracle AND
// the returned error must carry the causal event timeline of the divergent
// query — including the recorded drop of the vanished broadcast.
func TestTracedFailureDumpsCausalTimeline(t *testing.T) {
	var dump string
	for seed := int64(701); seed < 721; seed++ {
		sc := buggyScenario(seed)
		sc.Trace = true
		if err := RunScenario(sc); err != nil {
			dump = err.Error()
			break
		}
	}
	if dump == "" {
		t.Fatal("planted bug never caught across 20 seeds")
	}
	t.Logf("failure with timeline:\n%s", dump)
	for _, want := range []string{
		"causal timeline",  // the dump header with the pinned oid/qid
		"--- serial:",      // one section per engine
		"--- sharded:",     //
		"ingress",          // the chain starts at an uplink ingress
		"(injected fault)", // the sharded engine recorded the dropped broadcast
		"drop",             // ...as a KindDrop event
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("failure dump missing %q", want)
		}
	}
}

// TestTracedScenariosStillPass: tracing must not perturb a correct run —
// the same seeds that pass untraced pass traced, locally and with the
// remote engine over pipes.
func TestTracedScenariosStillPass(t *testing.T) {
	sc := localScenario(42)
	sc.Trace = true
	if err := RunScenario(sc); err != nil {
		t.Fatalf("traced local scenario failed: %v", err)
	}
	rsc := remoteScenario(42)
	rsc.Trace = true
	if err := RunScenario(rsc); err != nil {
		t.Fatalf("traced remote scenario failed: %v", err)
	}
}

// TestTracedFaultInjection runs one fault-injection scenario with tracing
// enabled: trace IDs ride the faulty transport (dropped, duplicated and
// reordered frames) without disturbing recovery, and the run stays
// race-clean under -race.
func TestTracedFaultInjection(t *testing.T) {
	sc := faultScenario(501)
	sc.Trace = true
	if err := RunScenario(sc); err != nil {
		t.Fatalf("traced fault scenario failed: %v", err)
	}
}
