package simtest

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/remote"
	"mobieyes/internal/wire"
	"mobieyes/internal/workload"
)

// pipeListener is an in-memory net.Listener fed by dial(): each accepted
// connection is one end of a net.Pipe, so the remote server runs its real
// accept/serve/outbox machinery with no sockets and no timing dependence.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// remoteClient is the harness-driven device side of one connection: a real
// core.Client whose uplink writes wire frames, a reader goroutine decoding
// downlink frames into a mailbox, and a pong channel for the barrier.
type remoteClient struct {
	oid    model.ObjectID
	client *core.Client

	conn       net.Conn // current client-side end; swapped on reconnect
	readerDone chan struct{}

	mu   sync.Mutex
	mail []remoteMail

	pongs chan uint64
	dead  bool // connection killed or object departed

	// curTID is the trace ID of the downlink being delivered (set by the
	// settle loop, which is the only goroutine calling OnDownlink), stamped
	// onto response uplinks so traces chain across the pipe.
	curTID uint64
}

// remoteMail is one decoded downlink plus its frame's trace ID.
type remoteMail struct {
	m   msg.Message
	tid uint64
}

func (rc *remoteClient) takeMail() []remoteMail {
	rc.mu.Lock()
	m := rc.mail
	rc.mail = nil
	rc.mu.Unlock()
	return m
}

// remoteClientUp is the client's uplink. Write errors are ignored: a dead
// connection means the frame is lost, exactly the device-offline semantics
// the resync protocol exists to heal.
type remoteClientUp struct{ rc *remoteClient }

func (u remoteClientUp) Send(m msg.Message) {
	_ = remote.WriteFrame(u.rc.conn, wire.EncodeTraced(m, u.rc.curTID))
}

// remoteSystem drives the internal/remote server over in-memory pipes.
// Determinism comes from quiescence, not timing: after every burst of
// traffic the harness runs a two-round Ping/Pong barrier per connection
// (round one confirms the server dispatched all prior uplinks — uplink
// handling is synchronous, so their downlinks are already queued in the
// outboxes; round two confirms the FIFO outboxes drained to the readers)
// and loops delivering mailbox contents until a barrier turns up nothing.
type remoteSystem struct {
	label  string
	g      *grid.Grid
	opts   core.Options
	srv    *remote.Server
	ln     *pipeListener
	objs   []*model.MovingObject
	conns  []*remoteClient // index = oid-1
	active map[model.ObjectID]bool
	now    model.Time
	tokens atomic.Uint64
	faults *faultInjector // nil when the scenario is fault-free
	rec    *trace.Recorder
}

// settleTimeout bounds every pong wait; exceeding it is reported as a
// suspected deadlock.
const settleTimeout = 10 * time.Second

func newRemoteSystem(label string, uod geo.Rect, alpha float64, opts core.Options, objs []*model.MovingObject, shards, nodes int, plan *FaultPlan, traced bool) *remoteSystem {
	rs := &remoteSystem{
		label:  label,
		g:      grid.New(uod, alpha),
		opts:   opts,
		ln:     newPipeListener(),
		objs:   objs,
		conns:  make([]*remoteClient, len(objs)),
		active: make(map[model.ObjectID]bool),
	}
	if plan != nil {
		rs.faults = newFaultInjector(*plan)
	}
	if traced {
		rs.rec = trace.NewRecorder(trace.DefaultSize)
	}
	// The built-in backends cannot fail; the error path exists only for
	// Backend factories, which the harness never configures.
	rs.srv, _ = remote.Serve(remote.ServerConfig{
		UoD:          uod,
		Alpha:        alpha,
		Options:      opts,
		Shards:       shards,
		ClusterNodes: nodes,
		Trace:        rs.rec,
		// Killed connections must not depart their objects: the harness
		// reconnects them within the scenario, never after a minute.
		DisconnectGrace: time.Minute,
	}, rs.ln)
	return rs
}

func (rs *remoteSystem) name() string { return rs.label }

func (rs *remoteSystem) tracer() *trace.Recorder { return rs.rec }

// dial opens one connection (through the fault relay when configured) and
// performs the hello handshake.
func (rs *remoteSystem) dial(oid model.ObjectID) (net.Conn, error) {
	var cli, srv net.Conn
	if rs.faults != nil {
		cli, srv = rs.faults.pipe()
	} else {
		cli, srv = net.Pipe()
	}
	select {
	case rs.ln.ch <- srv:
	case <-time.After(settleTimeout):
		return nil, fmt.Errorf("%s: server stopped accepting", rs.label)
	}
	if err := remote.WriteFrame(cli, remote.EncodeHello(oid)); err != nil {
		return nil, fmt.Errorf("%s: hello for object %d: %w", rs.label, oid, err)
	}
	return cli, nil
}

// readLoop decodes downlink frames for one connection generation. Pongs
// route to the barrier channel; everything else queues for delivery at the
// next settle.
func (rs *remoteSystem) readLoop(rc *remoteClient, conn net.Conn, done chan struct{}) {
	defer close(done)
	br := bufio.NewReader(conn)
	for {
		payload, err := remote.ReadFrame(br)
		if err != nil {
			return
		}
		m, tid, err := wire.DecodeTraced(payload)
		if err != nil {
			return
		}
		if pong, ok := m.(msg.Pong); ok {
			select {
			case rc.pongs <- pong.Token:
			default: // overflow: the barrier will time out and report it
			}
			continue
		}
		rc.mu.Lock()
		rc.mail = append(rc.mail, remoteMail{m: m, tid: tid})
		rc.mu.Unlock()
	}
}

func (rs *remoteSystem) join(o *model.MovingObject, now model.Time) error {
	rs.now = now
	conn, err := rs.dial(o.ID)
	if err != nil {
		return err
	}
	rc := &remoteClient{
		oid:        o.ID,
		conn:       conn,
		readerDone: make(chan struct{}),
		pongs:      make(chan uint64, 64),
	}
	rc.client = core.NewClient(rs.g, rs.opts, remoteClientUp{rc}, o.ID, o.Props, o.MaxVel, o.Pos)
	rs.conns[int(o.ID)-1] = rc
	rs.active[o.ID] = true
	go rs.readLoop(rc, conn, rc.readerDone)
	rc.client.Join(o.Pos, o.Vel, now)
	return rs.settle()
}

func (rs *remoteSystem) depart(oid model.ObjectID, now model.Time) error {
	rs.now = now
	rc := rs.conns[int(oid)-1]
	rc.client.Depart()
	// The server closes the connection after dispatching the departure, so
	// the reader's exit doubles as the processed-acknowledgement.
	select {
	case <-rc.readerDone:
	case <-time.After(settleTimeout):
		return fmt.Errorf("%s: departure of object %d not acknowledged", rs.label, oid)
	}
	rc.dead = true
	rs.active[oid] = false
	rc.conn.Close()
	return rs.settle()
}

func (rs *remoteSystem) install(spec workload.QuerySpec, maxVel float64, now model.Time) (model.QueryID, error) {
	rs.now = now
	qid := rs.srv.InstallQuery(spec.Focal, model.CircleRegion{R: spec.Radius}, spec.Filter, maxVel)
	return qid, rs.settle()
}

func (rs *remoteSystem) installUntil(spec workload.QuerySpec, maxVel float64, expiry, now model.Time) (model.QueryID, error) {
	rs.now = now
	qid := rs.srv.InstallQueryUntil(spec.Focal, model.CircleRegion{R: spec.Radius}, spec.Filter, maxVel, expiry)
	return qid, rs.settle()
}

func (rs *remoteSystem) remove(qid model.QueryID, now model.Time) error {
	rs.now = now
	rs.srv.RemoveQuery(qid)
	return rs.settle()
}

// expire is a no-op: the remote server's expiry sweep runs on the wall
// clock, so scenarios that include remote engines exclude expiry ops
// (GenConfig.AllowExpiry).
func (rs *remoteSystem) expire(model.Time) error { return nil }

func (rs *remoteSystem) step(now model.Time) error {
	rs.now = now
	phases := []func(rc *remoteClient, o *model.MovingObject){
		func(rc *remoteClient, o *model.MovingObject) { rc.client.TickCellChange(o.Pos, o.Vel, now) },
		func(rc *remoteClient, o *model.MovingObject) { rc.client.TickDeadReckoning(o.Pos, o.Vel, now) },
		func(rc *remoteClient, o *model.MovingObject) { rc.client.TickEvaluate(o.Pos, o.Vel, now) },
	}
	for _, phase := range phases {
		for i, rc := range rs.conns {
			if rc == nil || !rs.active[model.ObjectID(i+1)] {
				continue
			}
			// Dead (killed, not yet reconnected) devices keep ticking —
			// the device works, the network doesn't — and their uplinks
			// are lost, which Resync later repairs.
			phase(rc, rs.objs[i])
		}
		if err := rs.settle(); err != nil {
			return err
		}
	}
	return nil
}

// settle drives the system to quiescence: barrier, deliver all queued
// downlinks, repeat until a barrier yields no new mail. The round cap and
// the barrier timeout turn protocol livelocks and deadlocks into test
// failures instead of hangs.
func (rs *remoteSystem) settle() error {
	for round := 0; ; round++ {
		if round > 200 {
			return fmt.Errorf("%s: settle did not quiesce after %d rounds", rs.label, round)
		}
		if err := rs.barrier(); err != nil {
			return err
		}
		delivered := false
		for i, rc := range rs.conns {
			if rc == nil || rc.dead || !rs.active[model.ObjectID(i+1)] {
				continue
			}
			for _, in := range rc.takeMail() {
				o := rs.objs[i]
				rc.curTID = in.tid
				rc.client.OnDownlink(in.m, o.Pos, o.Vel, rs.now)
				rc.curTID = 0
				delivered = true
			}
		}
		if !delivered {
			return nil
		}
	}
}

// barrier runs the two Ping/Pong rounds over every live connection.
func (rs *remoteSystem) barrier() error {
	for round := 0; round < 2; round++ {
		type pending struct {
			rc    *remoteClient
			token uint64
		}
		var waits []pending
		for _, rc := range rs.conns {
			if rc == nil || rc.dead {
				continue
			}
			token := rs.tokens.Add(1)
			if err := remote.WriteFrame(rc.conn, wire.Encode(msg.Ping{Token: token})); err != nil {
				return fmt.Errorf("%s: ping to object %d: %w", rs.label, rc.oid, err)
			}
			waits = append(waits, pending{rc, token})
		}
		deadline := time.After(settleTimeout)
		for _, w := range waits {
			for {
				select {
				case got := <-w.rc.pongs:
					if got == w.token {
						// Stale pongs from before are drained and ignored.
					} else {
						continue
					}
				case <-deadline:
					return fmt.Errorf("%s: no pong from object %d within %v (deadlock?)", rs.label, w.rc.oid, settleTimeout)
				}
				break
			}
		}
	}
	return nil
}

// kill severs an object's connection mid fault window. The device's state
// survives; its traffic is lost until reconnect.
func (rs *remoteSystem) kill(oid model.ObjectID) {
	rc := rs.conns[int(oid)-1]
	if rc == nil || rc.dead || !rs.active[oid] {
		return
	}
	rc.dead = true
	rc.conn.Close()
	rc.takeMail() // in-flight downlinks died with the link
}

// reconnect re-establishes a killed object's connection and resyncs its
// client state with the server, mirroring remote.Object's redial path.
func (rs *remoteSystem) reconnect(oid model.ObjectID, now model.Time) error {
	rc := rs.conns[int(oid)-1]
	if rc == nil || !rc.dead || !rs.active[oid] {
		return nil
	}
	conn, err := rs.dial(oid)
	if err != nil {
		return err
	}
	rc.conn = conn
	rc.readerDone = make(chan struct{})
	rc.dead = false
	go rs.readLoop(rc, conn, rc.readerDone)
	o := rs.objs[int(oid)-1]
	rc.client.Resync(o.Pos, o.Vel, now)
	return nil
}

// heal runs when the fault window closes: reconnect every killed object,
// then resync every client so state lost to dropped frames is re-reported,
// and settle. The oracle stays weakened for ConvergeSteps more ops while
// results re-converge.
func (rs *remoteSystem) heal(now model.Time) error {
	rs.now = now
	for i, rc := range rs.conns {
		oid := model.ObjectID(i + 1)
		if rc == nil || !rs.active[oid] {
			continue
		}
		if rc.dead {
			if err := rs.reconnect(oid, now); err != nil {
				return err
			}
			continue
		}
		o := rs.objs[i]
		rc.client.Resync(o.Pos, o.Vel, now)
	}
	return rs.settle()
}

func (rs *remoteSystem) queryIDs() []model.QueryID {
	ids := rs.srv.QueryIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (rs *remoteSystem) result(qid model.QueryID) []model.ObjectID { return rs.srv.Result(qid) }

func (rs *remoteSystem) invariants() error { return rs.srv.CheckInvariants() }

func (rs *remoteSystem) snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := rs.srv.Snapshot(&buf); err != nil {
		return nil, fmt.Errorf("%s: snapshot: %w", rs.label, err)
	}
	return buf.Bytes(), nil
}

func (rs *remoteSystem) close() { rs.srv.Close() }
