package simtest

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/sim"
	"mobieyes/internal/workload"
)

// alphaMiles is the grid cell side used by every scenario; with the
// 100×100-mile universe below it yields a 20×20 grid.
const alphaMiles = 5.0

// Scenario is one complete, self-describing differential test run: a
// seeded workload, a protocol variant, a set of engines, and an operation
// schedule. Everything is derived deterministically from the seeds, so a
// Scenario value IS the repro case.
type Scenario struct {
	Name       string
	Seed       int64
	NumObjects int
	NumSpecs   int
	Opts       core.Options
	Mobility   workload.MobilityModel
	// Shards is the sharded engine's partition count (0 = 4).
	Shards int
	// Nodes > 0 adds the router-plus-workers ClusterServer with that many
	// worker nodes as a third local engine ("clustered"), under the same
	// differential, ledger and snapshot oracles as the first two.
	Nodes int
	// ClusterEvents are node-level fault injections applied to the
	// clustered engine (requires Nodes > 0): a node kill drains its focals
	// to the survivors, a rebalance recomputes span boundaries and migrates
	// misplaced focals, a crash ungracefully fail-stops a node (no drain)
	// and recovers it from the router's checkpoint journal. All use
	// charge-free admin transfers, and the runner checkpoints the clustered
	// engine after every op (a zero-loss watermark), so the strict oracles
	// — including byte-identical snapshots and ledgers — keep holding
	// across every event; there is no weakened window.
	ClusterEvents []ClusterEvent
	// ClusterSuppressReplay plants the deliberate recovery bug: crash
	// recovery fences and sweeps the dead node but skips the journal
	// replay, cleanly losing its focal state. The teeth test uses it to
	// prove the convergence oracle notices suppressed replay.
	ClusterSuppressReplay bool
	// ClusterDropNth plants the deliberate equivalence bug into the
	// clustered engine — every Nth broadcast is skipped — the clustered
	// counterpart of DropNthBroadcast, used to prove the three-way oracle
	// has teeth and to feed the Shrink minimizer a clustered failure.
	ClusterDropNth int
	// Remote adds the internal/remote server over in-memory pipes as a
	// further engine.
	Remote bool
	// Faults injects transport faults into the remote engine (requires
	// Remote).
	Faults *FaultPlan
	// DropNthBroadcast plants a deliberate equivalence bug into the
	// sharded engine — every Nth broadcast is skipped — to prove the
	// oracle catches real protocol divergence.
	DropNthBroadcast int
	// Trace attaches a causal flight recorder to every engine; when an
	// oracle fails, the returned error carries the causal event timeline of
	// the divergent query or object from each engine (DESIGN.md §11).
	Trace bool
	// Costs attaches a cost accountant to each local engine and adds the
	// ledger oracle: after every strict-mode operation the serial and
	// sharded engines must have charged byte-for-byte identical global
	// ledgers (traffic by kind plus compute units), and the sharded
	// engine's per-shard ledgers plus the router ledger must sum to its
	// global uplink count — no message attributed twice or lost.
	Costs bool
	Ops   []Op

	// inspectCluster, when set, is called with the clustered engine after
	// the whole schedule ran without an oracle violation — test-side
	// introspection (e.g. "did the armed crash actually fire?").
	inspectCluster func(cs *core.ClusterServer)
}

// Cluster event kinds.
const (
	// ClusterKill marks worker node Node dead before op AtOp, gracefully
	// draining its focals to the survivors; the router refuses if it is
	// the last live node.
	ClusterKill = "kill"
	// ClusterRebalance recomputes the weighted cell-range assignment and
	// migrates misplaced focals before op AtOp.
	ClusterRebalance = "rebalance"
	// ClusterCrash fail-stops node Node *ungracefully* before op AtOp: no
	// drain, no extract — the router fences the node and replays its
	// journaled checkpoint into the survivors (DESIGN.md §15).
	ClusterCrash = "crash"
	// ClusterCrashOnHandoff arms node Node to crash at the most hostile
	// instant of its next cross-node handoff: after the source's
	// destructive extract, before the destination's inject.
	ClusterCrashOnHandoff = "crash-on-handoff"
)

// ClusterEvent schedules one node-level fault on the clustered engine:
// before executing op AtOp, node Node is killed or the cluster rebalanced.
type ClusterEvent struct {
	AtOp int
	Node int // ignored for ClusterRebalance
	Kind string
}

func (sc *Scenario) workloadConfig() workload.Config {
	return workload.Config{
		UoD:                    geo.NewRect(0, 0, 100, 100),
		NumObjects:             sc.NumObjects,
		NumQueries:             sc.NumSpecs,
		VelocityChangesPerStep: sc.NumObjects/5 + 1,
		Mobility:               sc.Mobility,
		StepSeconds:            30,
		WaypointPauseSteps:     [2]int{0, 2},
		GaussMarkovMemory:      0.85,
		GaussMarkovSigma:       0.15,
		MaxSpeeds:              []float64{100, 50, 150, 200, 250},
		RadiusMeans:            []float64{5, 3, 8},
		RadiusStdDevFrac:       0.2,
		ZipfTheta:              0.8,
		SelectivityPermille:    850,
		RadiusFactor:           1,
		Seed:                   sc.Seed,
	}
}

// gtEligible reports whether the ground-truth oracle applies: with eager
// propagation, Δ = 0 and no evaluation skipping, the protocol guarantees
// exact results, so the engines must match the brute-force evaluator.
func (sc *Scenario) gtEligible() bool {
	return sc.Opts.Mode == core.EagerPropagation &&
		sc.Opts.DeadReckoningThreshold == 0 &&
		!sc.Opts.SafePeriod && !sc.Opts.Predictive
}

// RunScenario executes the schedule against every engine in lockstep and
// returns the first oracle violation, annotated with the seed and the op
// index so the failure replays. A nil error means all oracles held after
// every operation.
func RunScenario(sc Scenario) error {
	wl := workload.New(sc.workloadConfig())
	g := grid.New(wl.Config().UoD, alphaMiles)
	shards := sc.Shards
	if shards <= 0 {
		shards = 4
	}

	if len(sc.ClusterEvents) > 0 && sc.Nodes <= 0 {
		return fmt.Errorf("simtest: scenario %q has cluster events but no clustered engine (Nodes == 0)", sc.Name)
	}

	serial := newLocalSystem("serial", g, sc.Opts, wl.Objects, 0, 0, 0, sc.Trace)
	sharded := newLocalSystem("sharded", g, sc.Opts, wl.Objects, shards, 0, sc.DropNthBroadcast, sc.Trace)
	locals := []*localSystem{serial, sharded}
	var csys *localSystem
	if sc.Nodes > 0 {
		csys = newLocalSystem("clustered", g, sc.Opts, wl.Objects, 0, sc.Nodes, sc.ClusterDropNth, sc.Trace)
		locals = append(locals, csys)
	}
	var ledgered []*localSystem
	if sc.Costs {
		for _, ls := range locals {
			a := cost.New()
			n := 0
			if ls == sharded {
				n = shards
			}
			a.Configure(g.NumCells(), 0, n)
			if ls == csys {
				a.ConfigureNodes(sc.Nodes)
			}
			ls.attachCosts(a)
			ledgered = append(ledgered, ls)
		}
	}
	systems := make([]system, 0, len(locals)+1)
	for _, ls := range locals {
		systems = append(systems, ls)
	}
	var rsys *remoteSystem
	if sc.Remote {
		rsys = newRemoteSystem("remote", wl.Config().UoD, alphaMiles, sc.Opts, wl.Objects, shards, sc.Nodes, sc.Faults, sc.Trace)
		defer rsys.close()
		systems = append(systems, rsys)
	}

	r := &runner{
		sc:        &sc,
		wl:        wl,
		g:         g,
		systems:   systems,
		ledgered:  ledgered,
		csys:      csys,
		rsys:      rsys,
		active:    make(map[model.ObjectID]bool),
		specByQID: make(map[model.QueryID]workload.QuerySpec),
	}
	if csys != nil && sc.ClusterSuppressReplay {
		csys.srv.(*core.ClusterServer).SuppressRecoveryReplay(true)
	}
	for _, o := range wl.Objects {
		for _, sys := range systems {
			if err := sys.join(o, r.now); err != nil {
				return fmt.Errorf("seed %d: initial join of object %d: %w", sc.Seed, o.ID, err)
			}
		}
		r.active[o.ID] = true
	}
	// Baseline checkpoint before the first op, so a crash scheduled at op 0
	// already has a (possibly empty) journal at the current watermark.
	if csys != nil {
		if err := csys.srv.(*core.ClusterServer).Checkpoint(); err != nil {
			return fmt.Errorf("seed %d: baseline checkpoint: %w", sc.Seed, err)
		}
	}
	for i, op := range sc.Ops {
		if err := r.apply(i, op); err != nil {
			if sc.Trace {
				return fmt.Errorf("%w\n%s", err, traceDump(systems, err))
			}
			return err
		}
	}
	if sc.inspectCluster != nil && csys != nil {
		sc.inspectCluster(csys.srv.(*core.ClusterServer))
	}
	return nil
}

// divergence is an oracle failure attributable to a specific query and/or
// object; a traced run uses the attribution to dump the exact causal
// timeline instead of the whole ring.
type divergence struct {
	err error
	qid model.QueryID
	oid model.ObjectID
}

func (d *divergence) Error() string { return d.err.Error() }
func (d *divergence) Unwrap() error { return d.err }

// tracedSystem is implemented by engines that can hand out their flight
// recorder (all of them when Scenario.Trace is set).
type tracedSystem interface {
	tracer() *trace.Recorder
}

// traceDump renders each engine's causal timeline of the failure: the
// closure of the divergent query/object when the error pinpoints one, the
// most recent events otherwise.
func traceDump(systems []system, err error) string {
	var div *divergence
	pinned := errors.As(err, &div)
	var b strings.Builder
	for _, sys := range systems {
		ts, ok := sys.(tracedSystem)
		if !ok || ts.tracer() == nil {
			continue
		}
		rec := ts.tracer()
		var evs []trace.Event
		if pinned {
			evs = rec.Causal(int64(div.oid), int64(div.qid))
			fmt.Fprintf(&b, "--- %s: causal timeline of oid=%d qid=%d (%d events) ---\n",
				sys.name(), div.oid, div.qid, len(evs))
		} else {
			evs = rec.Events(trace.Filter{Limit: 40})
			fmt.Fprintf(&b, "--- %s: most recent %d events ---\n", sys.name(), len(evs))
		}
		trace.Format(&b, evs)
	}
	return b.String()
}

type runner struct {
	sc       *Scenario
	wl       *workload.Workload
	g        *grid.Grid
	systems  []system
	ledgered []*localSystem // systems under the ledger oracle (Scenario.Costs)
	csys     *localSystem   // the clustered engine (Scenario.Nodes > 0); nil otherwise
	rsys     *remoteSystem
	now      model.Time

	active    map[model.ObjectID]bool
	specByQID map[model.QueryID]workload.QuerySpec
	// gtValid: the ground-truth oracle only applies once an evaluate phase
	// has run since the last mutation that introduced unevaluated state (a
	// new query or a new object); containment is reported by clients during
	// TickEvaluate, not at install time.
	gtValid bool
}

// faultPhase applies the fault plan's op-index triggers before op i runs.
func (r *runner) faultPhase(i int) error {
	f := r.sc.Faults
	if f == nil || r.rsys == nil || r.rsys.faults == nil {
		return nil
	}
	if i == f.Start {
		r.rsys.faults.active.Store(true)
	}
	for _, k := range f.Kills {
		if k.AtOp == i {
			r.rsys.kill(model.ObjectID(k.Obj))
		}
		// A killed object reconnects at the next op boundary, so the
		// resync path itself runs under active faults.
		if k.AtOp == i-1 {
			if err := r.rsys.reconnect(model.ObjectID(k.Obj), r.now); err != nil {
				return err
			}
		}
	}
	if i == f.End {
		r.rsys.faults.active.Store(false)
		if err := r.rsys.heal(r.now); err != nil {
			return err
		}
	}
	return nil
}

// clusterPhase applies the scheduled cluster events before op i runs: node
// kills and rebalances on the clustered engine. Both drain or migrate
// focals via charge-free admin handoffs, so no oracle weakening follows —
// the strict check after the op doubles as the convergence assertion.
func (r *runner) clusterPhase(i int) error {
	if r.csys == nil {
		return nil
	}
	cs := r.csys.srv.(*core.ClusterServer)
	for _, ev := range r.sc.ClusterEvents {
		if ev.AtOp != i {
			continue
		}
		switch ev.Kind {
		case ClusterKill:
			if err := cs.KillNode(ev.Node); err != nil {
				return fmt.Errorf("cluster event kill node %d: %w", ev.Node, err)
			}
		case ClusterRebalance:
			if _, err := cs.Rebalance(); err != nil {
				return fmt.Errorf("cluster event rebalance: %w", err)
			}
		case ClusterCrash:
			if err := cs.CrashNode(ev.Node); err != nil {
				return fmt.Errorf("cluster event crash node %d: %w", ev.Node, err)
			}
		case ClusterCrashOnHandoff:
			cs.ArmCrashOnHandoff(ev.Node)
		default:
			return fmt.Errorf("cluster event: unknown kind %q", ev.Kind)
		}
	}
	return nil
}

// strictAt reports whether the full oracle hierarchy applies after op i.
// During a fault window and for ConvergeSteps ops past it only the
// invariant and liveness oracles hold; strictness resuming afterwards IS
// the convergence assertion.
func (r *runner) strictAt(i int) bool {
	f := r.sc.Faults
	if f == nil {
		return true
	}
	return i < f.Start || i >= f.End+f.convergeSteps()
}

func (r *runner) apply(i int, op Op) error {
	fail := func(err error) error {
		return fmt.Errorf("seed %d, op %d (%s): %w", r.sc.Seed, i, op, err)
	}
	if err := r.faultPhase(i); err != nil {
		return fail(err)
	}
	if err := r.clusterPhase(i); err != nil {
		return fail(err)
	}
	switch op.Kind {
	case OpStep:
		r.now += model.FromSeconds(r.wl.Config().StepSeconds)
		r.wl.Step()
		for _, sys := range r.systems {
			if err := sys.expire(r.now); err != nil {
				return fail(err)
			}
			if err := sys.step(r.now); err != nil {
				return fail(err)
			}
		}
		r.gtValid = true
	case OpInstall, OpInstallUntil:
		spec := r.wl.Queries[op.A%len(r.wl.Queries)]
		maxVel := r.wl.Objects[int(spec.Focal)-1].MaxVel
		expiry := r.now + model.Time(float64(model.FromSeconds(r.wl.Config().StepSeconds))*float64(op.B))
		var qids []model.QueryID
		for _, sys := range r.systems {
			var qid model.QueryID
			var err error
			if op.Kind == OpInstall {
				qid, err = sys.install(spec, maxVel, r.now)
			} else {
				qid, err = sys.installUntil(spec, maxVel, expiry, r.now)
			}
			if err != nil {
				return fail(err)
			}
			qids = append(qids, qid)
		}
		for _, qid := range qids[1:] {
			if qid != qids[0] {
				return fail(fmt.Errorf("engines assigned different query IDs: %v", qids))
			}
		}
		r.specByQID[qids[0]] = spec
		r.gtValid = false
	case OpRemove:
		ids := r.systems[0].queryIDs()
		if len(ids) == 0 {
			return nil
		}
		qid := ids[op.A%len(ids)]
		for _, sys := range r.systems {
			if err := sys.remove(qid, r.now); err != nil {
				return fail(err)
			}
		}
	case OpDepart:
		oids := r.sortedActive()
		if len(oids) <= 2 {
			return nil // keep a population to compare
		}
		oid := oids[op.A%len(oids)]
		for _, sys := range r.systems {
			if err := sys.depart(oid, r.now); err != nil {
				return fail(err)
			}
		}
		r.active[oid] = false
	case OpJoin:
		oids := r.sortedDeparted()
		if len(oids) == 0 {
			return nil
		}
		oid := oids[op.A%len(oids)]
		for _, sys := range r.systems {
			if err := sys.join(r.wl.Objects[int(oid)-1], r.now); err != nil {
				return fail(err)
			}
		}
		r.active[oid] = true
		r.gtValid = false
	}
	// Checkpoint the clustered engine after every op: the journal watermark
	// is never more than one op behind, so a crash fired at the next op
	// boundary loses nothing and the strict oracle doubles as the
	// recovery-convergence assertion. (A live deployment checkpoints on the
	// ~1s telemetry round instead; loss is bounded by that watermark.)
	if r.csys != nil {
		if err := r.csys.srv.(*core.ClusterServer).Checkpoint(); err != nil {
			return fail(fmt.Errorf("checkpoint: %w", err))
		}
	}
	if err := r.checkOracle(r.strictAt(i)); err != nil {
		return fail(err)
	}
	return nil
}

func (r *runner) sortedActive() []model.ObjectID {
	var out []model.ObjectID
	for _, o := range r.wl.Objects {
		if r.active[o.ID] {
			out = append(out, o.ID)
		}
	}
	return out
}

func (r *runner) sortedDeparted() []model.ObjectID {
	var out []model.ObjectID
	for _, o := range r.wl.Objects {
		if !r.active[o.ID] {
			out = append(out, o.ID)
		}
	}
	return out
}

// checkOracle applies the oracle hierarchy of DESIGN.md §10. The invariant
// oracle always runs; under strict mode the differential oracle (query
// sets, per-query results, byte-identical snapshots across engines) and —
// for exact protocol variants — the ground-truth oracle run too.
func (r *runner) checkOracle(strict bool) error {
	for _, sys := range r.systems {
		if err := sys.invariants(); err != nil {
			return fmt.Errorf("%s: invariant violated: %w", sys.name(), err)
		}
	}
	if !strict {
		return nil
	}

	base := r.systems[0]
	baseIDs := base.queryIDs()
	for _, sys := range r.systems[1:] {
		if err := diffIDs(baseIDs, sys.queryIDs()); err != nil {
			return fmt.Errorf("%s vs %s: query sets differ: %w", base.name(), sys.name(), err)
		}
	}
	for _, qid := range baseIDs {
		want := base.result(qid)
		for _, sys := range r.systems[1:] {
			got := sys.result(qid)
			if !oidsEqual(want, got) {
				return &divergence{
					err: fmt.Errorf("query %d: %s result %v, %s result %v", qid, base.name(), want, sys.name(), got),
					qid: qid,
					oid: firstResultDiff(want, got),
				}
			}
		}
		if r.sc.gtEligible() && r.gtValid {
			spec, ok := r.specByQID[qid]
			if ok && r.active[spec.Focal] {
				gt := r.filterActive(sim.GroundTruth(r.g, r.wl.Objects, spec))
				if !oidsEqual(want, gt) {
					return &divergence{
						err: fmt.Errorf("query %d: engines report %v, ground truth %v", qid, want, gt),
						qid: qid,
						oid: firstResultDiff(want, gt),
					}
				}
			}
		}
	}

	if err := r.checkLedgers(); err != nil {
		return err
	}

	baseSnap, err := base.snapshot()
	if err != nil {
		return err
	}
	for _, sys := range r.systems[1:] {
		if r.sc.Faults != nil && sys == system(r.rsys) {
			// A resync legitimately re-bases motion-state timestamps (same
			// trajectory, newer base point), so after a fault window the
			// remote snapshot is equivalent but not byte-identical. The
			// query-set, result, invariant and ground-truth oracles above
			// still hold for it.
			continue
		}
		snap, err := sys.snapshot()
		if err != nil {
			return err
		}
		if !bytes.Equal(baseSnap, snap) {
			return fmt.Errorf("%s snapshot (%d bytes) differs from %s snapshot (%d bytes)",
				sys.name(), len(snap), base.name(), len(baseSnap))
		}
	}
	return nil
}

// checkLedgers is the ledger oracle (Scenario.Costs): engines that ran the
// exact same schedule must have charged identical global cost ledgers —
// LedgerSnap is a comparable value, so this is one == per pair — and each
// sharded engine must attribute every dispatched uplink to exactly one
// shard (or the router for messages about unknown entities), making the
// shard sum plus router equal the global uplink count.
func (r *runner) checkLedgers() error {
	if len(r.ledgered) == 0 {
		return nil
	}
	base := r.ledgered[0]
	want := base.acct.Global()
	for _, ls := range r.ledgered[1:] {
		if got := ls.acct.Global(); got != want {
			return fmt.Errorf("%s vs %s: global cost ledgers diverged:\n%+v\nvs\n%+v",
				base.name(), ls.name(), want, got)
		}
	}
	for _, ls := range r.ledgered {
		shards := ls.acct.Shards()
		if len(shards) == 0 {
			continue
		}
		dispatched := ls.acct.Router().UplinkMsgs()
		for _, s := range shards {
			dispatched += s.UplinkMsgs()
		}
		if global := ls.acct.Global().UplinkMsgs(); dispatched != global {
			return fmt.Errorf("%s: shard+router ledgers account for %d uplinks, transport charged %d",
				ls.name(), dispatched, global)
		}
	}
	// The clustered counterpart: the router plus the worker-node ledgers
	// must account for every dispatched uplink exactly once, across kills
	// and rebalances too.
	for _, ls := range r.ledgered {
		nodes := ls.acct.Nodes()
		if len(nodes) == 0 {
			continue
		}
		dispatched := ls.acct.Router().UplinkMsgs()
		for _, n := range nodes {
			dispatched += n.UplinkMsgs()
		}
		if global := ls.acct.Global().UplinkMsgs(); dispatched != global {
			return fmt.Errorf("%s: node+router ledgers account for %d uplinks, transport charged %d",
				ls.name(), dispatched, global)
		}
	}
	return nil
}

// filterActive drops departed objects from a ground-truth result: the
// brute-force evaluator sees the whole population, the engines only the
// objects currently in the system.
func (r *runner) filterActive(ids []model.ObjectID) []model.ObjectID {
	out := ids[:0]
	for _, id := range ids {
		if r.active[id] {
			out = append(out, id)
		}
	}
	return out
}

func diffIDs(a, b []model.QueryID) error {
	if len(a) != len(b) {
		return fmt.Errorf("%v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%v vs %v", a, b)
		}
	}
	return nil
}

// firstResultDiff returns the first object ID present in one result set but
// not the other — the most suspicious entity of a result divergence. Both
// slices are sorted. Zero when the sets only differ by ordering.
func firstResultDiff(a, b []model.ObjectID) model.ObjectID {
	inA := make(map[model.ObjectID]bool, len(a))
	for _, id := range a {
		inA[id] = true
	}
	for _, id := range b {
		if !inA[id] {
			return id
		}
	}
	inB := make(map[model.ObjectID]bool, len(b))
	for _, id := range b {
		inB[id] = true
	}
	for _, id := range a {
		if !inB[id] {
			return id
		}
	}
	return 0
}

func oidsEqual(a, b []model.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
