package simtest

import (
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/telemetry"
	"mobieyes/internal/workload"
)

// telemetrySystem builds a clustered local engine with a telemetry plane
// attached, so every handoff/rebalance edge and explicit round runs the
// invariant watchdog against live ledgers.
func telemetrySystem(t *testing.T, seed int64, nodes int) (*localSystem, *core.ClusterServer, *telemetry.Plane, *cost.Accountant, *workload.Workload) {
	t.Helper()
	sc := Scenario{Seed: seed, NumObjects: 40, NumSpecs: 10}
	wl := workload.New(sc.workloadConfig())
	g := grid.New(wl.Config().UoD, alphaMiles)
	ls := newLocalSystem("clustered", g, core.Options{}, wl.Objects, 0, nodes, 0, false)
	acct := cost.New()
	acct.ConfigureNodes(nodes)
	ls.attachCosts(acct)
	cs := ls.srv.(*core.ClusterServer)
	plane := telemetry.New(telemetry.Config{Metrics: obs.NewRegistry(), Costs: acct})
	cs.SetTelemetry(plane)
	return ls, cs, plane, acct, wl
}

// TestWatchdogSilentAcrossSeeds is the no-false-positives gate: seeded
// protocol schedules on a clustered engine — including a mid-run rebalance
// and a node kill, whose handoff edges each trigger an inline watchdog
// round — must never raise an alert. The ledger identity is evaluated at
// every edge, so a single mis-charged dispatch anywhere in the handoff path
// would fail this test.
func TestWatchdogSilentAcrossSeeds(t *testing.T) {
	var totalHandoffs int64
	for seed := int64(1); seed <= 4; seed++ {
		ls, cs, plane, _, wl := telemetrySystem(t, seed, 3)
		tstep := model.FromSeconds(wl.Config().StepSeconds)
		var now model.Time
		for _, o := range wl.Objects {
			if err := ls.join(o, now); err != nil {
				t.Fatal(err)
			}
		}
		for _, spec := range wl.Queries {
			if _, err := ls.install(spec, wl.Objects[int(spec.Focal)-1].MaxVel, now); err != nil {
				t.Fatal(err)
			}
		}
		for step := 0; step < 30; step++ {
			now += tstep
			wl.Step()
			if err := ls.step(now); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if alerts := cs.TelemetryRound(); len(alerts) != 0 {
				t.Fatalf("seed %d step %d raised alerts: %v", seed, step, alerts)
			}
			switch step {
			case 10:
				if _, err := cs.Rebalance(); err != nil {
					t.Fatalf("seed %d rebalance: %v", seed, err)
				}
			case 20:
				if err := cs.KillNode(1); err != nil {
					t.Fatalf("seed %d kill: %v", seed, err)
				}
			}
		}
		if alerts := cs.TelemetryRound(); len(alerts) != 0 {
			t.Fatalf("seed %d final round alerts: %v", seed, alerts)
		}
		if s := plane.HealthStatus(); s != telemetry.HealthOK {
			t.Fatalf("seed %d health = %s", seed, s)
		}
		totalHandoffs += plane.Snapshot().Handoffs
		if err := cs.CheckInvariants(); err != nil {
			t.Errorf("seed %d invariants: %v", seed, err)
		}
	}
	if totalHandoffs == 0 {
		t.Error("no seed produced a handoff edge — the silent gate is vacuous")
	}
}

// TestWatchdogCatchesLedgerSkew is the teeth check for the silent gate: a
// node-ledger charge with no matching global charge (a lost or double
// dispatch attribution) must raise ledger-identity on the very next round
// and fail readiness — then resolve once the books balance again.
func TestWatchdogCatchesLedgerSkew(t *testing.T) {
	ls, cs, plane, acct, wl := telemetrySystem(t, 7, 2)
	var now model.Time
	for _, o := range wl.Objects {
		if err := ls.join(o, now); err != nil {
			t.Fatal(err)
		}
	}
	if alerts := cs.TelemetryRound(); len(alerts) != 0 {
		t.Fatalf("healthy engine raised alerts: %v", alerts)
	}

	acct.NodeUplink(0, msg.KindVelocityReport, 10) // skew: no global charge

	alerts := cs.TelemetryRound()
	if len(alerts) != 1 || alerts[0].Check != telemetry.CheckLedgerIdentity {
		t.Fatalf("skew alerts = %v, want one ledger-identity", alerts)
	}
	if s, ok := plane.Ready(); ok || s != telemetry.HealthFailing {
		t.Errorf("Ready() = %s,%v, want failing,false", s, ok)
	}

	acct.Uplink(msg.KindVelocityReport, 10) // balance the books
	if alerts := cs.TelemetryRound(); len(alerts) != 0 {
		t.Fatalf("balanced ledger still alerting: %v", alerts)
	}
	if s := plane.HealthStatus(); s != telemetry.HealthOK {
		t.Errorf("health after repair = %s", s)
	}
}
