package simtest

import "fmt"

// Shrink minimizes a failing scenario's schedule with delta debugging:
// ever-smaller chunks of ops are removed while the scenario keeps failing,
// until no single remaining op can be dropped (1-minimality) or maxRuns
// replays are spent. The result replays deterministically because replay
// state depends only on the seeds and the surviving ops — the workload's
// random process is consumed exclusively by OpStep.
//
// Cluster events address schedule positions by index, so each candidate
// removal remaps them: an event past the removed chunk shifts down with
// the ops behind it, an event inside the chunk fires at the removal point,
// and every event is clamped into the surviving schedule so it still
// fires. The candidate is kept only if it still fails, so remapping never
// manufactures a spurious repro. Fault plans window by index too but
// additionally couple to transport reconnection state; scenarios carrying
// one stay unshrunk.
func Shrink(sc Scenario, maxRuns int) (Scenario, error) {
	if sc.Faults != nil {
		return sc, fmt.Errorf("simtest: cannot shrink a scenario with a fault plan")
	}
	fails := func(ops []Op, evs []ClusterEvent) bool {
		t := sc
		t.Ops = ops
		t.ClusterEvents = evs
		return RunScenario(t) != nil
	}
	runs := 1
	if !fails(sc.Ops, sc.ClusterEvents) {
		return sc, fmt.Errorf("simtest: scenario does not fail; nothing to shrink")
	}
	ops, evs := sc.Ops, sc.ClusterEvents
	for chunk := len(ops) / 2; chunk > 0; chunk /= 2 {
		for start := 0; start < len(ops) && runs < maxRuns; {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			candidate := make([]Op, 0, len(ops)-(end-start))
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[end:]...)
			remapped := remapEvents(evs, start, end, len(candidate))
			runs++
			if len(candidate) > 0 && fails(candidate, remapped) {
				ops, evs = candidate, remapped // keep shrinking from here
			} else {
				start += chunk
			}
		}
	}
	sc.Ops, sc.ClusterEvents = ops, evs
	return sc, nil
}

// remapEvents adjusts cluster-event op indices for the removal of ops
// [start, end): events past the chunk shift down by its length, events
// inside it land on the op now at start, and everything is clamped into
// [0, n) so no event silently stops firing.
func remapEvents(evs []ClusterEvent, start, end, n int) []ClusterEvent {
	if len(evs) == 0 {
		return nil
	}
	out := make([]ClusterEvent, len(evs))
	for i, ev := range evs {
		switch {
		case ev.AtOp >= end:
			ev.AtOp -= end - start
		case ev.AtOp >= start:
			ev.AtOp = start
		}
		if ev.AtOp >= n {
			ev.AtOp = n - 1
		}
		if ev.AtOp < 0 {
			ev.AtOp = 0
		}
		out[i] = ev
	}
	return out
}

// ReproCase renders a shrunk failing scenario as the replayable text a
// test prints on failure: the scenario parameters and cluster events as
// comments and the schedule in FormatSchedule form, ready for
// ParseSchedule + RunScenario.
func ReproCase(sc Scenario) string {
	head := fmt.Sprintf(
		"# simtest repro: seed=%d objects=%d specs=%d opts=%+v mobility=%v nodes=%d remote=%v dropNth=%d clusterDropNth=%d suppressReplay=%v\n",
		sc.Seed, sc.NumObjects, sc.NumSpecs, sc.Opts, sc.Mobility, sc.Nodes, sc.Remote,
		sc.DropNthBroadcast, sc.ClusterDropNth, sc.ClusterSuppressReplay)
	for _, ev := range sc.ClusterEvents {
		head += fmt.Sprintf("# cluster-event at=%d node=%d kind=%s\n", ev.AtOp, ev.Node, ev.Kind)
	}
	return head + FormatSchedule(sc.Ops)
}
