package simtest

import "fmt"

// Shrink minimizes a failing scenario's schedule with delta debugging:
// ever-smaller chunks of ops are removed while the scenario keeps failing,
// until no single remaining op can be dropped (1-minimality) or maxRuns
// replays are spent. The result replays deterministically because replay
// state depends only on the seeds and the surviving ops — the workload's
// random process is consumed exclusively by OpStep.
//
// Shrink applies to fault-free scenarios; fault windows and cluster events
// address schedule positions by index, which removal would shift.
func Shrink(sc Scenario, maxRuns int) (Scenario, error) {
	if sc.Faults != nil {
		return sc, fmt.Errorf("simtest: cannot shrink a scenario with a fault plan")
	}
	if len(sc.ClusterEvents) > 0 {
		return sc, fmt.Errorf("simtest: cannot shrink a scenario with cluster events")
	}
	fails := func(ops []Op) bool {
		t := sc
		t.Ops = ops
		return RunScenario(t) != nil
	}
	runs := 1
	if !fails(sc.Ops) {
		return sc, fmt.Errorf("simtest: scenario does not fail; nothing to shrink")
	}
	ops := sc.Ops
	for chunk := len(ops) / 2; chunk > 0; chunk /= 2 {
		for start := 0; start < len(ops) && runs < maxRuns; {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			candidate := make([]Op, 0, len(ops)-(end-start))
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[end:]...)
			runs++
			if len(candidate) > 0 && fails(candidate) {
				ops = candidate // keep shrinking from the same position
			} else {
				start += chunk
			}
		}
	}
	sc.Ops = ops
	return sc, nil
}

// ReproCase renders a shrunk failing scenario as the replayable text a
// test prints on failure: the scenario parameters as comments and the
// schedule in FormatSchedule form, ready for ParseSchedule + RunScenario.
func ReproCase(sc Scenario) string {
	return fmt.Sprintf(
		"# simtest repro: seed=%d objects=%d specs=%d opts=%+v mobility=%v nodes=%d remote=%v dropNth=%d clusterDropNth=%d\n%s",
		sc.Seed, sc.NumObjects, sc.NumSpecs, sc.Opts, sc.Mobility, sc.Nodes, sc.Remote,
		sc.DropNthBroadcast, sc.ClusterDropNth,
		FormatSchedule(sc.Ops))
}
