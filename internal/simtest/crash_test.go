package simtest

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"mobieyes/internal/core"
)

// crashScenario builds one crash-schedule differential run: serial, sharded
// and clustered engines in lockstep with the runner checkpointing the
// clustered engine after every op, plus a seeded ungraceful-kill pattern
// chosen by seed — a plain crash landing right after a step (the
// in-flight-uplink case), an armed mid-handoff crash, a double kill of two
// distinct nodes, or a crash at a rebalance edge. The strict oracles —
// byte-identical snapshots, ledger identity, ground truth for exact
// variants — must hold after every op, including the one the crash
// precedes: recovery replaying the zero-loss watermark IS the
// exactness-resumes guarantee.
func crashScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed * 7919))
	sc := Scenario{
		Name:       fmt.Sprintf("crash-%d", seed),
		Seed:       seed,
		NumObjects: 30 + rng.Intn(16),
		NumSpecs:   10,
		Opts:       variants[int(seed)%len(variants)],
		Mobility:   mobilities[int(seed)%len(mobilities)],
		Shards:     2 + rng.Intn(3),
		// 3–4 nodes, so a double kill still leaves survivors to replay into.
		Nodes: 3 + rng.Intn(2),
		Costs: true,
	}
	sc.Ops = Generate(rng, GenConfig{
		Ops:         16 + rng.Intn(8),
		NumSpecs:    sc.NumSpecs,
		AllowExpiry: true,
		AllowChurn:  true,
	})
	n := len(sc.Ops)
	victim := rng.Intn(sc.Nodes)
	switch seed % 4 {
	case 0:
		// Ungraceful kill with in-flight traffic: the crash fires at the op
		// boundary right after a mobility step, when the step's uplink wave
		// has just mutated the victim's tables.
		sc.ClusterEvents = []ClusterEvent{
			{AtOp: afterStep(sc.Ops, n/2), Node: victim, Kind: ClusterCrash},
		}
	case 1:
		// Kill mid-handoff: arm early; the victim dies between the
		// destructive extract and the inject of its next outbound handoff.
		sc.ClusterEvents = []ClusterEvent{
			{AtOp: n / 4, Node: victim, Kind: ClusterCrashOnHandoff},
		}
	case 2:
		// Double kill: two distinct victims, the second while the cluster is
		// already running on the survivors of the first.
		sc.ClusterEvents = []ClusterEvent{
			{AtOp: n / 3, Node: victim, Kind: ClusterCrash},
			{AtOp: 2 * n / 3, Node: (victim + 1) % sc.Nodes, Kind: ClusterCrash},
		}
	default:
		// Kill during rebalance: spans recompute and misplaced focals
		// migrate, then the victim dies on the fresh epoch before the op
		// runs.
		sc.ClusterEvents = []ClusterEvent{
			{AtOp: n / 2, Kind: ClusterRebalance},
			{AtOp: n / 2, Node: victim, Kind: ClusterCrash},
		}
	}
	return sc
}

// afterStep returns the first op index >= from whose predecessor is an
// OpStep, so an event scheduled there fires right behind a mobility step's
// uplink wave. Generate always ends schedules with steps, so one exists.
func afterStep(ops []Op, from int) int {
	if from < 1 {
		from = 1
	}
	for i := from; i < len(ops); i++ {
		if ops[i-1].Kind == OpStep {
			return i
		}
	}
	return from
}

// saveCrashRepro shrinks a failing crash scenario and, when the
// CRASH_REPRO_OUT environment variable names a file, writes the first
// repro there (first failure wins) — the artifact CI uploads. It returns
// the repro text for the failure message.
func saveCrashRepro(t *testing.T, sc Scenario) string {
	t.Helper()
	shrunk, err := Shrink(sc, 150)
	if err != nil {
		shrunk = sc // unshrinkable or raced to passing; keep the original
	}
	repro := ReproCase(shrunk)
	if path := os.Getenv("CRASH_REPRO_OUT"); path != "" {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			_, _ = f.WriteString(repro)
			_ = f.Close()
		}
	}
	return repro
}

// TestCrashScheduleSweep is the crash-recovery acceptance sweep: 16 seeded
// crash schedules covering plain kills behind uplink waves, armed
// mid-handoff kills, double kills and kills at rebalance edges, each run
// under the full three-way strict oracle hierarchy with per-op
// checkpoints. Any violation is shrunk to a minimal replayable repro.
func TestCrashScheduleSweep(t *testing.T) {
	seeds := 16
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		sc := crashScenario(seed)
		t.Run(fmt.Sprintf("seed=%d/%s/nodes=%d/%s", seed, sc.Opts.Mode, sc.Nodes, sc.ClusterEvents[0].Kind), func(t *testing.T) {
			t.Parallel()
			if err := RunScenario(sc); err != nil {
				t.Fatalf("oracle violation: %v\nrepro:\n%s", err, saveCrashRepro(t, sc))
			}
		})
	}
}

// TestCrashMidHandoffFires pins that the armed mid-handoff seeds are not
// vacuous: across the sweep's arming seeds, at least one schedule must
// actually trip the armed crash (the victim performs an outbound handoff
// after arming, dying between extract and inject) while the strict oracle
// keeps holding. A tripped crash leaves the victim dead; an untripped one
// leaves every node live.
func TestCrashMidHandoffFires(t *testing.T) {
	fired := 0
	for seed := int64(1); seed <= 64; seed += 4 { // seed%4==1: armed seeds
		sc := crashScenario(seed)
		if sc.ClusterEvents[0].Kind != ClusterCrashOnHandoff {
			t.Fatalf("seed %d: expected an armed scenario, got %q", seed, sc.ClusterEvents[0].Kind)
		}
		sc.inspectCluster = func(cs *core.ClusterServer) {
			for _, sp := range cs.Spans() {
				if !sp.Live {
					fired++
					return
				}
			}
		}
		if err := RunScenario(sc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if fired == 0 {
		t.Fatal("no armed seed tripped its mid-handoff crash — the sweep never exercises the extract/inject gap")
	}
	t.Logf("%d armed seeds tripped the mid-handoff crash", fired)
}

// TestCrashTeethSuppressedReplay is the deliberate-bug teeth test: with
// journal replay suppressed, an ungraceful crash silently loses the dead
// node's focal state, and the convergence oracle MUST catch the
// divergence in a healthy majority of seeds. The caught failures then
// shrink — through the event remapping — to a minimal repro that still
// fails and replays from its printed form.
func TestCrashTeethSuppressedReplay(t *testing.T) {
	var failing Scenario
	caught, tried := 0, 0
	for seed := int64(1); seed <= 12; seed++ {
		sc := crashScenario(seed)
		if sc.ClusterEvents[0].Kind == ClusterCrashOnHandoff {
			continue // an armed crash may never fire; keep the teeth sharp
		}
		sc.ClusterSuppressReplay = true
		tried++
		if RunScenario(sc) != nil {
			if caught == 0 {
				failing = sc
			}
			caught++
		}
	}
	if caught*2 < tried {
		t.Fatalf("suppressed replay caught in only %d/%d seeds; the convergence oracle is too weak", caught, tried)
	}

	shrunk, err := Shrink(failing, 200)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if len(shrunk.Ops) > len(failing.Ops) {
		t.Fatalf("shrink grew the schedule: %d -> %d ops", len(failing.Ops), len(shrunk.Ops))
	}
	for _, ev := range shrunk.ClusterEvents {
		if ev.AtOp < 0 || ev.AtOp >= len(shrunk.Ops) {
			t.Fatalf("shrunk event out of range: %+v over %d ops", ev, len(shrunk.Ops))
		}
	}
	repro := ReproCase(shrunk)
	t.Logf("shrunk %d ops to %d:\n%s", len(failing.Ops), len(shrunk.Ops), repro)
	if RunScenario(shrunk) == nil {
		t.Fatal("shrunk scenario no longer fails")
	}
	// The printed repro replays: parse the schedule back and fail again.
	body := repro[strings.LastIndex(repro, "#"):]
	body = body[strings.Index(body, "\n")+1:]
	ops, err := ParseSchedule(body)
	if err != nil {
		t.Fatalf("parse repro: %v", err)
	}
	replay := shrunk
	replay.Ops = ops
	if RunScenario(replay) == nil {
		t.Fatal("replayed repro case no longer fails")
	}
}
