package simtest

import (
	"fmt"
	"math/rand"
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/sim"
	"mobieyes/internal/workload"
)

// TestCrossPropagationConvergence drives an eager-propagation engine and a
// lazy-propagation engine through the same seeded workload. LQP results
// may transiently miss objects (the paper's Fig. 2 error), because
// non-focal objects stay silent on cell crossings and only learn nearby
// queries from the next expanded velocity-change broadcast. The test
// therefore asserts the convergence property instead of lockstep equality:
// after every focal relays its velocity (here forced by re-aiming every
// object) and one step completes, LQP's results must equal EQP's — and
// both must equal the ground truth, since Δ = 0 keeps the focal states
// exact.
func TestCrossPropagationConvergence(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(301); seed < int64(301+seeds); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runCrossProp(t, seed)
		})
	}
}

func runCrossProp(t *testing.T, seed int64) {
	sc := Scenario{Seed: seed, NumObjects: 40, NumSpecs: 10}
	wl := workload.New(sc.workloadConfig())
	g := grid.New(wl.Config().UoD, alphaMiles)
	dt := model.FromSeconds(wl.Config().StepSeconds)

	eqp := newLocalSystem("eqp", g, core.Options{Mode: core.EagerPropagation}, wl.Objects, 0, 0, 0, false)
	lqp := newLocalSystem("lqp", g, core.Options{Mode: core.LazyPropagation}, wl.Objects, 0, 0, 0, false)
	engines := []*localSystem{eqp, lqp}

	var now model.Time
	for _, o := range wl.Objects {
		for _, e := range engines {
			e.join(o, now)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	ops := Generate(rng, GenConfig{Ops: 14, NumSpecs: sc.NumSpecs})
	specByQID := make(map[model.QueryID]workload.QuerySpec)
	for _, op := range ops {
		switch op.Kind {
		case OpStep:
			now += dt
			wl.Step()
			for _, e := range engines {
				e.step(now)
			}
		case OpInstall:
			spec := wl.Queries[op.A%len(wl.Queries)]
			maxVel := wl.Objects[int(spec.Focal)-1].MaxVel
			q1, _ := eqp.install(spec, maxVel, now)
			q2, _ := lqp.install(spec, maxVel, now)
			if q1 != q2 {
				t.Fatalf("query ID divergence: eqp %d, lqp %d", q1, q2)
			}
			specByQID[q1] = spec
		case OpRemove:
			ids := eqp.queryIDs()
			if len(ids) == 0 {
				continue
			}
			qid := ids[op.A%len(ids)]
			for _, e := range engines {
				e.remove(qid, now)
			}
		}
	}

	// Force convergence: a fresh velocity on every object makes every
	// focal relay on the next dead-reckoning tick, and under LQP the
	// relay broadcast carries full query state to everyone.
	for _, o := range wl.Objects {
		wl.RandomizeVelocity(o)
	}
	for k := 0; k < 2; k++ {
		wl.BounceAtBorders()
		now += dt
		for _, o := range wl.Objects {
			o.Move(dt)
		}
		for _, e := range engines {
			e.step(now)
		}
	}

	ids := eqp.queryIDs()
	if err := diffIDs(ids, lqp.queryIDs()); err != nil {
		t.Fatalf("query sets diverged: %v", err)
	}
	for _, qid := range ids {
		want := eqp.result(qid)
		got := lqp.result(qid)
		if !oidsEqual(want, got) {
			t.Errorf("query %d: EQP %v, LQP %v after convergence step", qid, want, got)
		}
		if spec, ok := specByQID[qid]; ok {
			gt := sim.GroundTruth(g, wl.Objects, spec)
			if !oidsEqual(want, gt) {
				t.Errorf("query %d: EQP %v, ground truth %v", qid, want, gt)
			}
		}
	}
}
