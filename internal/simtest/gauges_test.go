package simtest

import (
	"fmt"
	"strings"
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/obs"
	"mobieyes/internal/workload"
)

// TestQueueDepthGaugesZeroAtQuiescence (PR 9 satellite): the sharded
// per-shard pending-uplink gauges and the cluster in-flight-ops gauge must
// read exactly zero whenever the system is quiescent — every depth
// increment taken during dispatch must be paired with a decrement on every
// exit path. The harness drives a full protocol schedule (joins, installs,
// mobility steps, departures) and checks the gauges between every phase:
// local drivers dispatch synchronously, so any nonzero reading is a leaked
// increment, not in-flight work.
func TestQueueDepthGaugesZeroAtQuiescence(t *testing.T) {
	wl := workload.New(workload.Config{
		UoD:                    geo.NewRect(0, 0, 100, 100),
		NumObjects:             30,
		NumQueries:             6,
		VelocityChangesPerStep: 7,
		StepSeconds:            30,
		MaxSpeeds:              []float64{100, 50, 150},
		RadiusMeans:            []float64{5, 3, 8},
		RadiusStdDevFrac:       0.2,
		ZipfTheta:              0.8,
		SelectivityPermille:    850,
		RadiusFactor:           1,
		Seed:                   909,
	})
	g := grid.New(wl.Config().UoD, alphaMiles)

	for _, tc := range []struct {
		name          string
		shards, nodes int
		gaugePrefix   string
	}{
		{"sharded", 4, 0, "mobieyes_server_shard_pending_uplinks"},
		{"clustered", 0, 3, "mobieyes_cluster_inflight_ops"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ls := newLocalSystem(tc.name, g, core.Options{}, wl.Objects, tc.shards, tc.nodes, 0, false)
			reg := obs.NewRegistry()
			// Instrument before traffic: the sharded engine only maintains
			// its depth counters when instrumented (the routing peek costs).
			ls.srv.Instrument(reg)

			check := func(phase string) {
				t.Helper()
				if err := depthGaugesZero(ls.srv, reg, tc.gaugePrefix); err != nil {
					t.Fatalf("after %s: %v", phase, err)
				}
			}

			now := model.Time(0)
			for _, o := range wl.Objects {
				if err := ls.join(o, now); err != nil {
					t.Fatal(err)
				}
			}
			check("joins")
			for _, spec := range wl.Queries {
				maxVel := wl.Objects[int(spec.Focal)-1].MaxVel
				if _, err := ls.install(spec, maxVel, now); err != nil {
					t.Fatal(err)
				}
			}
			check("installs")
			for i := 0; i < 5; i++ {
				wl.Step()
				now += model.FromSeconds(30)
				if err := ls.step(now); err != nil {
					t.Fatal(err)
				}
				check(fmt.Sprintf("step %d", i))
			}
			if err := ls.depart(wl.Objects[0].ID, now); err != nil {
				t.Fatal(err)
			}
			check("departure")
		})
	}
}

// depthGaugesZero checks both the direct accessors and the registry's view
// of the queue-depth gauges.
func depthGaugesZero(srv core.ServerAPI, reg *obs.Registry, prefix string) error {
	switch s := srv.(type) {
	case *core.ShardedServer:
		for shard, d := range s.PendingUplinksByShard() {
			if d != 0 {
				return fmt.Errorf("shard %d pending uplinks = %d, want 0", shard, d)
			}
		}
	case *core.ClusterServer:
		if n := s.InflightOps(); n != 0 {
			return fmt.Errorf("inflight ops = %d, want 0", n)
		}
	}
	found := false
	for name, v := range reg.Snapshot() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		found = true
		if g, ok := v.(float64); !ok || g != 0 {
			return fmt.Errorf("gauge %s = %v, want 0", name, v)
		}
	}
	if !found {
		return fmt.Errorf("no gauges with prefix %q registered", prefix)
	}
	return nil
}
