package simtest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/workload"
)

// clusterScenario builds a three-way differential scenario — serial,
// sharded and clustered engines in lockstep under the full oracle
// hierarchy, cost ledgers included. Every third seed additionally injects
// node-level faults into the clustered engine: a mid-schedule rebalance and
// a node kill. Both are drained through charge-free admin handoffs, so the
// strict oracles (byte-identical snapshots and ledgers) must keep holding
// across them — there is no weakened window for cluster events.
func clusterScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Seed:       seed,
		NumObjects: 30 + rng.Intn(16),
		NumSpecs:   10,
		Opts:       variants[int(seed)%len(variants)],
		Mobility:   mobilities[int(seed)%len(mobilities)],
		Shards:     2 + rng.Intn(4),
		Nodes:      2 + rng.Intn(3),
		Costs:      true,
	}
	sc.Ops = Generate(rng, GenConfig{
		Ops:         14 + rng.Intn(8),
		NumSpecs:    sc.NumSpecs,
		AllowExpiry: true,
		AllowChurn:  true,
	})
	if seed%3 == 0 {
		n := len(sc.Ops)
		sc.ClusterEvents = []ClusterEvent{
			{AtOp: n / 3, Kind: ClusterRebalance},
			{AtOp: 2 * n / 3, Node: int(seed) % sc.Nodes, Kind: ClusterKill},
		}
	}
	return sc
}

// TestThreeWayLockstepSweep is the cluster tier's differential acceptance
// sweep: serial vs sharded vs clustered through seeded random schedules,
// asserting after every operation that query sets, per-query results,
// ground truth (for exact variants), cost ledgers and durable snapshots are
// identical across all three — including the seeds that kill a worker node
// and rebalance cell ranges mid-schedule.
func TestThreeWayLockstepSweep(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		sc := clusterScenario(seed)
		t.Run(fmt.Sprintf("seed=%d/%s/nodes=%d", seed, sc.Opts.Mode, sc.Nodes), func(t *testing.T) {
			t.Parallel()
			if err := RunScenario(sc); err != nil {
				t.Fatalf("oracle violation: %v\nrepro:\n%s", err, ReproCase(sc))
			}
		})
	}
}

// TestClusteredColumnExercisesHandoffs pins that the sweep's schedules are
// not vacuous: a clustered engine run through a representative schedule
// must perform cross-node focal handoffs and spread focals over several
// nodes — otherwise the three-way oracle never tests the transfer path.
func TestClusteredColumnExercisesHandoffs(t *testing.T) {
	sc := Scenario{Seed: 2, NumObjects: 40, NumSpecs: 10}
	wl := workload.New(sc.workloadConfig())
	g := grid.New(wl.Config().UoD, alphaMiles)
	ls := newLocalSystem("clustered", g, core.Options{}, wl.Objects, 0, 3, 0, false)
	tstep := model.FromSeconds(wl.Config().StepSeconds)
	var now model.Time
	for _, o := range wl.Objects {
		if err := ls.join(o, now); err != nil {
			t.Fatal(err)
		}
	}
	for _, spec := range wl.Queries {
		if _, err := ls.install(spec, wl.Objects[int(spec.Focal)-1].MaxVel, now); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 30; step++ {
		now += tstep
		wl.Step()
		if err := ls.step(now); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	cs := ls.srv.(*core.ClusterServer)
	if cs.Migrations() == 0 {
		t.Error("schedule produced no cross-node handoffs — the sweep is weak")
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestThreeWayOracleCatchesClusterDrop is the clustered column's teeth
// check: an engine whose router silently skips broadcasts must be caught by
// the three-way differential oracle within a handful of seeds.
func TestThreeWayOracleCatchesClusterDrop(t *testing.T) {
	caught := 0
	const seeds = 8
	for seed := int64(801); seed < 801+seeds; seed++ {
		sc := clusterScenario(seed)
		sc.ClusterEvents = nil // keep the failure shrinkable
		sc.ClusterDropNth = 3
		if err := RunScenario(sc); err != nil {
			t.Logf("seed %d caught: %v", seed, err)
			caught++
		}
	}
	if caught < seeds/2 {
		t.Fatalf("cluster broadcast-skip bug caught in only %d/%d seeds; the oracle is too weak", caught, seeds)
	}
}

// TestClusterShrinkProducesRepro minimizes a failing clustered scenario
// with delta debugging and replays the printed repro: the ddmin path works
// for clustered failures exactly as for sharded ones.
func TestClusterShrinkProducesRepro(t *testing.T) {
	var failing Scenario
	found := false
	for seed := int64(801); seed < 821 && !found; seed++ {
		sc := clusterScenario(seed)
		sc.ClusterEvents = nil
		sc.ClusterDropNth = 3
		if RunScenario(sc) != nil {
			failing, found = sc, true
		}
	}
	if !found {
		t.Fatal("no failing seed found for the planted cluster bug")
	}

	shrunk, err := Shrink(failing, 200)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if len(shrunk.Ops) > len(failing.Ops) {
		t.Fatalf("shrink grew the schedule: %d -> %d ops", len(failing.Ops), len(shrunk.Ops))
	}
	repro := ReproCase(shrunk)
	t.Logf("shrunk %d ops to %d:\n%s", len(failing.Ops), len(shrunk.Ops), repro)
	if RunScenario(shrunk) == nil {
		t.Fatal("shrunk scenario no longer fails")
	}
	body := repro[strings.Index(repro, "\n")+1:]
	ops, err := ParseSchedule(body)
	if err != nil {
		t.Fatalf("parse repro: %v", err)
	}
	replay := shrunk
	replay.Ops = ops
	if RunScenario(replay) == nil {
		t.Fatal("replayed repro case no longer fails")
	}
}

// TestShrinkRemapsClusterEvents pins the event-remapping contract ddmin
// relies on: removing ops [start,end) shifts later events down by the
// chunk length, events inside the chunk land on the removal point, and
// every event is clamped into the surviving schedule so it still fires.
// (TestCrashTeethShrinks exercises the full Shrink over an event-bearing
// failing scenario.)
func TestShrinkRemapsClusterEvents(t *testing.T) {
	evs := []ClusterEvent{
		{AtOp: 2, Node: 0, Kind: ClusterCrash},
		{AtOp: 5, Kind: ClusterRebalance},
		{AtOp: 9, Node: 1, Kind: ClusterCrash},
	}
	got := remapEvents(evs, 4, 7, 7) // 10 ops minus chunk [4,7) = 7 left
	want := []int{2, 4, 6}
	for i, ev := range got {
		if ev.AtOp != want[i] {
			t.Errorf("event %d remapped to op %d, want %d", i, ev.AtOp, want[i])
		}
		if ev.Kind != evs[i].Kind || ev.Node != evs[i].Node {
			t.Errorf("event %d lost its identity: %+v", i, ev)
		}
	}
	// Clamping: an event addressing a now-out-of-range op fires at the end
	// of the surviving schedule instead of never.
	tail := remapEvents([]ClusterEvent{{AtOp: 9, Kind: ClusterCrash}}, 0, 0, 3)
	if tail[0].AtOp != 2 {
		t.Errorf("out-of-range event clamped to %d, want 2", tail[0].AtOp)
	}
	// A fault plan still refuses to shrink.
	sc := clusterFaultScenario(901)
	if _, err := Shrink(sc, 10); err == nil {
		t.Fatal("expected an error shrinking a fault-plan scenario")
	}
}

// clusterFaultScenario puts the clustered backend behind the remote
// transport and injects frame faults: the remote engine runs the
// router-plus-workers ClusterServer while the relay drops, duplicates and
// reorders object frames, and severs two connections. Cross-node focal
// handoffs therefore happen while the uplink stream is degraded; after the
// window heals, the strict oracles must resume within ConvergeSteps — which
// IS the exactness-resumes guarantee for handoff under faults.
func clusterFaultScenario(seed int64) Scenario {
	sc := faultScenario(seed)
	rng := rand.New(rand.NewSource(seed * 31))
	sc.Nodes = 2 + rng.Intn(3)
	sc.Costs = false // the remote engine is unledgered; keep columns uniform
	return sc
}

// TestClusterHandoffUnderFrameFaults is the satellite sweep: focal handoff
// across worker nodes under injected frame drop/dup/reorder plus connection
// kills, with convergence-after-heal asserted by the strict oracle resuming
// at End+ConvergeSteps.
func TestClusterHandoffUnderFrameFaults(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(901); seed < int64(901+seeds); seed++ {
		sc := clusterFaultScenario(seed)
		t.Run(fmt.Sprintf("seed=%d/%s/nodes=%d", sc.Seed, sc.Opts.Mode, sc.Nodes), func(t *testing.T) {
			t.Parallel()
			if err := RunScenario(sc); err != nil {
				t.Fatalf("oracle violation: %v\nrepro:\n%s", err, ReproCase(sc))
			}
		})
	}
}
