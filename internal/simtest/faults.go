package simtest

import (
	"bufio"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"

	"mobieyes/internal/remote"
)

// FaultPlan describes a protocol fault-injection scenario for the remote
// transport: a window of schedule ops during which every non-control frame
// crossing a connection may be dropped, duplicated, or held back and
// reordered, plus explicit connection kills. Outside the window the relay
// is transparent. Schedules must keep [Start, End+ConvergeSteps) to OpStep
// ops only (GenConfig.StepOnly*): losing a control-plane frame like a
// FocalNotify is not something the resync protocol claims to heal.
type FaultPlan struct {
	// Start and End bound the faulty window as op indices: faults are
	// enabled before executing op Start and disabled (with a heal pass)
	// before executing op End.
	Start, End int
	// Drop, Dup and Hold are per-frame probabilities. Hold puts a frame
	// aside while later frames pass it (reorder + delay); held frames are
	// flushed before any control frame, after 3 accumulate, or when the
	// window closes.
	Drop, Dup, Hold float64
	// Kills closes the named objects' connections (both directions, mid
	// window); the harness reconnects and resyncs them on the next op.
	Kills []Kill
	// ConvergeSteps is how many ops after End the oracle stays weakened
	// (invariants only) while the healed system re-converges; 0 means the
	// default of 2.
	ConvergeSteps int
	// Seed drives the relay's fault decisions, independently of the
	// scenario seed.
	Seed int64
}

// Kill schedules one connection kill: before executing op AtOp, the
// connection of object Obj (a 1-based object ID) is severed.
type Kill struct {
	AtOp int
	Obj  int
}

func (f *FaultPlan) convergeSteps() int {
	if f.ConvergeSteps > 0 {
		return f.ConvergeSteps
	}
	return 2
}

// faultInjector builds net.Pipe connections bridged by fault-injecting
// relay pumps. While inactive the relay forwards transparently, so the
// same wiring serves the whole scenario and faults switch on and off at
// the window edges.
type faultInjector struct {
	plan   FaultPlan
	active atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand
}

func newFaultInjector(plan FaultPlan) *faultInjector {
	return &faultInjector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// pipe returns a (client end, server end) pair bridged by two relay pumps,
// one per direction.
func (fi *faultInjector) pipe() (net.Conn, net.Conn) {
	cli, relayCli := net.Pipe()
	relaySrv, srv := net.Pipe()
	go fi.pump(relayCli, relaySrv)
	go fi.pump(relaySrv, relayCli)
	return cli, srv
}

// maxHeld bounds the reorder window: a held frame passes at most this many
// later frames before it is flushed.
const maxHeld = 3

// pump forwards frames src → dst, applying the fault plan to non-control
// frames while the injector is active. Hello and Ping/Pong frames always
// pass undisturbed (remote.ControlFrame): dropping a hello would kill the
// session rather than degrade it, and the harness's quiescence barrier
// depends on probes surviving. On any error both ends close, which is how
// an explicit kill cascades through the relay.
func (fi *faultInjector) pump(src, dst net.Conn) {
	die := func() {
		src.Close()
		dst.Close()
	}
	br := bufio.NewReader(src)
	var held [][]byte
	flush := func() bool {
		for _, f := range held {
			if remote.WriteFrame(dst, f) != nil {
				return false
			}
		}
		held = nil
		return true
	}
	for {
		payload, err := remote.ReadFrame(br)
		if err != nil {
			die()
			return
		}
		if !fi.active.Load() || remote.ControlFrame(payload) {
			if !flush() || remote.WriteFrame(dst, payload) != nil {
				die()
				return
			}
			continue
		}
		fi.mu.Lock()
		r := fi.rng.Float64()
		fi.mu.Unlock()
		p := fi.plan
		switch {
		case r < p.Drop:
			// Dropped on the floor.
		case r < p.Drop+p.Dup:
			if remote.WriteFrame(dst, payload) != nil || remote.WriteFrame(dst, payload) != nil {
				die()
				return
			}
		case r < p.Drop+p.Dup+p.Hold:
			held = append(held, payload)
			if len(held) > maxHeld && !flush() {
				die()
				return
			}
		default:
			if remote.WriteFrame(dst, payload) != nil {
				die()
				return
			}
		}
	}
}
