package simtest

import (
	"strings"
	"testing"
)

// buggyScenario plants the deliberate equivalence bug: the sharded engine
// silently skips every 3rd broadcast, so part of some monitoring-region
// update never reaches the clients.
func buggyScenario(seed int64) Scenario {
	sc := localScenario(seed)
	sc.DropNthBroadcast = 3
	return sc
}

// TestOracleCatchesBroadcastSkipBug is the harness's own acceptance test:
// an engine that skips monitoring-region broadcasts must be caught by the
// differential oracle within the sweep.
func TestOracleCatchesBroadcastSkipBug(t *testing.T) {
	caught := 0
	const seeds = 8
	for seed := int64(701); seed < 701+seeds; seed++ {
		if err := RunScenario(buggyScenario(seed)); err != nil {
			t.Logf("seed %d caught: %v", seed, err)
			caught++
		}
	}
	if caught < seeds/2 {
		t.Fatalf("broadcast-skip bug caught in only %d/%d seeds; the oracle is too weak", caught, seeds)
	}
}

// TestShrinkMinimizesFailingSchedule shrinks a failing buggy scenario to a
// short schedule, verifies the shrunk schedule still fails, and replays it
// through the printed text form.
func TestShrinkMinimizesFailingSchedule(t *testing.T) {
	var failing Scenario
	found := false
	for seed := int64(701); seed < 721 && !found; seed++ {
		sc := buggyScenario(seed)
		if RunScenario(sc) != nil {
			failing, found = sc, true
		}
	}
	if !found {
		t.Fatal("no failing seed found for the planted bug")
	}

	shrunk, err := Shrink(failing, 300)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if len(shrunk.Ops) > len(failing.Ops) {
		t.Fatalf("shrink grew the schedule: %d -> %d ops", len(failing.Ops), len(shrunk.Ops))
	}
	repro := ReproCase(shrunk)
	t.Logf("shrunk %d ops to %d:\n%s", len(failing.Ops), len(shrunk.Ops), repro)

	// 1-minimality spot check: the shrunk schedule must still fail…
	if RunScenario(shrunk) == nil {
		t.Fatal("shrunk scenario no longer fails")
	}
	// …and must fail when replayed through the printed text form.
	body := repro[strings.Index(repro, "\n")+1:]
	ops, err := ParseSchedule(body)
	if err != nil {
		t.Fatalf("parse repro: %v", err)
	}
	replay := shrunk
	replay.Ops = ops
	if RunScenario(replay) == nil {
		t.Fatal("replayed repro case no longer fails")
	}

	// Dropping any single remaining op should make the failure disappear
	// for at least one op — otherwise the shrinker left obvious slack.
	// (Full 1-minimality is probabilistic; we only sanity-check that the
	// schedule is tight enough that most ops are load-bearing.)
	loadBearing := 0
	for i := range shrunk.Ops {
		cand := shrunk
		cand.Ops = append(append([]Op{}, shrunk.Ops[:i]...), shrunk.Ops[i+1:]...)
		if len(cand.Ops) == 0 || RunScenario(cand) == nil {
			loadBearing++
		}
	}
	if loadBearing == 0 && len(shrunk.Ops) > 3 {
		t.Fatalf("every op of the %d-op shrunk schedule is droppable; shrinker did no work", len(shrunk.Ops))
	}
}

// TestShrinkRejectsNonFailing documents the contract: shrinking a passing
// scenario is an error, not a silent no-op.
func TestShrinkRejectsNonFailing(t *testing.T) {
	if _, err := Shrink(localScenario(1), 50); err == nil {
		t.Fatal("expected an error shrinking a passing scenario")
	}
	sc := buggyScenario(701)
	sc.Faults = &FaultPlan{Start: 1, End: 2}
	if _, err := Shrink(sc, 50); err == nil {
		t.Fatal("expected an error shrinking a fault-plan scenario")
	}
}
