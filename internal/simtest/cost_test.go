package simtest

import (
	"math/rand"
	"testing"

	"mobieyes/internal/core"
)

// TestLedgerOracleEQP runs seeded random schedules — steps, installs,
// removals, churn — under the ledger oracle: the serial and 4-shard
// engines must charge identical global cost ledgers after every operation,
// and the sharded engine's shard+router ledgers must always sum to its
// global uplink count.
func TestLedgerOracleEQP(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := Generate(rng, GenConfig{Ops: 30, NumSpecs: 6, AllowExpiry: true, AllowChurn: true})
		err := RunScenario(Scenario{
			Name:       "ledger-eqp",
			Seed:       seed,
			NumObjects: 30,
			NumSpecs:   6,
			Costs:      true,
			Ops:        ops,
		})
		if err != nil {
			t.Errorf("seed %d: %v\nschedule:\n%s", seed, err, FormatSchedule(ops))
		}
	}
}

// TestLedgerOracleVariants runs the ledger oracle across protocol
// variants: attribution must stay implementation-independent under lazy
// propagation, dead reckoning, safe periods, and grouping too.
func TestLedgerOracleVariants(t *testing.T) {
	for _, opts := range []core.Options{
		{Mode: core.LazyPropagation},
		{DeadReckoningThreshold: 0.3},
		{SafePeriod: true, Grouping: true},
		{Predictive: true},
	} {
		rng := rand.New(rand.NewSource(7))
		ops := Generate(rng, GenConfig{Ops: 24, NumSpecs: 5, AllowChurn: true})
		err := RunScenario(Scenario{
			Name:       "ledger-variant",
			Seed:       7,
			NumObjects: 25,
			NumSpecs:   5,
			Opts:       opts,
			Costs:      true,
			Ops:        ops,
		})
		if err != nil {
			t.Errorf("opts %+v: %v", opts, err)
		}
	}
}

// TestLedgerOracleCatchesDrop proves the ledger oracle has teeth: an
// engine that silently loses broadcasts cannot produce the same ledger, so
// the scenario must fail even before (or independently of) the result
// oracle.
func TestLedgerOracleCatchesDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ops := Generate(rng, GenConfig{Ops: 24, NumSpecs: 5})
	err := RunScenario(Scenario{
		Name:             "ledger-drop",
		Seed:             3,
		NumObjects:       25,
		NumSpecs:         5,
		DropNthBroadcast: 5,
		Costs:            true,
		Ops:              ops,
	})
	if err == nil {
		t.Fatal("dropped broadcasts went undetected with the ledger oracle on")
	}
}
