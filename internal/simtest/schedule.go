// Package simtest is the deterministic simulation-test harness: it drives
// the serial core.Server, the concurrent core.ShardedServer, and the
// internal/remote network server over in-memory pipes through identical
// seeded operation schedules, asserting after every operation that all
// three agree with each other and — when the protocol variant is exact —
// with the brute-force ground-truth evaluator (DESIGN.md §10).
//
// A schedule is a flat list of Ops generated from a seed. Everything
// downstream of the seed is deterministic: the workload's object
// population, query specs and mobility process, the schedule itself, and
// the engines' query-identifier assignment. A failing (seed, schedule)
// pair therefore replays exactly, which is what makes the Shrink
// minimizer and the printed repro cases possible.
package simtest

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// OpKind enumerates schedule operations.
type OpKind int

const (
	// OpStep advances the world one mobility step and runs the three
	// client protocol phases on every engine.
	OpStep OpKind = iota
	// OpInstall installs query spec A (index into the workload's
	// pre-generated query set) on every engine.
	OpInstall
	// OpInstallUntil installs spec A with an expiry B steps in the future.
	OpInstallUntil
	// OpRemove removes the A%n-th currently installed query (no-op when
	// none are installed).
	OpRemove
	// OpDepart makes the A%n-th currently active object leave the system.
	OpDepart
	// OpJoin brings the A%n-th currently departed object back.
	OpJoin
)

var opNames = [...]string{"step", "install", "installuntil", "remove", "depart", "join"}

// Op is one schedule operation. A and B parameterize the kind; see the
// OpKind constants.
type Op struct {
	Kind OpKind
	A, B int
}

func (o Op) String() string {
	switch o.Kind {
	case OpStep:
		return "step"
	case OpInstallUntil:
		return fmt.Sprintf("installuntil %d %d", o.A, o.B)
	default:
		return fmt.Sprintf("%s %d", opNames[o.Kind], o.A)
	}
}

// FormatSchedule renders ops one per line, the replayable text form
// printed for a shrunk failing case and accepted by ParseSchedule.
func FormatSchedule(ops []Op) string {
	var b strings.Builder
	for _, op := range ops {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseSchedule is the inverse of FormatSchedule. Blank lines and lines
// starting with '#' are skipped.
func ParseSchedule(s string) ([]Op, error) {
	var ops []Op
	for ln, line := range strings.Split(s, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		kind := -1
		for k, name := range opNames {
			if fields[0] == name {
				kind = k
				break
			}
		}
		if kind < 0 {
			return nil, fmt.Errorf("simtest: line %d: unknown op %q", ln+1, fields[0])
		}
		op := Op{Kind: OpKind(kind)}
		want := 2
		switch op.Kind {
		case OpStep:
			want = 1
		case OpInstallUntil:
			want = 3
		}
		if len(fields) != want {
			return nil, fmt.Errorf("simtest: line %d: %s takes %d arg(s)", ln+1, fields[0], want-1)
		}
		if want >= 2 {
			a, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
			op.A = a
		}
		if want >= 3 {
			b, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
			op.B = b
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// GenConfig bounds schedule generation.
type GenConfig struct {
	// Ops is the approximate schedule length.
	Ops int
	// NumSpecs is the size of the workload's query-spec pool the install
	// ops index into.
	NumSpecs int
	// AllowExpiry includes OpInstallUntil ops. Local-only scenarios: the
	// remote server's expiry sweep runs on the wall clock, not sim time.
	AllowExpiry bool
	// AllowChurn includes OpDepart/OpJoin ops.
	AllowChurn bool
	// StepOnly restricts [StepOnlyFrom, StepOnlyTo) to OpStep — used to
	// keep fault windows free of control-plane ops, whose loss (e.g. a
	// dropped FocalNotify) the resync protocol does not heal.
	StepOnlyFrom, StepOnlyTo int
}

// Generate produces a seeded random schedule. It always begins with an
// install and a step (so there is state to compare) and ends with two
// steps (so the last mutation's effects are observed).
func Generate(rng *rand.Rand, cfg GenConfig) []Op {
	ops := []Op{{Kind: OpInstall, A: rng.Intn(cfg.NumSpecs)}, {Kind: OpStep}}
	for len(ops) < cfg.Ops {
		if i := len(ops); cfg.StepOnlyTo > cfg.StepOnlyFrom && i >= cfg.StepOnlyFrom && i < cfg.StepOnlyTo {
			ops = append(ops, Op{Kind: OpStep})
			continue
		}
		r := rng.Float64()
		switch {
		case r < 0.50:
			ops = append(ops, Op{Kind: OpStep})
		case r < 0.72:
			ops = append(ops, Op{Kind: OpInstall, A: rng.Intn(cfg.NumSpecs)})
		case r < 0.82:
			ops = append(ops, Op{Kind: OpRemove, A: rng.Intn(1 << 16)})
		case r < 0.88 && cfg.AllowExpiry:
			ops = append(ops, Op{Kind: OpInstallUntil, A: rng.Intn(cfg.NumSpecs), B: 1 + rng.Intn(4)})
		case r < 0.94 && cfg.AllowChurn:
			ops = append(ops, Op{Kind: OpDepart, A: rng.Intn(1 << 16)})
		case cfg.AllowChurn:
			ops = append(ops, Op{Kind: OpJoin, A: rng.Intn(1 << 16)})
		default:
			ops = append(ops, Op{Kind: OpStep})
		}
	}
	return append(ops, Op{Kind: OpStep}, Op{Kind: OpStep})
}
