package simtest

import (
	"fmt"
	"math/rand"
	"testing"
)

// faultVariants keeps the fault sweep on representative configurations;
// every variant still runs in the fault-free sweeps.
var faultVariants = []int{0, 2, 3, 4}

// faultScenario builds a three-engine scenario whose middle section runs
// under transport faults: frames dropped, duplicated and reordered, plus
// two connection kills. The window and its convergence margin contain only
// step ops (GenConfig.StepOnly).
func faultScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Seed:       seed,
		NumObjects: 22 + rng.Intn(10),
		NumSpecs:   10,
		Opts:       variants[faultVariants[int(seed)%len(faultVariants)]],
		Mobility:   mobilities[int(seed)%len(mobilities)],
		Shards:     2 + rng.Intn(4),
		Remote:     true,
	}
	start, end := 6, 13
	sc.Ops = Generate(rng, GenConfig{
		Ops:          20 + rng.Intn(6),
		NumSpecs:     sc.NumSpecs,
		StepOnlyFrom: start,
		StepOnlyTo:   end + 2,
	})
	sc.Faults = &FaultPlan{
		Start: start,
		End:   end,
		Drop:  0.15,
		Dup:   0.10,
		Hold:  0.10,
		Kills: []Kill{
			{AtOp: start + 1, Obj: 1 + rng.Intn(sc.NumObjects)},
			{AtOp: start + 4, Obj: 1 + rng.Intn(sc.NumObjects)},
		},
		Seed: seed*77 + 1,
	}
	return sc
}

// TestFaultInjectionSweep runs the weakened-oracle scenarios: during the
// fault window only liveness (no deadlock — the barrier would time out)
// and server invariants are asserted; after the window closes and the
// clients resync, the strict differential and ground-truth oracles resume,
// which IS the reconvergence guarantee.
func TestFaultInjectionSweep(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(501); seed < int64(501+seeds); seed++ {
		sc := faultScenario(seed)
		t.Run(fmt.Sprintf("seed=%d/%s", sc.Seed, sc.Opts.Mode), func(t *testing.T) {
			t.Parallel()
			if err := RunScenario(sc); err != nil {
				t.Fatalf("oracle violation: %v\nrepro:\n%s", err, ReproCase(sc))
			}
		})
	}
}

// TestFaultWindowDropsEverything is the heavy-loss edge: every non-control
// frame in the window is dropped. The system must neither deadlock nor
// corrupt server state, and must still reconverge after resync.
func TestFaultWindowDropsEverything(t *testing.T) {
	sc := faultScenario(601)
	sc.Faults.Drop = 1.0
	sc.Faults.Dup = 0
	sc.Faults.Hold = 0
	if err := RunScenario(sc); err != nil {
		t.Fatalf("oracle violation: %v\nrepro:\n%s", err, ReproCase(sc))
	}
}
