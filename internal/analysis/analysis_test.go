package analysis

import (
	"math"
	"testing"

	"mobieyes/internal/sim"
)

func TestCrossingRateFormula(t *testing.T) {
	p := DefaultParams()
	// 4·v/(π·α): doubling α halves the rate; doubling speed doubles it.
	r5 := p.CrossingRate(5)
	r10 := p.CrossingRate(10)
	if math.Abs(r5/r10-2) > 1e-9 {
		t.Errorf("rate not ∝ 1/α: %v vs %v", r5, r10)
	}
	p2 := p
	p2.MeanSpeed *= 2
	if math.Abs(p2.CrossingRate(5)/r5-2) > 1e-9 {
		t.Error("rate not ∝ speed")
	}
	// Sanity magnitude: 59 mph, α=5 → 4·59/(π·5) ≈ 15 crossings/hour.
	if r5 < 10 || r5 > 20 {
		t.Errorf("CrossingRate(5) = %v, want ≈15", r5)
	}
}

// TestCrossingRateMatchesSimulation validates the core analytical ingredient
// against measured cell-change uplinks.
func TestCrossingRateMatchesSimulation(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.NumObjects = 2000
	cfg.NumQueries = 1 // almost no focal traffic
	cfg.VelocityChangesPerStep = 200
	cfg.AreaSqMiles = 20000
	cfg.Steps = 10
	cfg.Warmup = 3
	m := sim.Run(cfg)

	p := DefaultParams()
	p.NumObjects = cfg.NumObjects
	p.AreaSqMiles = cfg.AreaSqMiles
	predicted := float64(p.NumObjects) * p.CrossingRate(cfg.Alpha) / 3600

	// Measured uplink is dominated by crossing reports with 1 query.
	measured := m.UplinkMessagesPerSecond()
	ratio := measured / predicted
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("crossing-rate prediction off: predicted %.1f/s, measured %.1f/s (ratio %.2f)",
			predicted, measured, ratio)
	}
}

func TestTotalRateUShape(t *testing.T) {
	p := DefaultParams()
	left := p.TotalRate(0.5)
	mid := p.TotalRate(p.OptimalAlpha(0.5, 32))
	right := p.TotalRate(32)
	if left <= mid || right <= mid {
		t.Errorf("not U-shaped: f(0.5)=%v, f(opt)=%v, f(32)=%v", left, mid, right)
	}
}

func TestOptimalAlphaInPaperRange(t *testing.T) {
	// The paper reports an ideal α in [4,6] for nmq 100–1000; the
	// reconstructed model should land in the same neighborhood.
	p := DefaultParams()
	opt := p.OptimalAlpha(0.5, 32)
	if opt < 2 || opt > 12 {
		t.Errorf("OptimalAlpha = %v, want within a factor of ~2 of the paper's [4,6]", opt)
	}
}

func TestOptimalAlphaShiftsWithQueries(t *testing.T) {
	// More queries make broadcasts dearer, pushing the optimum toward
	// smaller cells; fewer queries tolerate bigger cells.
	few := DefaultParams()
	few.NumQueries = 100
	many := DefaultParams()
	many.NumQueries = 1000
	optFew := few.OptimalAlpha(0.5, 32)
	optMany := many.OptimalAlpha(0.5, 32)
	if optMany > optFew {
		t.Errorf("optimum with many queries (%v) above few queries (%v)", optMany, optFew)
	}
}

func TestOptimalAlphaShiftsWithSpeed(t *testing.T) {
	// Faster objects cross cells more often, favoring larger cells.
	slow := DefaultParams()
	slow.MeanSpeed = 20
	fast := DefaultParams()
	fast.MeanSpeed = 120
	if fast.OptimalAlpha(0.5, 32) < slow.OptimalAlpha(0.5, 32) {
		t.Error("faster objects should push the optimum α up")
	}
}

func TestModelTracksSimulatedSmallAlphaBlowup(t *testing.T) {
	// The measured Fig. 4 ratio msgs(α=0.5)/msgs(α=8) at full scale is ≈4;
	// the model should predict a blowup of the same order (2–10×).
	p := DefaultParams()
	ratio := p.TotalRate(0.5) / p.TotalRate(8)
	if ratio < 2 || ratio > 12 {
		t.Errorf("small-α blowup ratio = %v, want within [2,12]", ratio)
	}
}

func TestBroadcastFanoutGrowsWithAlpha(t *testing.T) {
	p := DefaultParams()
	if p.BroadcastFanout(16) <= p.BroadcastFanout(2) {
		t.Error("fanout should grow with monitoring region size")
	}
	if p.BroadcastFanout(2) < 1 {
		t.Error("fanout below one transmission")
	}
}

func TestOptimalAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad bounds")
		}
	}()
	DefaultParams().OptimalAlpha(5, 5)
}

func TestRatesTotalIsSum(t *testing.T) {
	r := Rates{1, 2, 3, 4, 5, 6}
	if r.Total() != 21 {
		t.Errorf("Total = %v", r.Total())
	}
}
