package analysis_test

import (
	"fmt"

	"mobieyes/internal/analysis"
)

// ExampleParams_OptimalAlpha finds the analytically optimal grid cell size
// for the paper's Table 1 defaults.
func ExampleParams_OptimalAlpha() {
	p := analysis.DefaultParams()
	opt := p.OptimalAlpha(0.5, 32)
	fmt.Printf("optimal alpha is between 4 and 16 miles: %v\n", opt > 4 && opt < 16)
	fmt.Printf("alpha=0.5 costs more than the optimum: %v\n",
		p.TotalRate(0.5) > p.TotalRate(opt))
	// Output:
	// optimal alpha is between 4 and 16 miles: true
	// alpha=0.5 costs more than the optimum: true
}
