// Package analysis provides the analytical messaging-cost model the paper
// alludes to in §5.3 ("The optimal value of the α parameter can be derived
// analytically using a simple model. In this paper we omit the analytical
// model for space restrictions.") — reconstructed here and validated against
// the simulator.
//
// The model prices the three α-dependent message flows of MobiEyes with
// eager propagation, per simulated second:
//
//   - Cell-crossing uplinks. An object moving at speed v in a uniformly
//     random direction crosses the vertical lines of an α-grid at rate
//     |v·cosθ|/α and the horizontal lines at |v·sinθ|/α; averaging over θ
//     gives (2/π)·v/α each, so 4v/(πα) crossings per hour in total.
//     Every crossing is one uplink report (and, for non-focal objects,
//     possibly a one-to-one response, priced separately).
//   - Focal relays and their broadcasts. Each velocity change of a focal
//     object is one uplink plus one broadcast per query, fanned out through
//     the base stations covering the query's monitoring region; the
//     monitoring region is a square of side ≈ α + 2r̄ + α (the grid cells
//     intersecting the bounding box), which a lattice of stations with
//     spacing alen covers with ≈ ⌈(2α+2r̄)/alen⌉² transmissions. Focal cell
//     crossings trigger the same broadcast over the union of old and new
//     monitoring regions.
//   - Eager installs. A non-focal object entering a new cell receives the
//     queries newly relevant to that cell in one unicast; the probability
//     that a crossing needs one is approximated by the fraction of cells
//     covered by at least one monitoring region.
//
// The resulting TotalRate(α) is the U-shaped curve of the paper's Fig. 4;
// OptimalAlpha minimizes it by golden-section search. The model is
// deliberately simple — its value is predicting where the minimum lies and
// how steep the small-α blowup is, which the tests check against the
// simulator.
package analysis

import (
	"math"
)

// Params describes the deployment and workload, in the units used
// throughout the repository (miles, miles/hour, seconds).
type Params struct {
	NumObjects       int     // no
	NumQueries       int     // nmq
	VelocityChanges  int     // nmo, per time step
	StepSeconds      float64 // ts
	AreaSqMiles      float64
	Alen             float64 // base station lattice spacing
	MeanSpeed        float64 // E[|v|] over the population, mph
	MeanQueryRadius  float64 // r̄, miles
	MeanResultSize   float64 // E[|result|], for containment-report pricing
	ContainmentChurn float64 // fraction of results changing per step
}

// DefaultParams returns parameters matching the Table 1 defaults. The mean
// speed is E[uniform(0, maxVel)] averaged over the zipf speed distribution
// (≈ 59 mph) and the mean radius the zipf-weighted mean of the radius list
// (≈ 2.8 miles).
func DefaultParams() Params {
	return Params{
		NumObjects:       10000,
		NumQueries:       1000,
		VelocityChanges:  1000,
		StepSeconds:      30,
		AreaSqMiles:      100000,
		Alen:             10,
		MeanSpeed:        59,
		MeanQueryRadius:  2.8,
		MeanResultSize:   2,
		ContainmentChurn: 0.1,
	}
}

// CrossingRate returns the expected number of grid-cell boundary crossings
// per object per hour for cell side alpha: 4·v̄/(π·α), the isotropic-
// direction line-crossing rate for the two orthogonal line families.
func (p Params) CrossingRate(alpha float64) float64 {
	return 4 * p.MeanSpeed / (math.Pi * alpha)
}

// MonRegionSide returns the expected side length (miles) of a monitoring
// region for cell side alpha: the bounding box has side α + 2r̄ and the
// covering grid cells extend it to at most 2α + 2r̄; the expectation over
// uniformly placed boxes is ≈ 1.5α + 2r̄.
func (p Params) MonRegionSide(alpha float64) float64 {
	return 1.5*alpha + 2*p.MeanQueryRadius
}

// BroadcastFanout returns the expected number of base-station transmissions
// needed to cover one monitoring region.
func (p Params) BroadcastFanout(alpha float64) float64 {
	side := p.MonRegionSide(alpha)
	n := math.Ceil(side / p.Alen)
	return n * n
}

// coverageFraction estimates the probability that a grid cell intersects at
// least one monitoring region (used to price eager installs on crossings).
func (p Params) coverageFraction(alpha float64) float64 {
	side := p.MonRegionSide(alpha) + alpha // region dilated by one cell
	perQuery := side * side / p.AreaSqMiles
	// 1 − (1 − a)^n with n queries of relative area a, capped at 1.
	f := 1 - math.Pow(1-math.Min(perQuery, 1), float64(p.NumQueries))
	return f
}

// Rates is the per-second message budget predicted by the model.
type Rates struct {
	CellCrossUplinks float64 // object → server crossing reports
	EagerInstalls    float64 // server → object one-to-one query handoffs
	VelocityUplinks  float64 // focal velocity reports
	VelocityBcasts   float64 // velocity-change broadcast transmissions
	FocalMoveBcasts  float64 // query relocation broadcast transmissions
	Containment      float64 // containment-change uplinks
}

// Total returns the total messages per second.
func (r Rates) Total() float64 {
	return r.CellCrossUplinks + r.EagerInstalls + r.VelocityUplinks +
		r.VelocityBcasts + r.FocalMoveBcasts + r.Containment
}

// MessageRates evaluates the model at cell side alpha.
func (p Params) MessageRates(alpha float64) Rates {
	perObjectCrossPerSec := p.CrossingRate(alpha) / 3600
	crossingsPerSec := float64(p.NumObjects) * perObjectCrossPerSec

	// Distinct focal objects: nmq queries over no objects with replacement.
	focals := float64(p.NumObjects) * (1 - math.Pow(1-1/float64(p.NumObjects), float64(p.NumQueries)))
	focalFrac := focals / float64(p.NumObjects)

	// Velocity changes per second hitting focal objects.
	velChangesPerSec := float64(p.VelocityChanges) / p.StepSeconds
	focalVelPerSec := velChangesPerSec * focalFrac

	queriesPerFocal := float64(p.NumQueries) / math.Max(focals, 1)
	fanout := p.BroadcastFanout(alpha)

	focalCrossPerSec := focals * perObjectCrossPerSec

	return Rates{
		CellCrossUplinks: crossingsPerSec,
		EagerInstalls:    crossingsPerSec * p.coverageFraction(alpha),
		VelocityUplinks:  focalVelPerSec,
		VelocityBcasts:   focalVelPerSec * queriesPerFocal * fanout,
		// A focal crossing rebroadcasts each of its queries over roughly
		// the union of two overlapping monitoring regions (≈ 1.3×).
		FocalMoveBcasts: focalCrossPerSec * queriesPerFocal * fanout * 1.3,
		Containment: float64(p.NumQueries) * p.MeanResultSize *
			p.ContainmentChurn / p.StepSeconds,
	}
}

// TotalRate returns the model's total messages/second at alpha.
func (p Params) TotalRate(alpha float64) float64 {
	return p.MessageRates(alpha).Total()
}

// OptimalAlpha minimizes TotalRate over [lo, hi] by golden-section search.
// It panics if the bounds are not ordered and positive.
func (p Params) OptimalAlpha(lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("analysis: OptimalAlpha needs 0 < lo < hi")
	}
	const phi = 1.618033988749895
	const tol = 1e-4
	a, b := lo, hi
	c := b - (b-a)/phi
	d := a + (b-a)/phi
	fc, fd := p.TotalRate(c), p.TotalRate(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)/phi
			fc = p.TotalRate(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)/phi
			fd = p.TotalRate(d)
		}
	}
	return (a + b) / 2
}
