// Package geo provides the planar geometry primitives used throughout the
// MobiEyes system: points, velocity vectors, axis-aligned rectangles and
// circles, together with the containment, intersection and distance
// predicates the paper's definitions are built from (Gedik & Liu, EDBT 2004,
// §2.2).
//
// All coordinates are in miles and all velocities in miles per hour, matching
// the units of the paper's simulation setup (Table 1). The package is purely
// computational and allocation-free on the hot paths.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the universe of discourse.
type Point struct {
	X, Y float64
}

// Vector is a velocity vector (miles per hour per component).
type Vector struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Vec is shorthand for Vector{x, y}.
func Vec(x, y float64) Vector { return Vector{x, y} }

// Add returns p translated by v scaled by hours, i.e. the position reached
// after moving for the given duration (in hours) at constant velocity v.
func (p Point) Add(v Vector, hours float64) Point {
	return Point{p.X + v.X*hours, p.Y + v.Y*hours}
}

// Sub returns the displacement vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons against squared radii.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Len returns the magnitude of v.
func (v Vector) Len() float64 { return math.Hypot(v.X, v.Y) }

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.X * s, v.Y * s} }

// Normalize returns the unit vector in the direction of v. The zero vector
// normalizes to itself.
func (v Vector) Normalize() Vector {
	l := v.Len()
	if l == 0 {
		return Vector{}
	}
	return Vector{v.X / l, v.Y / l}
}

// String implements fmt.Stringer.
func (v Vector) String() string { return fmt.Sprintf("<%.3f, %.3f>", v.X, v.Y) }

// Rect is the rectangle-shaped region of the paper:
// Rect(lx, ly, w, h) = {(x, y) : x ∈ [lx, lx+w] ∧ y ∈ [ly, ly+h]}.
//
// Internally Rect stores its two corners rather than origin+extent so that
// Union and Intersection are exact min/max operations with no floating point
// drift — a property the R*-tree's delete-by-exact-box relies on.
type Rect struct {
	LX, LY float64 // lower-left corner
	HX, HY float64 // upper-right corner; HX ≥ LX and HY ≥ LY when valid
}

// NewRect returns the rectangle with lower-left corner (lx, ly) and the
// given extents, matching the paper's Rect(lx, ly, w, h) notation.
func NewRect(lx, ly, w, h float64) Rect { return Rect{lx, ly, lx + w, ly + h} }

// RectFromCorners returns the smallest rectangle containing both corner
// points, regardless of their ordering.
func RectFromCorners(a, b Point) Rect {
	return Rect{
		math.Min(a.X, b.X), math.Min(a.Y, b.Y),
		math.Max(a.X, b.X), math.Max(a.Y, b.Y),
	}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.HX - r.LX }

// H returns the height of r.
func (r Rect) H() float64 { return r.HY - r.LY }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.LX + r.HX) / 2, (r.LY + r.HY) / 2} }

// Area returns the area of r.
func (r Rect) Area() float64 { return (r.HX - r.LX) * (r.HY - r.LY) }

// Margin returns half the perimeter (the R*-tree "margin" measure uses
// the sum of extents; callers that need the full perimeter double it).
func (r Rect) Margin() float64 { return (r.HX - r.LX) + (r.HY - r.LY) }

// Empty reports whether r has negative extent in either dimension.
func (r Rect) Empty() bool { return r.HX < r.LX || r.HY < r.LY }

// Contains reports whether p lies inside r (boundary inclusive, per the
// paper's closed-interval definition).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.LX && p.X <= r.HX && p.Y >= r.LY && p.Y <= r.HY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.LX >= r.LX && s.HX <= r.HX && s.LY >= r.LY && s.HY <= r.HY
}

// Intersects reports whether r and s share at least one point (boundary
// touching counts, matching the paper's A∩bound_box ≠ ∅ test).
func (r Rect) Intersects(s Rect) bool {
	return r.LX <= s.HX && s.LX <= r.HX && r.LY <= s.HY && s.LY <= r.HY
}

// Intersection returns the overlap of r and s. If they do not intersect the
// result is Empty.
func (r Rect) Intersection(s Rect) Rect {
	return Rect{
		math.Max(r.LX, s.LX), math.Max(r.LY, s.LY),
		math.Min(r.HX, s.HX), math.Min(r.HY, s.HY),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		math.Min(r.LX, s.LX), math.Min(r.LY, s.LY),
		math.Max(r.HX, s.HX), math.Max(r.HY, s.HY),
	}
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{r.LX - d, r.LY - d, r.HX + d, r.HY + d}
}

// OverlapArea returns the area of the intersection of r and s, or 0 when
// they are disjoint.
func (r Rect) OverlapArea(s Rect) float64 {
	w := math.Min(r.HX, s.HX) - math.Max(r.LX, s.LX)
	if w <= 0 {
		return 0
	}
	h := math.Min(r.HY, s.HY) - math.Max(r.LY, s.LY)
	if h <= 0 {
		return 0
	}
	return w * h
}

// ClosestPoint returns the point inside r closest to p (p itself when p is
// inside r).
func (r Rect) ClosestPoint(p Point) Point {
	x := math.Max(r.LX, math.Min(p.X, r.HX))
	y := math.Max(r.LY, math.Min(p.Y, r.HY))
	return Point{x, y}
}

// DistToPoint returns the minimum distance from p to r (0 when p is inside).
func (r Rect) DistToPoint(p Point) float64 {
	return r.ClosestPoint(p).Dist(p)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect(%.3f, %.3f, %.3f, %.3f)", r.LX, r.LY, r.HX-r.LX, r.HY-r.LY)
}

// Circle is the circle-shaped region of the paper:
// Circle(cx, cy, r) = {(x, y) : (x−cx)² + (y−cy)² ≤ r²}.
type Circle struct {
	Center Point
	R      float64
}

// NewCircle returns the circle with the given center and radius.
func NewCircle(c Point, r float64) Circle { return Circle{c, r} }

// Contains reports whether p lies inside c (boundary inclusive).
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist2(p) <= c.R*c.R
}

// IntersectsRect reports whether c and r share at least one point.
func (c Circle) IntersectsRect(r Rect) bool {
	return r.ClosestPoint(c.Center).Dist2(c.Center) <= c.R*c.R
}

// ContainsRect reports whether r lies entirely inside c.
func (c Circle) ContainsRect(r Rect) bool {
	// All four corners inside the circle ⇒ the rectangle is inside, since
	// the circle is convex.
	r2 := c.R * c.R
	corners := [4]Point{
		{r.LX, r.LY}, {r.HX, r.LY}, {r.LX, r.HY}, {r.HX, r.HY},
	}
	for _, p := range corners {
		if c.Center.Dist2(p) > r2 {
			return false
		}
	}
	return true
}

// IntersectsCircle reports whether c and d share at least one point.
func (c Circle) IntersectsCircle(d Circle) bool {
	rr := c.R + d.R
	return c.Center.Dist2(d.Center) <= rr*rr
}

// BoundingRect returns the axis-aligned bounding rectangle of c.
func (c Circle) BoundingRect() Rect {
	return Rect{c.Center.X - c.R, c.Center.Y - c.R, c.Center.X + c.R, c.Center.Y + c.R}
}

// String implements fmt.Stringer.
func (c Circle) String() string {
	return fmt.Sprintf("Circle(%.3f, %.3f, %.3f)", c.Center.X, c.Center.Y, c.R)
}
