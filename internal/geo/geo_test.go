package geo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointAdd(t *testing.T) {
	p := Pt(1, 2)
	v := Vec(10, -20)
	got := p.Add(v, 0.5) // half an hour
	want := Pt(6, -8)
	if got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}
}

func TestPointAddZeroDuration(t *testing.T) {
	p := Pt(3, 4)
	if got := p.Add(Vec(100, 100), 0); got != p {
		t.Errorf("Add with 0 hours moved the point: %v", got)
	}
}

func TestPointDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, c := range cases {
		if got := c.a.Dist(c.b); !almostEqual(got, c.want) {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.a.Dist2(c.b); !almostEqual(got, c.want*c.want) {
			t.Errorf("Dist2(%v, %v) = %v, want %v", c.a, c.b, got, c.want*c.want)
		}
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return almostEqual(a.Dist(b), b.Dist(a))
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(4)), MaxCount: 500,
		Values: boundedRectPairValues}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVectorLen(t *testing.T) {
	if got := Vec(3, 4).Len(); !almostEqual(got, 5) {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := (Vector{}).Len(); got != 0 {
		t.Errorf("zero vector Len = %v", got)
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vec(3, 4).Normalize()
	if !almostEqual(v.Len(), 1) {
		t.Errorf("normalized length = %v, want 1", v.Len())
	}
	if z := (Vector{}).Normalize(); z != (Vector{}) {
		t.Errorf("zero vector normalized to %v", z)
	}
}

func TestVectorScale(t *testing.T) {
	if got := Vec(1, -2).Scale(3); got != Vec(3, -6) {
		t.Errorf("Scale = %v", got)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 5)
	inside := []Point{{0, 0}, {10, 5}, {5, 2.5}, {0, 5}, {10, 0}}
	outside := []Point{{-0.001, 0}, {10.001, 0}, {5, 5.001}, {5, -0.001}}
	for _, p := range inside {
		if !r.Contains(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range outside {
		if r.Contains(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		s    Rect
		want bool
	}{
		{NewRect(5, 5, 10, 10), true},
		{NewRect(10, 10, 1, 1), true}, // corner touch
		{NewRect(-5, -5, 5, 5), true}, // corner touch at origin
		{NewRect(11, 0, 1, 1), false},
		{NewRect(0, 11, 1, 1), false},
		{NewRect(2, 2, 3, 3), true}, // fully inside
		{NewRect(-1, -1, 12, 12), true},
	}
	for _, c := range cases {
		if got := r.Intersects(c.s); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v", r, c.s, got, c.want)
		}
		if got := c.s.Intersects(r); got != c.want {
			t.Errorf("Intersects not symmetric for %v, %v", r, c.s)
		}
	}
}

func TestRectIntersectionUnion(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	s := NewRect(5, 5, 10, 10)
	i := r.Intersection(s)
	if i != NewRect(5, 5, 5, 5) {
		t.Errorf("Intersection = %v", i)
	}
	u := r.Union(s)
	if u != NewRect(0, 0, 15, 15) {
		t.Errorf("Union = %v", u)
	}
	disjoint := r.Intersection(NewRect(20, 20, 1, 1))
	if !disjoint.Empty() {
		t.Errorf("disjoint intersection not empty: %v", disjoint)
	}
}

func TestRectUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(ax, ay, math.Abs(aw), math.Abs(ah))
		b := NewRect(bx, by, math.Abs(bw), math.Abs(bh))
		u := a.Union(b)
		return containsRectEps(u, a) && containsRectEps(u, b)
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 500,
		Values: boundedRectPairValues}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRectIntersectionInsideBoth(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(ax, ay, math.Abs(aw), math.Abs(ah))
		b := NewRect(bx, by, math.Abs(bw), math.Abs(bh))
		i := a.Intersection(b)
		if i.Empty() {
			return !a.Intersects(b) ||
				// Degenerate touching produces a zero-extent rect which we
				// treat as non-empty only when extents are exactly zero.
				(i.W() >= 0 && i.H() >= 0)
		}
		return containsRectEps(a, i) && containsRectEps(b, i)
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(2)), MaxCount: 500,
		Values: boundedRectPairValues}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRectOverlapAreaMatchesIntersection(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(ax, ay, math.Abs(aw), math.Abs(ah))
		b := NewRect(bx, by, math.Abs(bw), math.Abs(bh))
		i := a.Intersection(b)
		want := 0.0
		if !i.Empty() {
			want = i.Area()
		}
		return almostEqual(a.OverlapArea(b), want)
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(3)), MaxCount: 500,
		Values: boundedRectPairValues}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// containsRectEps is ContainsRect with a 1-ulp-scale tolerance: the Rect
// representation stores (origin, extent), so lx+(hx−lx) can differ from hx
// by one ulp, which is irrelevant to the geometric property under test.
func containsRectEps(r, s Rect) bool {
	const eps = 1e-9
	return s.LX >= r.LX-eps && s.HX <= r.HX+eps &&
		s.LY >= r.LY-eps && s.HY <= r.HY+eps
}

// boundedRectPairValues generates 8 bounded float64 args to keep property
// tests in a numerically sane range.
func boundedRectPairValues(args []reflect.Value, r *rand.Rand) {
	for i := range args {
		args[i] = reflect.ValueOf(r.Float64()*200 - 100)
	}
}

func TestRectFromCorners(t *testing.T) {
	r := RectFromCorners(Pt(5, 7), Pt(1, 2))
	if r != NewRect(1, 2, 4, 5) {
		t.Errorf("RectFromCorners = %v", r)
	}
}

func TestRectExpand(t *testing.T) {
	r := NewRect(2, 2, 4, 4).Expand(1)
	if r != NewRect(1, 1, 6, 6) {
		t.Errorf("Expand = %v", r)
	}
}

func TestRectClosestPoint(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		p, want Point
	}{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-3, 5), Pt(0, 5)},
		{Pt(15, 15), Pt(10, 10)},
		{Pt(5, -2), Pt(5, 0)},
	}
	for _, c := range cases {
		if got := r.ClosestPoint(c.p); got != c.want {
			t.Errorf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if d := r.DistToPoint(Pt(13, 14)); !almostEqual(d, 5) {
		t.Errorf("DistToPoint = %v, want 5", d)
	}
}

func TestRectCenterArea(t *testing.T) {
	r := NewRect(0, 0, 4, 6)
	if c := r.Center(); c != Pt(2, 3) {
		t.Errorf("Center = %v", c)
	}
	if a := r.Area(); a != 24 {
		t.Errorf("Area = %v", a)
	}
	if m := r.Margin(); m != 10 {
		t.Errorf("Margin = %v", m)
	}
}

func TestCircleContains(t *testing.T) {
	c := NewCircle(Pt(0, 0), 5)
	if !c.Contains(Pt(3, 4)) {
		t.Error("boundary point should be contained")
	}
	if c.Contains(Pt(3.001, 4)) {
		t.Error("outside point contained")
	}
	if !c.Contains(Pt(0, 0)) {
		t.Error("center not contained")
	}
}

func TestCircleIntersectsRect(t *testing.T) {
	c := NewCircle(Pt(0, 0), 5)
	cases := []struct {
		r    Rect
		want bool
	}{
		{NewRect(-1, -1, 2, 2), true},         // circle contains rect
		{NewRect(-100, -100, 200, 200), true}, // rect contains circle
		{NewRect(4, 4, 2, 2), false},          // corner at (4,4) is dist √32 > 5
		{NewRect(3, 3, 2, 2), true},           // corner at (3,3) is dist √18 < 5
		{NewRect(5, -1, 2, 2), true},          // edge touch at (5,0)
		{NewRect(6, 6, 1, 1), false},
	}
	for _, cse := range cases {
		if got := c.IntersectsRect(cse.r); got != cse.want {
			t.Errorf("IntersectsRect(%v) = %v, want %v", cse.r, got, cse.want)
		}
	}
}

func TestCircleContainsRect(t *testing.T) {
	c := NewCircle(Pt(0, 0), 5)
	if !c.ContainsRect(NewRect(-3, -3, 6, 6)) {
		t.Error("should contain rect with corners at dist √18")
	}
	if c.ContainsRect(NewRect(-4, -4, 8, 8)) {
		t.Error("should not contain rect with corners at dist √32")
	}
}

func TestCircleIntersectsCircle(t *testing.T) {
	a := NewCircle(Pt(0, 0), 3)
	b := NewCircle(Pt(6, 0), 3) // exactly touching
	if !a.IntersectsCircle(b) {
		t.Error("touching circles should intersect")
	}
	far := NewCircle(Pt(6.001, 0), 3)
	if a.IntersectsCircle(far) {
		t.Error("separated circles should not intersect")
	}
}

func TestCircleBoundingRect(t *testing.T) {
	c := NewCircle(Pt(2, 3), 1.5)
	want := NewRect(0.5, 1.5, 3, 3)
	if got := c.BoundingRect(); got != want {
		t.Errorf("BoundingRect = %v, want %v", got, want)
	}
}

// Property: a circle intersects a rectangle iff the distance from the center
// to the rectangle is within the radius. Cross-checks IntersectsRect against
// a Monte Carlo point test.
func TestCircleRectIntersectionConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		c := NewCircle(Pt(rng.Float64()*20-10, rng.Float64()*20-10), rng.Float64()*5+0.1)
		r := NewRect(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*10, rng.Float64()*10)
		got := c.IntersectsRect(r)
		want := r.DistToPoint(c.Center) <= c.R
		if got != want {
			t.Fatalf("IntersectsRect(%v, %v) = %v, dist test = %v", c, r, got, want)
		}
	}
}

// Property: containment in a circle implies containment in its bounding rect.
func TestCircleBoundingRectContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		c := NewCircle(Pt(rng.Float64()*10, rng.Float64()*10), rng.Float64()*5)
		p := Pt(rng.Float64()*20-5, rng.Float64()*20-5)
		if c.Contains(p) && !c.BoundingRect().Contains(p) {
			t.Fatalf("point %v in circle %v but not in bounding rect", p, c)
		}
	}
}

func TestStringers(t *testing.T) {
	// Smoke tests only: the exact format is not part of the API contract,
	// but String must not panic and must be non-empty.
	for _, s := range []string{
		Pt(1, 2).String(),
		Vec(1, 2).String(),
		NewRect(0, 0, 1, 1).String(),
		NewCircle(Pt(0, 0), 1).String(),
	} {
		if s == "" {
			t.Error("empty String()")
		}
	}
}

func BenchmarkRectIntersects(b *testing.B) {
	r := NewRect(0, 0, 10, 10)
	s := NewRect(5, 5, 10, 10)
	for i := 0; i < b.N; i++ {
		if !r.Intersects(s) {
			b.Fatal("expected intersection")
		}
	}
}

func BenchmarkCircleIntersectsRect(b *testing.B) {
	c := NewCircle(Pt(0, 0), 5)
	r := NewRect(3, 3, 2, 2)
	for i := 0; i < b.N; i++ {
		if !c.IntersectsRect(r) {
			b.Fatal("expected intersection")
		}
	}
}
