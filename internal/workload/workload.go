// Package workload generates the simulation workload of Table 1 of the
// MobiEyes paper: objects placed uniformly over the universe of discourse
// with zipf-distributed maximum speeds, queries with zipf-distributed
// normal radii and fixed-selectivity filters over uniformly chosen focal
// objects, and the per-step velocity perturbation process ("in every time
// step we pick a number of objects at random and set their normalized
// velocity vectors to a random direction, while setting their velocity to a
// random value between zero and their maximum velocity").
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

// MobilityModel selects how objects move between steps.
type MobilityModel int

const (
	// RandomWalk is the paper's model: each step, nmo randomly chosen
	// objects point in a fresh uniform direction at a uniform speed.
	RandomWalk MobilityModel = iota
	// RandomWaypoint is the classic alternative mobility model: each
	// object travels to a uniformly chosen destination, pauses there for a
	// random number of steps, then picks the next destination. Velocity
	// changes arise from arrivals instead of the nmo process.
	RandomWaypoint
	// GaussMarkov evolves every object's velocity each step as a mean-
	// reverting AR(1) process: vₜ₊₁ = κ·vₜ + (1−κ)·v̄ + σ√(1−κ²)·ε, with
	// v̄ the object's cruising velocity and κ the memory parameter. Motion
	// is smooth (no teleporting direction flips), producing many small
	// velocity changes per step — a stress case for dead reckoning.
	GaussMarkov
)

// String implements fmt.Stringer.
func (m MobilityModel) String() string {
	switch m {
	case RandomWaypoint:
		return "RandomWaypoint"
	case GaussMarkov:
		return "GaussMarkov"
	default:
		return "RandomWalk"
	}
}

// Config parameterizes workload generation. Field names follow Table 1.
type Config struct {
	UoD geo.Rect

	NumObjects             int // no
	NumQueries             int // nmq
	VelocityChangesPerStep int // nmo

	// Mobility selects the movement process (default: the paper's
	// RandomWalk). StepSeconds is the simulation time step the mobility
	// process is driven at; WaypointPauseSteps bounds the random pause at
	// each waypoint (inclusive).
	Mobility           MobilityModel
	StepSeconds        float64
	WaypointPauseSteps [2]int
	// GaussMarkovMemory is κ ∈ [0, 1): 0 = memoryless, →1 = nearly
	// constant velocity. GaussMarkovSigma scales the per-step noise as a
	// fraction of the object's maximum speed.
	GaussMarkovMemory float64
	GaussMarkovSigma  float64

	// MaxSpeeds are the candidate per-object maximum speeds (mph), most
	// popular first; the assignment follows a zipf distribution.
	MaxSpeeds []float64
	// RadiusMeans are the candidate query-radius means (miles), most
	// popular first (zipf); the actual radius is normal with standard
	// deviation RadiusStdDevFrac × mean.
	RadiusMeans      []float64
	RadiusStdDevFrac float64
	// ZipfTheta is the zipf parameter (paper: 0.8).
	ZipfTheta float64
	// SelectivityPermille is the query filter selectivity in 1/1000 units
	// (paper: 750).
	SelectivityPermille uint32
	// RadiusFactor scales all query radii (Fig. 12's x-axis); 1 = paper
	// default.
	RadiusFactor float64

	Seed int64
}

// Default returns the Table 1 default workload configuration over the given
// universe of discourse.
func Default(uod geo.Rect) Config {
	return Config{
		UoD:                    uod,
		NumObjects:             10000,
		NumQueries:             1000,
		VelocityChangesPerStep: 1000,
		MaxSpeeds:              []float64{100, 50, 150, 200, 250},
		RadiusMeans:            []float64{3, 2, 1, 4, 5},
		RadiusStdDevFrac:       0.2, // 1/5 of the mean
		ZipfTheta:              0.8,
		SelectivityPermille:    750,
		RadiusFactor:           1,
		StepSeconds:            30,
		WaypointPauseSteps:     [2]int{0, 4},
		GaussMarkovMemory:      0.85,
		GaussMarkovSigma:       0.15,
		Seed:                   1,
	}
}

// QuerySpec describes one generated moving query before installation.
type QuerySpec struct {
	Focal  model.ObjectID
	Radius float64
	Filter model.Filter
}

// Workload holds a generated object population and query set plus the
// random process that drives them.
type Workload struct {
	cfg     Config
	rng     *rand.Rand
	speeds  *zipfList
	radii   *zipfList
	Objects []*model.MovingObject
	Queries []QuerySpec

	// Random-waypoint state, parallel to Objects.
	dest      []geo.Point
	pauseLeft []int
	// Gauss-Markov cruising velocities, parallel to Objects.
	meanVel []geo.Vector
}

// New generates a workload. It panics on nonsensical configurations (zero
// objects, empty candidate lists) — these are programming errors in
// experiment setup, not runtime conditions.
func New(cfg Config) *Workload {
	if cfg.NumObjects <= 0 {
		panic("workload: NumObjects must be positive")
	}
	if len(cfg.MaxSpeeds) == 0 || len(cfg.RadiusMeans) == 0 {
		panic("workload: empty candidate lists")
	}
	if cfg.RadiusFactor == 0 {
		cfg.RadiusFactor = 1
	}
	w := &Workload{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		speeds: newZipfList(len(cfg.MaxSpeeds), cfg.ZipfTheta),
		radii:  newZipfList(len(cfg.RadiusMeans), cfg.ZipfTheta),
	}
	if cfg.StepSeconds <= 0 {
		w.cfg.StepSeconds = 30
	}
	w.generateObjects()
	w.generateQueries()
	if cfg.Mobility == RandomWaypoint {
		w.dest = make([]geo.Point, len(w.Objects))
		w.pauseLeft = make([]int, len(w.Objects))
		for i, o := range w.Objects {
			w.assignWaypoint(i, o)
		}
	}
	if cfg.Mobility == GaussMarkov {
		w.meanVel = make([]geo.Vector, len(w.Objects))
		for i, o := range w.Objects {
			w.meanVel[i] = o.Vel // the initial random velocity is the cruise
		}
	}
	return w
}

// Config returns the configuration the workload was generated from.
func (w *Workload) Config() Config { return w.cfg }

func (w *Workload) generateObjects() {
	u := w.cfg.UoD
	w.Objects = make([]*model.MovingObject, 0, w.cfg.NumObjects)
	for i := 0; i < w.cfg.NumObjects; i++ {
		maxVel := w.cfg.MaxSpeeds[w.speeds.sample(w.rng)]
		o := &model.MovingObject{
			ID:     model.ObjectID(i + 1),
			Pos:    geo.Pt(u.LX+w.rng.Float64()*u.W(), u.LY+w.rng.Float64()*u.H()),
			MaxVel: maxVel,
			Props:  model.Props{Key: w.rng.Uint64()},
		}
		w.RandomizeVelocity(o)
		w.Objects = append(w.Objects, o)
	}
}

func (w *Workload) generateQueries() {
	w.Queries = make([]QuerySpec, 0, w.cfg.NumQueries)
	for i := 0; i < w.cfg.NumQueries; i++ {
		mean := w.cfg.RadiusMeans[w.radii.sample(w.rng)]
		radius := (mean + w.rng.NormFloat64()*mean*w.cfg.RadiusStdDevFrac) * w.cfg.RadiusFactor
		if radius < 0.1 {
			radius = 0.1
		}
		w.Queries = append(w.Queries, QuerySpec{
			Focal:  model.ObjectID(w.rng.Intn(w.cfg.NumObjects) + 1),
			Radius: radius,
			Filter: model.Filter{Seed: w.rng.Uint64(), Permille: w.cfg.SelectivityPermille},
		})
	}
}

// Step advances the workload by one full mobility step: border bounces,
// the velocity perturbation process, then motion over StepSeconds. It
// returns the indices whose velocity the perturbation changed (border
// bounces excluded, exactly like PerturbStep). Engines that interleave
// protocol phases with these stages call the underlying methods directly;
// Step is for drivers that treat a step as one atomic world transition.
func (w *Workload) Step() []int {
	w.BounceAtBorders()
	changed := w.PerturbStep()
	dt := model.FromSeconds(w.cfg.StepSeconds)
	for _, o := range w.Objects {
		o.Move(dt)
	}
	return changed
}

// RandomizeVelocity points o in a uniformly random direction at a speed
// uniform in [0, o.MaxVel].
func (w *Workload) RandomizeVelocity(o *model.MovingObject) {
	ang := w.rng.Float64() * 2 * math.Pi
	speed := w.rng.Float64() * o.MaxVel
	o.Vel = geo.Vec(speed*math.Cos(ang), speed*math.Sin(ang))
}

// PerturbStep advances the mobility process by one step. Under RandomWalk
// (the paper's model) nmo randomly chosen objects get new random velocity
// vectors; under RandomWaypoint, arrivals pause and departures aim at fresh
// destinations. It returns the indices of objects whose velocity changed
// (with possible repetition under RandomWalk, as in the paper's "pick a
// number of objects at random").
func (w *Workload) PerturbStep() []int {
	switch w.cfg.Mobility {
	case RandomWaypoint:
		return w.waypointStep()
	case GaussMarkov:
		return w.gaussMarkovStep()
	}
	n := w.cfg.VelocityChangesPerStep
	changed := make([]int, 0, n)
	for k := 0; k < n; k++ {
		i := w.rng.Intn(len(w.Objects))
		w.RandomizeVelocity(w.Objects[i])
		changed = append(changed, i)
	}
	return changed
}

// waypointStep runs the random-waypoint process for every object: pausing
// objects count down and then depart; traveling objects that will reach
// their destination within this step adjust their velocity to land exactly
// on it and begin their pause.
func (w *Workload) waypointStep() []int {
	dtHours := w.cfg.StepSeconds / 3600
	var changed []int
	for i, o := range w.Objects {
		if w.pauseLeft[i] > 0 {
			// First pause step: the object landed last step; stop it.
			if o.Vel != (geo.Vector{}) {
				o.Vel = geo.Vec(0, 0)
				changed = append(changed, i)
			}
			w.pauseLeft[i]--
			if w.pauseLeft[i] == 0 {
				w.assignWaypoint(i, o)
				changed = append(changed, i)
			}
			continue
		}
		toGo := w.dest[i].Sub(o.Pos)
		if toGo.Len() <= o.Vel.Len()*dtHours {
			if toGo.Len() == 0 {
				// Already exactly at the destination: start pausing.
				o.Vel = geo.Vec(0, 0)
				w.pauseLeft[i] = w.pauseDuration() + 1
				changed = append(changed, i)
				continue
			}
			// Land exactly on the destination this step, then pause.
			o.Vel = toGo.Scale(1 / dtHours)
			w.pauseLeft[i] = w.pauseDuration() + 1
			changed = append(changed, i)
		}
	}
	return changed
}

// gaussMarkovStep advances every velocity by one AR(1) step, clipping the
// speed at the object's maximum. Every object changes velocity every step.
func (w *Workload) gaussMarkovStep() []int {
	k := w.cfg.GaussMarkovMemory
	noise := math.Sqrt(1 - k*k)
	changed := make([]int, 0, len(w.Objects))
	for i, o := range w.Objects {
		sigma := w.cfg.GaussMarkovSigma * o.MaxVel
		nv := geo.Vec(
			k*o.Vel.X+(1-k)*w.meanVel[i].X+noise*sigma*w.rng.NormFloat64(),
			k*o.Vel.Y+(1-k)*w.meanVel[i].Y+noise*sigma*w.rng.NormFloat64(),
		)
		if sp := nv.Len(); sp > o.MaxVel {
			nv = nv.Scale(o.MaxVel / sp)
		}
		if nv != o.Vel {
			o.Vel = nv
			changed = append(changed, i)
		}
	}
	return changed
}

// assignWaypoint aims object i at a fresh uniform destination at a uniform
// speed in (0, maxVel].
func (w *Workload) assignWaypoint(i int, o *model.MovingObject) {
	u := w.cfg.UoD
	w.dest[i] = geo.Pt(u.LX+w.rng.Float64()*u.W(), u.LY+w.rng.Float64()*u.H())
	speed := (0.2 + 0.8*w.rng.Float64()) * o.MaxVel
	dir := w.dest[i].Sub(o.Pos).Normalize()
	if dir == (geo.Vector{}) {
		dir = geo.Vec(1, 0)
	}
	o.Vel = dir.Scale(speed)
}

func (w *Workload) pauseDuration() int {
	lo, hi := w.cfg.WaypointPauseSteps[0], w.cfg.WaypointPauseSteps[1]
	if hi <= lo {
		return lo
	}
	return lo + w.rng.Intn(hi-lo+1)
}

// Destination returns object i's current waypoint (RandomWaypoint only).
func (w *Workload) Destination(i int) (geo.Point, bool) {
	if w.cfg.Mobility != RandomWaypoint {
		return geo.Point{}, false
	}
	return w.dest[i], true
}

// BounceAtBorders reflects the velocity of objects about to leave the
// universe of discourse, keeping the population inside (and uniform) over
// long runs. The reflection is a genuine velocity change, detected by dead
// reckoning like any other.
func (w *Workload) BounceAtBorders() {
	u := w.cfg.UoD
	for i, o := range w.Objects {
		if o.Pos.X <= u.LX && o.Vel.X < 0 || o.Pos.X >= u.HX && o.Vel.X > 0 {
			o.Vel.X = -o.Vel.X
			if w.meanVel != nil {
				// Reflect the Gauss-Markov cruise too, or mean reversion
				// would keep pulling the object back across the border.
				w.meanVel[i].X = -w.meanVel[i].X
			}
		}
		if o.Pos.Y <= u.LY && o.Vel.Y < 0 || o.Pos.Y >= u.HY && o.Vel.Y > 0 {
			o.Vel.Y = -o.Vel.Y
			if w.meanVel != nil {
				w.meanVel[i].Y = -w.meanVel[i].Y
			}
		}
	}
}

// zipfList samples ranks 0..n−1 with P(k) ∝ 1/(k+1)^θ.
type zipfList struct {
	cdf []float64
}

func newZipfList(n int, theta float64) *zipfList {
	if n <= 0 {
		panic(fmt.Sprintf("workload: zipf over %d items", n))
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), theta)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	return &zipfList{cdf: cdf}
}

func (z *zipfList) sample(rng *rand.Rand) int {
	u := rng.Float64()
	for k, c := range z.cdf {
		if u <= c {
			return k
		}
	}
	return len(z.cdf) - 1
}
