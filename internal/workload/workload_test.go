package workload

import (
	"math"
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

func smallConfig() Config {
	cfg := Default(geo.NewRect(0, 0, 100, 100))
	cfg.NumObjects = 1000
	cfg.NumQueries = 200
	cfg.VelocityChangesPerStep = 100
	return cfg
}

func TestGenerationCounts(t *testing.T) {
	w := New(smallConfig())
	if len(w.Objects) != 1000 {
		t.Fatalf("objects = %d", len(w.Objects))
	}
	if len(w.Queries) != 200 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
}

func TestDeterminism(t *testing.T) {
	a := New(smallConfig())
	b := New(smallConfig())
	for i := range a.Objects {
		if a.Objects[i].Pos != b.Objects[i].Pos || a.Objects[i].Vel != b.Objects[i].Vel {
			t.Fatalf("object %d differs across same-seed generations", i)
		}
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("query %d differs across same-seed generations", i)
		}
	}
	cfg := smallConfig()
	cfg.Seed = 2
	c := New(cfg)
	same := true
	for i := range a.Objects {
		if a.Objects[i].Pos != c.Objects[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical object placements")
	}
}

func TestObjectsInsideUoD(t *testing.T) {
	w := New(smallConfig())
	u := w.Config().UoD
	for _, o := range w.Objects {
		if !u.Contains(o.Pos) {
			t.Fatalf("object %d at %v outside UoD", o.ID, o.Pos)
		}
	}
}

func TestObjectsRoughlyUniform(t *testing.T) {
	cfg := smallConfig()
	cfg.NumObjects = 20000
	w := New(cfg)
	// Quadrant counts should each be ≈25%.
	var q [4]int
	for _, o := range w.Objects {
		i := 0
		if o.Pos.X > 50 {
			i++
		}
		if o.Pos.Y > 50 {
			i += 2
		}
		q[i]++
	}
	for i, n := range q {
		frac := float64(n) / 20000
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("quadrant %d fraction = %v", i, frac)
		}
	}
}

func TestSpeedsAreZipfOrdered(t *testing.T) {
	cfg := smallConfig()
	cfg.NumObjects = 20000
	w := New(cfg)
	counts := map[float64]int{}
	for _, o := range w.Objects {
		counts[o.MaxVel]++
	}
	// Zipf over {100, 50, 150, 200, 250}: 100 most common, 250 least.
	if !(counts[100] > counts[50] && counts[50] > counts[150] &&
		counts[150] > counts[200] && counts[200] > counts[250]) {
		t.Errorf("speed counts not zipf-ordered: %v", counts)
	}
	for _, o := range w.Objects {
		if o.Vel.Len() > o.MaxVel+1e-9 {
			t.Fatalf("object %d speed %v exceeds max %v", o.ID, o.Vel.Len(), o.MaxVel)
		}
	}
}

func TestRadiusDistribution(t *testing.T) {
	cfg := smallConfig()
	cfg.NumQueries = 20000
	w := New(cfg)
	var sum float64
	for _, q := range w.Queries {
		if q.Radius <= 0 {
			t.Fatalf("non-positive radius %v", q.Radius)
		}
		sum += q.Radius
	}
	mean := sum / float64(len(w.Queries))
	// Zipf-weighted mean of {3,2,1,4,5} with θ=0.8 is ≈2.8.
	if mean < 2.3 || mean > 3.3 {
		t.Errorf("mean radius = %v, want ≈2.8", mean)
	}
}

func TestRadiusFactorScales(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	cfg.RadiusFactor = 2
	b := New(cfg)
	var sa, sb float64
	for i := range a.Queries {
		sa += a.Queries[i].Radius
		sb += b.Queries[i].Radius
	}
	ratio := sb / sa
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("radius factor 2 scaled totals by %v", ratio)
	}
}

func TestQueryFocalsValidAndFiltersDistinct(t *testing.T) {
	w := New(smallConfig())
	seeds := map[uint64]bool{}
	for _, q := range w.Queries {
		if q.Focal < 1 || int(q.Focal) > len(w.Objects) {
			t.Fatalf("focal %d out of range", q.Focal)
		}
		if q.Filter.Permille != 750 {
			t.Fatalf("selectivity = %d", q.Filter.Permille)
		}
		seeds[q.Filter.Seed] = true
	}
	if len(seeds) < len(w.Queries)*9/10 {
		t.Errorf("filter seeds not distinct enough: %d unique of %d", len(seeds), len(w.Queries))
	}
}

func TestFilterSelectivityOverPopulation(t *testing.T) {
	w := New(smallConfig())
	q := w.Queries[0]
	hits := 0
	for _, o := range w.Objects {
		if q.Filter.Matches(o.Props) {
			hits++
		}
	}
	frac := float64(hits) / float64(len(w.Objects))
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("filter selectivity over population = %v, want ≈0.75", frac)
	}
}

func TestPerturbStepCountsAndBounds(t *testing.T) {
	w := New(smallConfig())
	changed := w.PerturbStep()
	if len(changed) != 100 {
		t.Fatalf("changed = %d", len(changed))
	}
	for _, i := range changed {
		o := w.Objects[i]
		if o.Vel.Len() > o.MaxVel+1e-9 {
			t.Fatalf("perturbed speed %v exceeds max %v", o.Vel.Len(), o.MaxVel)
		}
	}
}

func TestBounceAtBorders(t *testing.T) {
	w := New(smallConfig())
	o := w.Objects[0]
	o.Pos = geo.Pt(0, 50)
	o.Vel = geo.Vec(-10, 5)
	w.BounceAtBorders()
	if o.Vel.X != 10 || o.Vel.Y != 5 {
		t.Errorf("west-bound object at west border: Vel = %v", o.Vel)
	}
	o.Pos = geo.Pt(100, 100)
	o.Vel = geo.Vec(10, 10)
	w.BounceAtBorders()
	if o.Vel.X != -10 || o.Vel.Y != -10 {
		t.Errorf("corner bounce: Vel = %v", o.Vel)
	}
	// Inbound objects at the border are untouched.
	o.Pos = geo.Pt(0, 50)
	o.Vel = geo.Vec(10, 0)
	w.BounceAtBorders()
	if o.Vel.X != 10 {
		t.Errorf("inbound object reflected: Vel = %v", o.Vel)
	}
}

// TestPopulationStaysInsideOverLongRun: moving + bouncing keeps every object
// in (or at the edge of) the UoD indefinitely.
func TestPopulationStaysInside(t *testing.T) {
	cfg := smallConfig()
	cfg.NumObjects = 500
	w := New(cfg)
	u := w.Config().UoD.Expand(2.5) // one 30 s step at 250 mph ≈ 2.1 miles
	for step := 0; step < 200; step++ {
		w.BounceAtBorders()
		for _, o := range w.Objects {
			o.Move(model.FromSeconds(30))
		}
		w.PerturbStep()
	}
	for _, o := range w.Objects {
		if !u.Contains(o.Pos) {
			t.Fatalf("object %d escaped to %v", o.ID, o.Pos)
		}
	}
}

func TestZipfListDistribution(t *testing.T) {
	z := newZipfList(5, 0.8)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 5)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.sample(rng)]++
	}
	// Probabilities ∝ 1/(k+1)^0.8.
	total := 0.0
	for k := 0; k < 5; k++ {
		total += 1 / math.Pow(float64(k+1), 0.8)
	}
	for k := 0; k < 5; k++ {
		want := 1 / math.Pow(float64(k+1), 0.8) / total
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: frequency %v, want %v", k, got, want)
		}
	}
	// Monotone decreasing.
	for k := 1; k < 5; k++ {
		if counts[k] >= counts[k-1] {
			t.Errorf("zipf counts not decreasing: %v", counts)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"zero objects": func(c *Config) { c.NumObjects = 0 },
		"empty speeds": func(c *Config) { c.MaxSpeeds = nil },
		"empty radii":  func(c *Config) { c.RadiusMeans = nil },
	} {
		cfg := smallConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func waypointConfig() Config {
	cfg := smallConfig()
	cfg.Mobility = RandomWaypoint
	cfg.NumObjects = 200
	return cfg
}

func TestWaypointObjectsStayInside(t *testing.T) {
	w := New(waypointConfig())
	u := w.Config().UoD.Expand(0.01)
	for step := 0; step < 300; step++ {
		w.PerturbStep()
		for _, o := range w.Objects {
			o.Move(model.FromSeconds(30))
		}
	}
	for i, o := range w.Objects {
		if !u.Contains(o.Pos) {
			t.Fatalf("waypoint object %d escaped to %v", i, o.Pos)
		}
	}
}

func TestWaypointArrivalsAndPauses(t *testing.T) {
	w := New(waypointConfig())
	arrived := 0
	paused := 0
	for step := 0; step < 300; step++ {
		w.PerturbStep()
		for i, o := range w.Objects {
			if o.Vel == (geo.Vector{}) {
				paused++
				_ = i
			}
			o.Move(model.FromSeconds(30))
		}
	}
	// After arrival the object sits exactly on its destination while paused.
	for i, o := range w.Objects {
		if o.Vel == (geo.Vector{}) {
			dest, ok := w.Destination(i)
			if !ok {
				t.Fatal("Destination unavailable in waypoint mode")
			}
			if o.Pos.Dist(dest) > 1e-6 {
				t.Fatalf("paused object %d at %v, destination %v", i, o.Pos, dest)
			}
			arrived++
		}
	}
	if paused == 0 {
		t.Error("no pauses observed over 300 steps")
	}
	if arrived == 0 {
		t.Skip("no object paused at final step (unlucky seed)")
	}
}

func TestWaypointSpeedsBounded(t *testing.T) {
	w := New(waypointConfig())
	for step := 0; step < 100; step++ {
		w.PerturbStep()
		for _, o := range w.Objects {
			if o.Vel.Len() > o.MaxVel+1e-9 {
				t.Fatalf("waypoint speed %v exceeds max %v", o.Vel.Len(), o.MaxVel)
			}
			o.Move(model.FromSeconds(30))
		}
	}
}

func TestWaypointVelocityChangesReported(t *testing.T) {
	w := New(waypointConfig())
	total := 0
	for step := 0; step < 200; step++ {
		total += len(w.PerturbStep())
		for _, o := range w.Objects {
			o.Move(model.FromSeconds(30))
		}
	}
	if total == 0 {
		t.Error("waypoint process never reported a velocity change")
	}
}

func TestDestinationUnavailableForRandomWalk(t *testing.T) {
	w := New(smallConfig())
	if _, ok := w.Destination(0); ok {
		t.Error("Destination available in RandomWalk mode")
	}
}

func TestMobilityModelString(t *testing.T) {
	if RandomWalk.String() == "" || RandomWaypoint.String() == "" {
		t.Error("empty mobility names")
	}
	if RandomWalk.String() == RandomWaypoint.String() {
		t.Error("mobility names collide")
	}
}

func TestGaussMarkovSpeedsBounded(t *testing.T) {
	cfg := smallConfig()
	cfg.Mobility = GaussMarkov
	w := New(cfg)
	for step := 0; step < 150; step++ {
		w.BounceAtBorders()
		changed := w.PerturbStep()
		if len(changed) == 0 {
			t.Fatal("Gauss-Markov step changed nothing")
		}
		for _, o := range w.Objects {
			if o.Vel.Len() > o.MaxVel+1e-9 {
				t.Fatalf("speed %v exceeds max %v", o.Vel.Len(), o.MaxVel)
			}
			o.Move(model.FromSeconds(30))
		}
	}
	// Motion is smooth: consecutive velocities stay correlated. Check that
	// the average per-step direction change is modest.
	prev := make([]geo.Vector, len(w.Objects))
	for i, o := range w.Objects {
		prev[i] = o.Vel
	}
	w.PerturbStep()
	var relChange, n float64
	for i, o := range w.Objects {
		if prev[i].Len() < 1 {
			continue
		}
		d := geo.Vec(o.Vel.X-prev[i].X, o.Vel.Y-prev[i].Y)
		relChange += d.Len() / prev[i].Len()
		n++
	}
	if avg := relChange / n; avg > 1.0 {
		t.Errorf("avg relative velocity change per step = %v — not smooth", avg)
	}
}

func TestGaussMarkovStaysNearUoD(t *testing.T) {
	cfg := smallConfig()
	cfg.Mobility = GaussMarkov
	cfg.NumObjects = 300
	w := New(cfg)
	u := w.Config().UoD.Expand(2.5)
	for step := 0; step < 300; step++ {
		w.BounceAtBorders()
		w.PerturbStep()
		for _, o := range w.Objects {
			o.Move(model.FromSeconds(30))
		}
	}
	for _, o := range w.Objects {
		if !u.Contains(o.Pos) {
			t.Fatalf("object escaped to %v", o.Pos)
		}
	}
}
