package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/remote"
	"mobieyes/internal/wire"
)

// sinkDown records every downlink send as (kind, encoded frame) so two
// engines' send sequences can be compared exactly.
type sinkDown struct {
	sends []string
}

func (s *sinkDown) Broadcast(region grid.CellRange, m msg.Message) {
	s.sends = append(s.sends, fmt.Sprintf("B %v %x", region, wire.Encode(m)))
}

func (s *sinkDown) Unicast(oid model.ObjectID, m msg.Message) {
	s.sends = append(s.sends, fmt.Sprintf("U %d %x", oid, wire.Encode(m)))
}

// testGrid is the 20x20 tessellation every test engine shares.
func testGrid() *grid.Grid {
	return grid.New(geo.NewRect(0, 0, 100, 100), 5.0)
}

// startWorkers launches n workers over in-memory pipes and returns the
// router-side handles plus a channel carrying each ServeConn result.
func startWorkers(t *testing.T, n int, opts core.Options, down core.Downlink) ([]*RemoteNode, []*Worker, chan error) {
	t.Helper()
	errc := make(chan error, n)
	rns := make([]*RemoteNode, n)
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		rc, wc := net.Pipe()
		w := NewWorker(WorkerConfig{UoD: geo.NewRect(0, 0, 100, 100), Alpha: 5.0, Opts: opts})
		workers[i] = w
		go func() { errc <- w.ServeConn(wc) }()
		rn, err := NewRemoteNode(rc, i, down)
		if err != nil {
			t.Fatalf("handshake with worker %d: %v", i, err)
		}
		rns[i] = rn
	}
	return rns, workers, errc
}

// newWireCluster assembles a ClusterServer routing over n wire workers.
func newWireCluster(t *testing.T, n int, opts core.Options, down core.Downlink) (*core.ClusterServer, []*RemoteNode, []*Worker, chan error) {
	t.Helper()
	rns, workers, errc := startWorkers(t, n, opts, down)
	handles := make([]core.NodeHandle, n)
	for i, rn := range rns {
		handles[i] = rn
	}
	cs := core.NewClusterServerOver(testGrid(), opts, down, handles)
	cs.SetAssignListener(func(epoch uint64, node, lo, hi int) {
		rns[node].Assign(epoch, lo, hi)
	})
	epoch := cs.Epoch()
	for _, sp := range cs.Spans() {
		rns[sp.Node].Assign(epoch, sp.Lo, sp.Hi)
	}
	return cs, rns, workers, errc
}

// drive runs a fixed protocol schedule against an engine: five queries
// installed on focals spread across the grid, target containments, focal
// cell changes walking every focal six rows north (crossing any node span
// boundary on the way), a velocity change, group containment, removal,
// departures of a target and a focal, and an expiry.
func drive(api core.ServerAPI, g *grid.Grid) {
	center := func(c grid.CellID) geo.Point {
		r := g.CellRect(c)
		return geo.Pt((r.LX+r.HX)/2, (r.LY+r.HY)/2)
	}
	region := model.CircleRegion{R: 8}
	row := make([]int, 5)
	for i := 0; i < 5; i++ {
		row[i] = i * 4
		api.InstallQuery(model.ObjectID(i+1), region, model.Filter{}, 15)
	}
	api.InstallQueryUntil(1, model.RectRegion{W: 10, H: 6}, model.Filter{}, 15, 50)
	for i := 0; i < 5; i++ {
		c := grid.CellID{Col: 10, Row: row[i]}
		api.HandleUplink(msg.FocalInfoResponse{OID: model.ObjectID(i + 1), Pos: center(c), Vel: geo.Vec(0, 5), Tm: 1})
	}
	for tgt := 10; tgt < 30; tgt++ {
		api.HandleUplink(msg.ContainmentReport{OID: model.ObjectID(tgt), QID: model.QueryID(tgt%5 + 1), IsTarget: true})
	}
	for step := 1; step <= 6; step++ {
		tm := model.Time(1 + step)
		for i := 0; i < 5; i++ {
			prev := grid.CellID{Col: 10, Row: row[i]}
			row[i]++
			next := grid.CellID{Col: 10, Row: row[i]}
			if !g.Valid(next) {
				row[i] -= 20
				next = grid.CellID{Col: 10, Row: row[i]}
			}
			api.HandleUplink(msg.CellChangeReport{
				OID: model.ObjectID(i + 1), PrevCell: prev, NewCell: next,
				Pos: center(next), Vel: geo.Vec(0, 5), Tm: tm,
			})
		}
	}
	api.HandleUplink(msg.VelocityReport{OID: 2, Pos: center(grid.CellID{Col: 10, Row: row[1]}), Vel: geo.Vec(3, -4), Tm: 9})
	bm := msg.NewBitmap(1)
	bm.Set(0, true)
	api.HandleUplink(msg.GroupContainmentReport{OID: 11, Focal: 1, QIDs: []model.QueryID{1}, Bitmap: bm})
	api.RemoveQuery(3)
	api.HandleUplink(msg.DepartureReport{OID: 15})
	api.HandleUplink(msg.DepartureReport{OID: 5})
	api.ExpireQueries(60)
}

// TestWireClusterMatchesSerial is the wire tier's differential oracle: the
// same schedule through the serial server and through a router driving two
// workers over the cluster protocol must yield byte-identical durable
// snapshots, identical query sets and results, and the identical downlink
// send sequence — while actually performing cross-node handoffs over
// Handoff/HandoffAck frames.
func TestWireClusterMatchesSerial(t *testing.T) {
	g := testGrid()
	serDown := &sinkDown{}
	ser := core.NewServer(g, core.Options{}, serDown)

	cluDown := &sinkDown{}
	cs, _, _, errc := newWireCluster(t, 2, core.Options{}, cluDown)

	drive(ser, g)
	drive(cs, g)

	if cs.Migrations() == 0 {
		t.Fatalf("schedule crossed no node boundary (spans %+v) — the wire handoff path is untested", cs.Spans())
	}
	if err := ser.CheckInvariants(); err != nil {
		t.Errorf("serial invariants: %v", err)
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Errorf("cluster invariants: %v", err)
	}

	sq, cq := ser.QueryIDs(), cs.QueryIDs()
	if fmt.Sprint(sq) != fmt.Sprint(cq) {
		t.Fatalf("query sets diverge: serial %v, clustered %v", sq, cq)
	}
	for _, qid := range sq {
		if fmt.Sprint(ser.Result(qid)) != fmt.Sprint(cs.Result(qid)) {
			t.Errorf("query %d: serial result %v, clustered %v", qid, ser.Result(qid), cs.Result(qid))
		}
	}

	var bs, bc bytes.Buffer
	if err := ser.Snapshot(&bs); err != nil {
		t.Fatal(err)
	}
	if err := cs.Snapshot(&bc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bc.Bytes()) {
		t.Errorf("snapshots diverge: serial %d bytes, clustered %d bytes", bs.Len(), bc.Len())
	}

	if len(serDown.sends) != len(cluDown.sends) {
		t.Fatalf("downlink sequences diverge: serial %d sends, clustered %d", len(serDown.sends), len(cluDown.sends))
	}
	for i := range serDown.sends {
		if serDown.sends[i] != cluDown.sends[i] {
			t.Fatalf("downlink %d diverges:\n  serial:    %s\n  clustered: %s", i, serDown.sends[i], cluDown.sends[i])
		}
	}

	if err := cs.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Errorf("worker serve: %v", err)
		}
	}
}

// TestWireHandoffMovesOwnership pins the two-phase transfer observably: a
// focal installed in node 0's span, then moved into node 1's span, must
// leave node 0's tables entirely and appear in node 1's, with the full
// query state following it over the Handoff frame.
func TestWireHandoffMovesOwnership(t *testing.T) {
	g := testGrid()
	down := &sinkDown{}
	cs, rns, _, _ := newWireCluster(t, 2, core.Options{}, down)

	spans := cs.Spans()
	src := g.CellAt(spans[0].Lo)
	dst := g.CellAt(spans[1].Lo)
	center := func(c grid.CellID) geo.Point {
		r := g.CellRect(c)
		return geo.Pt((r.LX+r.HX)/2, (r.LY+r.HY)/2)
	}

	qid := cs.InstallQuery(7, model.CircleRegion{R: 4}, model.Filter{}, 20)
	cs.HandleUplink(msg.FocalInfoResponse{OID: 7, Pos: center(src), Vel: geo.Vec(1, 1), Tm: 1})
	cs.HandleUplink(msg.ContainmentReport{OID: 21, QID: qid, IsTarget: true})

	if got := rns[0].FocalIDs(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("node 0 focals before handoff: %v", got)
	}

	cs.HandleUplink(msg.CellChangeReport{
		OID: 7, PrevCell: src, NewCell: dst, Pos: center(dst), Vel: geo.Vec(1, 1), Tm: 2,
	})

	if cs.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", cs.Migrations())
	}
	if got := rns[0].FocalIDs(); len(got) != 0 {
		t.Errorf("node 0 still holds focals after handoff: %v", got)
	}
	if got := rns[1].FocalIDs(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("node 1 focals after handoff: %v", got)
	}
	if got := rns[1].Result(qid); len(got) != 1 || got[0] != 21 {
		t.Errorf("query result did not survive the handoff: %v", got)
	}
	if cell, ok := rns[1].FocalCell(7); !ok || cell != dst {
		t.Errorf("focal cell after handoff = %v/%v, want %v", cell, ok, dst)
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Errorf("invariants after handoff: %v", err)
	}
}

// TestWorkerRejectsVersionMismatch: a router announcing a different
// protocol version is answered with this build's hello — so the peer can
// diagnose — and refused with a typed *VersionError.
func TestWorkerRejectsVersionMismatch(t *testing.T) {
	rc, wc := net.Pipe()
	w := NewWorker(WorkerConfig{UoD: geo.NewRect(0, 0, 100, 100), Alpha: 5.0})
	errc := make(chan error, 1)
	go func() { errc <- w.ServeConn(wc) }()

	bw := bufio.NewWriter(rc)
	if err := remote.WriteFrame(bw, wire.Encode(msg.NodeHello{Node: 3, Proto: ProtoVersion + 9})); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	payload, err := remote.ReadFrame(bufio.NewReader(rc))
	if err != nil {
		t.Fatal(err)
	}
	m, err := wire.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if hello, ok := m.(msg.NodeHello); !ok || hello.Proto != ProtoVersion {
		t.Fatalf("refusal reply = %#v, want NodeHello speaking %d", m, ProtoVersion)
	}

	serveErr := <-errc
	var ve *VersionError
	if !errors.As(serveErr, &ve) {
		t.Fatalf("ServeConn error = %v, want *VersionError", serveErr)
	}
	if ve.Got != ProtoVersion+9 || ve.Node != 3 {
		t.Errorf("VersionError = %+v", ve)
	}
}

// TestRouterRejectsVersionMismatch: a worker replying with a different
// version fails the dial with a typed *VersionError.
func TestRouterRejectsVersionMismatch(t *testing.T) {
	rc, wc := net.Pipe()
	go func() {
		br := bufio.NewReader(wc)
		if _, err := remote.ReadFrame(br); err != nil {
			return
		}
		bw := bufio.NewWriter(wc)
		_ = remote.WriteFrame(bw, wire.Encode(msg.NodeHello{Node: 0, Proto: ProtoVersion + 1}))
		_ = bw.Flush()
	}()
	_, err := NewRemoteNode(rc, 0, &sinkDown{})
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("handshake error = %v, want *VersionError", err)
	}
	if ve.Got != ProtoVersion+1 {
		t.Errorf("VersionError.Got = %d", ve.Got)
	}
}

// TestHeartbeatAndAssign: heartbeats echo synchronously, and an AssignRange
// is applied by the worker in FIFO order ahead of the next exchange.
func TestHeartbeatAndAssign(t *testing.T) {
	down := &sinkDown{}
	rns, workers, _ := startWorkers(t, 1, core.Options{}, down)
	rn, w := rns[0], workers[0]

	if err := rn.Heartbeat(); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	rn.Assign(5, 100, 300)
	if err := rn.Heartbeat(); err != nil {
		t.Fatalf("heartbeat after assign: %v", err)
	}
	if epoch, lo, hi := w.Span(); epoch != 5 || lo != 100 || hi != 300 {
		t.Errorf("worker span = epoch %d [%d,%d), want epoch 5 [100,300)", epoch, lo, hi)
	}
	// A stale epoch must be discarded.
	rn.Assign(4, 0, 10)
	if err := rn.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if epoch, lo, hi := w.Span(); epoch != 5 || lo != 100 || hi != 300 {
		t.Errorf("stale assign applied: epoch %d [%d,%d)", epoch, lo, hi)
	}
}

// TestOpErrorPropagates: a failed op (extracting a focal the node does not
// own) surfaces as an error on the specific call without poisoning the
// connection.
func TestOpErrorPropagates(t *testing.T) {
	down := &sinkDown{}
	rns, _, _ := startWorkers(t, 1, core.Options{}, down)
	rn := rns[0]

	if _, err := rn.ExtractFocal(99, false, 0); err == nil {
		t.Fatal("ExtractFocal of an unowned focal succeeded")
	}
	if rn.Err() != nil {
		t.Fatalf("op error stuck to the connection: %v", rn.Err())
	}
	if err := rn.CheckInvariants(); err != nil {
		t.Errorf("node unusable after op error: %v", err)
	}
	if n := rn.NumQueries(); n != 0 {
		t.Errorf("NumQueries = %d on a fresh node", n)
	}
}

// TestWireClusterRebalanceAndKill drives the schedule, then rebalances and
// kills a node over the wire: admin handoffs travel as admin-marked Handoff
// frames, and the surviving topology must stay invariant-clean with all
// focals accounted for.
func TestWireClusterRebalanceAndKill(t *testing.T) {
	g := testGrid()
	down := &sinkDown{}
	cs, rns, _, _ := newWireCluster(t, 3, core.Options{}, down)

	drive(cs, g)
	before := len(cs.QueryIDs())

	if _, err := cs.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if err := cs.KillNode(1); err != nil {
		t.Fatalf("kill node 1: %v", err)
	}
	if got := rns[1].FocalIDs(); len(got) != 0 {
		t.Errorf("killed node still holds focals: %v", got)
	}
	if got := len(cs.QueryIDs()); got != before {
		t.Errorf("queries after kill = %d, want %d", got, before)
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Errorf("invariants after kill: %v", err)
	}
	for i, rn := range rns {
		if rn.Err() != nil {
			t.Errorf("node %d transport error: %v", i, rn.Err())
		}
	}
}
