package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/telemetry"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/remote"
	"mobieyes/internal/wire"
)

// RemoteNode is the router-side core.NodeHandle over a worker connection:
// every call becomes one synchronous exchange — a NodeOp (or Handoff) frame
// out, then NodeDownlink frames replayed into the router's downlink as they
// arrive, then the NodeOpDone (or HandoffAck) that completes the call. The
// ClusterServer serializes calls under its router mutex, so a RemoteNode
// never has two exchanges in flight.
//
// A transport failure is sticky: the node answers subsequent calls with zero
// values and reports the error through Err, and the operator (or the
// heartbeat loop) is expected to KillNode it out of the cluster — mirroring
// how an unreachable worker behaves.
type RemoteNode struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	node  uint32
	down  core.Downlink
	tdown core.TracedDownlink
	tel   *telemetry.Plane
	seq   uint64
	err   error
}

// SetTelemetry routes this node's pushed NodeTelemetry frames and heartbeat
// NodeStatus answers into the router's telemetry plane, and registers the
// node with the plane's liveness watchdog. A nil plane (telemetry disabled)
// leaves frames consumed but dropped.
func (rn *RemoteNode) SetTelemetry(p *telemetry.Plane) {
	rn.tel = p
	p.ExpectNode(int(rn.node))
}

// Dial connects to a worker, performs the NodeHello handshake announcing
// node index and ProtoVersion, and returns the handle. Downlinks the worker
// emits are replayed into down.
func Dial(addr string, node int, down core.Downlink) (*RemoteNode, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	rn, err := NewRemoteNode(conn, node, down)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return rn, nil
}

// NewRemoteNode performs the handshake over an established connection. A
// worker speaking a different protocol version yields a *VersionError.
func NewRemoteNode(conn net.Conn, node int, down core.Downlink) (*RemoteNode, error) {
	rn := &RemoteNode{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		node: uint32(node),
		down: down,
	}
	rn.tdown, _ = down.(core.TracedDownlink)
	hello := msg.NodeHello{Node: rn.node, Proto: ProtoVersion}
	if err := remote.WriteFrame(rn.bw, wire.Encode(hello)); err != nil {
		return nil, err
	}
	if err := rn.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := remote.ReadFrame(rn.br)
	if err != nil {
		return nil, fmt.Errorf("cluster: handshake with node %d: %w", node, err)
	}
	m, err := wire.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("cluster: handshake with node %d: %w", node, err)
	}
	back, ok := m.(msg.NodeHello)
	if !ok {
		return nil, fmt.Errorf("cluster: handshake with node %d: got %v, want NodeHello", node, m.Kind())
	}
	if back.Proto != ProtoVersion {
		return nil, &VersionError{Node: back.Node, Got: back.Proto}
	}
	return rn, nil
}

// Err reports the sticky transport error, if any.
func (rn *RemoteNode) Err() error { return rn.err }

// NodeID returns the node index announced in the handshake.
func (rn *RemoteNode) NodeID() int { return int(rn.node) }

// fail records the first transport error; the node is dead from here on.
func (rn *RemoteNode) fail(err error) error {
	if rn.err == nil {
		rn.err = fmt.Errorf("cluster: node %d: %w", rn.node, err)
		rn.conn.Close()
	}
	return rn.err
}

// exchange sends m and pumps incoming frames — replaying NodeDownlink — until
// the completing reply arrives.
func (rn *RemoteNode) exchange(m msg.Message, tid trace.ID) (msg.Message, error) {
	if rn.err != nil {
		return nil, rn.err
	}
	if err := remote.WriteFrame(rn.bw, wire.EncodeTraced(m, uint64(tid))); err != nil {
		return nil, rn.fail(err)
	}
	if err := rn.bw.Flush(); err != nil {
		return nil, rn.fail(err)
	}
	for {
		payload, err := remote.ReadFrame(rn.br)
		if err != nil {
			return nil, rn.fail(err)
		}
		reply, rtid, err := wire.DecodeTraced(payload)
		if err != nil {
			return nil, rn.fail(err)
		}
		switch mm := reply.(type) {
		case msg.NodeDownlink:
			rn.replay(mm, trace.ID(rtid))
		case msg.NodeTelemetry:
			// Telemetry streams ahead of the completing reply, like
			// downlinks; a payload the plane cannot decode means the
			// stream is corrupt, which is fatal for the connection.
			if err := rn.tel.Apply(int(mm.Node), mm.Seq, mm.Payload); err != nil {
				return nil, rn.fail(err)
			}
		case msg.NodeOpDone, msg.HandoffAck, msg.NodeStatus, msg.NodeCheckpoint:
			return reply, nil
		default:
			return nil, rn.fail(fmt.Errorf("unexpected %v frame", mm.Kind()))
		}
	}
}

// replay forwards a worker downlink into the router's transport.
func (rn *RemoteNode) replay(nd msg.NodeDownlink, tid trace.ID) {
	inner, err := wire.Decode(nd.Inner)
	if err != nil {
		rn.fail(fmt.Errorf("downlink payload: %w", err))
		return
	}
	switch {
	case nd.Broadcast && rn.tdown != nil:
		rn.tdown.BroadcastTraced(nd.Region, inner, tid)
	case nd.Broadcast:
		rn.down.Broadcast(nd.Region, inner)
	case rn.tdown != nil:
		rn.tdown.UnicastTraced(nd.Target, inner, tid)
	default:
		rn.down.Unicast(nd.Target, inner)
	}
}

// op runs one NodeOp exchange and returns the reply payload.
func (rn *RemoteNode) op(code uint8, data []byte, tid trace.ID) ([]byte, error) {
	rn.seq++
	reply, err := rn.exchange(msg.NodeOp{Seq: rn.seq, Code: code, Data: data}, tid)
	if err != nil {
		return nil, err
	}
	done, ok := reply.(msg.NodeOpDone)
	if !ok {
		return nil, rn.fail(fmt.Errorf("op %d answered by %v", code, reply.Kind()))
	}
	if done.Code == opError {
		return nil, fmt.Errorf("cluster: node %d: %s", rn.node, done.Data)
	}
	if done.Seq != rn.seq || done.Code != code {
		return nil, rn.fail(fmt.Errorf("op %d/seq %d answered by op %d/seq %d",
			code, rn.seq, done.Code, done.Seq))
	}
	return done.Data, nil
}

// mustOp runs an exchange for the NodeHandle methods that cannot surface an
// error; failures stick on the handle.
func (rn *RemoteNode) mustOp(code uint8, data []byte, tid trace.ID) *pread {
	out, err := rn.op(code, data, tid)
	if err != nil {
		rn.fail(err)
		return &pread{err: err}
	}
	return &pread{b: out}
}

// Heartbeat runs one synchronous liveness probe. The worker answers with a
// NodeStatus (its span epoch, digest and op count), preceded by any pending
// telemetry; the round-trip time, status and any probe failure feed the
// telemetry plane's watchdog.
func (rn *RemoteNode) Heartbeat() error {
	rn.seq++
	start := time.Now()
	reply, err := rn.exchange(msg.NodeHeartbeat{Node: rn.node, Seq: rn.seq}, 0)
	if err != nil {
		rn.tel.NoteProbeError(int(rn.node), err)
		return err
	}
	st, ok := reply.(msg.NodeStatus)
	if !ok || st.Seq != rn.seq {
		err := rn.fail(fmt.Errorf("heartbeat answered by %v", reply.Kind()))
		rn.tel.NoteProbeError(int(rn.node), err)
		return err
	}
	rn.tel.ObserveRTT(int(rn.node), time.Since(start))
	rn.tel.ApplyStatus(st)
	return nil
}

// Assign ships a span assignment; workers apply it in FIFO order ahead of
// any subsequent op, so no acknowledgement is needed.
func (rn *RemoteNode) Assign(epoch uint64, lo, hi int) {
	if rn.err != nil {
		return
	}
	m := msg.AssignRange{Epoch: epoch, Node: rn.node, Lo: uint32(lo), Hi: uint32(hi)}
	if err := remote.WriteFrame(rn.bw, wire.Encode(m)); err != nil {
		rn.fail(err)
		return
	}
	if err := rn.bw.Flush(); err != nil {
		rn.fail(err)
	}
}

func (rn *RemoteNode) CompleteInstall(qid model.QueryID, q model.Query, maxVel float64, expiry model.Time, tid trace.ID) {
	var p pbuf
	p.f64(float64(expiry))
	p.queryStates([]msg.QueryState{queryToState(q, maxVel)})
	rn.mustOp(opCompleteInstall, p.b, tid)
}

func (rn *RemoteNode) RemoveQuery(qid model.QueryID, tid trace.ID) (removed bool, focal model.ObjectID, stillFocal bool) {
	var p pbuf
	p.qid(qid)
	out := rn.mustOp(opRemoveQuery, p.b, tid)
	removed = out.bool()
	focal = out.oid()
	stillFocal = out.bool()
	return removed, focal, stillFocal
}

func (rn *RemoteNode) DueExpiries(now model.Time) []model.QueryID {
	var p pbuf
	p.f64(float64(now))
	return rn.mustOp(opDueExpiries, p.b, 0).qidList()
}

func (rn *RemoteNode) UpsertFocal(oid model.ObjectID, st model.MotionState, tid trace.ID) {
	var p pbuf
	p.oid(oid)
	p.motion(st)
	rn.mustOp(opUpsertFocal, p.b, tid)
}

func (rn *RemoteNode) VelocityReport(m msg.VelocityReport, tid trace.ID) {
	rn.mustOp(opVelocityReport, wire.Encode(m), tid)
}

func (rn *RemoteNode) ContainmentReport(m msg.ContainmentReport, tid trace.ID) {
	rn.mustOp(opContainmentReport, wire.Encode(m), tid)
}

func (rn *RemoteNode) GroupContainmentReport(m msg.GroupContainmentReport, tid trace.ID) {
	rn.mustOp(opGroupContainmentReport, wire.Encode(m), tid)
}

func (rn *RemoteNode) FocalCellChange(oid model.ObjectID, st model.MotionState, newCell grid.CellID, tid trace.ID) {
	var p pbuf
	p.oid(oid)
	p.motion(st)
	p.cell(newCell)
	rn.mustOp(opFocalCellChange, p.b, tid)
}

func (rn *RemoteNode) FreshQueryStates(prevCell, newCell grid.CellID) []msg.QueryState {
	var p pbuf
	p.cell(prevCell)
	p.cell(newCell)
	return rn.mustOp(opFreshQueryStates, p.b, 0).queryStates()
}

func (rn *RemoteNode) ClearResults(oid model.ObjectID, tid trace.ID) {
	var p pbuf
	p.oid(oid)
	rn.mustOp(opClearResults, p.b, tid)
}

func (rn *RemoteNode) DepartSweep(oid model.ObjectID, tid trace.ID) {
	var p pbuf
	p.oid(oid)
	rn.mustOp(opDepartSweep, p.b, tid)
}

func (rn *RemoteNode) DepartFocal(oid model.ObjectID, tid trace.ID) []model.QueryID {
	var p pbuf
	p.oid(oid)
	return rn.mustOp(opDepartFocal, p.b, tid).qidList()
}

func (rn *RemoteNode) ExtractFocal(oid model.ObjectID, admin bool, tid trace.ID) ([]byte, error) {
	var p pbuf
	p.oid(oid)
	p.bool(admin)
	return rn.op(opExtractFocal, p.b, tid)
}

// sliceOID recovers the focal's ID from an encoded focal slice for the
// Handoff frame's metadata: version u16, then the object ID at offset 2
// (the layout encodeFocalSlice pins under focal-slice version 1).
func sliceOID(slice []byte) model.ObjectID {
	if len(slice) >= 6 && binary.LittleEndian.Uint16(slice) == 1 {
		return model.ObjectID(binary.LittleEndian.Uint32(slice[2:]))
	}
	return 0
}

func (rn *RemoteNode) InjectFocal(slice []byte, st model.MotionState, cell grid.CellID, relocate, admin bool, tid trace.ID) error {
	rn.seq++
	seq := rn.seq
	if admin {
		seq |= adminSeqBit
	}
	h := msg.Handoff{Seq: seq, OID: sliceOID(slice), Relocate: relocate, State: st, Cell: cell, Slice: slice}
	reply, err := rn.exchange(h, tid)
	if err != nil {
		return err
	}
	switch mm := reply.(type) {
	case msg.HandoffAck:
		if mm.Seq != seq {
			return rn.fail(fmt.Errorf("handoff seq %d acknowledged as %d", seq, mm.Seq))
		}
		return nil
	case msg.NodeOpDone:
		if mm.Code == opError {
			return fmt.Errorf("cluster: node %d: %s", rn.node, mm.Data)
		}
		return rn.fail(fmt.Errorf("handoff answered by op done %d", mm.Code))
	default:
		return rn.fail(fmt.Errorf("handoff answered by %v", reply.Kind()))
	}
}

func (rn *RemoteNode) Result(qid model.QueryID) []model.ObjectID {
	var p pbuf
	p.qid(qid)
	return rn.mustOp(opResult, p.b, 0).oidList()
}

func (rn *RemoteNode) ResultContains(qid model.QueryID, oid model.ObjectID) bool {
	var p pbuf
	p.qid(qid)
	p.oid(oid)
	return rn.mustOp(opResultContains, p.b, 0).bool()
}

func (rn *RemoteNode) ResultSize(qid model.QueryID) int {
	var p pbuf
	p.qid(qid)
	return int(rn.mustOp(opResultSize, p.b, 0).u32())
}

func (rn *RemoteNode) Query(qid model.QueryID) (model.Query, bool) {
	var p pbuf
	p.qid(qid)
	out := rn.mustOp(opQuery, p.b, 0)
	if !out.bool() {
		return model.Query{}, false
	}
	qss := out.queryStates()
	if out.err != nil || len(qss) != 1 {
		return model.Query{}, false
	}
	q, _ := stateToQuery(qss[0])
	return q, true
}

func (rn *RemoteNode) MonRegion(qid model.QueryID) (grid.CellRange, bool) {
	var p pbuf
	p.qid(qid)
	out := rn.mustOp(opMonRegion, p.b, 0)
	if !out.bool() {
		return grid.CellRange{}, false
	}
	return grid.CellRange{Min: out.cell(), Max: out.cell()}, out.err == nil
}

func (rn *RemoteNode) NumQueries() int {
	return int(rn.mustOp(opNumQueries, nil, 0).u32())
}

func (rn *RemoteNode) QueryIDs() []model.QueryID {
	return rn.mustOp(opQueryIDs, nil, 0).qidList()
}

func (rn *RemoteNode) NearbyQueries(cell grid.CellID) []model.QueryID {
	var p pbuf
	p.cell(cell)
	return rn.mustOp(opNearbyQueries, p.b, 0).qidList()
}

func (rn *RemoteNode) FocalIDs() []model.ObjectID {
	return rn.mustOp(opFocalIDs, nil, 0).oidList()
}

func (rn *RemoteNode) FocalCell(oid model.ObjectID) (grid.CellID, bool) {
	var p pbuf
	p.oid(oid)
	out := rn.mustOp(opFocalCell, p.b, 0)
	if !out.bool() {
		return grid.CellID{}, false
	}
	return out.cell(), out.err == nil
}

func (rn *RemoteNode) Ops() int64 {
	return int64(rn.mustOp(opOps, nil, 0).u64())
}

// CheckpointDelta pulls the worker's focal-slice changes since the last
// checkpoint exchange (a CheckpointRequest/NodeCheckpoint round trip). The
// router journals the result so an ungraceful worker death is recoverable.
func (rn *RemoteNode) CheckpointDelta(since uint64) (core.CheckpointDelta, error) {
	if rn.err != nil {
		return core.CheckpointDelta{}, rn.err
	}
	reply, err := rn.exchange(msg.CheckpointRequest{Node: rn.node, Since: since}, 0)
	if err != nil {
		return core.CheckpointDelta{}, err
	}
	ck, ok := reply.(msg.NodeCheckpoint)
	if !ok {
		return core.CheckpointDelta{}, rn.fail(fmt.Errorf("checkpoint answered by %v", reply.Kind()))
	}
	d := core.CheckpointDelta{Seq: ck.Seq, Slices: ck.Slices}
	for _, oid := range ck.Removed {
		d.Removed = append(d.Removed, model.ObjectID(oid))
	}
	return d, nil
}

// Sever closes the raw connection without a goodbye and marks the handle
// failed — the test-facing ungraceful kill: the worker process may keep
// running, but the router can no longer reach it.
func (rn *RemoteNode) Sever() {
	rn.fail(fmt.Errorf("connection severed"))
}

func (rn *RemoteNode) SnapshotData() ([]byte, error) {
	return rn.op(opSnapshotData, nil, 0)
}

func (rn *RemoteNode) CheckInvariants() error {
	_, err := rn.op(opCheckInvariants, nil, 0)
	return err
}

func (rn *RemoteNode) Close() error {
	if rn.err != nil {
		return nil
	}
	_, err := rn.op(opClose, nil, 0)
	rn.conn.Close()
	return err
}

var _ core.NodeHandle = (*RemoteNode)(nil)

// NewRouter dials the worker addresses, handshakes each as node i, and
// returns a ClusterServer routing over them, with span assignments shipped
// as AssignRange frames on every rebalance (and once at startup). The
// returned handles let the caller run heartbeats and inspect transport
// health.
func NewRouter(g *grid.Grid, opts core.Options, down core.Downlink, addrs []string) (*core.ClusterServer, []*RemoteNode, error) {
	if len(addrs) == 0 {
		return nil, nil, fmt.Errorf("cluster: a router needs at least one worker address")
	}
	rns := make([]*RemoteNode, len(addrs))
	handles := make([]core.NodeHandle, len(addrs))
	for i, addr := range addrs {
		rn, err := Dial(addr, i, down)
		if err != nil {
			for _, prev := range rns[:i] {
				prev.conn.Close()
			}
			return nil, nil, fmt.Errorf("cluster: worker %d at %s: %w", i, addr, err)
		}
		rns[i] = rn
		handles[i] = rn
	}
	cs := core.NewClusterServerOver(g, opts, down, handles)
	cs.SetAssignListener(func(epoch uint64, node, lo, hi int) {
		rns[node].Assign(epoch, lo, hi)
	})
	epoch := cs.Epoch()
	for _, sp := range cs.Spans() {
		rns[sp.Node].Assign(epoch, sp.Lo, sp.Hi)
	}
	return cs, rns, nil
}

// WireTelemetry attaches a telemetry plane to a router and its remote
// nodes: pushed NodeTelemetry frames and heartbeat answers flow into p,
// every node is registered with p's liveness watchdog, and the router's
// telemetry rounds probe each live node through Heartbeat. Call it once,
// right after NewRouter, before traffic starts.
func WireTelemetry(cs *core.ClusterServer, rns []*RemoteNode, p *telemetry.Plane) {
	if p == nil {
		return
	}
	for _, rn := range rns {
		rn.SetTelemetry(p)
	}
	cs.SetTelemetry(p)
	cs.SetProbe(func(i int) error { return rns[i].Heartbeat() })
}
