package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/telemetry"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/remote"
)

// newTelemetryCluster assembles a wire cluster whose workers carry their own
// observability surfaces and push telemetry to a router-side plane: the
// full DESIGN.md §14 topology over in-memory pipes.
func newTelemetryCluster(t *testing.T, n int) (*core.ClusterServer, []*RemoteNode, *telemetry.Plane, *obs.Registry, *trace.Recorder) {
	t.Helper()
	down := &sinkDown{}
	rns := make([]*RemoteNode, n)
	handles := make([]core.NodeHandle, n)
	for i := 0; i < n; i++ {
		rc, wc := net.Pipe()
		w := NewWorker(WorkerConfig{
			UoD: geo.NewRect(0, 0, 100, 100), Alpha: 5.0,
			Metrics: obs.NewRegistry(), Trace: trace.NewRecorder(4096),
		})
		go func() { _ = w.ServeConn(wc) }()
		rn, err := NewRemoteNode(rc, i, down)
		if err != nil {
			t.Fatalf("handshake with worker %d: %v", i, err)
		}
		rns[i] = rn
		handles[i] = rn
	}
	reg := obs.NewRegistry()
	rec := trace.NewRecorder(8192)
	// A generous RTT SLO: loopback heartbeats can stall on a loaded CI
	// scheduler, and the SLO check has its own unit tests.
	plane := telemetry.New(telemetry.Config{Metrics: reg, Trace: rec, RTTSLO: time.Hour})
	cs := core.NewClusterServerOver(testGrid(), core.Options{}, down, handles)
	cs.SetAssignListener(func(epoch uint64, node, lo, hi int) {
		rns[node].Assign(epoch, lo, hi)
	})
	epoch := cs.Epoch()
	for _, sp := range cs.Spans() {
		rns[sp.Node].Assign(epoch, sp.Lo, sp.Hi)
	}
	cs.SetTracer(rec)
	WireTelemetry(cs, rns, plane)
	return cs, rns, plane, reg, rec
}

// TestWireTelemetryStitchAndReexport drives the protocol schedule across a
// two-worker wire cluster and asserts the telemetry plane's three merge
// products: per-node-labelled series in the router registry (one /metrics
// scrape covers the cluster), a stitched cross-node trace timeline in the
// router ring, and a clean watchdog verdict.
func TestWireTelemetryStitchAndReexport(t *testing.T) {
	g := testGrid()
	cs, _, plane, reg, rec := newTelemetryCluster(t, 2)
	defer cs.Close()

	drive(cs, g)
	if cs.Migrations() == 0 {
		t.Fatal("schedule crossed no node boundary — cross-node stitching untested")
	}
	if alerts := cs.TelemetryRound(); len(alerts) != 0 {
		t.Fatalf("healthy cluster raised alerts: %v", alerts)
	}
	if s := plane.HealthStatus(); s != telemetry.HealthOK {
		t.Fatalf("health = %s, want ok", s)
	}

	// Re-export: the router registry carries worker series under node="N".
	byNode := map[string]bool{}
	for _, sp := range reg.Export() {
		for i := 0; i+1 < len(sp.Labels); i += 2 {
			if sp.Labels[i] == "node" {
				byNode[sp.Labels[i+1]] = true
			}
		}
	}
	for _, n := range []string{"0", "1"} {
		if !byNode[n] {
			t.Errorf("router registry has no series labelled node=%q (saw %v)", n, byNode)
		}
	}

	// Stitching: worker-recorded events are merged into the router ring, and
	// a router-minted trace ID carries both the router's ingress and the
	// worker's table events — one cross-node causal timeline.
	actors := map[string]bool{}
	var tid trace.ID
	for _, ev := range rec.Events(trace.Filter{}) {
		actors[ev.Actor] = true
		if tid == 0 && ev.Trace != 0 && strings.HasPrefix(ev.Actor, "node") {
			tid = ev.Trace
		}
	}
	for _, a := range []string{"router", "node0", "node1"} {
		if !actors[a] {
			t.Errorf("router ring missing events from %q (saw %v)", a, actors)
		}
	}
	if tid == 0 {
		t.Fatal("no traced worker event reached the router ring")
	}
	chain := rec.Events(trace.Filter{Trace: tid})
	chainActors := map[string]bool{}
	for _, ev := range chain {
		chainActors[ev.Actor] = true
	}
	if !chainActors["router"] || len(chainActors) < 2 {
		t.Errorf("trace %d 's chain spans actors %v, want router + a worker", tid, chainActors)
	}

	// Handoff edges ran evaluation rounds inline and were counted.
	snap := plane.Snapshot()
	if snap.Handoffs == 0 || snap.Rounds <= 1 {
		t.Errorf("snapshot records %d handoffs over %d rounds, want both > 0 (and rounds > 1)",
			snap.Handoffs, snap.Rounds)
	}
	if len(snap.Nodes) != 2 {
		t.Fatalf("snapshot nodes = %+v", snap.Nodes)
	}
	for _, ns := range snap.Nodes {
		if !ns.Live || !ns.Expected || ns.Batches == 0 || ns.Epoch == 0 {
			t.Errorf("node %d snapshot incomplete: %+v", ns.Node, ns)
		}
	}
}

// TestWireTelemetryNodeDeath kills one worker's transport mid-flight: the
// next telemetry round must raise node-unreachable, degrade /readyz to
// failing, and mark the node's span with an explicit fault — while the
// surviving node keeps answering probes.
func TestWireTelemetryNodeDeath(t *testing.T) {
	cs, rns, plane, _, _ := newTelemetryCluster(t, 2)
	drive(cs, testGrid())
	if alerts := cs.TelemetryRound(); len(alerts) != 0 {
		t.Fatalf("healthy cluster raised alerts: %v", alerts)
	}

	rns[1].conn.Close() // the worker process "dies"

	alerts := cs.TelemetryRound()
	if len(alerts) != 1 || alerts[0].Check != telemetry.CheckUnreachable || alerts[0].Node != 1 {
		t.Fatalf("post-kill alerts = %v, want one node-unreachable on node 1", alerts)
	}
	if s, ok := plane.Ready(); ok || s != telemetry.HealthFailing {
		t.Errorf("Ready() = %s,%v, want failing,false", s, ok)
	}

	// The span view carries the explicit fault marker for partial answers.
	spans := cs.Spans()
	if spans[1].Fault == "" {
		t.Errorf("dead node's span has no fault marker: %+v", spans[1])
	}
	if spans[0].Fault != "" {
		t.Errorf("live node wrongly marked faulty: %+v", spans[0])
	}

	// The alert latches across rounds while the node stays dead.
	alerts = cs.TelemetryRound()
	if len(alerts) != 1 || alerts[0].Rounds < 2 {
		t.Errorf("alert did not latch: %v", alerts)
	}
}

// TestWireAutoRecovery severs a worker's transport and lets the router heal
// itself: with auto-recovery enabled, the telemetry round that diagnoses the
// dead node fences it, replays its journaled focal state into the survivor
// over the checkpoint path it pulled through the wire, and resolves the
// alert — no focal is lost because the previous round's checkpoint is the
// watermark and nothing moved since.
func TestWireAutoRecovery(t *testing.T) {
	cs, rns, plane, _, _ := newTelemetryCluster(t, 2)
	defer cs.Close()
	drive(cs, testGrid())

	// The round checkpoints every live node over the wire and is clean.
	if alerts := cs.TelemetryRound(); len(alerts) != 0 {
		t.Fatalf("healthy cluster raised alerts: %v", alerts)
	}
	spans := cs.Spans()
	total := 0
	victim := 1
	for _, sp := range spans {
		total += sp.Focals
		if sp.Focals > 0 {
			victim = sp.Node
		}
	}
	if total == 0 {
		t.Fatal("schedule installed no focals — recovery untested")
	}
	if n, _ := cs.JournalSize(victim); n != spans[victim].Focals {
		t.Fatalf("journal holds %d slices for node %d, want %d (the wire checkpoint path)",
			n, victim, spans[victim].Focals)
	}

	cs.SetAutoRecover(true)
	rns[victim].conn.Close() // the worker process dies ungracefully

	// One round: diagnose, fence, replay, converge. The returned alert set is
	// post-recovery, so the node-death alert has already auto-resolved.
	if alerts := cs.TelemetryRound(); len(alerts) != 0 {
		t.Fatalf("alerts after auto-recovery = %v, want none", alerts)
	}
	if s := plane.HealthStatus(); s != telemetry.HealthOK {
		t.Errorf("health after recovery = %s, want ok", s)
	}
	if n := plane.Recoveries(); n != 1 {
		t.Errorf("plane counted %d recoveries, want 1", n)
	}
	after := cs.Spans()
	if after[victim].Live {
		t.Fatalf("victim node %d still live after recovery", victim)
	}
	got := 0
	for _, sp := range after {
		got += sp.Focals
	}
	if got != total {
		t.Errorf("focals after recovery = %d, want %d (zero loss at the watermark)", got, total)
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Errorf("invariants after recovery: %v", err)
	}
}

// adminConn is a minimal admin-protocol client for the satellite test below.
type adminConn struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialAdminAddr(t *testing.T, addr string) *adminConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &adminConn{conn: conn, br: bufio.NewReader(conn)}
}

func (a *adminConn) cmd(t *testing.T, line string) string {
	t.Helper()
	fmt.Fprintln(a.conn, line)
	reply, err := a.br.ReadString('\n')
	if err != nil {
		t.Fatalf("admin %q: %v", line, err)
	}
	return strings.TrimRight(reply, "\n")
}

func (a *adminConn) dump(t *testing.T, line string) string {
	t.Helper()
	fmt.Fprintln(a.conn, line)
	var sb strings.Builder
	for {
		l, err := a.br.ReadString('\n')
		if err != nil {
			t.Fatalf("admin dump %q: %v", line, err)
		}
		if l == ".\n" {
			return sb.String()
		}
		sb.WriteString(l)
	}
}

// connTap wraps a listener and remembers accepted conns so the test can
// sever a worker's transport without killing the process.
type connTap struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *connTap) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *connTap) severAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// TestAdminPartialAnswersWhenWorkerDies is the full TCP deployment: a remote
// server routing over two worker processes, with the telemetry plane wired.
// When a worker dies mid-run, the admin aggregation commands must keep
// answering from the router's merged state — no hang, partial results —
// with `nodes` carrying an explicit fault marker and HEALTH reporting the
// failure.
func TestAdminPartialAnswersWhenWorkerDies(t *testing.T) {
	// Two worker processes on real TCP listeners.
	taps := make([]*connTap, 2)
	addrs := make([]string, 2)
	for i := range taps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		taps[i] = &connTap{Listener: ln}
		addrs[i] = ln.Addr().String()
		w := NewWorker(WorkerConfig{
			UoD: geo.NewRect(0, 0, 100, 100), Alpha: 5.0,
			Metrics: obs.NewRegistry(), Trace: trace.NewRecorder(2048),
		})
		go func() { _ = w.Serve(taps[i]) }()
		t.Cleanup(func() { ln.Close() })
	}

	reg := obs.NewRegistry()
	rec := trace.NewRecorder(8192)
	acct := cost.New()
	plane := telemetry.New(telemetry.Config{Metrics: reg, Trace: rec, Costs: acct, RTTSLO: time.Hour})
	var cs *core.ClusterServer
	srv, err := remote.ListenAndServe(remote.ServerConfig{
		Addr:    "127.0.0.1:0",
		UoD:     geo.NewRect(0, 0, 100, 100),
		Alpha:   5,
		Metrics: reg,
		Trace:   rec,
		Costs:   acct,
		Backend: func(g *grid.Grid, opts core.Options, down core.Downlink) (core.ServerAPI, error) {
			var rns []*RemoteNode
			var berr error
			cs, rns, berr = NewRouter(g, opts, down, addrs)
			if berr != nil {
				return nil, berr
			}
			WireTelemetry(cs, rns, plane)
			return cs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.SetTelemetry(plane)
	adminSrv, err := remote.ServeAdmin("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adminSrv.Close)

	// Traffic through the router so every aggregation surface has content.
	// The shim charges the global ledger per uplink, as the wire transport
	// would, so the watchdog's router+Σnodes == global identity holds.
	drive(accountedAPI{cs, acct}, testGrid())
	if alerts := cs.TelemetryRound(); len(alerts) != 0 {
		t.Fatalf("healthy cluster raised alerts: %v", alerts)
	}

	a := dialAdminAddr(t, adminSrv.Addr().String())
	if health := a.dump(t, "HEALTH"); !strings.HasPrefix(health, "health ok") {
		t.Fatalf("pre-kill HEALTH:\n%s", health)
	}

	// Node 1's worker process dies mid-run.
	taps[1].severAll()
	if alerts := cs.TelemetryRound(); len(alerts) == 0 {
		t.Fatal("no alert after worker death")
	}

	// Every aggregation command answers from the router's merged state.
	health := a.dump(t, "HEALTH")
	if !strings.HasPrefix(health, "health failing") || !strings.Contains(health, telemetry.CheckUnreachable) {
		t.Errorf("post-kill HEALTH:\n%s", health)
	}
	nodes := a.dump(t, "nodes")
	if !strings.Contains(nodes, "node 1 live cells") || !strings.Contains(nodes, `fault "`) {
		t.Errorf("nodes dump missing the fault marker:\n%s", nodes)
	}
	stats := a.dump(t, "STATS")
	if !strings.Contains(stats, `node="0"`) {
		t.Errorf("STATS lost the pushed per-node series:\n%s", truncateStr(stats, 600))
	}
	if !strings.Contains(stats, "mobieyes_cluster_alerts_active 1") {
		t.Errorf("STATS missing the active-alert gauge:\n%s", truncateStr(stats, 600))
	}
	if costs := a.dump(t, "COSTS"); !strings.Contains(costs, "global") {
		t.Errorf("COSTS dump:\n%s", costs)
	}
	if tr := a.dump(t, "TRACE 10"); tr == "" {
		t.Error("TRACE returned nothing after node death")
	}
}

// accountedAPI mimics the wire transport's cost boundary: every uplink is
// charged to the global ledger before dispatch, preserving the watchdog's
// ledger identity when a test drives the backend directly.
type accountedAPI struct {
	core.ServerAPI
	acct *cost.Accountant
}

func (a accountedAPI) HandleUplink(m msg.Message) {
	a.acct.Uplink(m.Kind(), m.Size())
	a.ServerAPI.HandleUplink(m)
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
