// Package cluster is the wire tier of the distributed MobiEyes server: a
// router process drives worker processes over TCP using the cluster frames
// of internal/wire (NodeHello, NodeHeartbeat, AssignRange, NodeOp/NodeOpDone,
// Handoff/HandoffAck, NodeDownlink).
//
// The router side is RemoteNode, a core.NodeHandle that forwards every call
// as a synchronous request/response exchange; the worker side is Worker, a
// host for an in-process core.NodeServer that executes the calls and streams
// its downlink sends back before each acknowledgement. Because the
// ClusterServer serializes node dispatch under its router mutex, at most one
// exchange is outstanding per connection and TCP's FIFO ordering makes the
// two-phase handoff drain (extract fully acknowledged before inject is sent)
// inherent in the transport.
//
// Frames reuse internal/remote's length-prefixed framing, so the object
// transport and the cluster tier speak one frame format, and trace IDs ride
// in the wire v2 envelope (wire.EncodeTraced) end to end. See DESIGN.md §13.
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

// ProtoVersion is the cluster handshake version carried in NodeHello.Proto.
// Router and worker must agree exactly; a mismatch is refused with a typed
// VersionError on both sides rather than decaying into garbled exchanges.
// Version 2 added the telemetry plane: workers answer heartbeats with
// NodeStatus (epoch + span digest) and may stream NodeTelemetry batches
// ahead of any reply frame. Version 3 added crash recovery: routers pull
// focal-slice checkpoint deltas with CheckpointRequest, answered by
// NodeCheckpoint, and journal them for replay after an ungraceful worker
// death (DESIGN.md §15).
const ProtoVersion = uint16(3)

// VersionError reports a NodeHello handshake refused for speaking a
// different cluster protocol version.
type VersionError struct {
	Node uint32 // peer's node ID as announced in its hello
	Got  uint16 // version the peer speaks
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("cluster: node %d speaks protocol version %d, this build speaks %d",
		e.Node, e.Got, ProtoVersion)
}

// Opcodes for NodeOp frames: one per NodeHandle method whose arguments are
// not already a protocol message of their own (focal injection travels as a
// Handoff frame, acknowledged by HandoffAck). The worker answers each op
// with NodeOpDone echoing Seq and Code; opError in the reply's Code signals
// a failed op, with the error text as Data.
const (
	opCompleteInstall = uint8(iota + 1)
	opRemoveQuery
	opDueExpiries
	opUpsertFocal
	opVelocityReport
	opContainmentReport
	opGroupContainmentReport
	opFocalCellChange
	opFreshQueryStates
	opClearResults
	opDepartSweep
	opDepartFocal
	opExtractFocal
	opResult
	opResultContains
	opResultSize
	opQuery
	opMonRegion
	opNumQueries
	opQueryIDs
	opNearbyQueries
	opFocalIDs
	opFocalCell
	opOps
	opSnapshotData
	opCheckInvariants
	opClose

	// opError marks a NodeOpDone carrying an error message instead of a
	// result payload.
	opError = uint8(0xFF)
)

// adminSeqBit marks a Handoff frame as an admin (charge-free infrastructure)
// transfer — rebalancing and node drains — so the worker suspends cost
// charging during injection. It rides in the Seq field's top bit, which real
// sequence numbers never reach.
const adminSeqBit = uint64(1) << 63

// pbuf builds little-endian op payloads, mirroring the focal-slice codec.
type pbuf struct{ b []byte }

func (p *pbuf) u8(v uint8)   { p.b = append(p.b, v) }
func (p *pbuf) u16(v uint16) { p.b = binary.LittleEndian.AppendUint16(p.b, v) }
func (p *pbuf) u32(v uint32) { p.b = binary.LittleEndian.AppendUint32(p.b, v) }
func (p *pbuf) u64(v uint64) { p.b = binary.LittleEndian.AppendUint64(p.b, v) }
func (p *pbuf) f64(v float64) { p.u64(math.Float64bits(v)) }
func (p *pbuf) bool(v bool) {
	if v {
		p.u8(1)
	} else {
		p.u8(0)
	}
}
func (p *pbuf) oid(v model.ObjectID) { p.u32(uint32(v)) }
func (p *pbuf) qid(v model.QueryID)  { p.u32(uint32(v)) }
func (p *pbuf) cell(c grid.CellID) {
	p.u32(uint32(int32(c.Col)))
	p.u32(uint32(int32(c.Row)))
}
func (p *pbuf) motion(st model.MotionState) {
	p.f64(st.Pos.X)
	p.f64(st.Pos.Y)
	p.f64(st.Vel.X)
	p.f64(st.Vel.Y)
	p.f64(float64(st.Tm))
}
func (p *pbuf) qids(ids []model.QueryID) {
	p.u32(uint32(len(ids)))
	for _, id := range ids {
		p.qid(id)
	}
}
func (p *pbuf) oids(ids []model.ObjectID) {
	p.u32(uint32(len(ids)))
	for _, id := range ids {
		p.oid(id)
	}
}

// blob appends a length-prefixed byte string.
func (p *pbuf) blob(b []byte) {
	p.u32(uint32(len(b)))
	p.b = append(p.b, b...)
}

// queryStates appends the states as one embedded wire QueryInstall frame.
func (p *pbuf) queryStates(qss []msg.QueryState) {
	p.blob(wire.Encode(msg.QueryInstall{Queries: qss}))
}

// pread consumes little-endian op payloads with sticky error handling.
type pread struct {
	b   []byte
	off int
	err error
}

func (p *pread) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("cluster: op payload: %s", what)
	}
}

func (p *pread) need(n int) bool {
	if p.err != nil {
		return false
	}
	if p.off+n > len(p.b) {
		p.fail("truncated")
		return false
	}
	return true
}

func (p *pread) u8() uint8 {
	if !p.need(1) {
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *pread) u16() uint16 {
	if !p.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(p.b[p.off:])
	p.off += 2
	return v
}

func (p *pread) u32() uint32 {
	if !p.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *pread) u64() uint64 {
	if !p.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

func (p *pread) f64() float64        { return math.Float64frombits(p.u64()) }
func (p *pread) bool() bool          { return p.u8() != 0 }
func (p *pread) oid() model.ObjectID { return model.ObjectID(p.u32()) }
func (p *pread) qid() model.QueryID  { return model.QueryID(p.u32()) }

func (p *pread) cell() grid.CellID {
	return grid.CellID{Col: int(int32(p.u32())), Row: int(int32(p.u32()))}
}

func (p *pread) motion() model.MotionState {
	var st model.MotionState
	st.Pos = geo.Pt(p.f64(), p.f64())
	st.Vel = geo.Vec(p.f64(), p.f64())
	st.Tm = model.Time(p.f64())
	return st
}

func (p *pread) qidList() []model.QueryID {
	n := int(p.u32())
	if p.err != nil || n > (len(p.b)-p.off)/4 {
		p.fail("implausible query-id count")
		return nil
	}
	out := make([]model.QueryID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.qid())
	}
	return out
}

func (p *pread) oidList() []model.ObjectID {
	n := int(p.u32())
	if p.err != nil || n > (len(p.b)-p.off)/4 {
		p.fail("implausible object-id count")
		return nil
	}
	out := make([]model.ObjectID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.oid())
	}
	return out
}

func (p *pread) blob() []byte {
	n := int(p.u32())
	if p.err != nil || n > len(p.b)-p.off {
		p.fail("implausible blob length")
		return nil
	}
	v := p.b[p.off : p.off+n]
	p.off += n
	return v
}

// queryStates consumes one embedded wire QueryInstall frame.
func (p *pread) queryStates() []msg.QueryState {
	b := p.blob()
	if p.err != nil {
		return nil
	}
	m, err := wire.Decode(b)
	if err != nil {
		p.err = err
		return nil
	}
	qi, ok := m.(msg.QueryInstall)
	if !ok {
		p.fail("embedded frame is not a QueryInstall")
		return nil
	}
	return qi.Queries
}

// done reports any decode error, also failing on trailing bytes.
func (p *pread) done() error {
	if p.err == nil && p.off != len(p.b) {
		p.fail("trailing bytes")
	}
	return p.err
}

// queryToState packs a model.Query plus its focal max velocity into the one
// QueryState the CompleteInstall and Query exchanges embed. Motion state and
// monitoring region stay zero: the executing node derives both.
func queryToState(q model.Query, maxVel float64) msg.QueryState {
	return msg.QueryState{
		QID:         q.ID,
		Focal:       q.Focal,
		Region:      q.Region,
		Filter:      q.Filter,
		FocalMaxVel: maxVel,
	}
}

func stateToQuery(qs msg.QueryState) (model.Query, float64) {
	return model.Query{ID: qs.QID, Focal: qs.Focal, Region: qs.Region, Filter: qs.Filter},
		qs.FocalMaxVel
}
