package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/telemetry"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/remote"
	"mobieyes/internal/wire"
)

// WorkerConfig configures a worker node. UoD and Alpha must match the
// router's grid exactly — cell indices in AssignRange and cells in op
// payloads are meaningful only over the same tessellation.
//
// Metrics, Costs and Trace are the worker's local observability surfaces,
// all optional. When any is set the worker instruments its hosted engine
// against them and ships telemetry batches (changed metric series, cost
// deltas, trace events) back to the router as NodeTelemetry frames — the
// push half of the cluster telemetry plane (DESIGN.md §14).
type WorkerConfig struct {
	UoD   geo.Rect
	Alpha float64
	Opts  core.Options

	Metrics *obs.Registry
	Costs   *cost.Accountant
	Trace   *trace.Recorder
}

// Worker hosts an in-process core.NodeServer behind the cluster wire
// protocol: it accepts a router connection, performs the NodeHello
// handshake, then executes NodeOp/Handoff exchanges one at a time, streaming
// the node's downlink sends back as NodeDownlink frames before each
// acknowledgement. A worker serves one router connection at a time; a
// reconnecting router resumes against the same node state.
type Worker struct {
	g    *grid.Grid
	node *core.NodeServer
	capt *captureDown
	coll *telemetry.Collector
	rec  *trace.Recorder

	// id is the node index the router announced in its hello; epoch/lo/hi
	// mirror the latest span assignment, for operator introspection.
	id     uint32
	epoch  uint64
	lo, hi int
}

// NewWorker returns a worker over a fresh node engine, instrumented against
// the config's observability surfaces (when set).
func NewWorker(cfg WorkerConfig) *Worker {
	capt := &captureDown{}
	g := grid.New(cfg.UoD, cfg.Alpha)
	w := &Worker{g: g, node: core.NewNodeServer(g, cfg.Opts, capt), capt: capt, rec: cfg.Trace}
	w.node.Underlying().Instrument(cfg.Metrics)
	if cfg.Costs != nil {
		w.node.Underlying().SetAccountant(cfg.Costs)
	}
	w.coll = telemetry.NewCollector(cfg.Metrics, cfg.Costs, cfg.Trace)
	return w
}

// Node exposes the hosted engine for worker-local wiring (instrumentation,
// snapshot persistence) outside the wire protocol.
func (w *Worker) Node() *core.NodeServer { return w.node }

// Span returns the worker's latest cell-range assignment.
func (w *Worker) Span() (epoch uint64, lo, hi int) { return w.epoch, w.lo, w.hi }

// Serve accepts router connections until the listener closes. Connections
// are served one at a time: the cluster has one router, and serial exchanges
// are the protocol's concurrency model.
func (w *Worker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if err := w.ServeConn(conn); err != nil {
			var ve *VersionError
			if !errors.As(err, &ve) {
				return err
			}
			// A version-mismatched router was refused with a typed hello;
			// keep accepting.
		}
	}
}

// ServeConn runs the handshake and exchange loop over one router
// connection, returning nil on orderly disconnect (EOF or an opClose). A
// *VersionError is returned — after sending this build's hello so the peer
// can diagnose — when the router speaks a different protocol version.
func (w *Worker) ServeConn(conn net.Conn) error {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	payload, err := remote.ReadFrame(br)
	if err != nil {
		return fmt.Errorf("cluster: worker handshake: %w", err)
	}
	m, err := wire.Decode(payload)
	if err != nil {
		return fmt.Errorf("cluster: worker handshake: %w", err)
	}
	hello, ok := m.(msg.NodeHello)
	if !ok {
		return fmt.Errorf("cluster: worker handshake: first frame is %v, want NodeHello", m.Kind())
	}
	reply := msg.NodeHello{Node: hello.Node, Proto: ProtoVersion}
	if err := remote.WriteFrame(bw, wire.Encode(reply)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if hello.Proto != ProtoVersion {
		return &VersionError{Node: hello.Node, Got: hello.Proto}
	}
	w.id = hello.Node
	if w.rec != nil {
		// The worker learns its node index here, so the engine's trace
		// actor ("nodeN", matching the in-process cluster's naming) can
		// only be set now. Stitched cross-node timelines rely on it.
		w.node.SetTracer(w.rec, fmt.Sprintf("node%d", w.id))
	}

	for {
		payload, err := remote.ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		m, tid, err := wire.DecodeTraced(payload)
		if err != nil {
			return fmt.Errorf("cluster: worker: %w", err)
		}
		closing := false
		switch mm := m.(type) {
		case msg.NodeHeartbeat:
			// A probe always flushes pending telemetry (forced collect),
			// then answers with the node's status: span epoch + digest so
			// the router's watchdog can verify assignment agreement, and
			// the op count for liveness progress.
			if err := w.shipTelemetry(bw, true); err != nil {
				return err
			}
			status := msg.NodeStatus{
				Node: w.id, Seq: mm.Seq,
				Epoch: w.epoch, Lo: uint32(w.lo), Hi: uint32(w.hi),
				Digest: telemetry.SpanDigest(w.epoch, uint32(w.lo), uint32(w.hi)),
				Ops:    uint64(w.node.Ops()),
			}
			if err := remote.WriteFrame(bw, wire.Encode(status)); err != nil {
				return err
			}
		case msg.AssignRange:
			// Stale assignments (an old epoch arriving after a rebalance
			// raced a reconnect) are discarded.
			if mm.Epoch >= w.epoch {
				w.epoch, w.lo, w.hi = mm.Epoch, int(mm.Lo), int(mm.Hi)
				w.coll.MarkEdge()
			}
		case msg.NodeOp:
			result, opErr := w.apply(mm.Code, mm.Data, trace.ID(tid))
			w.coll.NoteOp()
			if err := w.reply(bw, opReply(mm, result, opErr)); err != nil {
				return err
			}
			closing = opErr == nil && mm.Code == opClose
		case msg.CheckpointRequest:
			// Checkpoint pull: answer with the focal-slice delta since the
			// router's journaled sequence. A desync (Since not matching the
			// node's sequence) is answered as an error op-done — the router
			// treats it as a failed exchange.
			d, ckErr := w.node.CheckpointDelta(mm.Since)
			if ckErr != nil {
				if err := w.reply(bw, msg.NodeOpDone{Seq: 0, Code: opError, Data: []byte(ckErr.Error())}); err != nil {
					return err
				}
				break
			}
			ck := msg.NodeCheckpoint{Node: w.id, Seq: d.Seq, Slices: d.Slices}
			for _, oid := range d.Removed {
				ck.Removed = append(ck.Removed, uint32(oid))
			}
			if err := w.reply(bw, ck); err != nil {
				return err
			}
		case msg.Handoff:
			admin := mm.Seq&adminSeqBit != 0
			injErr := w.node.InjectFocal(mm.Slice, mm.State, mm.Cell, mm.Relocate, admin, trace.ID(tid))
			w.coll.NoteOp()
			// A handoff changes which node owns a focal — the edge the
			// router's watchdog wants telemetry for promptly.
			w.coll.MarkEdge()
			var done msg.Message = msg.HandoffAck{Seq: mm.Seq, OID: mm.OID}
			if injErr != nil {
				done = msg.NodeOpDone{Seq: mm.Seq, Code: opError, Data: []byte(injErr.Error())}
			}
			if err := w.reply(bw, done); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: worker: unexpected %v frame", m.Kind())
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if closing {
			return nil
		}
	}
}

// opReply builds the NodeOpDone for an applied op.
func opReply(op msg.NodeOp, result []byte, err error) msg.Message {
	if err != nil {
		return msg.NodeOpDone{Seq: op.Seq, Code: opError, Data: []byte(err.Error())}
	}
	return msg.NodeOpDone{Seq: op.Seq, Code: op.Code, Data: result}
}

// reply drains the downlinks the op produced — in send order, ahead of the
// acknowledgement, so the router replays them before the NodeHandle call
// returns — then any due telemetry batch (likewise ahead of the done frame,
// so the router merges this op's trace events before the call completes and
// merge order tracks causal order), then the done frame.
func (w *Worker) reply(bw *bufio.Writer, done msg.Message) error {
	for _, snd := range w.capt.drain() {
		if err := remote.WriteFrame(bw, wire.EncodeTraced(snd.nd, snd.tid)); err != nil {
			return err
		}
	}
	if err := w.shipTelemetry(bw, false); err != nil {
		return err
	}
	return remote.WriteFrame(bw, wire.Encode(done))
}

// shipTelemetry writes the collector's next batch as a NodeTelemetry frame,
// if one is due (force makes it due). A nil or idle collector writes
// nothing.
func (w *Worker) shipTelemetry(bw *bufio.Writer, force bool) error {
	seq, payload := w.coll.Collect(force)
	if payload == nil {
		return nil
	}
	return remote.WriteFrame(bw, wire.Encode(msg.NodeTelemetry{Node: w.id, Seq: seq, Payload: payload}))
}

// apply decodes and executes one opcode against the hosted node.
func (w *Worker) apply(code uint8, data []byte, tid trace.ID) ([]byte, error) {
	in := &pread{b: data}
	var out pbuf
	n := w.node
	switch code {
	case opCompleteInstall:
		expiry := model.Time(in.f64())
		qss := in.queryStates()
		if err := in.done(); err != nil {
			return nil, err
		}
		if len(qss) != 1 {
			return nil, fmt.Errorf("cluster: CompleteInstall carries %d query states", len(qss))
		}
		q, maxVel := stateToQuery(qss[0])
		n.CompleteInstall(q.ID, q, maxVel, expiry, tid)
	case opRemoveQuery:
		qid := in.qid()
		if err := in.done(); err != nil {
			return nil, err
		}
		removed, focal, stillFocal := n.RemoveQuery(qid, tid)
		out.bool(removed)
		out.oid(focal)
		out.bool(stillFocal)
	case opDueExpiries:
		now := model.Time(in.f64())
		if err := in.done(); err != nil {
			return nil, err
		}
		out.qids(n.DueExpiries(now))
	case opUpsertFocal:
		oid, st := in.oid(), in.motion()
		if err := in.done(); err != nil {
			return nil, err
		}
		n.UpsertFocal(oid, st, tid)
	case opVelocityReport, opContainmentReport, opGroupContainmentReport:
		m, err := wire.Decode(data)
		if err != nil {
			return nil, err
		}
		switch mm := m.(type) {
		case msg.VelocityReport:
			n.VelocityReport(mm, tid)
		case msg.ContainmentReport:
			n.ContainmentReport(mm, tid)
		case msg.GroupContainmentReport:
			n.GroupContainmentReport(mm, tid)
		default:
			return nil, fmt.Errorf("cluster: op %d carries %v", code, m.Kind())
		}
	case opFocalCellChange:
		oid, st, cell := in.oid(), in.motion(), in.cell()
		if err := in.done(); err != nil {
			return nil, err
		}
		n.FocalCellChange(oid, st, cell, tid)
	case opFreshQueryStates:
		prev, next := in.cell(), in.cell()
		if err := in.done(); err != nil {
			return nil, err
		}
		out.queryStates(n.FreshQueryStates(prev, next))
	case opClearResults:
		oid := in.oid()
		if err := in.done(); err != nil {
			return nil, err
		}
		n.ClearResults(oid, tid)
	case opDepartSweep:
		oid := in.oid()
		if err := in.done(); err != nil {
			return nil, err
		}
		n.DepartSweep(oid, tid)
	case opDepartFocal:
		oid := in.oid()
		if err := in.done(); err != nil {
			return nil, err
		}
		out.qids(n.DepartFocal(oid, tid))
	case opExtractFocal:
		oid, admin := in.oid(), in.bool()
		if err := in.done(); err != nil {
			return nil, err
		}
		slice, err := n.ExtractFocal(oid, admin, tid)
		if err != nil {
			return nil, err
		}
		return slice, nil
	case opResult:
		qid := in.qid()
		if err := in.done(); err != nil {
			return nil, err
		}
		out.oids(n.Result(qid))
	case opResultContains:
		qid, oid := in.qid(), in.oid()
		if err := in.done(); err != nil {
			return nil, err
		}
		out.bool(n.ResultContains(qid, oid))
	case opResultSize:
		qid := in.qid()
		if err := in.done(); err != nil {
			return nil, err
		}
		out.u32(uint32(n.ResultSize(qid)))
	case opQuery:
		qid := in.qid()
		if err := in.done(); err != nil {
			return nil, err
		}
		q, ok := n.Query(qid)
		out.bool(ok)
		if ok {
			out.queryStates([]msg.QueryState{queryToState(q, 0)})
		}
	case opMonRegion:
		qid := in.qid()
		if err := in.done(); err != nil {
			return nil, err
		}
		mr, ok := n.MonRegion(qid)
		out.bool(ok)
		if ok {
			out.cell(mr.Min)
			out.cell(mr.Max)
		}
	case opNumQueries:
		if err := in.done(); err != nil {
			return nil, err
		}
		out.u32(uint32(n.NumQueries()))
	case opQueryIDs:
		if err := in.done(); err != nil {
			return nil, err
		}
		out.qids(n.QueryIDs())
	case opNearbyQueries:
		cell := in.cell()
		if err := in.done(); err != nil {
			return nil, err
		}
		out.qids(n.NearbyQueries(cell))
	case opFocalIDs:
		if err := in.done(); err != nil {
			return nil, err
		}
		out.oids(n.FocalIDs())
	case opFocalCell:
		oid := in.oid()
		if err := in.done(); err != nil {
			return nil, err
		}
		cell, ok := n.FocalCell(oid)
		out.bool(ok)
		if ok {
			out.cell(cell)
		}
	case opOps:
		if err := in.done(); err != nil {
			return nil, err
		}
		out.u64(uint64(n.Ops()))
	case opSnapshotData:
		if err := in.done(); err != nil {
			return nil, err
		}
		return n.SnapshotData()
	case opCheckInvariants:
		if err := in.done(); err != nil {
			return nil, err
		}
		if err := n.CheckInvariants(); err != nil {
			return nil, err
		}
	case opClose:
		if err := in.done(); err != nil {
			return nil, err
		}
		if err := n.Close(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: unknown opcode %d", code)
	}
	return out.b, nil
}

// captureDown buffers the node engine's downlink sends as NodeDownlink
// frames until the worker drains them onto the wire. The node executes one
// op at a time, so no locking is needed.
type captureDown struct {
	q []capturedSend
}

type capturedSend struct {
	nd  msg.NodeDownlink
	tid uint64
}

func (c *captureDown) Broadcast(region grid.CellRange, m msg.Message) {
	c.BroadcastTraced(region, m, 0)
}

func (c *captureDown) Unicast(oid model.ObjectID, m msg.Message) {
	c.UnicastTraced(oid, m, 0)
}

func (c *captureDown) BroadcastTraced(region grid.CellRange, m msg.Message, tid trace.ID) {
	c.q = append(c.q, capturedSend{
		nd:  msg.NodeDownlink{Broadcast: true, Region: region, Inner: wire.Encode(m)},
		tid: uint64(tid),
	})
}

func (c *captureDown) UnicastTraced(oid model.ObjectID, m msg.Message, tid trace.ID) {
	c.q = append(c.q, capturedSend{
		nd:  msg.NodeDownlink{Target: oid, Inner: wire.Encode(m)},
		tid: uint64(tid),
	})
}

func (c *captureDown) drain() []capturedSend {
	q := c.q
	c.q = nil
	return q
}

var _ core.TracedDownlink = (*captureDown)(nil)
