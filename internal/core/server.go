package core

import (
	"fmt"
	"sort"
	"time"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// fotEntry is one row of the focal object table FOT = (oid, pos, vel, tm),
// §3.2, plus the focal object's maximum velocity (shipped to clients for
// safe-period computation) and the number of queries bound to the object.
type fotEntry struct {
	state    model.MotionState
	maxVel   float64
	queries  []model.QueryID // queries whose focal object this is, sorted
	currCell grid.CellID
}

// sqtEntry is one row of the server-side moving query table
// SQT = (qid, oid, region, curr_cell, mon_region, filter, {result}), §3.2.
type sqtEntry struct {
	query     model.Query
	currCell  grid.CellID
	monRegion grid.CellRange
	result    map[model.ObjectID]struct{}
	// expiry is the time after which the query is uninstalled; zero means
	// no expiry. The paper's motivating queries carry durations ("during
	// next 2 hours", "during the next 20 minutes").
	expiry model.Time
}

// pendingInstall is a query whose focal object's motion state has been
// requested but not yet received (§3.3 step 3).
type pendingInstall struct {
	qid    model.QueryID
	query  model.Query
	maxVel float64
}

// Server is the MobiEyes server: a mediator between moving objects that
// tracks significant position changes of focal objects and relays them to
// the monitoring regions of the affected queries.
type Server struct {
	g    *grid.Grid
	opts Options
	down Downlink

	fot     map[model.ObjectID]*fotEntry
	sqt     map[model.QueryID]*sqtEntry
	rqi     []map[model.QueryID]struct{} // indexed by grid cell index
	// rqiCount tracks the total number of (cell, query) entries across rqi,
	// maintained incrementally by rqiAdd/rqiRemove so reporting it is O(1).
	rqiCount int
	pending  map[model.ObjectID][]pendingInstall
	// expiries holds the deadline of duration-bound queries (pending ones
	// included; completion copies it into the SQT entry).
	expiries map[model.QueryID]model.Time
	nextQID  model.QueryID

	// onResult, when set, receives every differential result change.
	onResult func(ResultEvent)

	// ops counts elementary server-side operations (table updates, RQI
	// touches, broadcasts); a deterministic proxy for server load used by
	// tests, complementing the wall-clock measurement of the experiments.
	// It is an obs counter (atomic underneath) so Ops() stays meaningful
	// when Servers run as shards of a concurrent ShardedServer, and so
	// Instrument can expose the same counter over /metrics. upl counts
	// uplink messages dispatched through HandleUplink.
	ops *obs.Counter
	upl *obs.Counter

	// obsm is the optional extended instrumentation (latency histograms,
	// broadcast metrics), attached by Instrument; nil means uninstrumented.
	obsm *serverObs

	// Causal tracing (see internal/obs/trace and DESIGN.md §11). rec is the
	// flight recorder attached by SetTracer (nil = off); actor names this
	// server in events ("server", or "shardN" under a ShardedServer); tdown
	// caches the downlink's TracedDownlink extension, if any. curTrace is
	// the trace ID of the dispatch in flight; owned by the single dispatch
	// goroutine (or the shard lock when running as a shard).
	rec      *trace.Recorder
	actor    string
	tdown    TracedDownlink
	curTrace trace.ID

	// acct is the cost accountant attached by SetAccountant (nil = off):
	// table work and RQI touches are charged as computation units, and the
	// broadcast/unicast funnels attribute traffic per query/object. See
	// internal/obs/cost and DESIGN.md §12.
	acct *cost.Accountant
}

// NewServer returns a MobiEyes server over grid g, sending through down.
func NewServer(g *grid.Grid, opts Options, down Downlink) *Server {
	return &Server{
		g:        g,
		opts:     opts,
		down:     down,
		fot:      make(map[model.ObjectID]*fotEntry),
		sqt:      make(map[model.QueryID]*sqtEntry),
		rqi:      makeRQI(g.NumCells()),
		pending:  make(map[model.ObjectID][]pendingInstall),
		expiries: make(map[model.QueryID]model.Time),
		nextQID:  1,
		ops:      obs.NewCounter(),
		upl:      obs.NewCounter(),
	}
}

func makeRQI(n int) []map[model.QueryID]struct{} {
	r := make([]map[model.QueryID]struct{}, n)
	for i := range r {
		r[i] = make(map[model.QueryID]struct{})
	}
	return r
}

// Ops returns the cumulative deterministic operation count.
func (s *Server) Ops() int64 { return s.ops.Value() }

// SetAccountant attaches a cost accountant (nil = off; the default). See the
// acct field and internal/obs/cost for what is attributed where.
func (s *Server) SetAccountant(a *cost.Accountant) {
	s.acct = a
	a.SetMode(s.opts.Mode.String())
}

// NumQueries returns the number of installed queries.
func (s *Server) NumQueries() int { return len(s.sqt) }

// InstallQuery starts installation of a moving query (§3.3). The request
// is the paper's (oid, region, filter) triple plus the focal object's
// maximum velocity. The returned query identifier is assigned immediately;
// if the focal object is not yet in the FOT, installation completes
// asynchronously once the focal object answers the server's
// FocalInfoRequest.
func (s *Server) InstallQuery(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64) model.QueryID {
	qid := s.nextQID
	s.nextQID++
	root := s.beginRoot(focal, qid, "InstallQuery")
	defer s.endRoot(root)
	q := model.Query{ID: qid, Focal: focal, Region: region, Filter: filter}
	if _, ok := s.fot[focal]; ok {
		s.completeInstall(qid, q, focalMaxVel)
		s.syncTableGauges()
		return qid
	}
	// §3.3 step 3: the focal object is unknown — request its motion state.
	s.pending[focal] = append(s.pending[focal], pendingInstall{qid, q, focalMaxVel})
	if len(s.pending[focal]) == 1 {
		s.unicast(focal, msg.FocalInfoRequest{OID: focal})
	}
	s.ops.Add(1)
	s.syncTableGauges()
	return qid
}

// InstallQueryUntil installs a query that expires at the given time — the
// duration-bound form of the paper's motivating examples ("give me … during
// the next 2 hours"). ExpireQueries removes it once the deadline passes.
func (s *Server) InstallQueryUntil(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64, expiry model.Time) model.QueryID {
	qid := s.InstallQuery(focal, region, filter, focalMaxVel)
	s.expiries[qid] = expiry
	if e, ok := s.sqt[qid]; ok {
		e.expiry = expiry
	}
	return qid
}

// ExpireQueries removes every query whose expiry has passed and returns the
// removed identifiers (sorted). Call it with the current time whenever the
// clock advances; the engines do so once per step.
func (s *Server) ExpireQueries(now model.Time) []model.QueryID {
	root := s.beginRoot(0, 0, "ExpireQueries")
	defer s.endRoot(root)
	var expired []model.QueryID
	for qid, exp := range s.expiries {
		if exp <= now {
			expired = append(expired, qid)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, qid := range expired {
		delete(s.expiries, qid)
		s.RemoveQuery(qid)
	}
	return expired
}

// OnFocalInfoResponse receives a prospective focal object's motion state
// and completes any pending installations for it.
func (s *Server) OnFocalInfoResponse(m msg.FocalInfoResponse) {
	s.upsertFocal(m.OID, model.MotionState{Pos: m.Pos, Vel: m.Vel, Tm: m.Tm})
	for _, p := range s.pending[m.OID] {
		s.completeInstall(p.qid, p.query, p.maxVel)
	}
	delete(s.pending, m.OID)
}

// upsertFocal creates or refreshes the FOT entry for oid from a reported
// motion state, recomputing curr_cell from the position.
func (s *Server) upsertFocal(oid model.ObjectID, st model.MotionState) *fotEntry {
	fe, ok := s.fot[oid]
	if ok {
		fe.state = st
		fe.currCell = s.g.CellOf(st.Pos)
	} else {
		fe = &fotEntry{state: st, currCell: s.g.CellOf(st.Pos)}
		s.fot[oid] = fe
	}
	s.ev(trace.KindTable, oid, 0, "FOT upsert")
	s.ops.Add(1)
	s.acct.Compute(cost.UnitTableOp, 1)
	return fe
}

// completeInstall performs §3.3 steps 2 and 4: create the SQT entry, index
// it in the RQI, notify the focal object, and broadcast the query to its
// monitoring region.
func (s *Server) completeInstall(qid model.QueryID, q model.Query, focalMaxVel float64) {
	fe := s.fot[q.Focal]
	if focalMaxVel > fe.maxVel {
		fe.maxVel = focalMaxVel
	}
	fe.queries = insertSortedQID(fe.queries, qid)

	currCell := fe.currCell
	monRegion := s.g.MonitoringRegion(currCell, q.Region.EnclosingRadius())
	s.sqt[qid] = &sqtEntry{
		query:     q,
		currCell:  currCell,
		monRegion: monRegion,
		result:    make(map[model.ObjectID]struct{}),
		expiry:    s.expiries[qid],
	}
	s.rqiAdd(qid, monRegion)
	s.ev(trace.KindTable, q.Focal, qid, "SQT insert")

	// Tell the object it is now focal (sets hasMQ)…
	s.unicast(q.Focal, msg.FocalNotify{OID: q.Focal, QID: qid, Install: true})
	// …and ship the query to every object in the monitoring region.
	s.broadcast(monRegion, msg.QueryInstall{
		Queries: []msg.QueryState{s.queryState(qid)},
	})
	s.ops.Add(3)
	s.acct.Compute(cost.UnitTableOp, 1)
}

// RemoveQuery uninstalls a query: it is dropped from SQT and RQI, the
// monitoring region is told to forget it, and the focal object's hasMQ is
// cleared when its last query goes away.
func (s *Server) RemoveQuery(qid model.QueryID) bool {
	e, ok := s.sqt[qid]
	if !ok {
		return false
	}
	root := s.beginRoot(e.query.Focal, qid, "RemoveQuery")
	defer s.endRoot(root)
	for _, oid := range s.Result(qid) {
		s.notifyResult(qid, oid, false)
	}
	delete(s.expiries, qid)
	s.rqiRemove(qid, e.monRegion)
	delete(s.sqt, qid)
	fe := s.fot[e.query.Focal]
	fe.queries = removeSortedQID(fe.queries, qid)
	s.ev(trace.KindTable, e.query.Focal, qid, "SQT delete")
	s.broadcast(e.monRegion, msg.QueryRemove{QIDs: []model.QueryID{qid}})
	if len(fe.queries) == 0 {
		s.unicast(e.query.Focal, msg.FocalNotify{OID: e.query.Focal, QID: qid, Install: false})
		delete(s.fot, e.query.Focal)
	}
	s.ops.Add(3)
	s.acct.Compute(cost.UnitTableOp, 1)
	s.syncTableGauges()
	return true
}

// OnVelocityReport handles a focal object's significant velocity-vector
// change (§3.4): update the FOT, then relay the new motion state to the
// monitoring region of every query bound to the object. With grouping on,
// queries sharing a monitoring region share one broadcast; under lazy
// propagation the broadcast carries full query state.
func (s *Server) OnVelocityReport(m msg.VelocityReport) {
	fe, ok := s.fot[m.OID]
	if !ok {
		return // not a focal object (stale report after query removal)
	}
	fe.state = model.MotionState{Pos: m.Pos, Vel: m.Vel, Tm: m.Tm}
	s.ev(trace.KindTable, m.OID, 0, "FOT refresh")
	s.ops.Add(1)
	s.acct.Compute(cost.UnitTableOp, 1)
	s.relayFocalState(fe)
}

// relayFocalState broadcasts fe's current motion state to the monitoring
// regions of its queries.
func (s *Server) relayFocalState(fe *fotEntry) {
	if len(fe.queries) == 0 {
		return
	}
	focal := s.sqt[fe.queries[0]].query.Focal
	if s.opts.Grouping {
		// One broadcast per distinct monitoring region (§4.1: MQs with
		// matching monitoring regions are grouped).
		for _, group := range s.groupsByMonRegion(fe) {
			s.broadcastVelocityChange(focal, fe, group)
		}
	} else {
		for _, qid := range fe.queries {
			s.broadcastVelocityChange(focal, fe, []model.QueryID{qid})
		}
	}
}

// broadcastVelocityChange sends one VelocityChange covering the given
// queries (all bound to focal, all with the same monitoring region).
func (s *Server) broadcastVelocityChange(focal model.ObjectID, fe *fotEntry, qids []model.QueryID) {
	region := s.sqt[qids[0]].monRegion
	vc := msg.VelocityChange{Focal: focal, State: fe.state}
	if s.opts.Mode == LazyPropagation {
		// §3.5: expand the notification with region and filter so objects
		// that changed cells silently can self-install.
		for _, qid := range qids {
			vc.Queries = append(vc.Queries, s.queryState(qid))
		}
	}
	s.broadcast(region, vc)
	s.ops.Add(1)
}

// groupsByMonRegion partitions fe's queries into groups with identical
// monitoring regions, each group sorted by query ID. Ordering is
// deterministic: groups appear in ascending order of their smallest QID.
func (s *Server) groupsByMonRegion(fe *fotEntry) [][]model.QueryID {
	var groups [][]model.QueryID
	byRegion := make(map[grid.CellRange]int)
	for _, qid := range fe.queries { // fe.queries is sorted
		r := s.sqt[qid].monRegion
		if gi, ok := byRegion[r]; ok {
			groups[gi] = append(groups[gi], qid)
		} else {
			byRegion[r] = len(groups)
			groups = append(groups, []model.QueryID{qid})
		}
	}
	return groups
}

// OnCellChangeReport handles an object crossing into a new grid cell
// (§3.5). For focal objects the affected queries' monitoring regions are
// recomputed and re-broadcast; for non-focal objects (eager propagation)
// the server ships the newly relevant queries one-to-one.
func (s *Server) OnCellChangeReport(m msg.CellChangeReport) {
	// An invalid previous cell marks a (re)join: the object is about to
	// re-report its containment status from scratch, so any result entry it
	// still occupies is stale and must be dropped first (a report lost while
	// the object was disconnected would otherwise survive forever).
	if !s.g.Valid(m.PrevCell) {
		s.clearObjectFromResults(m.OID)
	}
	// The report carries the object's motion state; if installs are pending
	// on this object (its FocalInfoRequest may have been lost in transit),
	// complete them from the piggybacked state.
	if len(s.pending[m.OID]) > 0 {
		s.OnFocalInfoResponse(msg.FocalInfoResponse{OID: m.OID, Pos: m.Pos, Vel: m.Vel, Tm: m.Tm})
	}
	fe, isFocal := s.fot[m.OID]
	if isFocal {
		s.focalCellChange(fe, model.MotionState{Pos: m.Pos, Vel: m.Vel, Tm: m.Tm}, m.NewCell)
	}
	// Ship the newly nearby queries. Under eager propagation every object
	// reports cell changes and receives this; under lazy propagation only
	// focal objects report, and they get the same treatment for free.
	s.sendNewNearbyQueries(m.OID, m.PrevCell, m.NewCell)
	s.ops.Add(1)
}

// clearObjectFromResults drops oid from every query result, with leave
// notifications — the server side of the rejoin handshake.
func (s *Server) clearObjectFromResults(oid model.ObjectID) {
	for qid, e := range s.sqt {
		if _, in := e.result[oid]; in {
			delete(e.result, oid)
			s.notifyResult(qid, oid, false)
		}
	}
	s.ops.Add(1)
}

// focalCellChange applies a focal object's move to newCell: the FOT row is
// refreshed and every bound query relocated. Extracted so the sharded
// engine can run the same logic after migrating the focal's rows between
// shards.
func (s *Server) focalCellChange(fe *fotEntry, st model.MotionState, newCell grid.CellID) {
	fe.state = st
	fe.currCell = newCell
	for _, qid := range fe.queries {
		s.relocateQuery(qid, newCell)
	}
}

// relocateQuery updates one query after its focal object moved to newCell:
// SQT and RQI are refreshed and the union of old and new monitoring regions
// receives the query's new state (§3.5).
func (s *Server) relocateQuery(qid model.QueryID, newCell grid.CellID) {
	e := s.sqt[qid]
	oldRegion := e.monRegion
	newRegion := s.g.MonitoringRegion(newCell, e.query.Region.EnclosingRadius())
	e.currCell = newCell
	if newRegion != oldRegion {
		s.rqiRemove(qid, oldRegion)
		s.rqiAdd(qid, newRegion)
		e.monRegion = newRegion
		s.ev(trace.KindTable, e.query.Focal, qid, "RQI relocate")
	}
	s.broadcast(oldRegion.Union(newRegion), msg.QueryInstall{
		Queries: []msg.QueryState{s.queryState(qid)},
	})
	s.ops.Add(2)
	s.acct.Compute(cost.UnitTableOp, 1)
}

// sendNewNearbyQueries computes RQI(newCell) \ RQI(prevCell) and sends those
// queries to the object one-to-one.
func (s *Server) sendNewNearbyQueries(oid model.ObjectID, prevCell, newCell grid.CellID) {
	fresh := s.freshQueryStates(prevCell, newCell)
	if len(fresh) == 0 {
		return
	}
	s.unicast(oid, msg.QueryInstall{Queries: fresh})
	s.ops.Add(1)
}

// freshQueryStates returns the wire states of RQI(newCell) \ RQI(prevCell),
// ascending by query ID — the queries an object entering newCell from
// prevCell has not seen yet. The sharded server unions this across shards.
func (s *Server) freshQueryStates(prevCell, newCell grid.CellID) []msg.QueryState {
	if !s.g.Valid(newCell) {
		return nil
	}
	newSet := s.rqi[s.g.CellIndex(newCell)]
	if len(newSet) == 0 {
		return nil
	}
	var oldSet map[model.QueryID]struct{}
	if s.g.Valid(prevCell) {
		oldSet = s.rqi[s.g.CellIndex(prevCell)]
	}
	var fresh []model.QueryID
	for qid := range newSet {
		if _, ok := oldSet[qid]; !ok {
			fresh = append(fresh, qid)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	states := make([]msg.QueryState, 0, len(fresh))
	for _, qid := range fresh {
		states = append(states, s.queryState(qid))
	}
	return states
}

// OnContainmentReport applies a differential result update (§3.6).
func (s *Server) OnContainmentReport(m msg.ContainmentReport) {
	e, ok := s.sqt[m.QID]
	if !ok {
		return
	}
	if m.IsTarget {
		if _, had := e.result[m.OID]; !had {
			e.result[m.OID] = struct{}{}
			s.notifyResult(m.QID, m.OID, true)
		}
	} else if _, had := e.result[m.OID]; had {
		delete(e.result, m.OID)
		s.notifyResult(m.QID, m.OID, false)
	}
	s.ops.Add(1)
	s.acct.Compute(cost.UnitTableOp, 1)
}

// OnGroupContainmentReport applies a grouped result update: one bitmap bit
// per query in the group (§4.1).
func (s *Server) OnGroupContainmentReport(m msg.GroupContainmentReport) {
	for i, qid := range m.QIDs {
		e, ok := s.sqt[qid]
		if !ok {
			continue
		}
		if m.Bitmap.Get(i) {
			if _, had := e.result[m.OID]; !had {
				e.result[m.OID] = struct{}{}
				s.notifyResult(qid, m.OID, true)
			}
		} else if _, had := e.result[m.OID]; had {
			delete(e.result, m.OID)
			s.notifyResult(qid, m.OID, false)
		}
	}
	s.ops.Add(int64(len(m.QIDs)))
	s.acct.Compute(cost.UnitTableOp, int64(len(m.QIDs)))
}

// OnDepartureReport handles an object leaving the system: it is dropped
// from every query result (with leave notifications) and every query it was
// focal of is removed.
func (s *Server) OnDepartureReport(m msg.DepartureReport) {
	for qid, e := range s.sqt {
		if _, in := e.result[m.OID]; in {
			delete(e.result, m.OID)
			s.notifyResult(qid, m.OID, false)
		}
	}
	if fe, ok := s.fot[m.OID]; ok {
		// RemoveQuery mutates fe.queries; iterate over a copy.
		for _, qid := range append([]model.QueryID(nil), fe.queries...) {
			s.RemoveQuery(qid)
		}
		delete(s.fot, m.OID)
	}
	delete(s.pending, m.OID)
	s.ops.Add(1)
}

// HandleUplink dispatches any uplink message to its handler. It panics on
// message kinds the MobiEyes server does not consume (such as the naïve
// baseline's position reports), which would indicate miswired transports.
// When instrumented, dispatch is counted and timed per message kind, and the
// table-size gauges are refreshed afterwards.
func (s *Server) HandleUplink(m msg.Message) { s.HandleUplinkTraced(m, 0) }

// HandleUplinkTraced is HandleUplink with an inbound trace ID: this is the
// uplink ingress point of the tracing layer. A zero tid starts a fresh
// trace when a recorder is attached (and stays zero — fully untraced —
// when not); everything the dispatch causes (table mutations, broadcasts,
// result flips) is tagged with the resulting ID.
func (s *Server) HandleUplinkTraced(m msg.Message, tid trace.ID) {
	s.upl.Add(1)
	if s.acct != nil {
		// Per-entity uplink attribution (protocol-level model bytes): charge
		// the object the message is about and the query it targets, if any.
		oid, qid := TraceRef(m)
		sz := m.Size()
		if oid != 0 {
			s.acct.ObjectUp(int64(oid), sz)
		}
		if qid != 0 {
			s.acct.QueryUp(int64(qid), sz)
		}
	}
	if s.rec != nil {
		if tid == 0 {
			tid = s.rec.NextID()
		}
		oid, qid := TraceRef(m)
		s.rec.Event(tid, trace.KindIngress, s.actor, oid, qid, m.Kind().String())
	}
	prev := s.curTrace
	s.curTrace = tid
	if o := s.obsm; o != nil && o.uplinkLat != nil {
		start := time.Now()
		s.dispatchUplink(m)
		o.uplinkLat.observe(m.Kind(), start)
	} else {
		s.dispatchUplink(m)
	}
	s.curTrace = prev
	s.syncTableGauges()
}

func (s *Server) dispatchUplink(m msg.Message) {
	switch mm := m.(type) {
	case msg.VelocityReport:
		s.OnVelocityReport(mm)
	case msg.CellChangeReport:
		s.OnCellChangeReport(mm)
	case msg.ContainmentReport:
		s.OnContainmentReport(mm)
	case msg.GroupContainmentReport:
		s.OnGroupContainmentReport(mm)
	case msg.FocalInfoResponse:
		s.OnFocalInfoResponse(mm)
	case msg.DepartureReport:
		s.OnDepartureReport(mm)
	default:
		panic(fmt.Sprintf("core: server cannot handle %v", m.Kind()))
	}
}

// Result returns the current result set of a query as a sorted slice, or
// nil if the query is unknown.
func (s *Server) Result(qid model.QueryID) []model.ObjectID {
	e, ok := s.sqt[qid]
	if !ok {
		return nil
	}
	out := make([]model.ObjectID, 0, len(e.result))
	for oid := range e.result {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResultContains reports whether oid is currently in qid's result.
func (s *Server) ResultContains(qid model.QueryID, oid model.ObjectID) bool {
	e, ok := s.sqt[qid]
	if !ok {
		return false
	}
	_, in := e.result[oid]
	return in
}

// ResultSize returns |result| for a query (0 for unknown queries).
func (s *Server) ResultSize(qid model.QueryID) int {
	e, ok := s.sqt[qid]
	if !ok {
		return 0
	}
	return len(e.result)
}

// QueryIDs returns all installed query IDs in ascending order.
func (s *Server) QueryIDs() []model.QueryID {
	out := make([]model.QueryID, 0, len(s.sqt))
	for qid := range s.sqt {
		out = append(out, qid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Query returns the descriptor of an installed query.
func (s *Server) Query(qid model.QueryID) (model.Query, bool) {
	e, ok := s.sqt[qid]
	if !ok {
		return model.Query{}, false
	}
	return e.query, true
}

// MonRegion returns the current monitoring region of a query.
func (s *Server) MonRegion(qid model.QueryID) (grid.CellRange, bool) {
	e, ok := s.sqt[qid]
	if !ok {
		return grid.CellRange{}, false
	}
	return e.monRegion, true
}

// NearbyQueries returns RQI(cell): the queries whose monitoring regions
// intersect the given cell, ascending.
func (s *Server) NearbyQueries(cell grid.CellID) []model.QueryID {
	if !s.g.Valid(cell) {
		return nil
	}
	set := s.rqi[s.g.CellIndex(cell)]
	out := make([]model.QueryID, 0, len(set))
	for qid := range set {
		out = append(out, qid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// queryState builds the wire representation of a query for clients.
func (s *Server) queryState(qid model.QueryID) msg.QueryState {
	e := s.sqt[qid]
	fe := s.fot[e.query.Focal]
	return msg.QueryState{
		QID:         qid,
		Focal:       e.query.Focal,
		State:       fe.state,
		Region:      e.query.Region,
		Filter:      e.query.Filter,
		MonRegion:   e.monRegion,
		FocalMaxVel: fe.maxVel,
	}
}

func (s *Server) rqiAdd(qid model.QueryID, region grid.CellRange) {
	region.ForEach(func(c grid.CellID) {
		if s.g.Valid(c) {
			set := s.rqi[s.g.CellIndex(c)]
			if _, ok := set[qid]; !ok {
				set[qid] = struct{}{}
				s.rqiCount++
			}
			s.ops.Add(1)
			s.acct.Compute(cost.UnitRQITouch, 1)
		}
	})
}

func (s *Server) rqiRemove(qid model.QueryID, region grid.CellRange) {
	region.ForEach(func(c grid.CellID) {
		if s.g.Valid(c) {
			set := s.rqi[s.g.CellIndex(c)]
			if _, ok := set[qid]; ok {
				delete(set, qid)
				s.rqiCount--
			}
			s.ops.Add(1)
			s.acct.Compute(cost.UnitRQITouch, 1)
		}
	})
}

func insertSortedQID(qs []model.QueryID, qid model.QueryID) []model.QueryID {
	i := sort.Search(len(qs), func(i int) bool { return qs[i] >= qid })
	qs = append(qs, 0)
	copy(qs[i+1:], qs[i:])
	qs[i] = qid
	return qs
}

func removeSortedQID(qs []model.QueryID, qid model.QueryID) []model.QueryID {
	i := sort.Search(len(qs), func(i int) bool { return qs[i] >= qid })
	if i < len(qs) && qs[i] == qid {
		return append(qs[:i], qs[i+1:]...)
	}
	return qs
}

// CheckInvariants validates the server's internal consistency: every SQT
// entry is indexed in exactly the RQI cells of its monitoring region, every
// focal-object record lists exactly its live queries, and expiry
// bookkeeping matches the SQT. It returns the first violation found, or
// nil. Intended for tests and debugging; it walks every table.
func (s *Server) CheckInvariants() error {
	// RQI ↔ SQT agreement.
	for qid, e := range s.sqt {
		var count int
		e.monRegion.ForEach(func(c grid.CellID) {
			if !s.g.Valid(c) {
				return
			}
			if _, ok := s.rqi[s.g.CellIndex(c)][qid]; ok {
				count++
			} else {
				count = -1 << 30
			}
		})
		if count < 0 {
			return fmt.Errorf("core: query %d missing from RQI cells of its monitoring region", qid)
		}
	}
	entries := 0
	for idx, set := range s.rqi {
		entries += len(set)
		for qid := range set {
			e, ok := s.sqt[qid]
			if !ok {
				return fmt.Errorf("core: RQI cell %d lists unknown query %d", idx, qid)
			}
			if !e.monRegion.Contains(s.g.CellAt(idx)) {
				return fmt.Errorf("core: RQI cell %d lists query %d outside its monitoring region", idx, qid)
			}
		}
	}
	if entries != s.rqiCount {
		return fmt.Errorf("core: incremental RQI entry count %d, actual %d", s.rqiCount, entries)
	}
	// FOT ↔ SQT agreement.
	for oid, fe := range s.fot {
		for _, qid := range fe.queries {
			e, ok := s.sqt[qid]
			if !ok {
				return fmt.Errorf("core: focal %d lists unknown query %d", oid, qid)
			}
			if e.query.Focal != oid {
				return fmt.Errorf("core: query %d listed under focal %d but bound to %d", qid, oid, e.query.Focal)
			}
		}
	}
	for qid, e := range s.sqt {
		fe, ok := s.fot[e.query.Focal]
		if !ok {
			return fmt.Errorf("core: query %d has no FOT entry for focal %d", qid, e.query.Focal)
		}
		found := false
		for _, q := range fe.queries {
			if q == qid {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: query %d not listed under its focal %d", qid, e.query.Focal)
		}
	}
	// Expiry bookkeeping: every expiry refers to a live or pending query.
	for qid := range s.expiries {
		if _, ok := s.sqt[qid]; ok {
			continue
		}
		pendingFound := false
		for _, ps := range s.pending {
			for _, p := range ps {
				if p.qid == qid {
					pendingFound = true
				}
			}
		}
		if !pendingFound {
			return fmt.Errorf("core: expiry recorded for unknown query %d", qid)
		}
	}
	return nil
}
