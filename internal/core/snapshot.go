package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

// Snapshot format identifiers.
const (
	snapshotMagic   = "MOBS"
	snapshotVersion = uint16(1)
)

// snapQuery is one installed query in a snapshot: the wire QueryState
// carries everything describing the query (identity, focal motion state,
// region, filter, monitoring region).
type snapQuery struct {
	state  msg.QueryState
	expiry model.Time
	result []model.ObjectID // sorted
}

// snapPending is one installation still waiting on a FocalInfoRequest.
type snapPending struct {
	qid    model.QueryID
	query  model.Query
	maxVel float64
	expiry model.Time
}

// snapData is the durable state shared by both server implementations.
type snapData struct {
	nextQID model.QueryID
	queries []snapQuery // ascending by QID
	pending []snapPending
}

// writeSnapshot serializes d in the stable MOBS format.
func writeSnapshot(w io.Writer, d snapData) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU16 := func(v uint16) { var b [2]byte; le.PutUint16(b[:], v); bw.Write(b[:]) }
	writeU32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); bw.Write(b[:]) }
	writeU64 := func(v uint64) { var b [8]byte; le.PutUint64(b[:], v); bw.Write(b[:]) }
	writeF := func(v float64) { writeU64(math.Float64bits(v)) }
	writeBytes := func(b []byte) {
		writeU32(uint32(len(b)))
		bw.Write(b)
	}

	writeU16(snapshotVersion)
	writeU32(uint32(d.nextQID))

	writeU32(uint32(len(d.queries)))
	for _, q := range d.queries {
		writeBytes(wire.Encode(msg.QueryInstall{Queries: []msg.QueryState{q.state}}))
		writeF(float64(q.expiry))
		writeU32(uint32(len(q.result)))
		for _, oid := range q.result {
			writeU32(uint32(oid))
		}
	}

	writeU32(uint32(len(d.pending)))
	for _, p := range d.pending {
		writeU32(uint32(p.qid))
		writeU32(uint32(p.query.Focal))
		writeBytes(wire.Encode(msg.QueryInstall{Queries: []msg.QueryState{{
			QID:    p.qid,
			Focal:  p.query.Focal,
			Region: p.query.Region,
			Filter: p.query.Filter,
		}}}))
		writeF(p.maxVel)
		writeF(float64(p.expiry))
	}
	return bw.Flush()
}

// readSnapshot parses the MOBS format back into records.
func readSnapshot(r io.Reader) (snapData, error) {
	var d snapData
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return d, fmt.Errorf("core: reading snapshot magic: %w", err)
	}
	if string(head) != snapshotMagic {
		return d, errors.New("core: not a server snapshot")
	}
	le := binary.LittleEndian
	readU16 := func() (uint16, error) {
		var b [2]byte
		_, err := io.ReadFull(br, b[:])
		return le.Uint16(b[:]), err
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		_, err := io.ReadFull(br, b[:])
		return le.Uint32(b[:]), err
	}
	readF := func() (float64, error) {
		var b [8]byte
		_, err := io.ReadFull(br, b[:])
		return math.Float64frombits(le.Uint64(b[:])), err
	}
	readBytes := func() ([]byte, error) {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("core: implausible snapshot chunk of %d bytes", n)
		}
		b := make([]byte, n)
		_, err = io.ReadFull(br, b)
		return b, err
	}
	readQueryState := func() (msg.QueryState, error) {
		raw, err := readBytes()
		if err != nil {
			return msg.QueryState{}, err
		}
		m, err := wire.Decode(raw)
		if err != nil {
			return msg.QueryState{}, err
		}
		qi, ok := m.(msg.QueryInstall)
		if !ok || len(qi.Queries) != 1 {
			return msg.QueryState{}, errors.New("core: malformed query record in snapshot")
		}
		return qi.Queries[0], nil
	}

	ver, err := readU16()
	if err != nil {
		return d, err
	}
	if ver != snapshotVersion {
		return d, fmt.Errorf("core: unsupported snapshot version %d", ver)
	}
	nextQID, err := readU32()
	if err != nil {
		return d, err
	}
	d.nextQID = model.QueryID(nextQID)

	nQueries, err := readU32()
	if err != nil {
		return d, err
	}
	for i := uint32(0); i < nQueries; i++ {
		var q snapQuery
		q.state, err = readQueryState()
		if err != nil {
			return d, fmt.Errorf("core: snapshot query %d: %w", i, err)
		}
		expiry, err := readF()
		if err != nil {
			return d, err
		}
		q.expiry = model.Time(expiry)
		nRes, err := readU32()
		if err != nil {
			return d, err
		}
		q.result = make([]model.ObjectID, 0, nRes)
		for j := uint32(0); j < nRes; j++ {
			oid, err := readU32()
			if err != nil {
				return d, err
			}
			q.result = append(q.result, model.ObjectID(oid))
		}
		d.queries = append(d.queries, q)
	}

	nPending, err := readU32()
	if err != nil {
		return d, err
	}
	for i := uint32(0); i < nPending; i++ {
		var p snapPending
		qidRaw, err := readU32()
		if err != nil {
			return d, err
		}
		focalRaw, err := readU32()
		if err != nil {
			return d, err
		}
		qs, err := readQueryState()
		if err != nil {
			return d, err
		}
		p.maxVel, err = readF()
		if err != nil {
			return d, err
		}
		expiry, err := readF()
		if err != nil {
			return d, err
		}
		p.qid = model.QueryID(qidRaw)
		p.expiry = model.Time(expiry)
		focal := model.ObjectID(focalRaw)
		p.query = model.Query{ID: p.qid, Focal: focal, Region: qs.Region, Filter: qs.Filter}
		d.pending = append(d.pending, p)
	}
	return d, nil
}

// snapshotData collects the server's durable state as records. Queries are
// ascending by QID, pending installs ascending by focal then arrival order.
func (s *Server) snapshotData() snapData {
	d := snapData{nextQID: s.nextQID}
	for _, qid := range s.QueryIDs() {
		e := s.sqt[qid]
		d.queries = append(d.queries, snapQuery{
			state:  s.queryState(qid),
			expiry: e.expiry,
			result: s.Result(qid),
		})
	}
	var pendingFocals []model.ObjectID
	for focal := range s.pending {
		pendingFocals = append(pendingFocals, focal)
	}
	sort.Slice(pendingFocals, func(i, j int) bool { return pendingFocals[i] < pendingFocals[j] })
	for _, focal := range pendingFocals {
		for _, p := range s.pending[focal] {
			d.pending = append(d.pending, snapPending{
				qid:    p.qid,
				query:  p.query,
				maxVel: p.maxVel,
				expiry: s.expiries[p.qid],
			})
		}
	}
	return d
}

// Snapshot serializes the server's durable state: every installed query
// (identity, focal motion state, region, filter, monitoring region, expiry)
// and its current result set, plus the query-ID counter. The reverse query
// index and FOT are reconstructed on restore.
//
// A restored server resumes mediating exactly where the old one stopped —
// moving objects keep their LQTs and notice nothing. Pending installations
// (waiting on a FocalInfoRequest) are re-issued on restore.
func (s *Server) Snapshot(w io.Writer) error {
	return writeSnapshot(w, s.snapshotData())
}

// restoreQuery rebuilds one installed query's rows in s's FOT, SQT and RQI
// without any messaging: the moving objects still hold their LQTs.
func (s *Server) restoreQuery(q snapQuery) {
	qs := q.state
	fe, ok := s.fot[qs.Focal]
	if !ok {
		fe = &fotEntry{state: qs.State, currCell: s.g.CellOf(qs.State.Pos)}
		s.fot[qs.Focal] = fe
	}
	if qs.FocalMaxVel > fe.maxVel {
		fe.maxVel = qs.FocalMaxVel
	}
	fe.queries = insertSortedQID(fe.queries, qs.QID)
	result := make(map[model.ObjectID]struct{}, len(q.result))
	for _, oid := range q.result {
		result[oid] = struct{}{}
	}
	s.sqt[qs.QID] = &sqtEntry{
		query:     model.Query{ID: qs.QID, Focal: qs.Focal, Region: qs.Region, Filter: qs.Filter},
		currCell:  fe.currCell,
		monRegion: qs.MonRegion,
		result:    result,
		expiry:    q.expiry,
	}
	s.rqiAdd(qs.QID, qs.MonRegion)
	if q.expiry != 0 {
		s.expiries[qs.QID] = q.expiry
	}
}

// RestoreServer rebuilds a server from a snapshot. The grid and options
// must match the snapshotting server's deployment. Pending installations
// re-issue their FocalInfoRequests through down.
func RestoreServer(g *grid.Grid, opts Options, down Downlink, r io.Reader) (*Server, error) {
	d, err := readSnapshot(r)
	if err != nil {
		return nil, err
	}
	s := NewServer(g, opts, down)
	s.nextQID = d.nextQID
	for _, q := range d.queries {
		s.restoreQuery(q)
	}
	for _, p := range d.pending {
		focal := p.query.Focal
		s.pending[focal] = append(s.pending[focal], pendingInstall{
			qid:    p.qid,
			query:  p.query,
			maxVel: p.maxVel,
		})
		if p.expiry != 0 {
			s.expiries[p.qid] = p.expiry
		}
		if len(s.pending[focal]) == 1 {
			s.unicast(focal, msg.FocalInfoRequest{OID: focal})
		}
	}
	return s, nil
}

// Snapshot serializes the sharded server's durable state in the same MOBS
// format as the serial server — snapshots move freely between the two
// implementations and across shard counts. The whole server is frozen while
// records are collected.
func (ss *ShardedServer) Snapshot(w io.Writer) error {
	ss.lockAll()
	d := snapData{nextQID: model.QueryID(ss.qidCounter.Load()) + 1}
	for _, sh := range ss.shards {
		sd := sh.srv.snapshotData()
		d.queries = append(d.queries, sd.queries...)
	}
	sort.Slice(d.queries, func(i, j int) bool { return d.queries[i].state.QID < d.queries[j].state.QID })
	var pendingFocals []model.ObjectID
	for focal := range ss.pending {
		pendingFocals = append(pendingFocals, focal)
	}
	sort.Slice(pendingFocals, func(i, j int) bool { return pendingFocals[i] < pendingFocals[j] })
	for _, focal := range pendingFocals {
		for _, p := range ss.pending[focal] {
			d.pending = append(d.pending, snapPending{
				qid:    p.qid,
				query:  p.query,
				maxVel: p.maxVel,
				expiry: ss.pendingExp[p.qid],
			})
		}
	}
	ss.unlockAll()
	return writeSnapshot(w, d)
}

// RestoreShardedServer rebuilds a sharded server from a snapshot written by
// either implementation. Each restored query lands on the shard its focal
// object's current cell hashes to; pending installations re-issue their
// FocalInfoRequests through down.
func RestoreShardedServer(g *grid.Grid, opts Options, down Downlink, shards int, r io.Reader) (*ShardedServer, error) {
	d, err := readSnapshot(r)
	if err != nil {
		return nil, err
	}
	ss := NewShardedServer(g, opts, down, shards)
	ss.qidCounter.Store(int64(d.nextQID) - 1)
	for _, q := range d.queries {
		cell := g.CellOf(q.state.State.Pos)
		si := ss.shardOf(cell)
		ss.shards[si].srv.restoreQuery(q)
		ss.focalShard[q.state.Focal] = si
		ss.queryShard[q.state.QID] = si
	}
	for _, p := range d.pending {
		focal := p.query.Focal
		ss.pending[focal] = append(ss.pending[focal], pendingInstall{
			qid:    p.qid,
			query:  p.query,
			maxVel: p.maxVel,
		})
		if p.expiry != 0 {
			ss.pendingExp[p.qid] = p.expiry
		}
		if len(ss.pending[focal]) == 1 {
			ss.unicast(focal, msg.FocalInfoRequest{OID: focal}, 0)
		}
	}
	return ss, nil
}
