package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

// Snapshot format identifiers.
const (
	snapshotMagic   = "MOBS"
	snapshotVersion = uint16(1)
)

// Snapshot serializes the server's durable state: every installed query
// (identity, focal motion state, region, filter, monitoring region, expiry)
// and its current result set, plus the query-ID counter. The reverse query
// index and FOT are reconstructed on restore.
//
// A restored server resumes mediating exactly where the old one stopped —
// moving objects keep their LQTs and notice nothing. Pending installations
// (waiting on a FocalInfoRequest) are re-issued on restore.
func (s *Server) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU16 := func(v uint16) { var b [2]byte; le.PutUint16(b[:], v); bw.Write(b[:]) }
	writeU32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); bw.Write(b[:]) }
	writeU64 := func(v uint64) { var b [8]byte; le.PutUint64(b[:], v); bw.Write(b[:]) }
	writeF := func(v float64) { writeU64(math.Float64bits(v)) }
	writeBytes := func(b []byte) {
		writeU32(uint32(len(b)))
		bw.Write(b)
	}

	writeU16(snapshotVersion)
	writeU32(uint32(s.nextQID))

	qids := s.QueryIDs()
	writeU32(uint32(len(qids)))
	for _, qid := range qids {
		e := s.sqt[qid]
		// The wire QueryState carries everything describing the query.
		writeBytes(wire.Encode(msg.QueryInstall{Queries: []msg.QueryState{s.queryState(qid)}}))
		writeF(float64(e.expiry))
		result := s.Result(qid)
		writeU32(uint32(len(result)))
		for _, oid := range result {
			writeU32(uint32(oid))
		}
	}

	// Pending installations: re-issued on restore.
	var pendingFocals []model.ObjectID
	for focal := range s.pending {
		pendingFocals = append(pendingFocals, focal)
	}
	sort.Slice(pendingFocals, func(i, j int) bool { return pendingFocals[i] < pendingFocals[j] })
	total := 0
	for _, f := range pendingFocals {
		total += len(s.pending[f])
	}
	writeU32(uint32(total))
	for _, focal := range pendingFocals {
		for _, p := range s.pending[focal] {
			writeU32(uint32(p.qid))
			writeU32(uint32(p.query.Focal))
			writeBytes(wire.Encode(msg.QueryInstall{Queries: []msg.QueryState{{
				QID:    p.qid,
				Focal:  p.query.Focal,
				Region: p.query.Region,
				Filter: p.query.Filter,
			}}}))
			writeF(p.maxVel)
			writeF(float64(s.expiries[p.qid]))
		}
	}
	return bw.Flush()
}

// RestoreServer rebuilds a server from a snapshot. The grid and options
// must match the snapshotting server's deployment. Pending installations
// re-issue their FocalInfoRequests through down.
func RestoreServer(g *grid.Grid, opts Options, down Downlink, r io.Reader) (*Server, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("core: reading snapshot magic: %w", err)
	}
	if string(head) != snapshotMagic {
		return nil, errors.New("core: not a server snapshot")
	}
	le := binary.LittleEndian
	readU16 := func() (uint16, error) {
		var b [2]byte
		_, err := io.ReadFull(br, b[:])
		return le.Uint16(b[:]), err
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		_, err := io.ReadFull(br, b[:])
		return le.Uint32(b[:]), err
	}
	readF := func() (float64, error) {
		var b [8]byte
		_, err := io.ReadFull(br, b[:])
		return math.Float64frombits(le.Uint64(b[:])), err
	}
	readBytes := func() ([]byte, error) {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("core: implausible snapshot chunk of %d bytes", n)
		}
		b := make([]byte, n)
		_, err = io.ReadFull(br, b)
		return b, err
	}
	readQueryState := func() (msg.QueryState, error) {
		raw, err := readBytes()
		if err != nil {
			return msg.QueryState{}, err
		}
		m, err := wire.Decode(raw)
		if err != nil {
			return msg.QueryState{}, err
		}
		qi, ok := m.(msg.QueryInstall)
		if !ok || len(qi.Queries) != 1 {
			return msg.QueryState{}, errors.New("core: malformed query record in snapshot")
		}
		return qi.Queries[0], nil
	}

	ver, err := readU16()
	if err != nil {
		return nil, err
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", ver)
	}

	s := NewServer(g, opts, down)
	nextQID, err := readU32()
	if err != nil {
		return nil, err
	}
	s.nextQID = model.QueryID(nextQID)

	nQueries, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nQueries; i++ {
		qs, err := readQueryState()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot query %d: %w", i, err)
		}
		expiry, err := readF()
		if err != nil {
			return nil, err
		}
		nRes, err := readU32()
		if err != nil {
			return nil, err
		}
		result := make(map[model.ObjectID]struct{}, nRes)
		for j := uint32(0); j < nRes; j++ {
			oid, err := readU32()
			if err != nil {
				return nil, err
			}
			result[model.ObjectID(oid)] = struct{}{}
		}

		// Rebuild FOT, SQT and RQI without any messaging: the moving
		// objects still hold their LQTs.
		fe, ok := s.fot[qs.Focal]
		if !ok {
			fe = &fotEntry{state: qs.State, currCell: g.CellOf(qs.State.Pos)}
			s.fot[qs.Focal] = fe
		}
		if qs.FocalMaxVel > fe.maxVel {
			fe.maxVel = qs.FocalMaxVel
		}
		fe.queries = insertSortedQID(fe.queries, qs.QID)
		s.sqt[qs.QID] = &sqtEntry{
			query:     model.Query{ID: qs.QID, Focal: qs.Focal, Region: qs.Region, Filter: qs.Filter},
			currCell:  fe.currCell,
			monRegion: qs.MonRegion,
			result:    result,
			expiry:    model.Time(expiry),
		}
		s.rqiAdd(qs.QID, qs.MonRegion)
		if expiry != 0 {
			s.expiries[qs.QID] = model.Time(expiry)
		}
	}

	nPending, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nPending; i++ {
		qidRaw, err := readU32()
		if err != nil {
			return nil, err
		}
		focalRaw, err := readU32()
		if err != nil {
			return nil, err
		}
		qs, err := readQueryState()
		if err != nil {
			return nil, err
		}
		maxVel, err := readF()
		if err != nil {
			return nil, err
		}
		expiry, err := readF()
		if err != nil {
			return nil, err
		}
		qid := model.QueryID(qidRaw)
		focal := model.ObjectID(focalRaw)
		s.pending[focal] = append(s.pending[focal], pendingInstall{
			qid: qid,
			query: model.Query{
				ID: qid, Focal: focal, Region: qs.Region, Filter: qs.Filter,
			},
			maxVel: maxVel,
		})
		if expiry != 0 {
			s.expiries[qid] = model.Time(expiry)
		}
		if len(s.pending[focal]) == 1 {
			s.down.Unicast(focal, msg.FocalInfoRequest{OID: focal})
		}
	}
	return s, nil
}
