package core

import (
	"math"
	"math/rand"
	"sort"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
)

// harness wires one Server and a set of Clients with queued, deterministic
// message delivery. Broadcasts reach every object (as under one giant base
// station); clients self-filter by monitoring region, which is exactly the
// protocol behavior under test.
type harness struct {
	g       *grid.Grid
	server  ServerAPI
	objs    []*model.MovingObject
	clients []*Client
	byOID   map[model.ObjectID]int

	// queued downlink deliveries (processed in FIFO order).
	downQueue []queuedDown
	upCount   map[msg.Kind]int
	downCount map[msg.Kind]int
	now       model.Time
	optsVal   Options
}

type queuedDown struct {
	target model.ObjectID // -1 for broadcast
	m      msg.Message
}

func newHarness(g *grid.Grid, opts Options) *harness {
	h := &harness{
		g:         g,
		byOID:     make(map[model.ObjectID]int),
		upCount:   make(map[msg.Kind]int),
		downCount: make(map[msg.Kind]int),
	}
	h.server = NewServer(g, opts, harnessDown{h})
	h.optsVal = opts
	return h
}

// newShardedHarness is newHarness with a ShardedServer backend; everything
// else (clients, queued delivery) is identical, which is what makes the
// serial-vs-sharded equivalence tests direct comparisons.
func newShardedHarness(g *grid.Grid, opts Options, shards int) *harness {
	h := &harness{
		g:         g,
		byOID:     make(map[model.ObjectID]int),
		upCount:   make(map[msg.Kind]int),
		downCount: make(map[msg.Kind]int),
	}
	h.server = NewShardedServer(g, opts, harnessDown{h}, shards)
	h.optsVal = opts
	return h
}

func (h *harness) addObject(oid model.ObjectID, pos geo.Point, vel geo.Vector, maxVel float64, key uint64) {
	o := &model.MovingObject{ID: oid, Pos: pos, Vel: vel, MaxVel: maxVel, Props: model.Props{Key: key}}
	c := NewClient(h.g, h.optsVal, harnessUp{h, oid}, oid, o.Props, maxVel, pos)
	h.byOID[oid] = len(h.objs)
	h.objs = append(h.objs, o)
	h.clients = append(h.clients, c)
}

type harnessDown struct{ h *harness }

func (d harnessDown) Broadcast(region grid.CellRange, m msg.Message) {
	d.h.downCount[m.Kind()]++
	d.h.downQueue = append(d.h.downQueue, queuedDown{target: -1, m: m})
}

func (d harnessDown) Unicast(oid model.ObjectID, m msg.Message) {
	d.h.downCount[m.Kind()]++
	d.h.downQueue = append(d.h.downQueue, queuedDown{target: oid, m: m})
}

type harnessUp struct {
	h   *harness
	oid model.ObjectID
}

func (u harnessUp) Send(m msg.Message) {
	u.h.upCount[m.Kind()]++
	u.h.server.HandleUplink(m)
}

// flushDown delivers all queued downlink messages (deliveries may enqueue
// more, e.g. a FocalInfoRequest answer triggering an install broadcast).
func (h *harness) flushDown() {
	for len(h.downQueue) > 0 {
		q := h.downQueue[0]
		h.downQueue = h.downQueue[1:]
		if q.target >= 0 {
			i := h.byOID[q.target]
			h.clients[i].OnDownlink(q.m, h.objs[i].Pos, h.objs[i].Vel, h.now)
			continue
		}
		for i, c := range h.clients {
			c.OnDownlink(q.m, h.objs[i].Pos, h.objs[i].Vel, h.now)
		}
	}
}

// install installs a query and completes all resulting message exchange.
func (h *harness) install(focal model.ObjectID, radius float64, filter model.Filter, maxVel float64) model.QueryID {
	qid := h.server.InstallQuery(focal, model.CircleRegion{R: radius}, filter, maxVel)
	h.flushDown()
	return qid
}

// step advances the simulation one tick of the given duration: move, then
// the three client phases with full message delivery between them.
func (h *harness) step(dt model.Time) {
	h.now += dt
	for _, o := range h.objs {
		o.Move(dt)
	}
	for i, c := range h.clients {
		c.TickCellChange(h.objs[i].Pos, h.objs[i].Vel, h.now)
	}
	h.flushDown()
	for i, c := range h.clients {
		c.TickDeadReckoning(h.objs[i].Pos, h.objs[i].Vel, h.now)
	}
	h.flushDown()
	for i, c := range h.clients {
		c.TickEvaluate(h.objs[i].Pos, h.objs[i].Vel, h.now)
	}
	h.flushDown()
}

// groundTruth computes the exact result of a query by brute force.
func (h *harness) groundTruth(qid model.QueryID) []model.ObjectID {
	q, ok := h.server.Query(qid)
	if !ok {
		return nil
	}
	fi, ok := h.byOID[q.Focal]
	if !ok {
		return nil
	}
	focalPos := h.objs[fi].Pos
	var out []model.ObjectID
	for _, o := range h.objs {
		if !q.Filter.Matches(o.Props) {
			continue
		}
		if q.Region.Contains(focalPos, o.Pos) {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func idsEqual(a, b []model.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomizeVelocities re-aims n random objects, like the workload generator.
func (h *harness) randomizeVelocities(rng *rand.Rand, n int) {
	for k := 0; k < n; k++ {
		o := h.objs[rng.Intn(len(h.objs))]
		ang := rng.Float64() * 2 * math.Pi
		speed := rng.Float64() * o.MaxVel
		o.Vel = geo.Vec(speed*math.Cos(ang), speed*math.Sin(ang))
	}
}

// keepInside reflects object velocities at the UoD border so objects stay
// inside during long runs.
func (h *harness) keepInside() {
	u := h.g.UoD()
	for _, o := range h.objs {
		if o.Pos.X < u.LX+1 && o.Vel.X < 0 {
			o.Vel.X = -o.Vel.X
		}
		if o.Pos.X > u.HX-1 && o.Vel.X > 0 {
			o.Vel.X = -o.Vel.X
		}
		if o.Pos.Y < u.LY+1 && o.Vel.Y < 0 {
			o.Vel.Y = -o.Vel.Y
		}
		if o.Pos.Y > u.HY-1 && o.Vel.Y > 0 {
			o.Vel.Y = -o.Vel.Y
		}
	}
}
