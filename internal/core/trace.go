package core

import (
	"strconv"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/trace"
)

// TracedDownlink is an optional extension of Downlink. A transport that
// implements it receives the trace ID of the uplink (or API call) that
// caused each downlink message, so it can carry the ID onward — over the
// wire as a TracedVersion frame, or in-process to the receiving client.
// Transports that don't implement it simply get untagged sends; tracing
// degrades, behavior doesn't.
type TracedDownlink interface {
	Downlink
	BroadcastTraced(region grid.CellRange, m msg.Message, tid trace.ID)
	UnicastTraced(oid model.ObjectID, m msg.Message, tid trace.ID)
}

// TraceRef extracts the object and query a message is principally about,
// for tagging trace events. Zero means "none"; for multi-query messages the
// first query is used.
func TraceRef(m msg.Message) (oid, qid int64) {
	switch mm := m.(type) {
	case msg.PositionReport:
		return int64(mm.OID), 0
	case msg.VelocityReport:
		return int64(mm.OID), 0
	case msg.CellChangeReport:
		return int64(mm.OID), 0
	case msg.ContainmentReport:
		return int64(mm.OID), int64(mm.QID)
	case msg.GroupContainmentReport:
		if len(mm.QIDs) > 0 {
			return int64(mm.OID), int64(mm.QIDs[0])
		}
		return int64(mm.OID), 0
	case msg.FocalInfoResponse:
		return int64(mm.OID), 0
	case msg.DepartureReport:
		return int64(mm.OID), 0
	case msg.FocalInfoRequest:
		return int64(mm.OID), 0
	case msg.FocalNotify:
		return int64(mm.OID), int64(mm.QID)
	case msg.QueryInstall:
		if len(mm.Queries) > 0 {
			return int64(mm.Queries[0].Focal), int64(mm.Queries[0].QID)
		}
	case msg.QueryRemove:
		if len(mm.QIDs) > 0 {
			return 0, int64(mm.QIDs[0])
		}
	case msg.VelocityChange:
		if len(mm.Queries) > 0 {
			return int64(mm.Focal), int64(mm.Queries[0].QID)
		}
		return int64(mm.Focal), 0
	}
	return 0, 0
}

// SetTracer attaches a flight recorder; every table mutation, broadcast,
// unicast and result change is recorded, tagged with the trace ID of the
// uplink being dispatched. Nil disables tracing (the default). Not safe to
// call concurrently with HandleUplink.
func (s *Server) SetTracer(rec *trace.Recorder) { s.setTracer(rec, "server") }

func (s *Server) setTracer(rec *trace.Recorder, actor string) {
	s.rec = rec
	s.actor = actor
	s.tdown, _ = s.down.(TracedDownlink)
}

// ev records one event tagged with the trace ID of the dispatch in
// progress. Free when no recorder is attached.
func (s *Server) ev(k trace.Kind, oid model.ObjectID, qid model.QueryID, note string) {
	if s.rec == nil {
		return
	}
	s.rec.Event(s.curTrace, k, s.actor, int64(oid), int64(qid), note)
}

// beginRoot starts a fresh trace for an API-level ingress (install, remove,
// expire) unless a trace is already in flight; endRoot closes it. Uplink
// ingress uses HandleUplinkTraced instead.
func (s *Server) beginRoot(oid model.ObjectID, qid model.QueryID, note string) bool {
	if s.rec == nil || s.curTrace != 0 {
		return false
	}
	s.curTrace = s.rec.NextID()
	s.rec.Event(s.curTrace, trace.KindIngress, s.actor, int64(oid), int64(qid), note)
	return true
}

func (s *Server) endRoot(root bool) {
	if root {
		s.curTrace = 0
	}
}

// unicast funnels every server unicast so it can be recorded and, when the
// transport supports it, tagged with the causing trace ID.
func (s *Server) unicast(oid model.ObjectID, m msg.Message) {
	if s.acct != nil {
		// Unicasts are charged to the receiving object; query-scoped kinds
		// (FocalNotify, QueryInstall) also charge the query.
		_, qid := TraceRef(m)
		sz := m.Size()
		s.acct.ObjectDown(int64(oid), sz, 1)
		if qid != 0 {
			s.acct.QueryDown(qid, sz, 1)
		}
	}
	if s.rec != nil {
		_, qid := TraceRef(m)
		s.rec.Event(s.curTrace, trace.KindUnicast, s.actor, int64(oid), qid, m.Kind().String())
		if s.tdown != nil {
			s.tdown.UnicastTraced(oid, m, s.curTrace)
			return
		}
	}
	s.down.Unicast(oid, m)
}

// SetTracer attaches a flight recorder to the router and every shard.
// Shards record as "shard0", "shard1", …; router-level work (migrations,
// cross-shard unicasts, uplink ingress) records as "router". Not safe to
// call concurrently with message dispatch.
func (ss *ShardedServer) SetTracer(rec *trace.Recorder) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.rec = rec
	ss.tdown, _ = ss.down.(TracedDownlink)
	for i, sh := range ss.shards {
		sh.mu.Lock()
		sh.srv.setTracer(rec, "shard"+strconv.Itoa(i))
		sh.mu.Unlock()
	}
}

// mintRoot starts a fresh trace for a router-level API ingress.
func (ss *ShardedServer) mintRoot(oid model.ObjectID, qid model.QueryID, note string) trace.ID {
	if ss.rec == nil {
		return 0
	}
	tid := ss.rec.NextID()
	ss.rec.Event(tid, trace.KindIngress, "router", int64(oid), int64(qid), note)
	return tid
}

// unicast is the router-level unicast funnel (sends outside any shard).
func (ss *ShardedServer) unicast(oid model.ObjectID, m msg.Message, tid trace.ID) {
	if ss.acct != nil {
		_, qid := TraceRef(m)
		sz := m.Size()
		ss.acct.ObjectDown(int64(oid), sz, 1)
		if qid != 0 {
			ss.acct.QueryDown(qid, sz, 1)
		}
	}
	if ss.rec != nil {
		_, qid := TraceRef(m)
		ss.rec.Event(tid, trace.KindUnicast, "router", int64(oid), qid, m.Kind().String())
		if ss.tdown != nil {
			ss.tdown.UnicastTraced(oid, m, tid)
			return
		}
	}
	ss.down.Unicast(oid, m)
}
