package core

import (
	"strings"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/trace"
)

// eventsOf groups events by trace ID.
func eventsByTrace(evs []trace.Event) map[trace.ID][]trace.Event {
	out := make(map[trace.ID][]trace.Event)
	for _, e := range evs {
		out[e.Trace] = append(out[e.Trace], e)
	}
	return out
}

func TestSerialServerTracing(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	rec := trace.NewRecorder(1024)
	h.server.SetTracer(rec)
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	h.addObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, 22)

	qid := h.install(1, 3, matchAll, 100)
	h.step(model.FromSeconds(30))

	evs := rec.Events(trace.Filter{})
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	// Every event carries a trace ID: API ingress mints roots, uplink
	// ingress mints per-message IDs.
	for _, e := range evs {
		if e.Trace == 0 {
			t.Fatalf("untraced event recorded: %v", e)
		}
		if e.Actor != "server" {
			t.Fatalf("serial server actor = %q: %v", e.Actor, e)
		}
	}
	// The InstallQuery root chain: ingress → unicast(FocalInfoRequest).
	roots := rec.Events(trace.Filter{Kind: trace.KindIngress})
	var installTID trace.ID
	for _, e := range roots {
		if e.Note == "InstallQuery" {
			installTID = e.Trace
		}
	}
	if installTID == 0 {
		t.Fatalf("no InstallQuery ingress event in %v", roots)
	}
	chain := rec.Events(trace.Filter{Trace: installTID})
	var sawReq bool
	for _, e := range chain {
		if e.Kind == trace.KindUnicast && e.Note == msg.KindFocalInfoRequest.String() {
			sawReq = true
		}
	}
	if !sawReq {
		t.Fatalf("InstallQuery chain lacks the FocalInfoRequest unicast: %v", chain)
	}
	// The FocalInfoResponse uplink chain covers the whole install
	// completion: FOT upsert, SQT insert, FocalNotify unicast, QueryInstall
	// broadcast — all one trace.
	byTrace := eventsByTrace(evs)
	var completed bool
	for _, chain := range byTrace {
		var upsert, insert, notify, bcast bool
		for _, e := range chain {
			switch {
			case e.Kind == trace.KindTable && e.Note == "FOT upsert":
				upsert = true
			case e.Kind == trace.KindTable && e.Note == "SQT insert":
				insert = true
			case e.Kind == trace.KindUnicast && e.Note == msg.KindFocalNotify.String():
				notify = true
			case e.Kind == trace.KindBroadcast && e.Note == msg.KindQueryInstall.String():
				bcast = true
			}
		}
		if upsert && insert && notify && bcast {
			completed = true
		}
	}
	if !completed {
		t.Fatalf("no single trace covers the install completion; chains: %v", byTrace)
	}
	// Result flips recorded and attributed to the query.
	if res := rec.Events(trace.Filter{Kind: trace.KindResult, QID: int64(qid)}); len(res) == 0 {
		t.Fatal("no result events for the installed query")
	}
	// Causal reconstruction around the query finds its install broadcast.
	causal := rec.Causal(0, int64(qid))
	var causalHasBroadcast bool
	for _, e := range causal {
		if e.Kind == trace.KindBroadcast {
			causalHasBroadcast = true
		}
	}
	if !causalHasBroadcast {
		t.Fatalf("Causal(0,%d) lacks the install broadcast: %v", qid, causal)
	}

	// RemoveQuery mints its own root and records the SQT delete.
	h.server.RemoveQuery(qid)
	h.flushDown()
	if del := rec.Events(trace.Filter{Kind: trace.KindTable, QID: int64(qid)}); len(del) == 0 {
		t.Fatal("no table events for removed query")
	}
	var removed bool
	for _, e := range rec.Events(trace.Filter{Kind: trace.KindIngress}) {
		if e.Note == "RemoveQuery" && e.QID == int64(qid) {
			removed = true
		}
	}
	if !removed {
		t.Fatal("RemoveQuery did not mint a root trace")
	}
}

func TestShardedServerTracingAndMigration(t *testing.T) {
	h := newShardedHarness(smallGrid(), Options{}, 4)
	rec := trace.NewRecorder(4096)
	h.server.SetTracer(rec)
	// A focal object moving fast enough to cross cells (and with 4 shards
	// over a 20×20 grid, inevitably partitions).
	h.addObject(1, geo.Pt(10, 10), geo.Vec(20, 15), 100, 11)
	h.addObject(2, geo.Pt(12, 10), geo.Vec(18, 11), 100, 22)
	qid := h.install(1, 6, matchAll, 100)
	for i := 0; i < 40; i++ {
		h.step(model.FromSeconds(600))
		h.keepInside()
	}
	if err := h.server.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	evs := rec.Events(trace.Filter{})
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	actors := make(map[string]bool)
	for _, e := range evs {
		if e.Trace == 0 {
			t.Fatalf("untraced event: %v", e)
		}
		actors[e.Actor] = true
		if e.Actor != "router" && !strings.HasPrefix(e.Actor, "shard") {
			t.Fatalf("unexpected actor %q: %v", e.Actor, e)
		}
	}
	if !actors["router"] {
		t.Fatal("no router-level events recorded")
	}
	// With 40 steps across a 4-shard partitioning, the focal must have
	// migrated at least once; each migration is recorded and its trace also
	// contains the shard-side relocation broadcast.
	migs := rec.Events(trace.Filter{Kind: trace.KindMigrate})
	if len(migs) == 0 {
		t.Fatal("no migration events despite cell crossings")
	}
	mig := migs[len(migs)-1]
	if mig.Actor != "router" || mig.OID != 1 || !strings.Contains(mig.Note, "-> shard") {
		t.Fatalf("malformed migration event: %v", mig)
	}
	chain := rec.Events(trace.Filter{Trace: mig.Trace})
	var ingress, bcast bool
	for _, e := range chain {
		if e.Kind == trace.KindIngress && e.Note == msg.KindCellChangeReport.String() {
			ingress = true
		}
		if e.Kind == trace.KindBroadcast && e.Note == msg.KindQueryInstall.String() {
			bcast = true
		}
	}
	if !ingress || !bcast {
		t.Fatalf("migration chain lacks ingress (%v) or relocation broadcast (%v): %v", ingress, bcast, chain)
	}
	// Causal timeline of the query spans the migration.
	var causalHasMigration bool
	for _, e := range rec.Causal(1, int64(qid)) {
		if e.Kind == trace.KindMigrate {
			causalHasMigration = true
		}
	}
	if !causalHasMigration {
		t.Fatal("Causal(1,qid) does not include the migration")
	}
}

// TestTracingPreservesBehavior re-runs the same scenario traced and
// untraced; results must be identical (tracing is observational only).
func TestTracingPreservesBehavior(t *testing.T) {
	run := func(rec *trace.Recorder) []model.ObjectID {
		h := newHarness(smallGrid(), Options{})
		if rec != nil {
			h.server.SetTracer(rec)
		}
		h.addObject(1, geo.Pt(50, 50), geo.Vec(6, 2), 100, 11)
		h.addObject(2, geo.Pt(52, 50), geo.Vec(-4, 0), 100, 22)
		h.addObject(3, geo.Pt(60, 60), geo.Vec(-8, -8), 100, 33)
		qid := h.install(1, 5, matchAll, 100)
		for i := 0; i < 10; i++ {
			h.step(model.FromSeconds(600))
		}
		return h.server.Result(qid)
	}
	plain := run(nil)
	traced := run(trace.NewRecorder(64)) // tiny ring: wraps constantly
	if !idsEqual(plain, traced) {
		t.Fatalf("tracing changed results: %v vs %v", plain, traced)
	}
}
