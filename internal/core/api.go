package core

import (
	"io"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// ServerAPI is the server-side surface of the MobiEyes protocol, implemented
// by the serial Server, the grid-partitioned ShardedServer and the
// router-plus-worker-nodes ClusterServer. Engines and transports program
// against this interface so the implementations are interchangeable; the
// sharded and cluster implementations are additionally safe for concurrent
// use by multiple goroutines.
type ServerAPI interface {
	// Query lifecycle (§3.3).
	InstallQuery(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64) model.QueryID
	InstallQueryUntil(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64, expiry model.Time) model.QueryID
	RemoveQuery(qid model.QueryID) bool
	ExpireQueries(now model.Time) []model.QueryID

	// Uplink dispatch (§3.4–3.6). HandleUplinkTraced is HandleUplink with
	// an inbound causal-trace ID (0 = start a fresh trace when tracing is
	// on); HandleUplink(m) is HandleUplinkTraced(m, 0).
	HandleUplink(m msg.Message)
	HandleUplinkTraced(m msg.Message, tid trace.ID)

	// SetTracer attaches a flight recorder for causal tracing (nil = off;
	// the default). See internal/obs/trace and DESIGN.md §11.
	SetTracer(rec *trace.Recorder)

	// SetAccountant attaches a cost accountant (nil = off; the default):
	// uplinks are attributed per shard and per query/object, downlinks per
	// query/object at the broadcast/unicast funnels, and server work is
	// charged as computation units. See internal/obs/cost and DESIGN.md §12.
	SetAccountant(a *cost.Accountant)

	// Result access.
	Result(qid model.QueryID) []model.ObjectID
	ResultContains(qid model.QueryID, oid model.ObjectID) bool
	ResultSize(qid model.QueryID) int
	SetResultListener(fn func(ResultEvent))

	// Introspection.
	NumQueries() int
	QueryIDs() []model.QueryID
	Query(qid model.QueryID) (model.Query, bool)
	MonRegion(qid model.QueryID) (grid.CellRange, bool)
	NearbyQueries(cell grid.CellID) []model.QueryID
	Ops() int64
	Instrument(reg *obs.Registry)

	// Durability and diagnostics.
	Snapshot(w io.Writer) error
	CheckInvariants() error
}

var (
	_ ServerAPI = (*Server)(nil)
	_ ServerAPI = (*ShardedServer)(nil)
	_ ServerAPI = (*ClusterServer)(nil)
)
