package core

import (
	"strconv"
	"time"

	"mobieyes/internal/grid"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/trace"
)

// Metric names of the server layer (scheme mobieyes_<layer>_<name>; see
// DESIGN.md §9). Per-shard series carry shard="N" (shard="router" for work
// the ShardedServer does outside any partition); latency histograms carry
// kind="VelocityReport" etc.
const (
	metricOps            = "mobieyes_server_ops_total"
	metricUplinks        = "mobieyes_server_uplinks_total"
	metricUplinkSeconds  = "mobieyes_server_uplink_seconds"
	metricBroadcasts     = "mobieyes_server_broadcasts_total"
	metricBroadcastCells = "mobieyes_server_broadcast_cells"
	metricMigrations     = "mobieyes_server_migrations_total"
	metricFOTSize        = "mobieyes_server_fot_size"
	metricSQTSize        = "mobieyes_server_sqt_size"
	metricRQIEntries     = "mobieyes_server_rqi_entries"
	metricPending        = "mobieyes_server_pending_installs"
	metricShardDepth     = "mobieyes_server_shard_pending_uplinks"
	metricInflight       = "mobieyes_cluster_inflight_ops"

	helpOps            = "Elementary server-side operations (table updates, RQI touches, sends)."
	helpUplinks        = "Uplink messages dispatched."
	helpUplinkSeconds  = "Uplink message handling latency in seconds."
	helpBroadcasts     = "Downlink broadcasts issued."
	helpBroadcastCells = "Grid cells addressed per downlink broadcast."
	helpMigrations     = "Focal-object migrations between shards."
	helpFOTSize        = "Focal object table rows."
	helpSQTSize        = "Server query table rows."
	helpRQIEntries     = "Total (cell, query) entries in the reverse query index."
	helpPending        = "Query installations awaiting the focal object's motion state."
	helpShardDepth     = "Uplinks currently queued on or executing in the shard (0 at quiescence)."
	helpInflight       = "Uplinks currently inside the cluster router's dispatch funnel (0 at quiescence)."
)

// kindLatency is a per-message-kind set of latency histograms covering the
// uplink kinds. A nil *kindLatency is a no-op.
type kindLatency struct {
	hists [msg.NumKinds]*obs.Histogram
}

// newKindLatency creates one labeled histogram per uplink kind under name.
func newKindLatency(reg *obs.Registry, name, help string) *kindLatency {
	kl := &kindLatency{}
	for k := msg.Kind(0); int(k) < msg.NumKinds; k++ {
		if !k.Uplink() {
			continue
		}
		kl.hists[k] = reg.Histogram(name, help, obs.LatencyBuckets, "kind", k.String())
	}
	return kl
}

// observe records the elapsed time since start against the kind's histogram.
func (kl *kindLatency) observe(k msg.Kind, start time.Time) {
	if kl == nil {
		return
	}
	kl.hists[k].Observe(time.Since(start).Seconds())
}

// serverObs is the optional instrumentation of one serial Server (standalone
// or as a shard). When nil — the default — the server is completely
// uninstrumented beyond its always-on ops and uplink counters, and the
// deterministic behavior is untouched either way: instrumentation only
// counts and times, it never alters protocol decisions or message contents.
type serverObs struct {
	// uplinkLat times HandleUplink by message kind; nil for shard servers
	// (the ShardedServer router times dispatch instead, since shard
	// handlers are invoked directly).
	uplinkLat      *kindLatency
	broadcasts     *obs.Counter
	broadcastCells *obs.Histogram
	// Table-size gauges of a standalone serial Server, published by
	// syncTableGauges from the owning goroutine; nil for shard servers,
	// whose table gauges are scrape-time closures under the shard locks.
	fotSize    *obs.Gauge
	sqtSize    *obs.Gauge
	rqiEntries *obs.Gauge
	pending    *obs.Gauge
}

// Instrument attaches the server's metrics to reg: the ops and uplink
// counters, per-kind uplink handling latency, broadcast fan-out, and
// FOT/SQT/RQI table-size gauges. Safe to call with a nil registry (no-op)
// and idempotent per registry.
//
// The table gauges are atomics the owning goroutine refreshes after every
// handled operation (install, remove, uplink dispatch), never scrape-time
// closures over the tables themselves — so a live /metrics endpoint can
// scrape at any moment without racing the single-goroutine server.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter(metricOps, helpOps, s.ops)
	reg.RegisterCounter(metricUplinks, helpUplinks, s.upl)
	s.obsm = &serverObs{
		uplinkLat:      newKindLatency(reg, metricUplinkSeconds, helpUplinkSeconds),
		broadcasts:     reg.Counter(metricBroadcasts, helpBroadcasts),
		broadcastCells: reg.Histogram(metricBroadcastCells, helpBroadcastCells, obs.SizeBuckets),
		fotSize:        reg.Gauge(metricFOTSize, helpFOTSize),
		sqtSize:        reg.Gauge(metricSQTSize, helpSQTSize),
		rqiEntries:     reg.Gauge(metricRQIEntries, helpRQIEntries),
		pending:        reg.Gauge(metricPending, helpPending),
	}
	s.syncTableGauges()
}

// syncTableGauges publishes the current table sizes into the atomic gauges.
// The owning goroutine calls it after every mutation entry point; all sizes
// are O(1) reads (RQI entries are tracked incrementally). No-op when the
// server is uninstrumented or runs as a shard.
func (s *Server) syncTableGauges() {
	o := s.obsm
	if o == nil || o.fotSize == nil {
		return
	}
	o.fotSize.Set(float64(len(s.fot)))
	o.sqtSize.Set(float64(len(s.sqt)))
	o.rqiEntries.Set(float64(s.rqiCount))
	o.pending.Set(float64(len(s.pending)))
}

// broadcast sends m to region through the downlink, recording broadcast
// count and cell fan-out when instrumented. All server-side broadcasts go
// through here.
func (s *Server) broadcast(region grid.CellRange, m msg.Message) {
	if o := s.obsm; o != nil {
		o.broadcasts.Add(1)
		o.broadcastCells.Observe(float64(region.NumCells()))
	}
	if s.acct != nil {
		// Per-entity downlink attribution at protocol level: one logical
		// send per broadcast (station fan-out is the transport's ledger).
		oid, qid := TraceRef(m)
		sz := m.Size()
		if qid != 0 {
			s.acct.QueryDown(qid, sz, 1)
		}
		if oid != 0 {
			s.acct.ObjectDown(oid, sz, 1)
		}
	}
	if s.rec != nil {
		oid, qid := TraceRef(m)
		s.rec.Event(s.curTrace, trace.KindBroadcast, s.actor, oid, qid, m.Kind().String())
		if s.tdown != nil {
			s.tdown.BroadcastTraced(region, m, s.curTrace)
			return
		}
	}
	s.down.Broadcast(region, m)
}

// Instrument attaches the sharded server's metrics to reg: per-shard ops and
// uplink counters (shard="0"… plus shard="router" for work outside any
// partition), per-shard broadcast metrics and lock-protected table-size
// gauges, the cross-shard migration counter, and per-kind uplink latency
// measured at the router. Safe with a nil registry; idempotent per registry.
func (ss *ShardedServer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter(metricOps, helpOps, ss.ops, "shard", "router")
	reg.RegisterCounter(metricUplinks, helpUplinks, ss.upl, "shard", "router")
	reg.RegisterCounter(metricMigrations, helpMigrations, ss.migrations)
	ss.obsm = &serverObs{uplinkLat: newKindLatency(reg, metricUplinkSeconds, helpUplinkSeconds)}
	reg.GaugeFunc(metricPending, helpPending, func() float64 {
		ss.mu.RLock()
		defer ss.mu.RUnlock()
		return float64(len(ss.pending))
	})
	reg.GaugeFunc(metricShardDepth, helpShardDepth, func() float64 {
		return float64(ss.inflight.Load())
	}, "shard", "router")
	for i, sh := range ss.shards {
		sh := sh
		label := strconv.Itoa(i)
		reg.RegisterCounter(metricOps, helpOps, sh.srv.ops, "shard", label)
		reg.RegisterCounter(metricUplinks, helpUplinks, sh.upl, "shard", label)
		sh.srv.obsm = &serverObs{
			broadcasts:     reg.Counter(metricBroadcasts, helpBroadcasts, "shard", label),
			broadcastCells: reg.Histogram(metricBroadcastCells, helpBroadcastCells, obs.SizeBuckets, "shard", label),
		}
		locked := func(fn func(*Server) int) func() float64 {
			return func() float64 {
				sh.mu.Lock()
				defer sh.mu.Unlock()
				return float64(fn(sh.srv))
			}
		}
		reg.GaugeFunc(metricFOTSize, helpFOTSize, locked(func(s *Server) int { return len(s.fot) }), "shard", label)
		reg.GaugeFunc(metricSQTSize, helpSQTSize, locked(func(s *Server) int { return len(s.sqt) }), "shard", label)
		reg.GaugeFunc(metricRQIEntries, helpRQIEntries, locked(func(s *Server) int { return s.rqiCount }), "shard", label)
		reg.GaugeFunc(metricShardDepth, helpShardDepth, func() float64 {
			return float64(sh.inflight.Load())
		}, "shard", label)
	}
}

// OpsByShard returns each shard's cumulative operation count, indexed by
// shard — the deterministic per-partition load breakdown (the router's own
// count is excluded; see Ops for the total).
func (ss *ShardedServer) OpsByShard() []int64 {
	out := make([]int64, len(ss.shards))
	for i, sh := range ss.shards {
		out[i] = sh.srv.Ops()
	}
	return out
}

// UplinksByShard returns the number of uplink messages dispatched to each
// shard, indexed by shard.
func (ss *ShardedServer) UplinksByShard() []int64 {
	out := make([]int64, len(ss.shards))
	for i, sh := range ss.shards {
		out[i] = sh.upl.Value()
	}
	return out
}

// Migrations returns the cumulative number of cross-shard focal-object
// migrations (cell crossings or motion-state refreshes whose new cell hashed
// into a different partition).
func (ss *ShardedServer) Migrations() int64 { return ss.migrations.Value() }
