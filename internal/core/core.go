// Package core implements the MobiEyes distributed moving-query protocol —
// the primary contribution of Gedik & Liu (EDBT 2004). It contains the two
// state machines the paper describes:
//
//   - Server: the mediator. It maintains the focal object table (FOT), the
//     server-side query table (SQT) and the reverse query index (RQI),
//     handles query installation (§3.3), significant velocity-vector
//     changes (§3.4) and grid-cell crossings with eager or lazy query
//     propagation (§3.5), applies differential result updates (§3.6), and
//     optionally groups queries bound to the same focal object (§4.1).
//
//   - Client: the moving-object side. It maintains the local query table
//     (LQT) and the hasMQ flag, installs and removes queries delivered by
//     server broadcasts, runs dead reckoning when it is a focal object,
//     predicts focal positions to evaluate the queries in its LQT, applies
//     the safe-period optimization (§4.2), and reports containment changes
//     differentially — with query bitmaps when grouping is on.
//
// Both state machines are deterministic and transport-agnostic: the server
// talks through a Downlink and clients through an Uplink, so the same code
// runs under the deterministic simulation engine (internal/sim), the
// goroutine-per-object live runtime (internal/live) and unit tests.
package core

import (
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
)

// PropagationMode selects how non-focal objects learn about the queries of
// a grid cell they just entered (§3.5).
type PropagationMode int

const (
	// EagerPropagation: every object reports each cell crossing and the
	// server immediately ships it the nearby queries of its new cell.
	EagerPropagation PropagationMode = iota
	// LazyPropagation: non-focal objects stay silent on cell crossings and
	// pick up nearby queries from the next velocity-change broadcast, which
	// is expanded to carry full query state. Cheaper, but query results may
	// transiently miss objects (measured in Fig. 2).
	LazyPropagation
)

// String implements fmt.Stringer.
func (m PropagationMode) String() string {
	if m == LazyPropagation {
		return "LQP"
	}
	return "EQP"
}

// Options configure the protocol features shared by server and clients.
// The zero value is the paper's base algorithm: eager propagation, no
// safe-period skipping, no query grouping, dead-reckoning threshold 0
// (every velocity change is significant).
type Options struct {
	Mode PropagationMode
	// DeadReckoningThreshold is the paper's Δ: a focal object relays its
	// velocity vector when its true position deviates from the relayed
	// prediction by more than this many miles.
	DeadReckoningThreshold float64
	// SafePeriod enables the §4.2 optimization on clients: skip evaluating
	// a query until the worst-case earliest time the object could be
	// inside it.
	SafePeriod bool
	// Predictive replaces the safe period's worst-case bound with the
	// exact entry time of the current linear trajectories (an extension
	// beyond the paper): the object skips a query until the moment it can
	// first enter the region's enclosing circle, recomputed whenever
	// either party's velocity changes. Strictly tighter than SafePeriod;
	// when both are set, Predictive wins.
	Predictive bool
	// Grouping enables the §4.1 optimizations: the server merges per-focal
	// broadcasts with matching monitoring regions, and clients evaluate
	// groupable queries with one distance computation per focal object and
	// report grouped results as query bitmaps.
	Grouping bool
}

// Downlink is the server's transport: broadcasts reach every object under
// the base stations covering the region (the receiver decides relevance);
// unicasts reach one object.
type Downlink interface {
	Broadcast(region grid.CellRange, m msg.Message)
	Unicast(oid model.ObjectID, m msg.Message)
}

// Uplink is a client's transport to the server.
type Uplink interface {
	Send(m msg.Message)
}

// UplinkFunc adapts a function to the Uplink interface, for callers that
// want to intercept or log a client's traffic without a separate type.
type UplinkFunc func(msg.Message)

// Send implements Uplink.
func (f UplinkFunc) Send(m msg.Message) { f(m) }
