package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

// focalSliceVersion versions the encoded focal-slice format carried by
// cluster Handoff frames (and used verbatim for in-process node transfers,
// so the byte-mediated path is what the differential oracle exercises).
const focalSliceVersion = uint16(1)

// encodeFocalSlice serializes a detached focal record — the FOT row plus
// every bound query's SQT row and result set — into the self-contained byte
// slice a Handoff frame carries. Query rows reuse the snapshot idiom: each
// is a length-prefixed wire-encoded QueryInstall holding one QueryState, so
// regions, filters and monitoring regions round-trip bit-exactly.
func encodeFocalSlice(rec focalRecord) []byte {
	var b []byte
	le := binary.LittleEndian
	u16 := func(v uint16) { b = le.AppendUint16(b, v) }
	u32 := func(v uint32) { b = le.AppendUint32(b, v) }
	f64 := func(v float64) { b = le.AppendUint64(b, math.Float64bits(v)) }
	fe := rec.fe
	u16(focalSliceVersion)
	u32(uint32(rec.oid))
	f64(fe.state.Pos.X)
	f64(fe.state.Pos.Y)
	f64(fe.state.Vel.X)
	f64(fe.state.Vel.Y)
	f64(float64(fe.state.Tm))
	f64(fe.maxVel)
	u32(uint32(int32(fe.currCell.Col)))
	u32(uint32(int32(fe.currCell.Row)))
	u32(uint32(len(fe.queries)))
	for i, qid := range fe.queries {
		e := rec.entries[i]
		qs := msg.QueryState{
			QID:         qid,
			Focal:       rec.oid,
			State:       fe.state,
			Region:      e.query.Region,
			Filter:      e.query.Filter,
			MonRegion:   e.monRegion,
			FocalMaxVel: fe.maxVel,
		}
		enc := wire.Encode(msg.QueryInstall{Queries: []msg.QueryState{qs}})
		u32(uint32(len(enc)))
		b = append(b, enc...)
		f64(float64(e.expiry))
		res := make([]model.ObjectID, 0, len(e.result))
		for oid := range e.result {
			res = append(res, oid)
		}
		sortOIDs(res)
		u32(uint32(len(res)))
		for _, oid := range res {
			u32(uint32(oid))
		}
	}
	return b
}

func sortOIDs(ids []model.ObjectID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// decodeFocalSlice parses an encoded focal slice back into a detached focal
// record plus the motion state and grid cell it was extracted at. The
// record is ready for injectFocal.
func decodeFocalSlice(b []byte) (focalRecord, model.MotionState, grid.CellID, error) {
	var rec focalRecord
	le := binary.LittleEndian
	off := 0
	fail := func(what string) (focalRecord, model.MotionState, grid.CellID, error) {
		return focalRecord{}, model.MotionState{}, grid.CellID{}, fmt.Errorf("core: focal slice: %s", what)
	}
	need := func(n int) bool { return off+n <= len(b) }
	u16 := func() uint16 { v := le.Uint16(b[off:]); off += 2; return v }
	u32 := func() uint32 { v := le.Uint32(b[off:]); off += 4; return v }
	f64 := func() float64 { v := math.Float64frombits(le.Uint64(b[off:])); off += 8; return v }
	if !need(2 + 4 + 6*8 + 2*4 + 4) {
		return fail("truncated header")
	}
	if v := u16(); v != focalSliceVersion {
		return fail(fmt.Sprintf("unsupported version %d", v))
	}
	rec.oid = model.ObjectID(u32())
	var st model.MotionState
	st.Pos = geo.Pt(f64(), f64())
	st.Vel = geo.Vec(f64(), f64())
	st.Tm = model.Time(f64())
	maxVel := f64()
	cell := grid.CellID{Col: int(int32(u32())), Row: int(int32(u32()))}
	n := int(u32())
	if n > (len(b)-off)/4 {
		return fail("implausible query count")
	}
	fe := &fotEntry{state: st, maxVel: maxVel, currCell: cell}
	rec.fe = fe
	rec.entries = make([]*sqtEntry, 0, n)
	for i := 0; i < n; i++ {
		if !need(4) {
			return fail("truncated query record")
		}
		encLen := int(u32())
		if encLen > len(b)-off {
			return fail("truncated query state")
		}
		m, err := wire.Decode(b[off : off+encLen])
		off += encLen
		if err != nil {
			return focalRecord{}, model.MotionState{}, grid.CellID{}, err
		}
		qi, ok := m.(msg.QueryInstall)
		if !ok || len(qi.Queries) != 1 {
			return fail("malformed query record")
		}
		qs := qi.Queries[0]
		if !need(8 + 4) {
			return fail("truncated result set")
		}
		expiry := model.Time(f64())
		nRes := int(u32())
		if nRes > (len(b)-off)/4 {
			return fail("implausible result count")
		}
		result := make(map[model.ObjectID]struct{}, nRes)
		for j := 0; j < nRes; j++ {
			result[model.ObjectID(u32())] = struct{}{}
		}
		fe.queries = append(fe.queries, qs.QID)
		rec.entries = append(rec.entries, &sqtEntry{
			query:     model.Query{ID: qs.QID, Focal: qs.Focal, Region: qs.Region, Filter: qs.Filter},
			currCell:  cell,
			monRegion: qs.MonRegion,
			result:    result,
			expiry:    expiry,
		})
	}
	if off != len(b) {
		return fail("trailing bytes")
	}
	return rec, st, cell, nil
}

var errNoFocal = errors.New("core: node does not own that focal object")
