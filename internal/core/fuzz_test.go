package core

import (
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

// TestProtocolFuzz drives the full protocol through randomized operation
// interleavings — query installs and removals mid-flight, objects joining
// and departing, velocity churn — under every option combination, checking
// the server's results against brute-force ground truth after every step.
// Under EQP with Δ=0 the results must be exact at all times.
func TestProtocolFuzz(t *testing.T) {
	optionSets := []Options{
		{},
		{SafePeriod: true},
		{Grouping: true},
		{SafePeriod: true, Grouping: true},
	}
	for oi, opts := range optionSets {
		opts := opts
		for seed := int64(1); seed <= 3; seed++ {
			fuzzRun(t, opts, seed+int64(oi)*100)
		}
	}
}

func fuzzRun(t *testing.T, opts Options, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := newHarness(smallGrid(), opts)

	// Population: 40 objects, some initially present.
	const maxObjects = 40
	present := make(map[model.ObjectID]bool)
	nextOID := model.ObjectID(1)
	addObject := func() {
		if int(nextOID) > maxObjects {
			return
		}
		oid := nextOID
		nextOID++
		pos := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
		maxVel := []float64{50, 100, 150, 200, 250}[rng.Intn(5)]
		h.addObject(oid, pos, geo.Vec(0, 0), maxVel, rng.Uint64())
		i := h.byOID[oid]
		h.randomizeVelocities(rng, 1) // churn someone
		h.clients[i].Join(h.objs[i].Pos, h.objs[i].Vel, h.now)
		h.flushDown()
		present[oid] = true
	}
	for i := 0; i < 25; i++ {
		addObject()
	}

	// Live queries, keyed by qid. Departed objects stay in h.objs (the
	// harness cannot remove them) but are exiled far outside the UoD so
	// ground truth ignores them.
	live := map[model.QueryID]bool{}
	installRandom := func() {
		// Pick a present focal object.
		var candidates []model.ObjectID
		for oid, on := range present {
			if on {
				candidates = append(candidates, oid)
			}
		}
		if len(candidates) == 0 {
			return
		}
		focal := candidates[rng.Intn(len(candidates))]
		var region model.Region
		if rng.Intn(3) == 0 {
			region = model.RectRegion{W: 1 + rng.Float64()*6, H: 1 + rng.Float64()*6}
		} else {
			region = model.CircleRegion{R: 0.5 + rng.Float64()*4.5}
		}
		filter := model.Filter{Seed: rng.Uint64(), Permille: 750}
		qid := h.installRegion(focal, region, filter, 250)
		live[qid] = true
	}
	for i := 0; i < 6; i++ {
		installRandom()
	}

	for step := 0; step < 25; step++ {
		switch rng.Intn(10) {
		case 0:
			installRandom()
		case 1: // remove a random live query
			for qid := range live {
				h.server.RemoveQuery(qid)
				h.flushDown()
				delete(live, qid)
				break
			}
		case 2:
			addObject()
		case 3: // depart a random present non... any present object
			for oid, on := range present {
				if !on {
					continue
				}
				i := h.byOID[oid]
				h.clients[i].Depart()
				h.flushDown()
				present[oid] = false
				// Exile so ground truth and future steps ignore it; it
				// stops moving and never crosses cells again.
				h.objs[i].Pos = geo.Pt(-1e6, -1e6)
				h.objs[i].Vel = geo.Vec(0, 0)
				// Queries it was focal of are gone.
				for qid := range live {
					if q, ok := h.server.Query(qid); !ok || q.Focal == oid {
						delete(live, qid)
					}
				}
				break
			}
		}

		h.keepInside()
		h.randomizeVelocities(rng, 6)
		h.step(model.FromSeconds(30))

		if err := h.server.CheckInvariants(); err != nil {
			t.Fatalf("opts %+v seed %d step %d: %v", opts, seed, step, err)
		}
		for qid := range live {
			got, want := h.server.Result(qid), h.fuzzGroundTruth(qid, present)
			if !idsEqual(got, want) {
				t.Fatalf("opts %+v seed %d step %d q%d: result %v, ground truth %v",
					opts, seed, step, qid, got, want)
			}
		}
	}
}

// fuzzGroundTruth is groundTruth restricted to present objects.
func (h *harness) fuzzGroundTruth(qid model.QueryID, present map[model.ObjectID]bool) []model.ObjectID {
	full := h.groundTruth(qid)
	out := full[:0]
	for _, oid := range full {
		if present[oid] {
			out = append(out, oid)
		}
	}
	return out
}
