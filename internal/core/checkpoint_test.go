package core

import (
	"bytes"
	"testing"

	"mobieyes/internal/model"
)

// TestCheckpointDeltaRoundTrip: pulling checkpoints after a busy scenario
// journals every live focal slice byte-identically to the node's own
// non-destructive encoding, a second pull with no traffic is an empty
// delta at the same sequence, and new traffic dirties the delta again.
func TestCheckpointDeltaRoundTrip(t *testing.T) {
	cluster := newClusterHarness(smallGrid(), Options{}, 3)
	runScenario(cluster)
	cs := cluster.server.(*ClusterServer)

	if err := cs.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	total := 0
	for i := range cs.nodes {
		slices, seq := cs.JournalSize(i)
		total += slices
		if slices > 0 && seq == 0 {
			t.Errorf("node %d: %d slices journaled at seq 0", i, slices)
		}
		// Journal bytes must equal the node's current (non-destructive)
		// encoding of each focal — the replay source is exact.
		for oid, journaled := range cs.journal[i].slices {
			ns := cs.local[i]
			if ns == nil {
				t.Fatalf("node %d has no local NodeServer", i)
			}
			if live := ns.srv.encodeFocalState(oid); !bytes.Equal(journaled, live) {
				t.Errorf("node %d focal %d: journaled slice differs from live encoding", i, oid)
			}
		}
	}
	if total == 0 {
		t.Fatal("scenario journaled no focal slices — weak test")
	}

	// Idle second pull: empty delta, sequence unchanged.
	seqs := make([]uint64, len(cs.nodes))
	for i := range cs.nodes {
		_, seqs[i] = cs.JournalSize(i)
	}
	if err := cs.Checkpoint(); err != nil {
		t.Fatalf("idle Checkpoint: %v", err)
	}
	for i := range cs.nodes {
		if _, seq := cs.JournalSize(i); seq != seqs[i] {
			t.Errorf("node %d: idle checkpoint bumped seq %d -> %d", i, seqs[i], seq)
		}
	}

	// Traffic dirties the delta: at least one node's sequence advances.
	cluster.step(model.FromSeconds(30))
	if err := cs.Checkpoint(); err != nil {
		t.Fatalf("post-step Checkpoint: %v", err)
	}
	advanced := false
	for i := range cs.nodes {
		if _, seq := cs.JournalSize(i); seq > seqs[i] {
			advanced = true
		}
	}
	if !advanced {
		t.Error("a step's worth of traffic advanced no checkpoint sequence")
	}
}

// TestCheckpointDeltaDesync: a since that does not match the node's
// sequence is an error, never a silently wrong delta.
func TestCheckpointDeltaDesync(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	runScenario(h)
	n := &NodeServer{srv: h.server.(*Server)}
	d, err := n.CheckpointDelta(0)
	if err != nil {
		t.Fatalf("first delta: %v", err)
	}
	if len(d.Slices) == 0 {
		t.Fatal("first delta empty — weak test")
	}
	if _, err := n.CheckpointDelta(d.Seq + 7); err == nil {
		t.Error("desynced since accepted")
	}
	if _, err := n.CheckpointDelta(d.Seq); err != nil {
		t.Errorf("matching since refused: %v", err)
	}
}

// TestCheckpointReplayFreshNode: a checkpointed slice injected into a
// fresh node (the replay path) restores rows that re-encode
// byte-identically and satisfy the engine invariants — including the
// single-focal node edge case.
func TestCheckpointReplayFreshNode(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	runScenario(h)
	src := &NodeServer{srv: h.server.(*Server)}
	oids := src.FocalIDs()
	if len(oids) < 2 {
		t.Fatal("scenario left fewer than 2 focals — weak test")
	}

	for _, oid := range oids {
		fresh := NewNodeServer(smallGrid(), Options{}, nullDown{})
		slice := src.srv.encodeFocalState(oid)
		got, err := FocalSliceOID(slice)
		if err != nil || got != oid {
			t.Fatalf("FocalSliceOID = %d, %v; want %d", got, err, oid)
		}
		cell, _ := src.FocalCell(oid)
		st := src.srv.fot[oid].state
		if err := fresh.InjectFocal(slice, st, cell, false, true, 0); err != nil {
			t.Fatalf("replay inject of focal %d: %v", oid, err)
		}
		if err := fresh.CheckInvariants(); err != nil {
			t.Errorf("invariants after replaying focal %d: %v", oid, err)
		}
		if again := fresh.srv.encodeFocalState(oid); !bytes.Equal(slice, again) {
			t.Errorf("focal %d: replayed slice re-encodes differently", oid)
		}
	}

	// Empty-node edge: a fresh node's delta is empty at seq 0, and stays
	// empty across pulls.
	empty := NewNodeServer(smallGrid(), Options{}, nullDown{})
	for pull := 0; pull < 2; pull++ {
		d, err := empty.CheckpointDelta(0)
		if err != nil {
			t.Fatalf("empty-node delta: %v", err)
		}
		if d.Seq != 0 || len(d.Slices) != 0 || len(d.Removed) != 0 {
			t.Fatalf("empty-node delta = %+v, want zero", d)
		}
	}
}

// TestFocalSliceOIDRejectsGarbage: the journal key reader refuses
// truncated and version-skewed slices.
func TestFocalSliceOIDRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {1, 0, 9}, {2, 0, 9, 0, 0, 0}} {
		if _, err := FocalSliceOID(b); err == nil {
			t.Errorf("FocalSliceOID(%v) accepted", b)
		}
	}
}

// TestClusterCrashRecovery: after a full checkpoint, an ungraceful crash
// of a focal-bearing node preserves the durable snapshot byte-for-byte
// (the journal replay restores every row), invariants hold, and the
// cluster keeps matching the serial server afterwards. Crashing a dead
// node or the last survivor is refused.
func TestClusterCrashRecovery(t *testing.T) {
	serial := newHarness(smallGrid(), Options{})
	cluster := newClusterHarness(smallGrid(), Options{}, 3)
	runScenario(serial)
	runScenario(cluster)
	cs := cluster.server.(*ClusterServer)

	if err := cs.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if slices, _ := cs.JournalSize(1); slices == 0 {
		t.Fatal("node 1 holds no journaled focals — weak test")
	}
	var before bytes.Buffer
	if err := cs.Snapshot(&before); err != nil {
		t.Fatal(err)
	}
	if err := cs.CrashNode(1); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	var after bytes.Buffer
	if err := cs.Snapshot(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Error("crash recovery changed the durable snapshot")
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Fatalf("invariants after crash: %v", err)
	}
	spans := cs.Spans()
	if spans[1].Live || spans[1].Focals != 0 || spans[1].Queries != 0 {
		t.Errorf("crashed node still reports state: %+v", spans[1])
	}
	if slices, seq := cs.JournalSize(1); slices != 0 || seq != 0 {
		t.Errorf("crashed node's journal not cleared: %d slices seq %d", slices, seq)
	}

	// The cluster must keep tracking the serial server after recovery.
	for step := 0; step < 4; step++ {
		serial.step(model.FromSeconds(30))
		cluster.step(model.FromSeconds(30))
	}
	for _, qid := range serial.server.QueryIDs() {
		if !idsEqual(serial.server.Result(qid), cluster.server.Result(qid)) {
			t.Errorf("query %d result diverged after crash recovery", qid)
		}
	}

	if err := cs.CrashNode(1); err == nil {
		t.Error("crashing a dead node should fail")
	}
	if err := cs.CrashNode(3); err == nil {
		t.Error("crashing an out-of-range node should fail")
	}
	if err := cs.CrashNode(0); err != nil {
		t.Fatalf("CrashNode(0): %v", err)
	}
	if err := cs.CrashNode(2); err == nil {
		t.Error("crashing the last live node should be refused")
	}
}

// TestCrashSuppressedReplayLosesState: with replay suppressed (the teeth
// knob), a crash loses every focal the dead node owned — the routing
// tables are swept clean, yet invariants still hold and the cluster keeps
// serving. This is the state of the world the convergence oracle must
// catch.
func TestCrashSuppressedReplayLosesState(t *testing.T) {
	cluster := newClusterHarness(smallGrid(), Options{}, 3)
	runScenario(cluster)
	cs := cluster.server.(*ClusterServer)
	if err := cs.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	lost := 0
	for _, ni := range cs.focalNode {
		if ni == 1 {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("node 1 owns no focals — weak test")
	}
	beforeFocals := len(cs.focalNode)
	cs.SuppressRecoveryReplay(true)
	defer cs.SuppressRecoveryReplay(false)
	if err := cs.CrashNode(1); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	if got := len(cs.focalNode); got != beforeFocals-lost {
		t.Errorf("focals after suppressed-replay crash = %d, want %d", got, beforeFocals-lost)
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Fatalf("invariants after lossy crash: %v", err)
	}
}

// TestCrashStaleWatermarkKeepsInvariants: with no explicit Checkpoint, the
// journal holds only what the handoff-entry barriers captured — a stale
// watermark. A crash must still recover cleanly: stale shadows of focals
// that migrated away are skipped, whatever is journaled for focals the
// dead node still owned is restored, and invariants hold throughout.
func TestCrashStaleWatermarkKeepsInvariants(t *testing.T) {
	cluster := newClusterHarness(smallGrid(), Options{}, 3)
	runScenario(cluster)
	cs := cluster.server.(*ClusterServer)
	if cs.Migrations() == 0 {
		t.Fatal("scenario produced no handoffs — no barrier checkpoints to go stale")
	}
	if err := cs.CrashNode(1); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stale-watermark crash: %v", err)
	}
	// The cluster keeps serving: a few more steps, invariants still hold.
	for step := 0; step < 3; step++ {
		cluster.step(model.FromSeconds(30))
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Fatalf("invariants after post-crash steps: %v", err)
	}
}
