package core

import (
	"mobieyes/internal/model"
	"mobieyes/internal/obs/trace"
)

// ResultEvent is a differential change to a query's result set: an object
// entered (Entered=true) or left the result. This is the continuous-query
// output of the system — exactly the stream the paper's MQ semantics
// defines, exposed so applications do not need to poll Result.
type ResultEvent struct {
	QID     model.QueryID
	OID     model.ObjectID
	Entered bool
}

// SetResultListener installs a callback invoked synchronously (on the
// server's goroutine/callsite) for every result change, including the
// implicit leaves when a query is removed. A nil listener disables
// notifications. Only one listener is supported; fan-out belongs to the
// caller (see internal/live.WatchQuery).
func (s *Server) SetResultListener(fn func(ResultEvent)) {
	s.onResult = fn
}

// notifyResult emits a result event if a listener is installed, and records
// the flip on the flight recorder when tracing: result changes are the tail
// of every causal chain the oracle cares about.
func (s *Server) notifyResult(qid model.QueryID, oid model.ObjectID, entered bool) {
	if s.rec != nil {
		note := "leave"
		if entered {
			note = "enter"
		}
		s.ev(trace.KindResult, oid, qid, note)
	}
	if s.onResult != nil {
		s.onResult(ResultEvent{QID: qid, OID: oid, Entered: entered})
	}
}
