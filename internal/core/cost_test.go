package core

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/cost"
)

// runCostScenario drives a harness through a deterministic workload with a
// cost accountant attached to the server and every client: installs
// (including the pending FocalInfoRequest flow), motion with cell crossings
// and a removal. Identical across server implementations, so the per-entity
// tallies it produces are directly comparable.
func runCostScenario(h *harness, a *cost.Accountant) {
	h.server.SetAccountant(a)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		oid := model.ObjectID(i + 1)
		pos := geo.Pt(5+float64((i*13)%90), 5+float64((i*29)%90))
		ang := rng.Float64() * 2 * math.Pi
		speed := 50 + rng.Float64()*150
		h.addObject(oid, pos, geo.Vec(speed*math.Cos(ang), speed*math.Sin(ang)), 200, uint64(i+1))
	}
	for _, c := range h.clients {
		c.SetAccountant(a)
	}
	var qids []model.QueryID
	for i := 0; i < 5; i++ {
		qids = append(qids, h.install(model.ObjectID(i+1), 2+float64(i), matchAll, 200))
	}
	for step := 0; step < 12; step++ {
		h.randomizeVelocities(rng, 4)
		h.keepInside()
		h.step(model.FromSeconds(30))
		if step == 6 {
			h.server.RemoveQuery(qids[1])
			h.flushDown()
		}
	}
}

// totalUplinks is the number of uplink messages the harness delivered to the
// server — the external truth the shard ledgers must account for.
func totalUplinks(h *harness) int64 {
	var n int64
	for _, c := range h.upCount {
		n += int64(c)
	}
	return n
}

// TestCostShardSumIdentity pins the shard attribution invariant: every
// dispatched uplink is charged to exactly one shard ledger (or the router
// ledger for stale drops and departures), so the shard sum plus router
// equals the uplinks delivered — no lost or double-counted messages even
// when focal objects migrate between partitions.
func TestCostShardSumIdentity(t *testing.T) {
	h := newShardedHarness(smallGrid(), Options{}, 4)
	a := cost.New()
	a.Configure(smallGrid().NumCells(), 0, 4)
	runCostScenario(h, a)

	got := a.Router().UplinkMsgs()
	nonzero := 0
	for _, s := range a.Shards() {
		if s.UplinkMsgs() > 0 {
			nonzero++
		}
		got += s.UplinkMsgs()
	}
	if want := totalUplinks(h); got != want {
		t.Errorf("shard+router uplink msgs = %d, harness delivered %d", got, want)
	}
	if nonzero < 2 {
		t.Errorf("uplinks charged to %d shards — scenario too weak to test migration attribution", nonzero)
	}
	if h.server.(*ShardedServer).Migrations() == 0 {
		t.Error("scenario produced no cross-shard migrations — weak test")
	}
	snap := a.Global()
	for _, u := range []cost.Unit{cost.UnitTableOp, cost.UnitRQITouch, cost.UnitDeadReckoning, cost.UnitContainment, cost.UnitLQTScan} {
		if snap.ComputeUnits(u) == 0 {
			t.Errorf("no %v units charged", u)
		}
	}
}

// TestCostSerialShardedEntityParity runs the same scripted workload against
// the serial and the 4-shard server and requires identical per-query and
// per-object tallies: attribution must not depend on which implementation
// (or which partition) handled a message.
func TestCostSerialShardedEntityParity(t *testing.T) {
	serial, sharded := newHarness(smallGrid(), Options{}), newShardedHarness(smallGrid(), Options{}, 4)
	sa, ha := cost.New(), cost.New()
	sa.Configure(smallGrid().NumCells(), 0, 0)
	ha.Configure(smallGrid().NumCells(), 0, 4)
	runCostScenario(serial, sa)
	runCostScenario(sharded, ha)

	ss, hs := sa.Snapshot(), ha.Snapshot()
	if !reflect.DeepEqual(ss.Queries, hs.Queries) {
		t.Errorf("per-query tallies diverged:\nserial  %+v\nsharded %+v", ss.Queries, hs.Queries)
	}
	if !reflect.DeepEqual(ss.Objects, hs.Objects) {
		t.Errorf("per-object tallies diverged:\nserial  %+v\nsharded %+v", ss.Objects, hs.Objects)
	}
	if len(ss.Queries) == 0 || len(ss.Objects) == 0 {
		t.Fatalf("scenario recorded no per-entity traffic (queries %d, objects %d)", len(ss.Queries), len(ss.Objects))
	}
}

// TestCostConcurrentShardAttribution hammers a ShardedServer from many
// goroutines — fresh velocity and containment reports interleaved with
// stale ones for unknown entities — while a scraper snapshots the
// accountant, then checks the shard-sum identity. Run under -race this also
// proves attribution involves no unsynchronized state.
func TestCostConcurrentShardAttribution(t *testing.T) {
	g := smallGrid()
	ss := NewShardedServer(g, Options{}, nullDown{}, 4)
	a := cost.New()
	a.Configure(g.NumCells(), 0, 4)
	ss.SetAccountant(a)

	// Install queries on a spread of focal objects so reports resolve.
	for i := 0; i < 8; i++ {
		oid := model.ObjectID(i + 1)
		pos := geo.Pt(float64(5+i*11), float64(5+i*7))
		ss.HandleUplink(msg.FocalInfoResponse{OID: oid, Pos: pos})
		ss.InstallQuery(oid, model.CircleRegion{R: 3}, matchAll, 200)
	}
	base := int64(8) // the FocalInfoResponses above

	const workers, perWorker = 8, 300
	var wg, scraper sync.WaitGroup
	done := make(chan struct{})
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = a.Snapshot()
				_ = a.Shards()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				oid := model.ObjectID(1 + (w+i)%8)
				pos := geo.Pt(float64(5+(w*13+i)%90), float64(5+(w*29+i)%90))
				switch i % 3 {
				case 0:
					ss.HandleUplink(msg.VelocityReport{OID: oid, Pos: pos})
				case 1:
					ss.HandleUplink(msg.ContainmentReport{OID: oid, QID: model.QueryID(1 + i%10), IsTarget: i%2 == 0})
				default: // stale: unknown focal → router ledger
					ss.HandleUplink(msg.VelocityReport{OID: 999, Pos: pos})
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	scraper.Wait()

	got := a.Router().UplinkMsgs()
	for _, s := range a.Shards() {
		got += s.UplinkMsgs()
	}
	if want := base + workers*perWorker; got != want {
		t.Errorf("shard+router uplink msgs = %d, want %d", got, want)
	}
	if err := ss.CheckInvariants(); err != nil {
		t.Errorf("invariants after concurrent run: %v", err)
	}
}
