package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/trace"
)

// Crash recovery (DESIGN.md §15). Workers periodically checkpoint their
// focal rows to the router as compact deltas of versioned focal slices (the
// handoff encoding, produced non-destructively); the router journals the
// last checkpoint per node next to its own pending tables. When a node dies
// without a drain, the router fences its epoch, reassigns its span, and
// replays the journaled slices into the new owners through the same
// two-phase InjectFocal path a handoff uses — results ride the slices, so
// everything at or before the checkpoint watermark is re-emitted exactly
// once and anything newer is re-derived from the next uplinks.

// CheckpointDelta is the incremental checkpoint of one node's focal rows:
// every focal slice that changed since the previous checkpoint sequence,
// plus the oids whose rows vanished. An empty delta (no slices, no
// removals) leaves Seq unchanged — the journal is already current.
type CheckpointDelta struct {
	Seq     uint64
	Removed []model.ObjectID // strictly ascending
	Slices  [][]byte         // changed focal slices, ascending by oid
}

// encodeFocalState serializes oid's focal row non-destructively — the same
// bytes ExtractFocal would produce, with the rows left in place. The caller
// must know oid is present.
func (s *Server) encodeFocalState(oid model.ObjectID) []byte {
	fe := s.fot[oid]
	rec := focalRecord{oid: oid, fe: fe, entries: make([]*sqtEntry, 0, len(fe.queries))}
	for _, qid := range fe.queries {
		rec.entries = append(rec.entries, s.sqt[qid])
	}
	return encodeFocalSlice(rec)
}

// FocalSliceOID reads the object ID out of an encoded focal slice without a
// full decode — the key under which journals and handoff frames file it.
func FocalSliceOID(b []byte) (model.ObjectID, error) {
	if len(b) < 6 || binary.LittleEndian.Uint16(b) != focalSliceVersion {
		return 0, fmt.Errorf("core: focal slice: truncated or unsupported header")
	}
	return model.ObjectID(binary.LittleEndian.Uint32(b[2:])), nil
}

// CheckpointDelta computes the node's checkpoint delta against the base the
// node itself remembers; since must match the node's current checkpoint
// sequence (the router always requests with the sequence it last journaled,
// and the exchange is synchronous, so a mismatch means the two sides have
// diverged — an error, not something to paper over).
func (n *NodeServer) CheckpointDelta(since uint64) (CheckpointDelta, error) {
	if since != n.ckptSeq {
		return CheckpointDelta{}, fmt.Errorf("core: checkpoint desync: node at seq %d, router requested since %d", n.ckptSeq, since)
	}
	if n.ckptBase == nil {
		n.ckptBase = make(map[model.ObjectID][]byte)
	}
	d := CheckpointDelta{Seq: n.ckptSeq}
	oids := make([]model.ObjectID, 0, len(n.srv.fot))
	for oid := range n.srv.fot {
		oids = append(oids, oid)
	}
	sortOIDs(oids)
	dirty := false
	for _, oid := range oids {
		enc := n.srv.encodeFocalState(oid)
		if prev, ok := n.ckptBase[oid]; ok && bytes.Equal(prev, enc) {
			continue
		}
		n.ckptBase[oid] = enc
		d.Slices = append(d.Slices, enc)
		dirty = true
	}
	for oid := range n.ckptBase {
		if _, ok := n.srv.fot[oid]; !ok {
			d.Removed = append(d.Removed, oid)
			dirty = true
		}
	}
	sortOIDs(d.Removed)
	for _, oid := range d.Removed {
		delete(n.ckptBase, oid)
	}
	if dirty {
		n.ckptSeq++
		d.Seq = n.ckptSeq
	}
	return d, nil
}

// nodeJournal is the router's copy of one node's last checkpoint: the
// focal slices current as of sequence seq, keyed by oid.
type nodeJournal struct {
	seq    uint64
	slices map[model.ObjectID][]byte
}

// Checkpoint pulls a checkpoint delta from every live node and folds it
// into the router's journals. The simtest runner calls it after every
// operation (zero-loss watermark for the convergence oracle); a live
// deployment reaches it through TelemetryRound, about once a second.
func (cs *ClusterServer) Checkpoint() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.checkpointLocked()
}

func (cs *ClusterServer) checkpointLocked() error {
	var first error
	for i := range cs.nodes {
		if !cs.live[i] {
			continue
		}
		if err := cs.checkpointNodeLocked(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// checkpointNodeLocked pulls one node's delta into its journal. A failed
// pull leaves the journal at its previous watermark — recovery then loses
// exactly what arrived after it, never half a delta.
func (cs *ClusterServer) checkpointNodeLocked(i int) error {
	j := &cs.journal[i]
	d, err := cs.nodes[i].CheckpointDelta(j.seq)
	if err != nil {
		return fmt.Errorf("core: checkpoint of node %d: %w", i, err)
	}
	for _, oid := range d.Removed {
		delete(j.slices, oid)
	}
	for _, s := range d.Slices {
		oid, err := FocalSliceOID(s)
		if err != nil {
			return fmt.Errorf("core: checkpoint of node %d: %w", i, err)
		}
		j.slices[oid] = s
	}
	j.seq = d.Seq
	return nil
}

// JournalSize returns the number of focal slices journaled for node i and
// the journal's checkpoint sequence — introspection for tests and the
// admin surface.
func (cs *ClusterServer) JournalSize(i int) (slices int, seq uint64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.journal[i].slices), cs.journal[i].seq
}

// CrashNode fail-stops node i *ungracefully*: no drain, no extract — the
// transport is severed (RemoteNode connections close mid-stream), the
// node's epoch is fenced by a span recomputation, and its journaled focal
// slices are replayed into the surviving owners. Everything at or before
// the last checkpoint watermark — rows, monitoring regions, result sets —
// resumes exactly; anything newer is gone until the objects' next uplinks
// re-derive it. Crashing the last live node is refused.
func (cs *ClusterServer) CrashNode(i int) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if i < 0 || i >= len(cs.nodes) {
		return fmt.Errorf("core: no such node %d", i)
	}
	if !cs.live[i] {
		return fmt.Errorf("core: node %d is already dead", i)
	}
	liveCount := 0
	for _, l := range cs.live {
		if l {
			liveCount++
		}
	}
	if liveCount == 1 {
		return fmt.Errorf("core: cannot crash the last live node")
	}
	cs.crashLocked(i, 0)
	return nil
}

// crashLocked is the fence-and-replay core of crash recovery; callers have
// validated that i is live and not the last survivor.
func (cs *ClusterServer) crashLocked(i int, tid trace.ID) {
	if cs.rec != nil {
		cs.rec.Event(tid, trace.KindNote, "router", 0, 0, fmt.Sprintf("node%d crashed; recovering", i))
	}
	// Sever the transport first: a RemoteNode's connection closes with no
	// goodbye, so nothing can reach the dead worker mid-recovery.
	if sv, ok := cs.nodes[i].(interface{ Sever() }); ok {
		sv.Sever()
	}
	// The handle is replaced by a tombstone: an in-process NodeServer still
	// holds its rows (nobody drained it — that is the point), and the
	// cluster invariants require a dead node to report empty tables.
	cs.nodes[i] = &crashedNode{reason: fmt.Errorf("core: node %d crashed", i)}
	if cs.local != nil {
		cs.local[i] = nil
	}
	cs.tel.NoteRecoveryStart(i)
	// Fence: the dead node's span is reassigned to survivors and the epoch
	// bumps, so any frame the dead worker had in flight is stale on arrival.
	cs.live[i] = false
	cs.computeSpans()
	if !cs.suppressReplay {
		cs.replayJournalLocked(i, tid)
	}
	// Sweep the routing tables for anything still pointing at the dead
	// node: rows created after the checkpoint watermark (none when the
	// caller checkpoints every op). Those queries and focals are lost until
	// re-derived — with replay suppressed, this is all of them.
	for oid, ni := range cs.focalNode {
		if ni == i {
			delete(cs.focalNode, oid)
		}
	}
	for qid, ni := range cs.queryNode {
		if ni == i {
			delete(cs.queryNode, qid)
			delete(cs.pendingExp, qid)
		}
	}
	// The fence reassigned *every* span boundary, not just the dead node's:
	// survivors' focals whose cells landed in another node's new span are now
	// misplaced and must migrate, exactly as after a rebalance. (Replay above
	// already injected the dead node's focals at their post-fence owners.)
	type move struct {
		si, di int
		oid    model.ObjectID
	}
	var moves []move
	for si, nd := range cs.nodes {
		if !cs.live[si] {
			continue
		}
		for _, oid := range nd.FocalIDs() {
			cell, ok := nd.FocalCell(oid)
			if !ok {
				continue
			}
			if want := cs.nodeOf(cell); want != si {
				moves = append(moves, move{si: si, di: want, oid: oid})
			}
		}
	}
	for _, mv := range moves {
		if err := cs.adminHandoff(mv.si, mv.di, mv.oid); err != nil {
			panic(fmt.Sprintf("core: recovery migration of focal %d from node %d to node %d: %v", mv.oid, mv.si, mv.di, err))
		}
	}
	cs.telemetryRoundLocked(false)
	cs.tel.NoteRecoveryDone(i)
}

// replayJournalLocked re-injects node i's journaled focal slices into the
// nodes that now own their cells, flipping the routing tables exactly like
// a handoff's phase two. Injection is admin (charge-free: the slices never
// crossed the wireless medium again) and relocate=false (the slices carry
// the monitoring regions current at the watermark), so replay sends
// nothing and the restored tables are byte-identical to the checkpoint.
func (cs *ClusterServer) replayJournalLocked(i int, tid trace.ID) {
	j := &cs.journal[i]
	oids := make([]model.ObjectID, 0, len(j.slices))
	for oid := range j.slices {
		oids = append(oids, oid)
	}
	sortOIDs(oids)
	for _, oid := range oids {
		// A journal entry is authoritative only while the router still maps
		// the focal to the dead node. Slices for focals that handed off to
		// another node (or departed) after the watermark are stale shadows —
		// the next checkpoint would have reported them Removed — and
		// replaying one would overwrite the newer rows their current owner
		// holds.
		if ni, ok := cs.focalNode[oid]; !ok || ni != i {
			continue
		}
		slice := j.slices[oid]
		rec, st, cell, err := decodeFocalSlice(slice)
		if err != nil {
			panic(fmt.Sprintf("core: recovery replay of focal %d from node %d journal: %v", oid, i, err))
		}
		di := cs.nodeOf(cell)
		if err := cs.nodes[di].InjectFocal(slice, st, cell, false, true, tid); err != nil {
			panic(fmt.Sprintf("core: recovery inject of focal %d into node %d: %v", oid, di, err))
		}
		cs.focalNode[oid] = di
		for _, qid := range rec.fe.queries {
			cs.queryNode[qid] = di
		}
		if cs.rec != nil {
			cs.rec.Event(tid, trace.KindMigrate, "router", int64(oid), 0, fmt.Sprintf("node%d -> node%d (recovery)", i, di))
		}
	}
	j.slices = make(map[model.ObjectID][]byte)
	j.seq = 0
}

// ArmCrashOnHandoff makes the next cross-node handoff *out of* node i crash
// i at the most hostile instant: after the source's destructive extract,
// before the destination's inject. The extracted slice in the router's hand
// supersedes the journal entry and is injected exactly once into whichever
// node owns the cell after the fence — the mid-handoff case the crash
// sweep exercises. A test hook; -1 disarms.
func (cs *ClusterServer) ArmCrashOnHandoff(i int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.armedHandoffCrash = i
}

// SuppressRecoveryReplay disables the journal-replay step of crash
// recovery — the deliberate-bug hook the simtest teeth test uses to prove
// the convergence oracle notices lost state.
func (cs *ClusterServer) SuppressRecoveryReplay(on bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.suppressReplay = on
}

// crashedNode is the tombstone handle installed for a crashed node: every
// operation is an inert no-op reporting empty tables, and Err carries the
// crash for the admin `nodes` dump. The real handle (and, in process, its
// undrained rows) is abandoned with the crash.
type crashedNode struct {
	reason error
}

func (c *crashedNode) Err() error { return c.reason }

func (*crashedNode) CompleteInstall(model.QueryID, model.Query, float64, model.Time, trace.ID) {}
func (*crashedNode) RemoveQuery(model.QueryID, trace.ID) (bool, model.ObjectID, bool) {
	return false, 0, false
}
func (*crashedNode) DueExpiries(model.Time) []model.QueryID                           { return nil }
func (*crashedNode) UpsertFocal(model.ObjectID, model.MotionState, trace.ID)          {}
func (*crashedNode) VelocityReport(msg.VelocityReport, trace.ID)                      {}
func (*crashedNode) ContainmentReport(msg.ContainmentReport, trace.ID)                {}
func (*crashedNode) GroupContainmentReport(msg.GroupContainmentReport, trace.ID)      {}
func (*crashedNode) FocalCellChange(model.ObjectID, model.MotionState, grid.CellID, trace.ID) {
}
func (*crashedNode) FreshQueryStates(_, _ grid.CellID) []msg.QueryState { return nil }
func (*crashedNode) ClearResults(model.ObjectID, trace.ID)              {}
func (*crashedNode) DepartSweep(model.ObjectID, trace.ID)               {}
func (*crashedNode) DepartFocal(model.ObjectID, trace.ID) []model.QueryID {
	return nil
}
func (c *crashedNode) ExtractFocal(model.ObjectID, bool, trace.ID) ([]byte, error) {
	return nil, c.reason
}
func (c *crashedNode) InjectFocal([]byte, model.MotionState, grid.CellID, bool, bool, trace.ID) error {
	return c.reason
}
func (c *crashedNode) CheckpointDelta(uint64) (CheckpointDelta, error) {
	return CheckpointDelta{}, c.reason
}
func (*crashedNode) Result(model.QueryID) []model.ObjectID                  { return nil }
func (*crashedNode) ResultContains(model.QueryID, model.ObjectID) bool      { return false }
func (*crashedNode) ResultSize(model.QueryID) int                           { return 0 }
func (*crashedNode) Query(model.QueryID) (model.Query, bool)                { return model.Query{}, false }
func (*crashedNode) MonRegion(model.QueryID) (grid.CellRange, bool)         { return grid.CellRange{}, false }
func (*crashedNode) NumQueries() int                                        { return 0 }
func (*crashedNode) QueryIDs() []model.QueryID                              { return nil }
func (*crashedNode) NearbyQueries(grid.CellID) []model.QueryID              { return nil }
func (*crashedNode) FocalIDs() []model.ObjectID                             { return nil }
func (*crashedNode) FocalCell(model.ObjectID) (grid.CellID, bool)           { return grid.CellID{}, false }
func (*crashedNode) Ops() int64                                             { return 0 }
func (c *crashedNode) SnapshotData() ([]byte, error)                        { return nil, c.reason }
func (*crashedNode) CheckInvariants() error                                 { return nil }
func (*crashedNode) Close() error                                           { return nil }

var _ NodeHandle = (*crashedNode)(nil)
