package core

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
)

// runScenario drives a harness through a deterministic workload touching
// every server path: installs (including the pending FocalInfoRequest flow
// and a duration-bound query), motion with cell crossings, a removal, an
// expiry sweep and a departure. It returns the installed query IDs.
func runScenario(h *harness) []model.QueryID {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 24; i++ {
		oid := model.ObjectID(i + 1)
		pos := geo.Pt(5+float64((i*13)%90), 5+float64((i*29)%90))
		ang := rng.Float64() * 2 * math.Pi
		speed := 50 + rng.Float64()*150
		h.addObject(oid, pos, geo.Vec(speed*math.Cos(ang), speed*math.Sin(ang)), 200, uint64(i+1))
	}
	var qids []model.QueryID
	for i := 0; i < 6; i++ {
		qids = append(qids, h.install(model.ObjectID(i+1), 2+float64(i), matchAll, 200))
	}
	qids = append(qids, h.server.InstallQueryUntil(
		model.ObjectID(7), model.CircleRegion{R: 4}, matchAll, 200, model.FromSeconds(300)))
	h.flushDown()
	for step := 0; step < 15; step++ {
		h.randomizeVelocities(rng, 4)
		h.keepInside()
		h.step(model.FromSeconds(30))
		switch step {
		case 5:
			h.server.RemoveQuery(qids[2])
			h.flushDown()
		case 9:
			h.server.HandleUplink(msg.DepartureReport{OID: 20})
			h.flushDown()
		case 11:
			h.server.ExpireQueries(h.now) // 360 s: the Until(300 s) query goes
			h.flushDown()
		}
	}
	return qids
}

// TestShardedServerMatchesSerial is the unit-level equivalence check: the
// same scripted workload against a serial Server and a 4-shard
// ShardedServer must leave identical query state — same installed IDs, same
// descriptors, monitoring regions and result sets.
func TestShardedServerMatchesSerial(t *testing.T) {
	serial := newHarness(smallGrid(), Options{})
	sharded := newShardedHarness(smallGrid(), Options{}, 4)
	qidsA := runScenario(serial)
	qidsB := runScenario(sharded)

	if len(qidsA) != len(qidsB) {
		t.Fatalf("installed %d vs %d queries", len(qidsA), len(qidsB))
	}
	for i := range qidsA {
		if qidsA[i] != qidsB[i] {
			t.Fatalf("query ID sequence diverged at %d: %d vs %d", i, qidsA[i], qidsB[i])
		}
	}
	if a, b := serial.server.NumQueries(), sharded.server.NumQueries(); a != b {
		t.Fatalf("NumQueries: serial %d, sharded %d", a, b)
	}
	idsA, idsB := serial.server.QueryIDs(), sharded.server.QueryIDs()
	if !qidsEqual(idsA, idsB) {
		t.Fatalf("QueryIDs: serial %v, sharded %v", idsA, idsB)
	}
	for _, qid := range qidsA {
		qa, oka := serial.server.Query(qid)
		qb, okb := sharded.server.Query(qid)
		if oka != okb || qa != qb {
			t.Errorf("query %d: serial (%+v,%v) vs sharded (%+v,%v)", qid, qa, oka, qb, okb)
		}
		if !oka {
			continue
		}
		ra, rb := serial.server.Result(qid), sharded.server.Result(qid)
		if !idsEqual(ra, rb) {
			t.Errorf("query %d result: serial %v, sharded %v", qid, ra, rb)
		}
		if !idsEqual(rb, sharded.groundTruth(qid)) {
			t.Errorf("query %d: sharded result %v != ground truth %v", qid, rb, sharded.groundTruth(qid))
		}
		ma, _ := serial.server.MonRegion(qid)
		mb, _ := sharded.server.MonRegion(qid)
		if ma != mb {
			t.Errorf("query %d monitoring region: serial %+v, sharded %+v", qid, ma, mb)
		}
	}
	if err := serial.server.CheckInvariants(); err != nil {
		t.Errorf("serial invariants: %v", err)
	}
	if err := sharded.server.CheckInvariants(); err != nil {
		t.Errorf("sharded invariants: %v", err)
	}
	// The scenario must actually have exercised cross-partition placement.
	ss := sharded.server.(*ShardedServer)
	used := map[int]bool{}
	for _, si := range ss.focalShard {
		used[si] = true
	}
	if len(used) < 2 {
		t.Errorf("scenario left every focal on one shard (%d used) — weak test", len(used))
	}
}

func qidsEqual(a, b []model.QueryID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSortedAccessors: QueryIDs and NearbyQueries return ascending IDs on
// both implementations regardless of map iteration order.
func TestSortedAccessors(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    *harness
	}{
		{"serial", newHarness(smallGrid(), Options{})},
		{"sharded", newShardedHarness(smallGrid(), Options{}, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := tc.h
			for i := 0; i < 16; i++ {
				oid := model.ObjectID(i + 1)
				h.addObject(oid, geo.Pt(5+float64((i*37)%90), 5+float64((i*53)%90)), geo.Vec(0, 0), 100, uint64(i+1))
			}
			// Several queries per focal so NearbyQueries lists have length >1.
			for i := 0; i < 16; i++ {
				h.install(model.ObjectID(i+1), 3, matchAll, 100)
				h.install(model.ObjectID(i+1), 6, matchAll, 100)
			}
			ids := h.server.QueryIDs()
			if len(ids) != 32 {
				t.Fatalf("QueryIDs length = %d, want 32", len(ids))
			}
			if !sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] }) {
				t.Errorf("QueryIDs not ascending: %v", ids)
			}
			sawMulti := false
			for i := 0; i < 16; i++ {
				cell := h.g.CellOf(h.objs[i].Pos)
				nearby := h.server.NearbyQueries(cell)
				if len(nearby) > 1 {
					sawMulti = true
				}
				if !sort.SliceIsSorted(nearby, func(a, b int) bool { return nearby[a] < nearby[b] }) {
					t.Errorf("NearbyQueries(%v) not ascending: %v", cell, nearby)
				}
			}
			if !sawMulti {
				t.Error("no cell had more than one nearby query — weak test")
			}
		})
	}
}

// TestShardedServerConcurrentStress fires uplink reports at a ShardedServer
// from 8 goroutines (each owning a disjoint set of objects, like
// per-connection transports) while queries are installed, removed and
// expired concurrently, then validates every per-shard and cross-shard
// invariant. Run it under -race.
func TestShardedServerConcurrentStress(t *testing.T) {
	const (
		workers       = 8
		objsPerWorker = 16
		iters         = 400
	)
	g := grid.New(geo.NewRect(0, 0, 500, 500), 5)
	ss := NewShardedServer(g, Options{}, nullDown{}, 8)

	startPos := func(w, k int) geo.Point {
		return geo.Pt(10+float64((w*61+k*17)%480), 10+float64((w*97+k*41)%480))
	}
	// Seed: the first 4 objects of every worker are focal with one query
	// each; these queries survive the whole run and absorb the containment
	// traffic.
	var seedQids []model.QueryID
	for w := 0; w < workers; w++ {
		for k := 0; k < 4; k++ {
			oid := model.ObjectID(w*objsPerWorker + k + 1)
			ss.OnFocalInfoResponse(msg.FocalInfoResponse{OID: oid, Pos: startPos(w, k)})
			seedQids = append(seedQids, ss.InstallQuery(oid, model.CircleRegion{R: 8}, matchAll, 150))
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			pos := make([]geo.Point, objsPerWorker)
			for k := range pos {
				pos[k] = startPos(w, k)
			}
			var own []model.QueryID
			for it := 0; it < iters; it++ {
				k := rng.Intn(objsPerWorker)
				oid := model.ObjectID(w*objsPerWorker + k + 1)
				prev := g.CellOf(pos[k])
				p := geo.Pt(
					math.Min(495, math.Max(5, pos[k].X+rng.Float64()*16-8)),
					math.Min(495, math.Max(5, pos[k].Y+rng.Float64()*16-8)))
				pos[k] = p
				next := g.CellOf(p)
				switch {
				case next != prev:
					ss.HandleUplink(msg.CellChangeReport{
						OID: oid, PrevCell: prev, NewCell: next,
						Pos: p, Vel: geo.Vec(30, 10), Tm: model.Time(it),
					})
				case rng.Intn(3) == 0:
					ss.HandleUplink(msg.VelocityReport{OID: oid, Pos: p, Vel: geo.Vec(10, -20), Tm: model.Time(it)})
				default:
					ss.HandleUplink(msg.ContainmentReport{
						OID: oid, QID: seedQids[rng.Intn(len(seedQids))],
						IsTarget: rng.Intn(2) == 0,
					})
				}
				// Churn: short-lived queries on this worker's own objects
				// exercise install (incl. pending), removal and expiry while
				// other workers migrate focals across shards.
				switch {
				case rng.Intn(40) == 0:
					own = append(own, ss.InstallQueryUntil(
						oid, model.CircleRegion{R: 5}, matchAll, 150, model.Time(it+20)))
				case len(own) > 0 && rng.Intn(40) == 0:
					ss.RemoveQuery(own[0])
					own = own[1:]
				case rng.Intn(60) == 0:
					ss.ExpireQueries(model.Time(it))
				}
				if it%50 == 0 {
					_ = ss.Result(seedQids[rng.Intn(len(seedQids))])
					_ = ss.NumQueries()
					_ = ss.NearbyQueries(next)
				}
			}
			// Departure tears down the last object's state while other
			// workers are still reporting.
			ss.HandleUplink(msg.DepartureReport{OID: model.ObjectID(w*objsPerWorker + objsPerWorker)})
		}(w)
	}
	wg.Wait()

	if err := ss.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent stress: %v", err)
	}
	if n := ss.NumQueries(); n < len(seedQids) {
		t.Errorf("NumQueries = %d, want at least the %d seed queries", n, len(seedQids))
	}
	for _, qid := range seedQids {
		if _, ok := ss.Query(qid); !ok {
			t.Errorf("seed query %d vanished", qid)
		}
	}
}

// TestShardedSnapshotCrossRestore: a sharded snapshot restores into a serial
// server, a sharded server with a different shard count, and byte-identical
// re-snapshots — the MOBS format is implementation-independent.
func TestShardedSnapshotCrossRestore(t *testing.T) {
	sharded := newShardedHarness(smallGrid(), Options{}, 4)
	runScenario(sharded)
	// A pending installation (focal 99 has no client; the FocalInfoRequest
	// stays unanswered) must survive the roundtrip too.
	sharded.server.InstallQueryUntil(99, model.CircleRegion{R: 2}, matchAll, 50, model.FromSeconds(9999))

	var buf bytes.Buffer
	if err := sharded.server.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	serial, err := RestoreServer(smallGrid(), Options{}, nullDown{}, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resharded, err := RestoreShardedServer(smallGrid(), Options{}, nullDown{}, 3, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := resharded.CheckInvariants(); err != nil {
		t.Fatalf("restored sharded server invariants: %v", err)
	}

	want := sharded.server.QueryIDs()
	for _, restored := range []ServerAPI{serial, resharded} {
		if got := restored.QueryIDs(); !qidsEqual(got, want) {
			t.Fatalf("restored QueryIDs %v, want %v", got, want)
		}
		for _, qid := range want {
			q0, _ := sharded.server.Query(qid)
			q1, ok := restored.Query(qid)
			if !ok || q0 != q1 {
				t.Errorf("query %d descriptor: %+v vs %+v (ok=%v)", qid, q0, q1, ok)
			}
			if !idsEqual(sharded.server.Result(qid), restored.Result(qid)) {
				t.Errorf("query %d result differs after restore", qid)
			}
			m0, _ := sharded.server.MonRegion(qid)
			m1, _ := restored.MonRegion(qid)
			if m0 != m1 {
				t.Errorf("query %d monitoring region: %+v vs %+v", qid, m0, m1)
			}
		}
	}

	// Re-snapshots are byte-identical: same durable state, same encoding,
	// whatever the implementation or shard count.
	var again bytes.Buffer
	if err := resharded.Snapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again.Bytes()) {
		t.Error("sharded → sharded(3) re-snapshot not byte-identical")
	}
	again.Reset()
	if err := serial.Snapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again.Bytes()) {
		t.Error("sharded → serial re-snapshot not byte-identical")
	}
}
