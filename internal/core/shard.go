package core

import (
	"sync"
	"sync/atomic"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
)

// shard is one partition of a ShardedServer: a full serial Server restricted
// to the focal objects whose current cell hashes into this partition, plus
// the mutex serializing access to it. The shard's Server sees the whole
// grid (monitoring regions freely cross partition boundaries); only row
// ownership is partitioned. upl counts the uplink messages the router
// dispatched to this partition (the shard's own Server.upl is unused here —
// the router calls the handlers directly, bypassing HandleUplink).
type shard struct {
	mu  sync.Mutex
	srv *Server
	upl *obs.Counter
	// idx is this shard's partition index, used by the router to attribute
	// uplink traffic to the shard's cost ledger.
	idx int
	// inflight is the number of uplinks currently charged to this shard —
	// queued on its lock or executing — maintained by the instrumented
	// router's dispatch (see trackInflight). At quiescence it is zero.
	inflight atomic.Int64
}

// focalRecord is a focal object's complete server-side state — its FOT row
// and the SQT rows of every query bound to it — detached from one shard for
// migration into another.
type focalRecord struct {
	oid model.ObjectID
	fe  *fotEntry
	// entries are the SQT rows of fe.queries, in the same order.
	entries []*sqtEntry
}

// extractFocal detaches oid's FOT row and every bound query from s's tables
// (SQT, RQI, expiries) without emitting any messages. The caller must know
// oid is present and re-inject the record elsewhere with injectFocal.
func (s *Server) extractFocal(oid model.ObjectID) focalRecord {
	fe := s.fot[oid]
	rec := focalRecord{oid: oid, fe: fe, entries: make([]*sqtEntry, 0, len(fe.queries))}
	for _, qid := range fe.queries {
		e := s.sqt[qid]
		s.rqiRemove(qid, e.monRegion)
		delete(s.sqt, qid)
		delete(s.expiries, qid)
		rec.entries = append(rec.entries, e)
	}
	delete(s.fot, oid)
	return rec
}

// injectFocal installs a migrated focal record with the given motion state
// and current cell. With relocate set (a §3.5 cell crossing) each query's
// monitoring region is recomputed and — matching the serial relocateQuery —
// its refreshed state is broadcast to the union of the old and new regions.
// Without relocate (a focal-info refresh) monitoring regions are preserved
// and nothing is sent, matching the serial OnFocalInfoResponse.
func (s *Server) injectFocal(rec focalRecord, st model.MotionState, cell grid.CellID, relocate bool) {
	fe := rec.fe
	fe.state = st
	fe.currCell = cell
	s.fot[rec.oid] = fe
	for i, qid := range fe.queries {
		e := rec.entries[i]
		oldRegion := e.monRegion
		e.currCell = cell
		s.sqt[qid] = e
		if e.expiry != 0 {
			s.expiries[qid] = e.expiry
		}
		if relocate {
			e.monRegion = s.g.MonitoringRegion(cell, e.query.Region.EnclosingRadius())
		}
		s.rqiAdd(qid, e.monRegion)
		if relocate {
			s.broadcast(oldRegion.Union(e.monRegion), msg.QueryInstall{
				Queries: []msg.QueryState{s.queryState(qid)},
			})
			s.ops.Add(2)
			// Same table update the serial relocateQuery charges; the RQI
			// touches above already match (a cell change always moves the
			// monitoring region), so migrated and serial relocations cost
			// the same.
			s.acct.Compute(cost.UnitTableOp, 1)
		}
	}
}
