package core

import (
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
)

func smallGrid() *grid.Grid { return grid.New(geo.NewRect(0, 0, 100, 100), 5) }

// matchAll accepts every object.
var matchAll = model.Filter{Seed: 1, Permille: 1000}

func TestInstallQueryKnownLifecycle(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11) // focal
	h.addObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, 22) // inside region
	h.addObject(3, geo.Pt(90, 90), geo.Vec(0, 0), 100, 33) // far away

	qid := h.install(1, 3, matchAll, 100)
	if h.server.NumQueries() != 1 {
		t.Fatalf("NumQueries = %d", h.server.NumQueries())
	}
	// FocalInfoRequest flow ran: the server asked object 1 for its state.
	if h.downCount[msg.KindFocalInfoRequest] != 1 {
		t.Errorf("FocalInfoRequest count = %d", h.downCount[msg.KindFocalInfoRequest])
	}
	if h.upCount[msg.KindFocalInfoResponse] != 1 {
		t.Errorf("FocalInfoResponse count = %d", h.upCount[msg.KindFocalInfoResponse])
	}
	// The focal object knows it is focal.
	if !h.clients[0].HasMQ() {
		t.Error("focal object's hasMQ not set")
	}
	// Objects in the monitoring region installed the query.
	if h.clients[1].LQTSize() != 1 {
		t.Errorf("object 2 LQT size = %d, want 1", h.clients[1].LQTSize())
	}
	// Object 3's cell is far outside the monitoring region.
	if h.clients[2].LQTSize() != 0 {
		t.Errorf("object 3 LQT size = %d, want 0", h.clients[2].LQTSize())
	}

	// After one evaluation step the result matches ground truth.
	h.step(model.FromSeconds(30))
	if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
		t.Errorf("Result = %v, want %v", got, want)
	}
	// Both the focal itself and object 2 are inside.
	if !h.server.ResultContains(qid, 1) || !h.server.ResultContains(qid, 2) {
		t.Errorf("result should contain objects 1 and 2: %v", h.server.Result(qid))
	}
	if h.server.ResultContains(qid, 3) {
		t.Error("object 3 must not be in the result")
	}
}

func TestInstallSecondQuerySameFocalSkipsInfoRequest(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	h.install(1, 3, matchAll, 100)
	h.install(1, 5, matchAll, 100)
	// §3.3 step 2: the FOT already has the focal — one info request total.
	if h.downCount[msg.KindFocalInfoRequest] != 1 {
		t.Errorf("FocalInfoRequest count = %d, want 1", h.downCount[msg.KindFocalInfoRequest])
	}
	if h.server.NumQueries() != 2 {
		t.Errorf("NumQueries = %d", h.server.NumQueries())
	}
}

func TestInstallRespectsFilter(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	h.addObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, 22)
	// A filter that rejects everything: nobody installs, result stays empty.
	qid := h.install(1, 3, model.Filter{Seed: 5, Permille: 0}, 100)
	if h.clients[1].LQTSize() != 0 {
		t.Error("object 2 installed a query whose filter rejects it")
	}
	h.step(model.FromSeconds(30))
	if n := h.server.ResultSize(qid); n != 0 {
		t.Errorf("result size = %d, want 0", n)
	}
}

func TestMonitoringRegionAndRQI(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(52.5, 52.5), geo.Vec(0, 0), 100, 11) // cell (10,10)
	qid := h.install(1, 3, matchAll, 100)
	mr, ok := h.server.MonRegion(qid)
	if !ok {
		t.Fatal("MonRegion missing")
	}
	want := h.g.MonitoringRegion(grid.CellID{Col: 10, Row: 10}, 3)
	if mr != want {
		t.Errorf("MonRegion = %v, want %v", mr, want)
	}
	// RQI lists the query for cells in the region, not others.
	if qs := h.server.NearbyQueries(grid.CellID{Col: 10, Row: 10}); len(qs) != 1 || qs[0] != qid {
		t.Errorf("NearbyQueries(center) = %v", qs)
	}
	if qs := h.server.NearbyQueries(grid.CellID{Col: 0, Row: 0}); len(qs) != 0 {
		t.Errorf("NearbyQueries(far) = %v", qs)
	}
}

func TestRemoveQuery(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	h.addObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, 22)
	qid := h.install(1, 3, matchAll, 100)
	h.step(model.FromSeconds(30))
	if !h.server.ResultContains(qid, 2) {
		t.Fatal("precondition: object 2 in result")
	}
	if !h.server.RemoveQuery(qid) {
		t.Fatal("RemoveQuery returned false")
	}
	h.flushDown()
	if h.server.NumQueries() != 0 {
		t.Error("query still installed")
	}
	if h.clients[1].LQTSize() != 0 {
		t.Error("object 2 still holds the removed query")
	}
	if h.clients[0].HasMQ() {
		t.Error("focal flag not cleared after last query removed")
	}
	if h.server.RemoveQuery(qid) {
		t.Error("second RemoveQuery returned true")
	}
	// RQI is clean.
	if qs := h.server.NearbyQueries(grid.CellID{Col: 10, Row: 10}); len(qs) != 0 {
		t.Errorf("RQI still lists removed query: %v", qs)
	}
}

func TestVelocityChangeRelay(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 200, 11)   // focal, still
	h.addObject(2, geo.Pt(55.5, 50), geo.Vec(0, 0), 200, 22) // 5.5 mi away, outside r=3
	qid := h.install(1, 3, matchAll, 200)

	h.step(model.FromSeconds(30))
	if h.server.ResultContains(qid, 2) {
		t.Fatal("object 2 should start outside")
	}

	// Focal starts moving east at 200 mph: dead reckoning must relay, and
	// object 2 must flip to target once the region reaches it.
	h.objs[0].Vel = geo.Vec(200, 0)
	for i := 0; i < 4 && !h.server.ResultContains(qid, 2); i++ {
		h.step(model.FromSeconds(30)) // 200 mph = 1.67 mi per step
	}
	if !h.server.ResultContains(qid, 2) {
		t.Fatal("object 2 never became a target while focal approached")
	}
	if h.upCount[msg.KindVelocityReport] == 0 {
		t.Error("no velocity report was relayed")
	}
	if h.downCount[msg.KindVelocityChange] == 0 {
		t.Error("no velocity change broadcast")
	}
	if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
		t.Errorf("Result = %v, want %v", got, want)
	}
}

func TestNoRelayForConstantVelocity(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(20, 50), geo.Vec(60, 0), 100, 11)
	h.addObject(2, geo.Pt(22, 50), geo.Vec(60, 0), 100, 22)
	h.install(1, 3, matchAll, 100)
	base := h.upCount[msg.KindVelocityReport]
	for i := 0; i < 10; i++ {
		h.step(model.FromSeconds(30))
	}
	// Constant velocity ⇒ zero deviation ⇒ no velocity reports (cell-change
	// reports piggyback the state instead).
	if h.upCount[msg.KindVelocityReport] != base {
		t.Errorf("velocity reports sent for constant motion: %d", h.upCount[msg.KindVelocityReport]-base)
	}
}

func TestFocalCellChangeRelocatesQuery(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	// Focal near the right edge of cell (10,10), moving east.
	h.addObject(1, geo.Pt(54.9, 52.5), geo.Vec(120, 0), 200, 11)
	h.addObject(2, geo.Pt(56, 52.5), geo.Vec(0, 0), 200, 22)
	qid := h.install(1, 2, matchAll, 200)
	before, _ := h.server.MonRegion(qid)

	h.step(model.FromSeconds(60)) // 120 mph for 60 s = 2 miles east → cell (11,10)
	after, ok := h.server.MonRegion(qid)
	if !ok {
		t.Fatal("query vanished")
	}
	if before == after {
		t.Fatal("monitoring region did not move with the focal object")
	}
	if h.upCount[msg.KindCellChangeReport] == 0 {
		t.Error("no cell change report")
	}
	// RQI reflects the new region only.
	cellOld := grid.CellID{Col: before.Min.Col, Row: before.Min.Row}
	if after.Contains(cellOld) == false {
		if qs := h.server.NearbyQueries(cellOld); len(qs) != 0 {
			t.Errorf("RQI still lists query at old region corner: %v", qs)
		}
	}
	if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
		t.Errorf("Result = %v, want %v", got, want)
	}
}

func TestNonFocalCellChangeGetsQueriesEQP(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(52.5, 52.5), geo.Vec(0, 0), 200, 11) // focal, cell (10,10)
	// Object 2 starts far away, moving toward the query region.
	h.addObject(2, geo.Pt(77.5, 52.5), geo.Vec(-300, 0), 300, 22)
	qid := h.install(1, 3, matchAll, 300)
	if h.clients[1].LQTSize() != 0 {
		t.Fatal("object 2 should not have the query yet")
	}
	// Walk west 2.5 miles per step; on entering the monitoring region the
	// server must ship the query one-to-one.
	sawInstall := false
	for i := 0; i < 12; i++ {
		h.step(model.FromSeconds(30))
		if h.clients[1].LQTSize() == 1 {
			sawInstall = true
		}
		if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
			t.Fatalf("step %d: Result = %v, want %v", i, got, want)
		}
	}
	if !sawInstall {
		t.Fatal("object 2 never received the query while crossing the monitoring region")
	}
	if !h.server.ResultContains(qid, 2) && h.groundTruth(qid) != nil {
		// Object 2 ends at x = 47.5 < 52.5−3; it passed through.
		t.Log("object passed through; final containment correctly false")
	}
}

func TestLeaveMonitoringRegionEmitsLeaveReport(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(52.5, 52.5), geo.Vec(0, 0), 300, 11)
	h.addObject(2, geo.Pt(52.5, 53.5), geo.Vec(300, 0), 300, 22) // inside, fleeing east fast
	qid := h.install(1, 3, matchAll, 300)
	h.step(model.FromSeconds(30))
	if !h.server.ResultContains(qid, 2) {
		t.Fatal("precondition: object 2 inside")
	}
	// 300 mph = 2.5 mi/step; after several steps it leaves the region and
	// later the monitoring region entirely. The result must track it.
	for i := 0; i < 10; i++ {
		h.step(model.FromSeconds(30))
		if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
			t.Fatalf("step %d: Result = %v, want %v", i, got, want)
		}
	}
	if h.server.ResultContains(qid, 2) {
		t.Error("object 2 still in result after leaving")
	}
	if h.clients[1].LQTSize() != 0 {
		t.Error("object 2 still holds the query after leaving the monitoring region")
	}
}

// TestEQPMatchesGroundTruth is the central correctness property: with eager
// propagation and Δ = 0, the distributed protocol computes exactly the
// brute-force result at every step (motion is piecewise linear, so the
// dead-reckoning predictions are exact).
func TestEQPMatchesGroundTruth(t *testing.T) {
	testProtocolMatchesGroundTruth(t, Options{})
}

// TestEQPWithSafePeriodMatchesGroundTruth: safe periods may skip work but
// never change results.
func TestEQPWithSafePeriodMatchesGroundTruth(t *testing.T) {
	testProtocolMatchesGroundTruth(t, Options{SafePeriod: true})
}

// TestEQPWithGroupingMatchesGroundTruth: grouped evaluation and bitmap
// reports are a pure optimization.
func TestEQPWithGroupingMatchesGroundTruth(t *testing.T) {
	testProtocolMatchesGroundTruth(t, Options{Grouping: true})
}

// TestEQPAllOptimizationsMatchGroundTruth: everything at once.
func TestEQPAllOptimizationsMatchGroundTruth(t *testing.T) {
	testProtocolMatchesGroundTruth(t, Options{SafePeriod: true, Grouping: true})
}

func testProtocolMatchesGroundTruth(t *testing.T, opts Options) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	h := newHarness(smallGrid(), opts)
	const numObjects = 60
	for i := 0; i < numObjects; i++ {
		pos := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
		maxVel := []float64{50, 100, 150, 200, 250}[rng.Intn(5)]
		h.addObject(model.ObjectID(i+1), pos, geo.Vec(0, 0), maxVel, rng.Uint64())
	}
	h.randomizeVelocities(rng, numObjects)

	// 12 queries over 8 focal objects: some focals carry several queries
	// (exercising grouping), filters of varying selectivity.
	var qids []model.QueryID
	for i := 0; i < 12; i++ {
		focal := model.ObjectID(1 + i%8)
		radius := []float64{1, 2, 3, 4, 5}[rng.Intn(5)]
		filter := model.Filter{Seed: rng.Uint64(), Permille: 750}
		qids = append(qids, h.install(focal, radius, filter, 250))
	}

	for step := 0; step < 40; step++ {
		h.keepInside()
		h.randomizeVelocities(rng, 10)
		h.step(model.FromSeconds(30))
		for _, qid := range qids {
			got, want := h.server.Result(qid), h.groundTruth(qid)
			if !idsEqual(got, want) {
				t.Fatalf("opts=%+v step %d q%d: result %v, ground truth %v",
					opts, step, qid, got, want)
			}
		}
	}
}

// TestLQPSilencesNonFocalUplinks: under lazy propagation, non-focal objects
// never send cell change reports.
func TestLQPSilencesNonFocalUplinks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := newHarness(smallGrid(), Options{Mode: LazyPropagation})
	for i := 0; i < 30; i++ {
		pos := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
		h.addObject(model.ObjectID(i+1), pos, geo.Vec(0, 0), 250, rng.Uint64())
	}
	h.randomizeVelocities(rng, 30)
	h.install(1, 3, matchAll, 250)

	for step := 0; step < 20; step++ {
		h.keepInside()
		h.randomizeVelocities(rng, 5)
		h.step(model.FromSeconds(30))
	}
	// Only object 1 is focal; every cell change report must be from it.
	// (Count: focal crossing cells at up to 250 mph ⇒ at most one per step.)
	if n := h.upCount[msg.KindCellChangeReport]; n > 20 {
		t.Errorf("cell change reports under LQP = %d, want ≤ steps (focal only)", n)
	}
}

// TestLQPSelfInstallViaVelocityBroadcast: an object that silently entered a
// monitoring region picks the query up from the next expanded velocity
// change broadcast.
func TestLQPSelfInstall(t *testing.T) {
	h := newHarness(smallGrid(), Options{Mode: LazyPropagation})
	h.addObject(1, geo.Pt(52.5, 52.5), geo.Vec(0, 0), 300, 11) // focal
	h.addObject(2, geo.Pt(77.5, 52.5), geo.Vec(-300, 0), 300, 22)
	qid := h.install(1, 3, matchAll, 300)

	// Object 2 crosses into the monitoring region silently.
	for i := 0; i < 8 && h.clients[1].LQTSize() == 0; i++ {
		h.step(model.FromSeconds(30))
	}
	if h.clients[1].LQTSize() != 0 {
		t.Fatal("object 2 learned the query without any velocity broadcast — LQP should have kept it ignorant")
	}
	// Now the focal changes velocity: the expanded broadcast lets object 2
	// self-install.
	h.objs[0].Vel = geo.Vec(0, 10)
	h.step(model.FromSeconds(30))
	if h.clients[1].LQTSize() != 1 {
		t.Fatal("object 2 did not self-install from the expanded velocity broadcast")
	}
	// And the result becomes correct from here on.
	h.step(model.FromSeconds(30))
	if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
		t.Errorf("Result = %v, want %v", got, want)
	}
}

// TestLQPBoundedError: lazy propagation can transiently miss objects but
// the error must vanish once focal objects relay.
func TestLQPErrorHealsOnRelay(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := newHarness(smallGrid(), Options{Mode: LazyPropagation})
	for i := 0; i < 40; i++ {
		pos := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
		h.addObject(model.ObjectID(i+1), pos, geo.Vec(0, 0), 250, rng.Uint64())
	}
	h.randomizeVelocities(rng, 40)
	qid := h.install(1, 5, matchAll, 250)

	for step := 0; step < 15; step++ {
		h.keepInside()
		h.randomizeVelocities(rng, 8)
		h.step(model.FromSeconds(30))
	}
	// Force a focal relay: all stale objects self-install.
	h.objs[0].Vel = geo.Vec(h.objs[0].Vel.X+10, h.objs[0].Vel.Y)
	h.step(model.FromSeconds(30))
	h.step(model.FromSeconds(30))
	got, want := h.server.Result(qid), h.groundTruth(qid)
	// The result may only be missing objects, never contain spurious ones —
	// and after a relay plus an evaluation it must be exact.
	if !idsEqual(got, want) {
		t.Errorf("after relay: Result = %v, want %v", got, want)
	}
}

func TestSafePeriodSkipsEvaluations(t *testing.T) {
	// A distant, slow object must skip most evaluations.
	g := smallGrid()
	mk := func(opts Options) (int64, int64) {
		h := newHarness(g, opts)
		h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 10, 11)
		// Slow object inside the monitoring region (cells 9–11 span
		// x ∈ [45,60] for r=1) but 8 miles from the focal.
		h.addObject(2, geo.Pt(58, 50), geo.Vec(1, 0), 10, 22)
		h.install(1, 1, matchAll, 10)
		for i := 0; i < 30; i++ {
			h.step(model.FromSeconds(30))
		}
		return h.clients[1].Evals(), h.clients[1].SkippedEvals()
	}
	evalsOff, skippedOff := mk(Options{})
	evalsOn, skippedOn := mk(Options{SafePeriod: true})
	if skippedOff != 0 {
		t.Errorf("skips without safe period = %d", skippedOff)
	}
	if skippedOn == 0 {
		t.Error("safe period never skipped")
	}
	if evalsOn >= evalsOff {
		t.Errorf("evals with safe period (%d) not fewer than without (%d)", evalsOn, evalsOff)
	}
}

func TestGroupingReducesEvaluations(t *testing.T) {
	run := func(opts Options) int64 {
		h := newHarness(smallGrid(), opts)
		h.addObject(1, geo.Pt(50, 50), geo.Vec(30, 0), 100, 11)
		h.addObject(2, geo.Pt(51, 50), geo.Vec(30, 0), 100, 22)
		// Five queries on the same focal object with identical radius ⇒
		// matching monitoring regions.
		for i := 0; i < 5; i++ {
			h.install(1, 3, matchAll, 100)
		}
		for i := 0; i < 10; i++ {
			h.step(model.FromSeconds(30))
		}
		return h.clients[1].Evals()
	}
	plain := run(Options{})
	grouped := run(Options{Grouping: true})
	if grouped >= plain {
		t.Errorf("grouped evals = %d, plain = %d — grouping should share the distance computation", grouped, plain)
	}
}

func TestGroupingUsesBitmapReports(t *testing.T) {
	h := newHarness(smallGrid(), Options{Grouping: true})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 200, 11)
	h.addObject(2, geo.Pt(58, 50), geo.Vec(-120, 0), 200, 22) // approaching
	q1 := h.install(1, 3, matchAll, 200)
	q2 := h.install(1, 2, matchAll, 200)
	q3 := h.install(1, 3, matchAll, 200)
	_ = q3

	for i := 0; i < 10; i++ {
		h.step(model.FromSeconds(30))
		for _, qid := range []model.QueryID{q1, q2, q3} {
			if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
				t.Fatalf("step %d q%d: %v vs %v", i, qid, got, want)
			}
		}
	}
	if h.upCount[msg.KindGroupContainmentReport] == 0 {
		t.Error("no bitmap reports were sent despite matching monitoring regions")
	}
}

func TestGroupingMergesVelocityBroadcasts(t *testing.T) {
	run := func(opts Options) int {
		h := newHarness(smallGrid(), opts)
		h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 200, 11)
		for i := 0; i < 4; i++ {
			h.install(1, 3, matchAll, 200) // same radius → same mon region
		}
		// Trigger velocity changes.
		for i := 0; i < 5; i++ {
			h.objs[0].Vel = geo.Vec(float64(10*(i+1)), 0)
			h.step(model.FromSeconds(30))
		}
		return h.downCount[msg.KindVelocityChange]
	}
	plain := run(Options{})
	grouped := run(Options{Grouping: true})
	if grouped*4 != plain {
		t.Errorf("velocity broadcasts: grouped = %d, plain = %d, want 4× reduction", grouped, plain)
	}
}

func TestServerOpsMonotonic(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(100, 0), 200, 11)
	before := h.server.Ops()
	h.install(1, 3, matchAll, 200)
	mid := h.server.Ops()
	if mid <= before {
		t.Error("ops did not grow on install")
	}
	h.step(model.FromSeconds(60))
	if h.server.Ops() <= mid {
		t.Error("ops did not grow on a step with cell change")
	}
}

func TestHandleUplinkPanicsOnForeignMessage(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for PositionReport")
		}
	}()
	h.server.HandleUplink(msg.PositionReport{OID: 1})
}

func TestQueryAccessors(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	qid := h.install(1, 3, matchAll, 100)
	q, ok := h.server.Query(qid)
	if !ok || q.Focal != 1 || q.Region.EnclosingRadius() != 3 {
		t.Errorf("Query = %+v, ok=%v", q, ok)
	}
	if _, ok := h.server.Query(999); ok {
		t.Error("unknown query found")
	}
	ids := h.server.QueryIDs()
	if len(ids) != 1 || ids[0] != qid {
		t.Errorf("QueryIDs = %v", ids)
	}
	if h.server.Result(999) != nil {
		t.Error("Result of unknown query not nil")
	}
	if h.server.ResultSize(999) != 0 {
		t.Error("ResultSize of unknown query not 0")
	}
}

func TestStaleVelocityReportIgnored(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	// No queries installed: a velocity report from a non-focal object is
	// dropped without effect.
	h.server.HandleUplink(msg.VelocityReport{OID: 1, Pos: geo.Pt(1, 1)})
	if h.server.NumQueries() != 0 {
		t.Error("spurious state change")
	}
}

func TestResultListenerEvents(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	var events []ResultEvent
	h.server.SetResultListener(func(ev ResultEvent) { events = append(events, ev) })

	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 300, 11)
	h.addObject(2, geo.Pt(55.5, 50), geo.Vec(0, 0), 300, 22) // outside r=3
	qid := h.install(1, 3, matchAll, 300)
	h.step(model.FromSeconds(30))

	// The focal enters its own result immediately.
	if len(events) == 0 || !events[0].Entered {
		t.Fatalf("expected an enter event, got %v", events)
	}
	countFor := func(oid model.ObjectID, entered bool) int {
		n := 0
		for _, ev := range events {
			if ev.OID == oid && ev.Entered == entered && ev.QID == qid {
				n++
			}
		}
		return n
	}
	if countFor(1, true) != 1 {
		t.Errorf("focal enter events = %d", countFor(1, true))
	}

	// Drive object 2 through the region: exactly one enter, one leave.
	h.objs[1].Vel = geo.Vec(-200, 0)
	for i := 0; i < 10; i++ {
		h.step(model.FromSeconds(30))
	}
	if countFor(2, true) != 1 || countFor(2, false) != 1 {
		t.Errorf("object 2 events: %d enters, %d leaves (want 1, 1)",
			countFor(2, true), countFor(2, false))
	}

	// Removal emits a leave for every remaining member, exactly once.
	before := countFor(1, false)
	h.server.RemoveQuery(qid)
	if countFor(1, false) != before+1 {
		t.Errorf("removal leave events for focal = %d, want %d", countFor(1, false), before+1)
	}
}

func TestResultListenerNoDuplicateEnters(t *testing.T) {
	h := newHarness(smallGrid(), Options{Grouping: true})
	var enters int
	h.server.SetResultListener(func(ev ResultEvent) {
		if ev.Entered {
			enters++
		}
	})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	h.addObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, 22)
	h.install(1, 3, matchAll, 100)
	h.install(1, 3, matchAll, 100) // grouped pair
	for i := 0; i < 5; i++ {
		h.step(model.FromSeconds(30))
	}
	// 2 objects × 2 queries = 4 enter events, no duplicates from repeated
	// bitmap reports.
	if enters != 4 {
		t.Errorf("enter events = %d, want 4", enters)
	}
}

// installRegion installs a query with an arbitrary region shape.
func (h *harness) installRegion(focal model.ObjectID, region model.Region, filter model.Filter, maxVel float64) model.QueryID {
	qid := h.server.InstallQuery(focal, region, filter, maxVel)
	h.flushDown()
	return qid
}

// TestRectRegionQueriesMatchGroundTruth: the protocol is shape-agnostic —
// rectangular query regions (§2.3 allows any closed shape) stay exact under
// EQP with all optimizations on.
func TestRectRegionQueriesMatchGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	h := newHarness(smallGrid(), Options{SafePeriod: true, Grouping: true})
	for i := 0; i < 50; i++ {
		pos := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
		h.addObject(model.ObjectID(i+1), pos, geo.Vec(0, 0), 200, rng.Uint64())
	}
	h.randomizeVelocities(rng, 50)

	var qids []model.QueryID
	regions := []model.Region{
		model.RectRegion{W: 6, H: 2},
		model.RectRegion{W: 2, H: 8},
		model.CircleRegion{R: 3},
		model.RectRegion{W: 4, H: 4},
	}
	for i, r := range regions {
		qids = append(qids, h.installRegion(model.ObjectID(i+1), r, matchAll, 200))
	}

	for step := 0; step < 30; step++ {
		h.keepInside()
		h.randomizeVelocities(rng, 8)
		h.step(model.FromSeconds(30))
		for _, qid := range qids {
			got, want := h.server.Result(qid), h.groundTruth(qid)
			if !idsEqual(got, want) {
				t.Fatalf("step %d q%d: result %v, ground truth %v", step, qid, got, want)
			}
		}
	}
}

func TestJoinHandsOverStandingQueries(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	qid := h.install(1, 3, matchAll, 100)
	h.step(model.FromSeconds(30))

	// A new object appears inside the monitoring region; Join must fetch
	// the standing query even though no cell was crossed.
	h.addObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, 22)
	i := h.byOID[2]
	h.clients[i].Join(h.objs[i].Pos, h.objs[i].Vel, h.now)
	h.flushDown()
	if h.clients[i].LQTSize() != 1 {
		t.Fatalf("joiner LQT size = %d, want 1", h.clients[i].LQTSize())
	}
	h.step(model.FromSeconds(30))
	if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
		t.Fatalf("Result = %v, want %v", got, want)
	}
}

func TestDepartureCleansServerState(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	h.addObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, 22)
	q1 := h.install(1, 3, matchAll, 100)
	q2 := h.install(2, 5, matchAll, 100)
	h.step(model.FromSeconds(30))
	if !h.server.ResultContains(q1, 2) || !h.server.ResultContains(q2, 1) {
		t.Fatal("precondition: both objects in both results")
	}

	// Object 2 departs: out of q1's result, and q2 (its own query) is gone.
	i := h.byOID[2]
	h.clients[i].Depart()
	h.flushDown()
	if h.server.ResultContains(q1, 2) {
		t.Error("departed object still in q1's result")
	}
	if h.server.NumQueries() != 1 {
		t.Errorf("NumQueries = %d, want 1 (departed focal's query removed)", h.server.NumQueries())
	}
	if h.clients[i].LQTSize() != 0 || h.clients[i].HasMQ() {
		t.Error("departed client retains local state")
	}
	// Remaining query keeps tracking correctly (ignore the departed object
	// in ground truth by moving it far away).
	h.objs[i].Pos = geo.Pt(-1000, -1000)
	h.step(model.FromSeconds(30))
	if got, want := h.server.Result(q1), h.groundTruth(q1); !idsEqual(got, want) {
		t.Fatalf("Result = %v, want %v", got, want)
	}
}

func TestClientAccessors(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	h.addObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, 22)
	qid := h.install(1, 3, matchAll, 100)
	h.step(model.FromSeconds(30))

	c := h.clients[1]
	if c.OID() != 2 {
		t.Errorf("OID = %d", c.OID())
	}
	if got := c.CurrCell(); got != h.g.CellOf(h.objs[1].Pos) {
		t.Errorf("CurrCell = %v", got)
	}
	if !c.IsTarget(qid) {
		t.Error("object 2 should believe it is a target")
	}
	if c.IsTarget(999) {
		t.Error("unknown query reported as target")
	}
	qs := c.InstalledQueries()
	if len(qs) != 1 || qs[0] != qid {
		t.Errorf("InstalledQueries = %v", qs)
	}
}

func TestPropagationModeString(t *testing.T) {
	if EagerPropagation.String() != "EQP" || LazyPropagation.String() != "LQP" {
		t.Errorf("mode names: %v, %v", EagerPropagation, LazyPropagation)
	}
}

func TestUplinkFunc(t *testing.T) {
	var got msg.Message
	up := UplinkFunc(func(m msg.Message) { got = m })
	up.Send(msg.PositionReport{OID: 7})
	if got == nil || got.(msg.PositionReport).OID != 7 {
		t.Fatalf("UplinkFunc did not forward: %v", got)
	}
}

func TestClientPanicsOnForeignDownlink(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for uplink message on downlink path")
		}
	}()
	h.clients[0].OnDownlink(msg.PositionReport{}, geo.Pt(0, 0), geo.Vec(0, 0), 0)
}

// TestPolygonRegionQueriesMatchGroundTruth: the full protocol stays exact
// with polygon-shaped query regions.
func TestPolygonRegionQueriesMatchGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	h := newHarness(smallGrid(), Options{Grouping: true})
	for i := 0; i < 50; i++ {
		pos := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
		h.addObject(model.ObjectID(i+1), pos, geo.Vec(0, 0), 200, rng.Uint64())
	}
	h.randomizeVelocities(rng, 50)

	// A triangle and an L-shaped polygon bound to two focal objects.
	tri := model.NewPolygonRegion([]geo.Point{geo.Pt(-3, -2), geo.Pt(3, -2), geo.Pt(0, 4)})
	ell := model.NewPolygonRegion([]geo.Point{
		geo.Pt(-2, -2), geo.Pt(2, -2), geo.Pt(2, 0), geo.Pt(0, 0),
		geo.Pt(0, 2), geo.Pt(-2, 2),
	})
	q1 := h.installRegion(1, tri, matchAll, 200)
	q2 := h.installRegion(2, ell, matchAll, 200)

	for step := 0; step < 30; step++ {
		h.keepInside()
		h.randomizeVelocities(rng, 8)
		h.step(model.FromSeconds(30))
		for _, qid := range []model.QueryID{q1, q2} {
			got, want := h.server.Result(qid), h.groundTruth(qid)
			if !idsEqual(got, want) {
				t.Fatalf("step %d q%d: result %v, ground truth %v", step, qid, got, want)
			}
		}
	}
}

func TestQueryExpiry(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	h.addObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, 22)

	// "During the next 20 minutes": expires at t = 1/3 h.
	qid := h.server.InstallQueryUntil(1, model.CircleRegion{R: 3}, matchAll, 100, model.Time(1.0/3))
	h.flushDown()
	forever := h.install(1, 5, matchAll, 100)

	h.step(model.FromSeconds(30))
	if !h.server.ResultContains(qid, 2) {
		t.Fatal("precondition: object 2 in result")
	}

	// Advance 25 simulated minutes in 30 s steps, expiring as the engine
	// does each step.
	for i := 0; i < 50; i++ {
		h.step(model.FromSeconds(30))
		h.server.ExpireQueries(h.now)
		h.flushDown()
	}
	if _, ok := h.server.Query(qid); ok {
		t.Error("duration-bound query survived its expiry")
	}
	if h.server.ResultSize(qid) != 0 {
		t.Error("expired query still has results")
	}
	if h.clients[1].LQTSize() != 1 {
		t.Errorf("client LQT = %d, want only the unexpired query", h.clients[1].LQTSize())
	}
	if _, ok := h.server.Query(forever); !ok {
		t.Error("unexpired query was removed")
	}
	// The focal still has one query: hasMQ stays set.
	if !h.clients[0].HasMQ() {
		t.Error("hasMQ cleared while a query remains")
	}
}

func TestQueryExpiryPendingInstall(t *testing.T) {
	// Expiry registered while installation is still pending must stick.
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	qid := h.server.InstallQueryUntil(1, model.CircleRegion{R: 3}, matchAll, 100, model.FromSeconds(45))
	h.flushDown() // completes the pending install via FocalInfoResponse
	if _, ok := h.server.Query(qid); !ok {
		t.Fatal("install did not complete")
	}
	h.step(model.FromSeconds(30))
	h.server.ExpireQueries(h.now)
	if _, ok := h.server.Query(qid); !ok {
		t.Fatal("expired before its deadline")
	}
	h.step(model.FromSeconds(30))
	expired := h.server.ExpireQueries(h.now)
	if len(expired) != 1 || expired[0] != qid {
		t.Fatalf("ExpireQueries = %v, want [%d]", expired, qid)
	}
}

// TestPredictiveMatchesGroundTruth: the exact-entry-time scheduler is a
// pure optimization — EQP results stay exact.
func TestPredictiveMatchesGroundTruth(t *testing.T) {
	testProtocolMatchesGroundTruth(t, Options{Predictive: true})
	testProtocolMatchesGroundTruth(t, Options{Predictive: true, Grouping: true})
}

// TestPredictiveSkipsMoreThanSafePeriod: the exact bound dominates the
// worst-case one.
func TestPredictiveSkipsMoreThanSafePeriod(t *testing.T) {
	run := func(opts Options) (evals, skipped int64) {
		rng := rand.New(rand.NewSource(7))
		h := newHarness(smallGrid(), opts)
		for i := 0; i < 40; i++ {
			pos := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
			h.addObject(model.ObjectID(i+1), pos, geo.Vec(0, 0), 200, rng.Uint64())
		}
		h.randomizeVelocities(rng, 40)
		for i := 0; i < 6; i++ {
			h.install(model.ObjectID(i+1), 2, matchAll, 250)
		}
		for step := 0; step < 25; step++ {
			h.keepInside()
			h.step(model.FromSeconds(30))
		}
		for _, c := range h.clients {
			evals += c.Evals()
			skipped += c.SkippedEvals()
		}
		return evals, skipped
	}
	evalsSP, _ := run(Options{SafePeriod: true})
	evalsPred, skippedPred := run(Options{Predictive: true})
	if skippedPred == 0 {
		t.Fatal("predictive never skipped")
	}
	if evalsPred >= evalsSP {
		t.Errorf("predictive evals (%d) not below safe-period evals (%d)", evalsPred, evalsSP)
	}
}

func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	qid := h.install(1, 3, matchAll, 100)
	if err := h.server.CheckInvariants(); err != nil {
		t.Fatalf("healthy server flagged: %v", err)
	}
	// Corrupt the RQI: drop the query from one monitoring-region cell.
	srv := h.server.(*Server)
	mr, _ := srv.MonRegion(qid)
	srv.rqiRemove(qid, grid.CellRange{Min: mr.Min, Max: mr.Min})
	if err := srv.CheckInvariants(); err == nil {
		t.Fatal("RQI corruption not detected")
	}
	srv.rqiAdd(qid, grid.CellRange{Min: mr.Min, Max: mr.Min})
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("repair not recognized: %v", err)
	}
	// Corrupt the expiries table.
	srv.expiries[9999] = 1
	if err := h.server.CheckInvariants(); err == nil {
		t.Fatal("stray expiry not detected")
	}
}
