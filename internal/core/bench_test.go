package core

import (
	"sync/atomic"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
)

// nullDown swallows downlink traffic.
type nullDown struct{}

func (nullDown) Broadcast(grid.CellRange, msg.Message) {}
func (nullDown) Unicast(model.ObjectID, msg.Message)   {}

// nullUp swallows uplink traffic.
type nullUp struct{}

func (nullUp) Send(msg.Message) {}

// benchServer builds a server with n queries over distinct focal objects.
func benchServer(b *testing.B, opts Options, n int) (*Server, *grid.Grid) {
	b.Helper()
	g := grid.New(geo.NewRect(0, 0, 316, 316), 5)
	s := NewServer(g, opts, nullDown{})
	for i := 0; i < n; i++ {
		oid := model.ObjectID(i + 1)
		s.OnFocalInfoResponse(msg.FocalInfoResponse{
			OID: oid,
			Pos: geo.Pt(float64(i%300)+5, float64((i*7)%300)+5),
		})
		s.InstallQuery(oid, model.CircleRegion{R: 3}, model.Filter{Seed: uint64(i), Permille: 750}, 250)
	}
	return s, g
}

// BenchmarkServerVelocityReport measures the §3.4 hot path: FOT update plus
// per-query relay to the monitoring region.
func BenchmarkServerVelocityReport(b *testing.B) {
	s, _ := benchServer(b, Options{}, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid := model.ObjectID(i%1000 + 1)
		s.OnVelocityReport(msg.VelocityReport{
			OID: oid,
			Pos: geo.Pt(float64(i%300)+5, float64((i*7)%300)+5),
			Vel: geo.Vec(float64(i%100), 50),
			Tm:  model.Time(float64(i) / 120000),
		})
	}
}

// BenchmarkServerCellChange measures the §3.5 focal path: SQT/RQI updates
// plus the combined-region rebroadcast.
func BenchmarkServerCellChange(b *testing.B) {
	s, g := benchServer(b, Options{}, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid := model.ObjectID(i%1000 + 1)
		x := float64((i*5)%300) + 5
		y := float64((i*11)%300) + 5
		s.OnCellChangeReport(msg.CellChangeReport{
			OID:      oid,
			PrevCell: g.CellOf(geo.Pt(x, y)),
			NewCell:  g.CellOf(geo.Pt(x+5, y)),
			Pos:      geo.Pt(x+5, y),
		})
	}
}

// BenchmarkServerContainmentReport measures the §3.6 differential result
// update.
func BenchmarkServerContainmentReport(b *testing.B) {
	s, _ := benchServer(b, Options{}, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnContainmentReport(msg.ContainmentReport{
			OID: model.ObjectID(i%5000 + 1), QID: model.QueryID(i%1000 + 1),
			IsTarget: i%2 == 0,
		})
	}
}

// benchBackend builds a serial or sharded server with nQueries queries over
// distinct focal objects on a 200×200-cell grid.
func benchBackend(b *testing.B, sharded bool, nQueries int) (ServerAPI, *grid.Grid) {
	b.Helper()
	g := grid.New(geo.NewRect(0, 0, 1000, 1000), 5)
	var srv ServerAPI
	if sharded {
		srv = NewShardedServer(g, Options{}, nullDown{}, 8)
	} else {
		srv = NewServer(g, Options{}, nullDown{})
	}
	for i := 0; i < nQueries; i++ {
		oid := model.ObjectID(i + 1)
		srv.HandleUplink(msg.FocalInfoResponse{OID: oid, Pos: benchPos(i)})
		srv.InstallQuery(oid, model.CircleRegion{R: 3}, model.Filter{Seed: uint64(i), Permille: 750}, 250)
	}
	return srv, g
}

func benchPos(i int) geo.Point {
	return geo.Pt(float64((i*13)%990)+5, float64((i*31)%990)+5)
}

// benchUplink returns the i-th message of a synthetic uplink mix over
// nObjects objects and nQueries queries: half cell changes (focal objects
// migrate, non-focals probe the RQI), a quarter containment reports, a
// quarter velocity reports.
func benchUplink(g *grid.Grid, i, nObjects, nQueries int) msg.Message {
	oid := model.ObjectID(i%nObjects + 1)
	switch i % 4 {
	case 0:
		return msg.ContainmentReport{
			OID: oid, QID: model.QueryID(i%nQueries + 1), IsTarget: i%8 < 4,
		}
	case 1:
		return msg.VelocityReport{OID: oid, Pos: benchPos(i), Vel: geo.Vec(30, 10)}
	default:
		x := float64((i*7)%985) + 5
		y := float64((i*17)%985) + 5
		return msg.CellChangeReport{
			OID: oid, PrevCell: g.CellOf(geo.Pt(x, y)), NewCell: g.CellOf(geo.Pt(x+5, y)),
			Pos: geo.Pt(x+5, y),
		}
	}
}

// benchUplinkThroughput measures HandleUplink throughput over the mixed
// workload. The sharded backend is driven from concurrent goroutines
// (RunParallel), the serial server from one — exactly how each is used.
func benchUplinkThroughput(b *testing.B, sharded bool, nObjects int) {
	const nQueries = 1000
	srv, g := benchBackend(b, sharded, nQueries)
	b.ResetTimer()
	if sharded {
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(next.Add(1)) - 1
				srv.HandleUplink(benchUplink(g, i, nObjects, nQueries))
			}
		})
	} else {
		for i := 0; i < b.N; i++ {
			srv.HandleUplink(benchUplink(g, i, nObjects, nQueries))
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "uplinks/sec")
}

func BenchmarkUplinkSerial10k(b *testing.B)   { benchUplinkThroughput(b, false, 10000) }
func BenchmarkUplinkSharded10k(b *testing.B)  { benchUplinkThroughput(b, true, 10000) }
func BenchmarkUplinkSerial100k(b *testing.B)  { benchUplinkThroughput(b, false, 100000) }
func BenchmarkUplinkSharded100k(b *testing.B) { benchUplinkThroughput(b, true, 100000) }

// benchUplinkThroughputClustered measures the router-forwarding overhead of
// the cluster tier: the same mixed workload as the serial/sharded
// throughput benchmarks, dispatched through a 3-node in-process
// ClusterServer (routing-table lookup, NodeHandle indirection and the
// router mutex on every uplink). Compare against BenchmarkUplinkSharded*
// for the clustered-vs-sharded uplink latency delta.
func benchUplinkThroughputClustered(b *testing.B, nObjects int) {
	const nQueries = 1000
	g := grid.New(geo.NewRect(0, 0, 1000, 1000), 5)
	srv := NewClusterServer(g, Options{}, nullDown{}, 3)
	for i := 0; i < nQueries; i++ {
		oid := model.ObjectID(i + 1)
		srv.HandleUplink(msg.FocalInfoResponse{OID: oid, Pos: benchPos(i)})
		srv.InstallQuery(oid, model.CircleRegion{R: 3}, model.Filter{Seed: uint64(i), Permille: 750}, 250)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.HandleUplink(benchUplink(g, i, nObjects, nQueries))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "uplinks/sec")
}

func BenchmarkUplinkClustered10k(b *testing.B)  { benchUplinkThroughputClustered(b, 10000) }
func BenchmarkUplinkClustered100k(b *testing.B) { benchUplinkThroughputClustered(b, 100000) }

// benchClient builds a client with n LQT entries bound to k focal objects.
func benchClient(b *testing.B, opts Options, n, k int) *Client {
	b.Helper()
	g := grid.New(geo.NewRect(0, 0, 316, 316), 5)
	pos := geo.Pt(150, 150)
	c := NewClient(g, opts, nullUp{}, 1, model.Props{Key: 1}, 250, pos)
	cell := g.CellOf(pos)
	for i := 0; i < n; i++ {
		focalPos := geo.Pt(150+float64(i%7), 150)
		c.OnDownlink(msg.QueryInstall{Queries: []msg.QueryState{{
			QID:         model.QueryID(i + 1),
			Focal:       model.ObjectID(i%k + 10),
			State:       model.MotionState{Pos: focalPos, Vel: geo.Vec(30, 0)},
			Region:      model.CircleRegion{R: float64(1 + i%5)},
			Filter:      model.Filter{Seed: 0, Permille: 1000},
			MonRegion:   g.MonitoringRegion(cell, 20),
			FocalMaxVel: 250,
		}}}, pos, geo.Vec(0, 0), 0)
	}
	if c.LQTSize() != n {
		b.Fatalf("LQT size = %d, want %d", c.LQTSize(), n)
	}
	return c
}

// BenchmarkClientEvaluate10 measures one §3.6 evaluation pass over a
// 10-entry LQT (the paper's observed maximum).
func BenchmarkClientEvaluate10(b *testing.B) {
	c := benchClient(b, Options{}, 10, 10)
	pos := geo.Pt(150, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TickEvaluate(pos, geo.Vec(0, 0), model.Time(float64(i)/120000))
	}
}

// BenchmarkClientEvaluate10Grouped: the same LQT with all queries on one
// focal object and grouping on — one distance computation per pass.
func BenchmarkClientEvaluate10Grouped(b *testing.B) {
	c := benchClient(b, Options{Grouping: true}, 10, 1)
	pos := geo.Pt(150, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TickEvaluate(pos, geo.Vec(0, 0), model.Time(float64(i)/120000))
	}
}

// BenchmarkClientEvaluateSafePeriod: distant queries mostly skip.
func BenchmarkClientEvaluateSafePeriod(b *testing.B) {
	c := benchClient(b, Options{SafePeriod: true}, 10, 10)
	pos := geo.Pt(250, 250) // 140 miles from every focal: long safe periods
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TickEvaluate(pos, geo.Vec(0, 0), model.Time(float64(i)/120000))
	}
}

// BenchmarkClientCellChange measures the §3.5 object-side path.
func BenchmarkClientCellChange(b *testing.B) {
	c := benchClient(b, Options{}, 10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := 150 + float64(i%2)*5 // oscillate across a cell border
		c.TickCellChange(geo.Pt(x, 150), geo.Vec(30, 0), model.Time(float64(i)/120000))
	}
}
