package core

import (
	"fmt"
	"math"
	"sort"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/cost"
)

// lqtEntry is one row of the local query table
// LQT = (qid, pos, vel, tm, region, mon_region, isTarget) of §3.2, extended
// with the processing-time field ptm of the safe-period optimization (§4.2).
type lqtEntry struct {
	qs       msg.QueryState
	isTarget bool
	ptm      model.Time // earliest time the entry must be evaluated again
}

// Client is the moving-object side of MobiEyes. One Client instance runs on
// (or, in simulation, stands for) each moving object. The owner feeds it
// position samples through the Tick* methods and delivers downlink messages
// through OnDownlink; the client emits protocol messages through its Uplink.
type Client struct {
	g    *grid.Grid
	opts Options
	up   Uplink

	oid    model.ObjectID
	props  model.Props
	maxVel float64

	lqt      map[model.QueryID]*lqtEntry
	currCell grid.CellID
	hasMQ    bool
	// lastRelayed is the dead-reckoning state: what the rest of the system
	// believes about this object's motion (valid while hasMQ).
	lastRelayed model.MotionState

	// evals counts query evaluations (distance computations against a
	// focal prediction); the deterministic measure behind Fig. 13.
	evals int64
	// skipped counts evaluations suppressed by the safe-period check.
	skipped int64

	// groupCache holds the LQT's queries bucketed by focal object (each
	// bucket sorted by query ID, buckets sorted by focal ID); it is
	// rebuilt lazily when LQT membership changes. Grouped evaluation runs
	// every tick while the LQT changes rarely, so caching this structure
	// keeps the §4.1 optimization a net win on the device.
	groupCache []focalGroup
	qidCache   []model.QueryID
	groupDirty bool

	// acct is the cost accountant attached by SetAccountant (nil = off):
	// dead-reckoning checks, containment evaluations and LQT scans are
	// charged as object-side computation units (the paper's Figs. 10–13
	// axes). Charges go through atomic counters, so clients ticked in
	// parallel may share one accountant.
	acct *cost.Accountant

	// lastEvalVel is the own velocity observed at the previous evaluation;
	// predictive skip times assume constant velocities, so a change voids
	// every ptm.
	lastEvalVel    geo.Vector
	lastEvalVelSet bool
	// curVel is the velocity passed to the current TickEvaluate, used by
	// the predictive skip computation.
	curVel geo.Vector
}

// focalGroup is one grouped-evaluation bucket. qids is ascending (the
// reporting order); evalOrder is descending by enclosing radius (the §4.1
// evaluation order: once outside some radius, outside all smaller ones).
type focalGroup struct {
	focal     model.ObjectID
	qids      []model.QueryID
	evalOrder []model.QueryID
}

// NewClient returns the MobiEyes client for one moving object. startPos
// determines the initial current grid cell.
func NewClient(g *grid.Grid, opts Options, up Uplink, oid model.ObjectID, props model.Props, maxVel float64, startPos geo.Point) *Client {
	return &Client{
		g:        g,
		opts:     opts,
		up:       up,
		oid:      oid,
		props:    props,
		maxVel:   maxVel,
		lqt:      make(map[model.QueryID]*lqtEntry),
		currCell: g.CellOf(startPos),
	}
}

// OID returns the object identifier this client runs on.
func (c *Client) OID() model.ObjectID { return c.oid }

// SetAccountant attaches a cost accountant (nil = off; the default).
func (c *Client) SetAccountant(a *cost.Accountant) { c.acct = a }

// LQTSize returns the number of queries currently installed in the LQT —
// the per-object computation measure of Figs. 10–12.
func (c *Client) LQTSize() int { return len(c.lqt) }

// HasMQ reports whether the object is currently a focal object.
func (c *Client) HasMQ() bool { return c.hasMQ }

// Evals returns the cumulative number of query evaluations performed.
func (c *Client) Evals() int64 { return c.evals }

// SkippedEvals returns the number of evaluations suppressed by safe
// periods.
func (c *Client) SkippedEvals() int64 { return c.skipped }

// CurrCell returns the client's current grid cell as of the last tick.
func (c *Client) CurrCell() grid.CellID { return c.currCell }

// OnDownlink processes a message received from a base station broadcast or
// a one-to-one delivery. pos and now are the object's position and clock at
// receipt, used to decide relevance (is my current cell inside the query's
// monitoring region?) and to answer focal-info requests.
func (c *Client) OnDownlink(m msg.Message, pos geo.Point, vel geo.Vector, now model.Time) {
	switch mm := m.(type) {
	case msg.QueryInstall:
		for _, qs := range mm.Queries {
			c.applyQueryState(qs, now)
		}
	case msg.QueryRemove:
		for _, qid := range mm.QIDs {
			c.removeQuery(qid)
		}
	case msg.VelocityChange:
		c.onVelocityChange(mm, now)
	case msg.FocalNotify:
		if mm.OID != c.oid {
			return
		}
		if mm.Install {
			if !c.hasMQ {
				c.hasMQ = true
				// From now on the system predicts our position from the
				// state last relayed; if none was relayed yet (the install
				// path through FocalInfoResponse sets it), start from now.
				if c.lastRelayed == (model.MotionState{}) {
					c.lastRelayed = model.MotionState{Pos: pos, Vel: vel, Tm: now}
				}
			}
		} else {
			// The server sends the uninstall notification only when the
			// object's last query is removed.
			c.hasMQ = false
			c.lastRelayed = model.MotionState{}
		}
	case msg.FocalInfoRequest:
		if mm.OID != c.oid {
			return
		}
		st := model.MotionState{Pos: pos, Vel: vel, Tm: now}
		c.lastRelayed = st
		c.up.Send(msg.FocalInfoResponse{OID: c.oid, Pos: pos, Vel: vel, Tm: now})
	default:
		panic(fmt.Sprintf("core: client cannot handle %v", m.Kind()))
	}
}

// applyQueryState is the §3.3/§3.5 install-or-remove logic: install or
// update the query if our current cell is inside its monitoring region and
// the filter accepts us; remove it otherwise.
func (c *Client) applyQueryState(qs msg.QueryState, now model.Time) {
	if !qs.MonRegion.Contains(c.currCell) {
		c.removeQuery(qs.QID)
		return
	}
	if !qs.Filter.Matches(c.props) {
		return
	}
	if e, ok := c.lqt[qs.QID]; ok {
		e.qs = qs
		e.ptm = 0 // focal state changed: previous safe period is void
		return
	}
	c.lqt[qs.QID] = &lqtEntry{qs: qs}
	c.groupDirty = true
}

// removeQuery drops a query from the LQT. If the object was inside the
// query's region, a leave report keeps the server's result exact: an object
// outside a query's monitoring region cannot be inside its spatial region,
// so leaving the monitoring region implies leaving the result.
func (c *Client) removeQuery(qid model.QueryID) {
	e, ok := c.lqt[qid]
	if !ok {
		return
	}
	if e.isTarget {
		c.up.Send(msg.ContainmentReport{OID: c.oid, QID: qid, IsTarget: false})
	}
	delete(c.lqt, qid)
	c.groupDirty = true
}

// onVelocityChange refreshes the dead-reckoning state of installed queries
// bound to the reporting focal object; under lazy propagation it also
// self-installs queries carried in the expanded notification (§3.5).
func (c *Client) onVelocityChange(m msg.VelocityChange, now model.Time) {
	if c.opts.Mode == LazyPropagation && len(m.Queries) > 0 {
		for _, qs := range m.Queries {
			c.applyQueryState(qs, now)
		}
		return
	}
	for _, e := range c.lqt {
		if e.qs.Focal == m.Focal {
			e.qs.State = m.State
			e.ptm = 0
		}
	}
}

// Join announces the client to the server as a newly arrived object: the
// server responds with the queries whose monitoring regions cover the
// object's starting cell. Without it, an object appearing mid-run would
// stay ignorant of standing queries until its first cell crossing — and
// even then would only learn queries new to the crossed cell. Call once,
// after construction, when the population is dynamic.
func (c *Client) Join(pos geo.Point, vel geo.Vector, now model.Time) {
	c.up.Send(msg.CellChangeReport{
		OID:      c.oid,
		PrevCell: grid.CellID{Col: -1, Row: -1}, // invalid: no previous cell
		NewCell:  c.currCell,
		Pos:      pos, Vel: vel, Tm: now,
	})
}

// Resync re-announces the client's full state to the server after a
// transport reconnect. It sends, in order: a rejoin cell-change report
// (invalid previous cell) that re-registers the object and makes the server
// drop any stale result entries; a velocity report refreshing the FOT row
// when the object is focal; and a containment report for every query the
// object currently believes it is a target of. On an ordered transport the
// server's clear-then-re-report sequence reconstructs the exact
// pre-disconnect state regardless of what was lost in transit.
func (c *Client) Resync(pos geo.Point, vel geo.Vector, now model.Time) {
	c.up.Send(msg.CellChangeReport{
		OID:      c.oid,
		PrevCell: grid.CellID{Col: -1, Row: -1}, // invalid: rejoin
		NewCell:  c.currCell,
		Pos:      pos, Vel: vel, Tm: now,
	})
	if c.hasMQ {
		c.lastRelayed = model.MotionState{Pos: pos, Vel: vel, Tm: now}
		c.up.Send(msg.VelocityReport{OID: c.oid, Pos: pos, Vel: vel, Tm: now})
	}
	for _, qid := range c.sortedQIDs() {
		if c.lqt[qid].isTarget {
			c.up.Send(msg.ContainmentReport{OID: c.oid, QID: qid, IsTarget: true})
		}
	}
}

// Depart announces that the object is leaving the system and clears the
// local query table. The server removes the object from all results and
// tears down its queries.
func (c *Client) Depart() {
	c.up.Send(msg.DepartureReport{OID: c.oid})
	c.lqt = make(map[model.QueryID]*lqtEntry)
	c.hasMQ = false
	c.lastRelayed = model.MotionState{}
}

// TickCellChange is phase one of an object's time step: detect a grid-cell
// crossing and react per §3.5 — drop now-irrelevant queries, and notify the
// server when eager propagation demands it (or when we are focal, in any
// mode).
func (c *Client) TickCellChange(pos geo.Point, vel geo.Vector, now model.Time) {
	newCell := c.g.CellOf(pos)
	if newCell == c.currCell {
		return
	}
	prev := c.currCell
	c.currCell = newCell
	// Remove queries whose monitoring region no longer covers us.
	for _, qid := range c.sortedQIDs() {
		if !c.lqt[qid].qs.MonRegion.Contains(newCell) {
			c.removeQuery(qid)
		}
	}
	if c.opts.Mode == EagerPropagation || c.hasMQ {
		c.up.Send(msg.CellChangeReport{
			OID: c.oid, PrevCell: prev, NewCell: newCell,
			Pos: pos, Vel: vel, Tm: now,
		})
		if c.hasMQ {
			// The report piggybacks our motion state and the server relays
			// it to the monitoring regions, so the system's belief is now
			// current — no separate velocity report needed this step.
			c.lastRelayed = model.MotionState{Pos: pos, Vel: vel, Tm: now}
		}
	}
}

// TickDeadReckoning is phase two: when focal, compare the true position
// with the position the system predicts from the last relayed state, and
// relay a velocity report when the deviation exceeds Δ (§3.4).
func (c *Client) TickDeadReckoning(pos geo.Point, vel geo.Vector, now model.Time) {
	if !c.hasMQ {
		return
	}
	c.acct.Compute(cost.UnitDeadReckoning, 1)
	if c.lastRelayed.NeedsRelay(pos, now, c.opts.DeadReckoningThreshold) {
		st := model.MotionState{Pos: pos, Vel: vel, Tm: now}
		c.lastRelayed = st
		c.up.Send(msg.VelocityReport{OID: c.oid, Pos: pos, Vel: vel, Tm: now})
	}
}

// TickEvaluate is phase three: process every query in the LQT (§3.6) —
// predict the focal object's position, decide containment, and report
// changes differentially. Safe periods (§4.2) skip evaluations that cannot
// change the outcome; grouping (§4.1) shares one distance computation among
// queries with the same focal object and batches grouped reports into query
// bitmaps.
func (c *Client) TickEvaluate(pos geo.Point, vel geo.Vector, now model.Time) {
	if len(c.lqt) == 0 {
		return
	}
	c.acct.Compute(cost.UnitLQTScan, int64(len(c.lqt)))
	if c.opts.Predictive {
		if !c.lastEvalVelSet || vel != c.lastEvalVel {
			// Our own trajectory changed: every predicted entry time is
			// void.
			for _, e := range c.lqt {
				e.ptm = 0
			}
			c.lastEvalVel = vel
			c.lastEvalVelSet = true
		}
		c.curVel = vel
	}
	if c.opts.Grouping {
		c.evaluateGrouped(pos, now)
		return
	}
	// Deterministic iteration: cached sorted QIDs (the LQT changes far
	// less often than it is evaluated).
	if c.groupDirty || c.qidCache == nil {
		c.qidCache = c.sortedQIDsInto(c.qidCache[:0])
		c.groupDirty = false
	}
	for _, qid := range c.qidCache {
		e := c.lqt[qid]
		inside, evaluated := c.evaluateEntry(e, pos, now)
		if !evaluated {
			continue
		}
		if inside != e.isTarget {
			e.isTarget = inside
			c.up.Send(msg.ContainmentReport{OID: c.oid, QID: qid, IsTarget: inside})
		}
	}
}

// evaluateEntry decides containment for one LQT entry, honoring the safe
// period. The second return value reports whether an evaluation happened.
func (c *Client) evaluateEntry(e *lqtEntry, pos geo.Point, now model.Time) (inside, evaluated bool) {
	if c.skipsEnabled() && e.ptm > now {
		c.skipped++
		return false, false
	}
	focalPos := e.qs.State.PredictAt(now)
	c.evals++
	c.acct.Compute(cost.UnitContainment, 1)
	inside = e.qs.Region.Contains(focalPos, pos)
	if !inside {
		c.schedule(e, pos, focalPos, now)
	}
	return inside, true
}

// skipsEnabled reports whether any skip optimization is active.
func (c *Client) skipsEnabled() bool { return c.opts.SafePeriod || c.opts.Predictive }

// schedule sets e.ptm — the earliest time the entry must be re-evaluated —
// using the exact predictive entry time or the paper's worst-case safe
// period, whichever optimization is enabled.
func (c *Client) schedule(e *lqtEntry, pos, focalPos geo.Point, now model.Time) {
	er := e.qs.Region.EnclosingRadius()
	if c.opts.Predictive {
		d := pos.Sub(focalPos)
		w := geo.Vec(c.curVel.X-e.qs.State.Vel.X, c.curVel.Y-e.qs.State.Vel.Y)
		if et, ok := model.EntryTime(d, w, er); ok {
			e.ptm = now + model.Time(et)
		} else {
			e.ptm = model.Time(math.Inf(1))
		}
		return
	}
	if c.opts.SafePeriod {
		sp := model.SafePeriod(pos.Dist(focalPos), er, c.maxVel, e.qs.FocalMaxVel)
		e.ptm = now + model.Time(sp)
	}
}

// evaluateGrouped implements the §4.1 object-side grouping: one predicted
// focal position and one distance computation per focal object, shared by
// all of its queries; matching-monitoring-region groups of two or more
// queries report via a query bitmap.
func (c *Client) evaluateGrouped(pos geo.Point, now model.Time) {
	if c.groupDirty || c.groupCache == nil {
		c.rebuildGroupCache()
		c.qidCache = c.sortedQIDsInto(c.qidCache[:0])
	}
	for i := range c.groupCache {
		c.evaluateFocalGroup(&c.groupCache[i], pos, now)
	}
}

// rebuildGroupCache re-buckets the LQT by focal object, deterministically.
func (c *Client) rebuildGroupCache() {
	byFocal := make(map[model.ObjectID][]model.QueryID, len(c.lqt))
	for qid, e := range c.lqt {
		byFocal[e.qs.Focal] = append(byFocal[e.qs.Focal], qid)
	}
	c.groupCache = c.groupCache[:0]
	for f, qids := range byFocal {
		sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
		order := append([]model.QueryID(nil), qids...)
		sort.SliceStable(order, func(i, j int) bool {
			return c.lqt[order[i]].qs.Region.EnclosingRadius() >
				c.lqt[order[j]].qs.Region.EnclosingRadius()
		})
		c.groupCache = append(c.groupCache, focalGroup{focal: f, qids: qids, evalOrder: order})
	}
	sort.Slice(c.groupCache, func(i, j int) bool {
		return c.groupCache[i].focal < c.groupCache[j].focal
	})
	c.groupDirty = false
}

// evaluateFocalGroup evaluates all queries bound to one focal object.
// The focal position is predicted once; each query then needs only a
// containment check. Entries are visited in the cached descending
// enclosing-radius order, so that — as the paper notes — smaller radii need
// consideration only when the object is inside the larger region; isTarget
// transitions are still honored for all of them. The pass allocates nothing
// unless a containment status changed.
func (c *Client) evaluateFocalGroup(g *focalGroup, pos geo.Point, now model.Time) {
	// First pass: find the freshest recorded focal state among due entries
	// (states can differ transiently when an entry installed later).
	var freshest *lqtEntry
	for _, qid := range g.evalOrder {
		e := c.lqt[qid]
		if c.skipsEnabled() && e.ptm > now {
			continue
		}
		if freshest == nil || e.qs.State.Tm > freshest.qs.State.Tm {
			freshest = e
		}
	}
	if freshest == nil {
		c.skipped += int64(len(g.evalOrder))
		return
	}
	focalPos := freshest.qs.State.PredictAt(now)
	c.evals++
	c.acct.Compute(cost.UnitContainment, 1)
	dist := pos.Dist(focalPos)

	var changed map[model.QueryID]bool
	for _, qid := range g.evalOrder {
		e := c.lqt[qid]
		if c.skipsEnabled() && e.ptm > now {
			c.skipped++
			continue
		}
		inside := dist <= e.qs.Region.EnclosingRadius() && e.qs.Region.Contains(focalPos, pos)
		if !inside {
			c.schedule(e, pos, focalPos, now)
		}
		if inside != e.isTarget {
			e.isTarget = inside
			if changed == nil {
				changed = make(map[model.QueryID]bool, len(g.evalOrder))
			}
			changed[qid] = true
		}
	}
	if changed == nil {
		return
	}
	// Matching monitoring regions with ≥2 queries report as one bitmap;
	// everything else reports individually. Skipped entries report their
	// previous status inside bitmaps (idempotent at the server).
	c.reportGroupResults(g.focal, g.qids, changed)
}

// reportGroupResults sends result updates for the given queries: bitmap
// reports for monitoring-region groups of two or more, individual reports
// otherwise. Groups report only when at least one member changed; singleton
// queries only when they themselves changed. All queries belong to one
// focal object.
func (c *Client) reportGroupResults(focal model.ObjectID, qids []model.QueryID, changed map[model.QueryID]bool) {
	byRegion := make(map[grid.CellRange][]model.QueryID)
	var regions []grid.CellRange
	for _, qid := range qids { // qids sorted ascending
		r := c.lqt[qid].qs.MonRegion
		if _, ok := byRegion[r]; !ok {
			regions = append(regions, r)
		}
		byRegion[r] = append(byRegion[r], qid)
	}
	for _, r := range regions {
		group := byRegion[r]
		if len(group) == 1 {
			qid := group[0]
			if changed[qid] {
				c.up.Send(msg.ContainmentReport{OID: c.oid, QID: qid, IsTarget: c.lqt[qid].isTarget})
			}
			continue
		}
		groupChanged := false
		for _, qid := range group {
			if changed[qid] {
				groupChanged = true
				break
			}
		}
		if !groupChanged {
			continue
		}
		bm := msg.NewBitmap(len(group))
		for i, qid := range group {
			bm.Set(i, c.lqt[qid].isTarget)
		}
		c.up.Send(msg.GroupContainmentReport{
			OID: c.oid, Focal: focal, QIDs: group, Bitmap: bm,
		})
	}
}

// IsTarget reports the client's local belief about being inside a query's
// region (false for queries not in the LQT).
func (c *Client) IsTarget(qid model.QueryID) bool {
	e, ok := c.lqt[qid]
	return ok && e.isTarget
}

// InstalledQueries returns the sorted IDs of queries in the LQT.
func (c *Client) InstalledQueries() []model.QueryID { return c.sortedQIDs() }

func (c *Client) sortedQIDs() []model.QueryID {
	return c.sortedQIDsInto(nil)
}

func (c *Client) sortedQIDsInto(qids []model.QueryID) []model.QueryID {
	for qid := range c.lqt {
		qids = append(qids, qid)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	return qids
}
