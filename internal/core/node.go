package core

import (
	"bytes"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/trace"
)

// NodeHandle is the operation surface a cluster router drives a worker node
// through: the per-dispatch table operations of the MobiEyes protocol, the
// byte-mediated focal handoff, and the introspection the router aggregates.
// Two implementations exist: NodeServer executes in-process, and
// internal/cluster's RemoteNode forwards each call over the wire protocol
// (NodeOp/Handoff frames) to a worker hosting a NodeServer. Every call
// carries the causal-trace ID of the uplink or API call that triggered it.
//
// Methods are not safe for concurrent use; the ClusterServer serializes all
// calls under its router mutex.
type NodeHandle interface {
	// Query lifecycle.
	CompleteInstall(qid model.QueryID, q model.Query, maxVel float64, expiry model.Time, tid trace.ID)
	RemoveQuery(qid model.QueryID, tid trace.ID) (removed bool, focal model.ObjectID, stillFocal bool)
	DueExpiries(now model.Time) []model.QueryID

	// Uplink-driven table operations (§3.4–3.6).
	UpsertFocal(oid model.ObjectID, st model.MotionState, tid trace.ID)
	VelocityReport(m msg.VelocityReport, tid trace.ID)
	ContainmentReport(m msg.ContainmentReport, tid trace.ID)
	GroupContainmentReport(m msg.GroupContainmentReport, tid trace.ID)
	FocalCellChange(oid model.ObjectID, st model.MotionState, newCell grid.CellID, tid trace.ID)
	FreshQueryStates(prevCell, newCell grid.CellID) []msg.QueryState
	ClearResults(oid model.ObjectID, tid trace.ID)
	DepartSweep(oid model.ObjectID, tid trace.ID)
	DepartFocal(oid model.ObjectID, tid trace.ID) []model.QueryID

	// Cross-node focal handoff: ExtractFocal detaches the focal's complete
	// state as an encoded focal slice (phase one — the source has drained
	// its sends and forgotten the rows when it returns); InjectFocal
	// installs the slice (phase two — acknowledged before the router
	// updates its routing tables). admin marks charge-free infrastructure
	// transfers (rebalancing, node drain) outside the protocol cost model.
	ExtractFocal(oid model.ObjectID, admin bool, tid trace.ID) ([]byte, error)
	InjectFocal(slice []byte, st model.MotionState, cell grid.CellID, relocate, admin bool, tid trace.ID) error

	// Introspection, aggregated by the router.
	Result(qid model.QueryID) []model.ObjectID
	ResultContains(qid model.QueryID, oid model.ObjectID) bool
	ResultSize(qid model.QueryID) int
	Query(qid model.QueryID) (model.Query, bool)
	MonRegion(qid model.QueryID) (grid.CellRange, bool)
	NumQueries() int
	QueryIDs() []model.QueryID
	NearbyQueries(cell grid.CellID) []model.QueryID
	FocalIDs() []model.ObjectID
	FocalCell(oid model.ObjectID) (grid.CellID, bool)
	Ops() int64

	// Durability and diagnostics. CheckpointDelta returns the focal-slice
	// changes since the caller's last checkpoint sequence (the router pulls
	// one each telemetry round and journals the slices so an ungraceful
	// crash is recoverable — DESIGN.md §15); since must equal the node's
	// current sequence or the exchange errors.
	CheckpointDelta(since uint64) (CheckpointDelta, error)
	SnapshotData() ([]byte, error)
	CheckInvariants() error
	Close() error
}

// NodeServer is the in-process NodeHandle: a serial Server restricted to
// the focal objects whose current cell falls in this node's assigned range.
// It is both the executor a cluster Worker hosts behind the wire protocol
// and the node implementation of the in-process ClusterServer.
type NodeServer struct {
	srv *Server

	// Checkpoint baseline: the focal-slice bytes as of the last
	// CheckpointDelta exchange, used to diff the next delta. ckptSeq bumps
	// only when the delta is non-empty.
	ckptSeq  uint64
	ckptBase map[model.ObjectID][]byte
}

// NewNodeServer returns a node executor over grid g sending through down.
func NewNodeServer(g *grid.Grid, opts Options, down Downlink) *NodeServer {
	return &NodeServer{srv: NewServer(g, opts, down)}
}

// run invokes fn with the node's dispatch trace set to tid.
func (n *NodeServer) run(tid trace.ID, fn func(s *Server)) {
	prev := n.srv.curTrace
	n.srv.curTrace = tid
	fn(n.srv)
	n.srv.curTrace = prev
}

// SetTracer attaches a flight recorder under the given actor name
// ("node0", "node1", …).
func (n *NodeServer) SetTracer(rec *trace.Recorder, actor string) {
	n.srv.setTracer(rec, actor)
}

// Underlying exposes the wrapped serial server for host-side wiring
// (instrumentation, accounting, result listeners) that stays outside the
// NodeHandle operation surface.
func (n *NodeServer) Underlying() *Server { return n.srv }

func (n *NodeServer) CompleteInstall(qid model.QueryID, q model.Query, maxVel float64, expiry model.Time, tid trace.ID) {
	n.run(tid, func(s *Server) {
		if expiry != 0 {
			s.expiries[qid] = expiry
		}
		s.completeInstall(qid, q, maxVel)
	})
}

func (n *NodeServer) RemoveQuery(qid model.QueryID, tid trace.ID) (removed bool, focal model.ObjectID, stillFocal bool) {
	n.run(tid, func(s *Server) {
		if e, installed := s.sqt[qid]; installed {
			focal = e.query.Focal
		}
		removed = s.RemoveQuery(qid)
		_, stillFocal = s.fot[focal]
	})
	return removed, focal, stillFocal
}

func (n *NodeServer) DueExpiries(now model.Time) []model.QueryID {
	var due []model.QueryID
	for qid, exp := range n.srv.expiries {
		if exp <= now {
			due = append(due, qid)
		}
	}
	return due
}

func (n *NodeServer) UpsertFocal(oid model.ObjectID, st model.MotionState, tid trace.ID) {
	n.run(tid, func(s *Server) { s.upsertFocal(oid, st) })
}

func (n *NodeServer) VelocityReport(m msg.VelocityReport, tid trace.ID) {
	n.run(tid, func(s *Server) { s.OnVelocityReport(m) })
}

func (n *NodeServer) ContainmentReport(m msg.ContainmentReport, tid trace.ID) {
	n.run(tid, func(s *Server) { s.OnContainmentReport(m) })
}

func (n *NodeServer) GroupContainmentReport(m msg.GroupContainmentReport, tid trace.ID) {
	n.run(tid, func(s *Server) { s.OnGroupContainmentReport(m) })
}

func (n *NodeServer) FocalCellChange(oid model.ObjectID, st model.MotionState, newCell grid.CellID, tid trace.ID) {
	n.run(tid, func(s *Server) {
		if fe, ok := s.fot[oid]; ok {
			s.focalCellChange(fe, st, newCell)
		}
	})
}

func (n *NodeServer) FreshQueryStates(prevCell, newCell grid.CellID) []msg.QueryState {
	return n.srv.freshQueryStates(prevCell, newCell)
}

func (n *NodeServer) ClearResults(oid model.ObjectID, tid trace.ID) {
	n.run(tid, func(s *Server) { s.clearObjectFromResults(oid) })
}

func (n *NodeServer) DepartSweep(oid model.ObjectID, tid trace.ID) {
	n.run(tid, func(s *Server) {
		for qid, e := range s.sqt {
			if _, in := e.result[oid]; in {
				delete(e.result, oid)
				s.notifyResult(qid, oid, false)
			}
		}
	})
}

func (n *NodeServer) DepartFocal(oid model.ObjectID, tid trace.ID) []model.QueryID {
	var qids []model.QueryID
	n.run(tid, func(s *Server) {
		fe, ok := s.fot[oid]
		if !ok {
			return
		}
		qids = append(qids, fe.queries...)
		for _, qid := range qids {
			s.RemoveQuery(qid)
		}
		delete(s.fot, oid)
	})
	return qids
}

func (n *NodeServer) ExtractFocal(oid model.ObjectID, admin bool, tid trace.ID) ([]byte, error) {
	if _, ok := n.srv.fot[oid]; !ok {
		return nil, errNoFocal
	}
	restore := n.suspendCharges(admin)
	var slice []byte
	n.run(tid, func(s *Server) { slice = encodeFocalSlice(s.extractFocal(oid)) })
	restore()
	return slice, nil
}

func (n *NodeServer) InjectFocal(slice []byte, st model.MotionState, cell grid.CellID, relocate, admin bool, tid trace.ID) error {
	rec, _, _, err := decodeFocalSlice(slice)
	if err != nil {
		return err
	}
	restore := n.suspendCharges(admin)
	n.run(tid, func(s *Server) { s.injectFocal(rec, st, cell, relocate) })
	restore()
	return nil
}

// suspendCharges disables cost accounting for the duration of an admin
// (infrastructure) transfer: rebalancing and node drains move state without
// protocol messages, so they must not perturb the cost model the
// differential ledger oracle compares against the serial server.
func (n *NodeServer) suspendCharges(admin bool) func() {
	if !admin {
		return func() {}
	}
	saved := n.srv.acct
	n.srv.acct = nil
	return func() { n.srv.acct = saved }
}

func (n *NodeServer) Result(qid model.QueryID) []model.ObjectID { return n.srv.Result(qid) }
func (n *NodeServer) ResultContains(qid model.QueryID, oid model.ObjectID) bool {
	return n.srv.ResultContains(qid, oid)
}
func (n *NodeServer) ResultSize(qid model.QueryID) int          { return n.srv.ResultSize(qid) }
func (n *NodeServer) Query(qid model.QueryID) (model.Query, bool) { return n.srv.Query(qid) }
func (n *NodeServer) MonRegion(qid model.QueryID) (grid.CellRange, bool) {
	return n.srv.MonRegion(qid)
}
func (n *NodeServer) NumQueries() int            { return n.srv.NumQueries() }
func (n *NodeServer) QueryIDs() []model.QueryID  { return n.srv.QueryIDs() }
func (n *NodeServer) NearbyQueries(cell grid.CellID) []model.QueryID {
	return n.srv.NearbyQueries(cell)
}

func (n *NodeServer) FocalIDs() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(n.srv.fot))
	for oid := range n.srv.fot {
		out = append(out, oid)
	}
	sortOIDs(out)
	return out
}

func (n *NodeServer) FocalCell(oid model.ObjectID) (grid.CellID, bool) {
	fe, ok := n.srv.fot[oid]
	if !ok {
		return grid.CellID{}, false
	}
	return fe.currCell, true
}

func (n *NodeServer) Ops() int64 { return n.srv.Ops() }

func (n *NodeServer) SnapshotData() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, n.srv.snapshotData()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (n *NodeServer) CheckInvariants() error { return n.srv.CheckInvariants() }

func (n *NodeServer) Close() error { return nil }

var _ NodeHandle = (*NodeServer)(nil)
