package core

import (
	"bytes"
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

// TestSnapshotRestoreMidRun is the fault-tolerance property: snapshot the
// server mid-run, replace it with a restored copy, keep the world moving —
// results stay exact at every step, as if nothing happened.
func TestSnapshotRestoreMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	h := newHarness(smallGrid(), Options{})
	for i := 0; i < 40; i++ {
		pos := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
		h.addObject(model.ObjectID(i+1), pos, geo.Vec(0, 0), 200, rng.Uint64())
	}
	h.randomizeVelocities(rng, 40)
	var qids []model.QueryID
	for i := 0; i < 8; i++ {
		qids = append(qids, h.install(model.ObjectID(i+1), 1+rng.Float64()*4, matchAll, 250))
	}

	for step := 0; step < 10; step++ {
		h.keepInside()
		h.randomizeVelocities(rng, 8)
		h.step(model.FromSeconds(30))
	}
	for _, qid := range qids {
		if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
			t.Fatalf("pre-snapshot q%d: %v vs %v", qid, got, want)
		}
	}

	// Crash: snapshot, discard the server, restore.
	var buf bytes.Buffer
	if err := h.server.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreServer(h.g, h.optsVal, harnessDown{h}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	h.server = restored
	h.flushDown()

	// Immediately consistent…
	for _, qid := range qids {
		if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
			t.Fatalf("post-restore q%d: %v vs %v", qid, got, want)
		}
	}
	// …and stays exact while the world keeps moving.
	for step := 0; step < 15; step++ {
		h.keepInside()
		h.randomizeVelocities(rng, 8)
		h.step(model.FromSeconds(30))
		for _, qid := range qids {
			if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
				t.Fatalf("step %d after restore, q%d: %v vs %v", step, qid, got, want)
			}
		}
	}
}

func TestSnapshotPreservesExpiries(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	qid := h.server.InstallQueryUntil(1, model.CircleRegion{R: 3}, matchAll, 100, model.FromSeconds(60))
	h.flushDown()

	var buf bytes.Buffer
	if err := h.server.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreServer(h.g, h.optsVal, harnessDown{h}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	h.server = restored
	if expired := h.server.ExpireQueries(model.FromSeconds(30)); len(expired) != 0 {
		t.Fatalf("expired early: %v", expired)
	}
	if expired := h.server.ExpireQueries(model.FromSeconds(90)); len(expired) != 1 || expired[0] != qid {
		t.Fatalf("ExpireQueries = %v, want [%d]", expired, qid)
	}
}

func TestSnapshotPreservesPendingInstalls(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	// Enqueue the install but do NOT deliver the FocalInfoRequest: the
	// installation is pending at snapshot time.
	qid := h.server.InstallQuery(1, model.CircleRegion{R: 3}, matchAll, 100)
	h.downQueue = nil // drop the in-flight request, as a crash would

	var buf bytes.Buffer
	if err := h.server.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreServer(h.g, h.optsVal, harnessDown{h}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	h.server = restored
	// Restore re-issued the FocalInfoRequest; delivering it completes the
	// install.
	h.flushDown()
	if _, ok := h.server.Query(qid); !ok {
		t.Fatal("pending install did not complete after restore")
	}
	h.step(model.FromSeconds(30))
	if got, want := h.server.Result(qid), h.groundTruth(qid); !idsEqual(got, want) {
		t.Fatalf("Result = %v, want %v", got, want)
	}
}

func TestSnapshotNextQIDPreserved(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)
	q1 := h.install(1, 3, matchAll, 100)

	var buf bytes.Buffer
	if err := h.server.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreServer(h.g, h.optsVal, harnessDown{h}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	h.server = restored
	q2 := h.install(1, 5, matchAll, 100)
	if q2 <= q1 {
		t.Fatalf("restored server reused query IDs: %d after %d", q2, q1)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	g := smallGrid()
	down := harnessDown{newHarness(g, Options{})}
	for name, data := range map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("NOPE1234"),
		"truncated": []byte("MOBS"),
	} {
		if _, err := RestoreServer(g, Options{}, down, bytes.NewReader(data)); err == nil {
			t.Errorf("%s: restore accepted invalid snapshot", name)
		}
	}
}
