package core

import (
	"bytes"
	"testing"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
)

// newClusterHarness is newHarness with an in-process ClusterServer backend;
// everything else (clients, queued delivery) is identical, which makes the
// serial-vs-clustered equivalence tests direct comparisons.
func newClusterHarness(g *grid.Grid, opts Options, nodes int) *harness {
	h := &harness{
		g:         g,
		byOID:     make(map[model.ObjectID]int),
		upCount:   make(map[msg.Kind]int),
		downCount: make(map[msg.Kind]int),
	}
	h.server = NewClusterServer(g, opts, harnessDown{h}, nodes)
	h.optsVal = opts
	return h
}

// TestClusterServerMatchesSerial: the scripted workload against a serial
// Server and a 3-node ClusterServer must leave identical query state — same
// installed IDs, descriptors, monitoring regions and result sets — and must
// actually exercise cross-node focal handoffs.
func TestClusterServerMatchesSerial(t *testing.T) {
	serial := newHarness(smallGrid(), Options{})
	cluster := newClusterHarness(smallGrid(), Options{}, 3)
	qidsA := runScenario(serial)
	qidsB := runScenario(cluster)

	if len(qidsA) != len(qidsB) {
		t.Fatalf("installed %d vs %d queries", len(qidsA), len(qidsB))
	}
	for i := range qidsA {
		if qidsA[i] != qidsB[i] {
			t.Fatalf("query ID sequence diverged at %d: %d vs %d", i, qidsA[i], qidsB[i])
		}
	}
	if a, b := serial.server.NumQueries(), cluster.server.NumQueries(); a != b {
		t.Fatalf("NumQueries: serial %d, clustered %d", a, b)
	}
	if !qidsEqual(serial.server.QueryIDs(), cluster.server.QueryIDs()) {
		t.Fatalf("QueryIDs: serial %v, clustered %v", serial.server.QueryIDs(), cluster.server.QueryIDs())
	}
	for _, qid := range qidsA {
		qa, oka := serial.server.Query(qid)
		qb, okb := cluster.server.Query(qid)
		if oka != okb || qa != qb {
			t.Errorf("query %d: serial (%+v,%v) vs clustered (%+v,%v)", qid, qa, oka, qb, okb)
		}
		if !oka {
			continue
		}
		if !idsEqual(serial.server.Result(qid), cluster.server.Result(qid)) {
			t.Errorf("query %d result: serial %v, clustered %v",
				qid, serial.server.Result(qid), cluster.server.Result(qid))
		}
		if !idsEqual(cluster.server.Result(qid), cluster.groundTruth(qid)) {
			t.Errorf("query %d: clustered result %v != ground truth %v",
				qid, cluster.server.Result(qid), cluster.groundTruth(qid))
		}
		ma, _ := serial.server.MonRegion(qid)
		mb, _ := cluster.server.MonRegion(qid)
		if ma != mb {
			t.Errorf("query %d monitoring region: serial %+v, clustered %+v", qid, ma, mb)
		}
	}
	if err := cluster.server.CheckInvariants(); err != nil {
		t.Errorf("cluster invariants: %v", err)
	}
	cs := cluster.server.(*ClusterServer)
	if cs.Migrations() == 0 {
		t.Error("scenario produced no cross-node handoffs — weak test")
	}
	used := map[int]bool{}
	for _, ni := range cs.focalNode {
		used[ni] = true
	}
	if len(used) < 2 {
		t.Errorf("scenario left every focal on one node (%d used) — weak test", len(used))
	}
}

// TestFocalSliceRoundTrip: extract → encode → decode → inject reproduces
// the focal's table rows exactly (snapshot-level identity), on a server
// carrying queries with results, expiries and merged maxVels.
func TestFocalSliceRoundTrip(t *testing.T) {
	h := newHarness(smallGrid(), Options{})
	runScenario(h)
	src := h.server.(*Server)

	var before bytes.Buffer
	if err := src.Snapshot(&before); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, oid := range (&NodeServer{srv: src}).FocalIDs() {
		fe := src.fot[oid]
		slice := encodeFocalSlice(src.extractFocal(oid))
		rec, st, cell, err := decodeFocalSlice(slice)
		if err != nil {
			t.Fatalf("focal %d: decode: %v", oid, err)
		}
		if st != fe.state || cell != fe.currCell {
			t.Fatalf("focal %d: state/cell changed in transit", oid)
		}
		src.injectFocal(rec, st, cell, false)
		moved++
	}
	if moved < 2 {
		t.Fatalf("only %d focals exercised — weak test", moved)
	}
	var after bytes.Buffer
	if err := src.Snapshot(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Error("extract/encode/decode/inject round trip changed the snapshot")
	}
	if err := src.CheckInvariants(); err != nil {
		t.Errorf("invariants after round trip: %v", err)
	}

	if _, _, _, err := decodeFocalSlice([]byte{1, 2, 3}); err == nil {
		t.Error("truncated slice decoded without error")
	}
}

// TestClusterKillNodeDrains: killing a node drains its focals to the
// survivors via charge-free admin handoffs — durable state is
// byte-identical across the kill, invariants hold, and the cluster keeps
// matching the serial server afterwards. Killing the last node is refused.
func TestClusterKillNodeDrains(t *testing.T) {
	serial := newHarness(smallGrid(), Options{})
	cluster := newClusterHarness(smallGrid(), Options{}, 3)
	runScenario(serial)
	runScenario(cluster)
	cs := cluster.server.(*ClusterServer)

	var before bytes.Buffer
	if err := cs.Snapshot(&before); err != nil {
		t.Fatal(err)
	}
	if err := cs.KillNode(1); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	var after bytes.Buffer
	if err := cs.Snapshot(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Error("node kill changed the durable snapshot")
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Fatalf("invariants after kill: %v", err)
	}
	spans := cs.Spans()
	if spans[1].Live || spans[1].Focals != 0 || spans[1].Queries != 0 {
		t.Errorf("killed node not drained: %+v", spans[1])
	}

	// The cluster must keep tracking the serial server after the kill.
	for step := 0; step < 4; step++ {
		serial.step(model.FromSeconds(30))
		cluster.step(model.FromSeconds(30))
	}
	for _, qid := range serial.server.QueryIDs() {
		if !idsEqual(serial.server.Result(qid), cluster.server.Result(qid)) {
			t.Errorf("query %d result diverged after kill", qid)
		}
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Fatalf("invariants after post-kill steps: %v", err)
	}

	if err := cs.KillNode(1); err == nil {
		t.Error("killing a dead node should fail")
	}
	if err := cs.KillNode(0); err != nil {
		t.Fatalf("KillNode(0): %v", err)
	}
	if err := cs.KillNode(2); err == nil {
		t.Error("killing the last live node should be refused")
	}
}

// TestClusterRebalance: with the focal population crammed into one node's
// span, Rebalance shifts span boundaries toward the hotspot and migrates
// the now-misplaced focals, preserving durable state byte-for-byte.
func TestClusterRebalance(t *testing.T) {
	g := smallGrid()
	cs := NewClusterServer(g, Options{}, nullDown{}, 3)
	// All focals in high-index rows — node 2's initial span — so rebalanced
	// boundaries must cut through the hotspot and hand focals to node 1.
	for i := 0; i < 30; i++ {
		oid := model.ObjectID(i + 1)
		pos := geo.Pt(float64(i%10)*9+3, 72+float64(i%5)*5)
		cs.HandleUplink(msg.FocalInfoResponse{OID: oid, Pos: pos})
		cs.InstallQuery(oid, model.CircleRegion{R: 3}, matchAll, 100)
	}
	var before bytes.Buffer
	if err := cs.Snapshot(&before); err != nil {
		t.Fatal(err)
	}
	loBefore := cs.Spans()[2].Lo
	moved, err := cs.Rebalance()
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if loAfter := cs.Spans()[2].Lo; loAfter <= loBefore {
		t.Errorf("node 2 span did not shrink around the hotspot: lo %d -> %d", loBefore, loAfter)
	}
	if moved == 0 {
		t.Error("rebalance moved no focals — weak test")
	}
	if err := cs.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rebalance: %v", err)
	}
	var after bytes.Buffer
	if err := cs.Snapshot(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Error("rebalance changed the durable snapshot")
	}
}

// TestClusterSnapshotCrossRestore: a clustered snapshot restores into a
// serial server and a cluster with a different node count, byte-identically
// re-snapshotting from each — MOBS stays implementation-independent across
// all three tiers.
func TestClusterSnapshotCrossRestore(t *testing.T) {
	cluster := newClusterHarness(smallGrid(), Options{}, 3)
	runScenario(cluster)
	// A pending installation must survive the roundtrip too.
	cluster.server.InstallQueryUntil(99, model.CircleRegion{R: 2}, matchAll, 50, model.FromSeconds(9999))

	var buf bytes.Buffer
	if err := cluster.server.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	serial, err := RestoreServer(smallGrid(), Options{}, nullDown{}, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	reclustered, err := RestoreClusterServer(smallGrid(), Options{}, nullDown{}, 2, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := reclustered.CheckInvariants(); err != nil {
		t.Fatalf("restored cluster invariants: %v", err)
	}
	want := cluster.server.QueryIDs()
	for _, restored := range []ServerAPI{serial, reclustered} {
		if got := restored.QueryIDs(); !qidsEqual(got, want) {
			t.Fatalf("restored QueryIDs %v, want %v", got, want)
		}
		var again bytes.Buffer
		if err := restored.Snapshot(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again.Bytes()) {
			t.Error("re-snapshot not byte-identical")
		}
	}
}
