package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// ShardedServer is a concurrent, grid-partitioned MobiEyes server. It owns
// N shards, each a serial Server holding the FOT, SQT and RQI rows of the
// focal objects whose current grid cell hashes into that partition, and a
// thin router that dispatches uplink messages to the owning shard. Unlike
// the serial Server, every method is safe for concurrent use by multiple
// goroutines, so transports can feed it from many connections and engines
// can drain message queues in parallel.
//
// Partitioning and the cross-shard relocation protocol are described in
// DESIGN.md ("Sharded server architecture"). In short:
//
//   - shardOf(curr_cell) decides ownership; monitoring regions freely span
//     partition boundaries because every shard sees the whole grid.
//   - Ownership changes (install completion, §3.5 cell crossings that move
//     the focal into another partition, removal, departure) are serialized
//     under the router's write lock together with the affected shard locks,
//     so routing tables and shard contents never disagree while the router
//     lock is free.
//   - Reads and shard-local updates (velocity relays, containment reports)
//     take the router's read lock only long enough to copy the shard index,
//     then verify ownership under the shard lock, retrying on the rare race
//     with a concurrent migration.
//
// The downlink passed to NewShardedServer must be safe for concurrent use;
// shards send through it while holding their own locks.
type ShardedServer struct {
	g      *grid.Grid
	opts   Options
	down   Downlink
	shards []*shard

	// qidCounter holds the last assigned query identifier (assignment is
	// Add(1), matching the serial server's 1-based sequence).
	qidCounter atomic.Int64

	// ops counts router-level operations; Ops() adds the per-shard counts.
	// upl counts uplink messages the router handles outside any partition
	// (departures); migrations counts cross-shard focal relocations. All
	// three are always-on obs counters that Instrument can expose.
	ops        *obs.Counter
	upl        *obs.Counter
	migrations *obs.Counter

	// inflight counts uplinks currently dispatching at router level (no
	// owning shard: departures, stale drops); per-shard depth lives on each
	// shard. Maintained only while instrumented — see trackInflight.
	inflight atomic.Int64

	// obsm, when attached by Instrument, times HandleUplink per message
	// kind at the router.
	obsm *serverObs

	// rec/tdown: causal tracing, attached by SetTracer (see DESIGN.md §11).
	// Shard-level tagging rides on each shard Server's curTrace, set by the
	// router while holding that shard's lock.
	rec   *trace.Recorder
	tdown TracedDownlink

	// acct is the cost accountant attached by SetAccountant (nil = off).
	// The router attributes each dispatched uplink to the owning shard's
	// ledger (stale drops and departures to the router ledger, so the shard
	// sum plus router equals the transport's global uplink count) and
	// charges per-query/object uplink tallies at ingress; shard Servers
	// charge compute units and downlink tallies through their own acct.
	acct *cost.Accountant

	// mu guards the routing tables and pending installations (see the lock
	// ordering above: mu before any shard.mu, shard locks in ascending
	// index order).
	mu         sync.RWMutex
	focalShard map[model.ObjectID]int
	queryShard map[model.QueryID]int
	pending    map[model.ObjectID][]pendingInstall
	// pendingExp holds expiries of queries that are still pending; they move
	// into the owning shard's table when installation completes.
	pendingExp map[model.QueryID]model.Time
}

// NewShardedServer returns a sharded MobiEyes server over grid g with the
// given number of shards; shards <= 0 selects GOMAXPROCS. The downlink must
// be safe for concurrent use.
func NewShardedServer(g *grid.Grid, opts Options, down Downlink, shards int) *ShardedServer {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	ss := &ShardedServer{
		g:          g,
		opts:       opts,
		down:       down,
		shards:     make([]*shard, shards),
		focalShard: make(map[model.ObjectID]int),
		queryShard: make(map[model.QueryID]int),
		pending:    make(map[model.ObjectID][]pendingInstall),
		pendingExp: make(map[model.QueryID]model.Time),
		ops:        obs.NewCounter(),
		upl:        obs.NewCounter(),
		migrations: obs.NewCounter(),
	}
	for i := range ss.shards {
		ss.shards[i] = &shard{srv: NewServer(g, opts, down), upl: obs.NewCounter(), idx: i}
	}
	return ss
}

// SetAccountant attaches a cost accountant to the router and every shard
// (nil = off; the default). Not safe to call concurrently with dispatch.
func (ss *ShardedServer) SetAccountant(a *cost.Accountant) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.acct = a
	for _, sh := range ss.shards {
		sh.mu.Lock()
		sh.srv.acct = a
		sh.mu.Unlock()
	}
	a.SetMode(ss.opts.Mode.String())
}

// acctShardUplink charges one dispatched uplink message to shard si's ledger
// (si -1 = the router ledger, for stale drops and router-level work).
func (ss *ShardedServer) acctShardUplink(si int, m msg.Message) {
	if ss.acct == nil {
		return
	}
	ss.acct.ShardUplink(si, m.Kind(), m.Size())
}

// NumShards returns the number of partitions.
func (ss *ShardedServer) NumShards() int { return len(ss.shards) }

// shardOf is the partition function: a multiplicative hash of the cell's
// dense index, so neighboring cells land on different shards and hot
// regions spread across cores.
func (ss *ShardedServer) shardOf(c grid.CellID) int {
	h := uint64(ss.g.CellIndex(c)) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(len(ss.shards)))
}

// lockFocalShard returns the shard owning oid's FOT row with its lock held,
// or nil if oid is not a focal object. Retries when a concurrent migration
// moves the row between the routing lookup and the shard lock.
func (ss *ShardedServer) lockFocalShard(oid model.ObjectID) *shard {
	for {
		ss.mu.RLock()
		si, ok := ss.focalShard[oid]
		ss.mu.RUnlock()
		if !ok {
			return nil
		}
		sh := ss.shards[si]
		sh.mu.Lock()
		if _, owns := sh.srv.fot[oid]; owns {
			return sh
		}
		sh.mu.Unlock()
	}
}

// lockQueryShard returns the shard owning qid's SQT row with its lock held,
// or nil if the query is not installed.
func (ss *ShardedServer) lockQueryShard(qid model.QueryID) *shard {
	for {
		ss.mu.RLock()
		si, ok := ss.queryShard[qid]
		ss.mu.RUnlock()
		if !ok {
			return nil
		}
		sh := ss.shards[si]
		sh.mu.Lock()
		if _, owns := sh.srv.sqt[qid]; owns {
			return sh
		}
		sh.mu.Unlock()
	}
}

// InstallQuery starts installation of a moving query (§3.3), exactly like
// the serial Server but routed to the shard owning the focal object.
func (ss *ShardedServer) InstallQuery(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64) model.QueryID {
	return ss.install(focal, region, filter, focalMaxVel, 0)
}

// InstallQueryUntil installs a query that expires at the given time.
func (ss *ShardedServer) InstallQueryUntil(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64, expiry model.Time) model.QueryID {
	return ss.install(focal, region, filter, focalMaxVel, expiry)
}

func (ss *ShardedServer) install(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64, expiry model.Time) model.QueryID {
	qid := model.QueryID(ss.qidCounter.Add(1))
	tid := ss.mintRoot(focal, qid, "InstallQuery")
	q := model.Query{ID: qid, Focal: focal, Region: region, Filter: filter}
	ss.mu.Lock()
	if si, ok := ss.focalShard[focal]; ok {
		sh := ss.shards[si]
		sh.mu.Lock()
		if expiry != 0 {
			sh.srv.expiries[qid] = expiry
		}
		sh.srv.curTrace = tid
		sh.srv.completeInstall(qid, q, focalMaxVel)
		sh.srv.curTrace = 0
		sh.mu.Unlock()
		ss.queryShard[qid] = si
		ss.mu.Unlock()
		return qid
	}
	// §3.3 step 3: the focal object is unknown — request its motion state.
	ss.pending[focal] = append(ss.pending[focal], pendingInstall{qid, q, focalMaxVel})
	if expiry != 0 {
		ss.pendingExp[qid] = expiry
	}
	first := len(ss.pending[focal]) == 1
	ss.mu.Unlock()
	ss.ops.Add(1)
	if first {
		ss.unicast(focal, msg.FocalInfoRequest{OID: focal}, tid)
	}
	return qid
}

// OnFocalInfoResponse receives a prospective focal object's motion state
// and completes any pending installations for it.
func (ss *ShardedServer) OnFocalInfoResponse(m msg.FocalInfoResponse) {
	ss.onFocalInfoResponse(m, 0)
}

func (ss *ShardedServer) onFocalInfoResponse(m msg.FocalInfoResponse, tid trace.ID) {
	si := ss.shardOf(ss.g.CellOf(m.Pos))
	ss.shards[si].upl.Add(1)
	ss.acctShardUplink(si, m)
	ss.mu.Lock()
	ss.applyFocalInfoLocked(m.OID, model.MotionState{Pos: m.Pos, Vel: m.Vel, Tm: m.Tm}, tid)
	ss.mu.Unlock()
}

// applyFocalInfoLocked refreshes oid's FOT row from a reported motion state
// — migrating it when the reported cell belongs to another partition — and
// completes pending installations, all tagged with tid. Requires ss.mu held
// for writing.
func (ss *ShardedServer) applyFocalInfoLocked(oid model.ObjectID, st model.MotionState, tid trace.ID) {
	cell := ss.g.CellOf(st.Pos)
	di := ss.shardOf(cell)
	if si, known := ss.focalShard[oid]; known && si != di {
		src, dst := ss.shards[si], ss.shards[di]
		if ss.rec != nil {
			ss.rec.Event(tid, trace.KindMigrate, "router", int64(oid), 0, fmt.Sprintf("shard%d -> shard%d", si, di))
		}
		ss.lockPair(si, di)
		src.srv.curTrace, dst.srv.curTrace = tid, tid
		rec := src.srv.extractFocal(oid)
		dst.srv.injectFocal(rec, st, cell, false)
		src.srv.curTrace, dst.srv.curTrace = 0, 0
		src.mu.Unlock()
		dst.mu.Unlock()
		ss.migrations.Add(1)
		for _, qid := range rec.fe.queries {
			ss.queryShard[qid] = di
		}
	} else {
		dst := ss.shards[di]
		dst.mu.Lock()
		dst.srv.curTrace = tid
		dst.srv.upsertFocal(oid, st)
		dst.srv.curTrace = 0
		dst.mu.Unlock()
	}
	ss.focalShard[oid] = di

	if len(ss.pending[oid]) == 0 {
		return
	}
	dst := ss.shards[di]
	dst.mu.Lock()
	dst.srv.curTrace = tid
	for _, p := range ss.pending[oid] {
		if exp, ok := ss.pendingExp[p.qid]; ok {
			dst.srv.expiries[p.qid] = exp
			delete(ss.pendingExp, p.qid)
		}
		dst.srv.completeInstall(p.qid, p.query, p.maxVel)
		ss.queryShard[p.qid] = di
	}
	dst.srv.curTrace = 0
	dst.mu.Unlock()
	delete(ss.pending, oid)
}

// lockPair locks two distinct shards in ascending index order.
func (ss *ShardedServer) lockPair(a, b int) {
	if a > b {
		a, b = b, a
	}
	ss.shards[a].mu.Lock()
	ss.shards[b].mu.Lock()
}

// OnVelocityReport relays a focal object's significant velocity-vector
// change (§3.4) inside its owning shard.
func (ss *ShardedServer) OnVelocityReport(m msg.VelocityReport) {
	ss.onVelocityReport(m, 0)
}

func (ss *ShardedServer) onVelocityReport(m msg.VelocityReport, tid trace.ID) {
	sh := ss.lockFocalShard(m.OID)
	if sh == nil {
		ss.acctShardUplink(-1, m) // stale drop: charge the router ledger
		return                    // not a focal object (stale report after query removal)
	}
	sh.upl.Add(1)
	ss.acctShardUplink(sh.idx, m)
	sh.srv.curTrace = tid
	sh.srv.OnVelocityReport(m)
	sh.srv.curTrace = 0
	sh.mu.Unlock()
}

// OnCellChangeReport handles an object crossing into a new grid cell
// (§3.5). A focal object whose new cell hashes into another partition is
// migrated — its FOT and SQT rows move between shards under the router's
// write lock — before the usual relocation broadcasts.
func (ss *ShardedServer) OnCellChangeReport(m msg.CellChangeReport) {
	ss.onCellChangeReport(m, 0)
}

func (ss *ShardedServer) onCellChangeReport(m msg.CellChangeReport, tid trace.ID) {
	st := model.MotionState{Pos: m.Pos, Vel: m.Vel, Tm: m.Tm}
	if !ss.g.Valid(m.PrevCell) {
		// (Re)join: drop stale result entries across every shard before the
		// object re-reports, exactly like the serial server. The router lock
		// keeps the sweep atomic with respect to cross-shard migrations.
		ss.mu.Lock()
		for _, sh := range ss.shards {
			sh.mu.Lock()
			sh.srv.curTrace = tid
			sh.srv.clearObjectFromResults(m.OID)
			sh.srv.curTrace = 0
			sh.mu.Unlock()
		}
		ss.mu.Unlock()
	}
	ss.mu.RLock()
	hasPending := len(ss.pending[m.OID]) > 0
	ss.mu.RUnlock()
	if hasPending {
		// The report carries the object's motion state; complete pending
		// installs from it (the FocalInfoRequest may have been lost).
		ss.mu.Lock()
		if len(ss.pending[m.OID]) > 0 {
			ss.applyFocalInfoLocked(m.OID, st, tid)
		}
		ss.mu.Unlock()
	}
	si := ss.shardOf(m.NewCell)
	ss.shards[si].upl.Add(1)
	ss.acctShardUplink(si, m)
	ss.focalCellChange(m.OID, st, m.NewCell, tid)
	ss.sendNewNearbyQueries(m.OID, m.PrevCell, m.NewCell, tid)
	ss.ops.Add(1)
}

// focalCellChange routes a focal object's cell crossing: shard-local when
// the new cell stays in the same partition (the common case, taken without
// the router write lock), otherwise a cross-shard migration.
func (ss *ShardedServer) focalCellChange(oid model.ObjectID, st model.MotionState, newCell grid.CellID, tid trace.ID) {
	di := ss.shardOf(newCell)
	for {
		ss.mu.RLock()
		si, ok := ss.focalShard[oid]
		ss.mu.RUnlock()
		if !ok {
			return // not focal: nothing to relocate
		}
		if si != di {
			break // crosses partitions: migrate under the write lock
		}
		sh := ss.shards[si]
		sh.mu.Lock()
		if fe, owns := sh.srv.fot[oid]; owns {
			sh.srv.curTrace = tid
			sh.srv.focalCellChange(fe, st, newCell)
			sh.srv.curTrace = 0
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock() // raced with a concurrent migration: retry
	}

	ss.mu.Lock()
	defer ss.mu.Unlock()
	si, ok := ss.focalShard[oid]
	if !ok {
		return
	}
	if si == di {
		// Another report already migrated it here; apply shard-locally.
		sh := ss.shards[si]
		sh.mu.Lock()
		if fe, owns := sh.srv.fot[oid]; owns {
			sh.srv.curTrace = tid
			sh.srv.focalCellChange(fe, st, newCell)
			sh.srv.curTrace = 0
		}
		sh.mu.Unlock()
		return
	}
	src, dst := ss.shards[si], ss.shards[di]
	if ss.rec != nil {
		ss.rec.Event(tid, trace.KindMigrate, "router", int64(oid), 0, fmt.Sprintf("shard%d -> shard%d", si, di))
	}
	ss.lockPair(si, di)
	src.srv.curTrace, dst.srv.curTrace = tid, tid
	rec := src.srv.extractFocal(oid)
	dst.srv.injectFocal(rec, st, newCell, true)
	src.srv.curTrace, dst.srv.curTrace = 0, 0
	src.mu.Unlock()
	dst.mu.Unlock()
	ss.migrations.Add(1)
	ss.focalShard[oid] = di
	for _, qid := range rec.fe.queries {
		ss.queryShard[qid] = di
	}
}

// sendNewNearbyQueries unions RQI(newCell) \ RQI(prevCell) across shards
// and ships the result to the object, ascending by query ID exactly like
// the serial server.
func (ss *ShardedServer) sendNewNearbyQueries(oid model.ObjectID, prevCell, newCell grid.CellID, tid trace.ID) {
	var fresh []msg.QueryState
	for _, sh := range ss.shards {
		sh.mu.Lock()
		fresh = append(fresh, sh.srv.freshQueryStates(prevCell, newCell)...)
		sh.mu.Unlock()
	}
	if len(fresh) == 0 {
		return
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].QID < fresh[j].QID })
	ss.unicast(oid, msg.QueryInstall{Queries: fresh}, tid)
	ss.ops.Add(1)
}

// OnContainmentReport applies a differential result update (§3.6) inside
// the owning shard.
func (ss *ShardedServer) OnContainmentReport(m msg.ContainmentReport) {
	ss.onContainmentReport(m, 0)
}

func (ss *ShardedServer) onContainmentReport(m msg.ContainmentReport, tid trace.ID) {
	sh := ss.lockQueryShard(m.QID)
	if sh == nil {
		ss.acctShardUplink(-1, m) // stale drop: charge the router ledger
		return
	}
	sh.upl.Add(1)
	ss.acctShardUplink(sh.idx, m)
	sh.srv.curTrace = tid
	sh.srv.OnContainmentReport(m)
	sh.srv.curTrace = 0
	sh.mu.Unlock()
}

// OnGroupContainmentReport applies a grouped result update (§4.1). All
// queries of a group share a focal object and therefore a shard, so the
// whole bitmap resolves in one place.
func (ss *ShardedServer) OnGroupContainmentReport(m msg.GroupContainmentReport) {
	ss.onGroupContainmentReport(m, 0)
}

func (ss *ShardedServer) onGroupContainmentReport(m msg.GroupContainmentReport, tid trace.ID) {
	for _, qid := range m.QIDs {
		if sh := ss.lockQueryShard(qid); sh != nil {
			sh.upl.Add(1)
			ss.acctShardUplink(sh.idx, m)
			sh.srv.curTrace = tid
			sh.srv.OnGroupContainmentReport(m)
			sh.srv.curTrace = 0
			sh.mu.Unlock()
			return
		}
	}
	ss.acctShardUplink(-1, m) // no query resolvable: charge the router ledger
}

// OnDepartureReport handles an object leaving the system: it is dropped
// from every query result across all shards, and every query it was focal
// of is removed.
func (ss *ShardedServer) OnDepartureReport(m msg.DepartureReport) {
	ss.onDepartureReport(m, 0)
}

func (ss *ShardedServer) onDepartureReport(m msg.DepartureReport, tid trace.ID) {
	ss.upl.Add(1)
	ss.acctShardUplink(-1, m) // handled across shards: charge the router ledger
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for _, sh := range ss.shards {
		sh.mu.Lock()
		sh.srv.curTrace = tid
		for qid, e := range sh.srv.sqt {
			if _, in := e.result[m.OID]; in {
				delete(e.result, m.OID)
				sh.srv.notifyResult(qid, m.OID, false)
			}
		}
		sh.srv.curTrace = 0
		sh.mu.Unlock()
	}
	if si, ok := ss.focalShard[m.OID]; ok {
		sh := ss.shards[si]
		sh.mu.Lock()
		if fe, owns := sh.srv.fot[m.OID]; owns {
			sh.srv.curTrace = tid
			for _, qid := range append([]model.QueryID(nil), fe.queries...) {
				sh.srv.RemoveQuery(qid)
				delete(ss.queryShard, qid)
			}
			sh.srv.curTrace = 0
			delete(sh.srv.fot, m.OID)
		}
		sh.mu.Unlock()
		delete(ss.focalShard, m.OID)
	}
	for _, p := range ss.pending[m.OID] {
		delete(ss.pendingExp, p.qid)
	}
	delete(ss.pending, m.OID)
	ss.ops.Add(1)
}

// RemoveQuery uninstalls a query from its owning shard.
func (ss *ShardedServer) RemoveQuery(qid model.QueryID) bool {
	tid := ss.mintRoot(0, qid, "RemoveQuery")
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.removeQueryLocked(qid, tid)
}

func (ss *ShardedServer) removeQueryLocked(qid model.QueryID, tid trace.ID) bool {
	si, ok := ss.queryShard[qid]
	if !ok {
		return false
	}
	sh := ss.shards[si]
	sh.mu.Lock()
	var focal model.ObjectID
	if e, installed := sh.srv.sqt[qid]; installed {
		focal = e.query.Focal
	}
	sh.srv.curTrace = tid
	removed := sh.srv.RemoveQuery(qid)
	sh.srv.curTrace = 0
	_, stillFocal := sh.srv.fot[focal]
	sh.mu.Unlock()
	delete(ss.queryShard, qid)
	if removed && !stillFocal {
		delete(ss.focalShard, focal)
	}
	return removed
}

// ExpireQueries removes every query whose expiry has passed and returns the
// removed identifiers (sorted), like the serial server.
func (ss *ShardedServer) ExpireQueries(now model.Time) []model.QueryID {
	tid := ss.mintRoot(0, 0, "ExpireQueries")
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var expired []model.QueryID
	for _, sh := range ss.shards {
		sh.mu.Lock()
		for qid, exp := range sh.srv.expiries {
			if exp <= now {
				expired = append(expired, qid)
			}
		}
		sh.mu.Unlock()
	}
	for qid, exp := range ss.pendingExp {
		if exp <= now {
			// Pending past its deadline: forget the expiry; if the install
			// ever completes the query runs unbounded, like the serial
			// server's behavior for expired-while-pending queries.
			delete(ss.pendingExp, qid)
			expired = append(expired, qid)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, qid := range expired {
		ss.removeQueryLocked(qid, tid)
	}
	return expired
}

// HandleUplink dispatches any uplink message to its handler. Safe for
// concurrent use; it panics on message kinds the MobiEyes server does not
// consume, exactly like the serial server. When instrumented, dispatch is
// timed per message kind at the router.
func (ss *ShardedServer) HandleUplink(m msg.Message) { ss.HandleUplinkTraced(m, 0) }

// HandleUplinkTraced is HandleUplink with an inbound trace ID — the uplink
// ingress point when running behind a tracing transport. A zero tid starts
// a fresh trace when a recorder is attached.
func (ss *ShardedServer) HandleUplinkTraced(m msg.Message, tid trace.ID) {
	if ss.acct != nil {
		// Per-entity uplink attribution at router ingress (the shard Servers'
		// HandleUplink is bypassed — handlers are invoked directly).
		oid, qid := TraceRef(m)
		sz := m.Size()
		if oid != 0 {
			ss.acct.ObjectUp(oid, sz)
		}
		if qid != 0 {
			ss.acct.QueryUp(qid, sz)
		}
	}
	if ss.rec != nil {
		if tid == 0 {
			tid = ss.rec.NextID()
		}
		oid, qid := TraceRef(m)
		ss.rec.Event(tid, trace.KindIngress, "router", oid, qid, m.Kind().String())
	}
	if o := ss.obsm; o != nil && o.uplinkLat != nil {
		start := time.Now()
		ss.dispatchUplink(m, tid)
		o.uplinkLat.observe(m.Kind(), start)
		return
	}
	ss.dispatchUplink(m, tid)
}

// peekFocalShard returns the shard currently routed for oid's FOT row, or
// -1. A concurrent migration may move the row immediately after; callers
// using this for gauge attribution tolerate that.
func (ss *ShardedServer) peekFocalShard(oid model.ObjectID) int {
	ss.mu.RLock()
	si, ok := ss.focalShard[oid]
	ss.mu.RUnlock()
	if !ok {
		return -1
	}
	return si
}

// peekQueryShard returns the shard currently routed for qid's SQT row, or -1.
func (ss *ShardedServer) peekQueryShard(qid model.QueryID) int {
	ss.mu.RLock()
	si, ok := ss.queryShard[qid]
	ss.mu.RUnlock()
	if !ok {
		return -1
	}
	return si
}

// uplinkShard predicts the shard an uplink will be charged to, mirroring
// each handler's own routing decision; -1 means router-level (departures,
// stale reports).
func (ss *ShardedServer) uplinkShard(m msg.Message) int {
	switch mm := m.(type) {
	case msg.VelocityReport:
		return ss.peekFocalShard(mm.OID)
	case msg.CellChangeReport:
		return ss.shardOf(mm.NewCell)
	case msg.ContainmentReport:
		return ss.peekQueryShard(mm.QID)
	case msg.GroupContainmentReport:
		for _, qid := range mm.QIDs {
			if si := ss.peekQueryShard(qid); si >= 0 {
				return si
			}
		}
	case msg.FocalInfoResponse:
		return ss.shardOf(ss.g.CellOf(mm.Pos))
	}
	return -1
}

// trackInflight charges one dispatching uplink against the owning shard's
// pending-depth counter (router-level when no shard owns it) and returns the
// paired decrement. The inc/dec pairing is unconditional within one dispatch,
// so every counter returns to zero at quiescence no matter how the handler
// exits.
func (ss *ShardedServer) trackInflight(m msg.Message) func() {
	c := &ss.inflight
	if si := ss.uplinkShard(m); si >= 0 {
		c = &ss.shards[si].inflight
	}
	c.Add(1)
	return func() { c.Add(-1) }
}

// PendingUplinksByShard returns each shard's current pending-uplink depth
// (queued on the shard lock or executing), indexed by shard. Zero everywhere
// at quiescence; only maintained while the server is instrumented.
func (ss *ShardedServer) PendingUplinksByShard() []int64 {
	out := make([]int64, len(ss.shards))
	for i, sh := range ss.shards {
		out[i] = sh.inflight.Load()
	}
	return out
}

func (ss *ShardedServer) dispatchUplink(m msg.Message, tid trace.ID) {
	// The depth gauges cost a routing peek per uplink, so they are
	// maintained only when someone attached a registry to read them.
	if ss.obsm != nil {
		defer ss.trackInflight(m)()
	}
	switch mm := m.(type) {
	case msg.VelocityReport:
		ss.onVelocityReport(mm, tid)
	case msg.CellChangeReport:
		ss.onCellChangeReport(mm, tid)
	case msg.ContainmentReport:
		ss.onContainmentReport(mm, tid)
	case msg.GroupContainmentReport:
		ss.onGroupContainmentReport(mm, tid)
	case msg.FocalInfoResponse:
		ss.onFocalInfoResponse(mm, tid)
	case msg.DepartureReport:
		ss.onDepartureReport(mm, tid)
	default:
		panic(fmt.Sprintf("core: sharded server cannot handle %v", m.Kind()))
	}
}

// SetResultListener installs a callback for every result change. Unlike the
// serial server, the callback may be invoked concurrently from multiple
// shards; it must be safe for concurrent use.
func (ss *ShardedServer) SetResultListener(fn func(ResultEvent)) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for _, sh := range ss.shards {
		sh.mu.Lock()
		sh.srv.SetResultListener(fn)
		sh.mu.Unlock()
	}
}

// Result returns the current result set of a query as a sorted slice.
func (ss *ShardedServer) Result(qid model.QueryID) []model.ObjectID {
	sh := ss.lockQueryShard(qid)
	if sh == nil {
		return nil
	}
	defer sh.mu.Unlock()
	return sh.srv.Result(qid)
}

// ResultContains reports whether oid is currently in qid's result.
func (ss *ShardedServer) ResultContains(qid model.QueryID, oid model.ObjectID) bool {
	sh := ss.lockQueryShard(qid)
	if sh == nil {
		return false
	}
	defer sh.mu.Unlock()
	return sh.srv.ResultContains(qid, oid)
}

// ResultSize returns |result| for a query (0 for unknown queries).
func (ss *ShardedServer) ResultSize(qid model.QueryID) int {
	sh := ss.lockQueryShard(qid)
	if sh == nil {
		return 0
	}
	defer sh.mu.Unlock()
	return sh.srv.ResultSize(qid)
}

// Query returns the descriptor of an installed query.
func (ss *ShardedServer) Query(qid model.QueryID) (model.Query, bool) {
	sh := ss.lockQueryShard(qid)
	if sh == nil {
		return model.Query{}, false
	}
	defer sh.mu.Unlock()
	return sh.srv.Query(qid)
}

// MonRegion returns the current monitoring region of a query.
func (ss *ShardedServer) MonRegion(qid model.QueryID) (grid.CellRange, bool) {
	sh := ss.lockQueryShard(qid)
	if sh == nil {
		return grid.CellRange{}, false
	}
	defer sh.mu.Unlock()
	return sh.srv.MonRegion(qid)
}

// NumQueries returns the number of installed queries across all shards.
func (ss *ShardedServer) NumQueries() int {
	n := 0
	for _, sh := range ss.shards {
		sh.mu.Lock()
		n += sh.srv.NumQueries()
		sh.mu.Unlock()
	}
	return n
}

// QueryIDs returns all installed query IDs across shards, ascending.
func (ss *ShardedServer) QueryIDs() []model.QueryID {
	var out []model.QueryID
	for _, sh := range ss.shards {
		sh.mu.Lock()
		out = append(out, sh.srv.QueryIDs()...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NearbyQueries returns RQI(cell) unioned across shards, ascending.
func (ss *ShardedServer) NearbyQueries(cell grid.CellID) []model.QueryID {
	var out []model.QueryID
	for _, sh := range ss.shards {
		sh.mu.Lock()
		out = append(out, sh.srv.NearbyQueries(cell)...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ops returns the cumulative operation count: router dispatches plus every
// shard's table work.
func (ss *ShardedServer) Ops() int64 {
	n := ss.ops.Value()
	for _, sh := range ss.shards {
		n += sh.srv.Ops()
	}
	return n
}

// lockAll acquires the router write lock and every shard lock (ascending),
// freezing the whole server. unlockAll releases in reverse.
func (ss *ShardedServer) lockAll() {
	ss.mu.Lock()
	for _, sh := range ss.shards {
		sh.mu.Lock()
	}
}

func (ss *ShardedServer) unlockAll() {
	for i := len(ss.shards) - 1; i >= 0; i-- {
		ss.shards[i].mu.Unlock()
	}
	ss.mu.Unlock()
}

// CheckInvariants validates every shard's internal consistency plus the
// cross-shard invariants: routing tables agree with shard contents in both
// directions, each focal row lives in the partition its current cell hashes
// to, no row is owned twice, and pending expiries refer to pending queries.
// It freezes the whole server; intended for tests and debugging.
func (ss *ShardedServer) CheckInvariants() error {
	ss.lockAll()
	defer ss.unlockAll()

	for si, sh := range ss.shards {
		if err := sh.srv.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
		for oid, fe := range sh.srv.fot {
			if want := ss.shardOf(fe.currCell); want != si {
				return fmt.Errorf("core: focal %d in shard %d but %v hashes to shard %d", oid, si, fe.currCell, want)
			}
			if ri, ok := ss.focalShard[oid]; !ok || ri != si {
				return fmt.Errorf("core: focal %d owned by shard %d but routed to %d", oid, si, ri)
			}
		}
		for qid := range sh.srv.sqt {
			if ri, ok := ss.queryShard[qid]; !ok || ri != si {
				return fmt.Errorf("core: query %d owned by shard %d but routed to %d", qid, si, ri)
			}
		}
	}
	for oid, si := range ss.focalShard {
		if _, ok := ss.shards[si].srv.fot[oid]; !ok {
			return fmt.Errorf("core: focal %d routed to shard %d which does not own it", oid, si)
		}
	}
	for qid, si := range ss.queryShard {
		if _, ok := ss.shards[si].srv.sqt[qid]; !ok {
			return fmt.Errorf("core: query %d routed to shard %d which does not own it", qid, si)
		}
	}
	for qid := range ss.pendingExp {
		found := false
		for _, ps := range ss.pending {
			for _, p := range ps {
				if p.qid == qid {
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("core: pending expiry recorded for non-pending query %d", qid)
		}
	}
	return nil
}
